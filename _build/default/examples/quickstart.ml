(* Quickstart: run a key-value workload against the simulated engine and
   verify the isolation level from client-side traces alone.

     dune exec examples/quickstart.exe

   The flow mirrors a real deployment of Leopard:
   1. an application (here: BlindW-RW) runs against a DBMS (here: minidb
      configured as PostgreSQL at snapshot isolation);
   2. each client logs interval-based traces — just timestamps around
      every call plus the values it read or wrote;
   3. the two-level pipeline merges the per-client streams into one
      sorted stream;
   4. the Verifier mirrors the DBMS's mechanisms (ME, CR, FUW here) and
      reports any violation. *)

let () =
  (* 1. run the workload *)
  let spec = Leopard_workload.Blindw.spec Leopard_workload.Blindw.RW in
  let config =
    Leopard_harness.Run.config ~clients:16 ~seed:2026 ~spec
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Leopard_harness.Run.Txn_count 2_000) ()
  in
  let outcome = Leopard_harness.Run.execute config in
  Printf.printf "workload: %s on postgresql/SI\n" spec.Leopard_workload.Spec.name;
  Printf.printf "  committed=%d aborted=%d simulated=%.1f ms\n" outcome.commits
    outcome.aborts
    (float_of_int outcome.sim_duration_ns /. 1e6);

  (* 2-3. per-client trace streams feed the two-level pipeline *)
  let pipeline = Leopard.Pipeline.of_lists outcome.client_traces in

  (* 4. verify with the mechanisms PostgreSQL uses at SI (Fig. 1) *)
  let checker = Leopard.Checker.create Leopard.Il_profile.postgresql_si in
  let dispatched =
    Leopard.Pipeline.drain pipeline ~f:(Leopard.Checker.feed checker)
  in
  Leopard.Checker.finalize checker;
  let report = Leopard.Checker.report checker in

  Printf.printf "verification:\n";
  Printf.printf "  traces dispatched      %d (pipeline peak buffer %d)\n"
    dispatched
    (Leopard.Pipeline.peak_memory pipeline);
  Printf.printf "  reads checked          %d\n" report.reads_checked;
  Printf.printf "  dependencies deduced   %d\n" report.deps_deduced;
  List.iter
    (fun (source, n) ->
      Printf.printf "    %-14s %d\n" (Leopard.Dep.source_to_string source) n)
    (List.sort compare report.deduced_by_source);
  Printf.printf "  mirrored-state peak    %d entries\n" report.peak_live;
  (match report.bugs with
  | [] -> Printf.printf "  verdict: no isolation violations found\n"
  | bugs ->
    Printf.printf "  verdict: %d violations!\n" report.bugs_total;
    List.iteri
      (fun i b -> if i < 5 then Printf.printf "    %s\n" (Leopard.Bug.to_string b))
      bugs)
