(* Bug hunt: the full fault-injection campaign (paper §VI-F, DESIGN.md §4).

     dune exec examples/bughunt.exe

   For each of the seventeen injectable engine faults — including the four
   published TiDB bug analogues — runs the tailored probe workload twice
   (clean and faulted) and reports:
   - whether Leopard flags the faulted run, and with which mechanism;
   - whether an Elle-style cycle checker would have seen anything.

   This reproduces the paper's core practical claim: mechanism-mirrored
   verification catches entire classes of bugs that cycle-only checkers
   are structurally blind to. *)

module W = Leopard_workload
module B = Leopard_baselines

let run_probe ~inject (p : W.Probes.probe) =
  let faults =
    if inject then Minidb.Fault.Set.singleton p.fault
    else Minidb.Fault.Set.empty
  in
  let config =
    Leopard_harness.Run.config ~clients:p.clients ~seed:5 ~faults ~spec:p.spec
      ~profile:p.db_profile ~level:p.level
      ~stop:(Leopard_harness.Run.Txn_count p.txns) ()
  in
  Leopard_harness.Run.execute config

let () =
  let rows =
    List.map
      (fun (p : W.Probes.probe) ->
        let clean = run_probe ~inject:false p in
        let faulted = run_probe ~inject:true p in
        let il = Option.get (Leopard.Il_profile.find p.verifier_profile) in
        let verify outcome =
          let checker = Leopard.Checker.create il in
          List.iter
            (Leopard.Checker.feed checker)
            (Leopard_harness.Run.all_traces_sorted outcome);
          Leopard.Checker.finalize checker;
          Leopard.Checker.report checker
        in
        let r_clean = verify clean in
        let r_fault = verify faulted in
        let elle =
          B.Elle.check (Leopard_harness.Run.all_traces_sorted faulted)
        in
        let mechanisms =
          List.sort_uniq compare
            (List.map
               (fun (b : Leopard.Bug.t) ->
                 Leopard.Bug.mechanism_to_string b.mechanism)
               r_fault.bugs)
        in
        [
          Minidb.Fault.to_string p.fault;
          (match Minidb.Fault.paper_bug p.fault with
          | Some s -> s
          | None -> "-");
          p.verifier_profile;
          string_of_int r_clean.bugs_total;
          string_of_int r_fault.bugs_total;
          String.concat "+" mechanisms;
          Minidb.Fault.expected_mechanism p.fault;
          (if elle.anomalies = [] then "silent"
           else Printf.sprintf "%d anomalies" (List.length elle.anomalies));
        ])
      (W.Probes.all ())
  in
  print_endline "Fault-injection campaign: Leopard vs an Elle-style checker";
  print_endline "(clean runs must report 0; faulted runs must be caught)";
  print_newline ();
  Leopard_util.Table.print
    ~aligns:
      Leopard_util.Table.[ Left; Left; Left; Right; Right; Left; Left; Left ]
    ~header:
      [ "fault"; "paper analogue"; "profile"; "clean"; "faulted"; "caught by";
        "expected"; "elle" ]
    rows;
  print_newline ();
  let silent_elle =
    List.length (List.filter (fun r -> List.nth r 7 = "silent") rows)
  in
  Printf.printf
    "Leopard flagged all %d injected faults; the cycle-based checker was \
     silent on %d of them.\n"
    (List.length rows) silent_elle
