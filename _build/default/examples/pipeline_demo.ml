(* Two-level pipeline walkthrough — the paper's Fig. 5 running example.

     dune exec examples/pipeline_demo.exe

   Two clients produce traces with interleaved timestamps; the pipeline
   buffers them locally, merges batches through the global min-heap and
   only dispatches a trace once the watermark proves nothing smaller can
   still arrive (Algorithm 1 / Theorem 1). *)

module Trace = Leopard_trace.Trace

let cell = Leopard_trace.Cell.make ~table:0 ~row:0 ~col:0

let mk ~client ~bef =
  {
    Trace.ts_bef = bef;
    ts_aft = bef + 1;
    txn = (client * 100) + bef;
    client;
    payload = Trace.Write [ { Trace.cell; value = bef } ];
  }

let () =
  (* Fig. 5's two clients: odd timestamps from client 0, the rest from
     client 1. *)
  let client0 = List.map (fun b -> mk ~client:0 ~bef:b) [ 1; 4; 7; 10 ] in
  let client1 = List.map (fun b -> mk ~client:1 ~bef:b) [ 3; 8; 9; 12 ] in
  let pipeline = Leopard.Pipeline.of_lists ~batch:2 [| client0; client1 |] in
  print_endline "client 0 produces ts_bef: 1 4 7 10";
  print_endline "client 1 produces ts_bef: 3 8 9 12";
  print_endline "dispatch order (batch = 2):";
  let rec loop i =
    match Leopard.Pipeline.next pipeline with
    | None -> ()
    | Some t ->
      Printf.printf "  #%d  ts_bef=%-3d from client %d   (heap now holds %d)\n"
        i t.Trace.ts_bef t.Trace.client
        (Leopard.Pipeline.heap_size pipeline);
      loop (i + 1)
  in
  loop 1;
  Printf.printf "dispatched %d traces; peak buffered %d\n"
    (Leopard.Pipeline.dispatched pipeline)
    (Leopard.Pipeline.peak_memory pipeline);
  print_endline "every trace left in globally sorted ts_bef order (Theorem 1)."
