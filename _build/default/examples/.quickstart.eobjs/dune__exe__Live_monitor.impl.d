examples/live_monitor.ml: Leopard Leopard_harness Leopard_workload Minidb Printf
