examples/quickstart.mli:
