examples/bughunt.ml: Leopard Leopard_baselines Leopard_harness Leopard_util Leopard_workload List Minidb Option Printf String
