examples/distinguish.mli:
