examples/pipeline_demo.ml: Leopard Leopard_trace List Printf
