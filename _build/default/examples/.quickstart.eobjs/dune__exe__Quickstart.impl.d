examples/quickstart.ml: Leopard Leopard_harness Leopard_workload List Minidb Printf
