examples/distinguish.ml: Format Leopard Leopard_harness Leopard_workload List Minidb Printf
