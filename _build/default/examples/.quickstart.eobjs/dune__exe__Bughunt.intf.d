examples/bughunt.mli:
