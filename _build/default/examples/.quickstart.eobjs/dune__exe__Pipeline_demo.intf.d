examples/pipeline_demo.mli:
