(* Bank audit: find a lost update hidden in a banking application.

     dune exec examples/bank_audit.exe

   SmallBank runs on an engine that claims snapshot isolation but whose
   first-updater-wins check is broken (Fault.No_fuw) — the class of bug
   that lets two concurrent deposits overwrite each other.  The audit
   runs twice, against a healthy bank and the broken one, and shows how
   Leopard's FUW verification localises the bug to the exact accounts
   and transactions. *)

let audit ~label ~faults =
  let spec = Leopard_workload.Smallbank.spec ~hotspot:0.6 () in
  let config =
    Leopard_harness.Run.config ~clients:24 ~seed:7 ~faults ~spec
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Leopard_harness.Run.Txn_count 4_000) ()
  in
  let outcome = Leopard_harness.Run.execute config in
  let checker = Leopard.Checker.create Leopard.Il_profile.postgresql_si in
  List.iter
    (Leopard.Checker.feed checker)
    (Leopard_harness.Run.all_traces_sorted outcome);
  Leopard.Checker.finalize checker;
  let report = Leopard.Checker.report checker in
  Printf.printf "%s\n" label;
  Printf.printf "  transactions: %d committed, %d aborted (%d FUW aborts)\n"
    outcome.commits outcome.aborts outcome.aborts_fuw;
  (match report.bugs with
  | [] -> Printf.printf "  audit verdict: clean — every update was protected\n"
  | bugs ->
    Printf.printf "  audit verdict: %d violations, e.g.:\n" report.bugs_total;
    List.iteri
      (fun i b ->
        if i < 3 then Printf.printf "    %s\n" (Leopard.Bug.to_string b))
      bugs);
  print_newline ();
  report.bugs_total

let () =
  let clean =
    audit ~label:"[1] healthy bank (FUW enforced)"
      ~faults:Minidb.Fault.Set.empty
  in
  let broken =
    audit ~label:"[2] broken bank (first-updater-wins disabled)"
      ~faults:(Minidb.Fault.Set.singleton Minidb.Fault.No_fuw)
  in
  Printf.printf "summary: clean run reported %d bugs, broken run %d — the \
                 lost updates were caught from traces alone.\n"
    clean broken;
  if clean <> 0 || broken = 0 then exit 1
