(* Live monitoring: Leopard attached to a running system (§VI-C mode).

     dune exec examples/live_monitor.exe

   The Tracer batches client traces into the two-level pipeline on a
   fixed window while the workload runs; the Verifier consumes whatever
   the watermark proves safe.  We run a healthy bank first, then flip a
   fault on and watch the monitor raise the alarm — with the same
   verdicts an offline pass would produce. *)

module H = Leopard_harness
module W = Leopard_workload

let monitor ~label ~faults =
  let cfg =
    H.Run.config ~clients:16 ~seed:99 ~faults
      ~spec:(W.Ycsb_t.spec ~accounts:400 ~theta:0.9 ())
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(H.Run.Sim_time_ns 100_000_000) ()
  in
  let r =
    H.Online.run ~batch_window_ns:500_000 ~il:Leopard.Il_profile.postgresql_si
      cfg
  in
  Printf.printf "%s\n" label;
  Printf.printf
    "  %d traces in %d batch windows; backlog peaked at %d traces and \
     ended at %d\n"
    r.report.Leopard.Checker.traces r.rounds r.max_lag r.final_lag;
  Printf.printf "  verification spent %.1f ms of wall clock\n"
    (r.verify_wall_s *. 1e3);
  Printf.printf "  %s\n\n"
    (Leopard.Report_pp.verdict_line r.report);
  r.report.Leopard.Checker.bugs_total

let () =
  let healthy = monitor ~label:"[1] healthy system" ~faults:Minidb.Fault.Set.empty in
  let sick =
    monitor ~label:"[2] same system, first-updater-wins silently broken"
      ~faults:(Minidb.Fault.Set.singleton Minidb.Fault.No_fuw)
  in
  Printf.printf
    "the monitor stayed silent on the healthy run (%d alarms) and raised \
     %d alarms on the broken one, while keeping pace with the workload.\n"
    healthy sick;
  if healthy <> 0 || sick = 0 then exit 1
