(* Distinguishing repeatable read from serializable — the case Elle
   cannot decide on PostgreSQL (paper §VI-F, citing the Jepsen analysis).

     dune exec examples/distinguish.exe

   PostgreSQL's repeatable read IS snapshot isolation: write skew is
   legal there and only the serializable level's SSI certifier forbids
   it.  We run a write-skew-prone workload, honestly, at snapshot
   isolation — no injected faults — and then ask Leopard which claims the
   collected history supports.  The verdict separates the two levels:
   the history passes postgresql/SI but fails postgresql/SR, because a
   correct SSI certifier could never have let those consecutive rw
   antidependencies commit. *)

module W = Leopard_workload

let () =
  (* the write-skew probe workload, used here without any fault: skew is
     legitimate behaviour at snapshot isolation *)
  let skew_prone = W.Probes.for_fault Minidb.Fault.No_ssi in
  let config =
    Leopard_harness.Run.config ~clients:skew_prone.clients ~seed:2024
      ~spec:skew_prone.spec ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Leopard_harness.Run.Txn_count 4_000) ()
  in
  let outcome = Leopard_harness.Run.execute config in
  Printf.printf
    "ran a write-skew-prone workload on postgresql at snapshot isolation\n";
  Printf.printf "  (%d committed, %d aborted — no faults injected)\n\n"
    outcome.commits outcome.aborts;
  let traces = Leopard_harness.Run.all_traces_sorted outcome in
  let verdicts = Leopard.Level_inference.infer ~dbms:"postgresql" traces in
  print_endline "which postgresql isolation claims does this history support?";
  Format.printf "%a" Leopard.Level_inference.pp_verdicts verdicts;
  (match Leopard.Level_inference.strongest_passed verdicts with
  | Some p ->
    Printf.printf "\nstrongest supported claim: %s\n" p.Leopard.Il_profile.name
  | None -> print_endline "\nno claim supported!");
  print_endline
    "\nThe history satisfies snapshot isolation but not serializability:\n\
     Leopard separates PostgreSQL's RR/SI from SR by mirroring the SSI\n\
     certifier — the distinction a cycle checker without mechanism\n\
     knowledge cannot make reliably.";
  (* sanity for CI use: SI must pass, SR must fail *)
  let find name =
    List.find
      (fun (v : Leopard.Level_inference.verdict) ->
        v.profile.Leopard.Il_profile.name = name)
      verdicts
  in
  if not (find "postgresql/SI").passed then exit 1;
  if (find "postgresql/SR").passed then exit 1
