(* Command-line driver: run a workload on a simulated DBMS profile and
   verify the claimed isolation level from the traces.

     dune exec bin/leopard_cli.exe -- --help
     dune exec bin/leopard_cli.exe -- -w smallbank -d postgresql -i SI -n 5000
     dune exec bin/leopard_cli.exe -- -w tpcc -d postgresql -i SR \
       --fault no-ssi --clients 24 *)

let workload_of_string name =
  match name with
  | "ycsb" -> Some (Leopard_workload.Ycsb.spec ~theta:0.8 ())
  | "ycsb+t" -> Some (Leopard_workload.Ycsb_t.spec ())
  | "tatp" -> Some (Leopard_workload.Tatp.spec ())
  | "blindw-w" -> Some (Leopard_workload.Blindw.spec Leopard_workload.Blindw.W)
  | "blindw-rw" ->
    Some (Leopard_workload.Blindw.spec Leopard_workload.Blindw.RW)
  | "blindw-rw+" ->
    Some (Leopard_workload.Blindw.spec Leopard_workload.Blindw.RW_plus)
  | "smallbank" -> Some (Leopard_workload.Smallbank.spec ())
  | "tpcc" -> Some (Leopard_workload.Tpcc.spec ())
  | _ -> None

let verifier_profile ~dbms ~level =
  Leopard.Il_profile.find
    (Printf.sprintf "%s/%s" dbms (Minidb.Isolation.level_to_string level))

let print_inference ~dbms traces =
  let verdicts = Leopard.Level_inference.infer ~dbms traces in
  if verdicts = [] then
    Printf.printf "inference: no profiles known for dbms %s\n" dbms
  else begin
    Printf.printf "level inference for %s:\n" dbms;
    Format.printf "%a" Leopard.Level_inference.pp_verdicts verdicts;
    match Leopard.Level_inference.strongest_passed verdicts with
    | Some p ->
      Printf.printf "strongest supported claim: %s\n" p.Leopard.Il_profile.name
    | None -> Printf.printf "no claim supported\n"
  end

(* Verify a previously recorded trace file (see Leopard_trace.Codec). *)
let check_file ~dbms ~level ~show_bugs ~infer path =
  match
    (Minidb.Isolation.level_of_string level, Leopard_trace.Codec.load ~path)
  with
  | None, _ ->
    prerr_endline ("unknown isolation level: " ^ level);
    exit 2
  | _, Error e ->
    prerr_endline ("cannot load " ^ path ^ ": " ^ e);
    exit 2
  | Some level, Ok traces ->
    let il =
      match verifier_profile ~dbms ~level with
      | Some il -> il
      | None ->
        prerr_endline "no verification profile for this (dbms, level)";
        exit 2
    in
    let checker = Leopard.Checker.create il in
    let sorted = List.sort Leopard_trace.Trace.compare_by_bef traces in
    if infer then print_inference ~dbms sorted;
    let wall0 = Sys.time () in
    List.iter (Leopard.Checker.feed checker) sorted;
    Leopard.Checker.finalize checker;
    let wall = Sys.time () -. wall0 in
    let report = Leopard.Checker.report checker in
    Printf.printf
      "checked  : %s — %d traces, %d committed txns, %.1f ms wall\n" path
      report.traces report.committed (wall *. 1e3);
    if report.bugs_total = 0 then begin
      Printf.printf "verdict  : PASS — no isolation violations\n";
      exit 0
    end
    else begin
      Printf.printf "verdict  : FAIL — %d violations\n" report.bugs_total;
      List.iteri
        (fun i b ->
          if i < show_bugs then Printf.printf "  %s\n" (Leopard.Bug.to_string b))
        report.bugs;
      exit 1
    end

let run_workload_mode workload dbms level faults clients txns seed show_bugs
    record infer =
  match
    ( workload_of_string workload,
      Minidb.Profile.find dbms,
      Minidb.Isolation.level_of_string level )
  with
  | None, _, _ ->
    prerr_endline ("unknown workload: " ^ workload);
    exit 2
  | _, None, _ ->
    prerr_endline ("unknown dbms profile: " ^ dbms);
    exit 2
  | _, _, None ->
    prerr_endline ("unknown isolation level: " ^ level);
    exit 2
  | Some spec, Some profile, Some level ->
    if not (Minidb.Profile.supports profile level) then begin
      Printf.eprintf "%s does not offer %s; available rows:\n%s" dbms
        (Minidb.Isolation.level_to_string level)
        (Minidb.Profile.fig1_matrix ());
      exit 2
    end;
    let faults =
      List.fold_left
        (fun acc name ->
          match Minidb.Fault.of_string name with
          | Some f -> Minidb.Fault.Set.add f acc
          | None ->
            prerr_endline ("unknown fault: " ^ name);
            exit 2)
        Minidb.Fault.Set.empty faults
    in
    let config =
      Leopard_harness.Run.config ~clients ~seed ~faults ~spec ~profile ~level
        ~stop:(Leopard_harness.Run.Txn_count txns) ()
    in
    let outcome = Leopard_harness.Run.execute config in
    let il =
      match verifier_profile ~dbms ~level with
      | Some il -> il
      | None ->
        prerr_endline "no verification profile for this (dbms, level)";
        exit 2
    in
    let checker = Leopard.Checker.create il in
    let pipeline = Leopard.Pipeline.of_lists outcome.client_traces in
    let wall0 = Sys.time () in
    ignore (Leopard.Pipeline.drain pipeline ~f:(Leopard.Checker.feed checker));
    Leopard.Checker.finalize checker;
    let wall = Sys.time () -. wall0 in
    let report = Leopard.Checker.report checker in
    Printf.printf "run      : %s on %s/%s, %d clients, seed %d\n"
      spec.Leopard_workload.Spec.name dbms
      (Minidb.Isolation.level_to_string level)
      clients seed;
    if not (Minidb.Fault.Set.is_empty faults) then
      Printf.printf "faults   : %s\n"
        (String.concat ", "
           (List.map Minidb.Fault.to_string (Minidb.Fault.Set.elements faults)));
    Printf.printf "engine   : %d committed, %d aborted, %.1f ms simulated\n"
      outcome.commits outcome.aborts
      (float_of_int outcome.sim_duration_ns /. 1e6);
    Printf.printf
      "verifier : %d traces, %d reads checked, %d deps deduced, %.1f ms wall\n"
      report.traces report.reads_checked report.deps_deduced (wall *. 1e3);
    Printf.printf "memory   : peak %d mirrored entries (pipeline peak %d)\n"
      report.peak_live
      (Leopard.Pipeline.peak_memory pipeline);
    (match record with
    | Some path ->
      Leopard_trace.Codec.save ~path
        (Leopard_harness.Run.all_traces_sorted outcome);
      Printf.printf "recorded : %s (%d traces)\n" path report.traces
    | None -> ());
    if infer then
      print_inference ~dbms (Leopard_harness.Run.all_traces_sorted outcome);
    if report.bugs_total = 0 then begin
      Printf.printf "verdict  : PASS — no isolation violations\n";
      exit 0
    end
    else begin
      Printf.printf "verdict  : FAIL — %d violations\n" report.bugs_total;
      List.iteri
        (fun i b ->
          if i < show_bugs then
            Printf.printf "  %s\n" (Leopard.Bug.to_string b))
        report.bugs;
      exit 1
    end

let run workload dbms level faults clients txns seed show_bugs record check
    infer =
  match check with
  | Some path -> check_file ~dbms ~level ~show_bugs ~infer path
  | None ->
    run_workload_mode workload dbms level faults clients txns seed show_bugs
      record infer

open Cmdliner

let workload =
  Arg.(
    value & opt string "blindw-rw"
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:
          "Workload: ycsb, ycsb+t, tatp, blindw-w, blindw-rw, blindw-rw+, \
           smallbank, tpcc.")

let dbms =
  Arg.(
    value & opt string "postgresql"
    & info [ "d"; "dbms" ] ~docv:"PROFILE"
        ~doc:
          "DBMS profile under test: postgresql, innodb, tidb, cockroachdb, \
           sqlite, foundationdb, oracle.")

let level =
  Arg.(
    value & opt string "SR"
    & info [ "i"; "isolation" ] ~docv:"LEVEL"
        ~doc:"Claimed isolation level: RC, RR, SI or SR.")

let faults =
  Arg.(
    value & opt_all string []
    & info [ "fault" ] ~docv:"FAULT"
        ~doc:"Inject a named engine fault (repeatable); see DESIGN.md (4).")

let clients =
  Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Concurrent clients.")

let txns =
  Arg.(value & opt int 2000 & info [ "n"; "txns" ] ~doc:"Transactions to run.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let show_bugs =
  Arg.(
    value & opt int 5 & info [ "show-bugs" ] ~doc:"Violations to print on FAIL.")

let record =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:"Save the run's traces to $(docv) (leopard-trace v1 format).")

let check =
  Arg.(
    value
    & opt (some string) None
    & info [ "check" ] ~docv:"FILE"
        ~doc:
          "Skip running a workload: verify a previously recorded trace file \
           against the claimed --dbms/--isolation profile.")

let infer =
  Arg.(
    value & flag
    & info [ "infer" ]
        ~doc:
          "Additionally report, for every isolation level the --dbms \
           offers, whether the history supports that claim (level \
           inference).")

let cmd =
  let doc = "verify isolation levels from client-side traces (Leopard)" in
  Cmd.v
    (Cmd.info "leopard" ~doc)
    Term.(
      const run $ workload $ dbms $ level $ faults $ clients $ txns $ seed
      $ show_bugs $ record $ check $ infer)

let () = exit (Cmd.eval cmd)
