bin/leopard_viz.mli:
