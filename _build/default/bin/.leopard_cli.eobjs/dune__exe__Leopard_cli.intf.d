bin/leopard_cli.mli:
