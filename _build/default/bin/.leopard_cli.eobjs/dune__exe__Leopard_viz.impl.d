bin/leopard_viz.ml: Arg Cmd Cmdliner Leopard_trace String Term
