bin/leopard_cli.ml: Arg Cmd Cmdliner Format Leopard Leopard_harness Leopard_trace Leopard_workload List Minidb Printf String Sys Term
