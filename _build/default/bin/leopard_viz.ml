(* Render a recorded trace file as an ASCII timeline.

     dune exec bin/leopard_viz.exe -- /tmp/run.trace
     dune exec bin/leopard_viz.exe -- /tmp/run.trace --cell 0.17.0 --width 120

   One lane per client; R/L/W/C/A glyphs drawn over each operation's
   interval, so the overlaps Leopard reasons about are visible at a
   glance.  Useful for the small repro files written by
   `leopard_cli --record` on failing cases. *)

let parse_cell s =
  match String.split_on_char '.' s with
  | [ t; r; c ] -> (
    try
      Some
        (Leopard_trace.Cell.make ~table:(int_of_string t)
           ~row:(int_of_string r) ~col:(int_of_string c))
    with Failure _ -> None)
  | _ -> None

let run path cell width clients =
  match Leopard_trace.Codec.load ~path with
  | Error e ->
    prerr_endline ("cannot load " ^ path ^ ": " ^ e);
    exit 2
  | Ok traces -> (
    match cell with
    | None ->
      print_string
        (Leopard_trace.Timeline.render ~max_width:width ~max_clients:clients
           traces)
    | Some spec -> (
      match parse_cell spec with
      | None ->
        prerr_endline ("bad cell (want table.row.col): " ^ spec);
        exit 2
      | Some cell ->
        print_string
          (Leopard_trace.Timeline.render_for_cell ~max_width:width cell traces)))

open Cmdliner

let path =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Trace file (leopard-trace v1).")

let cell =
  Arg.(
    value
    & opt (some string) None
    & info [ "cell" ] ~docv:"T.R.C"
        ~doc:"Show only traces touching this cell (table.row.col).")

let width =
  Arg.(value & opt int 100 & info [ "width" ] ~doc:"Timeline width in columns.")

let clients =
  Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Maximum lanes to draw.")

let cmd =
  Cmd.v
    (Cmd.info "leopard-viz" ~doc:"render recorded traces as an ASCII timeline")
    Term.(const run $ path $ cell $ width $ clients)

let () = exit (Cmd.eval cmd)
