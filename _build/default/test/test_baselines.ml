module B = Leopard_baselines
module W = Leopard_workload
module H = Leopard_harness

let run ?(faults = Minidb.Fault.Set.empty) ?(clients = 12) ?(txns = 600)
    ~spec ~profile ~level () =
  Helpers.run_workload ~clients ~txns ~seed:31 ~faults ~spec ~profile ~level ()

let clean_blindw () =
  run ~spec:(W.Blindw.spec W.Blindw.RW) ~profile:Minidb.Profile.postgresql
    ~level:Minidb.Isolation.Serializable ()

let cobra_on ?(gc = B.Cobra.No_gc) traces =
  let c = B.Cobra.create ~gc () in
  List.iter (B.Cobra.feed c) traces;
  B.Cobra.finalize c

let test_cobra_accepts_clean () =
  let o = clean_blindw () in
  let r = cobra_on (H.Run.all_traces_sorted o) in
  Alcotest.(check bool) "no violation" false r.violation;
  Alcotest.(check bool) "constraints decided" true (r.decided > 0);
  Alcotest.(check bool) "queries performed" true (r.reachability_queries > 0)

let test_cobra_rejects_write_skew () =
  let p = W.Probes.for_fault Minidb.Fault.No_ssi in
  let o =
    run ~faults:(Minidb.Fault.Set.singleton p.fault) ~clients:p.clients
      ~txns:p.txns ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let r = cobra_on (H.Run.all_traces_sorted o) in
  Alcotest.(check bool) "violation found" true r.violation

let test_cobra_fence_gc_bounds_memory () =
  let o = clean_blindw () in
  let traces = H.Run.all_traces_sorted o in
  let no_gc = cobra_on ~gc:B.Cobra.No_gc traces in
  let fenced = cobra_on ~gc:(B.Cobra.Fence 20) traces in
  Alcotest.(check bool) "fence prunes" true (fenced.pruned_txns > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fenced memory below no-gc (%d < %d)" fenced.peak_live
       no_gc.peak_live)
    true
    (fenced.peak_live < no_gc.peak_live);
  Alcotest.(check bool) "both accept" true
    ((not fenced.violation) && not no_gc.violation)

let test_elle_clean () =
  let o = clean_blindw () in
  let r = B.Elle.check (H.Run.all_traces_sorted o) in
  Alcotest.(check int) "no anomalies" 0 (List.length r.anomalies)

let test_elle_finds_lost_update () =
  let p = W.Probes.for_fault Minidb.Fault.No_fuw in
  let o =
    run ~faults:(Minidb.Fault.Set.singleton p.fault) ~clients:p.clients
      ~txns:p.txns ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let r = B.Elle.check (H.Run.all_traces_sorted o) in
  let lost =
    List.exists
      (function B.Elle.Lost_update _ -> true | _ -> false)
      r.anomalies
  in
  Alcotest.(check bool) "lost update found" true lost;
  Alcotest.(check bool) "ww recovered from RMW" true (r.ww_recovered > 0)

let test_elle_finds_write_skew_cycle () =
  let p = W.Probes.for_fault Minidb.Fault.No_ssi in
  let o =
    run ~faults:(Minidb.Fault.Set.singleton p.fault) ~clients:p.clients
      ~txns:p.txns ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let r = B.Elle.check (H.Run.all_traces_sorted o) in
  Alcotest.(check bool) "cycle found" true
    (List.exists (function B.Elle.Cycle _ -> true | _ -> false) r.anomalies)

let test_elle_misses_dirty_write () =
  (* the paper's Bug 1: a dirty write with no dependency cycle — Leopard's
     ME flags it, Elle stays silent *)
  let p = W.Probes.for_fault Minidb.Fault.No_lock_on_noop_update in
  let o =
    run ~faults:(Minidb.Fault.Set.singleton p.fault) ~clients:p.clients
      ~txns:p.txns ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let elle = B.Elle.check (H.Run.all_traces_sorted o) in
  Alcotest.(check int) "elle silent" 0 (List.length elle.anomalies);
  let il = Option.get (Leopard.Il_profile.find p.verifier_profile) in
  let leopard = Helpers.check il (H.Run.all_traces_sorted o) in
  Alcotest.(check bool) "leopard catches it" true (leopard.bugs_total > 0)

let test_elle_finds_aborted_read () =
  let p = W.Probes.for_fault Minidb.Fault.Read_aborted_version in
  let o =
    run ~faults:(Minidb.Fault.Set.singleton p.fault) ~clients:p.clients
      ~txns:p.txns ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let r = B.Elle.check (H.Run.all_traces_sorted o) in
  Alcotest.(check bool) "G1a found" true
    (List.exists
       (function B.Elle.Aborted_read _ -> true | _ -> false)
       r.anomalies)

let test_elle_anomaly_printing () =
  let a = B.Elle.Aborted_read { reader = 1; writer = 2 } in
  Alcotest.(check bool) "prints" true
    (String.length (B.Elle.anomaly_to_string a) > 10)

let test_naive_sorter_memory () =
  let o = clean_blindw () in
  let lists = Array.to_list o.client_traces in
  let total = List.length (List.concat lists) in
  let sources =
    Array.of_list
      (List.map
         (fun traces ->
           let r = ref traces in
           fun () ->
             match !r with
             | [] -> None
             | t :: tl ->
               r := tl;
               Some t)
         lists)
  in
  let naive = B.Naive_sorter.create ~sources () in
  let n = B.Naive_sorter.drain naive ~f:(fun _ -> ()) in
  Alcotest.(check int) "all dispatched" total n;
  Alcotest.(check int) "memory is whole run" total
    (B.Naive_sorter.peak_memory naive)

let suite =
  [
    Alcotest.test_case "cobra accepts clean history" `Slow
      test_cobra_accepts_clean;
    Alcotest.test_case "cobra rejects write skew" `Slow
      test_cobra_rejects_write_skew;
    Alcotest.test_case "cobra fence gc bounds memory" `Slow
      test_cobra_fence_gc_bounds_memory;
    Alcotest.test_case "elle clean" `Slow test_elle_clean;
    Alcotest.test_case "elle finds lost update" `Slow
      test_elle_finds_lost_update;
    Alcotest.test_case "elle finds write-skew cycle" `Slow
      test_elle_finds_write_skew_cycle;
    Alcotest.test_case "elle misses dirty write, leopard catches" `Slow
      test_elle_misses_dirty_write;
    Alcotest.test_case "elle finds aborted read (G1a)" `Slow
      test_elle_finds_aborted_read;
    Alcotest.test_case "elle anomaly printing" `Quick test_elle_anomaly_printing;
    Alcotest.test_case "naive sorter memory" `Slow test_naive_sorter_memory;
  ]
