module Gt = Minidb.Ground_truth

let x = Helpers.cell 0
let x2 = Helpers.cell ~col:1 0  (* same row, different column *)
let row = (0, 0)

let all_committed _ = true

let test_cell_ww_chain () =
  let t = Gt.create () in
  Gt.record_cell_install t x ~txn:1 ~op:10;
  Gt.record_cell_install t x ~txn:2 ~op:20;
  Gt.record_cell_install t x ~txn:3 ~op:30;
  let deps = Gt.deps t ~committed:all_committed in
  let ww =
    List.filter (fun (d : Gt.dep) -> d.kind = Gt.Ww) deps
    |> List.map (fun (d : Gt.dep) -> (d.from_txn, d.to_txn))
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "consecutive ww" [ (1, 2); (2, 3) ] ww

let test_wr_and_rw () =
  let t = Gt.create () in
  Gt.record_cell_install t x ~txn:1 ~op:10;
  Gt.record_read t x ~reader:2 ~op:20 ~seen_writer:1 ~seen_op:10;
  Gt.record_cell_install t x ~txn:3 ~op:30;
  let deps = Gt.deps t ~committed:all_committed in
  let has kind from_txn to_txn =
    List.exists
      (fun (d : Gt.dep) ->
        d.kind = kind && d.from_txn = from_txn && d.to_txn = to_txn)
      deps
  in
  Alcotest.(check bool) "wr 1->2" true (has Gt.Wr 1 2);
  Alcotest.(check bool) "rw 2->3" true (has Gt.Rw 2 3);
  Alcotest.(check bool) "ww 1->3" true (has Gt.Ww 1 3)

let test_initial_read_rw () =
  let t = Gt.create () in
  Gt.record_read t x ~reader:2 ~op:20 ~seen_writer:(-1) ~seen_op:(-1);
  Gt.record_cell_install t x ~txn:3 ~op:30;
  let deps = Gt.deps t ~committed:all_committed in
  Alcotest.(check bool) "rw from initial reader" true
    (List.exists
       (fun (d : Gt.dep) -> d.kind = Gt.Rw && d.from_txn = 2 && d.to_txn = 3)
       deps);
  (* no wr to the untraced initial writer *)
  Alcotest.(check bool) "no wr from initial" true
    (not (List.exists (fun (d : Gt.dep) -> d.kind = Gt.Wr) deps))

let test_row_only_flag () =
  let t = Gt.create () in
  (* txn 1 and 2 write different columns of the same row *)
  Gt.record_cell_install t x ~txn:1 ~op:10;
  Gt.record_row_install t row ~txn:1 ~op:10;
  Gt.record_cell_install t x2 ~txn:2 ~op:20;
  Gt.record_row_install t row ~txn:2 ~op:20;
  let deps = Gt.deps t ~committed:all_committed in
  (match
     List.find_opt
       (fun (d : Gt.dep) -> d.kind = Gt.Ww && d.from_txn = 1 && d.to_txn = 2)
       deps
   with
  | Some d -> Alcotest.(check bool) "row-only conflict" true d.Gt.row_only
  | None -> Alcotest.fail "expected row-level ww")

let test_cell_witness_supersedes_row_only () =
  let t = Gt.create () in
  (* both write the SAME cell and the row *)
  Gt.record_cell_install t x ~txn:1 ~op:10;
  Gt.record_row_install t row ~txn:1 ~op:10;
  Gt.record_cell_install t x ~txn:2 ~op:20;
  Gt.record_row_install t row ~txn:2 ~op:20;
  let deps = Gt.deps t ~committed:all_committed in
  let ww =
    List.filter
      (fun (d : Gt.dep) -> d.kind = Gt.Ww && d.from_txn = 1 && d.to_txn = 2)
      deps
  in
  Alcotest.(check int) "deduplicated" 1 (List.length ww);
  Alcotest.(check bool) "cell witness wins" false
    (List.hd ww).Gt.row_only

let test_committed_filter () =
  let t = Gt.create () in
  Gt.record_cell_install t x ~txn:1 ~op:10;
  Gt.record_cell_install t x ~txn:2 ~op:20;
  let deps = Gt.deps t ~committed:(fun id -> id <> 2) in
  Alcotest.(check int) "uncommitted endpoint excluded" 0 (List.length deps)

let test_self_deps_excluded () =
  let t = Gt.create () in
  Gt.record_cell_install t x ~txn:1 ~op:10;
  Gt.record_read t x ~reader:1 ~op:11 ~seen_writer:1 ~seen_op:10;
  Alcotest.(check int) "no self edges" 0
    (List.length (Gt.deps t ~committed:all_committed))

let suite =
  [
    Alcotest.test_case "cell ww chain" `Quick test_cell_ww_chain;
    Alcotest.test_case "wr and rw" `Quick test_wr_and_rw;
    Alcotest.test_case "rw from initial read" `Quick test_initial_read_rw;
    Alcotest.test_case "row-only flag" `Quick test_row_only_flag;
    Alcotest.test_case "cell witness supersedes row-only" `Quick
      test_cell_witness_supersedes_row_only;
    Alcotest.test_case "committed filter" `Quick test_committed_filter;
    Alcotest.test_case "self deps excluded" `Quick test_self_deps_excluded;
  ]
