(* Hand-crafted histories for the Elle-style anomaly checker. *)

module Elle = Leopard_baselines.Elle

let x = Helpers.cell 0
let y = Helpers.cell 1

let has_anomaly pred report =
  List.exists pred report.Elle.anomalies

let test_clean_serial () =
  let traces =
    [
      Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~client:0 ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~client:1 ~txn:2 ~bef:50 ~aft:60 [ (x, 100) ];
      Helpers.commit ~client:1 ~txn:2 ~bef:70 ~aft:80 ();
    ]
  in
  let r = Elle.check traces in
  Alcotest.(check int) "no anomalies" 0 (List.length r.Elle.anomalies)

let test_g1a_aborted_read () =
  let traces =
    [
      Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 666) ];
      Helpers.read ~client:1 ~txn:2 ~bef:30 ~aft:40 [ (x, 666) ];
      Helpers.abort ~client:0 ~txn:1 ~bef:50 ~aft:60 ();
      Helpers.commit ~client:1 ~txn:2 ~bef:70 ~aft:80 ();
    ]
  in
  Alcotest.(check bool) "G1a found" true
    (has_anomaly
       (function Elle.Aborted_read _ -> true | _ -> false)
       (Elle.check traces))

let test_g1b_intermediate_read () =
  let traces =
    [
      Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 1) ];
      Helpers.write ~client:0 ~txn:1 ~bef:30 ~aft:40 [ (x, 2) ];
      Helpers.read ~client:1 ~txn:2 ~bef:35 ~aft:45 [ (x, 1) ];
      Helpers.commit ~client:0 ~txn:1 ~bef:50 ~aft:60 ();
      Helpers.commit ~client:1 ~txn:2 ~bef:70 ~aft:80 ();
    ]
  in
  Alcotest.(check bool) "G1b found" true
    (has_anomaly
       (function Elle.Intermediate_read _ -> true | _ -> false)
       (Elle.check traces))

let test_lost_update_signature () =
  let traces =
    [
      Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~client:0 ~txn:1 ~bef:30 ~aft:40 ();
      (* both read the same version, both overwrite it *)
      Helpers.read ~client:1 ~txn:2 ~bef:50 ~aft:60 [ (x, 100) ];
      Helpers.read ~client:2 ~txn:3 ~bef:55 ~aft:65 [ (x, 100) ];
      Helpers.write ~client:1 ~txn:2 ~bef:70 ~aft:80 [ (x, 101) ];
      Helpers.write ~client:2 ~txn:3 ~bef:75 ~aft:85 [ (x, 102) ];
      Helpers.commit ~client:1 ~txn:2 ~bef:90 ~aft:100 ();
      Helpers.commit ~client:2 ~txn:3 ~bef:95 ~aft:105 ();
    ]
  in
  Alcotest.(check bool) "lost update found" true
    (has_anomaly
       (function Elle.Lost_update _ -> true | _ -> false)
       (Elle.check traces))

let test_write_skew_cycle () =
  (* RMW chains make both rw edges recoverable: cycle *)
  let traces =
    [
      Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 100); (y, 200) ];
      Helpers.commit ~client:0 ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~client:1 ~txn:2 ~bef:50 ~aft:60 [ (x, 100); (y, 200) ];
      Helpers.read ~client:2 ~txn:3 ~bef:55 ~aft:65 [ (x, 100); (y, 200) ];
      Helpers.write ~client:1 ~txn:2 ~bef:70 ~aft:80 [ (x, 101) ];
      Helpers.write ~client:2 ~txn:3 ~bef:75 ~aft:85 [ (y, 201) ];
      Helpers.commit ~client:1 ~txn:2 ~bef:90 ~aft:100 ();
      Helpers.commit ~client:2 ~txn:3 ~bef:95 ~aft:105 ();
    ]
  in
  let r = Elle.check traces in
  Alcotest.(check bool) "cycle found" true
    (has_anomaly (function Elle.Cycle _ -> true | _ -> false) r);
  Alcotest.(check bool) "ww recovered" true (r.Elle.ww_recovered > 0)

let test_blind_dirty_write_missed () =
  (* blind writes leave no manifest version order: nested dirty write is
     invisible to Elle (Leopard's ME catches it — see checker tests) *)
  let traces =
    [
      Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.write ~client:1 ~txn:2 ~bef:30 ~aft:40 [ (x, 200) ];
      Helpers.commit ~client:1 ~txn:2 ~bef:50 ~aft:60 ();
      Helpers.commit ~client:0 ~txn:1 ~bef:70 ~aft:80 ();
    ]
  in
  Alcotest.(check int) "silent" 0
    (List.length (Elle.check traces).Elle.anomalies)

let test_own_value_reads_fine () =
  let traces =
    [
      Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~client:0 ~txn:1 ~bef:30 ~aft:40 [ (x, 100) ];
      Helpers.commit ~client:0 ~txn:1 ~bef:50 ~aft:60 ();
    ]
  in
  Alcotest.(check int) "own reads not anomalies" 0
    (List.length (Elle.check traces).Elle.anomalies)

let suite =
  [
    Alcotest.test_case "clean serial" `Quick test_clean_serial;
    Alcotest.test_case "G1a aborted read" `Quick test_g1a_aborted_read;
    Alcotest.test_case "G1b intermediate read" `Quick
      test_g1b_intermediate_read;
    Alcotest.test_case "lost update signature" `Quick
      test_lost_update_signature;
    Alcotest.test_case "write skew cycle via RMW" `Quick test_write_skew_cycle;
    Alcotest.test_case "blind dirty write missed" `Quick
      test_blind_dirty_write_missed;
    Alcotest.test_case "own value reads fine" `Quick test_own_value_reads_fine;
  ]
