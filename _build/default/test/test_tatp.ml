module W = Leopard_workload
module Program = W.Program

let test_shape () =
  let spec = W.Tatp.spec ~subscribers:100 () in
  (* 2 subscriber cells + 4*(2) facility cells + 12 cf cells per sub *)
  Alcotest.(check int) "initial size" (100 * (2 + 8 + 12))
    (List.length spec.W.Spec.initial);
  let rng = Leopard_util.Rng.create 3 in
  for _ = 1 to 200 do
    let len = Program.length (spec.W.Spec.next_txn rng) in
    Alcotest.(check bool) "1-2 ops" true (len >= 1 && len <= 2)
  done

let test_read_heavy () =
  let spec = W.Tatp.spec ~subscribers:100 () in
  let rng = Leopard_util.Rng.create 5 in
  let reads = ref 0 and writes = ref 0 in
  for _ = 1 to 2_000 do
    let rec walk = function
      | Program.Finish | Program.Rollback -> ()
      | Program.Read { cells; k; _ } ->
        incr reads;
        walk
          (k
             (List.map
                (fun cell -> { Leopard_trace.Trace.cell; value = 1 })
                cells))
      | Program.Write { k; _ } ->
        incr writes;
        walk (k ())
    in
    walk (spec.W.Spec.next_txn rng)
  done;
  let total = !reads + !writes in
  let read_share = float_of_int !reads /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "read share %.2f in [0.7, 0.95]" read_share)
    true
    (read_share > 0.7 && read_share < 0.95)

let test_clean_verification () =
  List.iter
    (fun (level, il) ->
      let o =
        Helpers.run_workload ~clients:16 ~txns:800 ~seed:61
          ~spec:(W.Tatp.spec ~subscribers:500 ())
          ~profile:Minidb.Profile.postgresql ~level ()
      in
      let report =
        Helpers.check il (Leopard_harness.Run.all_traces_sorted o)
      in
      Alcotest.(check int)
        (il.Leopard.Il_profile.name ^ " clean")
        0 report.bugs_total)
    [
      (Minidb.Isolation.Serializable, Leopard.Il_profile.postgresql_serializable);
      (Minidb.Isolation.Read_committed, Leopard.Il_profile.postgresql_rc);
    ]

let test_fault_detected () =
  let o =
    Helpers.run_workload ~clients:16 ~txns:1_500 ~seed:61
      ~faults:(Minidb.Fault.Set.singleton Minidb.Fault.Stale_read)
      ~spec:(W.Tatp.spec ~subscribers:200 ())
      ~profile:Minidb.Profile.postgresql ~level:Minidb.Isolation.Serializable
      ()
  in
  let report =
    Helpers.check Leopard.Il_profile.postgresql_serializable
      (Leopard_harness.Run.all_traces_sorted o)
  in
  Alcotest.(check bool) "stale reads caught on TATP" true
    (report.bugs_total > 0)

let suite =
  [
    Alcotest.test_case "shape" `Quick test_shape;
    Alcotest.test_case "read-heavy mix" `Quick test_read_heavy;
    Alcotest.test_case "clean verification" `Slow test_clean_verification;
    Alcotest.test_case "fault detected" `Slow test_fault_detected;
  ]
