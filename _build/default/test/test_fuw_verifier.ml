module Fuw = Leopard.Fuw_verifier
module Interval = Leopard_util.Interval

let iv = Helpers.iv

let entry ~txn ~snapshot ~commit =
  { Fuw.ftxn = txn; snapshot_iv = snapshot; commit_iv = commit }

(* Fig. 8(a): both snapshots precede both commits -> concurrent updaters
   both committed -> violation. *)
let test_fig8a_violation () =
  let t0 = entry ~txn:0 ~snapshot:(iv 20 30) ~commit:(iv 100 110) in
  let t1 = entry ~txn:1 ~snapshot:(iv 0 10) ~commit:(iv 60 70) in
  Alcotest.(check bool) "violation" true
    (Fuw.judge ~a:t0 ~b:t1 = Fuw.Violation)

(* Fig. 8(b): exactly one serial order feasible -> ww. *)
let test_fig8b_ww () =
  let t0 = entry ~txn:0 ~snapshot:(iv 0 10) ~commit:(iv 20 35) in
  let t1 = entry ~txn:1 ~snapshot:(iv 30 40) ~commit:(iv 50 60) in
  match Fuw.judge ~a:t0 ~b:t1 with
  | Fuw.Ww (0, 1) -> ()
  | _ -> Alcotest.fail "expected ww 0->1"

let test_disjoint_direct () =
  let t0 = entry ~txn:0 ~snapshot:(iv 0 5) ~commit:(iv 10 15) in
  let t1 = entry ~txn:1 ~snapshot:(iv 20 25) ~commit:(iv 30 35) in
  match Fuw.judge ~a:t0 ~b:t1 with
  | Fuw.Ww (0, 1) -> ()
  | _ -> Alcotest.fail "expected direct ww"

let prop_theorem4 =
  let gen =
    QCheck.Gen.(
      let wf =
        map
          (fun (a, b, c, d) ->
            let xs = List.sort compare [ a; b; c; d ] in
            match xs with
            | [ p; q; r; s ] -> (iv p (q + 1), iv (q + 1 + r) (q + 2 + r + s))
            | _ -> assert false)
          (quad (int_bound 100) (int_bound 100) (int_bound 100) (int_bound 100))
      in
      pair wf wf)
  in
  QCheck.Test.make ~name:"theorem 4: never unordered" ~count:1000
    (QCheck.make gen) (fun ((s0, c0), (s1, c1)) ->
      let e0 = entry ~txn:0 ~snapshot:s0 ~commit:c0 in
      let e1 = entry ~txn:1 ~snapshot:s1 ~commit:c1 in
      Fuw.judge ~a:e0 ~b:e1 <> Fuw.Unordered)

let prop_violation_certain =
  QCheck.Test.make ~name:"FUW violation means certain concurrency" ~count:500
    QCheck.(
      quad (int_bound 50) (int_bound 50) (int_bound 50) (int_bound 50))
    (fun (a, b, c, d) ->
      let s0 = iv a (a + b + 1) and c0 = iv (a + b + 1) (a + b + c + 2) in
      let s1 = iv c (c + d + 1) and c1 = iv (c + d + 1) (c + d + a + 2) in
      let e0 = entry ~txn:0 ~snapshot:s0 ~commit:c0 in
      let e1 = entry ~txn:1 ~snapshot:s1 ~commit:c1 in
      match Fuw.judge ~a:e0 ~b:e1 with
      | Fuw.Violation ->
        Interval.bef c0 >= Interval.aft s1 && Interval.bef c1 >= Interval.aft s0
      | Fuw.Ww _ | Fuw.Unordered -> true)

let row = (0, 0)

let test_register_pairs () =
  let t = Fuw.create () in
  let verdicts = ref [] in
  let on_pair ~row:_ ~other:_ v = verdicts := v :: !verdicts in
  Fuw.register t ~row
    (entry ~txn:1 ~snapshot:(iv 0 5) ~commit:(iv 10 15))
    ~on_pair;
  Alcotest.(check int) "first registration silent" 0 (List.length !verdicts);
  Fuw.register t ~row
    (entry ~txn:2 ~snapshot:(iv 20 25) ~commit:(iv 30 35))
    ~on_pair;
  (match !verdicts with
  | [ Fuw.Ww (1, 2) ] -> ()
  | _ -> Alcotest.fail "expected ww 1->2");
  (* a third concurrent updater conflicts with both *)
  Fuw.register t ~row
    (entry ~txn:3 ~snapshot:(iv 1 4) ~commit:(iv 40 45))
    ~on_pair;
  let violations =
    List.filter (fun v -> v = Fuw.Violation) !verdicts
  in
  Alcotest.(check int) "txn3 concurrent with both earlier updaters" 2
    (List.length violations)

let test_prune () =
  let t = Fuw.create () in
  let on_pair ~row:_ ~other:_ _ = () in
  Fuw.register t ~row (entry ~txn:1 ~snapshot:(iv 0 5) ~commit:(iv 10 15)) ~on_pair;
  Fuw.register t ~row (entry ~txn:2 ~snapshot:(iv 20 25) ~commit:(iv 30 35)) ~on_pair;
  Alcotest.(check int) "two entries" 2 (Fuw.live_entries t);
  let dropped = Fuw.prune t ~horizon:20 in
  Alcotest.(check int) "old entry dropped" 1 dropped;
  Alcotest.(check int) "recent kept" 1 (Fuw.live_entries t)

let suite =
  [
    Alcotest.test_case "Fig.8a violation" `Quick test_fig8a_violation;
    Alcotest.test_case "Fig.8b ww deduction" `Quick test_fig8b_ww;
    Alcotest.test_case "disjoint direct order" `Quick test_disjoint_direct;
    Helpers.qtest prop_theorem4;
    Helpers.qtest prop_violation_certain;
    Alcotest.test_case "register evaluates pairs" `Quick test_register_pairs;
    Alcotest.test_case "prune" `Quick test_prune;
  ]
