module Timeline = Leopard_trace.Timeline

let x = Helpers.cell 0
let y = Helpers.cell 1

let history =
  [
    Helpers.write ~client:0 ~txn:1 ~bef:0 ~aft:20 [ (x, 1) ];
    Helpers.read ~client:1 ~txn:2 ~bef:10 ~aft:30 [ (y, 2) ];
    Helpers.commit ~client:0 ~txn:1 ~bef:40 ~aft:60 ();
    Helpers.abort ~client:1 ~txn:2 ~bef:70 ~aft:100 ();
  ]

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_lanes () =
  let s = Timeline.render ~max_width:50 history in
  Alcotest.(check bool) "client 0 lane" true (contains s "client   0");
  Alcotest.(check bool) "client 1 lane" true (contains s "client   1");
  Alcotest.(check bool) "write glyph" true (contains s "W");
  Alcotest.(check bool) "read glyph" true (contains s "R");
  Alcotest.(check bool) "commit glyph" true (contains s "C");
  Alcotest.(check bool) "abort glyph" true (contains s "A")

let test_locking_glyph () =
  let s =
    Timeline.render ~max_width:30
      [ Helpers.read ~locking:true ~client:0 ~txn:1 ~bef:0 ~aft:10 [ (x, 1) ] ]
  in
  Alcotest.(check bool) "locking read glyph" true (contains s "L")

let test_empty () =
  Alcotest.(check string) "empty note" "(empty history)\n" (Timeline.render [])

let test_width_clipped () =
  let s = Timeline.render ~max_width:40 history in
  List.iter
    (fun line ->
      Alcotest.(check bool) "line within budget" true (String.length line < 60))
    (String.split_on_char '\n' s)

let test_client_cap () =
  let traces =
    List.init 20 (fun c ->
        Helpers.write ~client:c ~txn:c ~bef:(c * 10) ~aft:((c * 10) + 5)
          [ (x, c) ])
  in
  let s = Timeline.render ~max_clients:4 traces in
  Alcotest.(check bool) "mentions elided clients" true
    (contains s "16 more clients")

let test_for_cell () =
  let s = Timeline.render_for_cell ~max_width:50 x history in
  (* txn 2 never touches x, so its lane is empty/absent *)
  Alcotest.(check bool) "keeps x's writer" true (contains s "W");
  Alcotest.(check bool) "drops y's reader" false (contains s "R")

let suite =
  [
    Alcotest.test_case "lanes and glyphs" `Quick test_lanes;
    Alcotest.test_case "locking read glyph" `Quick test_locking_glyph;
    Alcotest.test_case "empty history" `Quick test_empty;
    Alcotest.test_case "width clipped" `Quick test_width_clipped;
    Alcotest.test_case "client cap" `Quick test_client_cap;
    Alcotest.test_case "per-cell view" `Quick test_for_cell;
  ]
