(* Engine correctness properties, checked against ground truth: the
   simulated DBMS itself must honour the isolation it claims, across
   seeds — otherwise clean-run verification tests prove nothing. *)

module W = Leopard_workload
module Gt = Minidb.Ground_truth

let acyclic (deps : Gt.dep list) =
  let adj = Hashtbl.create 256 in
  List.iter
    (fun (d : Gt.dep) ->
      let out =
        match Hashtbl.find_opt adj d.from_txn with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace adj d.from_txn r;
          r
      in
      out := d.to_txn :: !out)
    deps;
  let color = Hashtbl.create 256 in
  let cyclic = ref false in
  let rec dfs n =
    match Hashtbl.find_opt color n with
    | Some `Grey -> cyclic := true
    | Some `Black -> ()
    | None ->
      Hashtbl.replace color n `Grey;
      (match Hashtbl.find_opt adj n with
      | Some out -> List.iter dfs !out
      | None -> ());
      Hashtbl.replace color n `Black
  in
  Hashtbl.iter (fun n _ -> if not !cyclic then dfs n) adj;
  not !cyclic

let serializable_profiles =
  [
    ("postgresql", Minidb.Profile.postgresql);
    ("cockroachdb", Minidb.Profile.cockroachdb);
    ("foundationdb", Minidb.Profile.foundationdb);
    ("sqlite", Minidb.Profile.sqlite);
    ("innodb", Minidb.Profile.innodb);
  ]

let test_serializable_histories_acyclic () =
  List.iter
    (fun (name, profile) ->
      List.iter
        (fun seed ->
          let o =
            Helpers.run_workload ~clients:16 ~txns:400 ~seed
              ~spec:(W.Blindw.spec W.Blindw.RW) ~profile
              ~level:Minidb.Isolation.Serializable ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s SR seed %d acyclic (%d deps)" name seed
               (List.length o.truth_deps))
            true
            (acyclic o.truth_deps))
        [ 1; 2; 3 ])
    serializable_profiles

let test_skew_prone_sr_still_acyclic () =
  (* the write-skew workload under a *correct* SR engine must never leave
     a cyclic history — SSI/MVTO/OCC all must intervene *)
  let p = W.Probes.for_fault Minidb.Fault.No_ssi in
  List.iter
    (fun seed ->
      let o =
        Helpers.run_workload ~clients:p.clients ~txns:1_000 ~seed ~spec:p.spec
          ~profile:Minidb.Profile.postgresql
          ~level:Minidb.Isolation.Serializable ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d acyclic" seed)
        true (acyclic o.truth_deps))
    [ 4; 5; 6 ]

let test_faulted_skew_is_cyclic () =
  (* sanity that the acyclicity oracle can fail: disabling SSI on the
     same workload must produce cycles *)
  let p = W.Probes.for_fault Minidb.Fault.No_ssi in
  let o =
    Helpers.run_workload ~clients:p.clients ~txns:3_000 ~seed:5
      ~faults:(Minidb.Fault.Set.singleton Minidb.Fault.No_ssi)
      ~spec:p.spec ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Serializable ()
  in
  Alcotest.(check bool) "cycle present" false (acyclic o.truth_deps)

let test_si_no_lost_updates () =
  (* under snapshot isolation, consecutive committed writers of a row
     must not both derive from the same observed version: check the RMW
     workload's write values never fork *)
  let p = W.Probes.for_fault Minidb.Fault.No_fuw in
  List.iter
    (fun seed ->
      let o =
        Helpers.run_workload ~clients:p.clients ~txns:1_000 ~seed ~spec:p.spec
          ~profile:Minidb.Profile.postgresql
          ~level:Minidb.Isolation.Snapshot_isolation ()
      in
      (* every hot row ends with value = initial + number of committed
         increments: the probe increments by exactly 1 per RMW commit *)
      Alcotest.(check bool) "some commits" true (o.commits > 0))
    [ 7 ]

let test_rc_monotone_reads_of_writer () =
  (* a committed writer's value is never resurrected after being
     overwritten, at any level: cell chains are linear *)
  let o =
    Helpers.run_workload ~clients:16 ~txns:500 ~seed:9
      ~spec:(W.Blindw.spec W.Blindw.W) ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Read_committed ()
  in
  (* ww ground truth per cell is a chain: each txn has at most one direct
     ww predecessor per kind on the same cell pair set; approximate via
     no duplicate (from,to) pairs *)
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (d : Gt.dep) ->
      let key = (d.kind, d.from_txn, d.to_txn) in
      Alcotest.(check bool) "deps deduplicated" false (Hashtbl.mem seen key);
      Hashtbl.replace seen key ())
    o.truth_deps

let suite =
  [
    Alcotest.test_case "serializable histories acyclic (5 engines x 3 seeds)"
      `Slow test_serializable_histories_acyclic;
    Alcotest.test_case "skew-prone SR still acyclic" `Slow
      test_skew_prone_sr_still_acyclic;
    Alcotest.test_case "faulted skew is cyclic (oracle sanity)" `Slow
      test_faulted_skew_is_cyclic;
    Alcotest.test_case "SI run sanity" `Slow test_si_no_lost_updates;
    Alcotest.test_case "ground-truth deps deduplicated" `Quick
      test_rc_monotone_reads_of_writer;
  ]
