module W = Leopard_workload
module Li = Leopard.Level_inference

let run_traces ?(level = Minidb.Isolation.Snapshot_isolation) ?faults spec
    ~txns =
  let outcome =
    Helpers.run_workload ~clients:16 ~txns ~seed:77 ?faults ~spec
      ~profile:Minidb.Profile.postgresql ~level ()
  in
  Leopard_harness.Run.all_traces_sorted outcome

let verdict_for verdicts name =
  List.find
    (fun (v : Li.verdict) -> v.profile.Leopard.Il_profile.name = name)
    verdicts

let test_serializable_run_passes_everything () =
  let traces =
    run_traces ~level:Minidb.Isolation.Serializable
      (W.Blindw.spec W.Blindw.RW) ~txns:800
  in
  let verdicts = Li.infer ~dbms:"postgresql" traces in
  List.iter
    (fun (v : Li.verdict) ->
      Alcotest.(check bool)
        (v.profile.Leopard.Il_profile.name ^ " passes")
        true v.passed)
    verdicts;
  match Li.strongest_passed verdicts with
  | Some p ->
    Alcotest.(check string) "strongest is SR" "postgresql/SR"
      p.Leopard.Il_profile.name
  | None -> Alcotest.fail "nothing passed"

let test_si_run_with_skew_fails_sr () =
  (* the write-skew-prone workload at SI, no faults: legal SI behaviour
     that a correct SR certifier must forbid *)
  let p = W.Probes.for_fault Minidb.Fault.No_ssi in
  let traces = run_traces p.spec ~txns:3_000 in
  let verdicts = Li.infer ~dbms:"postgresql" traces in
  Alcotest.(check bool) "SI passes" true
    (verdict_for verdicts "postgresql/SI").passed;
  Alcotest.(check bool) "RR passes (it is SI)" true
    (verdict_for verdicts "postgresql/RR").passed;
  let sr = verdict_for verdicts "postgresql/SR" in
  Alcotest.(check bool) "SR fails" false sr.passed;
  Alcotest.(check (list string)) "SC is the violated mechanism" [ "SC" ]
    sr.violating_mechanisms;
  match Li.strongest_passed verdicts with
  | Some p ->
    Alcotest.(check string) "strongest is SI" "postgresql/SI"
      p.Leopard.Il_profile.name
  | None -> Alcotest.fail "nothing passed"

let test_rc_run_fails_si () =
  (* lost-update-prone RMW workload at read committed: no FUW protection,
     so the SI claim must fail on its FUW check *)
  let p = W.Probes.for_fault Minidb.Fault.No_fuw in
  let traces =
    run_traces ~level:Minidb.Isolation.Read_committed p.spec ~txns:3_000
  in
  let verdicts = Li.infer ~dbms:"postgresql" traces in
  Alcotest.(check bool) "RC passes" true
    (verdict_for verdicts "postgresql/RC").passed;
  let si = verdict_for verdicts "postgresql/SI" in
  Alcotest.(check bool) "SI fails" false si.passed;
  Alcotest.(check bool) "FUW violated" true
    (List.mem "FUW" si.violating_mechanisms)

let test_unknown_dbms () =
  Alcotest.(check int) "empty" 0 (List.length (Li.infer ~dbms:"nosuch" []))

let test_strength_order () =
  let traces =
    run_traces ~level:Minidb.Isolation.Serializable
      (W.Blindw.spec W.Blindw.RW) ~txns:200
  in
  let verdicts = Li.infer ~dbms:"postgresql" traces in
  let names =
    List.map (fun (v : Li.verdict) -> v.profile.Leopard.Il_profile.name) verdicts
  in
  Alcotest.(check (list string)) "weak to strong"
    [ "postgresql/RC"; "postgresql/RR"; "postgresql/SI"; "postgresql/SR" ]
    names

let suite =
  [
    Alcotest.test_case "clean SR run passes everything" `Slow
      test_serializable_run_passes_everything;
    Alcotest.test_case "SI run with write skew fails SR only" `Slow
      test_si_run_with_skew_fails_sr;
    Alcotest.test_case "RC run with lost updates fails SI" `Slow
      test_rc_run_fails_si;
    Alcotest.test_case "unknown dbms" `Quick test_unknown_dbms;
    Alcotest.test_case "strength order" `Slow test_strength_order;
  ]
