module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

let c00 = Helpers.cell 0
let c01 = Helpers.cell ~col:1 0
let c10 = Helpers.cell 1

let test_cell_compare () =
  Alcotest.(check bool) "equal" true (Cell.equal c00 (Helpers.cell 0));
  Alcotest.(check bool) "col differs" false (Cell.equal c00 c01);
  Alcotest.(check bool) "order by row" true (Cell.compare c00 c10 < 0);
  Alcotest.(check bool) "order by col" true (Cell.compare c00 c01 < 0);
  Alcotest.(check int) "hash equal for equal" (Cell.hash c00)
    (Cell.hash (Helpers.cell 0))

let test_cell_row_key () =
  Alcotest.(check (pair int int)) "row key ignores col" (0, 0)
    (Cell.row_key c01)

let test_cell_containers () =
  let s = Cell.Set.of_list [ c00; c01; c00 ] in
  Alcotest.(check int) "set dedupes" 2 (Cell.Set.cardinal s);
  let m = Cell.Map.(add c00 1 (add c10 2 empty)) in
  Alcotest.(check (option int)) "map find" (Some 2) (Cell.Map.find_opt c10 m)

let test_trace_interval () =
  let t = Helpers.read ~txn:1 ~bef:10 ~aft:20 [ (c00, 5) ] in
  let i = Trace.interval t in
  Alcotest.(check int) "bef" 10 (Leopard_util.Interval.bef i);
  Alcotest.(check int) "aft" 20 (Leopard_util.Interval.aft i)

let test_compare_by_bef () =
  let a = Helpers.read ~txn:1 ~bef:10 ~aft:20 [ (c00, 5) ] in
  let b = Helpers.read ~txn:2 ~bef:11 ~aft:12 [ (c00, 5) ] in
  let c = Helpers.read ~txn:3 ~bef:10 ~aft:15 [ (c00, 5) ] in
  Alcotest.(check bool) "a < b" true (Trace.compare_by_bef a b < 0);
  Alcotest.(check bool) "ties by aft" true (Trace.compare_by_bef c a < 0)

let test_terminal () =
  Alcotest.(check bool) "commit" true
    (Trace.is_terminal (Helpers.commit ~txn:1 ~bef:1 ~aft:2 ()));
  Alcotest.(check bool) "abort" true
    (Trace.is_terminal (Helpers.abort ~txn:1 ~bef:1 ~aft:2 ()));
  Alcotest.(check bool) "read" false
    (Trace.is_terminal (Helpers.read ~txn:1 ~bef:1 ~aft:2 [ (c00, 1) ]))

let test_items_accessors () =
  let r = Helpers.read ~txn:1 ~bef:1 ~aft:2 [ (c00, 7) ] in
  let w = Helpers.write ~txn:1 ~bef:1 ~aft:2 [ (c10, 8) ] in
  Alcotest.(check int) "read items" 1 (List.length (Trace.read_items r));
  Alcotest.(check int) "read items of write" 0
    (List.length (Trace.read_items w));
  Alcotest.(check int) "write items" 1 (List.length (Trace.write_items w))

let test_well_formed () =
  let ok t = Result.is_ok (Trace.well_formed t) in
  Alcotest.(check bool) "good read" true
    (ok (Helpers.read ~txn:1 ~bef:1 ~aft:2 [ (c00, 1) ]));
  Alcotest.(check bool) "inverted interval" false
    (ok { (Helpers.commit ~txn:1 ~bef:5 ~aft:6 ()) with Trace.ts_aft = 4 });
  Alcotest.(check bool) "empty read set" false
    (ok (Helpers.read ~txn:1 ~bef:1 ~aft:2 []));
  Alcotest.(check bool) "negative txn" false
    (ok (Helpers.commit ~txn:(-1) ~bef:1 ~aft:2 ()))

let test_pp () =
  let t = Helpers.read ~locking:true ~txn:3 ~bef:1 ~aft:2 [ (c00, 9) ] in
  let s = Trace.to_string t in
  Alcotest.(check bool) "mentions locking read" true
    (String.length s > 0
    &&
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    contains s "read!" && contains s "t0.r0.c0=9")

let suite =
  [
    Alcotest.test_case "cell compare/equal/hash" `Quick test_cell_compare;
    Alcotest.test_case "cell row key" `Quick test_cell_row_key;
    Alcotest.test_case "cell containers" `Quick test_cell_containers;
    Alcotest.test_case "trace interval" `Quick test_trace_interval;
    Alcotest.test_case "compare_by_bef" `Quick test_compare_by_bef;
    Alcotest.test_case "is_terminal" `Quick test_terminal;
    Alcotest.test_case "item accessors" `Quick test_items_accessors;
    Alcotest.test_case "well_formed" `Quick test_well_formed;
    Alcotest.test_case "pretty printer" `Quick test_pp;
  ]
