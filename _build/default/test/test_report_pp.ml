module W = Leopard_workload
module Rp = Leopard.Report_pp

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let clean_report () =
  Helpers.check Leopard.Il_profile.postgresql_si
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (Helpers.cell 0, 1) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
    ]

let faulted_report () =
  let p = W.Probes.for_fault Minidb.Fault.No_fuw in
  let o =
    Helpers.run_workload ~clients:p.clients ~txns:800 ~seed:5
      ~faults:(Minidb.Fault.Set.singleton p.fault)
      ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  Helpers.check
    (Option.get (Leopard.Il_profile.find p.verifier_profile))
    (Leopard_harness.Run.all_traces_sorted o)

let test_verdict_lines () =
  Alcotest.(check string) "pass" "PASS — no isolation violations"
    (Rp.verdict_line (clean_report ()));
  let v = Rp.verdict_line (faulted_report ()) in
  Alcotest.(check bool) "fail mentions anomaly" true
    (contains v "FAIL" && contains v "lost-update")

let test_summary_fields () =
  let s = Rp.summary (clean_report ()) in
  Alcotest.(check bool) "mentions traces" true (contains s "traces 2");
  Alcotest.(check bool) "mentions mirrored state" true
    (contains s "mirrored state")

let test_bugs_capped () =
  let r = faulted_report () in
  let b = Rp.bugs ~limit:2 r in
  Alcotest.(check bool) "shows cap marker" true
    (r.bugs_total <= 2 || contains b "more");
  Alcotest.(check string) "clean renders empty" "" (Rp.bugs (clean_report ()))

let test_census () =
  let census = Rp.anomaly_census (faulted_report ()) in
  Alcotest.(check bool) "nonempty" true (census <> []);
  (match census with
  | (a, n) :: _ ->
    Alcotest.(check string) "dominant is lost update" "lost-update (P4)"
      (Leopard.Anomaly.to_string a);
    Alcotest.(check bool) "count positive" true (n > 0)
  | [] -> ());
  Alcotest.(check (list string)) "clean census empty" []
    (List.map
       (fun (a, _) -> Leopard.Anomaly.to_string a)
       (Rp.anomaly_census (clean_report ())))

let suite =
  [
    Alcotest.test_case "verdict lines" `Slow test_verdict_lines;
    Alcotest.test_case "summary fields" `Quick test_summary_fields;
    Alcotest.test_case "bugs capped" `Slow test_bugs_capped;
    Alcotest.test_case "anomaly census" `Slow test_census;
  ]
