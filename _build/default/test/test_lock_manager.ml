module Sim = Minidb.Sim
module Lm = Minidb.Lock_manager

let row = (0, 0)
let row2 = (0, 1)

let setup () =
  let sim = Sim.create () in
  (sim, Lm.create sim ~s_ignores_x:false)

(* Helper: acquire and log the outcome with the sim time it was granted. *)
let acquire sim lm ~txn r mode log =
  ignore sim;
  Lm.acquire lm ~txn r mode ~k:(fun outcome ->
      log := (txn, outcome, Sim.now sim) :: !log)

let test_grant_free () =
  let sim, lm = setup () in
  let log = ref [] in
  acquire sim lm ~txn:1 row Lm.X log;
  Sim.run sim;
  Alcotest.(check int) "granted" 1 (List.length !log);
  Alcotest.(check bool) "holds X" true (Lm.holds lm ~txn:1 row = Some Lm.X)

let test_shared_compatible () =
  let sim, lm = setup () in
  let log = ref [] in
  acquire sim lm ~txn:1 row Lm.S log;
  acquire sim lm ~txn:2 row Lm.S log;
  Sim.run sim;
  Alcotest.(check int) "both granted" 2 (List.length !log);
  Alcotest.(check int) "two holders" 2 (List.length (Lm.holders lm row))

let test_exclusive_blocks () =
  let sim, lm = setup () in
  let log = ref [] in
  Sim.schedule sim ~at:0 (fun () -> acquire sim lm ~txn:1 row Lm.X log);
  Sim.schedule sim ~at:1 (fun () -> acquire sim lm ~txn:2 row Lm.X log);
  Sim.schedule sim ~at:10 (fun () -> Lm.release_all lm ~txn:1);
  Sim.run sim;
  match List.rev !log with
  | [ (1, Lm.Granted, t1); (2, Lm.Granted, t2) ] ->
    Alcotest.(check int) "t1 immediate" 0 t1;
    Alcotest.(check int) "t2 waits for release" 10 t2
  | _ -> Alcotest.fail "unexpected grant sequence"

let test_fifo_queue () =
  let sim, lm = setup () in
  let log = ref [] in
  Sim.schedule sim ~at:0 (fun () -> acquire sim lm ~txn:1 row Lm.X log);
  Sim.schedule sim ~at:1 (fun () -> acquire sim lm ~txn:2 row Lm.X log);
  Sim.schedule sim ~at:2 (fun () -> acquire sim lm ~txn:3 row Lm.X log);
  Sim.schedule sim ~at:10 (fun () -> Lm.release_all lm ~txn:1);
  Sim.schedule sim ~at:20 (fun () -> Lm.release_all lm ~txn:2);
  Sim.run sim;
  let order = List.rev_map (fun (txn, _, _) -> txn) !log in
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3 ] order

let test_reentrant () =
  let sim, lm = setup () in
  let log = ref [] in
  acquire sim lm ~txn:1 row Lm.X log;
  acquire sim lm ~txn:1 row Lm.X log;
  acquire sim lm ~txn:1 row Lm.S log;
  Sim.run sim;
  Alcotest.(check int) "all granted immediately" 3 (List.length !log)

let test_upgrade () =
  let sim, lm = setup () in
  let log = ref [] in
  acquire sim lm ~txn:1 row Lm.S log;
  acquire sim lm ~txn:1 row Lm.X log;
  Sim.run sim;
  Alcotest.(check bool) "upgraded to X" true (Lm.holds lm ~txn:1 row = Some Lm.X)

let test_upgrade_waits_for_other_reader () =
  let sim, lm = setup () in
  let log = ref [] in
  Sim.schedule sim ~at:0 (fun () ->
      acquire sim lm ~txn:1 row Lm.S log;
      acquire sim lm ~txn:2 row Lm.S log);
  Sim.schedule sim ~at:1 (fun () -> acquire sim lm ~txn:1 row Lm.X log);
  Sim.schedule sim ~at:10 (fun () -> Lm.release_all lm ~txn:2);
  Sim.run sim;
  let upgrade_grant =
    List.find_opt (fun (txn, _, t) -> txn = 1 && t = 10) !log
  in
  Alcotest.(check bool) "upgrade granted at release" true
    (upgrade_grant <> None)

let test_deadlock_detected () =
  let sim, lm = setup () in
  let outcomes = ref [] in
  Sim.schedule sim ~at:0 (fun () ->
      acquire sim lm ~txn:1 row Lm.X outcomes;
      acquire sim lm ~txn:2 row2 Lm.X outcomes);
  (* 2 waits for row (held by 1); then 1 requests row2 (held by 2) *)
  Sim.schedule sim ~at:1 (fun () -> acquire sim lm ~txn:2 row Lm.X outcomes);
  Sim.schedule sim ~at:2 (fun () -> acquire sim lm ~txn:1 row2 Lm.X outcomes);
  Sim.run sim;
  let deadlocked =
    List.filter (fun (_, o, _) -> o = Lm.Deadlock) !outcomes
  in
  Alcotest.(check int) "one victim" 1 (List.length deadlocked);
  (match deadlocked with
  | [ (txn, _, _) ] -> Alcotest.(check int) "requester is victim" 1 txn
  | _ -> ());
  Alcotest.(check int) "counted" 1 (Lm.deadlocks lm)

let test_no_false_deadlock () =
  let sim, lm = setup () in
  let outcomes = ref [] in
  Sim.schedule sim ~at:0 (fun () -> acquire sim lm ~txn:1 row Lm.X outcomes);
  Sim.schedule sim ~at:1 (fun () -> acquire sim lm ~txn:2 row Lm.X outcomes);
  Sim.schedule sim ~at:2 (fun () -> acquire sim lm ~txn:3 row Lm.X outcomes);
  Sim.schedule sim ~at:5 (fun () -> Lm.release_all lm ~txn:1);
  Sim.schedule sim ~at:6 (fun () -> Lm.release_all lm ~txn:2);
  Sim.run sim;
  Alcotest.(check int) "no deadlocks" 0 (Lm.deadlocks lm);
  Alcotest.(check int) "all granted" 3
    (List.length (List.filter (fun (_, o, _) -> o = Lm.Granted) !outcomes))

let test_release_row () =
  let sim, lm = setup () in
  let log = ref [] in
  Sim.schedule sim ~at:0 (fun () ->
      acquire sim lm ~txn:1 row Lm.X log;
      acquire sim lm ~txn:1 row2 Lm.X log);
  Sim.schedule sim ~at:1 (fun () -> acquire sim lm ~txn:2 row Lm.X log);
  Sim.schedule sim ~at:5 (fun () -> Lm.release_row lm ~txn:1 row);
  Sim.run sim;
  Alcotest.(check bool) "row released and regranted" true
    (Lm.holds lm ~txn:2 row = Some Lm.X);
  Alcotest.(check bool) "row2 still held" true
    (Lm.holds lm ~txn:1 row2 = Some Lm.X)

let test_s_ignores_x_fault () =
  let sim = Sim.create () in
  let lm = Lm.create sim ~s_ignores_x:true in
  let log = ref [] in
  Sim.schedule sim ~at:0 (fun () -> acquire sim lm ~txn:1 row Lm.X log);
  Sim.schedule sim ~at:1 (fun () -> acquire sim lm ~txn:2 row Lm.S log);
  Sim.run sim;
  Alcotest.(check int) "S granted during X (fault)" 2 (List.length !log)

let test_waiting_count () =
  let sim, lm = setup () in
  let log = ref [] in
  Sim.schedule sim ~at:0 (fun () -> acquire sim lm ~txn:1 row Lm.X log);
  Sim.schedule sim ~at:1 (fun () -> acquire sim lm ~txn:2 row Lm.X log);
  Sim.schedule sim ~at:2 (fun () ->
      Alcotest.(check int) "one waiter" 1 (Lm.waiting lm));
  Sim.schedule sim ~at:3 (fun () -> Lm.release_all lm ~txn:1);
  Sim.run sim;
  Alcotest.(check int) "drained" 0 (Lm.waiting lm)

let suite =
  [
    Alcotest.test_case "grant when free" `Quick test_grant_free;
    Alcotest.test_case "S locks share" `Quick test_shared_compatible;
    Alcotest.test_case "X blocks and waits" `Quick test_exclusive_blocks;
    Alcotest.test_case "FIFO queue" `Quick test_fifo_queue;
    Alcotest.test_case "re-entrant" `Quick test_reentrant;
    Alcotest.test_case "S to X upgrade" `Quick test_upgrade;
    Alcotest.test_case "upgrade waits for other reader" `Quick
      test_upgrade_waits_for_other_reader;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "no false deadlock" `Quick test_no_false_deadlock;
    Alcotest.test_case "release single row" `Quick test_release_row;
    Alcotest.test_case "s_ignores_x fault" `Quick test_s_ignores_x_fault;
    Alcotest.test_case "waiting count" `Quick test_waiting_count;
  ]
