module Stats = Leopard_util.Stats
module Table = Leopard_util.Table

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Stats.mean s)

let test_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "sum" 40.0 (Stats.sum s)

let test_merge () =
  let a = Stats.create () and b = Stats.create () and c = Stats.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add c) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count c) (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean c) (Stats.mean m);
  Alcotest.(check (float 1e-6)) "stddev" (Stats.stddev c) (Stats.stddev m);
  Alcotest.(check (float 1e-9)) "min" (Stats.min c) (Stats.min m);
  Alcotest.(check (float 1e-9)) "max" (Stats.max c) (Stats.max m)

let test_merge_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 5.0;
  let m1 = Stats.merge a b and m2 = Stats.merge b a in
  Alcotest.(check int) "a+empty" 1 (Stats.count m1);
  Alcotest.(check int) "empty+a" 1 (Stats.count m2)

let test_percentile () =
  let samples = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "p50" 5.0 (Stats.percentile samples 50.0);
  Alcotest.(check (float 1e-9)) "p100" 10.0 (Stats.percentile samples 100.0);
  Alcotest.(check (float 1e-9)) "p10" 1.0 (Stats.percentile samples 10.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.percentile [] 50.0)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean within min..max" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-9
      && Stats.mean s <= Stats.max s +. 1e-9)

let test_table_render () =
  let out =
    Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "5 lines (incl trailing empty)" 5 (List.length lines);
  (match lines with
  | h :: sep :: r1 :: _ ->
    Alcotest.(check string) "header" "|   a | bb |" h;
    Alcotest.(check string) "separator" "|-----|----|" sep;
    Alcotest.(check string) "row" "|   1 |  2 |" r1
  | _ -> Alcotest.fail "missing lines")

let test_table_alignment () =
  let out =
    Table.render ~aligns:[ Table.Left ] ~header:[ "x" ] [ [ "ab" ]; [ "c" ] ]
  in
  Alcotest.(check bool) "left aligned" true
    (String.length out > 0
    && String.split_on_char '\n' out |> fun l -> List.nth l 3 = "| c  |")

let test_fmt () =
  Alcotest.(check string) "fmt_int" "12,345" (Table.fmt_int 12345);
  Alcotest.(check string) "fmt_int small" "37" (Table.fmt_int 37);
  Alcotest.(check string) "fmt_int negative" "-1,000" (Table.fmt_int (-1000));
  Alcotest.(check string) "fmt_float integral" "4" (Table.fmt_float 4.0);
  Alcotest.(check string) "fmt_float frac" "3.14"
    (Table.fmt_float ~decimals:2 3.14159)

let suite =
  [
    Alcotest.test_case "empty stats" `Quick test_empty;
    Alcotest.test_case "basic stats" `Quick test_basic;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "merge with empty" `Quick test_merge_empty;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Helpers.qtest prop_mean_bounds;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "number formatting" `Quick test_fmt;
  ]
