module Candidate = Leopard.Candidate
module Version_order = Leopard.Version_order
module Interval = Leopard_util.Interval

let iv = Helpers.iv

let version ?(txn = 0) ~value ~commit () =
  {
    Version_order.value;
    vtxn = txn;
    write_iv = commit;
    commit_iv = commit;
    readers = [];
  }

(* Fig. 6: five categories around a snapshot at (100, 110). *)
let snapshot = iv 100 110

let garbage = version ~txn:1 ~value:1 ~commit:(iv 10 20) ()
let pivot_overlap = version ~txn:2 ~value:2 ~commit:(iv 35 55) ()
let pivot = version ~txn:3 ~value:3 ~commit:(iv 40 60) ()
let overlap = version ~txn:4 ~value:4 ~commit:(iv 95 105) ()
let future = version ~txn:5 ~value:5 ~commit:(iv 120 130) ()

let chain = [ garbage; pivot_overlap; pivot; overlap; future ]

let classification_of vs target =
  List.assq target
    (List.map (fun (v, c) -> (v, c)) (Candidate.classify ~snapshot vs))

let test_fig6_classification () =
  let cls v = classification_of chain v in
  Alcotest.(check string) "garbage" "garbage"
    (Candidate.classification_to_string (cls garbage));
  Alcotest.(check string) "pivot overlap" "pivot-overlap"
    (Candidate.classification_to_string (cls pivot_overlap));
  Alcotest.(check string) "pivot" "pivot"
    (Candidate.classification_to_string (cls pivot));
  Alcotest.(check string) "overlap" "overlap"
    (Candidate.classification_to_string (cls overlap));
  Alcotest.(check string) "future" "future"
    (Candidate.classification_to_string (cls future))

let test_candidates_minimal () =
  let cands = Candidate.candidates ~snapshot chain in
  Alcotest.(check (list int)) "candidate values" [ 2; 3; 4 ]
    (List.map (fun (v : Version_order.version) -> v.value) cands)

let test_no_pivot () =
  let vs = [ overlap; future ] in
  Alcotest.(check bool) "no pivot" false (Candidate.has_pivot ~snapshot vs);
  Alcotest.(check (list int)) "only overlap candidates" [ 4 ]
    (List.map
       (fun (v : Version_order.version) -> v.value)
       (Candidate.candidates ~snapshot vs))

let test_single_version () =
  let vs = [ pivot ] in
  Alcotest.(check (list int)) "lone pivot is candidate" [ 3 ]
    (List.map
       (fun (v : Version_order.version) -> v.value)
       (Candidate.candidates ~snapshot vs))

let test_empty_chain () =
  Alcotest.(check int) "no candidates" 0
    (List.length (Candidate.candidates ~snapshot []))

(* Theorem 2, soundness half, by monte-carlo: sample exact instants
   consistent with every interval; the version actually visible must be in
   the candidate set. *)
let prop_sampled_visible_is_candidate =
  let gen =
    QCheck.Gen.(
      let interval =
        map2 (fun a b -> iv (min a b) (max a b + 1)) (int_bound 200) (int_bound 200)
      in
      pair (list_size (1 -- 8) interval) interval)
  in
  let arb =
    QCheck.make gen ~print:(fun (vs, s) ->
        Printf.sprintf "versions=[%s] snapshot=%s"
          (String.concat ";" (List.map Interval.to_string vs))
          (Interval.to_string s))
  in
  QCheck.Test.make ~name:"theorem 2: sampled visible version is a candidate"
    ~count:500 arb
    (fun (commit_ivs, snapshot) ->
      let rng = Leopard_util.Rng.create (Hashtbl.hash (commit_ivs, snapshot)) in
      let versions =
        List.mapi
          (fun i commit -> version ~txn:i ~value:i ~commit ())
          commit_ivs
      in
      let sorted =
        List.sort
          (fun (a : Version_order.version) b ->
            Interval.compare_by_aft a.commit_iv b.commit_iv)
          versions
      in
      let candidates = Candidate.candidates ~snapshot sorted in
      (* sample exact instants uniformly inside each open interval *)
      let instant i =
        let lo = Interval.bef i and hi = Interval.aft i in
        float_of_int lo
        +. Leopard_util.Rng.float rng (float_of_int (hi - lo))
        +. 1e-6
      in
      let snap_instant = instant snapshot in
      let visible =
        List.fold_left
          (fun acc (v : Version_order.version) ->
            let t = instant v.commit_iv in
            if t < snap_instant then
              match acc with
              | Some (_, best) when best >= t -> acc
              | _ -> Some (v, t)
            else acc)
          None sorted
      in
      match visible with
      | None -> true (* read would see the initial state *)
      | Some (v, _) -> List.memq v candidates)

let suite =
  [
    Alcotest.test_case "Fig.6 classification" `Quick test_fig6_classification;
    Alcotest.test_case "candidate set minimal" `Quick test_candidates_minimal;
    Alcotest.test_case "no pivot case" `Quick test_no_pivot;
    Alcotest.test_case "single version" `Quick test_single_version;
    Alcotest.test_case "empty chain" `Quick test_empty_chain;
    Helpers.qtest prop_sampled_visible_is_candidate;
  ]
