module Sim = Minidb.Sim

let test_event_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:30 (fun () -> log := 30 :: !log);
  Sim.schedule sim ~at:10 (fun () -> log := 10 :: !log);
  Sim.schedule sim ~at:20 (fun () -> log := 20 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~at:7 (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref (-1) in
  Sim.schedule sim ~at:42 (fun () -> seen := Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "now inside event" 42 !seen;
  Alcotest.(check int) "clock rests at last event" 42 (Sim.now sim)

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:5 (fun () ->
      log := `A :: !log;
      Sim.schedule_after sim ~delay:3 (fun () -> log := `B :: !log);
      Sim.schedule_after sim ~delay:0 (fun () -> log := `C :: !log));
  Sim.run sim;
  Alcotest.(check int) "3 events" 3 (List.length !log);
  Alcotest.(check bool) "same-instant event before later one" true
    (List.rev !log = [ `A; `C; `B ])

let test_past_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim ~at:10 (fun () ->
      Alcotest.check_raises "past schedule"
        (Invalid_argument "Sim.schedule: time 5 is before now 10") (fun () ->
          Sim.schedule sim ~at:5 (fun () -> ())));
  Sim.run sim

let test_step_and_pending () =
  let sim = Sim.create () in
  Sim.schedule sim ~at:1 ignore;
  Sim.schedule sim ~at:2 ignore;
  Alcotest.(check int) "pending" 2 (Sim.pending sim);
  Alcotest.(check bool) "step" true (Sim.step sim);
  Alcotest.(check int) "pending after step" 1 (Sim.pending sim);
  Alcotest.(check bool) "step" true (Sim.step sim);
  Alcotest.(check bool) "exhausted" false (Sim.step sim)

let suite =
  [
    Alcotest.test_case "event order" `Quick test_event_order;
    Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "past schedule rejected" `Quick test_past_rejected;
    Alcotest.test_case "step and pending" `Quick test_step_and_pending;
  ]
