module Rng = Leopard_util.Rng
module Zipf = Leopard_util.Zipf

let sample_counts ~n ~theta ~draws =
  let z = Zipf.create ~n ~theta in
  let rng = Rng.create 101 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  counts

let test_bounds () =
  let z = Zipf.create ~n:100 ~theta:0.99 in
  let rng = Rng.create 1 in
  for _ = 1 to 50_000 do
    let k = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100)
  done

let test_uniform_when_theta_zero () =
  let counts = sample_counts ~n:10 ~theta:0.0 ~draws:100_000 in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d near uniform" i)
        true
        (abs (c - 10_000) < 2_000))
    counts

let test_skew_orders_ranks () =
  let counts = sample_counts ~n:100 ~theta:0.99 ~draws:200_000 in
  Alcotest.(check bool) "rank 0 hottest" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 1 hotter than rank 50" true
    (counts.(1) > counts.(50));
  (* zipf(0.99): rank 0 should take a large share *)
  Alcotest.(check bool) "rank 0 share > 10%" true (counts.(0) > 20_000)

let test_higher_theta_more_skew () =
  let c1 = sample_counts ~n:50 ~theta:0.5 ~draws:100_000 in
  let c2 = sample_counts ~n:50 ~theta:0.99 ~draws:100_000 in
  Alcotest.(check bool) "theta 0.99 concentrates more" true
    (c2.(0) > c1.(0))

let test_n_one () =
  let z = Zipf.create ~n:1 ~theta:0.99 in
  let rng = Rng.create 2 in
  for _ = 1 to 100 do
    Alcotest.(check int) "only rank 0" 0 (Zipf.sample z rng)
  done

let test_accessors () =
  let z = Zipf.create ~n:42 ~theta:0.7 in
  Alcotest.(check int) "n" 42 (Zipf.n z);
  Alcotest.(check (float 1e-9)) "theta" 0.7 (Zipf.theta z)

let test_invalid () =
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Zipf.create: n must be >= 1") (fun () ->
      ignore (Zipf.create ~n:0 ~theta:0.5));
  Alcotest.check_raises "negative theta"
    (Invalid_argument "Zipf.create: theta must be >= 0") (fun () ->
      ignore (Zipf.create ~n:5 ~theta:(-1.0)))

let suite =
  [
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "uniform at theta=0" `Quick test_uniform_when_theta_zero;
    Alcotest.test_case "skew orders ranks" `Quick test_skew_orders_ranks;
    Alcotest.test_case "higher theta more skew" `Quick test_higher_theta_more_skew;
    Alcotest.test_case "n=1" `Quick test_n_one;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "invalid arguments" `Quick test_invalid;
  ]
