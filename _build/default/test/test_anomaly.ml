(* Anomaly classification: each fault class maps to the right Adya-style
   name on the bug descriptors. *)

module W = Leopard_workload
module Il = Leopard.Il_profile

let dominant_anomaly (report : Leopard.Checker.report) =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (b : Leopard.Bug.t) ->
      match b.anomaly with
      | Some a ->
        Hashtbl.replace tally a
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally a))
      | None -> ())
    report.bugs;
  Hashtbl.fold
    (fun a n best ->
      match best with
      | Some (_, m) when m >= n -> best
      | _ -> Some (a, n))
    tally None

let check_probe fault expected () =
  let p = W.Probes.for_fault fault in
  let outcome =
    Helpers.run_workload ~clients:p.clients ~txns:p.txns ~seed:5
      ~faults:(Minidb.Fault.Set.singleton fault)
      ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let il = Option.get (Il.find p.verifier_profile) in
  let report = Helpers.check il (Leopard_harness.Run.all_traces_sorted outcome) in
  match dominant_anomaly report with
  | Some (a, _) ->
    Alcotest.(check string)
      (Printf.sprintf "%s classified" (Minidb.Fault.to_string fault))
      (Leopard.Anomaly.to_string expected)
      (Leopard.Anomaly.to_string a)
  | None -> Alcotest.fail "no classified bugs"

let test_names_unique () =
  let names = List.map Leopard.Anomaly.to_string Leopard.Anomaly.all in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun a ->
      Alcotest.(check bool) "has description" true
        (String.length (Leopard.Anomaly.description a) > 10))
    Leopard.Anomaly.all

let suite =
  [
    Alcotest.test_case "names unique, described" `Quick test_names_unique;
    Alcotest.test_case "stale read classified" `Slow
      (check_probe Minidb.Fault.Stale_read Leopard.Anomaly.Stale_read);
    Alcotest.test_case "dirty read classified" `Slow
      (check_probe Minidb.Fault.Dirty_read Leopard.Anomaly.Dirty_read);
    Alcotest.test_case "aborted read classified" `Slow
      (check_probe Minidb.Fault.Read_aborted_version
         Leopard.Anomaly.Aborted_read);
    Alcotest.test_case "lost update classified" `Slow
      (check_probe Minidb.Fault.No_fuw Leopard.Anomaly.Lost_update);
    Alcotest.test_case "write skew classified" `Slow
      (check_probe Minidb.Fault.No_ssi Leopard.Anomaly.Write_skew);
    Alcotest.test_case "timestamp inversion classified" `Slow
      (check_probe Minidb.Fault.Mvto_no_check
         Leopard.Anomaly.Serialization_order_inversion);
    Alcotest.test_case "dirty write classified" `Slow
      (check_probe Minidb.Fault.No_lock_on_noop_update
         Leopard.Anomaly.Dirty_write);
    Alcotest.test_case "read-lock violation classified" `Slow
      (check_probe Minidb.Fault.Shared_lock_ignores_exclusive
         Leopard.Anomaly.Read_lock_violation);
    Alcotest.test_case "own-write miss classified" `Slow
      (check_probe Minidb.Fault.Ignore_own_writes
         Leopard.Anomaly.Intermediate_read);
    Alcotest.test_case "snapshot tear classified" `Slow
      (check_probe Minidb.Fault.Stmt_snapshot_under_txn_cr
         Leopard.Anomaly.Future_read);
  ]
