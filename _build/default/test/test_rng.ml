module Rng = Leopard_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independence () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  (* Advancing the child must not perturb the parent. *)
  let probe = Rng.copy parent in
  for _ = 1 to 50 do
    ignore (Rng.next_int64 child)
  done;
  for _ = 1 to 50 do
    Alcotest.(check int64) "parent unaffected" (Rng.next_int64 probe)
      (Rng.next_int64 parent)
  done

let test_copy () =
  let a = Rng.create 9 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
      (Rng.next_int64 b)
  done

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_one () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Rng.int rng 1)
  done

let test_int_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create 5 in
  for _ = 1 to 1_000 do
    let x = Rng.int_in rng (-3) 7 in
    Alcotest.(check bool) "inclusive range" true (x >= -3 && x <= 7)
  done

let test_float_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_int_uniformity () =
  let rng = Rng.create 13 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i count ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform" i)
        true
        (abs (count - expected) < expected / 5))
    buckets

let test_chance_extremes () =
  let rng = Rng.create 17 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_shuffle_permutation () =
  let rng = Rng.create 19 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sa = Array.to_list a and sb = List.sort compare (Array.to_list b) in
  Alcotest.(check (list int)) "same multiset" sa sb

let test_pick () =
  let rng = Rng.create 23 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element" true (Array.mem (Rng.pick rng a) a)
  done

let test_exponential_positive () =
  let rng = Rng.create 29 in
  let sum = ref 0.0 in
  for _ = 1 to 10_000 do
    let x = Rng.exponential rng 100.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. 10_000.0 in
  Alcotest.(check bool) "mean near 100" true (mean > 90.0 && mean < 110.0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int bound 1" `Quick test_int_one;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "int_in inclusive" `Quick test_int_in;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick membership" `Quick test_pick;
    Alcotest.test_case "exponential mean" `Quick test_exponential_positive;
  ]
