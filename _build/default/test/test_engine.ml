module Sim = Minidb.Sim
module E = Minidb.Engine
module F = Minidb.Fault
module P = Minidb.Profile
module I = Minidb.Isolation

let x = Helpers.cell 0
let y = Helpers.cell 1

type ctx = { sim : Sim.t; eng : E.t; mutable next_op : int }

let setup ?(faults = []) ~profile ~level ?(load = [ (x, 1); (y, 2) ]) () =
  let sim = Sim.create () in
  let eng =
    E.create sim ~profile ~level ~faults:(F.Set.of_list faults)
  in
  E.load eng load;
  { sim; eng; next_op = 0 }

let op ctx txn ~at req k =
  Sim.schedule ctx.sim ~at (fun () ->
      let op_id = ctx.next_op in
      ctx.next_op <- op_id + 1;
      E.exec ctx.eng txn ~op_id req ~k)

let read_req ?(locking = false) ?(predicate = false) cells =
  E.Read { cells; locking; predicate }

let expect_values name expected = function
  | E.Ok_read items ->
    Alcotest.(check (list int)) name expected
      (List.map (fun (i : Leopard_trace.Trace.item) -> i.value) items)
  | E.Err r -> Alcotest.failf "%s: aborted (%s)" name (E.abort_reason_to_string r)
  | E.Ok_write | E.Ok_commit -> Alcotest.failf "%s: unexpected result" name

let expect_ok name = function
  | E.Ok_write | E.Ok_commit -> ()
  | E.Ok_read _ -> Alcotest.failf "%s: unexpected read result" name
  | E.Err r -> Alcotest.failf "%s: aborted (%s)" name (E.abort_reason_to_string r)

let expect_abort name = function
  | E.Err _ -> ()
  | E.Ok_read _ | E.Ok_write | E.Ok_commit ->
    Alcotest.failf "%s: expected abort" name

(* --- consistent read semantics --- *)

let test_txn_level_snapshot () =
  (* Repeatable read: a transaction-level snapshot ignores later commits. *)
  let ctx = setup ~profile:P.innodb ~level:I.Repeatable_read () in
  let reader = E.begin_txn ctx.eng ~client:0 in
  let writer = E.begin_txn ctx.eng ~client:1 in
  op ctx reader ~at:100 (read_req [ x ]) (expect_values "first read" [ 1 ]);
  op ctx writer ~at:200 (E.Write [ (x, 50) ]) (expect_ok "write");
  op ctx writer ~at:210 E.Commit (expect_ok "commit");
  op ctx reader ~at:300 (read_req [ x ]) (expect_values "repeatable" [ 1 ]);
  Sim.run ctx.sim

let test_stmt_level_snapshot () =
  (* Read committed: each statement sees the latest committed state. *)
  let ctx = setup ~profile:P.innodb ~level:I.Read_committed () in
  let reader = E.begin_txn ctx.eng ~client:0 in
  let writer = E.begin_txn ctx.eng ~client:1 in
  op ctx reader ~at:100 (read_req [ x ]) (expect_values "first read" [ 1 ]);
  op ctx writer ~at:200 (E.Write [ (x, 50) ]) (expect_ok "write");
  op ctx writer ~at:210 E.Commit (expect_ok "commit");
  op ctx reader ~at:300 (read_req [ x ]) (expect_values "sees new" [ 50 ]);
  Sim.run ctx.sim

let test_own_writes_visible () =
  let ctx = setup ~profile:P.postgresql ~level:I.Snapshot_isolation () in
  let t = E.begin_txn ctx.eng ~client:0 in
  op ctx t ~at:100 (E.Write [ (x, 9) ]) (expect_ok "write");
  op ctx t ~at:110 (read_req [ x ]) (expect_values "own write" [ 9 ]);
  Sim.run ctx.sim

let test_no_dirty_read () =
  let ctx = setup ~profile:P.postgresql ~level:I.Read_committed () in
  let writer = E.begin_txn ctx.eng ~client:0 in
  let reader = E.begin_txn ctx.eng ~client:1 in
  op ctx writer ~at:100 (E.Write [ (x, 9) ]) (expect_ok "write");
  op ctx reader ~at:200 (read_req [ x ]) (expect_values "no dirty read" [ 1 ]);
  op ctx writer ~at:300 E.Commit (expect_ok "commit");
  Sim.run ctx.sim

let expect_abort_silent = function
  | E.Err E.User_abort -> ()
  | E.Ok_read _ | E.Ok_write | E.Ok_commit | E.Err _ ->
    Alcotest.fail "expected user abort"

let test_abort_discards () =
  let ctx = setup ~profile:P.postgresql ~level:I.Read_committed () in
  let writer = E.begin_txn ctx.eng ~client:0 in
  let reader = E.begin_txn ctx.eng ~client:1 in
  op ctx writer ~at:100 (E.Write [ (x, 9) ]) (expect_ok "write");
  op ctx writer ~at:110 E.Abort expect_abort_silent;
  op ctx reader ~at:200 (read_req [ x ]) (expect_values "rolled back" [ 1 ]);
  Sim.run ctx.sim;
  Alcotest.(check int) "no commits" 0 (E.commits ctx.eng)

(* --- mutual exclusion --- *)

let test_write_lock_blocks () =
  let ctx = setup ~profile:P.postgresql ~level:I.Read_committed () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t2_done = ref (-1) in
  op ctx t1 ~at:100 (E.Write [ (x, 5) ]) (expect_ok "t1 write");
  op ctx t2 ~at:150 (E.Write [ (x, 6) ]) (fun r ->
      expect_ok "t2 write" r;
      t2_done := Sim.now ctx.sim);
  op ctx t1 ~at:500 E.Commit (expect_ok "t1 commit");
  Sim.run ctx.sim;
  Alcotest.(check bool) "t2 waited for t1's commit" true (!t2_done >= 500)

let test_deadlock_victim () =
  let ctx = setup ~profile:P.postgresql ~level:I.Read_committed () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let aborted = ref 0 in
  let count = function
    | E.Err E.Deadlock_victim -> incr aborted
    | _ -> ()
  in
  op ctx t1 ~at:100 (E.Write [ (x, 5) ]) (expect_ok "t1 x");
  op ctx t2 ~at:110 (E.Write [ (y, 6) ]) (expect_ok "t2 y");
  op ctx t1 ~at:200 (E.Write [ (y, 7) ]) count;
  op ctx t2 ~at:210 (E.Write [ (x, 8) ]) (fun r ->
      count r;
      (* whoever survives can commit *)
      if r = E.Ok_write then
        E.exec ctx.eng t2 ~op_id:99 E.Commit ~k:(expect_ok "t2 commit"));
  Sim.run ctx.sim;
  Alcotest.(check int) "one deadlock victim" 1 !aborted;
  Alcotest.(check int) "deadlock counter" 1 (E.deadlocks ctx.eng)

(* --- first updater wins --- *)

let test_fuw_aborts_second_updater () =
  let ctx = setup ~profile:P.postgresql ~level:I.Snapshot_isolation () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  (* both take their snapshot before either commits *)
  op ctx t1 ~at:100 (read_req [ x ]) (expect_values "t1 snap" [ 1 ]);
  op ctx t2 ~at:110 (read_req [ x ]) (expect_values "t2 snap" [ 1 ]);
  op ctx t1 ~at:200 (E.Write [ (x, 5) ]) (expect_ok "t1 write");
  op ctx t1 ~at:210 E.Commit (expect_ok "t1 commit");
  op ctx t2 ~at:300 (E.Write [ (x, 6) ]) (expect_abort "t2 fuw");
  Sim.run ctx.sim;
  Alcotest.(check int) "fuw abort counted" 1
    (E.aborts_by ctx.eng E.Fuw_conflict)

let test_fuw_off_at_rc () =
  let ctx = setup ~profile:P.postgresql ~level:I.Read_committed () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  op ctx t1 ~at:100 (read_req [ x ]) (expect_values "t1 snap" [ 1 ]);
  op ctx t2 ~at:110 (read_req [ x ]) (expect_values "t2 snap" [ 1 ]);
  op ctx t1 ~at:200 (E.Write [ (x, 5) ]) (expect_ok "t1 write");
  op ctx t1 ~at:210 E.Commit (expect_ok "t1 commit");
  op ctx t2 ~at:300 (E.Write [ (x, 6) ]) (expect_ok "t2 write allowed");
  op ctx t2 ~at:400 E.Commit (expect_ok "t2 commit");
  Sim.run ctx.sim

(* --- SSI --- *)

let test_ssi_aborts_write_skew () =
  let ctx = setup ~profile:P.postgresql ~level:I.Serializable () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t2_commit = ref `Pending in
  op ctx t1 ~at:100 (read_req [ x; y ]) (expect_values "t1 reads" [ 1; 2 ]);
  op ctx t2 ~at:110 (read_req [ x; y ]) (expect_values "t2 reads" [ 1; 2 ]);
  op ctx t1 ~at:200 (E.Write [ (x, 5) ]) (expect_ok "t1 writes x");
  op ctx t2 ~at:210 (E.Write [ (y, 6) ]) (expect_ok "t2 writes y");
  op ctx t1 ~at:300 E.Commit (expect_ok "t1 commits first");
  op ctx t2 ~at:400 E.Commit (fun r ->
      t2_commit := (match r with E.Ok_commit -> `Ok | _ -> `Aborted));
  Sim.run ctx.sim;
  Alcotest.(check bool) "write skew prevented" true (!t2_commit = `Aborted)

let test_ssi_allows_serial () =
  let ctx = setup ~profile:P.postgresql ~level:I.Serializable () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  op ctx t1 ~at:100 (read_req [ x; y ]) (expect_values "reads" [ 1; 2 ]);
  op ctx t1 ~at:110 (E.Write [ (x, 5) ]) (expect_ok "write");
  op ctx t1 ~at:120 E.Commit (expect_ok "commit");
  let t2 = E.begin_txn ctx.eng ~client:1 in
  op ctx t2 ~at:200 (read_req [ x; y ]) (expect_values "reads new" [ 5; 2 ]);
  op ctx t2 ~at:210 (E.Write [ (y, 6) ]) (expect_ok "write");
  op ctx t2 ~at:220 E.Commit (expect_ok "commit");
  Sim.run ctx.sim;
  Alcotest.(check int) "both committed" 2 (E.commits ctx.eng)

(* --- MVTO (CockroachDB) --- *)

let test_mvto_uncertainty_restart () =
  let ctx = setup ~profile:P.cockroachdb ~level:I.Serializable () in
  let old_txn = E.begin_txn ctx.eng ~client:0 in
  let writer = E.begin_txn ctx.eng ~client:1 in
  (* writer starts before the reader, commits after the reader began *)
  op ctx writer ~at:50 (E.Write [ (x, 5) ]) (expect_ok "w writes");
  op ctx old_txn ~at:100 (read_req [ y ]) (expect_values "r starts" [ 2 ]);
  op ctx writer ~at:200 E.Commit (expect_ok "w commits");
  op ctx old_txn ~at:300 (read_req [ x ]) (expect_abort "uncertainty restart");
  Sim.run ctx.sim

let test_mvto_write_too_late () =
  let ctx = setup ~profile:P.cockroachdb ~level:I.Serializable () in
  let old_txn = E.begin_txn ctx.eng ~client:0 in
  let young = E.begin_txn ctx.eng ~client:1 in
  op ctx old_txn ~at:100 (read_req [ y ]) (expect_values "old starts" [ 2 ]);
  op ctx young ~at:150 (E.Write [ (x, 5) ]) (expect_ok "young writes");
  op ctx young ~at:160 E.Commit (expect_ok "young commits");
  op ctx old_txn ~at:300 (E.Write [ (x, 6) ]) (expect_abort "old write refused");
  Sim.run ctx.sim

(* --- OCC (FoundationDB) --- *)

let test_occ_validation_abort () =
  let ctx = setup ~profile:P.foundationdb ~level:I.Serializable () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  op ctx t1 ~at:100 (read_req [ x ]) (expect_values "t1 reads" [ 1 ]);
  op ctx t2 ~at:150 (E.Write [ (x, 5) ]) (expect_ok "t2 writes");
  op ctx t2 ~at:160 E.Commit (expect_ok "t2 commits");
  op ctx t1 ~at:200 (E.Write [ (y, 6) ]) (expect_ok "t1 writes");
  op ctx t1 ~at:300 E.Commit (expect_abort "t1 validation fails");
  Sim.run ctx.sim

let test_occ_clean_commit () =
  let ctx = setup ~profile:P.foundationdb ~level:I.Serializable () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  op ctx t1 ~at:100 (read_req [ x ]) (expect_values "reads" [ 1 ]);
  op ctx t1 ~at:110 (E.Write [ (y, 6) ]) (expect_ok "writes");
  op ctx t1 ~at:120 E.Commit (expect_ok "commits");
  Sim.run ctx.sim

(* --- fault injection unit checks --- *)

let test_fault_stale_read () =
  let ctx =
    setup ~faults:[ F.Stale_read ] ~profile:P.innodb ~level:I.Repeatable_read ()
  in
  let w = E.begin_txn ctx.eng ~client:0 in
  op ctx w ~at:100 (E.Write [ (x, 5) ]) (expect_ok "w");
  op ctx w ~at:110 E.Commit (expect_ok "c");
  let r = E.begin_txn ctx.eng ~client:1 in
  op ctx r ~at:200 (read_req [ x ]) (expect_values "stale value" [ 1 ]);
  Sim.run ctx.sim

let test_fault_dirty_read () =
  let ctx =
    setup ~faults:[ F.Dirty_read ] ~profile:P.innodb ~level:I.Repeatable_read ()
  in
  let w = E.begin_txn ctx.eng ~client:0 in
  let r = E.begin_txn ctx.eng ~client:1 in
  op ctx w ~at:100 (E.Write [ (x, 5) ]) (expect_ok "w");
  op ctx r ~at:200 (read_req [ x ]) (expect_values "dirty value" [ 5 ]);
  op ctx w ~at:300 E.Commit (expect_ok "c");
  Sim.run ctx.sim

let test_fault_ignore_own_writes () =
  let ctx =
    setup
      ~faults:[ F.Ignore_own_writes ]
      ~profile:P.innodb ~level:I.Repeatable_read ()
  in
  let t = E.begin_txn ctx.eng ~client:0 in
  op ctx t ~at:100 (E.Write [ (x, 5) ]) (expect_ok "w");
  op ctx t ~at:110 (read_req [ x ]) (expect_values "misses own write" [ 1 ]);
  Sim.run ctx.sim

let test_fault_read_two_versions () =
  let ctx =
    setup
      ~faults:[ F.Read_two_versions ]
      ~profile:P.innodb ~level:I.Repeatable_read ()
  in
  let t = E.begin_txn ctx.eng ~client:0 in
  op ctx t ~at:100 (E.Write [ (x, 5) ]) (expect_ok "w");
  op ctx t ~at:110 (read_req [ x ]) (fun r ->
      match r with
      | E.Ok_read items ->
        Alcotest.(check int) "two items for one cell" 2 (List.length items)
      | _ -> Alcotest.fail "read failed");
  Sim.run ctx.sim

let test_fault_no_lock_on_noop () =
  let ctx =
    setup
      ~faults:[ F.No_lock_on_noop_update ]
      ~profile:P.innodb ~level:I.Repeatable_read ()
  in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t2_done = ref (-1) in
  (* both write the current value: no lock is taken, t2 does not wait *)
  op ctx t1 ~at:100 (E.Write [ (x, 1) ]) (expect_ok "t1 noop write");
  op ctx t2 ~at:150 (E.Write [ (x, 1) ]) (fun r ->
      expect_ok "t2 noop write" r;
      t2_done := Sim.now ctx.sim);
  op ctx t1 ~at:500 E.Commit (expect_ok "t1 commit");
  Sim.run ctx.sim;
  Alcotest.(check bool) "t2 did not wait (dirty write)" true
    (!t2_done < 500 && !t2_done >= 0)

let test_fault_early_lock_release () =
  let ctx =
    setup
      ~faults:[ F.Early_lock_release ]
      ~profile:P.innodb ~level:I.Repeatable_read ()
  in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t2_done = ref (-1) in
  op ctx t1 ~at:100 (E.Write [ (x, 5) ]) (expect_ok "t1 write");
  op ctx t2 ~at:150 (E.Write [ (x, 6) ]) (fun r ->
      expect_ok "t2 write" r;
      t2_done := Sim.now ctx.sim);
  op ctx t1 ~at:500 E.Commit (expect_ok "t1 commit");
  Sim.run ctx.sim;
  Alcotest.(check bool) "lock released early" true
    (!t2_done < 500 && !t2_done >= 0)

let test_fault_partial_commit () =
  let ctx =
    setup ~faults:[ F.Partial_commit ] ~profile:P.innodb
      ~level:I.Repeatable_read ()
  in
  let w = E.begin_txn ctx.eng ~client:0 in
  op ctx w ~at:100 (E.Write [ (x, 5); (y, 6) ]) (expect_ok "w");
  op ctx w ~at:110 E.Commit (expect_ok "c");
  let r = E.begin_txn ctx.eng ~client:1 in
  op ctx r ~at:200 (read_req [ x; y ]) (expect_values "prefix only" [ 5; 2 ]);
  Sim.run ctx.sim

let test_fault_delayed_visibility () =
  let ctx =
    setup
      ~faults:[ F.Delayed_visibility ]
      ~profile:P.innodb ~level:I.Read_committed ()
  in
  let w = E.begin_txn ctx.eng ~client:0 in
  op ctx w ~at:100 (E.Write [ (x, 5) ]) (expect_ok "w");
  op ctx w ~at:110 E.Commit (expect_ok "c");
  let r1 = E.begin_txn ctx.eng ~client:1 in
  op ctx r1 ~at:200 (read_req [ x ]) (expect_values "invisible yet" [ 1 ]);
  let r2 = E.begin_txn ctx.eng ~client:2 in
  op ctx r2 ~at:20_000_000 (read_req [ x ]) (expect_values "visible later" [ 5 ]);
  Sim.run ctx.sim

let test_fault_no_fuw () =
  let ctx =
    setup ~faults:[ F.No_fuw ] ~profile:P.postgresql
      ~level:I.Snapshot_isolation ()
  in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  op ctx t1 ~at:100 (read_req [ x ]) (expect_values "t1 snap" [ 1 ]);
  op ctx t2 ~at:110 (read_req [ x ]) (expect_values "t2 snap" [ 1 ]);
  op ctx t1 ~at:200 (E.Write [ (x, 5) ]) (expect_ok "t1 write");
  op ctx t1 ~at:210 E.Commit (expect_ok "t1 commit");
  op ctx t2 ~at:300 (E.Write [ (x, 6) ]) (expect_ok "lost update admitted");
  op ctx t2 ~at:400 E.Commit (expect_ok "t2 commit");
  Sim.run ctx.sim;
  Alcotest.(check int) "both committed" 2 (E.commits ctx.eng)

(* --- ground truth --- *)

let test_ground_truth_deps () =
  let ctx = setup ~profile:P.postgresql ~level:I.Read_committed () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t3 = E.begin_txn ctx.eng ~client:2 in
  (* t1 installs x=5; t2 reads it; t3 overwrites it. *)
  op ctx t1 ~at:100 (E.Write [ (x, 5) ]) (expect_ok "t1 w");
  op ctx t1 ~at:110 E.Commit (expect_ok "t1 c");
  op ctx t2 ~at:200 (read_req [ x ]) (expect_values "t2 r" [ 5 ]);
  op ctx t2 ~at:210 E.Commit (expect_ok "t2 c");
  op ctx t3 ~at:300 (E.Write [ (x, 7) ]) (expect_ok "t3 w");
  op ctx t3 ~at:310 E.Commit (expect_ok "t3 c");
  Sim.run ctx.sim;
  let deps =
    Minidb.Ground_truth.deps (E.ground_truth ctx.eng)
      ~committed:(E.committed ctx.eng)
  in
  let has kind from_txn to_txn =
    List.exists
      (fun (d : Minidb.Ground_truth.dep) ->
        d.kind = kind
        && d.from_txn = E.txn_id from_txn
        && d.to_txn = E.txn_id to_txn)
      deps
  in
  Alcotest.(check bool) "wr t1->t2" true (has Minidb.Ground_truth.Wr t1 t2);
  Alcotest.(check bool) "ww t1->t3" true (has Minidb.Ground_truth.Ww t1 t3);
  Alcotest.(check bool) "rw t2->t3" true (has Minidb.Ground_truth.Rw t2 t3);
  Alcotest.(check int) "exactly three deps" 3 (List.length deps)

let test_abort_wakes_waiters () =
  (* a user rollback releases locks and unblocks the queue *)
  let ctx = setup ~profile:P.postgresql ~level:I.Read_committed () in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t2_done = ref (-1) in
  op ctx t1 ~at:100 (E.Write [ (x, 5) ]) (expect_ok "t1 write");
  op ctx t2 ~at:150 (E.Write [ (x, 6) ]) (fun r ->
      expect_ok "t2 write" r;
      t2_done := Sim.now ctx.sim);
  op ctx t1 ~at:300 E.Abort expect_abort_silent;
  Sim.run ctx.sim;
  Alcotest.(check bool) "t2 granted at abort" true (!t2_done >= 300)

let test_predicate_fault_scope () =
  (* the predicate-read fault must not affect plain locking reads *)
  let ctx =
    setup
      ~faults:[ F.Predicate_read_ignores_locks ]
      ~profile:P.postgresql ~level:I.Read_committed ()
  in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t2_done = ref (-1) in
  op ctx t1 ~at:100 (E.Write [ (x, 5) ]) (expect_ok "t1 write");
  (* plain FOR UPDATE read still honours the lock... *)
  op ctx t2 ~at:150
    (read_req ~locking:true [ x ])
    (fun r ->
      (match r with
      | E.Ok_read _ -> ()
      | _ -> Alcotest.fail "read failed");
      t2_done := Sim.now ctx.sim);
  op ctx t1 ~at:400 E.Commit (expect_ok "t1 commit");
  Sim.run ctx.sim;
  Alcotest.(check bool) "plain locking read waited" true (!t2_done >= 400);
  (* ...while a predicate FOR UPDATE read slips through *)
  let t3 = E.begin_txn ctx.eng ~client:2 in
  let t4 = E.begin_txn ctx.eng ~client:3 in
  let t4_done = ref (-1) in
  op ctx t3 ~at:1_000 (E.Write [ (x, 7) ]) (expect_ok "t3 write");
  op ctx t4 ~at:1_050
    (read_req ~locking:true ~predicate:true [ x ])
    (fun _ -> t4_done := Sim.now ctx.sim);
  op ctx t3 ~at:2_000 E.Commit (expect_ok "t3 commit");
  Sim.run ctx.sim;
  Alcotest.(check bool) "predicate read did not wait (fault)" true
    (!t4_done >= 0 && !t4_done < 2_000)

let test_mvto_registers_read_ts () =
  (* after an older reader, a younger writer of the same row aborts *)
  let ctx = setup ~profile:P.cockroachdb ~level:I.Serializable () in
  let reader = E.begin_txn ctx.eng ~client:0 in
  let writer = E.begin_txn ctx.eng ~client:1 in
  op ctx writer ~at:50 (read_req [ y ]) (expect_values "writer starts" [ 2 ]);
  op ctx reader ~at:100 (read_req [ x ]) (expect_values "read" [ 1 ]);
  op ctx writer ~at:200 (E.Write [ (x, 9) ]) (expect_abort "older writer loses");
  Sim.run ctx.sim

let test_table_locks_serialize () =
  (* SQLite locks whole tables: a write to a different row of the same
     table still waits *)
  let ctx =
    setup ~profile:P.sqlite ~level:I.Serializable
      ~load:[ (x, 1); (y, 2) ] ()
  in
  (* x = (0,0,0) and y = (0,1,0) share table 0 *)
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t2_done = ref (-1) in
  op ctx t1 ~at:100 (E.Write [ (x, 5) ]) (expect_ok "t1 writes row 0");
  op ctx t2 ~at:150 (E.Write [ (y, 6) ]) (fun r ->
      expect_ok "t2 writes row 1" r;
      t2_done := Sim.now ctx.sim);
  op ctx t1 ~at:500 E.Commit (expect_ok "t1 commit");
  Sim.run ctx.sim;
  Alcotest.(check bool) "t2 waited for the table lock" true (!t2_done >= 500)

let test_table_locks_tables_independent () =
  let other = Leopard_trace.Cell.make ~table:5 ~row:0 ~col:0 in
  let ctx =
    setup ~profile:P.sqlite ~level:I.Serializable
      ~load:[ (x, 1); (other, 2) ] ()
  in
  let t1 = E.begin_txn ctx.eng ~client:0 in
  let t2 = E.begin_txn ctx.eng ~client:1 in
  let t2_done = ref (-1) in
  op ctx t1 ~at:100 (E.Write [ (x, 5) ]) (expect_ok "t1 writes table 0");
  op ctx t2 ~at:150 (E.Write [ (other, 6) ]) (fun r ->
      expect_ok "t2 writes table 5" r;
      t2_done := Sim.now ctx.sim);
  op ctx t1 ~at:500 E.Commit (expect_ok "t1 commit");
  Sim.run ctx.sim;
  Alcotest.(check bool) "different tables do not conflict" true
    (!t2_done < 500 && !t2_done >= 0)

let test_profile_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "unsupported level"
    (Invalid_argument "Engine.create: profile cockroachdb does not support RC")
    (fun () ->
      ignore
        (E.create sim ~profile:P.cockroachdb ~level:I.Read_committed
           ~faults:F.Set.empty))

let test_fig1_matrix_renders () =
  let s = Minidb.Profile.fig1_matrix () in
  Alcotest.(check bool) "mentions postgresql" true
    (String.length s > 100)

let suite =
  [
    Alcotest.test_case "txn-level snapshot (RR)" `Quick test_txn_level_snapshot;
    Alcotest.test_case "stmt-level snapshot (RC)" `Quick test_stmt_level_snapshot;
    Alcotest.test_case "own writes visible" `Quick test_own_writes_visible;
    Alcotest.test_case "no dirty read" `Quick test_no_dirty_read;
    Alcotest.test_case "abort discards" `Quick test_abort_discards;
    Alcotest.test_case "write lock blocks" `Quick test_write_lock_blocks;
    Alcotest.test_case "deadlock victim" `Quick test_deadlock_victim;
    Alcotest.test_case "FUW aborts second updater" `Quick
      test_fuw_aborts_second_updater;
    Alcotest.test_case "no FUW at read committed" `Quick test_fuw_off_at_rc;
    Alcotest.test_case "SSI aborts write skew" `Quick test_ssi_aborts_write_skew;
    Alcotest.test_case "SSI allows serial history" `Quick test_ssi_allows_serial;
    Alcotest.test_case "MVTO uncertainty restart" `Quick
      test_mvto_uncertainty_restart;
    Alcotest.test_case "MVTO refuses late write" `Quick test_mvto_write_too_late;
    Alcotest.test_case "OCC validation abort" `Quick test_occ_validation_abort;
    Alcotest.test_case "OCC clean commit" `Quick test_occ_clean_commit;
    Alcotest.test_case "fault: stale read" `Quick test_fault_stale_read;
    Alcotest.test_case "fault: dirty read" `Quick test_fault_dirty_read;
    Alcotest.test_case "fault: ignore own writes" `Quick
      test_fault_ignore_own_writes;
    Alcotest.test_case "fault: read two versions" `Quick
      test_fault_read_two_versions;
    Alcotest.test_case "fault: no lock on noop update" `Quick
      test_fault_no_lock_on_noop;
    Alcotest.test_case "fault: early lock release" `Quick
      test_fault_early_lock_release;
    Alcotest.test_case "fault: partial commit" `Quick test_fault_partial_commit;
    Alcotest.test_case "fault: delayed visibility" `Quick
      test_fault_delayed_visibility;
    Alcotest.test_case "fault: no FUW" `Quick test_fault_no_fuw;
    Alcotest.test_case "ground truth deps" `Quick test_ground_truth_deps;
    Alcotest.test_case "abort wakes waiters" `Quick test_abort_wakes_waiters;
    Alcotest.test_case "predicate fault scope" `Quick test_predicate_fault_scope;
    Alcotest.test_case "MVTO registers read timestamps" `Quick
      test_mvto_registers_read_ts;
    Alcotest.test_case "table locks serialize a table" `Quick
      test_table_locks_serialize;
    Alcotest.test_case "table locks: tables independent" `Quick
      test_table_locks_tables_independent;
    Alcotest.test_case "profile validation" `Quick test_profile_validation;
    Alcotest.test_case "Fig.1 matrix renders" `Quick test_fig1_matrix_renders;
  ]
