test/test_tatp.ml: Alcotest Helpers Leopard Leopard_harness Leopard_trace Leopard_util Leopard_workload List Minidb Printf
