test/test_candidate.ml: Alcotest Hashtbl Helpers Leopard Leopard_util List Printf QCheck String
