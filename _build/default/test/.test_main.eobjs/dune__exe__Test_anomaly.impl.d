test/test_anomaly.ml: Alcotest Hashtbl Helpers Leopard Leopard_harness Leopard_workload List Minidb Option Printf String
