test/test_elle_unit.ml: Alcotest Helpers Leopard_baselines List
