test/helpers.ml: Leopard Leopard_harness Leopard_trace Leopard_util List Minidb QCheck_alcotest
