test/test_harness.ml: Alcotest Array Hashtbl Helpers Leopard_harness Leopard_trace Leopard_workload List Minidb Printf
