test/test_pipeline.ml: Alcotest Array Gen Helpers Leopard Leopard_baselines Leopard_trace List QCheck
