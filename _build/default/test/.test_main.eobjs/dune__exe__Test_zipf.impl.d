test/test_zipf.ml: Alcotest Array Leopard_util Printf
