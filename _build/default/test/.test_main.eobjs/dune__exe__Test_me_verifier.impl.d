test/test_me_verifier.ml: Alcotest Helpers Leopard Leopard_util List QCheck
