test/test_min_heap.ml: Alcotest Helpers Leopard_util List QCheck
