test/test_level_inference.ml: Alcotest Helpers Leopard Leopard_harness Leopard_workload List Minidb
