test/test_workloads.ml: Alcotest Helpers Leopard Leopard_trace Leopard_util Leopard_workload List Minidb Printf
