test/test_checker.ml: Alcotest Helpers Leopard Leopard_trace List
