test/test_pipeline_online.ml: Alcotest Helpers Leopard Leopard_trace List Queue
