test/test_sc_verifier.ml: Alcotest Array Helpers Leopard Leopard_util List QCheck
