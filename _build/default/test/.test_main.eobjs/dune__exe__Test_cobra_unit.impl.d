test/test_cobra_unit.ml: Alcotest Helpers Leopard_baselines List
