test/test_engine_props.ml: Alcotest Hashtbl Helpers Leopard_workload List Minidb Printf
