test/test_il_profile.ml: Alcotest Leopard List Minidb Option String
