test/test_stats.ml: Alcotest Gen Helpers Leopard_util List QCheck String
