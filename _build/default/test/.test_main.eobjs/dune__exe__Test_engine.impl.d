test/test_engine.ml: Alcotest Helpers Leopard_trace List Minidb String
