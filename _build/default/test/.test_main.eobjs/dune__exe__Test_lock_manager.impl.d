test/test_lock_manager.ml: Alcotest List Minidb
