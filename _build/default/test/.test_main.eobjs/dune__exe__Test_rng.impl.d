test/test_rng.ml: Alcotest Array Leopard_util List Printf
