test/test_ground_truth.ml: Alcotest Helpers List Minidb
