test/test_sim.ml: Alcotest List Minidb
