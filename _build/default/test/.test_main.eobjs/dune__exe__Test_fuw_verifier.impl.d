test/test_fuw_verifier.ml: Alcotest Helpers Leopard Leopard_util List QCheck
