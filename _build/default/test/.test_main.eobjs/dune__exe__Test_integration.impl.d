test/test_integration.ml: Alcotest Helpers Leopard Leopard_baselines Leopard_harness Leopard_trace Leopard_workload List Minidb Option Printf
