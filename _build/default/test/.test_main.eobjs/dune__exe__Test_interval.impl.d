test/test_interval.ml: Alcotest Fun Helpers Leopard_util List QCheck
