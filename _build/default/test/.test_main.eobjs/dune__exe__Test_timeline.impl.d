test/test_timeline.ml: Alcotest Helpers Leopard_trace List String
