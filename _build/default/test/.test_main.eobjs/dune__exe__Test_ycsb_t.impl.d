test/test_ycsb_t.ml: Alcotest Helpers Leopard Leopard_harness Leopard_util Leopard_workload List Minidb
