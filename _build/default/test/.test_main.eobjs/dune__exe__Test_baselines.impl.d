test/test_baselines.ml: Alcotest Array Helpers Leopard Leopard_baselines Leopard_harness Leopard_workload List Minidb Option Printf String
