test/test_version_store.ml: Alcotest Helpers List Minidb
