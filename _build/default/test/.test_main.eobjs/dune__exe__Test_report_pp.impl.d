test/test_report_pp.ml: Alcotest Helpers Leopard Leopard_harness Leopard_workload List Minidb Option String
