test/test_fuzz.ml: Hashtbl Helpers Leopard Leopard_trace List Option QCheck
