test/test_online.ml: Alcotest Array Helpers Leopard Leopard_harness Leopard_workload List Minidb Option Printf
