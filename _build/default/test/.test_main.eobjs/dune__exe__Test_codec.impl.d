test/test_codec.ml: Alcotest Filename Fun Helpers Leopard Leopard_harness Leopard_trace Leopard_workload List Minidb QCheck Result String Sys
