test/test_trace.ml: Alcotest Helpers Leopard_trace Leopard_util List Result String
