module Interval = Leopard_util.Interval

let iv = Helpers.iv

(* Fig. 3(a): disjoint intervals give certainty. *)
let test_certainly_before () =
  Alcotest.(check bool) "disjoint" true
    (Interval.certainly_before (iv 0 5) (iv 5 10));
  Alcotest.(check bool) "gap" true
    (Interval.certainly_before (iv 0 5) (iv 7 10));
  Alcotest.(check bool) "overlap not certain" false
    (Interval.certainly_before (iv 0 6) (iv 5 10));
  Alcotest.(check bool) "reverse" false
    (Interval.certainly_before (iv 5 10) (iv 0 5))

(* Fig. 3(b)-(d): overlap shapes. *)
let test_overlaps () =
  Alcotest.(check bool) "partial" true (Interval.overlaps (iv 0 6) (iv 5 10));
  Alcotest.(check bool) "containment" true
    (Interval.overlaps (iv 0 10) (iv 3 7));
  Alcotest.(check bool) "identical" true (Interval.overlaps (iv 1 4) (iv 1 4));
  Alcotest.(check bool) "disjoint" false (Interval.overlaps (iv 0 5) (iv 5 10));
  Alcotest.(check bool) "symmetric" true (Interval.overlaps (iv 5 10) (iv 0 6))

let test_possibly_before () =
  (* a's instant can precede b's instant iff a.bef < b.aft *)
  Alcotest.(check bool) "disjoint forward" true
    (Interval.possibly_before (iv 0 5) (iv 5 10));
  Alcotest.(check bool) "disjoint backward" false
    (Interval.possibly_before (iv 5 10) (iv 0 5));
  Alcotest.(check bool) "overlap both ways (fwd)" true
    (Interval.possibly_before (iv 0 6) (iv 5 10));
  Alcotest.(check bool) "overlap both ways (bwd)" true
    (Interval.possibly_before (iv 5 10) (iv 0 6))

let test_make_invalid () =
  Alcotest.check_raises "bef >= aft"
    (Invalid_argument "Interval.make: need bef < aft, got (5, 5)") (fun () ->
      ignore (iv 5 5))

let test_accessors () =
  let i = iv 3 9 in
  Alcotest.(check int) "bef" 3 (Interval.bef i);
  Alcotest.(check int) "aft" 9 (Interval.aft i);
  Alcotest.(check int) "duration" 6 (Interval.duration i)

let test_hull () =
  Alcotest.(check bool) "hull" true
    (Interval.equal (Interval.hull (iv 1 4) (iv 3 9)) (iv 1 9))

let test_orders () =
  Alcotest.(check bool) "by bef" true
    (Interval.compare_by_bef (iv 1 9) (iv 2 3) < 0);
  Alcotest.(check bool) "by bef tie on aft" true
    (Interval.compare_by_bef (iv 1 3) (iv 1 9) < 0);
  Alcotest.(check bool) "by aft" true
    (Interval.compare_by_aft (iv 5 6) (iv 1 9) < 0)

let interval_gen =
  QCheck.Gen.(
    map2
      (fun a b -> iv (min a b) (max a b + 1))
      (int_bound 1000) (int_bound 1000))

let arb_interval = QCheck.make interval_gen ~print:Interval.to_string

let prop_trichotomy =
  QCheck.Test.make ~name:"exactly one of before/after/overlaps" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
      let cases =
        [
          Interval.certainly_before a b;
          Interval.certainly_before b a;
          Interval.overlaps a b;
        ]
      in
      List.length (List.filter Fun.id cases) = 1)

let prop_certain_implies_possible =
  QCheck.Test.make ~name:"certainly_before implies possibly_before" ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
      (not (Interval.certainly_before a b)) || Interval.possibly_before a b)

let prop_not_possible_is_certain_reverse =
  QCheck.Test.make ~name:"not possibly_before a b implies certainly_before b a"
    ~count:500
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
      Interval.possibly_before a b || Interval.certainly_before b a)

let prop_instants_witness =
  (* Monte-carlo soundness: real instants drawn inside the intervals
     respect the certainty predicates. *)
  QCheck.Test.make ~name:"sampled instants agree with certainty" ~count:500
    (QCheck.triple arb_interval arb_interval QCheck.small_int)
    (fun (a, b, seed) ->
      let rng = Leopard_util.Rng.create seed in
      let inside i =
        let lo = Interval.bef i and hi = Interval.aft i in
        lo + 1 + Leopard_util.Rng.int rng (max 1 (hi - lo - 1))
        |> float_of_int
        |> fun x -> x -. 0.5
      in
      let pa = inside a and pb = inside b in
      (not (Interval.certainly_before a b)) || pa < pb)

let suite =
  [
    Alcotest.test_case "certainly_before (Fig 3a)" `Quick test_certainly_before;
    Alcotest.test_case "overlaps (Fig 3b-d)" `Quick test_overlaps;
    Alcotest.test_case "possibly_before" `Quick test_possibly_before;
    Alcotest.test_case "make rejects empty" `Quick test_make_invalid;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "hull" `Quick test_hull;
    Alcotest.test_case "orders" `Quick test_orders;
    Helpers.qtest prop_trichotomy;
    Helpers.qtest prop_certain_implies_possible;
    Helpers.qtest prop_not_possible_is_certain_reverse;
    Helpers.qtest prop_instants_witness;
  ]
