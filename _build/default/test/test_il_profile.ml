module Il = Leopard.Il_profile

let test_find () =
  Alcotest.(check bool) "finds SR" true (Il.find "postgresql/SR" <> None);
  Alcotest.(check bool) "finds table-lock profile" true
    (Il.find "sqlite/SR" <> None);
  Alcotest.(check bool) "rejects unknown" true (Il.find "mysql/XX" = None)

let test_names_unique () =
  let names = List.map (fun (p : Il.t) -> p.name) Il.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_rr_is_si () =
  let rr = Option.get (Il.find "postgresql/RR") in
  let si = Option.get (Il.find "postgresql/SI") in
  Alcotest.(check bool) "same mechanisms" true
    (rr.check_me = si.check_me && rr.check_cr = si.check_cr
    && rr.check_fuw = si.check_fuw && rr.check_sc = si.check_sc)

let test_sqlite_table_locks () =
  let p = Option.get (Il.find "sqlite/SR") in
  Alcotest.(check bool) "table granularity" true
    (p.lock_granularity = Il.Table_locks);
  Alcotest.(check bool) "no CR" true (p.check_cr = None)

let test_engine_verifier_agreement () =
  (* every verifier profile name corresponds to an engine (profile, level)
     that actually exists, and their mechanism sets agree where they
     should *)
  List.iter
    (fun (p : Il.t) ->
      match String.split_on_char '/' p.name with
      | [ dbms; level_s ] ->
        let engine = Option.get (Minidb.Profile.find dbms) in
        (match Minidb.Isolation.level_of_string level_s with
        | Some level when Minidb.Profile.supports engine level ->
          let m = Minidb.Profile.mechanisms engine level in
          Alcotest.(check bool)
            (p.name ^ ": ME agreement")
            true
            (p.check_me = (m.Minidb.Isolation.me_writes || m.me_reads));
          Alcotest.(check bool)
            (p.name ^ ": CR agreement")
            true
            ((p.check_cr <> None) = (m.cr <> None))
        | _ ->
          (* postgresql/RR is an alias level the engine spells SI *)
          Alcotest.(check bool)
            (p.name ^ " is a documented alias")
            true
            (p.name = "postgresql/RR"))
      | _ -> Alcotest.failf "bad profile name %s" p.name)
    Il.all

let test_mechanism_letters () =
  let m =
    Minidb.Profile.mechanisms Minidb.Profile.postgresql
      Minidb.Isolation.Serializable
  in
  Alcotest.(check string) "pg SR letters" "ME+CR+FUW+SC"
    (Minidb.Isolation.mechanism_letters m);
  let sqlite =
    Minidb.Profile.mechanisms Minidb.Profile.sqlite
      Minidb.Isolation.Serializable
  in
  Alcotest.(check string) "sqlite letters" "ME"
    (Minidb.Isolation.mechanism_letters sqlite)

let suite =
  [
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "postgresql RR is SI" `Quick test_rr_is_si;
    Alcotest.test_case "sqlite table locks" `Quick test_sqlite_table_locks;
    Alcotest.test_case "engine/verifier agreement" `Quick
      test_engine_verifier_agreement;
    Alcotest.test_case "mechanism letters" `Quick test_mechanism_letters;
  ]
