module Me = Leopard.Me_verifier
module Interval = Leopard_util.Interval

let iv = Helpers.iv

let entry ?(txn = 0) ?(mode = Me.X) ~acquire ?release () =
  { Me.etxn = txn; mode; acquire_iv = acquire; release_iv = release }

(* Fig. 7(a): both lock cycles certainly nested -> violation. *)
let test_fig7a_violation () =
  let t0 =
    entry ~txn:0 ~acquire:(iv 0 10) ~release:(iv 100 110) ()
  in
  let t1 =
    entry ~txn:1 ~acquire:(iv 20 30) ~release:(iv 40 50) ()
  in
  Alcotest.(check bool) "violation" true
    (Me.judge ~mine:t0 ~other:t1 = Me.Violation)

(* Fig. 7(b): exactly one feasible order -> ww deduced. *)
let test_fig7b_ww () =
  let t0 =
    entry ~txn:0 ~acquire:(iv 0 10) ~release:(iv 20 35) ()
  in
  let t1 =
    entry ~txn:1 ~acquire:(iv 30 40) ~release:(iv 50 60) ()
  in
  (match Me.judge ~mine:t0 ~other:t1 with
  | Me.Ww (a, b) ->
    Alcotest.(check (pair int int)) "t0 before t1" (0, 1) (a, b)
  | Me.Violation | Me.Unordered -> Alcotest.fail "expected ww");
  (* symmetric call gives the same order *)
  match Me.judge ~mine:t1 ~other:t0 with
  | Me.Ww (a, b) -> Alcotest.(check (pair int int)) "same order" (0, 1) (a, b)
  | Me.Violation | Me.Unordered -> Alcotest.fail "expected ww"

let test_disjoint_direct () =
  let t0 = entry ~txn:0 ~acquire:(iv 0 10) ~release:(iv 20 30) () in
  let t1 = entry ~txn:1 ~acquire:(iv 40 50) ~release:(iv 60 70) () in
  match Me.judge ~mine:t0 ~other:t1 with
  | Me.Ww (0, 1) -> ()
  | _ -> Alcotest.fail "expected direct ww"

let test_judge_requires_release () =
  let t0 = entry ~txn:0 ~acquire:(iv 0 10) () in
  let t1 = entry ~txn:1 ~acquire:(iv 5 15) ~release:(iv 20 30) () in
  Alcotest.check_raises "unreleased"
    (Invalid_argument "Me_verifier.judge: both entries must be released")
    (fun () -> ignore (Me.judge ~mine:t0 ~other:t1))

(* Theorem 3 property: for well-formed per-transaction intervals
   (acquire.aft <= release.bef), Unordered never occurs. *)
let prop_theorem3 =
  let gen =
    QCheck.Gen.(
      let wf =
        (* acquire interval then release interval, strictly later *)
        map
          (fun (a, b, c, d) ->
            let xs = List.sort compare [ a; b; c; d ] in
            match xs with
            | [ p; q; r; s ] -> (iv p (q + 1), iv (q + 1 + r) (q + 2 + r + s))
            | _ -> assert false)
          (quad (int_bound 100) (int_bound 100) (int_bound 100) (int_bound 100))
      in
      pair wf wf)
  in
  QCheck.Test.make ~name:"theorem 3: never unordered" ~count:1000
    (QCheck.make gen) (fun ((a0, r0), (a1, r1)) ->
      let e0 = entry ~txn:0 ~acquire:a0 ~release:r0 () in
      let e1 = entry ~txn:1 ~acquire:a1 ~release:r1 () in
      Me.judge ~mine:e0 ~other:e1 <> Me.Unordered)

(* Violation soundness: if there exist instants inside the intervals under
   which the two holds do not overlap, judge must not report Violation. *)
let prop_violation_sound =
  let gen =
    QCheck.Gen.(
      let wf =
        map
          (fun (a, b, c, d) ->
            let xs = List.sort compare [ a; b; c; d ] in
            match xs with
            | [ p; q; r; s ] -> (iv p (q + 1), iv (q + 1 + r) (q + 2 + r + s))
            | _ -> assert false)
          (quad (int_bound 60) (int_bound 60) (int_bound 60) (int_bound 60))
      in
      pair wf wf)
  in
  QCheck.Test.make ~name:"ME violation is certain" ~count:500 (QCheck.make gen)
    (fun ((a0, r0), (a1, r1)) ->
      let e0 = entry ~txn:0 ~acquire:a0 ~release:r0 () in
      let e1 = entry ~txn:1 ~acquire:a1 ~release:r1 () in
      match Me.judge ~mine:e0 ~other:e1 with
      | Me.Violation ->
        (* no serial order possible: r0 cannot precede a1 and r1 cannot
           precede a0 even at the extremes *)
        Interval.bef r0 >= Interval.aft a1
        && Interval.bef r1 >= Interval.aft a0
      | Me.Ww _ | Me.Unordered -> true)

(* Lock-table bookkeeping. *)
let row = (0, 0)

let test_acquire_release_flow () =
  let t = Me.create () in
  Me.acquire t ~row ~txn:1 Me.X ~iv:(iv 0 10);
  Me.acquire t ~row ~txn:2 Me.X ~iv:(iv 20 30);
  Alcotest.(check int) "two entries" 2 (Me.live_entries t);
  let verdicts = ref [] in
  Me.release t ~txn:1 ~iv:(iv 15 18) ~on_pair:(fun ~row:_ ~mine:_ ~other:_ v ->
      verdicts := v :: !verdicts);
  (* partner not yet released: no pair evaluated *)
  Alcotest.(check int) "deferred" 0 (List.length !verdicts);
  Me.release t ~txn:2 ~iv:(iv 40 50) ~on_pair:(fun ~row:_ ~mine:_ ~other:_ v ->
      verdicts := v :: !verdicts);
  Alcotest.(check int) "pair evaluated at second release" 1
    (List.length !verdicts);
  match !verdicts with
  | [ Me.Ww (1, 2) ] -> ()
  | _ -> Alcotest.fail "expected ww 1->2"

let test_upgrade_entries () =
  let t = Me.create () in
  Me.acquire t ~row ~txn:1 Me.S ~iv:(iv 0 10);
  Me.acquire t ~row ~txn:1 Me.X ~iv:(iv 20 30);
  (* separate S and X entries *)
  Alcotest.(check int) "S + X entries" 2 (Me.live_entries t);
  Me.acquire t ~row ~txn:1 Me.S ~iv:(iv 40 50);
  Alcotest.(check int) "S subsumed by X" 2 (Me.live_entries t)

let test_shared_locks_no_pair () =
  let t = Me.create () in
  Me.acquire t ~row ~txn:1 Me.S ~iv:(iv 0 10);
  Me.acquire t ~row ~txn:2 Me.S ~iv:(iv 0 10);
  let calls = ref 0 in
  Me.release t ~txn:1 ~iv:(iv 20 30) ~on_pair:(fun ~row:_ ~mine:_ ~other:_ _ ->
      incr calls);
  Me.release t ~txn:2 ~iv:(iv 20 30) ~on_pair:(fun ~row:_ ~mine:_ ~other:_ _ ->
      incr calls);
  Alcotest.(check int) "S/S compatible" 0 !calls

let test_prune () =
  let t = Me.create () in
  Me.acquire t ~row ~txn:1 Me.X ~iv:(iv 0 10);
  Me.release t ~txn:1 ~iv:(iv 20 30) ~on_pair:(fun ~row:_ ~mine:_ ~other:_ _ ->
      ());
  Me.acquire t ~row ~txn:2 Me.X ~iv:(iv 40 50);
  Alcotest.(check int) "entries before prune" 2 (Me.live_entries t);
  let dropped = Me.prune t ~horizon:35 in
  Alcotest.(check int) "released old entry pruned" 1 dropped;
  Alcotest.(check int) "unreleased kept" 1 (Me.live_entries t)

let suite =
  [
    Alcotest.test_case "Fig.7a violation" `Quick test_fig7a_violation;
    Alcotest.test_case "Fig.7b ww deduction" `Quick test_fig7b_ww;
    Alcotest.test_case "disjoint direct order" `Quick test_disjoint_direct;
    Alcotest.test_case "judge requires release" `Quick test_judge_requires_release;
    Helpers.qtest prop_theorem3;
    Helpers.qtest prop_violation_sound;
    Alcotest.test_case "acquire/release flow" `Quick test_acquire_release_flow;
    Alcotest.test_case "upgrade entries" `Quick test_upgrade_entries;
    Alcotest.test_case "shared locks no pair" `Quick test_shared_locks_no_pair;
    Alcotest.test_case "prune" `Quick test_prune;
  ]
