(* Scenario tests for the Verifier: hand-crafted trace sequences with
   known verdicts, exercising Algorithm 2 end to end. *)

module Checker = Leopard.Checker
module Il = Leopard.Il_profile

let x = Helpers.cell 0
let y = Helpers.cell 1

let rr = Il.tidb_rr  (* ME + CR(txn), no FUW, no SC *)
let rc = Il.postgresql_rc
let si = Il.postgresql_si
let sr = Il.postgresql_serializable

(* --- clean scenarios: no violations --- *)

let test_clean_serial_history () =
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~txn:2 ~bef:50 ~aft:60 [ (x, 100) ];
      Helpers.write ~txn:2 ~bef:70 ~aft:80 [ (x, 200) ];
      Helpers.commit ~txn:2 ~bef:90 ~aft:100 ();
      Helpers.read ~txn:3 ~bef:110 ~aft:120 [ (x, 200) ];
      Helpers.commit ~txn:3 ~bef:130 ~aft:140 ();
    ]
  in
  let r = Helpers.check sr traces in
  Alcotest.(check int) "no bugs" 0 r.bugs_total;
  Alcotest.(check int) "committed" 3 r.committed;
  (* wr(1->2), ww(1->2), wr(2->3), rw and friends *)
  Alcotest.(check bool) "deps deduced" true (r.deps_deduced >= 3)

let test_clean_snapshot_read () =
  (* reader's transaction-level snapshot predates a concurrent commit:
     reading the old value is correct under RR/SI *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~txn:2 ~bef:50 ~aft:60 [ (x, 100) ];  (* snapshot here *)
      Helpers.write ~txn:3 ~bef:70 ~aft:80 [ (x, 300) ];
      Helpers.commit ~txn:3 ~bef:90 ~aft:100 ();
      Helpers.read ~txn:2 ~bef:110 ~aft:120 [ (x, 100) ];  (* still old *)
      Helpers.commit ~txn:2 ~bef:130 ~aft:140 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "repeatable read accepted" 0 r.bugs_total

let test_clean_stmt_level_read () =
  (* the same history is also fine at read committed *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~txn:2 ~bef:50 ~aft:60 [ (x, 100) ];
      Helpers.write ~txn:3 ~bef:70 ~aft:80 [ (x, 300) ];
      Helpers.commit ~txn:3 ~bef:90 ~aft:100 ();
      Helpers.read ~txn:2 ~bef:110 ~aft:120 [ (x, 300) ];  (* sees new *)
      Helpers.commit ~txn:2 ~bef:130 ~aft:140 ();
    ]
  in
  let r = Helpers.check rc traces in
  Alcotest.(check int) "read committed accepted" 0 r.bugs_total

let test_overlapping_commit_tolerated () =
  (* the version's commit interval overlaps the snapshot: either value is
     possible, no violation *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:40 ~aft:60 ();
      Helpers.read ~txn:2 ~bef:50 ~aft:70 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:80 ~aft:90 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "overlap tolerated" 0 r.bugs_total

(* --- CR violations --- *)

let test_cr_stale_read_flagged () =
  (* two versions certainly installed before the snapshot; reading the
     older (garbage) one is a violation *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.write ~txn:2 ~bef:50 ~aft:60 [ (x, 200) ];
      Helpers.commit ~txn:2 ~bef:70 ~aft:80 ();
      Helpers.read ~txn:3 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:3 ~bef:120 ~aft:130 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "stale read flagged" 1 r.bugs_total;
  Alcotest.(check (list string)) "CR mechanism" [ "CR" ]
    (Helpers.bug_mechanisms r)

let test_cr_dirty_read_flagged () =
  (* reading a value whose writer never committed *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.write ~txn:2 ~bef:50 ~aft:60 [ (x, 666) ];
      Helpers.read ~txn:3 ~bef:70 ~aft:80 [ (x, 666) ];
      Helpers.abort ~txn:2 ~bef:90 ~aft:100 ();
      Helpers.commit ~txn:3 ~bef:110 ~aft:120 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "dirty read flagged" 1 r.bugs_total;
  Alcotest.(check (list string)) "CR mechanism" [ "CR" ]
    (Helpers.bug_mechanisms r)

let test_cr_own_write_violation () =
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:1 ~bef:30 ~aft:40 [ (x, 55) ];  (* not 100! *)
      Helpers.commit ~txn:1 ~bef:50 ~aft:60 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "own write missed" 1 r.bugs_total

let test_cr_own_write_ok () =
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:1 ~bef:30 ~aft:40 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:50 ~aft:60 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "own write seen" 0 r.bugs_total

let test_cr_future_read_flagged () =
  (* reading a version whose commit is certainly after the snapshot *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      (* txn3's snapshot is its first read at (50,60) *)
      Helpers.read ~txn:3 ~bef:50 ~aft:60 [ (y, 0) ];
      Helpers.write ~txn:2 ~bef:70 ~aft:80 [ (x, 200) ];
      Helpers.commit ~txn:2 ~bef:90 ~aft:100 ();
      Helpers.read ~txn:3 ~bef:110 ~aft:120 [ (x, 200) ];  (* future! *)
      Helpers.commit ~txn:3 ~bef:130 ~aft:140 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "future read flagged" 1 r.bugs_total

(* deferred-read machinery: a commit trace whose ts_bef precedes the
   reading trace's ts_bef must still be matched *)
let test_deferred_read_out_of_order_commit () =
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      (* the read is dispatched before the writer's commit trace (smaller
         ts_bef), yet legitimately observed the committed value: the
         deferred check must wait for the commit *)
      Helpers.read ~txn:2 ~bef:22 ~aft:90 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:25 ~aft:85 ();
      Helpers.commit ~txn:2 ~bef:95 ~aft:105 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "no false dirty read" 0 r.bugs_total

(* --- ME violations --- *)

let test_me_dirty_write_flagged () =
  (* txn2's whole write+commit nests inside txn1's lock hold *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.write ~txn:2 ~bef:30 ~aft:40 [ (x, 200) ];
      Helpers.commit ~txn:2 ~bef:50 ~aft:60 ();
      Helpers.commit ~txn:1 ~bef:70 ~aft:80 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check bool) "ME violation" true
    (List.mem "ME" (Helpers.bug_mechanisms r))

let test_me_locking_read_flagged () =
  (* a FOR UPDATE read slipping inside a writer's lock hold *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~locking:true ~txn:2 ~bef:30 ~aft:40 [ (x, 1) ];
      Helpers.commit ~txn:2 ~bef:50 ~aft:60 ();
      Helpers.commit ~txn:1 ~bef:70 ~aft:80 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check bool) "ME violation via locking read" true
    (List.mem "ME" (Helpers.bug_mechanisms r))

let test_me_serial_locks_ok () =
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.write ~txn:2 ~bef:50 ~aft:60 [ (x, 200) ];
      Helpers.commit ~txn:2 ~bef:70 ~aft:80 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check int) "serial locks fine" 0 r.bugs_total

let test_me_aborted_txn_still_checked () =
  (* the nested transaction aborts: its lock usage is still a violation *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.write ~txn:2 ~bef:30 ~aft:40 [ (x, 200) ];
      Helpers.abort ~txn:2 ~bef:50 ~aft:60 ();
      Helpers.commit ~txn:1 ~bef:70 ~aft:80 ();
    ]
  in
  let r = Helpers.check rr traces in
  Alcotest.(check bool) "aborted holder still flagged" true
    (List.mem "ME" (Helpers.bug_mechanisms r))

(* --- FUW violations --- *)

let test_fuw_lost_update_flagged () =
  (* both updaters snapshot before either commits, both commit *)
  let traces =
    [
      Helpers.read ~txn:1 ~bef:10 ~aft:20 [ (x, 0) ];
      Helpers.read ~txn:2 ~bef:15 ~aft:25 [ (x, 0) ];
      Helpers.write ~txn:1 ~bef:30 ~aft:40 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:50 ~aft:60 ();
      Helpers.write ~txn:2 ~bef:70 ~aft:80 [ (x, 200) ];
      Helpers.commit ~txn:2 ~bef:90 ~aft:100 ();
    ]
  in
  let r = Helpers.check si traces in
  Alcotest.(check bool) "FUW violation" true
    (List.mem "FUW" (Helpers.bug_mechanisms r))

let test_fuw_serial_updates_ok () =
  let traces =
    [
      Helpers.read ~txn:1 ~bef:10 ~aft:20 [ (x, 0) ];
      Helpers.write ~txn:1 ~bef:30 ~aft:40 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:50 ~aft:60 ();
      Helpers.read ~txn:2 ~bef:70 ~aft:80 [ (x, 100) ];
      Helpers.write ~txn:2 ~bef:90 ~aft:100 [ (x, 200) ];
      Helpers.commit ~txn:2 ~bef:110 ~aft:120 ();
    ]
  in
  let r = Helpers.check si traces in
  Alcotest.(check int) "serial updates fine" 0 r.bugs_total

(* --- SC violation (write skew at PostgreSQL serializable) --- *)

let test_sc_write_skew_flagged () =
  let traces =
    [
      (* initial versions, serial prefix *)
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 10); (y, 20) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      (* concurrent skew pair; note disjoint write rows so FUW/ME silent *)
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 10); (y, 20) ];
      Helpers.read ~txn:3 ~bef:105 ~aft:115 [ (x, 10); (y, 20) ];
      Helpers.write ~txn:2 ~bef:120 ~aft:130 [ (x, 11) ];
      Helpers.write ~txn:3 ~bef:125 ~aft:135 [ (y, 21) ];
      Helpers.commit ~txn:2 ~bef:140 ~aft:150 ();
      Helpers.commit ~txn:3 ~bef:160 ~aft:170 ();
    ]
  in
  let r = Helpers.check sr traces in
  Alcotest.(check bool) "SC violation" true
    (List.mem "SC" (Helpers.bug_mechanisms r))

let test_sc_serial_ok () =
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 10); (y, 20) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 10); (y, 20) ];
      Helpers.write ~txn:2 ~bef:120 ~aft:130 [ (x, 11) ];
      Helpers.commit ~txn:2 ~bef:140 ~aft:150 ();
      Helpers.read ~txn:3 ~bef:200 ~aft:210 [ (x, 11); (y, 20) ];
      Helpers.write ~txn:3 ~bef:220 ~aft:230 [ (y, 21) ];
      Helpers.commit ~txn:3 ~bef:240 ~aft:250 ();
    ]
  in
  let r = Helpers.check sr traces in
  Alcotest.(check int) "serial history fine" 0 r.bugs_total

(* --- §V-A cooperation: ww deductions narrow the candidate set --- *)

(* Two versions of x with overlapping commit intervals: intervals alone
   cannot order them, so both stay candidates and a stale read slips
   through.  The lock intervals, however, prove the order (Theorem 3), and
   the deduced ww lets the CR check drop the overwritten version. *)
let narrowing_traces =
  [
    Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
    Helpers.write ~txn:2 ~bef:35 ~aft:70 [ (x, 200) ];
    Helpers.commit ~txn:1 ~bef:30 ~aft:80 ();
    Helpers.commit ~txn:2 ~bef:75 ~aft:85 ();
    (* stale read: returns the overwritten version *)
    Helpers.read ~txn:3 ~bef:100 ~aft:110 [ (x, 100) ];
    Helpers.commit ~txn:3 ~bef:120 ~aft:130 ();
  ]

let run_narrowing ~narrow_candidates =
  let checker = Checker.create ~narrow_candidates rr in
  List.iter (Checker.feed checker)
    (List.sort Leopard_trace.Trace.compare_by_bef narrowing_traces);
  Checker.finalize checker;
  Checker.report checker

let test_narrowing_catches_stale_read () =
  let r = run_narrowing ~narrow_candidates:true in
  Alcotest.(check int) "stale read caught with narrowing" 1 r.bugs_total;
  Alcotest.(check (list string)) "CR" [ "CR" ] (Helpers.bug_mechanisms r);
  (* the enabling ww deduction came from mutual exclusion *)
  Alcotest.(check bool) "ww(1->2) deduced" true
    (List.exists
       (fun (s, n) -> s = Leopard.Dep.From_me && n > 0)
       r.deduced_by_source)

let test_narrowing_ablation () =
  let r = run_narrowing ~narrow_candidates:false in
  Alcotest.(check int) "interval reasoning alone misses it" 0 r.bugs_total

let test_narrowing_no_false_positive () =
  (* same history but the read returns the surviving version: fine *)
  let traces =
    List.map
      (fun tr ->
        match tr.Leopard_trace.Trace.payload with
        | Leopard_trace.Trace.Read _ when tr.Leopard_trace.Trace.txn = 3 ->
          Helpers.read ~txn:3 ~bef:100 ~aft:110 [ (x, 200) ]
        | _ -> tr)
      narrowing_traces
  in
  let checker = Checker.create ~narrow_candidates:true rr in
  List.iter (Checker.feed checker)
    (List.sort Leopard_trace.Trace.compare_by_bef traces);
  Checker.finalize checker;
  Alcotest.(check int) "correct read accepted" 0
    (Checker.report checker).bugs_total

(* --- table-granularity mutual exclusion (SQLite) --- *)

let test_table_lock_violation () =
  (* two writers of *different rows* of the same table, nested: fine under
     row locks, a violation under SQLite's table locks *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.write ~txn:2 ~bef:30 ~aft:40 [ (y, 200) ];  (* same table *)
      Helpers.commit ~txn:2 ~bef:50 ~aft:60 ();
      Helpers.commit ~txn:1 ~bef:70 ~aft:80 ();
    ]
  in
  let sqlite = Helpers.check Il.sqlite_serializable traces in
  Alcotest.(check bool) "table-lock violation" true
    (List.mem "ME" (Helpers.bug_mechanisms sqlite));
  let row_level = Helpers.check rr traces in
  Alcotest.(check int) "row locks accept it" 0 row_level.bugs_total

(* --- plumbing --- *)

let test_feed_rejects_unsorted () =
  let checker = Checker.create rr in
  Checker.feed checker (Helpers.commit ~txn:1 ~bef:100 ~aft:110 ());
  Alcotest.(check bool) "raises on regression" true
    (try
       Checker.feed checker (Helpers.commit ~txn:2 ~bef:50 ~aft:60 ());
       false
     with Invalid_argument _ -> true)

let test_gc_stability () =
  (* verdicts must not depend on GC frequency *)
  let traces =
    List.concat
      (List.init 40 (fun i ->
           let base = i * 100 in
           let txn = i in
           [
             Helpers.write ~txn ~bef:(base + 10) ~aft:(base + 20)
               [ (x, 1000 + i) ];
             Helpers.commit ~txn ~bef:(base + 30) ~aft:(base + 40) ();
           ]))
  in
  let run gc_every =
    let checker = Checker.create ~gc_every rr in
    List.iter (Checker.feed checker) traces;
    Checker.finalize checker;
    (Checker.report checker).bugs_total
  in
  Alcotest.(check int) "gc=1 equals gc=off" (run 0) (run 1);
  let checker = Checker.create ~gc_every:4 rr in
  List.iter (Checker.feed checker) traces;
  Checker.finalize checker;
  let r = Checker.report checker in
  Alcotest.(check bool) "gc reclaimed state" true (r.pruned_versions > 0);
  Alcotest.(check bool) "final live below peak" true
    (r.final_live <= r.peak_live)

let test_deduction_log_exposed () =
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~txn:2 ~bef:50 ~aft:60 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:70 ~aft:80 ();
    ]
  in
  let checker = Checker.create rr in
  List.iter (Checker.feed checker) traces;
  Checker.finalize checker;
  Alcotest.(check bool) "wr 1->2 deduced" true
    (Checker.deduced checker Leopard.Dep.Wr 1 2)

let suite =
  [
    Alcotest.test_case "clean serial history" `Quick test_clean_serial_history;
    Alcotest.test_case "clean snapshot read" `Quick test_clean_snapshot_read;
    Alcotest.test_case "clean stmt-level read" `Quick test_clean_stmt_level_read;
    Alcotest.test_case "overlapping commit tolerated" `Quick
      test_overlapping_commit_tolerated;
    Alcotest.test_case "CR: stale read flagged" `Quick test_cr_stale_read_flagged;
    Alcotest.test_case "CR: dirty read flagged" `Quick test_cr_dirty_read_flagged;
    Alcotest.test_case "CR: own-write violation" `Quick
      test_cr_own_write_violation;
    Alcotest.test_case "CR: own-write ok" `Quick test_cr_own_write_ok;
    Alcotest.test_case "CR: future read flagged" `Quick
      test_cr_future_read_flagged;
    Alcotest.test_case "deferred read, out-of-order commit" `Quick
      test_deferred_read_out_of_order_commit;
    Alcotest.test_case "ME: dirty write flagged" `Quick
      test_me_dirty_write_flagged;
    Alcotest.test_case "ME: locking read flagged" `Quick
      test_me_locking_read_flagged;
    Alcotest.test_case "ME: serial locks ok" `Quick test_me_serial_locks_ok;
    Alcotest.test_case "ME: aborted txn still checked" `Quick
      test_me_aborted_txn_still_checked;
    Alcotest.test_case "FUW: lost update flagged" `Quick
      test_fuw_lost_update_flagged;
    Alcotest.test_case "FUW: serial updates ok" `Quick test_fuw_serial_updates_ok;
    Alcotest.test_case "SC: write skew flagged" `Quick test_sc_write_skew_flagged;
    Alcotest.test_case "SC: serial ok" `Quick test_sc_serial_ok;
    Alcotest.test_case "narrowing catches stale read" `Quick
      test_narrowing_catches_stale_read;
    Alcotest.test_case "narrowing ablation (off misses it)" `Quick
      test_narrowing_ablation;
    Alcotest.test_case "narrowing no false positive" `Quick
      test_narrowing_no_false_positive;
    Alcotest.test_case "table-lock ME granularity" `Quick
      test_table_lock_violation;
    Alcotest.test_case "feed rejects unsorted" `Quick test_feed_rejects_unsorted;
    Alcotest.test_case "gc stability" `Quick test_gc_stability;
    Alcotest.test_case "deduction log exposed" `Quick test_deduction_log_exposed;
  ]
