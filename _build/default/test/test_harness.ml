module H = Leopard_harness
module W = Leopard_workload
module Trace = Leopard_trace.Trace

(* Note: a spec carries the unique-value counter, so runs that must be
   compared bit-for-bit each need a freshly built spec. *)
let run ?(seed = 42) ?(clients = 6) ?(txns = 200) () =
  Helpers.run_workload ~seed ~clients ~txns
    ~spec:(W.Blindw.spec W.Blindw.RW)
    ~profile:Minidb.Profile.postgresql ~level:Minidb.Isolation.Serializable ()

let test_counts () =
  let o = run () in
  Alcotest.(check bool) "some commits" true (o.commits > 0);
  Alcotest.(check bool) "requested transactions finished" true
    (o.commits + o.aborts >= 200)

let test_traces_well_formed () =
  let o = run () in
  Array.iter
    (List.iter (fun t ->
         match Trace.well_formed t with
         | Ok () -> ()
         | Error e -> Alcotest.failf "malformed trace: %s" e))
    o.client_traces

let test_per_client_monotone () =
  let o = run () in
  Array.iteri
    (fun c traces ->
      let rec go = function
        | a :: (b : Trace.t) :: rest ->
          if a.Trace.ts_bef > b.ts_bef then
            Alcotest.failf "client %d stream not monotone" c;
          go (b :: rest)
        | [ _ ] | [] -> ()
      in
      go traces)
    o.client_traces

let test_txn_lifecycles () =
  (* every transaction with traces ends with exactly one terminal *)
  let o = run () in
  let terminals = Hashtbl.create 256 in
  Array.iter
    (List.iter (fun t ->
         if Trace.is_terminal t then begin
           if Hashtbl.mem terminals t.Trace.txn then
             Alcotest.failf "txn %d has two terminals" t.Trace.txn;
           Hashtbl.replace terminals t.Trace.txn ()
         end))
    o.client_traces;
  Array.iter
    (List.iter (fun t ->
         if not (Hashtbl.mem terminals t.Trace.txn) then
           Alcotest.failf "txn %d never terminated" t.Trace.txn))
    o.client_traces

let test_determinism () =
  let a = run ~seed:7 () and b = run ~seed:7 () in
  Alcotest.(check int) "same commits" a.commits b.commits;
  Alcotest.(check int) "same sim duration" a.sim_duration_ns b.sim_duration_ns;
  let flat o = List.map Trace.to_string (H.Run.all_traces_sorted o) in
  Alcotest.(check (list string)) "identical traces" (flat a) (flat b);
  let c = run ~seed:8 () in
  Alcotest.(check bool) "different seed differs" true (flat a <> flat c)

let test_sim_time_stop () =
  let cfg =
    H.Run.config ~clients:4 ~seed:3 ~spec:(W.Blindw.spec W.Blindw.RW)
      ~profile:Minidb.Profile.postgresql ~level:Minidb.Isolation.Serializable
      ~stop:(H.Run.Sim_time_ns 20_000_000) ()
  in
  let o = H.Run.execute cfg in
  Alcotest.(check bool) "ran past the deadline only to drain" true
    (o.sim_duration_ns >= 20_000_000);
  Alcotest.(check bool) "made progress" true (o.commits > 0)

let test_ground_truth_sane () =
  let o = run () in
  List.iter
    (fun (d : Minidb.Ground_truth.dep) ->
      Alcotest.(check bool) "no self deps" true (d.from_txn <> d.to_txn);
      Alcotest.(check bool) "committed endpoints" true
        (o.committed d.from_txn && o.committed d.to_txn))
    o.truth_deps

let test_overlap_beta_bounds () =
  let o = run ~clients:16 ~txns:1000 () in
  let beta = H.Overlap.compute o in
  let r = H.Overlap.ratio beta in
  Alcotest.(check bool) "ratio in [0,1]" true (r >= 0.0 && r <= 1.0);
  Alcotest.(check bool) "overlapping <= total" true
    (beta.overlapping <= beta.total);
  let (wa, wb) = beta.ww and (ra, rb) = beta.wr and (aa, ab) = beta.rw in
  Alcotest.(check int) "kinds partition total" beta.total (wa + ra + aa);
  Alcotest.(check int) "kinds partition overlapping" beta.overlapping
    (wb + rb + ab)

let test_overlap_classify () =
  let o = run ~clients:16 ~txns:500 () in
  let all = H.Overlap.classify o ~deduced:(fun _ _ _ -> true) in
  let none = H.Overlap.classify o ~deduced:(fun _ _ _ -> false) in
  Alcotest.(check int) "all deduced" all.beta.overlapping all.deduced;
  Alcotest.(check int) "none deduced" none.beta.overlapping none.uncertain;
  Alcotest.(check int) "complementary" all.deduced
    (none.deduced + none.uncertain)

let test_contention_raises_beta () =
  let beta_for theta clients =
    let o =
      Helpers.run_workload ~seed:5 ~clients ~txns:1500
        ~spec:(W.Ycsb.spec ~rows:50_000 ~theta ())
        ~profile:Minidb.Profile.postgresql
        ~level:Minidb.Isolation.Serializable ()
    in
    H.Overlap.ratio (H.Overlap.compute o)
  in
  let low = beta_for 0.0 8 in
  let high = beta_for 0.99 32 in
  Alcotest.(check bool)
    (Printf.sprintf "beta grows with contention (%.4f -> %.4f)" low high)
    true (high > low)

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "traces well-formed" `Quick test_traces_well_formed;
    Alcotest.test_case "per-client monotone" `Quick test_per_client_monotone;
    Alcotest.test_case "transaction lifecycles" `Quick test_txn_lifecycles;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "sim-time stop" `Quick test_sim_time_stop;
    Alcotest.test_case "ground truth sane" `Quick test_ground_truth_sane;
    Alcotest.test_case "overlap beta bounds" `Quick test_overlap_beta_bounds;
    Alcotest.test_case "overlap classification" `Quick test_overlap_classify;
    Alcotest.test_case "contention raises beta" `Slow
      test_contention_raises_beta;
  ]
