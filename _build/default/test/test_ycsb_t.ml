(* YCSB+T: the closed-economy invariant as an independent oracle. *)

module W = Leopard_workload
module Yt = W.Ycsb_t

let accounts = 300

let total_of (outcome : Leopard_harness.Run.outcome) =
  let sum = ref 0 in
  for a = 0 to accounts - 1 do
    match outcome.peek (Yt.account_cell a) with
    | Some v -> sum := !sum + v
    | None -> Alcotest.failf "account %d missing" a
  done;
  !sum

let run ?faults ~level () =
  Helpers.run_workload ~clients:16 ~txns:1_500 ~seed:51 ?faults
    ~spec:(Yt.spec ~accounts ~theta:0.9 ())
    ~profile:Minidb.Profile.postgresql ~level ()

let test_invariant_holds_at_si () =
  let o = run ~level:Minidb.Isolation.Snapshot_isolation () in
  Alcotest.(check int) "closed economy preserved"
    (Yt.initial_total ~accounts) (total_of o)

let test_invariant_holds_at_sr () =
  let o = run ~level:Minidb.Isolation.Serializable () in
  Alcotest.(check int) "closed economy preserved"
    (Yt.initial_total ~accounts) (total_of o)

let test_lost_updates_break_invariant_and_are_flagged () =
  let faults = Minidb.Fault.Set.singleton Minidb.Fault.No_fuw in
  let o = run ~faults ~level:Minidb.Isolation.Snapshot_isolation () in
  (* the end-state oracle sees money created/destroyed... *)
  Alcotest.(check bool) "invariant broken" true
    (total_of o <> Yt.initial_total ~accounts);
  (* ...and Leopard sees the same bug from traces alone *)
  let report =
    Helpers.check Leopard.Il_profile.postgresql_si
      (Leopard_harness.Run.all_traces_sorted o)
  in
  Alcotest.(check bool) "FUW violations flagged" true
    (List.mem "FUW" (Helpers.bug_mechanisms report))

let test_clean_verification () =
  let o = run ~level:Minidb.Isolation.Snapshot_isolation () in
  let report =
    Helpers.check Leopard.Il_profile.postgresql_si
      (Leopard_harness.Run.all_traces_sorted o)
  in
  Alcotest.(check int) "no false positives" 0 report.bugs_total

let test_spec_shape () =
  let spec = Yt.spec ~accounts:50 () in
  Alcotest.(check int) "initial size" 50
    (List.length spec.W.Spec.initial);
  let rng = Leopard_util.Rng.create 3 in
  for _ = 1 to 100 do
    let len = W.Program.length (spec.W.Spec.next_txn rng) in
    Alcotest.(check bool) "1-2 ops" true (len >= 1 && len <= 2)
  done

let suite =
  [
    Alcotest.test_case "invariant holds at SI" `Slow test_invariant_holds_at_si;
    Alcotest.test_case "invariant holds at SR" `Slow test_invariant_holds_at_sr;
    Alcotest.test_case "lost updates break invariant and are flagged" `Slow
      test_lost_updates_break_invariant_and_are_flagged;
    Alcotest.test_case "clean verification" `Slow test_clean_verification;
    Alcotest.test_case "spec shape" `Quick test_spec_shape;
  ]
