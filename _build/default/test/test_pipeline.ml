module Pipeline = Leopard.Pipeline
module Trace = Leopard_trace.Trace

let x = Helpers.cell 0

let mk_trace ~client ~bef =
  Helpers.write ~client ~txn:(client * 1000 + bef) ~bef ~aft:(bef + 1)
    [ (x, bef) ]

let sources_of lists = Array.of_list lists

let drain_all pipe =
  let out = ref [] in
  let n = Pipeline.drain pipe ~f:(fun t -> out := t :: !out) in
  (n, List.rev !out)

let befs traces = List.map (fun t -> t.Trace.ts_bef) traces

(* Fig. 5: two clients, interleaved timestamps. *)
let test_fig5_example () =
  let c0 = List.map (fun b -> mk_trace ~client:0 ~bef:b) [ 1; 4; 7; 10 ] in
  let c1 = List.map (fun b -> mk_trace ~client:1 ~bef:b) [ 3; 8; 9; 12 ] in
  let pipe = Pipeline.of_lists ~batch:2 (sources_of [ c0; c1 ]) in
  let n, out = drain_all pipe in
  Alcotest.(check int) "all dispatched" 8 n;
  Alcotest.(check (list int)) "sorted" [ 1; 3; 4; 7; 8; 9; 10; 12 ] (befs out)

let test_single_client () =
  let c0 = List.map (fun b -> mk_trace ~client:0 ~bef:b) [ 1; 2; 3 ] in
  let pipe = Pipeline.of_lists (sources_of [ c0 ]) in
  let n, out = drain_all pipe in
  Alcotest.(check int) "count" 3 n;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (befs out)

let test_empty_sources () =
  let pipe = Pipeline.of_lists (sources_of [ []; [] ]) in
  let n, _ = drain_all pipe in
  Alcotest.(check int) "nothing" 0 n

let test_uneven_clients () =
  (* one client much slower (sparser, larger timestamps) *)
  let fast = List.init 50 (fun i -> mk_trace ~client:0 ~bef:(i * 2)) in
  let slow = List.init 5 (fun i -> mk_trace ~client:1 ~bef:(i * 31)) in
  let pipe = Pipeline.of_lists ~batch:8 (sources_of [ fast; slow ]) in
  let n, out = drain_all pipe in
  Alcotest.(check int) "all out" 55 n;
  let sorted = List.sort compare (befs out) in
  Alcotest.(check (list int)) "monotone" sorted (befs out)

let test_optimized_memory_not_worse () =
  let mk () =
    List.init 4 (fun c ->
        List.init 100 (fun i -> mk_trace ~client:c ~bef:((i * 4) + c)))
  in
  let run ~optimized =
    let pipe = Pipeline.of_lists ~batch:16 ~optimized (sources_of (mk ())) in
    ignore (drain_all pipe);
    Pipeline.peak_memory pipe
  in
  Alcotest.(check bool) "optimized uses no more memory" true
    (run ~optimized:true <= run ~optimized:false)

let test_naive_sorter_equivalent () =
  let lists =
    List.init 3 (fun c ->
        List.init 40 (fun i -> mk_trace ~client:c ~bef:((i * 3) + c)))
  in
  let pipe = Pipeline.of_lists (sources_of lists) in
  let _, out_pipe = drain_all pipe in
  let naive =
    Leopard_baselines.Naive_sorter.create
      ~sources:
        (Array.map
           (fun traces ->
             let r = ref traces in
             fun () ->
               match !r with
               | [] -> None
               | t :: tl ->
                 r := tl;
                 Some t)
           (sources_of lists))
      ()
  in
  let out_naive = ref [] in
  ignore
    (Leopard_baselines.Naive_sorter.drain naive ~f:(fun t ->
         out_naive := t :: !out_naive));
  Alcotest.(check (list int)) "same dispatch order" (befs out_pipe)
    (befs (List.rev !out_naive));
  Alcotest.(check int) "naive memory is whole run" 120
    (Leopard_baselines.Naive_sorter.peak_memory naive)

(* Theorem 1: for arbitrary monotone per-client streams, the dispatch
   order is globally monotone and complete. *)
let prop_theorem1 =
  let gen =
    QCheck.Gen.(
      list_size (1 -- 6)
        (map
           (fun deltas ->
             let _, acc =
               List.fold_left
                 (fun (t, acc) d ->
                   let t = t + 1 + (d mod 20) in
                   (t, t :: acc))
                 (0, []) deltas
             in
             List.rev acc)
           (list_size (0 -- 40) (int_bound 100))))
  in
  QCheck.Test.make ~name:"theorem 1: dispatch is sorted and complete"
    ~count:300 (QCheck.make gen)
    (fun client_befs ->
      let lists =
        List.mapi
          (fun c befs -> List.map (fun b -> mk_trace ~client:c ~bef:b) befs)
          client_befs
      in
      let total = List.length (List.concat lists) in
      let pipe = Pipeline.of_lists ~batch:4 (sources_of lists) in
      let n, out = drain_all pipe in
      let bs = befs out in
      n = total && bs = List.sort compare bs)

let prop_theorem1_unoptimized =
  QCheck.Test.make ~name:"theorem 1 holds without optimizations" ~count:100
    QCheck.(list_of_size Gen.(1 -- 4) (list_of_size Gen.(0 -- 20) small_nat))
    (fun raw ->
      let lists =
        List.mapi
          (fun c deltas ->
            let _, acc =
              List.fold_left
                (fun (t, acc) d ->
                  let t = t + 1 + d in
                  (t, mk_trace ~client:c ~bef:t :: acc))
                (0, []) deltas
            in
            List.rev acc)
          raw
      in
      let total = List.length (List.concat lists) in
      let pipe = Pipeline.of_lists ~batch:3 ~optimized:false (sources_of lists) in
      let n, out = drain_all pipe in
      let bs = befs out in
      n = total && bs = List.sort compare bs)

let suite =
  [
    Alcotest.test_case "Fig.5 example" `Quick test_fig5_example;
    Alcotest.test_case "single client" `Quick test_single_client;
    Alcotest.test_case "empty sources" `Quick test_empty_sources;
    Alcotest.test_case "uneven clients" `Quick test_uneven_clients;
    Alcotest.test_case "optimized memory not worse" `Quick
      test_optimized_memory_not_worse;
    Alcotest.test_case "naive sorter equivalent output" `Quick
      test_naive_sorter_equivalent;
    Helpers.qtest prop_theorem1;
    Helpers.qtest prop_theorem1_unoptimized;
  ]
