module W = Leopard_workload
module Rng = Leopard_util.Rng
module Program = W.Program

let rec ops_of_program prog =
  match prog with
  | Program.Finish | Program.Rollback -> []
  | Program.Read { cells; k; _ } ->
    let fake =
      List.map (fun cell -> { Leopard_trace.Trace.cell; value = 1 }) cells
    in
    `Read (List.length cells) :: ops_of_program (k fake)
  | Program.Write { items; k } ->
    `Write (List.length items) :: ops_of_program (k ())

let test_program_combinators () =
  let prog =
    Program.read [ Helpers.cell 0 ] (fun _ ->
        Program.write_then [ (Helpers.cell 1, 5) ] Program.finish)
  in
  Alcotest.(check int) "length" 2 (Program.length prog);
  match ops_of_program prog with
  | [ `Read 1; `Write 1 ] -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_program_seq () =
  let step () = Program.write [ (Helpers.cell 0, 1) ] (fun () -> Program.finish) in
  let prog = Program.seq [ step; step; step ] in
  Alcotest.(check int) "three ops" 3 (Program.length prog)

let test_program_rollback_short_circuits () =
  let prog =
    Program.chain Program.rollback
      [ (fun () -> Program.write [ (Helpers.cell 0, 1) ] (fun () -> Program.finish)) ]
  in
  Alcotest.(check int) "rollback stops" 0 (Program.length prog)

let test_value_of () =
  let items =
    [
      { Leopard_trace.Trace.cell = Helpers.cell 0; value = 7 };
      { Leopard_trace.Trace.cell = Helpers.cell 1; value = 8 };
    ]
  in
  Alcotest.(check int) "found" 8 (Program.value_of items (Helpers.cell 1));
  Alcotest.(check int) "absent" 0 (Program.value_of items (Helpers.cell 9))

let test_ycsb_shape () =
  let spec = W.Ycsb.spec ~rows:100 ~theta:0.5 ~read_ratio:1.0 ~ops_per_txn:3 () in
  Alcotest.(check int) "initial rows" 100 (List.length spec.W.Spec.initial);
  let rng = Rng.create 1 in
  let prog = spec.W.Spec.next_txn rng in
  Alcotest.(check int) "3 ops" 3 (Program.length prog);
  List.iter
    (function
      | `Read _ -> ()
      | `Write _ -> Alcotest.fail "read_ratio 1.0 must not write")
    (ops_of_program prog)

let test_ycsb_write_ratio () =
  let spec = W.Ycsb.spec ~rows:100 ~theta:0.0 ~read_ratio:0.0 () in
  let rng = Rng.create 1 in
  List.iter
    (function
      | `Write _ -> () | `Read _ -> Alcotest.fail "expected writes only")
    (ops_of_program (spec.W.Spec.next_txn rng))

let test_blindw_variants () =
  let rng = Rng.create 5 in
  let w = W.Blindw.spec ~rows:50 ~txn_len:4 W.Blindw.W in
  Alcotest.(check int) "blindw-w length" 4
    (Program.length (w.W.Spec.next_txn rng));
  List.iter
    (function
      | `Write 1 -> () | _ -> Alcotest.fail "blindw-w is all single writes")
    (ops_of_program (w.W.Spec.next_txn rng));
  (* RW+: read transactions contain 10-key range reads *)
  let rwp = W.Blindw.spec ~rows:50 ~txn_len:4 W.Blindw.RW_plus in
  let saw_range = ref false in
  for _ = 1 to 50 do
    List.iter
      (function `Read 10 -> saw_range := true | _ -> ())
      (ops_of_program (rwp.W.Spec.next_txn rng))
  done;
  Alcotest.(check bool) "range reads present" true !saw_range

let test_blindw_unique_values () =
  let spec = W.Blindw.spec ~rows:50 ~txn_len:8 W.Blindw.W in
  let rng = Rng.create 7 in
  let values = ref [] in
  for _ = 1 to 20 do
    let rec collect prog =
      match prog with
      | Program.Finish | Program.Rollback -> ()
      | Program.Read { k; _ } -> collect (k [])
      | Program.Write { items; k } ->
        List.iter (fun (_, v) -> values := v :: !values) items;
        collect (k ())
    in
    collect (spec.W.Spec.next_txn rng)
  done;
  let sorted = List.sort compare !values in
  let deduped = List.sort_uniq compare !values in
  Alcotest.(check int) "written values unique" (List.length deduped)
    (List.length sorted)

let test_smallbank_amalgamate_zeroes () =
  (* run many transactions; amalgamate must write literal zeroes *)
  let spec = W.Smallbank.spec () in
  let rng = Rng.create 11 in
  let zero_writes = ref 0 in
  for _ = 1 to 300 do
    let rec walk prog =
      match prog with
      | Program.Finish | Program.Rollback -> ()
      | Program.Read { cells; k; _ } ->
        walk
          (k
             (List.map
                (fun cell -> { Leopard_trace.Trace.cell; value = 5 })
                cells))
      | Program.Write { items; k } ->
        List.iter (fun (_, v) -> if v = 0 then incr zero_writes) items;
        walk (k ())
    in
    walk (spec.W.Spec.next_txn rng)
  done;
  Alcotest.(check bool) "duplicate zero writes occur" true (!zero_writes > 10)

let test_smallbank_initial () =
  let spec = W.Smallbank.spec ~scale_factor:2 () in
  Alcotest.(check int) "two cells per account" (2 * 2000)
    (List.length spec.W.Spec.initial)

let test_tpcc_generation () =
  let spec = W.Tpcc.spec () in
  let rng = Rng.create 13 in
  (* every transaction type must be generable without exceptions *)
  for _ = 1 to 500 do
    ignore (Program.length (spec.W.Spec.next_txn rng))
  done;
  Alcotest.(check bool) "initial population present" true
    (List.length spec.W.Spec.initial > 1000)

let test_tpcc_multi_column () =
  (* payment writes two different columns of the same customer row *)
  let spec = W.Tpcc.spec () in
  let rng = Rng.create 17 in
  let saw_multi_col = ref false in
  for _ = 1 to 300 do
    let rec walk prog =
      match prog with
      | Program.Finish | Program.Rollback -> ()
      | Program.Read { cells; k; _ } ->
        walk
          (k (List.map (fun cell -> { Leopard_trace.Trace.cell; value = 3 }) cells))
      | Program.Write { items; k } ->
        let rows =
          List.sort_uniq compare
            (List.map (fun (c, _) -> Leopard_trace.Cell.row_key c) items)
        in
        if List.length items > List.length rows then saw_multi_col := true;
        walk (k ())
    in
    walk (spec.W.Spec.next_txn rng)
  done;
  Alcotest.(check bool) "multi-column writes occur" true !saw_multi_col

let test_determinism () =
  let spec = W.Blindw.spec W.Blindw.RW in
  let collect seed =
    let rng = Rng.create seed in
    List.init 10 (fun _ -> ops_of_program (spec.W.Spec.next_txn rng))
  in
  Alcotest.(check bool) "same seed same programs" true
    (collect 3 = collect 3);
  Alcotest.(check bool) "different seeds differ" true (collect 3 <> collect 4)

let test_probes_complete () =
  let probes = W.Probes.all () in
  Alcotest.(check int) "one probe per fault" (List.length Minidb.Fault.all)
    (List.length probes);
  List.iter
    (fun (p : W.Probes.probe) ->
      Alcotest.(check bool)
        (Printf.sprintf "probe %s has verifier profile"
           (Minidb.Fault.to_string p.fault))
        true
        (Leopard.Il_profile.find p.verifier_profile <> None);
      Alcotest.(check bool) "engine profile supports level" true
        (Minidb.Profile.supports p.db_profile p.level))
    probes

let suite =
  [
    Alcotest.test_case "program combinators" `Quick test_program_combinators;
    Alcotest.test_case "program seq" `Quick test_program_seq;
    Alcotest.test_case "rollback short-circuits" `Quick
      test_program_rollback_short_circuits;
    Alcotest.test_case "value_of" `Quick test_value_of;
    Alcotest.test_case "ycsb shape" `Quick test_ycsb_shape;
    Alcotest.test_case "ycsb write ratio" `Quick test_ycsb_write_ratio;
    Alcotest.test_case "blindw variants" `Quick test_blindw_variants;
    Alcotest.test_case "blindw unique values" `Quick test_blindw_unique_values;
    Alcotest.test_case "smallbank amalgamate zeroes" `Quick
      test_smallbank_amalgamate_zeroes;
    Alcotest.test_case "smallbank initial" `Quick test_smallbank_initial;
    Alcotest.test_case "tpcc generation" `Quick test_tpcc_generation;
    Alcotest.test_case "tpcc multi-column writes" `Quick test_tpcc_multi_column;
    Alcotest.test_case "workload determinism" `Quick test_determinism;
    Alcotest.test_case "probes complete" `Quick test_probes_complete;
  ]
