(* Online (live) verification must produce exactly the verdicts of an
   offline pass over the full sorted history. *)

module H = Leopard_harness
module W = Leopard_workload
module Il = Leopard.Il_profile

let base_config ?faults ~seed ~txns () =
  H.Run.config ?faults ~clients:12 ~seed ~spec:(W.Blindw.spec W.Blindw.RW)
    ~profile:Minidb.Profile.postgresql ~level:Minidb.Isolation.Serializable
    ~stop:(H.Run.Txn_count txns) ()

let offline_report il (outcome : H.Run.outcome) =
  Helpers.check il (H.Run.all_traces_sorted outcome)

let test_online_matches_offline_clean () =
  let r = H.Online.run ~il:Il.postgresql_serializable (base_config ~seed:3 ~txns:800 ()) in
  let offline = offline_report Il.postgresql_serializable r.outcome in
  Alcotest.(check int) "same traces" offline.traces r.report.traces;
  Alcotest.(check int) "same bugs" offline.bugs_total r.report.bugs_total;
  Alcotest.(check int) "same committed" offline.committed r.report.committed;
  Alcotest.(check int) "same deductions" offline.deps_deduced
    r.report.deps_deduced;
  Alcotest.(check int) "nothing left unverified" 0
    (r.report.traces - offline.traces);
  Alcotest.(check bool) "batches were processed live" true (r.rounds > 1)

let test_online_matches_offline_faulted () =
  let faults = Minidb.Fault.Set.singleton Minidb.Fault.No_fuw in
  let p = W.Probes.for_fault Minidb.Fault.No_fuw in
  let cfg =
    H.Run.config ~faults ~clients:p.clients ~seed:5 ~spec:p.spec
      ~profile:p.db_profile ~level:p.level
      ~stop:(H.Run.Txn_count 1_000) ()
  in
  let il = Option.get (Il.find p.verifier_profile) in
  let r = H.Online.run ~il cfg in
  let offline = offline_report il r.outcome in
  Alcotest.(check bool) "bugs found online" true (r.report.bugs_total > 0);
  Alcotest.(check int) "same verdicts as offline" offline.bugs_total
    r.report.bugs_total

let test_online_keeps_up () =
  let r =
    H.Online.run ~batch_window_ns:200_000 ~il:Il.postgresql_serializable
      (base_config ~seed:7 ~txns:1_000 ())
  in
  let total = r.report.traces in
  Alcotest.(check bool)
    (Printf.sprintf "lag bounded (max %d of %d)" r.max_lag total)
    true
    (r.max_lag < total);
  Alcotest.(check bool) "verification cheap vs run" true
    (r.verify_wall_s >= 0.0)

let test_online_observer_and_tick_fire () =
  let observed = ref 0 in
  let ticks = ref 0 in
  let cfg =
    H.Run.config ~clients:4 ~seed:9 ~spec:(W.Blindw.spec W.Blindw.RW)
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Serializable
      ~observer:(fun _ -> incr observed)
      ~tick:(100_000, fun () -> incr ticks)
      ~stop:(H.Run.Txn_count 100) ()
  in
  let outcome = H.Run.execute cfg in
  let total =
    Array.fold_left (fun acc l -> acc + List.length l) 0 outcome.client_traces
  in
  Alcotest.(check int) "observer saw every trace" total !observed;
  Alcotest.(check bool) "tick fired repeatedly" true (!ticks > 2)

let suite =
  [
    Alcotest.test_case "online = offline (clean)" `Quick
      test_online_matches_offline_clean;
    Alcotest.test_case "online = offline (faulted)" `Quick
      test_online_matches_offline_faulted;
    Alcotest.test_case "online lag bounded" `Quick test_online_keeps_up;
    Alcotest.test_case "observer and tick hooks" `Quick
      test_online_observer_and_tick_fire;
  ]
