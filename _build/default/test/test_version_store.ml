module Vs = Minidb.Version_store

let c = Helpers.cell 0

let mk ?(writer = 1) ?(writer_ts = 0) ?(op = 0) ~value ~commit_ts () =
  { Vs.value; writer; writer_ts; write_op = op; commit_ts }

let test_load_and_visible () =
  let s = Vs.create () in
  Vs.load s c 777;
  (match Vs.visible s c ~ts:100 with
  | Some v ->
    Alcotest.(check int) "initial value" 777 v.Vs.value;
    Alcotest.(check int) "initial writer" (-1) v.Vs.writer
  | None -> Alcotest.fail "no visible version");
  Alcotest.(check int) "one cell" 1 (Vs.cells s)

let test_snapshot_visibility () =
  let s = Vs.create () in
  Vs.load s c 0;
  Vs.install s c (mk ~writer:1 ~value:10 ~commit_ts:100 ());
  Vs.install s c (mk ~writer:2 ~value:20 ~commit_ts:200 ());
  let value_at ts =
    match Vs.visible s c ~ts with Some v -> v.Vs.value | None -> -1
  in
  Alcotest.(check int) "before both" 0 (value_at 50);
  Alcotest.(check int) "after first" 10 (value_at 150);
  Alcotest.(check int) "at exact ts" 10 (value_at 100);
  Alcotest.(check int) "after second" 20 (value_at 300)

let test_out_of_order_install () =
  let s = Vs.create () in
  Vs.install s c (mk ~writer:2 ~value:20 ~commit_ts:200 ());
  Vs.install s c (mk ~writer:1 ~value:10 ~commit_ts:100 ());
  let value_at ts =
    match Vs.visible s c ~ts with Some v -> v.Vs.value | None -> -1
  in
  Alcotest.(check int) "sorted chain" 10 (value_at 150);
  Alcotest.(check int) "newest wins" 20 (value_at 250)

let test_predecessor () =
  let s = Vs.create () in
  Vs.install s c (mk ~writer:1 ~value:10 ~commit_ts:100 ());
  Vs.install s c (mk ~writer:2 ~value:20 ~commit_ts:200 ());
  (match Vs.predecessor_of_visible s c ~ts:300 with
  | Some v -> Alcotest.(check int) "stale version" 10 v.Vs.value
  | None -> Alcotest.fail "expected predecessor");
  Alcotest.(check bool) "none below oldest" true
    (Vs.predecessor_of_visible s c ~ts:150 = None)

let test_committed_newer_than () =
  let s = Vs.create () in
  Vs.install s c (mk ~writer:1 ~value:10 ~commit_ts:100 ());
  Vs.install s c (mk ~writer:2 ~value:20 ~commit_ts:200 ());
  Vs.install s c (mk ~writer:3 ~value:30 ~commit_ts:300 ());
  let newer = Vs.committed_newer_than s c ~ts:150 in
  Alcotest.(check (list int)) "newer values" [ 30; 20 ]
    (List.map (fun v -> v.Vs.value) newer)

let test_visible_mvto () =
  let s = Vs.create () in
  Vs.install s c (mk ~writer:1 ~writer_ts:10 ~value:10 ~commit_ts:100 ());
  Vs.install s c (mk ~writer:2 ~writer_ts:20 ~value:20 ~commit_ts:200 ());
  (match Vs.visible_mvto s c ~writer_ts_max:15 with
  | Some v -> Alcotest.(check int) "by writer ts" 10 v.Vs.value
  | None -> Alcotest.fail "expected version")

let test_aborted_versions () =
  let s = Vs.create () in
  Vs.install s c (mk ~writer:1 ~value:10 ~commit_ts:100 ());
  Vs.record_aborted s c (mk ~writer:9 ~value:99 ~commit_ts:150 ());
  (match Vs.latest_aborted_newer_than s c ~ts:100 with
  | Some v -> Alcotest.(check int) "aborted surfaced" 99 v.Vs.value
  | None -> Alcotest.fail "expected aborted version");
  Alcotest.(check bool) "not newer than 200" true
    (Vs.latest_aborted_newer_than s c ~ts:200 = None);
  (* aborted versions never appear in normal visibility *)
  match Vs.visible s c ~ts:500 with
  | Some v -> Alcotest.(check int) "committed only" 10 v.Vs.value
  | None -> Alcotest.fail "expected committed version"

let test_row_info () =
  let s = Vs.create () in
  let info = Vs.row_info s (0, 0) in
  Alcotest.(check int) "fresh last_commit" 0 info.Vs.last_commit_ts;
  info.Vs.last_commit_ts <- 42;
  let info2 = Vs.row_info s (0, 0) in
  Alcotest.(check int) "same record" 42 info2.Vs.last_commit_ts;
  let other = Vs.row_info s (0, 1) in
  Alcotest.(check int) "distinct rows distinct" 0 other.Vs.last_commit_ts

let suite =
  [
    Alcotest.test_case "load and visible" `Quick test_load_and_visible;
    Alcotest.test_case "snapshot visibility" `Quick test_snapshot_visibility;
    Alcotest.test_case "out-of-order install" `Quick test_out_of_order_install;
    Alcotest.test_case "predecessor of visible" `Quick test_predecessor;
    Alcotest.test_case "committed_newer_than" `Quick test_committed_newer_than;
    Alcotest.test_case "visible_mvto" `Quick test_visible_mvto;
    Alcotest.test_case "aborted side list" `Quick test_aborted_versions;
    Alcotest.test_case "row info" `Quick test_row_info;
  ]
