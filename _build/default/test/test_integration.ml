(* End-to-end soundness and completeness:
   - soundness: fault-free runs across every (workload, profile, level)
     combination report zero violations;
   - completeness on the catalogue: every injected fault is detected by
     its expected mechanism through the full pipeline. *)

module W = Leopard_workload
module H = Leopard_harness
module Il = Leopard.Il_profile

let pipeline_check il outcome =
  let checker = Leopard.Checker.create il in
  let pipe = Leopard.Pipeline.of_lists outcome.H.Run.client_traces in
  ignore (Leopard.Pipeline.drain pipe ~f:(Leopard.Checker.feed checker));
  Leopard.Checker.finalize checker;
  Leopard.Checker.report checker

let clean_combos =
  [
    ("blindw-rw+/pg-sr", W.Blindw.spec W.Blindw.RW_plus, Minidb.Profile.postgresql,
     Minidb.Isolation.Serializable, Il.postgresql_serializable);
    ("blindw-rw/pg-si", W.Blindw.spec W.Blindw.RW, Minidb.Profile.postgresql,
     Minidb.Isolation.Snapshot_isolation, Il.postgresql_si);
    ("blindw-w/pg-rc", W.Blindw.spec W.Blindw.W, Minidb.Profile.postgresql,
     Minidb.Isolation.Read_committed, Il.postgresql_rc);
    ("smallbank/innodb-rr", W.Smallbank.spec (), Minidb.Profile.innodb,
     Minidb.Isolation.Repeatable_read, Il.innodb_rr);
    ("smallbank/innodb-sr", W.Smallbank.spec (), Minidb.Profile.innodb,
     Minidb.Isolation.Serializable, Il.innodb_serializable);
    ("tpcc/pg-sr", W.Tpcc.spec (), Minidb.Profile.postgresql,
     Minidb.Isolation.Serializable, Il.postgresql_serializable);
    ("tpcc/pg-rc", W.Tpcc.spec (), Minidb.Profile.postgresql,
     Minidb.Isolation.Read_committed, Il.postgresql_rc);
    ("smallbank/tidb-si", W.Smallbank.spec (), Minidb.Profile.tidb,
     Minidb.Isolation.Snapshot_isolation, Il.tidb_si);
    ("blindw-rw/cockroach-sr", W.Blindw.spec W.Blindw.RW,
     Minidb.Profile.cockroachdb, Minidb.Isolation.Serializable,
     Il.cockroachdb_serializable);
    ("blindw-rw/sqlite-sr", W.Blindw.spec W.Blindw.RW, Minidb.Profile.sqlite,
     Minidb.Isolation.Serializable, Il.sqlite_serializable);
    ("blindw-rw/fdb-sr", W.Blindw.spec W.Blindw.RW, Minidb.Profile.foundationdb,
     Minidb.Isolation.Serializable, Il.foundationdb_serializable);
    ("ycsb/oracle-si", W.Ycsb.spec ~rows:5_000 ~theta:0.9 (),
     Minidb.Profile.oracle, Minidb.Isolation.Snapshot_isolation, Il.oracle_si);
  ]

let test_clean name spec profile level il () =
  let outcome =
    Helpers.run_workload ~clients:12 ~txns:600 ~seed:21 ~spec ~profile ~level ()
  in
  let report = pipeline_check il outcome in
  Alcotest.(check int)
    (Printf.sprintf "%s: no false positives" name)
    0 report.bugs_total;
  Alcotest.(check bool) "verified some reads or locks" true
    (report.traces > 0 && report.committed > 0)

let test_fault_detected (p : W.Probes.probe) () =
  let faulted =
    Helpers.run_workload ~clients:p.clients ~txns:p.txns ~seed:5
      ~faults:(Minidb.Fault.Set.singleton p.fault)
      ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let il = Option.get (Il.find p.verifier_profile) in
  let report = pipeline_check il faulted in
  Alcotest.(check bool)
    (Printf.sprintf "fault %s detected" (Minidb.Fault.to_string p.fault))
    true (report.bugs_total > 0);
  Alcotest.(check bool) "expected mechanism fired" true
    (List.mem
       (Minidb.Fault.expected_mechanism p.fault)
       (Helpers.bug_mechanisms report))

let test_fault_clean_baseline (p : W.Probes.probe) () =
  let clean =
    Helpers.run_workload ~clients:p.clients ~txns:p.txns ~seed:5
      ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let il = Option.get (Il.find p.verifier_profile) in
  let report = pipeline_check il clean in
  Alcotest.(check int)
    (Printf.sprintf "probe %s clean run silent" (Minidb.Fault.to_string p.fault))
    0 report.bugs_total

let test_cycle_search_cross_validation () =
  (* the naive cycle searcher must agree with Leopard on a clean run *)
  let outcome =
    Helpers.run_workload ~clients:12 ~txns:500 ~seed:33
      ~spec:(W.Blindw.spec W.Blindw.RW) ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Serializable ()
  in
  let cs =
    Leopard_baselines.Cycle_search.create ~search_every:50
      Il.postgresql_serializable
  in
  List.iter
    (Leopard_baselines.Cycle_search.feed cs)
    (H.Run.all_traces_sorted outcome);
  Leopard_baselines.Cycle_search.finalize cs;
  Alcotest.(check int) "no cycles on serializable run" 0
    (Leopard_baselines.Cycle_search.cycles_found cs);
  Alcotest.(check bool) "graph populated" true
    (Leopard_baselines.Cycle_search.nodes cs > 0)

let test_cycle_search_finds_skew () =
  let p = W.Probes.for_fault Minidb.Fault.No_ssi in
  let outcome =
    Helpers.run_workload ~clients:p.clients ~txns:p.txns ~seed:5
      ~faults:(Minidb.Fault.Set.singleton p.fault)
      ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let cs =
    Leopard_baselines.Cycle_search.create ~search_every:100
      Il.postgresql_serializable
  in
  List.iter
    (Leopard_baselines.Cycle_search.feed cs)
    (H.Run.all_traces_sorted outcome);
  Leopard_baselines.Cycle_search.finalize cs;
  Alcotest.(check bool) "write skew shows as cycle" true
    (Leopard_baselines.Cycle_search.cycles_found cs > 0)

let test_combined_faults () =
  (* two independent faults at once: both mechanisms must fire *)
  let p = W.Probes.for_fault Minidb.Fault.No_fuw in
  let faults =
    Minidb.Fault.Set.of_list [ Minidb.Fault.No_fuw; Minidb.Fault.Stale_read ]
  in
  let outcome =
    Helpers.run_workload ~clients:p.clients ~txns:p.txns ~seed:5 ~faults
      ~spec:p.spec ~profile:p.db_profile ~level:p.level ()
  in
  let report =
    pipeline_check (Option.get (Il.find p.verifier_profile)) outcome
  in
  let mechs = Helpers.bug_mechanisms report in
  Alcotest.(check bool) "FUW fired" true (List.mem "FUW" mechs);
  Alcotest.(check bool) "CR fired" true (List.mem "CR" mechs);
  Alcotest.(check bool) "per-mechanism counts partition the total" true
    (List.fold_left (fun acc (_, n) -> acc + n) 0
       report.Leopard.Checker.bugs_by_mechanism
    = report.Leopard.Checker.bugs_total)

let test_relaxed_reads_unit () =
  (* a transaction-level snapshot served under a statement-level claim:
     the strict mirror flags it, the claim-compatibility mode accepts *)
  let x = Helpers.cell 0 in
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      (* txn 3's first statement pins its view *)
      Helpers.read ~txn:3 ~bef:50 ~aft:60 [ (x, 100) ];
      Helpers.write ~txn:2 ~bef:70 ~aft:80 [ (x, 200) ];
      Helpers.commit ~txn:2 ~bef:90 ~aft:100 ();
      (* second statement still sees the old value: legal for a stronger
         (snapshot) engine, not what a statement-snapshot engine does *)
      Helpers.read ~txn:3 ~bef:110 ~aft:120 [ (x, 100) ];
      Helpers.commit ~txn:3 ~bef:130 ~aft:140 ();
    ]
  in
  let sorted = List.sort Leopard_trace.Trace.compare_by_bef traces in
  let strict = Leopard.Checker.create Il.postgresql_rc in
  List.iter (Leopard.Checker.feed strict) sorted;
  Leopard.Checker.finalize strict;
  Alcotest.(check bool) "strict mirror flags it" true
    ((Leopard.Checker.report strict).bugs_total > 0);
  let relaxed = Leopard.Checker.create ~relaxed_reads:true Il.postgresql_rc in
  List.iter (Leopard.Checker.feed relaxed) sorted;
  Leopard.Checker.finalize relaxed;
  Alcotest.(check int) "claim compatibility accepts" 0
    (Leopard.Checker.report relaxed).bugs_total

let test_pipeline_equals_sorted_feed () =
  (* dispatching through the two-level pipeline and feeding a pre-sorted
     list must be indistinguishable to the checker *)
  let outcome =
    Helpers.run_workload ~clients:10 ~txns:600 ~seed:44
      ~spec:(W.Blindw.spec W.Blindw.RW_plus) ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Serializable ()
  in
  let via_pipeline = pipeline_check Il.postgresql_serializable outcome in
  let via_sort =
    Helpers.check Il.postgresql_serializable
      (H.Run.all_traces_sorted outcome)
  in
  Alcotest.(check int) "same traces" via_sort.traces via_pipeline.traces;
  Alcotest.(check int) "same bugs" via_sort.bugs_total via_pipeline.bugs_total;
  Alcotest.(check int) "same deps" via_sort.deps_deduced
    via_pipeline.deps_deduced;
  Alcotest.(check int) "same reads checked" via_sort.reads_checked
    via_pipeline.reads_checked

let test_memory_bounded_by_gc () =
  (* a long run with GC must keep far less live state than without *)
  let outcome =
    Helpers.run_workload ~clients:8 ~txns:2_000 ~seed:9
      ~spec:(W.Blindw.spec W.Blindw.RW) ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Serializable ()
  in
  let traces = H.Run.all_traces_sorted outcome in
  let with_gc = Leopard.Checker.create ~gc_every:256 Il.postgresql_serializable in
  let without = Leopard.Checker.create ~gc_every:0 Il.postgresql_serializable in
  List.iter (Leopard.Checker.feed with_gc) traces;
  List.iter (Leopard.Checker.feed without) traces;
  Leopard.Checker.finalize with_gc;
  Leopard.Checker.finalize without;
  let rg = Leopard.Checker.report with_gc in
  let rn = Leopard.Checker.report without in
  Alcotest.(check int) "same verdicts" rn.bugs_total rg.bugs_total;
  Alcotest.(check bool)
    (Printf.sprintf "gc bounds memory (%d < %d)" rg.peak_live rn.peak_live)
    true
    (rg.peak_live < rn.peak_live)

let suite =
  List.map
    (fun (name, spec, profile, level, il) ->
      Alcotest.test_case ("clean " ^ name) `Slow
        (test_clean name spec profile level il))
    clean_combos
  @ List.concat_map
      (fun (p : W.Probes.probe) ->
        [
          Alcotest.test_case
            ("fault detected: " ^ Minidb.Fault.to_string p.fault)
            `Slow (test_fault_detected p);
          Alcotest.test_case
            ("probe clean: " ^ Minidb.Fault.to_string p.fault)
            `Slow (test_fault_clean_baseline p);
        ])
      (W.Probes.all ())
  @ [
      Alcotest.test_case "cycle search agrees on clean run" `Slow
        test_cycle_search_cross_validation;
      Alcotest.test_case "cycle search finds write skew" `Slow
        test_cycle_search_finds_skew;
      Alcotest.test_case "pipeline equals sorted feed" `Slow
        test_pipeline_equals_sorted_feed;
      Alcotest.test_case "combined faults both fire" `Slow test_combined_faults;
      Alcotest.test_case "relaxed reads (claim compatibility)" `Quick
        test_relaxed_reads_unit;
      Alcotest.test_case "gc bounds memory, same verdicts" `Slow
        test_memory_bounded_by_gc;
    ]
