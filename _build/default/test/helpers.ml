(* Shared helpers for the test suites. *)

module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Interval = Leopard_util.Interval

let cell ?(table = 0) ?(col = 0) row = Cell.make ~table ~row ~col

let iv bef aft = Interval.make ~bef ~aft

let trace ?(client = 0) ~txn ~bef ~aft payload =
  { Trace.ts_bef = bef; ts_aft = aft; txn; client; payload }

let read ?client ?(locking = false) ~txn ~bef ~aft items =
  trace ?client ~txn ~bef ~aft
    (Trace.Read
       { items = List.map (fun (c, v) -> { Trace.cell = c; value = v }) items;
         locking })

let write ?client ~txn ~bef ~aft items =
  trace ?client ~txn ~bef ~aft
    (Trace.Write (List.map (fun (c, v) -> { Trace.cell = c; value = v }) items))

let commit ?client ~txn ~bef ~aft () = trace ?client ~txn ~bef ~aft Trace.Commit
let abort ?client ~txn ~bef ~aft () = trace ?client ~txn ~bef ~aft Trace.Abort

(* Drive a checker over traces (sorted) and return the report. *)
let check profile traces =
  let checker = Leopard.Checker.create profile in
  List.iter (Leopard.Checker.feed checker)
    (List.sort Trace.compare_by_bef traces);
  Leopard.Checker.finalize checker;
  Leopard.Checker.report checker

let bug_mechanisms (report : Leopard.Checker.report) =
  List.sort_uniq compare
    (List.map
       (fun (b : Leopard.Bug.t) -> Leopard.Bug.mechanism_to_string b.mechanism)
       report.bugs)

(* Run a workload on the engine and return the outcome. *)
let run_workload ?(clients = 8) ?(txns = 400) ?(seed = 42)
    ?(faults = Minidb.Fault.Set.empty) ~spec ~profile ~level () =
  let cfg =
    Leopard_harness.Run.config ~clients ~seed ~faults ~spec ~profile ~level
      ~stop:(Leopard_harness.Run.Txn_count txns) ()
  in
  Leopard_harness.Run.execute cfg

(* End-to-end: run a workload, verify with the given profile. *)
let run_and_check ?clients ?txns ?seed ?faults ~spec ~profile ~level
    verifier_profile =
  let outcome =
    run_workload ?clients ?txns ?seed ?faults ~spec ~profile ~level ()
  in
  let report =
    check verifier_profile (Leopard_harness.Run.all_traces_sorted outcome)
  in
  (outcome, report)

let qtest = QCheck_alcotest.to_alcotest
