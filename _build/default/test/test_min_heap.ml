module Min_heap = Leopard_util.Min_heap

let drain heap =
  let rec go acc =
    match Min_heap.pop heap with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []

let test_empty () =
  let h = Min_heap.create ~compare in
  Alcotest.(check bool) "is_empty" true (Min_heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Min_heap.peek h);
  Alcotest.(check (option int)) "pop" None (Min_heap.pop h)

let test_sorted_output () =
  let h = Min_heap.create ~compare in
  List.iter (Min_heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 7; 8; 9 ] (drain h)

let test_duplicates () =
  let h = Min_heap.create ~compare in
  List.iter (Min_heap.push h) [ 2; 2; 1; 2 ];
  Alcotest.(check (list int)) "dups kept" [ 1; 2; 2; 2 ] (drain h)

let test_stability_on_ties () =
  (* elements with equal keys pop in insertion order *)
  let h = Min_heap.create ~compare:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Min_heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  Alcotest.(check (list string)) "tie order" [ "z"; "a"; "b"; "c" ]
    (List.map snd (drain h))

let test_peak_length () =
  let h = Min_heap.create ~compare in
  List.iter (Min_heap.push h) [ 1; 2; 3; 4 ];
  ignore (Min_heap.pop h);
  ignore (Min_heap.pop h);
  Min_heap.push h 5;
  Alcotest.(check int) "peak" 4 (Min_heap.peak_length h);
  Alcotest.(check int) "length" 3 (Min_heap.length h)

let test_drain_while () =
  let h = Min_heap.create ~compare in
  List.iter (Min_heap.push h) [ 4; 1; 3; 9; 2 ];
  let small = Min_heap.drain_while h (fun x -> x <= 3) in
  Alcotest.(check (list int)) "drained prefix" [ 1; 2; 3 ] small;
  Alcotest.(check (option int)) "next is 4" (Some 4) (Min_heap.peek h)

let test_pop_exn () =
  let h = Min_heap.create ~compare in
  Alcotest.check_raises "empty pop_exn"
    (Invalid_argument "Min_heap.pop_exn: empty heap") (fun () ->
      ignore (Min_heap.pop_exn h))

let test_to_sorted_list_nondestructive () =
  let h = Min_heap.create ~compare in
  List.iter (Min_heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted view" [ 1; 2; 3 ]
    (Min_heap.to_sorted_list h);
  Alcotest.(check int) "heap intact" 3 (Min_heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Min_heap.create ~compare in
      List.iter (Min_heap.push h) xs;
      drain h = List.sort compare xs)

let prop_interleaved =
  QCheck.Test.make ~name:"interleaved push/pop maintains order" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Min_heap.create ~compare in
      let model = ref [] in
      List.for_all
        (fun (is_pop, x) ->
          if is_pop then begin
            let expected =
              match !model with
              | [] -> None
              | l ->
                let m = List.fold_left min max_int l in
                Some m
            in
            let got = Min_heap.pop h in
            (match expected with
            | Some m ->
              model :=
                (let rec remove = function
                   | [] -> []
                   | y :: tl -> if y = m then tl else y :: remove tl
                 in
                 remove !model)
            | None -> ());
            got = expected
          end
          else begin
            Min_heap.push h x;
            model := x :: !model;
            true
          end)
        ops)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "sorted output" `Quick test_sorted_output;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "stability on ties" `Quick test_stability_on_ties;
    Alcotest.test_case "peak length" `Quick test_peak_length;
    Alcotest.test_case "drain_while" `Quick test_drain_while;
    Alcotest.test_case "pop_exn on empty" `Quick test_pop_exn;
    Alcotest.test_case "to_sorted_list non-destructive" `Quick
      test_to_sorted_list_nondestructive;
    Helpers.qtest prop_heap_sorts;
    Helpers.qtest prop_interleaved;
  ]
