module Sc = Leopard.Sc_verifier
module Dep = Leopard.Dep

let iv = Helpers.iv

let dep kind from_txn to_txn =
  { Dep.kind; from_txn; to_txn; source = Dep.From_cr }

(* Register txn [i] with first op at [first] and commit at [terminal]. *)
let note t ~txn ~first ~terminal =
  Sc.note_commit t ~txn ~first_iv:first ~terminal_iv:terminal

let test_ssi_pattern_detected () =
  let t = Sc.create (Some Leopard.Il_profile.Ssi_pattern) in
  (* three pairwise concurrent transactions *)
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 100 110);
  note t ~txn:2 ~first:(iv 0 10) ~terminal:(iv 100 110);
  note t ~txn:3 ~first:(iv 0 10) ~terminal:(iv 100 110);
  Alcotest.(check int) "first rw fine" 0
    (List.length (Sc.add_dep t (dep Dep.Rw 1 2)));
  let bugs = Sc.add_dep t (dep Dep.Rw 2 3) in
  Alcotest.(check int) "pivot detected" 1 (List.length bugs)

let test_ssi_two_cycle () =
  let t = Sc.create (Some Leopard.Il_profile.Ssi_pattern) in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 100 110);
  note t ~txn:2 ~first:(iv 0 10) ~terminal:(iv 100 110);
  ignore (Sc.add_dep t (dep Dep.Rw 1 2));
  let bugs = Sc.add_dep t (dep Dep.Rw 2 1) in
  Alcotest.(check bool) "rw two-cycle flagged" true (List.length bugs > 0)

let test_ssi_requires_concurrency () =
  let t = Sc.create (Some Leopard.Il_profile.Ssi_pattern) in
  (* serial transactions: rw chains are harmless *)
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 20 30);
  note t ~txn:2 ~first:(iv 40 50) ~terminal:(iv 60 70);
  note t ~txn:3 ~first:(iv 80 90) ~terminal:(iv 95 99);
  Alcotest.(check int) "serial rw 1" 0
    (List.length (Sc.add_dep t (dep Dep.Rw 1 2)));
  Alcotest.(check int) "serial rw 2" 0
    (List.length (Sc.add_dep t (dep Dep.Rw 2 3)))

let test_ssi_ignores_ww_wr () =
  let t = Sc.create (Some Leopard.Il_profile.Ssi_pattern) in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 100 110);
  note t ~txn:2 ~first:(iv 0 10) ~terminal:(iv 100 110);
  note t ~txn:3 ~first:(iv 0 10) ~terminal:(iv 100 110);
  ignore (Sc.add_dep t (dep Dep.Ww 1 2));
  Alcotest.(check int) "ww then wr harmless" 0
    (List.length (Sc.add_dep t (dep Dep.Wr 2 3)))

let test_mvto_inversion () =
  let t = Sc.create (Some Leopard.Il_profile.Mvto_order) in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 100 110);  (* older *)
  note t ~txn:2 ~first:(iv 50 60) ~terminal:(iv 100 110);  (* younger *)
  Alcotest.(check int) "old->young fine" 0
    (List.length (Sc.add_dep t (dep Dep.Ww 1 2)));
  let bugs = Sc.add_dep t (dep Dep.Wr 2 1) in
  Alcotest.(check int) "young->old flagged" 1 (List.length bugs)

let test_mvto_overlap_not_flagged () =
  let t = Sc.create (Some Leopard.Il_profile.Mvto_order) in
  (* overlapping first ops: order uncertain, must not flag *)
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 100 110);
  note t ~txn:2 ~first:(iv 5 15) ~terminal:(iv 100 110);
  Alcotest.(check int) "uncertain order tolerated" 0
    (List.length (Sc.add_dep t (dep Dep.Ww 2 1)))

let test_cycle_detect () =
  let t = Sc.create (Some Leopard.Il_profile.Cycle_detect) in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 20 30);
  note t ~txn:2 ~first:(iv 0 10) ~terminal:(iv 20 30);
  note t ~txn:3 ~first:(iv 0 10) ~terminal:(iv 20 30);
  ignore (Sc.add_dep t (dep Dep.Ww 1 2));
  ignore (Sc.add_dep t (dep Dep.Wr 2 3));
  let bugs = Sc.add_dep t (dep Dep.Rw 3 1) in
  Alcotest.(check int) "cycle closed" 1 (List.length bugs);
  Alcotest.(check bool) "has_cycle agrees" true (Sc.has_cycle t)

let test_no_certifier () =
  let t = Sc.create None in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 20 30);
  note t ~txn:2 ~first:(iv 0 10) ~terminal:(iv 20 30);
  ignore (Sc.add_dep t (dep Dep.Rw 1 2));
  Alcotest.(check int) "edges tracked" 1 (Sc.edges t)

let test_unknown_endpoint_ignored () =
  let t = Sc.create (Some Leopard.Il_profile.Cycle_detect) in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 20 30);
  Alcotest.(check int) "edge to unknown dropped" 0
    (List.length (Sc.add_dep t (dep Dep.Ww 1 99)));
  Alcotest.(check int) "no edge stored" 0 (Sc.edges t)

(* Definition 4 / Theorem 5 garbage collection *)
let test_gc_prunes_garbage () =
  let t = Sc.create (Some Leopard.Il_profile.Cycle_detect) in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 20 30);
  note t ~txn:2 ~first:(iv 0 10) ~terminal:(iv 20 30);
  ignore (Sc.add_dep t (dep Dep.Ww 1 2));
  (* txn1: in-degree 0, terminal aft 30 <= frontier 50 -> garbage;
     cascades to txn2 once 1's edge is dropped *)
  let pruned = Sc.gc t ~frontier:50 in
  Alcotest.(check int) "cascade prunes both" 2 pruned;
  Alcotest.(check int) "empty graph" 0 (Sc.nodes t)

let test_gc_keeps_recent () =
  let t = Sc.create (Some Leopard.Il_profile.Cycle_detect) in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 20 30);
  note t ~txn:2 ~first:(iv 0 10) ~terminal:(iv 60 70);
  ignore (Sc.add_dep t (dep Dep.Ww 1 2));
  let pruned = Sc.gc t ~frontier:50 in
  (* txn1 is garbage; txn2's terminal is after the frontier *)
  Alcotest.(check int) "only old pruned" 1 pruned;
  Alcotest.(check int) "recent kept" 1 (Sc.nodes t)

let test_gc_keeps_referenced () =
  let t = Sc.create (Some Leopard.Il_profile.Cycle_detect) in
  note t ~txn:1 ~first:(iv 0 10) ~terminal:(iv 20 30);
  note t ~txn:2 ~first:(iv 0 10) ~terminal:(iv 20 30);
  (* edge 2 -> 1 gives txn1 in-degree 1; txn2 is garbage *)
  ignore (Sc.add_dep t (dep Dep.Ww 2 1));
  let pruned = Sc.gc t ~frontier:50 in
  Alcotest.(check int) "both eventually pruned via cascade" 2 pruned

let test_ssi_pattern_survives_gc () =
  (* regression (found by fuzzing): Definition 4's pruning is stated for
     cycles, but an in-degree-zero reader can still be the x of a future
     x -> pivot -> y dangerous structure; its interval evidence must
     survive the pruning of its node *)
  let t = Sc.create (Some Leopard.Il_profile.Ssi_pattern) in
  note t ~txn:7 ~first:(iv 0 10) ~terminal:(iv 8 13);
  note t ~txn:0 ~first:(iv 3 4) ~terminal:(iv 15 16);
  ignore (Sc.add_dep t (dep Dep.Rw 7 0));
  (* txn 7: in-degree 0, terminal aft 13 <= frontier -> pruned *)
  let pruned = Sc.gc t ~frontier:14 in
  Alcotest.(check int) "reader pruned" 1 pruned;
  note t ~txn:5 ~first:(iv 14 15) ~terminal:(iv 18 19);
  let bugs = Sc.add_dep t (dep Dep.Rw 0 5) in
  Alcotest.(check int) "pattern still detected" 1 (List.length bugs)

(* Theorem 5 property: pruning never removes a node that a later edge
   insertion could pull into a cycle — later transactions begin after the
   frontier, so no future edge can point at a pruned node.  We check the
   operational consequence: a cycle formed among retained nodes is still
   detected after an arbitrary gc. *)
let prop_gc_preserves_detection =
  QCheck.Test.make ~name:"theorem 5: gc never hides future cycles" ~count:200
    QCheck.(pair (int_bound 4) (int_bound 1000))
    (fun (extra, seed) ->
      let rng = Leopard_util.Rng.create seed in
      let t = Sc.create (Some Leopard.Il_profile.Cycle_detect) in
      (* old garbage transactions *)
      for i = 1 to 3 + extra do
        note t ~txn:i ~first:(iv 0 5) ~terminal:(iv 10 (15 + i))
      done;
      ignore (Sc.gc t ~frontier:100);
      (* new transactions beginning after the frontier *)
      let base = 1000 in
      for i = 0 to 2 do
        note t ~txn:(base + i)
          ~first:(iv (110 + i) (120 + i))
          ~terminal:(iv 200 210)
      done;
      let shuffle = [| 0; 1; 2 |] in
      Leopard_util.Rng.shuffle rng shuffle;
      ignore (Sc.add_dep t (dep Dep.Ww (base + shuffle.(0)) (base + shuffle.(1))));
      ignore (Sc.add_dep t (dep Dep.Ww (base + shuffle.(1)) (base + shuffle.(2))));
      let bugs = Sc.add_dep t (dep Dep.Rw (base + shuffle.(2)) (base + shuffle.(0))) in
      List.length bugs = 1)

let suite =
  [
    Alcotest.test_case "SSI pattern detected" `Quick test_ssi_pattern_detected;
    Alcotest.test_case "SSI rw two-cycle" `Quick test_ssi_two_cycle;
    Alcotest.test_case "SSI requires concurrency" `Quick
      test_ssi_requires_concurrency;
    Alcotest.test_case "SSI ignores ww/wr chains" `Quick test_ssi_ignores_ww_wr;
    Alcotest.test_case "MVTO inversion" `Quick test_mvto_inversion;
    Alcotest.test_case "MVTO overlap tolerated" `Quick
      test_mvto_overlap_not_flagged;
    Alcotest.test_case "cycle detect" `Quick test_cycle_detect;
    Alcotest.test_case "no certifier" `Quick test_no_certifier;
    Alcotest.test_case "unknown endpoint ignored" `Quick
      test_unknown_endpoint_ignored;
    Alcotest.test_case "gc prunes garbage" `Quick test_gc_prunes_garbage;
    Alcotest.test_case "gc keeps recent" `Quick test_gc_keeps_recent;
    Alcotest.test_case "gc cascades through references" `Quick
      test_gc_keeps_referenced;
    Alcotest.test_case "SSI pattern survives gc (regression)" `Quick
      test_ssi_pattern_survives_gc;
    Helpers.qtest prop_gc_preserves_detection;
  ]
