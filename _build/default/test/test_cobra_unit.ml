(* Hand-crafted histories for the Cobra-style polygraph checker. *)

module B = Leopard_baselines
module Cobra = B.Cobra

let x = Helpers.cell 0
let y = Helpers.cell 1

let feed_all gc traces =
  let c = Cobra.create ~gc () in
  List.iter (Cobra.feed c) traces;
  Cobra.finalize c

let serial_history =
  [
    Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 100); (y, 200) ];
    Helpers.commit ~client:0 ~txn:1 ~bef:30 ~aft:40 ();
    Helpers.read ~client:1 ~txn:2 ~bef:50 ~aft:60 [ (x, 100) ];
    Helpers.write ~client:1 ~txn:2 ~bef:70 ~aft:80 [ (x, 101) ];
    Helpers.commit ~client:1 ~txn:2 ~bef:90 ~aft:100 ();
    Helpers.read ~client:0 ~txn:3 ~bef:110 ~aft:120 [ (x, 101); (y, 200) ];
    Helpers.commit ~client:0 ~txn:3 ~bef:130 ~aft:140 ();
  ]

let test_accepts_serial () =
  let r = feed_all Cobra.No_gc serial_history in
  Alcotest.(check bool) "no violation" false r.Cobra.violation;
  Alcotest.(check int) "three txns" 3 r.Cobra.txns

let test_aborted_ignored () =
  let traces =
    [
      Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.abort ~client:0 ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.write ~client:1 ~txn:2 ~bef:50 ~aft:60 [ (x, 200) ];
      Helpers.commit ~client:1 ~txn:2 ~bef:70 ~aft:80 ();
    ]
  in
  let r = feed_all Cobra.No_gc traces in
  Alcotest.(check int) "only committed counted" 1 r.Cobra.txns;
  Alcotest.(check bool) "accepted" false r.Cobra.violation

(* Classic write skew expressed as a key-value history: both transactions
   read both initial values, each overwrites one of them.  The pruning
   derives the coupled anti-dependencies and the final check closes the
   cycle. *)
let write_skew_history =
  [
    Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (x, 100); (y, 200) ];
    Helpers.commit ~client:0 ~txn:1 ~bef:30 ~aft:40 ();
    Helpers.read ~client:1 ~txn:2 ~bef:50 ~aft:60 [ (x, 100); (y, 200) ];
    Helpers.read ~client:2 ~txn:3 ~bef:55 ~aft:65 [ (x, 100); (y, 200) ];
    Helpers.write ~client:1 ~txn:2 ~bef:70 ~aft:80 [ (x, 101) ];
    Helpers.write ~client:2 ~txn:3 ~bef:75 ~aft:85 [ (y, 201) ];
    Helpers.commit ~client:1 ~txn:2 ~bef:90 ~aft:100 ();
    Helpers.commit ~client:2 ~txn:3 ~bef:95 ~aft:105 ();
  ]

let test_rejects_write_skew () =
  let r = feed_all Cobra.No_gc write_skew_history in
  Alcotest.(check bool) "violation" true r.Cobra.violation

let test_fence_gc_prunes () =
  (* a long serial chain of independent committed writers *)
  let traces =
    List.concat
      (List.init 30 (fun i ->
           let base = i * 100 in
           [
             Helpers.write ~client:0 ~txn:i ~bef:(base + 10) ~aft:(base + 20)
               [ (Helpers.cell (i mod 3), 1000 + i) ];
             Helpers.commit ~client:0 ~txn:i ~bef:(base + 30) ~aft:(base + 40)
               ();
           ]))
  in
  let r = feed_all (Cobra.Fence 5) traces in
  Alcotest.(check bool) "accepted" false r.Cobra.violation;
  Alcotest.(check bool) "fences pruned transactions" true
    (r.Cobra.pruned_txns > 0);
  let r_nogc = feed_all Cobra.No_gc traces in
  Alcotest.(check bool) "fence memory below no-gc" true
    (r.Cobra.peak_live <= r_nogc.Cobra.peak_live)

let test_constraint_accounting () =
  (* three writers of the same key: 1+2 = 3 pairwise constraints *)
  let traces =
    List.concat
      (List.init 3 (fun i ->
           let base = (i + 1) * 100 in
           [
             Helpers.write ~client:i ~txn:i ~bef:(base + 10) ~aft:(base + 20)
               [ (x, 1000 + i) ];
             Helpers.commit ~client:i ~txn:i ~bef:(base + 30) ~aft:(base + 40)
               ();
           ]))
  in
  let r = feed_all Cobra.No_gc traces in
  Alcotest.(check int) "constraints decided or open" 3
    (r.Cobra.decided + r.Cobra.undecided);
  Alcotest.(check bool) "accepted" false r.Cobra.violation

let suite =
  [
    Alcotest.test_case "accepts serial history" `Quick test_accepts_serial;
    Alcotest.test_case "aborted transactions ignored" `Quick
      test_aborted_ignored;
    Alcotest.test_case "rejects write skew" `Quick test_rejects_write_skew;
    Alcotest.test_case "fence gc prunes" `Quick test_fence_gc_prunes;
    Alcotest.test_case "constraint accounting" `Quick
      test_constraint_accounting;
  ]
