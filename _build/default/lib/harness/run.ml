module Trace = Leopard_trace.Trace
module Rng = Leopard_util.Rng
module Engine = Minidb.Engine
module Sim = Minidb.Sim

type latency = {
  net_mean_ns : float;
  think_mean_ns : float;
  op_gap_ns : float;
  commit_extra_ns : float;
}

let default_latency =
  {
    net_mean_ns = 50_000.0;
    think_mean_ns = 100_000.0;
    op_gap_ns = 10_000.0;
    commit_extra_ns = 30_000.0;
  }

type stop = Txn_count of int | Sim_time_ns of int

type config = {
  spec : Leopard_workload.Spec.t;
  profile : Minidb.Profile.t;
  level : Minidb.Isolation.level;
  faults : Minidb.Fault.Set.t;
  clients : int;
  stop : stop;
  seed : int;
  latency : latency;
  latency_of : (int -> latency) option;
  observer : (Trace.t -> unit) option;
  tick : (int * (unit -> unit)) option;
}

let config ?(faults = Minidb.Fault.Set.empty) ?(clients = 8) ?(seed = 42)
    ?(latency = default_latency) ?latency_of ?observer ?tick ~spec ~profile
    ~level ~stop () =
  {
    spec;
    profile;
    level;
    faults;
    clients;
    stop;
    seed;
    latency;
    latency_of;
    observer;
    tick;
  }

let latency_for cfg client =
  match cfg.latency_of with Some f -> f client | None -> cfg.latency

type outcome = {
  client_traces : Trace.t list array;
  op_trace : (int, Trace.t) Hashtbl.t;
  truth_deps : Minidb.Ground_truth.dep list;
  committed : int -> bool;
  peek : Leopard_trace.Cell.t -> Trace.value option;
  commits : int;
  aborts : int;
  aborts_fuw : int;
  aborts_certifier : int;
  aborts_deadlock : int;
  deadlocks : int;
  sim_duration_ns : int;
  ops : int;
}

type state = {
  cfg : config;
  sim : Sim.t;
  engine : Engine.t;
  buffers : Trace.t list ref array;  (* newest first; reversed at the end *)
  op_trace : (int, Trace.t) Hashtbl.t;
  mutable next_op : int;
  mutable finished_txns : int;
  mutable stop_now : bool;
}

let fresh_op st =
  let id = st.next_op in
  st.next_op <- id + 1;
  id

let should_stop st =
  st.stop_now
  ||
  match st.cfg.stop with
  | Txn_count n -> st.finished_txns >= n
  | Sim_time_ns t -> Sim.now st.sim >= t

let delay rng mean = 1 + int_of_float (Rng.exponential rng mean)

(* Issue one request: network hop to the server, engine execution
   (possibly delayed by lock queues), network hop back. *)
let issue st rng ~client ~txn ~request ~receive =
  let latency = latency_for st.cfg client in
  let ts_bef = Sim.now st.sim in
  let d_in = delay rng latency.net_mean_ns in
  let op_id = fresh_op st in
  Sim.schedule_after st.sim ~delay:d_in (fun () ->
      Engine.exec st.engine txn ~op_id request ~k:(fun result ->
          let extra =
            match request with
            | Engine.Commit -> delay rng latency.commit_extra_ns
            | Engine.Read _ | Engine.Write _ | Engine.Abort -> 0
          in
          let d_out = extra + delay rng latency.net_mean_ns in
          Sim.schedule_after st.sim ~delay:d_out (fun () ->
              receive ~op_id ~ts_bef result)))

let emit st ~client ~txn_id ~op_id ~ts_bef payload =
  let trace =
    { Trace.ts_bef; ts_aft = Sim.now st.sim; txn = txn_id; client; payload }
  in
  st.buffers.(client) := trace :: !(st.buffers.(client));
  Hashtbl.replace st.op_trace op_id trace;
  (match st.cfg.observer with Some f -> f trace | None -> ());
  trace

let rec run_client st rng ~client =
  if should_stop st then ()
  else begin
    let txn = Engine.begin_txn st.engine ~client in
    let txn_id = Engine.txn_id txn in
    let finish_txn () =
      st.finished_txns <- st.finished_txns + 1;
      if should_stop st then ()
      else
        Sim.schedule_after st.sim
          ~delay:(delay rng (latency_for st.cfg client).think_mean_ns)
          (fun () -> run_client st rng ~client)
    in
    let abort_and_finish ~op_id ~ts_bef =
      ignore (emit st ~client ~txn_id ~op_id ~ts_bef Trace.Abort);
      finish_txn ()
    in
    let rec step (prog : Leopard_workload.Program.t) =
      let continue next =
        Sim.schedule_after st.sim
          ~delay:(delay rng (latency_for st.cfg client).op_gap_ns)
          (fun () -> step next)
      in
      match prog with
      | Leopard_workload.Program.Finish ->
        issue st rng ~client ~txn ~request:Engine.Commit
          ~receive:(fun ~op_id ~ts_bef result ->
            match result with
            | Engine.Ok_commit ->
              ignore (emit st ~client ~txn_id ~op_id ~ts_bef Trace.Commit);
              finish_txn ()
            | Engine.Err _ -> abort_and_finish ~op_id ~ts_bef
            | Engine.Ok_read _ | Engine.Ok_write ->
              assert false)
      | Leopard_workload.Program.Rollback ->
        issue st rng ~client ~txn ~request:Engine.Abort
          ~receive:(fun ~op_id ~ts_bef _result ->
            abort_and_finish ~op_id ~ts_bef)
      | Leopard_workload.Program.Read { cells; locking; predicate; k } ->
        issue st rng ~client ~txn
          ~request:(Engine.Read { cells; locking; predicate })
          ~receive:(fun ~op_id ~ts_bef result ->
            match result with
            | Engine.Ok_read items ->
              ignore
                (emit st ~client ~txn_id ~op_id ~ts_bef
                   (Trace.Read { items; locking }));
              continue (k items)
            | Engine.Err _ -> abort_and_finish ~op_id ~ts_bef
            | Engine.Ok_write | Engine.Ok_commit -> assert false)
      | Leopard_workload.Program.Write { items; k } ->
        issue st rng ~client ~txn ~request:(Engine.Write items)
          ~receive:(fun ~op_id ~ts_bef result ->
            match result with
            | Engine.Ok_write ->
              let titems =
                List.map
                  (fun (cell, value) -> { Trace.cell; value })
                  items
              in
              ignore
                (emit st ~client ~txn_id ~op_id ~ts_bef (Trace.Write titems));
              continue (k ())
            | Engine.Err _ -> abort_and_finish ~op_id ~ts_bef
            | Engine.Ok_read _ | Engine.Ok_commit -> assert false)
    in
    step (st.cfg.spec.Leopard_workload.Spec.next_txn rng)
  end

let execute cfg =
  let sim = Sim.create () in
  let engine =
    Engine.create sim ~profile:cfg.profile ~level:cfg.level ~faults:cfg.faults
  in
  Engine.load engine cfg.spec.Leopard_workload.Spec.initial;
  let st =
    {
      cfg;
      sim;
      engine;
      buffers = Array.init cfg.clients (fun _ -> ref []);
      op_trace = Hashtbl.create 4096;
      next_op = 0;
      finished_txns = 0;
      stop_now = false;
    }
  in
  let root = Rng.create cfg.seed in
  for client = 0 to cfg.clients - 1 do
    let rng = Rng.split root in
    (* Stagger client start-ups slightly, as real clients would. *)
    Sim.schedule_after sim ~delay:(Rng.int rng 10_000) (fun () ->
        run_client st rng ~client)
  done;
  (match cfg.tick with
  | Some (interval_ns, f) ->
    let interval_ns = max 1 interval_ns in
    let rec tick () =
      f ();
      if not (should_stop st) then
        Sim.schedule_after sim ~delay:interval_ns tick
    in
    Sim.schedule_after sim ~delay:interval_ns tick
  | None -> ());
  Sim.run sim;
  let committed id = Engine.committed engine id in
  {
    client_traces = Array.map (fun r -> List.rev !r) st.buffers;
    op_trace = st.op_trace;
    truth_deps =
      Minidb.Ground_truth.deps (Engine.ground_truth engine) ~committed;
    committed;
    peek = (fun cell -> Engine.peek engine cell);
    commits = Engine.commits engine;
    aborts = Engine.aborts engine;
    aborts_fuw = Engine.aborts_by engine Engine.Fuw_conflict;
    aborts_certifier = Engine.aborts_by engine (Engine.Certifier_conflict "");
    aborts_deadlock = Engine.aborts_by engine Engine.Deadlock_victim;
    deadlocks = Engine.deadlocks engine;
    sim_duration_ns = Sim.now sim;
    ops = Engine.ops_executed engine;
  }

let all_traces_sorted outcome =
  let all =
    Array.fold_left (fun acc l -> List.rev_append l acc) [] outcome.client_traces
  in
  List.sort Trace.compare_by_bef all
