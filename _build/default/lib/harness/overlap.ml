module Interval = Leopard_util.Interval
module Trace = Leopard_trace.Trace
module Gt = Minidb.Ground_truth

type beta = {
  total : int;
  overlapping : int;
  ww : int * int;
  wr : int * int;
  rw : int * int;
}

let ratio b =
  if b.total = 0 then 0.0
  else float_of_int b.overlapping /. float_of_int b.total

(* A dependency is measurable when both endpoint operations have traces
   (dependencies on the initial load do not). *)
let endpoint_intervals outcome (d : Gt.dep) =
  match
    ( Hashtbl.find_opt outcome.Run.op_trace d.from_op,
      Hashtbl.find_opt outcome.Run.op_trace d.to_op )
  with
  | Some a, Some b -> Some (Trace.interval a, Trace.interval b)
  | _ -> None

let fold_deps outcome f init =
  List.fold_left
    (fun acc (d : Gt.dep) ->
      match endpoint_intervals outcome d with
      | None -> acc
      | Some (ia, ib) -> f acc d (Interval.overlaps ia ib))
    init outcome.Run.truth_deps

let compute outcome =
  fold_deps outcome
    (fun acc d overl ->
      let bump (a, b) = (a + 1, if overl then b + 1 else b) in
      let acc =
        {
          acc with
          total = acc.total + 1;
          overlapping = (acc.overlapping + if overl then 1 else 0);
        }
      in
      match d.kind with
      | Gt.Ww -> { acc with ww = bump acc.ww }
      | Gt.Wr -> { acc with wr = bump acc.wr }
      | Gt.Rw -> { acc with rw = bump acc.rw })
    { total = 0; overlapping = 0; ww = (0, 0); wr = (0, 0); rw = (0, 0) }

type classified = { beta : beta; deduced : int; uncertain : int }

let classify outcome ~deduced =
  let beta = compute outcome in
  let ded, unc =
    fold_deps outcome
      (fun (ded, unc) d overl ->
        if not overl then (ded, unc)
        else if deduced d.kind d.from_txn d.to_txn then (ded + 1, unc)
        else (ded, unc + 1))
      (0, 0)
  in
  { beta; deduced = ded; uncertain = unc }
