(** Overlap-ratio measurement — β of Figs. 4 and 13.

    The paper defines β = B/A where A is the number of actual
    dependencies between committed transactions and B the number whose
    conflicting operations have overlapping trace time intervals (the
    {e uncertain} dependencies a black-box checker cannot order from
    timestamps alone).

    Because our engine records ground truth, both A and B are exact.
    Given a verifier's deduction log, {!classify} additionally splits the
    uncertain dependencies into those Leopard managed to deduce through
    its four mechanisms and those that remain uncertain (Fig. 13). *)

type beta = {
  total : int;  (** A: dependencies with traces at both endpoints *)
  overlapping : int;  (** B: endpoint intervals overlap *)
  ww : int * int;  (** (A, B) restricted to ww *)
  wr : int * int;
  rw : int * int;
}

val ratio : beta -> float
(** B/A; 0 when A = 0. *)

val compute : Run.outcome -> beta

type classified = {
  beta : beta;
  deduced : int;  (** overlapping dependencies the verifier deduced *)
  uncertain : int;  (** overlapping dependencies left undeduced *)
}

val classify :
  Run.outcome ->
  deduced:(Minidb.Ground_truth.dep_kind -> int -> int -> bool) ->
  classified
(** [deduced kind from_txn to_txn] is the verifier's deduction log
    membership test. *)
