lib/harness/overlap.mli: Minidb Run
