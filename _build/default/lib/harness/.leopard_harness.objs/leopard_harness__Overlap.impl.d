lib/harness/overlap.ml: Hashtbl Leopard_trace Leopard_util List Minidb Run
