lib/harness/run.ml: Array Hashtbl Leopard_trace Leopard_util Leopard_workload List Minidb
