lib/harness/run.mli: Hashtbl Leopard_trace Leopard_workload Minidb
