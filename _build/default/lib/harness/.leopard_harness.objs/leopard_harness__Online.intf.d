lib/harness/online.mli: Leopard Run
