lib/harness/online.ml: Array Leopard Leopard_trace Queue Run Sys
