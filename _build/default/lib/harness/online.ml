module Trace = Leopard_trace.Trace

type result = {
  outcome : Run.outcome;
  report : Leopard.Checker.report;
  verify_wall_s : float;
  rounds : int;
  max_lag : int;
  final_lag : int;
}

let run ?(batch_window_ns = 500_000) ?(gc_every = 512) ~il (cfg : Run.config) =
  let queues = Array.init cfg.Run.clients (fun _ -> Queue.create ()) in
  let workload_done = ref false in
  let produced = ref 0 in
  let sources =
    Array.map
      (fun queue () ->
        match Queue.take_opt queue with
        | Some trace -> Leopard.Pipeline.Item trace
        | None ->
          if !workload_done then Leopard.Pipeline.Closed
          else Leopard.Pipeline.Pending)
      queues
  in
  let pipeline = Leopard.Pipeline.create ~sources () in
  let checker = Leopard.Checker.create ~gc_every il in
  let verify_wall = ref 0.0 in
  let rounds = ref 0 in
  let max_lag = ref 0 in
  let final_lag = ref 0 in
  let drain () =
    incr rounds;
    let lag = !produced - Leopard.Pipeline.dispatched pipeline in
    if lag > !max_lag then max_lag := lag;
    let t0 = Sys.time () in
    ignore (Leopard.Pipeline.drain pipeline ~f:(Leopard.Checker.feed checker));
    verify_wall := !verify_wall +. (Sys.time () -. t0)
  in
  let observer trace =
    incr produced;
    Queue.push trace queues.(trace.Trace.client)
  in
  let cfg =
    { cfg with Run.observer = Some observer; tick = Some (batch_window_ns, drain) }
  in
  let outcome = Run.execute cfg in
  (* the workload stopped: everything left is dispatchable *)
  final_lag := !produced - Leopard.Pipeline.dispatched pipeline;
  workload_done := true;
  let t0 = Sys.time () in
  ignore (Leopard.Pipeline.drain pipeline ~f:(Leopard.Checker.feed checker));
  Leopard.Checker.finalize checker;
  verify_wall := !verify_wall +. (Sys.time () -. t0);
  {
    outcome;
    report = Leopard.Checker.report checker;
    verify_wall_s = !verify_wall;
    rounds = !rounds;
    max_lag = !max_lag;
    final_lag = !final_lag;
  }
