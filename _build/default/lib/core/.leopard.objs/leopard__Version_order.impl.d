lib/core/version_order.ml: Leopard_trace Leopard_util List
