lib/core/bug.mli: Anomaly Format Leopard_trace
