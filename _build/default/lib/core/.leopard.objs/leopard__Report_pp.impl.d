lib/core/report_pp.ml: Anomaly Buffer Bug Checker Dep Hashtbl List Option Printf String
