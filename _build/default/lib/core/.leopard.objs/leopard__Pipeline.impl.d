lib/core/pipeline.ml: Array Leopard_trace Leopard_util Queue
