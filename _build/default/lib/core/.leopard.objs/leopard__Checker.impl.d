lib/core/checker.ml: Anomaly Bug Candidate Dep Fuw_verifier Hashtbl Il_profile Leopard_trace Leopard_util List Me_verifier Option Printf Sc_verifier Version_order
