lib/core/il_profile.ml: List String
