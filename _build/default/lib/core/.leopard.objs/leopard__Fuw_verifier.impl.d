lib/core/fuw_verifier.ml: Hashtbl Leopard_util List
