lib/core/me_verifier.ml: Hashtbl Leopard_util List Option
