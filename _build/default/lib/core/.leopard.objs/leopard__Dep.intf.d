lib/core/dep.mli:
