lib/core/sc_verifier.mli: Bug Dep Il_profile Leopard_util
