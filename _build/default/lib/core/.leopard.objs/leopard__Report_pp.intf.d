lib/core/report_pp.mli: Anomaly Checker
