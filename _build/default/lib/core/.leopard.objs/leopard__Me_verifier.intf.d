lib/core/me_verifier.mli: Leopard_util
