lib/core/dep.ml: Hashtbl List Option
