lib/core/sc_verifier.ml: Anomaly Bug Dep Hashtbl Il_profile Leopard_util List Printf Queue
