lib/core/il_profile.mli:
