lib/core/candidate.ml: Leopard_util List Version_order
