lib/core/anomaly.mli:
