lib/core/fuw_verifier.mli: Leopard_util
