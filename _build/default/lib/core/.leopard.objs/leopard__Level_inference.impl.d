lib/core/level_inference.ml: Bug Checker Format Il_profile List Printf String
