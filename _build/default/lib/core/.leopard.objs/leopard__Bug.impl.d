lib/core/bug.ml: Anomaly Format Leopard_trace List String
