lib/core/candidate.mli: Leopard_util Version_order
