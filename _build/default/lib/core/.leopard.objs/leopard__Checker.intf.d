lib/core/checker.mli: Bug Dep Il_profile Leopard_trace
