lib/core/pipeline.mli: Leopard_trace
