lib/core/level_inference.mli: Format Il_profile Leopard_trace
