lib/core/anomaly.ml:
