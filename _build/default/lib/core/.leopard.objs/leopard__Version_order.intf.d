lib/core/version_order.mli: Leopard_trace Leopard_util
