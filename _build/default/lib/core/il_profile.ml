type snapshot_granularity = Txn_snapshot | Stmt_snapshot

type certifier = Ssi_pattern | Mvto_order | Cycle_detect

let certifier_to_string = function
  | Ssi_pattern -> "ssi"
  | Mvto_order -> "mvto"
  | Cycle_detect -> "cycle"

type lock_granularity = Row_locks | Table_locks

type t = {
  name : string;
  check_me : bool;
  me_locking_reads : bool;
  me_reads : bool;
  lock_granularity : lock_granularity;
  check_cr : snapshot_granularity option;
  check_fuw : bool;
  check_sc : certifier option;
}

let make ~name ?(check_me = false) ?(me_locking_reads = false)
    ?(me_reads = false) ?(lock_granularity = Row_locks) ?(check_cr = None)
    ?(check_fuw = false) ?(check_sc = None) () =
  {
    name;
    check_me;
    me_locking_reads;
    me_reads;
    lock_granularity;
    check_cr;
    check_fuw;
    check_sc;
  }

let postgresql_serializable =
  make ~name:"postgresql/SR" ~check_me:true ~me_locking_reads:true
    ~check_cr:(Some Txn_snapshot) ~check_fuw:true ~check_sc:(Some Ssi_pattern)
    ()

let postgresql_si =
  make ~name:"postgresql/SI" ~check_me:true ~me_locking_reads:true
    ~check_cr:(Some Txn_snapshot) ~check_fuw:true ()

(* PostgreSQL's repeatable read *is* snapshot isolation (Ports & Grittner,
   VLDB 2012): same mechanisms, different SQL name. *)
let postgresql_rr = { postgresql_si with name = "postgresql/RR" }

let postgresql_rc =
  make ~name:"postgresql/RC" ~check_me:true ~me_locking_reads:true
    ~check_cr:(Some Stmt_snapshot) ()

let innodb_serializable =
  make ~name:"innodb/SR" ~check_me:true ~me_locking_reads:true ~me_reads:true
    ~check_cr:(Some Txn_snapshot) ()

let innodb_rr =
  make ~name:"innodb/RR" ~check_me:true ~me_locking_reads:true
    ~check_cr:(Some Txn_snapshot) ()

let innodb_rc =
  make ~name:"innodb/RC" ~check_me:true ~me_locking_reads:true
    ~check_cr:(Some Stmt_snapshot) ()

let tidb_rr =
  make ~name:"tidb/RR" ~check_me:true ~me_locking_reads:true
    ~check_cr:(Some Txn_snapshot) ()

let tidb_si =
  make ~name:"tidb/SI" ~me_locking_reads:true ~check_cr:(Some Txn_snapshot)
    ~check_fuw:true ()

let cockroachdb_serializable =
  make ~name:"cockroachdb/SR" ~check_cr:(Some Txn_snapshot)
    ~check_sc:(Some Mvto_order) ()

let sqlite_serializable =
  make ~name:"sqlite/SR" ~check_me:true ~me_locking_reads:true ~me_reads:true
    ~lock_granularity:Table_locks ()

let foundationdb_serializable =
  make ~name:"foundationdb/SR" ~check_cr:(Some Txn_snapshot)
    ~check_sc:(Some Cycle_detect) ()

let oracle_si =
  make ~name:"oracle/SI" ~check_me:true ~me_locking_reads:true
    ~check_cr:(Some Txn_snapshot) ~check_fuw:true ()

let oracle_rc =
  make ~name:"oracle/RC" ~check_me:true ~me_locking_reads:true
    ~check_cr:(Some Stmt_snapshot) ()

let all =
  [
    postgresql_serializable;
    postgresql_si;
    postgresql_rr;
    postgresql_rc;
    innodb_serializable;
    innodb_rr;
    innodb_rc;
    tidb_rr;
    tidb_si;
    cockroachdb_serializable;
    sqlite_serializable;
    foundationdb_serializable;
    oracle_si;
    oracle_rc;
  ]

let find name = List.find_opt (fun p -> String.equal p.name name) all
