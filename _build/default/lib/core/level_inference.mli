(** Isolation-level inference: which claims does a history support?

    The paper points out that Elle cannot distinguish repeatable read
    from serializable on PostgreSQL (§VI-F).  Leopard can: each
    (DBMS, level) claim names a set of mechanisms, so re-verifying one
    history against successively stronger profiles yields the strongest
    claim the history is consistent with — e.g. a run with write skew
    passes `postgresql/SI` but fails `postgresql/SR`, whose certifier
    check would have had to abort it.

    Inference replays the same trace list against every profile of the
    given DBMS (cheap: verification is linear), so it wants a complete,
    sorted history — use it offline or at the end of a run.

    Profiles are checked in {e claim-compatibility} mode
    ({!Checker.create}'s [relaxed_reads]): behaviour stronger than a
    claim never fails it — a serializable history's transaction-level
    snapshots are legal under a read-committed claim even though they are
    not what a statement-snapshot engine would have produced. *)

type verdict = {
  profile : Il_profile.t;
  passed : bool;
  violations : int;
  violating_mechanisms : string list;  (** e.g. [["SC"]] *)
}

val infer :
  dbms:string -> Leopard_trace.Trace.t list -> verdict list
(** One verdict per profile of [dbms] (profiles named ["dbms/LEVEL"]),
    in {!Il_profile.all} order.  Traces must be globally sorted by
    [ts_bef].  Returns [] for an unknown DBMS. *)

val strongest_passed : verdict list -> Il_profile.t option
(** The last passing profile in the conventional RC < RR < SI < SR
    strength order; [None] if everything failed. *)

val pp_verdicts : Format.formatter -> verdict list -> unit
