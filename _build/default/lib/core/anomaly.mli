(** Adya-style anomaly classification of detected violations.

    Leopard's mechanism mirrors report {e which contract} broke (CR, ME,
    FUW, SC); this module names {e what happened} in the vocabulary of
    Adya's generalized isolation levels and Berenson et al.'s critique —
    the names DBAs and bug trackers use.  The checker attaches a
    classification to every bug descriptor it emits. *)

type t =
  | Dirty_write  (** G0: two transactions held incompatible write locks *)
  | Dirty_read
      (** G1b-flavoured: a read observed a value no committed transaction
          installed (a concurrent writer's pending value) *)
  | Aborted_read  (** G1a: a read observed an aborted transaction's value *)
  | Intermediate_read
      (** G1b: a read observed a value its own transaction had already
          overwritten (or a writer's non-final value) *)
  | Stale_read
      (** a read observed a version provably overwritten before its
          snapshot (non-repeatable / time-travel read) *)
  | Future_read
      (** a read observed a version provably committed after its
          snapshot (causality violation) *)
  | Lost_update  (** P4: concurrent updaters of one row both committed *)
  | Write_skew  (** G2-item: consecutive rw antidependencies the SSI
                    certifier must forbid *)
  | Serialization_order_inversion
      (** a dependency from a certainly-younger to a certainly-older
          transaction under timestamp ordering *)
  | Dependency_cycle  (** G1c/G2: a cycle of proven dependencies *)
  | Read_lock_violation
      (** a (locking) read and a write held incompatible locks *)

val to_string : t -> string
val description : t -> string
val all : t list
