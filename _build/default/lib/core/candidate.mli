(** Minimal candidate version sets (paper §V-A, Fig. 6, Theorem 2).

    Given a read's snapshot-generation interval and a cell's ordered
    versions, classify each version and keep exactly those that are
    possibly visible to the read:

    - {b Future}: installed certainly after the snapshot — invisible;
    - {b Overlap}: installation overlaps the snapshot — possibly visible;
    - {b Pivot}: the newest version installed certainly before the
      snapshot — possibly visible;
    - {b Pivot_overlap}: installed certainly before the snapshot but
      overlapping the pivot's installation — possibly visible (its true
      order against the pivot is unknown);
    - {b Garbage}: installed certainly before the pivot — certainly
      overwritten, invisible.

    Theorem 2: the candidate set (overlaps ∪ pivot ∪ pivot-overlaps) is
    the minimal set of possibly-visible versions. *)

module Interval = Leopard_util.Interval

type classification = Future | Overlap | Pivot | Pivot_overlap | Garbage

val classification_to_string : classification -> string

val classify :
  snapshot:Interval.t ->
  Version_order.version list ->
  (Version_order.version * classification) list
(** Input must be in ascending commit-after order (as {!Version_order.chain}
    returns); the output preserves that order. *)

val candidates :
  snapshot:Interval.t -> Version_order.version list -> Version_order.version list
(** The possibly-visible versions, ascending. *)

val has_pivot : snapshot:Interval.t -> Version_order.version list -> bool
(** Whether some version is certainly installed before the snapshot.  When
    false, the initial (untraced) database state may still be visible, so
    a read matching no candidate is not a violation. *)
