module Interval = Leopard_util.Interval

type classification = Future | Overlap | Pivot | Pivot_overlap | Garbage

let classification_to_string = function
  | Future -> "future"
  | Overlap -> "overlap"
  | Pivot -> "pivot"
  | Pivot_overlap -> "pivot-overlap"
  | Garbage -> "garbage"

let find_pivot ~snapshot versions =
  (* Newest version whose installation is certainly before the snapshot;
     versions are ascending by commit aft, so the last qualifying one
     wins. *)
  List.fold_left
    (fun acc (v : Version_order.version) ->
      if Interval.certainly_before v.commit_iv snapshot then Some v else acc)
    None versions

let classify ~snapshot versions =
  let pivot = find_pivot ~snapshot versions in
  List.map
    (fun (v : Version_order.version) ->
      let cls =
        if Interval.certainly_before snapshot v.commit_iv then Future
        else if Interval.overlaps v.commit_iv snapshot then Overlap
        else
          (* certainly before the snapshot *)
          match pivot with
          | Some p when v == p -> Pivot
          | Some p ->
            if Interval.overlaps v.commit_iv p.commit_iv then Pivot_overlap
            else Garbage
          | None ->
            (* cannot happen: v is certainly before the snapshot, so a
               pivot exists *)
            Pivot
      in
      (v, cls))
    versions

let candidates ~snapshot versions =
  List.filter_map
    (fun (v, cls) ->
      match cls with
      | Overlap | Pivot | Pivot_overlap -> Some v
      | Future | Garbage -> None)
    (classify ~snapshot versions)

let has_pivot ~snapshot versions = find_pivot ~snapshot versions <> None
