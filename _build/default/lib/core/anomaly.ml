type t =
  | Dirty_write
  | Dirty_read
  | Aborted_read
  | Intermediate_read
  | Stale_read
  | Future_read
  | Lost_update
  | Write_skew
  | Serialization_order_inversion
  | Dependency_cycle
  | Read_lock_violation

let to_string = function
  | Dirty_write -> "dirty-write (G0)"
  | Dirty_read -> "dirty-read"
  | Aborted_read -> "aborted-read (G1a)"
  | Intermediate_read -> "intermediate-read (G1b)"
  | Stale_read -> "stale-read"
  | Future_read -> "future-read"
  | Lost_update -> "lost-update (P4)"
  | Write_skew -> "write-skew (G2-item)"
  | Serialization_order_inversion -> "serialization-order-inversion"
  | Dependency_cycle -> "dependency-cycle (G1c/G2)"
  | Read_lock_violation -> "read-lock-violation"

let description = function
  | Dirty_write ->
    "two transactions certainly held exclusive locks on the same row at \
     the same time"
  | Dirty_read ->
    "a read observed a value that no committed transaction installed"
  | Aborted_read -> "a read observed a value written by an aborted transaction"
  | Intermediate_read ->
    "a read observed a non-final (overwritten) value of a transaction"
  | Stale_read ->
    "a read observed a version certainly overwritten before its snapshot"
  | Future_read ->
    "a read observed a version certainly committed after its snapshot"
  | Lost_update ->
    "two concurrent transactions updated the same row and both committed"
  | Write_skew ->
    "committed transactions form consecutive rw antidependencies the \
     certifier must forbid"
  | Serialization_order_inversion ->
    "a dependency points from a certainly-younger transaction to a \
     certainly-older one"
  | Dependency_cycle -> "proven dependencies form a cycle"
  | Read_lock_violation ->
    "a locking read and a write certainly held incompatible locks \
     simultaneously"

let all =
  [
    Dirty_write;
    Dirty_read;
    Aborted_read;
    Intermediate_read;
    Stale_read;
    Future_read;
    Lost_update;
    Write_skew;
    Serialization_order_inversion;
    Dependency_cycle;
    Read_lock_violation;
  ]
