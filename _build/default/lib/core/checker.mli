(** The Verifier — mechanism-mirrored verification (paper §V, Algorithm 2).

    [feed] consumes traces in non-decreasing [ts_bef] order (as the
    two-level pipeline dispatches them) and mirrors the engine's internal
    state: ordered versions per cell, an interval lock table, a
    first-updater-wins registry and a dependency graph.  The four
    verifications run cooperatively and exchange the dependencies each can
    prove:

    - {b CR} checks every read against the minimal candidate version set
      (Theorem 2) and deduces wr edges from unique matches;
    - {b ME} checks conflicting lock pairs at release time (Theorem 3) and
      deduces ww edges;
    - {b FUW} checks committed co-updaters of a row (Theorem 4) and
      deduces ww edges;
    - {b SC} mirrors the engine's certifier over all deduced edges, plus
      rw edges derived from wr + version order (Fig. 9).

    Reads are verified once the dispatch frontier passes their
    after-timestamp, which guarantees every version possibly visible to
    them has been installed in the mirror — this is what makes the online
    check sound despite out-of-order commit/read [ts_bef] interleavings.

    Obsolete state is pruned periodically: versions behind the pivot of
    every possible future snapshot, released locks behind the horizon,
    FUW entries behind the horizon and garbage transactions of the
    dependency graph (Definition 4, Theorem 5). *)

module Trace = Leopard_trace.Trace

type t

val create :
  ?gc_every:int ->
  ?narrow_candidates:bool ->
  ?relaxed_reads:bool ->
  Il_profile.t ->
  t
(** [gc_every] (default 512 traces, 0 disables) controls pruning
    frequency.

    [narrow_candidates] (default true) enables the paper's §V-A
    cooperation optimization: ww dependencies deduced by the ME and FUW
    mechanisms order versions whose installation intervals overlap, so a
    version provably overwritten before the snapshot is dropped from the
    candidate set even when intervals alone could not exclude it.  A
    smaller candidate set means stricter CR checks (more violations
    caught); on a correct engine the deduced order is real, so no false
    positives are introduced.

    [relaxed_reads] (default false) switches statement-level CR from the
    exact mechanism mirror ("the snapshot is taken at this statement") to
    claim compatibility ("the snapshot was taken somewhere between
    transaction begin and this statement").  Use it when asking whether a
    history {e supports} a weaker claim — e.g. level inference verifying
    a serializable history against a read-committed profile, where the
    stronger engine's transaction-level snapshots are legal. *)

val feed : t -> Trace.t -> unit
(** Traces must arrive in non-decreasing [ts_bef] order; raises
    [Invalid_argument] otherwise. *)

val feed_all : t -> Trace.t list -> unit

val finalize : t -> unit
(** Flush deferred read checks and run a last pruning pass.  Must be
    called once after the final trace. *)

type report = {
  traces : int;
  committed : int;
  aborted : int;
  bugs_total : int;
  bugs : Bug.t list;  (** first 10_000, in detection order *)
  bugs_by_mechanism : (Bug.mechanism * int) list;
      (** violation counts per mechanism (complete, not capped) *)
  deps_deduced : int;
  deduced_by_source : (Dep.source * int) list;
  reads_checked : int;
  peak_live : int;  (** high-water mark of mirrored-state size (versions +
                        locks + FUW entries + graph nodes/edges + deferred
                        reads + live transactions) — the memory metric *)
  final_live : int;
  pruned_versions : int;
  pruned_locks : int;
  pruned_fuw : int;
  pruned_graph : int;
}

val report : t -> report

val deduced : t -> Dep.kind -> int -> int -> bool
(** Deduction-log membership — feeds the Fig. 13 classification. *)

val live_size : t -> int
(** Current mirrored-state size (see {!report.peak_live}). *)

val set_dep_hook : t -> (Dep.t -> unit) -> unit
(** Subscribe to every fresh deduction (used by the naive cycle-search
    baseline to obtain the same dependencies Leopard deduces). *)
