(** Verification profiles — which mechanisms to verify for a given
    (DBMS, isolation level) pair.

    This is the verifier-side mirror of the paper's Fig. 1 matrix.  It is
    deliberately independent of the engine library: a black-box checker
    only knows the {e claimed} concurrency-control recipe of the system
    under test, exactly what Fig. 1 tabulates for each commercial DBMS. *)

type snapshot_granularity = Txn_snapshot | Stmt_snapshot

(** Which certifier the SC verification mirrors. *)
type certifier =
  | Ssi_pattern
      (** PostgreSQL: flag two consecutive rw antidependencies between
          certainly-concurrent transactions *)
  | Mvto_order
      (** CockroachDB: flag a dependency that certainly goes from a
          younger transaction to an older one *)
  | Cycle_detect
      (** generic conflict-serializability: flag any cycle of deduced
          dependencies (used to mirror OCC validation) *)

val certifier_to_string : certifier -> string

(** Lock granule the ME verification mirrors. *)
type lock_granularity = Row_locks | Table_locks

type t = {
  name : string;  (** e.g. "postgresql/SR" *)
  check_me : bool;  (** verify mutual exclusion of write locks *)
  me_locking_reads : bool;  (** locking reads acquire X locks *)
  me_reads : bool;  (** plain reads acquire S locks (pure 2PL reads) *)
  lock_granularity : lock_granularity;
  check_cr : snapshot_granularity option;
  check_fuw : bool;
  check_sc : certifier option;
}

val make :
  name:string ->
  ?check_me:bool ->
  ?me_locking_reads:bool ->
  ?me_reads:bool ->
  ?lock_granularity:lock_granularity ->
  ?check_cr:snapshot_granularity option ->
  ?check_fuw:bool ->
  ?check_sc:certifier option ->
  unit ->
  t
(** Defaults: everything off / [None] / {!Row_locks}. *)

(** {2 Fig. 1 presets} *)

val postgresql_serializable : t
val postgresql_si : t

val postgresql_rr : t
(** PostgreSQL's repeatable read {e is} snapshot isolation — same
    mechanisms as {!postgresql_si} under the SQL-standard name. *)

val postgresql_rc : t
val innodb_serializable : t
val innodb_rr : t
val innodb_rc : t
val tidb_rr : t
val tidb_si : t
val cockroachdb_serializable : t
val sqlite_serializable : t
val foundationdb_serializable : t
val oracle_si : t
val oracle_rc : t

val all : t list

val find : string -> t option
(** Look up by [name] (e.g. ["postgresql/SR"]). *)
