module Cell = Leopard_trace.Cell
module Rng = Leopard_util.Rng

let subscriber_table = 0
let access_info_table = 1
let special_facility_table = 2
let call_forwarding_table = 3

let s_bit = 0
let s_location = 1
let ai_data = 0
let sf_data = 0
let cf_active = 0

let facilities_per_sub = 4
let slots_per_facility = 3

let subscriber s col = Cell.make ~table:subscriber_table ~row:s ~col

let access_info s ai =
  Cell.make ~table:access_info_table
    ~row:((s * facilities_per_sub) + ai)
    ~col:ai_data

let special_facility s sf =
  Cell.make ~table:special_facility_table
    ~row:((s * facilities_per_sub) + sf)
    ~col:sf_data

let call_forwarding s sf slot =
  Cell.make ~table:call_forwarding_table
    ~row:((((s * facilities_per_sub) + sf) * slots_per_facility) + slot)
    ~col:cf_active

let spec ?(subscribers = 2_000) () =
  let fresh = Spec.fresh_value_counter () in
  let initial =
    let acc = ref [] in
    for s = 0 to subscribers - 1 do
      acc := (subscriber s s_bit, s mod 2) :: (subscriber s s_location, s) :: !acc;
      for f = 0 to facilities_per_sub - 1 do
        acc :=
          (access_info s f, (s * 10) + f)
          :: (special_facility s f, (s * 10) + f + 5)
          :: !acc;
        for slot = 0 to slots_per_facility - 1 do
          acc := (call_forwarding s f slot, (s + f + slot) mod 2) :: !acc
        done
      done
    done;
    !acc
  in
  let pick rng = Rng.int rng subscribers in
  let get_subscriber_data rng =
    let s = pick rng in
    Program.read [ subscriber s s_bit; subscriber s s_location ] (fun _ ->
        Program.finish)
  in
  let get_access_data rng =
    let s = pick rng in
    let ai = Rng.int rng facilities_per_sub in
    Program.read [ access_info s ai ] (fun _ -> Program.finish)
  in
  let get_new_destination rng =
    let s = pick rng in
    let sf = Rng.int rng facilities_per_sub in
    Program.read [ special_facility s sf ] (fun _ ->
        let slots =
          List.init slots_per_facility (fun slot -> call_forwarding s sf slot)
        in
        Program.read ~predicate:true slots (fun _ -> Program.finish))
  in
  let update_location rng =
    let s = pick rng in
    Program.write [ (subscriber s s_location, fresh ()) ] (fun () ->
        Program.finish)
  in
  let update_subscriber_data rng =
    let s = pick rng in
    let sf = Rng.int rng facilities_per_sub in
    Program.read [ subscriber s s_bit ] (fun items ->
        let bit = Program.value_of items (subscriber s s_bit) in
        Program.write_then
          [ (subscriber s s_bit, 1 - (bit land 1)); (special_facility s sf, fresh ()) ]
          Program.finish)
  in
  let toggle_call_forwarding ~on rng =
    let s = pick rng in
    let sf = Rng.int rng facilities_per_sub in
    let slot = Rng.int rng slots_per_facility in
    Program.read [ special_facility s sf ] (fun _ ->
        Program.write_then
          [ (call_forwarding s sf slot, if on then fresh () else 0) ]
          Program.finish)
  in
  let next_txn rng =
    let roll = Rng.int rng 100 in
    if roll < 35 then get_subscriber_data rng
    else if roll < 70 then get_access_data rng
    else if roll < 80 then get_new_destination rng
    else if roll < 94 then update_location rng
    else if roll < 96 then update_subscriber_data rng
    else if roll < 98 then toggle_call_forwarding ~on:true rng
    else toggle_call_forwarding ~on:false rng
  in
  Spec.make ~name:(Printf.sprintf "tatp(n=%d)" subscribers) ~initial ~next_txn
