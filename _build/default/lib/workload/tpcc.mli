(** Simplified TPC-C — the complex-logic workload of Figs. 10, 12, 13.

    Five transaction types over six tables with the standard mix
    (45% new-order, 43% payment, 4% order-status / delivery /
    stock-level).  Rows carry several columns and transactions read/write
    {e subsets} of a row's columns — payment updates [district.ytd] while
    new-order updates [district.next_o_id] — producing the row-level
    dependencies that value-based trace matching cannot deduce, the
    TPC-C effect of Fig. 13b.

    Scaled down from the official specification to simulator size:
    [warehouses = scale_factor], 10 districts per warehouse, 30 customers
    per district, 200 stock items per warehouse plus a shared read-only
    item catalog.  New-order inserts fresh order and order-line rows, so
    reads of just-created rows occur; 15% of payments touch a remote
    warehouse's customer and 1% of order lines are supplied by a remote
    warehouse's stock — the cross-warehouse contention of the real
    benchmark at [scale_factor > 1]. *)

val warehouse_table : int
val district_table : int
val customer_table : int
val stock_table : int
val order_table : int
val order_line_table : int

val item_table : int
(** The read-only item catalog (prices), shared across warehouses. *)

val spec : ?scale_factor:int -> unit -> Spec.t
(** Default [scale_factor = 1]. *)
