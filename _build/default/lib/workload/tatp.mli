(** TATP (Telecom Application Transaction Processing) — the classic
    read-dominant OLTP benchmark, included to exercise the verifier on a
    workload whose dependency mix is the opposite of BlindW's: ~80%
    single-row reads over four tables keyed by subscriber.

    Simplified tables: subscriber (bit, location columns), access-info
    (4 rows per subscriber), special-facility (4 per subscriber) and
    call-forwarding (3 slots per facility).  Transaction mix follows the
    standard: 35% get-subscriber-data, 35% get-access-data, 10%
    get-new-destination, 14% update-location, 2% update-subscriber-data,
    4% insert/delete-call-forwarding (modelled as activation-flag
    writes). *)

val subscriber_table : int
val access_info_table : int
val special_facility_table : int
val call_forwarding_table : int

val spec : ?subscribers:int -> unit -> Spec.t
(** Default [subscribers = 2_000]. *)
