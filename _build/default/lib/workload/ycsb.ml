module Cell = Leopard_trace.Cell

let table = 0

let cell row = Cell.make ~table ~row ~col:0

let spec ?(rows = 100_000) ?(theta = 0.8) ?(read_ratio = 0.5)
    ?(ops_per_txn = 1) () =
  let zipf = Leopard_util.Zipf.create ~n:rows ~theta in
  let fresh = Spec.fresh_value_counter () in
  let initial = List.init rows (fun row -> (cell row, row + 1)) in
  let next_txn rng =
    let steps =
      List.init ops_per_txn (fun _ () ->
          let row = Leopard_util.Zipf.sample zipf rng in
          if Leopard_util.Rng.chance rng read_ratio then
            Program.read [ cell row ] (fun _ -> Program.finish)
          else Program.write [ (cell row, fresh ()) ] (fun () -> Program.finish))
    in
    Program.seq steps
  in
  Spec.make
    ~name:(Printf.sprintf "ycsb-a(theta=%.2f,r=%.2f)" theta read_ratio)
    ~initial ~next_txn
