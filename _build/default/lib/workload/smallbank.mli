(** SmallBank (Alomari et al., ICDE 2008) — the banking micro-benchmark
    the paper uses for complex-application-logic experiments.

    Two tables, checking and savings, one balance column each, over
    [accounts] customers (default [1_000 * scale_factor]).  Six
    transaction types with the standard uniform mix:

    - [balance]: read both balances of one customer (read-only);
    - [deposit_checking]: read-modify-write of the checking balance;
    - [transact_savings]: read-modify-write of the savings balance;
    - [amalgamate]: move everything from customer A to customer B — it
      {e always writes zero} to A's two accounts, the duplicate values
      that defeat value-based version matching (Fig. 13a);
    - [write_check]: conditional debit after reading both balances;
    - [send_payment]: transfer between two checking accounts.

    Balances evolve by deltas, so written values are data-dependent and
    only mostly unique. *)

val checking_table : int
val savings_table : int

val spec : ?scale_factor:int -> ?hotspot:float -> unit -> Spec.t
(** [hotspot] (default [0.]) is the probability that a transaction picks
    its customer from the first 100 accounts, to raise contention.
    [scale_factor] (default 1) scales the number of accounts by 1_000. *)
