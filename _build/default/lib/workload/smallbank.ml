module Cell = Leopard_trace.Cell
module Rng = Leopard_util.Rng

let checking_table = 0
let savings_table = 1
let hot_accounts = 100

let checking a = Cell.make ~table:checking_table ~row:a ~col:0
let savings a = Cell.make ~table:savings_table ~row:a ~col:0

let spec ?(scale_factor = 1) ?(hotspot = 0.0) () =
  let accounts = 1_000 * max 1 scale_factor in
  let initial =
    List.concat_map
      (fun a -> [ (checking a, 10_000 + a); (savings a, 20_000 + a) ])
      (List.init accounts (fun a -> a))
  in
  let pick_account rng =
    if hotspot > 0.0 && Rng.chance rng hotspot then
      Rng.int rng (min hot_accounts accounts)
    else Rng.int rng accounts
  in
  let pick_two rng =
    let a = pick_account rng in
    let rec other () =
      let b = pick_account rng in
      if b = a then other () else b
    in
    (a, other ())
  in
  let balance rng =
    let a = pick_account rng in
    Program.read [ checking a; savings a ] (fun _ -> Program.finish)
  in
  let deposit_checking rng =
    let a = pick_account rng in
    let amount = 1 + Rng.int rng 100 in
    Program.read [ checking a ] (fun items ->
        let bal = Program.value_of items (checking a) in
        Program.write_then [ (checking a, bal + amount) ] Program.finish)
  in
  let transact_savings rng =
    let a = pick_account rng in
    let amount = 1 + Rng.int rng 100 in
    Program.read [ savings a ] (fun items ->
        let bal = Program.value_of items (savings a) in
        Program.write_then [ (savings a, bal + amount) ] Program.finish)
  in
  let amalgamate rng =
    let a, b = pick_two rng in
    Program.read [ checking a; savings a ] (fun items_a ->
        let total =
          Program.value_of items_a (checking a)
          + Program.value_of items_a (savings a)
        in
        Program.read [ checking b ] (fun items_b ->
            let bal_b = Program.value_of items_b (checking b) in
            (* The paper's duplicate-value case: A's accounts are always
               zeroed, so these writes are indistinguishable by value. *)
            Program.write_then
              [ (checking a, 0); (savings a, 0); (checking b, bal_b + total) ]
              Program.finish))
  in
  let write_check rng =
    let a = pick_account rng in
    let amount = 1 + Rng.int rng 100 in
    Program.read [ checking a; savings a ] (fun items ->
        let c = Program.value_of items (checking a) in
        let s = Program.value_of items (savings a) in
        let fee = if c + s < amount then 1 else 0 in
        Program.write_then [ (checking a, c - amount - fee) ] Program.finish)
  in
  let send_payment rng =
    let a, b = pick_two rng in
    let amount = 1 + Rng.int rng 100 in
    Program.read [ checking a ] (fun items_a ->
        let bal_a = Program.value_of items_a (checking a) in
        if bal_a < amount then Program.rollback
        else
          Program.read [ checking b ] (fun items_b ->
              let bal_b = Program.value_of items_b (checking b) in
              Program.write_then
                [ (checking a, bal_a - amount); (checking b, bal_b + amount) ]
                Program.finish))
  in
  let next_txn rng =
    match Rng.int rng 6 with
    | 0 -> balance rng
    | 1 -> deposit_checking rng
    | 2 -> transact_savings rng
    | 3 -> amalgamate rng
    | 4 -> write_check rng
    | _ -> send_payment rng
  in
  Spec.make
    ~name:(Printf.sprintf "smallbank(sf=%d)" scale_factor)
    ~initial ~next_txn
