(** YCSB+T (Dey et al., ICDEW 2014) — the transactional, closed-economy
    extension of YCSB the paper cites.

    One table of [accounts] balances forming a closed economy: every
    transaction preserves the total balance, so the sum over all accounts
    is an application-level invariant.  Isolation bugs that Leopard flags
    from traces (lost updates above all) also break this invariant, which
    gives the test suite an independent, end-state oracle.

    Transaction mix:
    - {b transfer} (50%): read two accounts, move a random amount
      (read-modify-write, sum-preserving);
    - {b audit} (30%): read [audit_width] accounts (read-only);
    - {b touch} (20%): read-modify-write of one account adding zero —
      exercises RMW contention without changing balances. *)

val table : int

val spec : ?accounts:int -> ?theta:float -> ?audit_width:int -> unit -> Spec.t
(** Defaults: [accounts = 1_000], [theta = 0.6], [audit_width = 4]. *)

val initial_total : accounts:int -> int
(** The invariant: sum of all balances at population time. *)

val account_cell : int -> Leopard_trace.Cell.t
