(** Transaction programs.

    A workload produces {e programs}: little coroutines that issue reads
    and writes and decide later operations from earlier results (SmallBank
    computes the amalgamated sum it writes; TPC-C's new-order reads stock
    quantities it then updates).  The harness drives a program one
    operation at a time against the engine, logging an interval trace per
    operation — exactly the paper's client-side Tracer.

    A program never sees failures: when the engine aborts the transaction,
    the driver stops the program and logs the abort. *)

module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type t =
  | Finish  (** issue COMMIT *)
  | Rollback  (** issue ABORT *)
  | Read of {
      cells : Cell.t list;
      locking : bool;
      predicate : bool;
      k : Trace.item list -> t;
    }
  | Write of { items : (Cell.t * Trace.value) list; k : unit -> t }

(** {2 Combinators} *)

val read : ?locking:bool -> ?predicate:bool -> Cell.t list -> (Trace.item list -> t) -> t
val write : (Cell.t * Trace.value) list -> (unit -> t) -> t
val finish : t
val rollback : t

val write_then : (Cell.t * Trace.value) list -> t -> t
(** [write_then items next] writes then continues with [next]. *)

val seq : (unit -> t) list -> t
(** Run unit-continuation steps in order, then {!finish}. *)

val chain : t -> (unit -> t) list -> t
(** [chain prog rest] runs [prog]; when it finishes, continues with the
    [rest] steps ([Rollback] short-circuits). *)

val value_of : Trace.item list -> Cell.t -> Trace.value
(** First observed value for a cell in a read result; 0 when absent. *)

val length : t -> int
(** Number of data operations in the program's default (all-reads-zero)
    path — used by tests; data-dependent branches are evaluated with empty
    read results. *)
