(** Fault probes — targeted micro-workloads that reliably trigger each of
    the seventeen injectable engine faults (DESIGN.md §4), reproducing the
    paper's §VI-F bug study.

    The paper found its bugs by running ordinary workloads for a long
    time; in a time-boxed reproduction we instead shape each workload so
    the faulty code path executes often and the resulting traces carry
    {e certain} interval evidence (nested lock holds, clearly-future
    versions, …).  Each probe names the engine profile/isolation level
    under which the fault is a genuine bug, and the Leopard verification
    profile (by name) expected to flag it. *)

type probe = {
  fault : Minidb.Fault.t;
  spec : Spec.t;
  db_profile : Minidb.Profile.t;
  level : Minidb.Isolation.level;
  verifier_profile : string;
      (** a {!Leopard.Il_profile} name, e.g. "tidb/RR" *)
  clients : int;
  txns : int;
}

val for_fault : Minidb.Fault.t -> probe
val all : unit -> probe list
(** One probe per fault, in {!Minidb.Fault.all} order. *)
