(** The BlindW workload family (designed by Cobra, extended by the paper).

    A single table of [rows] (default 2_000) single-column records with
    uniformly accessed keys and [txn_len] operations per transaction
    (default 8).  Three variants (§VI, "Workload"):

    - {b BlindW-W}: 100% blind-write transactions with uniquely written
      values — the hard case for ww tracking (Fig. 13c);
    - {b BlindW-RW}: an even mix of item-read transactions and blind-write
      transactions — exercises all three dependency types (Figs. 13d, 14);
    - {b BlindW-RW+}: BlindW-RW with half of the item-reads replaced by
      10-key range reads — the stress case for verification cost
      (Figs. 10, 11). *)

type variant = W | RW | RW_plus

val variant_to_string : variant -> string

val table : int

val spec : ?rows:int -> ?txn_len:int -> variant -> Spec.t
(** Defaults: [rows = 2_000], [txn_len = 8]. *)
