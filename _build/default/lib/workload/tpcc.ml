module Cell = Leopard_trace.Cell
module Rng = Leopard_util.Rng

let warehouse_table = 0
let district_table = 1
let customer_table = 2
let stock_table = 3
let order_table = 4
let order_line_table = 5
let item_table = 6

let districts_per_wh = 10
let customers_per_district = 30
let items_per_wh = 200
let max_orders_per_district = 10_000

(* columns *)
let w_ytd = 0
let w_tax = 1
let d_ytd = 0
let d_next_o_id = 1
let d_tax = 2
let c_balance = 0
let c_ytd_payment = 1
let c_delivery_cnt = 3
let s_quantity = 0
let s_ytd = 1
let o_customer = 0
let o_ol_cnt = 1
let o_carrier = 2
let ol_item = 0
let ol_qty = 1
let ol_amount = 2
let i_price = 0
let remote_payment_pct = 15
let remote_stock_pct = 1

let wh w col = Cell.make ~table:warehouse_table ~row:w ~col
let district_row w d = (w * districts_per_wh) + d
let dist w d col = Cell.make ~table:district_table ~row:(district_row w d) ~col

let customer_row w d c =
  (district_row w d * customers_per_district) + c

let cust w d c col = Cell.make ~table:customer_table ~row:(customer_row w d c) ~col
let stock_row w i = (w * items_per_wh) + i
let stock w i col = Cell.make ~table:stock_table ~row:(stock_row w i) ~col
let order_row w d o = (district_row w d * max_orders_per_district) + o
let order w d o col = Cell.make ~table:order_table ~row:(order_row w d o) ~col

let order_line w d o line col =
  Cell.make ~table:order_line_table ~row:((order_row w d o * 15) + line) ~col

let item i col = Cell.make ~table:item_table ~row:i ~col

let spec ?(scale_factor = 1) () =
  let warehouses = max 1 scale_factor in
  let initial =
    let acc = ref [] in
    for w = 0 to warehouses - 1 do
      acc := (wh w w_ytd, 1_000) :: (wh w w_tax, 7 + w) :: !acc;
      for d = 0 to districts_per_wh - 1 do
        acc :=
          (dist w d d_ytd, 500)
          :: (dist w d d_next_o_id, 1)
          :: (dist w d d_tax, 5 + d)
          :: !acc;
        for c = 0 to customers_per_district - 1 do
          acc :=
            (cust w d c c_balance, 100 + c)
            :: (cust w d c c_ytd_payment, 0)
            :: (cust w d c c_delivery_cnt, 0)
            :: !acc
        done
      done;
      for i = 0 to items_per_wh - 1 do
        acc := (stock w i s_quantity, 50 + (i mod 41)) :: (stock w i s_ytd, 0) :: !acc
      done
    done;
    (* the read-only item catalog (shared across warehouses) *)
    for i = 0 to items_per_wh - 1 do
      acc := (item i i_price, 100 + (i * 3 mod 97)) :: !acc
    done;
    !acc
  in
  (* TPC-C's remote accesses: with small probability a transaction crosses
     warehouses, the source of inter-warehouse contention at sf > 1. *)
  let maybe_remote rng w =
    if warehouses > 1 && Rng.int rng 100 < remote_payment_pct then
      let rec other () =
        let w' = Rng.int rng warehouses in
        if w' = w then other () else w'
      in
      other ()
    else w
  in
  let supply_warehouse rng w =
    if warehouses > 1 && Rng.int rng 100 < remote_stock_pct then
      Rng.int rng warehouses
    else w
  in
  let pick rng =
    let w = Rng.int rng warehouses in
    let d = Rng.int rng districts_per_wh in
    let c = Rng.int rng customers_per_district in
    (w, d, c)
  in
  let new_order rng =
    let w, d, c = pick rng in
    let n_lines = 5 + Rng.int rng 6 in
    let item_ids = List.init n_lines (fun _ -> Rng.int rng items_per_wh) in
    Program.read [ wh w w_tax; dist w d d_tax; dist w d d_next_o_id ]
      (fun items ->
        let o_id =
          Program.value_of items (dist w d d_next_o_id)
          mod max_orders_per_district
        in
        Program.write
          [ (dist w d d_next_o_id, o_id + 1) ]
          (fun () ->
            let line_steps =
              List.mapi
                (fun line item_id () ->
                  let qty = 1 + Rng.int rng 10 in
                  let sw = supply_warehouse rng w in
                  Program.read [ item item_id i_price; stock sw item_id s_quantity ]
                    (fun sitems ->
                      let price = Program.value_of sitems (item item_id i_price) in
                      let q =
                        Program.value_of sitems (stock sw item_id s_quantity)
                      in
                      let q' = if q - qty < 10 then q - qty + 91 else q - qty in
                      Program.write
                        [
                          (stock sw item_id s_quantity, q');
                          (stock sw item_id s_ytd, q + qty);
                        ]
                        (fun () ->
                          Program.write_then
                            [
                              (order_line w d o_id line ol_item, item_id + 1);
                              (order_line w d o_id line ol_qty, qty);
                              (order_line w d o_id line ol_amount, qty * price);
                            ]
                            Program.finish)))
                item_ids
            in
            Program.chain
              (Program.write_then
                 [ (order w d o_id o_customer, c + 1); (order w d o_id o_ol_cnt, n_lines) ]
                 Program.finish)
              line_steps))
  in
  let payment rng =
    let w, d, c = pick rng in
    (* 15% of payments are for a customer of a remote warehouse *)
    let cw = maybe_remote rng w in
    let h = 1 + Rng.int rng 500 in
    Program.read [ wh w w_ytd ] (fun witems ->
        let wy = Program.value_of witems (wh w w_ytd) in
        Program.write
          [ (wh w w_ytd, wy + h) ]
          (fun () ->
            Program.read [ dist w d d_ytd ] (fun ditems ->
                let dy = Program.value_of ditems (dist w d d_ytd) in
                Program.write
                  [ (dist w d d_ytd, dy + h) ]
                  (fun () ->
                    Program.read
                      [ cust cw d c c_balance; cust cw d c c_ytd_payment ]
                      (fun citems ->
                        let bal = Program.value_of citems (cust cw d c c_balance) in
                        let ytd =
                          Program.value_of citems (cust cw d c c_ytd_payment)
                        in
                        Program.write_then
                          [
                            (cust cw d c c_balance, bal - h);
                            (cust cw d c c_ytd_payment, ytd + h);
                          ]
                          Program.finish)))))
  in
  let order_status rng =
    let w, d, c = pick rng in
    Program.read [ cust w d c c_balance ] (fun _ ->
        Program.read [ dist w d d_next_o_id ] (fun items ->
            let next = Program.value_of items (dist w d d_next_o_id) in
            if next <= 1 then Program.finish
            else
              let o = (next - 1) mod max_orders_per_district in
              Program.read [ order w d o o_customer; order w d o o_ol_cnt ]
                (fun oitems ->
                  let n = Program.value_of oitems (order w d o o_ol_cnt) in
                  if n <= 0 then Program.finish
                  else
                    let lines =
                      List.init (min n 15) (fun l ->
                          order_line w d o l ol_amount)
                    in
                    Program.read ~predicate:true lines (fun _ -> Program.finish))))
  in
  let delivery rng =
    let w, d, _ = pick rng in
    Program.read [ dist w d d_next_o_id ] (fun items ->
        let next = Program.value_of items (dist w d d_next_o_id) in
        if next <= 1 then Program.finish
        else
          let o = (next - 1) mod max_orders_per_district in
          Program.read ~locking:true [ order w d o o_customer ] (fun oitems ->
              let c_raw = Program.value_of oitems (order w d o o_customer) in
              if c_raw <= 0 then Program.finish
              else
                let c = (c_raw - 1) mod customers_per_district in
                Program.write
                  [ (order w d o o_carrier, 1 + (o mod 10)) ]
                  (fun () ->
                    Program.read
                      [ cust w d c c_balance; cust w d c c_delivery_cnt ]
                      (fun citems ->
                        let bal = Program.value_of citems (cust w d c c_balance) in
                        let cnt =
                          Program.value_of citems (cust w d c c_delivery_cnt)
                        in
                        Program.write_then
                          [
                            (cust w d c c_balance, bal + 50);
                            (cust w d c c_delivery_cnt, cnt + 1);
                          ]
                          Program.finish))))
  in
  let stock_level rng =
    let w, d, _ = pick rng in
    ignore d;
    let start = Rng.int rng (max 1 (items_per_wh - 20)) in
    let cells = List.init 20 (fun i -> stock w (start + i) s_quantity) in
    Program.read ~predicate:true cells (fun _ -> Program.finish)
  in
  let next_txn rng =
    let roll = Rng.int rng 100 in
    if roll < 45 then new_order rng
    else if roll < 88 then payment rng
    else if roll < 92 then order_status rng
    else if roll < 96 then delivery rng
    else stock_level rng
  in
  Spec.make
    ~name:(Printf.sprintf "tpcc(sf=%d)" scale_factor)
    ~initial ~next_txn
