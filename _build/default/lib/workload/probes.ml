module Cell = Leopard_trace.Cell
module Rng = Leopard_util.Rng
module F = Minidb.Fault

type probe = {
  fault : Minidb.Fault.t;
  spec : Spec.t;
  db_profile : Minidb.Profile.t;
  level : Minidb.Isolation.level;
  verifier_profile : string;
  clients : int;
  txns : int;
}

let hot_table = 0
let pad_table = 9
let hot_rows = 4

let hot row = Cell.make ~table:hot_table ~row ~col:0
let pad_cell row = Cell.make ~table:pad_table ~row ~col:0

let initial =
  List.init hot_rows (fun r -> (hot r, 777))

(* Padding: reads of private rows, to stretch a transaction in time
   without creating conflicts. *)
let padding fresh_pad n next =
  let steps =
    List.init n (fun _ () ->
        Program.read [ pad_cell (fresh_pad ()) ] (fun _ -> Program.finish))
  in
  Program.chain (Program.seq steps) [ (fun () -> next) ]

let pad_counter () =
  let c = ref 0 in
  fun () ->
    incr c;
    !c

let mk_spec ~name next_txn = Spec.make ~name ~initial ~next_txn

(* A long transaction that writes a hot row early then dawdles, paired
   with a short transaction touching the same row: the short transaction
   nests inside the long one's lock hold whenever the engine wrongly lets
   it through. *)
let nesting_spec ~name ~long ~short =
  let next_txn rng =
    if Rng.bool rng then long rng else short rng
  in
  mk_spec ~name next_txn

let default ~fault ~spec ?(db_profile = Minidb.Profile.tidb)
    ?(level = Minidb.Isolation.Repeatable_read) ?(verifier_profile = "tidb/RR")
    ?(clients = 16) ?(txns = 3_000) () =
  { fault; spec; db_profile; level; verifier_profile; clients; txns }

let for_fault fault =
  let fresh = Spec.fresh_value_counter () in
  let fpad = pad_counter () in
  match fault with
  | F.No_lock_on_noop_update ->
    (* TiDB bug 1: an update writing the current value takes no lock.
       Every write stores the constant 777, so after the first commit all
       updates are no-ops; the short writer slips inside the long
       writer's hold. *)
    let long rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, 777) ] (fun () ->
          padding fpad 6 Program.finish)
    in
    let short rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, 777) ] (fun () -> Program.finish)
    in
    default ~fault ~spec:(nesting_spec ~name:"probe-noop-update" ~long ~short) ()
  | F.Stale_read ->
    let next rng =
      let r = Rng.int rng hot_rows in
      if Rng.bool rng then
        Program.write [ (hot r, fresh ()) ] (fun () -> Program.finish)
      else Program.read [ hot r ] (fun _ -> Program.finish)
    in
    default ~fault ~spec:(mk_spec ~name:"probe-stale-read" next) ()
  | F.Predicate_read_ignores_locks ->
    (* TiDB bug 3: FOR UPDATE through a join forgets the lock. *)
    let long rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, fresh ()) ] (fun () ->
          padding fpad 6 Program.finish)
    in
    let short _rng =
      let cells = List.init hot_rows hot in
      Program.read ~locking:true ~predicate:true cells (fun _ ->
          Program.finish)
    in
    default ~fault
      ~spec:(nesting_spec ~name:"probe-predicate-lock" ~long ~short)
      ()
  | F.Read_two_versions ->
    (* TiDB bug 4: a query returns both the own pending write and a
       deleted version. *)
    let next rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, fresh ()) ] (fun () ->
          Program.read [ hot r ] (fun _ -> Program.finish))
    in
    default ~fault ~spec:(mk_spec ~name:"probe-two-versions" next) ()
  | F.No_fuw ->
    (* Lost update: read-modify-write on hot rows with a widened race
       window; under snapshot isolation FUW must abort the second
       updater. *)
    let next rng =
      let r = Rng.int rng hot_rows in
      Program.read [ hot r ] (fun items ->
          let v = Program.value_of items (hot r) in
          padding fpad 3
            (Program.write_then [ (hot r, v + 1) ] Program.finish))
    in
    default ~fault
      ~spec:(mk_spec ~name:"probe-lost-update" next)
      ~db_profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~verifier_profile:"postgresql/SI" ()
  | F.No_ssi ->
    (* Write skew on row pairs (2i, 2i+1). *)
    let pairs = 2 in
    let next rng =
      let p = Rng.int rng pairs in
      let a = hot (2 * p) and b = hot ((2 * p) + 1) in
      let target = if Rng.bool rng then a else b in
      Program.read [ a; b ] (fun _ ->
          padding fpad 3
            (Program.write_then [ (target, fresh ()) ] Program.finish))
    in
    default ~fault
      ~spec:(mk_spec ~name:"probe-write-skew" next)
      ~db_profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Serializable ~verifier_profile:"postgresql/SR"
      ()
  | F.Dirty_read ->
    let long rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, fresh ()) ] (fun () ->
          padding fpad 6 Program.finish)
    in
    let short rng =
      let r = Rng.int rng hot_rows in
      Program.read [ hot r ] (fun _ -> Program.finish)
    in
    default ~fault ~spec:(nesting_spec ~name:"probe-dirty-read" ~long ~short) ()
  | F.Stmt_snapshot_under_txn_cr ->
    let next rng =
      let r = Rng.int rng hot_rows in
      if Rng.bool rng then
        Program.write [ (hot r, fresh ()) ] (fun () -> Program.finish)
      else
        Program.read [ hot r ] (fun _ ->
            padding fpad 6
              (Program.read [ hot r ] (fun _ -> Program.finish)))
    in
    default ~fault ~spec:(mk_spec ~name:"probe-stmt-snapshot" next) ()
  | F.Early_lock_release ->
    let long rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, fresh ()) ] (fun () ->
          padding fpad 6 Program.finish)
    in
    let short rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, fresh ()) ] (fun () -> Program.finish)
    in
    default ~fault
      ~spec:(nesting_spec ~name:"probe-early-release" ~long ~short)
      ()
  | F.Snapshot_reset_on_write ->
    let next rng =
      let r = Rng.int rng hot_rows in
      if Rng.bool rng then
        Program.write [ (hot r, fresh ()) ] (fun () -> Program.finish)
      else
        Program.read [ hot r ] (fun _ ->
            padding fpad 5
              (Program.write [ (pad_cell (fpad ()), fresh ()) ] (fun () ->
                   Program.read [ hot r ] (fun _ -> Program.finish))))
    in
    default ~fault ~spec:(mk_spec ~name:"probe-snapshot-reset" next) ()
  | F.Mvto_no_check ->
    (* A slow old transaction writes a hot row after a young one already
       committed a newer version — timestamp inversion. *)
    let long rng =
      let r = Rng.int rng hot_rows in
      padding fpad 8
        (Program.write_then [ (hot r, fresh ()) ] Program.finish)
    in
    let short rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, fresh ()) ] (fun () -> Program.finish)
    in
    default ~fault
      ~spec:(nesting_spec ~name:"probe-ts-inversion" ~long ~short)
      ~db_profile:Minidb.Profile.cockroachdb
      ~level:Minidb.Isolation.Serializable
      ~verifier_profile:"cockroachdb/SR" ()
  | F.Ignore_own_writes ->
    let next rng =
      let r = Rng.int rng hot_rows in
      Program.read [ hot r ] (fun _ ->
          Program.write [ (hot r, fresh ()) ] (fun () ->
              Program.read [ hot r ] (fun _ -> Program.finish)))
    in
    default ~fault ~spec:(mk_spec ~name:"probe-own-writes" next) ()
  | F.Version_order_inversion ->
    let next rng =
      let r = Rng.int rng hot_rows in
      if Rng.chance rng 0.6 then
        Program.write [ (hot r, fresh ()) ] (fun () -> Program.finish)
      else Program.read [ hot r ] (fun _ -> Program.finish)
    in
    default ~fault ~spec:(mk_spec ~name:"probe-version-inversion" next) ()
  | F.Read_aborted_version ->
    let next rng =
      let r = Rng.int rng hot_rows in
      match Rng.int rng 3 with
      | 0 ->
        Program.write [ (hot r, fresh ()) ] (fun () -> Program.rollback)
      | 1 -> Program.write [ (hot r, fresh ()) ] (fun () -> Program.finish)
      | _ -> Program.read [ hot r ] (fun _ -> Program.finish)
    in
    default ~fault ~spec:(mk_spec ~name:"probe-aborted-read" next) ()
  | F.Partial_commit ->
    let next rng =
      let r = Rng.int rng (hot_rows / 2) in
      let a = hot (2 * r) and b = hot ((2 * r) + 1) in
      if Rng.bool rng then
        let v = fresh () in
        Program.write [ (a, v); (b, v + 500_000) ] (fun () -> Program.finish)
      else Program.read [ b ] (fun _ -> Program.finish)
    in
    default ~fault ~spec:(mk_spec ~name:"probe-partial-commit" next) ()
  | F.Delayed_visibility ->
    let next rng =
      let r = Rng.int rng hot_rows in
      if Rng.bool rng then
        Program.write [ (hot r, fresh ()) ] (fun () -> Program.finish)
      else Program.read [ hot r ] (fun _ -> Program.finish)
    in
    default ~fault ~spec:(mk_spec ~name:"probe-delayed-visibility" next) ()
  | F.Shared_lock_ignores_exclusive ->
    let long rng =
      let r = Rng.int rng hot_rows in
      Program.write [ (hot r, fresh ()) ] (fun () ->
          padding fpad 6 Program.finish)
    in
    let short rng =
      let r = Rng.int rng hot_rows in
      Program.read [ hot r ] (fun _ -> Program.finish)
    in
    default ~fault
      ~spec:(nesting_spec ~name:"probe-slock-xlock" ~long ~short)
      ~db_profile:Minidb.Profile.sqlite ~level:Minidb.Isolation.Serializable
      ~verifier_profile:"sqlite/SR" ()

let all () = List.map for_fault Minidb.Fault.all
