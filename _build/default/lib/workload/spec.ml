module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type t = {
  name : string;
  initial : (Cell.t * Trace.value) list;
  next_txn : Leopard_util.Rng.t -> Program.t;
}

let make ~name ~initial ~next_txn = { name; initial; next_txn }

let fresh_value_counter () =
  let counter = ref 1_000_000 in
  fun () ->
    incr counter;
    !counter
