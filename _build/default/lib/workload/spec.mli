(** Workload specification.

    A spec packages what the harness needs to run a benchmark: the initial
    database population and a generator producing the next transaction
    program for a client.  Generators draw from an explicit {!Rng.t}, so a
    run is fully determined by its seed.

    [fresh_value] hands out run-unique values; workloads use it wherever
    the paper's workloads write "uniquely written values" (BlindW), and
    deliberately do {e not} use it where the paper relies on duplicates
    (SmallBank's [amalgamate] zeroing accounts). *)

module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type t = {
  name : string;
  initial : (Cell.t * Trace.value) list;
      (** initial population, installed before any client starts *)
  next_txn : Leopard_util.Rng.t -> Program.t;
      (** build one transaction program *)
}

val make :
  name:string ->
  initial:(Cell.t * Trace.value) list ->
  next_txn:(Leopard_util.Rng.t -> Program.t) ->
  t

val fresh_value_counter : unit -> unit -> Trace.value
(** A counter starting at 1_000_000 so generated values never collide with
    initial-population values. *)
