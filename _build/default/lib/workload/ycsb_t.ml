module Cell = Leopard_trace.Cell
module Rng = Leopard_util.Rng

let table = 0

let account_cell a = Cell.make ~table ~row:a ~col:0

let initial_balance a = 1_000 + (a mod 17)

let initial_total ~accounts =
  let rec go acc a =
    if a >= accounts then acc else go (acc + initial_balance a) (a + 1)
  in
  go 0 0

let spec ?(accounts = 1_000) ?(theta = 0.6) ?(audit_width = 4) () =
  let zipf = Leopard_util.Zipf.create ~n:accounts ~theta in
  let initial =
    List.init accounts (fun a -> (account_cell a, initial_balance a))
  in
  let pick rng = Leopard_util.Zipf.sample zipf rng in
  let pick_two rng =
    let a = pick rng in
    let rec other () =
      let b = pick rng in
      if b = a then other () else b
    in
    (a, other ())
  in
  let transfer rng =
    let a, b = pick_two rng in
    let amount = 1 + Rng.int rng 50 in
    Program.read [ account_cell a; account_cell b ] (fun items ->
        let bal_a = Program.value_of items (account_cell a) in
        let bal_b = Program.value_of items (account_cell b) in
        Program.write_then
          [ (account_cell a, bal_a - amount); (account_cell b, bal_b + amount) ]
          Program.finish)
  in
  let audit rng =
    let start = Rng.int rng (max 1 (accounts - audit_width)) in
    let cells = List.init audit_width (fun i -> account_cell (start + i)) in
    Program.read ~predicate:true cells (fun _ -> Program.finish)
  in
  let touch rng =
    let a = pick rng in
    Program.read [ account_cell a ] (fun items ->
        let bal = Program.value_of items (account_cell a) in
        Program.write_then [ (account_cell a, bal + 0) ] Program.finish)
  in
  let next_txn rng =
    let roll = Rng.int rng 100 in
    if roll < 50 then transfer rng
    else if roll < 80 then audit rng
    else touch rng
  in
  Spec.make
    ~name:(Printf.sprintf "ycsb+t(n=%d,theta=%.2f)" accounts theta)
    ~initial ~next_txn
