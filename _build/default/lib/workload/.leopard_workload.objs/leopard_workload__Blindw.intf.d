lib/workload/blindw.mli: Spec
