lib/workload/ycsb_t.ml: Leopard_trace Leopard_util List Printf Program Spec
