lib/workload/ycsb.mli: Spec
