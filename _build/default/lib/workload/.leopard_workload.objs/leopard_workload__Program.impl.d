lib/workload/program.ml: Leopard_trace List
