lib/workload/probes.ml: Leopard_trace Leopard_util List Minidb Program Spec
