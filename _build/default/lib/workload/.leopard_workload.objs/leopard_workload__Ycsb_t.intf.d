lib/workload/ycsb_t.mli: Leopard_trace Spec
