lib/workload/smallbank.mli: Spec
