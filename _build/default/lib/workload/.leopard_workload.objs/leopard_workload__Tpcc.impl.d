lib/workload/tpcc.ml: Leopard_trace Leopard_util List Printf Program Spec
