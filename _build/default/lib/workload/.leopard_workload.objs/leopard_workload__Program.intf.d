lib/workload/program.mli: Leopard_trace
