lib/workload/spec.mli: Leopard_trace Leopard_util Program
