lib/workload/tatp.mli: Spec
