lib/workload/tpcc.mli: Spec
