lib/workload/probes.mli: Minidb Spec
