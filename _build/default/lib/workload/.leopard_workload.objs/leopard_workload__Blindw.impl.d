lib/workload/blindw.ml: Leopard_trace Leopard_util List Program Spec
