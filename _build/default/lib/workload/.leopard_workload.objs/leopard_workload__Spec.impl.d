lib/workload/spec.ml: Leopard_trace Leopard_util Program
