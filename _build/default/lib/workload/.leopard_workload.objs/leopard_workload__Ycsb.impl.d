lib/workload/ycsb.ml: Leopard_trace Leopard_util List Printf Program Spec
