module Cell = Leopard_trace.Cell
module Rng = Leopard_util.Rng

type variant = W | RW | RW_plus

let variant_to_string = function
  | W -> "blindw-w"
  | RW -> "blindw-rw"
  | RW_plus -> "blindw-rw+"

let table = 0
let range_width = 10

let cell row = Cell.make ~table ~row ~col:0

let spec ?(rows = 2_000) ?(txn_len = 8) variant =
  let fresh = Spec.fresh_value_counter () in
  let initial = List.init rows (fun row -> (cell row, row + 1)) in
  let write_step rng () =
    let row = Rng.int rng rows in
    Program.write [ (cell row, fresh ()) ] (fun () -> Program.finish)
  in
  let item_read_step rng () =
    let row = Rng.int rng rows in
    Program.read [ cell row ] (fun _ -> Program.finish)
  in
  let range_read_step rng () =
    let start = Rng.int rng (max 1 (rows - range_width)) in
    let cells = List.init range_width (fun i -> cell (start + i)) in
    Program.read ~predicate:true cells (fun _ -> Program.finish)
  in
  let write_txn rng =
    Program.seq (List.init txn_len (fun _ -> write_step rng))
  in
  let read_txn ~ranges rng =
    Program.seq
      (List.init txn_len (fun i ->
           if ranges && i mod 2 = 0 then range_read_step rng
           else item_read_step rng))
  in
  let next_txn rng =
    match variant with
    | W -> write_txn rng
    | RW ->
      if Rng.bool rng then write_txn rng else read_txn ~ranges:false rng
    | RW_plus ->
      if Rng.bool rng then write_txn rng else read_txn ~ranges:true rng
  in
  Spec.make ~name:(variant_to_string variant) ~initial ~next_txn
