(** YCSB-A: the update-heavy key-value workload of the paper's Fig. 4.

    One table of [rows] single-column records.  Each transaction performs
    [ops_per_txn] operations (default 1, YCSB's autocommit style); each
    operation reads with probability [read_ratio] and blind-writes a
    unique value otherwise.  Keys are zipfian with parameter [theta] —
    the paper sweeps [theta], the thread scale and the read ratio to
    control contention and hence the overlap ratio β. *)

val table : int
(** Table id used by the generated cells (0). *)

val spec :
  ?rows:int ->
  ?theta:float ->
  ?read_ratio:float ->
  ?ops_per_txn:int ->
  unit ->
  Spec.t
(** Defaults: [rows = 100_000], [theta = 0.8], [read_ratio = 0.5],
    [ops_per_txn = 1]. *)
