module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type t =
  | Finish
  | Rollback
  | Read of {
      cells : Cell.t list;
      locking : bool;
      predicate : bool;
      k : Trace.item list -> t;
    }
  | Write of { items : (Cell.t * Trace.value) list; k : unit -> t }

let read ?(locking = false) ?(predicate = false) cells k =
  Read { cells; locking; predicate; k }

let write items k = Write { items; k }
let finish = Finish
let rollback = Rollback

let write_then items next = Write { items; k = (fun () -> next) }

let rec seq = function
  | [] -> Finish
  | step :: rest -> (
    match step () with
    | Finish | Rollback -> seq rest
    | Read r -> Read { r with k = (fun items -> chain (r.k items) rest) }
    | Write w -> Write { w with k = (fun () -> chain (w.k ()) rest) })

and chain prog rest =
  match prog with
  | Finish -> seq rest
  | Rollback -> Rollback
  | Read r -> Read { r with k = (fun items -> chain (r.k items) rest) }
  | Write w -> Write { w with k = (fun () -> chain (w.k ()) rest) }

let value_of items cell =
  match
    List.find_opt (fun (i : Trace.item) -> Cell.equal i.cell cell) items
  with
  | Some i -> i.value
  | None -> 0

let rec length = function
  | Finish | Rollback -> 0
  | Read { cells; k; _ } ->
    let fake =
      List.map (fun cell -> { Trace.cell; value = 0 }) cells
    in
    1 + length (k fake)
  | Write { k; _ } -> 1 + length (k ())
