lib/trace/cell.mli: Format Hashtbl Map Set
