lib/trace/cell.ml: Format Hashtbl Map Set
