lib/trace/trace.mli: Cell Format Leopard_util
