lib/trace/timeline.ml: Buffer Bytes Cell List Printf Trace
