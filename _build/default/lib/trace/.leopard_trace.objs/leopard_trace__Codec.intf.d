lib/trace/codec.mli: Trace
