lib/trace/timeline.mli: Cell Trace
