lib/trace/codec.ml: Cell Fun List Printf String Trace
