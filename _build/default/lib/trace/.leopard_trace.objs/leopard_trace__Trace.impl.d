lib/trace/trace.ml: Cell Format Leopard_util Printf
