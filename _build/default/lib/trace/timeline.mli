(** ASCII timelines of trace histories — a debugging lens.

    Renders a history as one lane per client, time flowing left to right,
    each operation drawn over its [(ts_bef, ts_aft)] interval:

    {v
    client 0 |  RRRR      WWW        CC
    client 1 |      WWWWWWWWW   CCCC
    v}

    [R]ead / locking read [L] / [W]rite / [C]ommit / [A]bort.  Interval
    overlaps — the uncertainty Leopard reasons about — are visible at a
    glance as vertically aligned glyphs.  Designed for the small
    reproduction cases in bug reports, not for full runs: rendering is
    clipped to [max_width] columns and the first [max_clients] lanes. *)

val render : ?max_width:int -> ?max_clients:int -> Trace.t list -> string
(** Defaults: [max_width = 100], [max_clients = 16].  Traces may be in
    any order; an empty history renders as a note line. *)

val render_for_cell : ?max_width:int -> Cell.t -> Trace.t list -> string
(** Like {!render} but keeps only the traces touching the given cell
    (plus their transactions' terminals) — the view used when explaining
    a single-cell violation. *)
