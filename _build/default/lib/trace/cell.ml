type t = { table : int; row : int; col : int }

let make ~table ~row ~col = { table; row; col }
let row_key t = (t.table, t.row)

let compare a b =
  let c = compare a.table b.table in
  if c <> 0 then c
  else
    let c = compare a.row b.row in
    if c <> 0 then c else compare a.col b.col

let equal a b = a.table = b.table && a.row = b.row && a.col = b.col

let hash t = Hashtbl.hash (t.table, t.row, t.col)

let pp ppf t = Format.fprintf ppf "t%d.r%d.c%d" t.table t.row t.col
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hashed)
