(** Interval-based traces — the only information Leopard sees (paper §IV-A).

    Each client logs, for every operation it issues, the timestamp taken
    just before the call ([ts_bef]), the timestamp taken just after the
    call returned ([ts_aft]), the operation kind and the data it touched:

    - a read logs the values it {e observed} per cell,
    - a write logs the values it {e wrote} per cell,
    - commit/abort log only the transaction.

    Nothing else crosses the black-box boundary: no internal timestamps,
    no lock events, no version identifiers.  Versions are matched by
    value, which is why workloads writing duplicate values (SmallBank's
    [amalgamate]) leave some dependencies undeducible (Fig. 13a). *)

type txn_id = int
type client_id = int
type value = int

type item = { cell : Cell.t; value : value }
(** One accessed version: the cell and the value observed or written. *)

type payload =
  | Read of { items : item list; locking : bool }
      (** Observed read set.  [locking] marks a locking read
          ([SELECT ... FOR UPDATE]): the client knows which statement it
          issued, so the flag is legitimately client-side knowledge.  A
          locking read participates in mutual-exclusion verification. *)
  | Write of item list  (** Written values (blind or read-modify-write). *)
  | Commit
  | Abort

type t = {
  ts_bef : int;  (** client timestamp immediately before issuing the op *)
  ts_aft : int;  (** client timestamp immediately after the op returned *)
  txn : txn_id;
  client : client_id;
  payload : payload;
}

val interval : t -> Leopard_util.Interval.t
(** The open interval [(ts_bef, ts_aft)] containing the unknown effect
    instant. *)

val compare_by_bef : t -> t -> int
(** The pipeline's dispatch order: by [ts_bef], ties by [ts_aft], then by
    [(client, txn)] for determinism. *)

val is_terminal : t -> bool
(** Commit or abort. *)

val read_items : t -> item list
(** Items of a read payload; [] otherwise. *)

val write_items : t -> item list
(** Items of a write payload; [] otherwise. *)

val well_formed : t -> (unit, string) result
(** Structural checks: [ts_bef < ts_aft], non-empty read/write sets, ids
    non-negative. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
