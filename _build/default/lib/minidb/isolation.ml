type level =
  | Read_committed
  | Repeatable_read
  | Snapshot_isolation
  | Serializable

let level_to_string = function
  | Read_committed -> "RC"
  | Repeatable_read -> "RR"
  | Snapshot_isolation -> "SI"
  | Serializable -> "SR"

let level_of_string = function
  | "RC" | "rc" | "read-committed" -> Some Read_committed
  | "RR" | "rr" | "repeatable-read" -> Some Repeatable_read
  | "SI" | "si" | "snapshot-isolation" -> Some Snapshot_isolation
  | "SR" | "sr" | "serializable" -> Some Serializable
  | _ -> None

let all_levels =
  [ Read_committed; Repeatable_read; Snapshot_isolation; Serializable ]

type cr_level = Txn_level | Stmt_level

type sc_kind = Ssi | Mvto | Occ_validate

type lock_granularity = Row_locks | Table_locks

let sc_kind_to_string = function
  | Ssi -> "SSI"
  | Mvto -> "MVTO"
  | Occ_validate -> "OCC"

type mechanisms = {
  me_writes : bool;
  me_locking_reads : bool;
  me_reads : bool;
  cr : cr_level option;
  fuw : bool;
  sc : sc_kind option;
  lock_granularity : lock_granularity;
}

let mechanism_letters m =
  let parts = ref [] in
  if m.sc <> None then parts := "SC" :: !parts;
  if m.fuw then parts := "FUW" :: !parts;
  if m.cr <> None then parts := "CR" :: !parts;
  if m.me_writes || m.me_reads then parts := "ME" :: !parts;
  String.concat "+" !parts

let pp_mechanisms ppf m =
  Format.fprintf ppf
    "{me_writes=%b; me_locking_reads=%b; me_reads=%b; cr=%s; fuw=%b; sc=%s}"
    m.me_writes m.me_locking_reads m.me_reads
    (match m.cr with
    | None -> "none"
    | Some Txn_level -> "txn"
    | Some Stmt_level -> "stmt")
    m.fuw
    (match m.sc with None -> "none" | Some k -> sc_kind_to_string k)
