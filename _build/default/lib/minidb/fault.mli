(** Fault injection — the reproduction of the paper's 17-bug study.

    The paper's headline practical result is that Leopard found 17
    isolation bugs in commercial DBMSs that other checkers missed,
    including four published TiDB cases (§VI-F).  We cannot run TiDB, so
    `minidb` exposes 17 injectable faults, each a genuine violation of one
    of the four mechanisms, observable only through client traces.  The
    first four are direct analogues of the paper's published bugs.

    A fault is switched on for a whole engine run; the engine consults the
    fault set at the corresponding decision point. *)

type t =
  | No_lock_on_noop_update
      (** Bug 1 analogue: an update writing a value equal to the current
          one skips its X lock (TiDB acquired no lock for a no-op update),
          admitting dirty writes. *)
  | Stale_read
      (** Bug 2 analogue: reads return the version {e preceding} the
          visible one when more than one committed version exists. *)
  | Predicate_read_ignores_locks
      (** Bug 3 analogue: a locking read reached through a predicate
          (range/join) forgets to acquire or respect row X locks. *)
  | Read_two_versions
      (** Bug 4 analogue: a read returns both the transaction's own
          pending write and an old (deleted) version of the same cell. *)
  | No_fuw  (** lost updates admitted: FUW checks disabled *)
  | No_ssi  (** write skew admitted: the SSI certifier is disabled *)
  | Dirty_read  (** visibility includes other transactions' pending writes *)
  | Stmt_snapshot_under_txn_cr
      (** statement-level snapshots served where transaction-level
          consistency was promised (non-repeatable reads under RR/SI) *)
  | Early_lock_release
      (** X locks released right after the write instead of at commit *)
  | Snapshot_reset_on_write
      (** the transaction's snapshot is silently re-taken at its first
          write, tearing the consistent view *)
  | Mvto_no_check  (** the timestamp-ordering certifier admits newer-to-older
                       dependencies *)
  | Ignore_own_writes
      (** reads do not see the transaction's own pending writes *)
  | Version_order_inversion
      (** a committed version is installed {e behind} the current latest
          version, so later readers see the older value as newest *)
  | Read_aborted_version
      (** reads may observe versions of aborted transactions *)
  | Partial_commit
      (** commit installs only a strict prefix of the write set *)
  | Delayed_visibility
      (** commit acknowledges the client before versions become visible;
          reads meanwhile miss supposedly-committed data *)
  | Shared_lock_ignores_exclusive
      (** S locks are (wrongly) granted while an X lock is held *)

val all : t list
val to_string : t -> string
val of_string : string -> t option

val description : t -> string
(** One-line human description (used by the bug-hunt example). *)

val expected_mechanism : t -> string
(** Which of Leopard's four verifications is expected to flag the fault:
    "CR", "ME", "FUW" or "SC" (primary mechanism when several could). *)

val paper_bug : t -> string option
(** For the four published TiDB analogues, the paper's bug name. *)

module Set : Set.S with type elt = t
