lib/minidb/version_store.ml: Hashtbl Leopard_trace List
