lib/minidb/profile.ml: Isolation Leopard_util List String
