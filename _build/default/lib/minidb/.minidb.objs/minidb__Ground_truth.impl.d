lib/minidb/ground_truth.ml: Hashtbl Leopard_trace List
