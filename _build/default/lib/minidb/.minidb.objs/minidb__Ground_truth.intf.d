lib/minidb/ground_truth.mli: Leopard_trace
