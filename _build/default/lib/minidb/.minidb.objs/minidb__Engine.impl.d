lib/minidb/engine.ml: Fault Ground_truth Hashtbl Isolation Leopard_trace List Lock_manager Option Printf Profile Sim Version_store
