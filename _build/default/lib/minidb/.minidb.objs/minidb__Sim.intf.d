lib/minidb/sim.mli:
