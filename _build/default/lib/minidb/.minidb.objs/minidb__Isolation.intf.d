lib/minidb/isolation.mli: Format
