lib/minidb/profile.mli: Isolation
