lib/minidb/isolation.ml: Format String
