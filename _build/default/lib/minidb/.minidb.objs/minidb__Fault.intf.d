lib/minidb/fault.mli: Set
