lib/minidb/version_store.mli: Leopard_trace
