lib/minidb/lock_manager.mli: Sim
