lib/minidb/engine.mli: Fault Ground_truth Isolation Leopard_trace Profile Sim
