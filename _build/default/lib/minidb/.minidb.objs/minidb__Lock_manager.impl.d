lib/minidb/lock_manager.ml: Hashtbl List Option Queue Sim
