lib/minidb/fault.ml: List Set String
