lib/minidb/sim.ml: Leopard_util Printf
