open Isolation

type t = {
  name : string;
  style : string;
  levels : (Isolation.level * Isolation.mechanisms) list;
}

let mechanisms t level = List.assoc level t.levels
let supports t level = List.mem_assoc level t.levels

let base =
  {
    me_writes = true;
    me_locking_reads = true;
    me_reads = false;
    cr = Some Txn_level;
    fuw = false;
    sc = None;
    lock_granularity = Row_locks;
  }

let postgresql =
  {
    name = "postgresql";
    style = "2PL+MVCC+SSI";
    levels =
      [
        (Serializable, { base with fuw = true; sc = Some Ssi });
        (Snapshot_isolation, { base with fuw = true });
        (Repeatable_read, { base with fuw = true });
        (Read_committed, { base with cr = Some Stmt_level });
      ];
  }

let innodb =
  {
    name = "innodb";
    style = "2PL+MVCC";
    levels =
      [
        (Serializable, { base with me_reads = true });
        (Repeatable_read, base);
        (Read_committed, { base with cr = Some Stmt_level });
      ];
  }

let tidb =
  {
    name = "tidb";
    style = "2PL+MVCC / Percolator";
    levels =
      [
        (Repeatable_read, base);
        (Read_committed, { base with cr = Some Stmt_level });
        ( Snapshot_isolation,
          {
            me_writes = false;
            me_locking_reads = true;
            me_reads = false;
            cr = Some Txn_level;
            fuw = true;
            sc = None;
            lock_granularity = Row_locks;
          } );
      ];
  }

let cockroachdb =
  {
    name = "cockroachdb";
    style = "TO+MVCC";
    levels =
      [
        ( Serializable,
          {
            me_writes = false;
            me_locking_reads = false;
            me_reads = false;
            cr = Some Txn_level;
            fuw = false;
            sc = Some Mvto;
            lock_granularity = Row_locks;
          } );
      ];
  }

let sqlite =
  {
    name = "sqlite";
    style = "2PL";
    levels =
      [
        ( Serializable,
          {
            me_writes = true;
            me_locking_reads = true;
            me_reads = true;
            cr = None;
            fuw = false;
            sc = None;
            lock_granularity = Table_locks;
          } );
      ];
  }

let foundationdb =
  {
    name = "foundationdb";
    style = "OCC+MVCC";
    levels =
      [
        ( Serializable,
          {
            me_writes = false;
            me_locking_reads = false;
            me_reads = false;
            cr = Some Txn_level;
            fuw = false;
            sc = Some Occ_validate;
            lock_granularity = Row_locks;
          } );
      ];
  }

let oracle =
  {
    name = "oracle";
    style = "2PL+MVCC";
    levels =
      [
        (Snapshot_isolation, { base with fuw = true });
        (Read_committed, { base with cr = Some Stmt_level });
      ];
  }

let all =
  [ postgresql; innodb; tidb; cockroachdb; sqlite; foundationdb; oracle ]

let find name =
  List.find_opt (fun p -> String.equal p.name name) all

let fig1_matrix () =
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun (level, m) ->
            let mark b = if b then "yes" else "" in
            [
              p.name;
              p.style;
              level_to_string level;
              mark (m.me_writes || m.me_reads);
              mark (m.cr <> None);
              mark m.fuw;
              (match m.sc with None -> "" | Some k -> sc_kind_to_string k);
            ])
          p.levels)
      all
  in
  Leopard_util.Table.render
    ~aligns:
      Leopard_util.Table.[ Left; Left; Left; Left; Left; Left; Left ]
    ~header:[ "DBMS"; "CC style"; "IL"; "ME"; "CR"; "FUW"; "SC" ]
    rows
