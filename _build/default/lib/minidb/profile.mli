(** Named DBMS profiles — the rows of the paper's Fig. 1.

    A profile fixes the concurrency-control style of a commercial DBMS and
    maps each isolation level it offers to the mechanisms implementing it.
    Leopard's verifier uses the same matrix (mirrored in
    [Leopard.Il_profile]) to decide which of the four verifications to run
    for a given system under test. *)

type t = {
  name : string;  (** e.g. "postgresql" *)
  style : string;  (** e.g. "2PL+MVCC+SSI" *)
  levels : (Isolation.level * Isolation.mechanisms) list;
      (** isolation levels the profile supports *)
}

val mechanisms : t -> Isolation.level -> Isolation.mechanisms
(** Raises [Not_found] if the profile does not offer the level. *)

val supports : t -> Isolation.level -> bool

(** {2 The Fig. 1 matrix} *)

val postgresql : t
(** 2PL+MVCC+SSI.  SR = ME+CR+FUW+SC(SSI); SI = ME+CR+FUW;
    RC = ME+CR(statement). *)

val innodb : t
(** 2PL+MVCC (also models Aurora / PolarDB / SQL Server row).
    SR = pure-2PL reads + CR; RR = ME+CR(txn) {e without} FUW (lost updates
    admitted, as the paper notes); RC = ME+CR(statement). *)

val tidb : t
(** 2PL+MVCC for RR/RC; Percolator-style SI = CR+SC(OCC validation),
    no pessimistic write locks. *)

val cockroachdb : t
(** TO+MVCC.  SR = CR+SC(MVTO), lock-free. *)

val sqlite : t
(** Pure 2PL, no MVCC: SR = ME only (reads take S locks). *)

val foundationdb : t
(** OCC+MVCC.  SR = CR+SC(OCC validation). *)

val oracle : t
(** 2PL+MVCC with FUW: SI = ME+CR+FUW; RC = ME+CR(statement).  Also models
    NuoDB / SAP HANA. *)

val all : t list
(** Every profile above, in Fig. 1 order. *)

val find : string -> t option
(** Look up a profile by [name]. *)

val fig1_matrix : unit -> string
(** Render the Fig. 1 mechanism matrix as an ASCII table. *)
