(** Isolation-level vocabulary and the four implementation mechanisms.

    The paper's central abstraction (§II-B, Fig. 1): every isolation level
    offered by the commercial DBMSs it surveys is implemented by composing
    four mechanisms —

    - {b CR} (consistent read): snapshot visibility, at transaction or
      statement granularity;
    - {b ME} (mutual exclusion): two-phase row locking;
    - {b FUW} (first updater wins): abort concurrent second updaters;
    - {b SC} (serialization certifier): SSI dangerous-structure detection,
      multi-version timestamp ordering, or OCC read-set validation.

    [mechanisms] is the engine-facing description of a concrete
    (DBMS, level) cell of Fig. 1; {!Profile} names the rows. *)

type level =
  | Read_committed
  | Repeatable_read
  | Snapshot_isolation
  | Serializable

val level_to_string : level -> string
val level_of_string : string -> level option
val all_levels : level list

(** Snapshot granularity of the CR mechanism. *)
type cr_level =
  | Txn_level  (** one snapshot at the transaction's first operation *)
  | Stmt_level  (** a fresh snapshot at every statement *)

(** Which serialization certifier the SC mechanism runs. *)
type sc_kind =
  | Ssi  (** PostgreSQL-style: abort pivots with both in- and out- rw
             antidependencies *)
  | Mvto  (** CockroachDB-style: forbid dependencies from a newer-timestamp
              transaction to an older one *)
  | Occ_validate  (** FoundationDB/RocksDB-style: commit-time read-set
                      validation *)

val sc_kind_to_string : sc_kind -> string

(** Lock granule of the ME mechanism: per row (every profile surveyed
    except SQLite) or per table (SQLite's database/table-level locking). *)
type lock_granularity = Row_locks | Table_locks

type mechanisms = {
  me_writes : bool;  (** X row locks on writes, held to transaction end *)
  me_locking_reads : bool;
      (** locking reads ([FOR UPDATE]) take X row locks *)
  me_reads : bool;
      (** plain reads take S row locks held to transaction end (pure 2PL
          reads: SQLite, InnoDB serializable) *)
  cr : cr_level option;  (** [None] = no MVCC snapshots (pure locking) *)
  fuw : bool;  (** first-updater-wins write conflict aborts *)
  sc : sc_kind option;
  lock_granularity : lock_granularity;
}

val pp_mechanisms : Format.formatter -> mechanisms -> unit

val mechanism_letters : mechanisms -> string
(** Compact "ME CR FUW SC" membership string for the Fig. 1 matrix. *)
