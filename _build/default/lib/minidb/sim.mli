(** Discrete-event simulation clock.

    The paper's experiments run real clients against a real DBMS on
    NTP-synchronised machines.  Here, clients and the engine share a
    simulated nanosecond clock instead: every latency (network hop,
    execution, lock wait, think time) is an explicit scheduled event.
    This preserves the phenomenon Leopard must cope with — operation
    intervals of concurrent clients genuinely overlap — while making runs
    deterministic and giving the harness exact ground truth.

    Events scheduled for the same instant fire in scheduling order
    (FIFO), which keeps whole experiments reproducible. *)

type t

val create : unit -> t
(** Fresh simulation starting at time 0. *)

val now : t -> int
(** Current simulated time in nanoseconds. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] when the clock reaches [at].  [at] must not
    be in the past ([at >= now t]); same-instant scheduling is allowed and
    runs after the current event completes. *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit
(** [schedule_after t ~delay f] = [schedule t ~at:(now t + max 0 delay) f]. *)

val run : t -> unit
(** Execute events until the agenda is empty. *)

val step : t -> bool
(** Execute the single next event; [false] when the agenda was empty. *)

val pending : t -> int
(** Number of events still scheduled. *)
