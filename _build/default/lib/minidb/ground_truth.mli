(** Ground-truth dependency recording.

    Because the DBMS is simulated, we know — unlike the paper, which can
    only sample — the {e exact} set of transaction dependencies a run
    produced.  The harness uses this to compute the overlap ratio β of
    Figs. 4 and 13 and to score how many uncertain dependencies Leopard's
    mechanism-mirrored verification managed to deduce.

    The engine reports three kinds of event:
    - a committed write installing a cell version,
    - a committed write installing a row version (the row sequence also
      captures same-row/different-column conflicts — real dependencies
      that traces cannot reveal, the TPC-C effect of Fig. 13b),
    - a read observing a particular writer's version.

    {!deps} then derives Adya's direct dependencies: ww between
    consecutive installers, wr from read provenance, rw from a read to the
    installer of the next version. *)

type dep_kind = Ww | Wr | Rw

val dep_kind_to_string : dep_kind -> string

type dep = {
  kind : dep_kind;
  from_txn : int;
  to_txn : int;
  from_op : int;  (** op id of the dependency's source operation *)
  to_op : int;  (** op id of the dependency's target operation *)
  row_only : bool;
      (** true when the conflict exists only at row granularity (disjoint
          column sets) — never deducible from traces *)
}

type t

val create : unit -> t

val record_cell_install :
  t -> Leopard_trace.Cell.t -> txn:int -> op:int -> unit
(** Must be called in commit order per cell. *)

val record_row_install : t -> int * int -> txn:int -> op:int -> unit
(** Must be called in commit order per row. *)

val record_read :
  t ->
  Leopard_trace.Cell.t ->
  reader:int ->
  op:int ->
  seen_writer:int ->
  seen_op:int ->
  unit

val deps : t -> committed:(int -> bool) -> dep list
(** All direct dependencies between committed transactions, deduplicated
    by [(kind, from, to)].  Dependencies involving the initial load
    (writer [-1]) are excluded. *)
