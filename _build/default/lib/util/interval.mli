(** Time-interval algebra for interval-based traces (paper §IV, Fig. 3).

    A trace records that an operation took effect at some unknown instant
    strictly inside the open interval [(ts_bef, ts_aft)] measured at the
    client.  All of Leopard's black-box reasoning reduces to two questions
    about such intervals:

    - {b certainty}: is the effect of [a] guaranteed to precede the effect
      of [b]?  (the intervals do not overlap — Fig. 3(a));
    - {b possibility}: could the effect of [a] have preceded the effect of
      [b]?  (used to enumerate the feasible orders of Theorems 3 and 4).

    Timestamps are [int] nanoseconds of simulated (or real monotonic)
    time. *)

type t = private { bef : int; aft : int }
(** An open interval [(bef, aft)] with [bef < aft].  The unknown effect
    instant lies strictly between the two endpoints. *)

val make : bef:int -> aft:int -> t
(** [make ~bef ~aft] builds an interval.  Raises [Invalid_argument] unless
    [bef < aft]. *)

val bef : t -> int
val aft : t -> int

val duration : t -> int
(** [aft - bef]. *)

val certainly_before : t -> t -> bool
(** [certainly_before a b] — every instant of [a] precedes every instant of
    [b]: [a.aft <= b.bef].  This is Fig. 3(a): a dependency can be deduced
    directly. *)

val possibly_before : t -> t -> bool
(** [possibly_before a b] — there exist instants [p_a] in [a] and [p_b] in
    [b] with [p_a < p_b]; for open intervals this is [a.bef < b.aft - 1]
    relaxed to [a.bef < b.aft] (instants are reals strictly inside).  The
    feasible-order enumeration of Theorems 3/4 is built from this. *)

val overlaps : t -> t -> bool
(** Neither interval is certainly before the other — Fig. 3(b)-(d): the
    order of effects cannot be decided from timestamps alone. *)

val compare_by_bef : t -> t -> int
(** Total order by [bef], ties by [aft] — the trace-sorting order of the
    two-level pipeline. *)

val compare_by_aft : t -> t -> int
(** Total order by [aft], ties by [bef] — the ordered-version order used by
    the consistent-read verifier (§V-A). *)

val equal : t -> t -> bool
val hull : t -> t -> t
(** Smallest interval containing both. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
