(** Binary min-heap.

    The global buffer of the two-level pipeline (paper §IV-C) is a min-heap
    keyed by trace before-timestamps; the discrete-event simulator's agenda
    is a min-heap keyed by event time.  This module provides both.

    Ordering is supplied at creation time as a [compare] function; ties are
    broken by insertion order (the heap is stable for equal keys), which the
    simulator relies on for determinism. *)

type 'a t

val create : compare:('a -> 'a -> int) -> 'a t
(** Fresh empty heap with the given ordering. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element; O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it; [None] when empty. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element; [None] when empty; O(log n). *)

val pop_exn : 'a t -> 'a
(** Like {!pop} but raises [Invalid_argument] on an empty heap. *)

val drain_while : 'a t -> ('a -> bool) -> 'a list
(** [drain_while t keep] pops elements in heap order as long as [keep]
    holds for the current minimum, returning them in pop order. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructively lists all elements in ascending order (costly; used
    only by tests). *)

val peak_length : 'a t -> int
(** High-water mark of {!length} since creation — the pipeline memory
    metric reported in Fig. 10. *)
