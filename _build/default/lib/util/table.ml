type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(aligns = []) ~header rows =
  let ncols =
    List.fold_left
      (fun acc row -> Stdlib.max acc (List.length row))
      (List.length header) rows
  in
  let get row i = match List.nth_opt row i with Some s -> s | None -> "" in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (get row i)))
          (String.length (get header i))
          rows)
  in
  let align_of i =
    match List.nth_opt aligns i with Some a -> a | None -> Right
  in
  let render_row row =
    let cells =
      List.init ncols (fun i -> pad (align_of i) widths.(i) (get row i))
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (List.init ncols (fun i -> String.make (widths.(i) + 2) '-'))
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?aligns ~header rows =
  print_string (render ?aligns ~header rows);
  flush stdout

let fmt_float ?(decimals = 2) x =
  if Float.is_integer x && Float.abs x < 1e15 && decimals <= 2 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" decimals x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
