(** Online summary statistics for experiment reporting.

    Welford's algorithm for mean/variance plus min/max/sum; constant
    memory.  Percentiles, when needed, are computed from an explicit
    sample list with {!percentile}. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0. when empty. *)

val stddev : t -> float
(** Population standard deviation; 0. for fewer than two samples. *)

val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators (exact for count/sum/min/max, Chan's formula
    for variance). *)

val percentile : float list -> float -> float
(** [percentile samples p] with [p] in [\[0,100\]], nearest-rank method;
    0. on an empty list. *)
