lib/util/table.mli:
