lib/util/zipf.ml: Rng
