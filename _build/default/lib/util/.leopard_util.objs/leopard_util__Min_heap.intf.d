lib/util/min_heap.mli:
