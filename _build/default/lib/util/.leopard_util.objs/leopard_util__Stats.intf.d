lib/util/stats.mli:
