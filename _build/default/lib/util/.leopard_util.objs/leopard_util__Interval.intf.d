lib/util/interval.mli: Format
