lib/util/rng.mli:
