lib/util/interval.ml: Format Printf
