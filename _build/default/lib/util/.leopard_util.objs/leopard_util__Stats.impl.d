lib/util/stats.ml: Array Stdlib
