type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int i ** theta))
  done;
  !acc

let create ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  if theta = 0.0 then
    { n; theta; alpha = 0.0; zetan = 0.0; eta = 0.0; half_pow_theta = 0.0 }
  else begin
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; half_pow_theta = 1.0 +. (0.5 ** theta) }
  end

let sample t rng =
  if t.theta = 0.0 then Rng.int rng t.n
  else begin
    (* YCSB's zipfian inversion (Gray et al., "Quickly generating
       billion-record synthetic databases"). *)
    let u = Rng.float rng 1.0 in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < t.half_pow_theta then 1
    else
      let rank =
        int_of_float
          (float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha))
      in
      if rank >= t.n then t.n - 1 else if rank < 0 then 0 else rank
  end

let n t = t.n
let theta t = t.theta
