(** Zipfian key sampling, as used by YCSB.

    A [Zipf.t] draws integers in [\[0, n)] where rank [k] has probability
    proportional to [1 / (k+1)^theta].  [theta = 0] degenerates to the
    uniform distribution; YCSB-A's default hot-spot setting is
    [theta = 0.99].  The implementation precomputes the harmonic
    normaliser and uses the classical YCSB inversion formula, so sampling
    is O(1) after O(n) setup. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over [\[0, n)].
    Requires [n >= 1] and [theta >= 0.]. *)

val sample : t -> Rng.t -> int
(** Draw one rank.  Rank 0 is the most popular key. *)

val n : t -> int
(** Size of the key space. *)

val theta : t -> float
(** The skew parameter the sampler was built with. *)
