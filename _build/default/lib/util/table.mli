(** Fixed-width ASCII tables for the benchmark harness.

    The bench executable reproduces each paper figure as a printed table of
    rows (series values per parameter setting); this module renders them
    with aligned columns so the output reads like the paper's plots in
    tabular form. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a table.  Column widths fit the widest
    cell; [aligns] defaults to [Right] for every column.  Rows shorter than
    the header are padded with empty cells. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** {!render} followed by [print_string] and a newline flush. *)

val fmt_float : ?decimals:int -> float -> string
(** Compact float formatting for cells (default 2 decimals; integers render
    without a fractional part). *)

val fmt_int : int -> string
(** Thousands-separated integer ("12_345" style uses commas: "12,345"). *)
