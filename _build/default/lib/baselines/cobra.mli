(** A Cobra-style serializability checker (Fig. 14 baseline).

    Cobra (Tan et al., OSDI 2020) verifies that a key-value history is
    serializable by building a {e polygraph}: known dependency edges plus
    binary constraints for every unordered pair of writers of a key, and
    searching for an acyclic orientation.  This module implements the
    polygraph core with Cobra's pruning loop:

    - known edges: per-client session order and wr edges recovered from
      uniquely-written values (Cobra's workload contract — time intervals
      are {e not} used, that is Leopard's advantage);
    - one constraint per unordered writer pair of a key, each orientation
      carrying the coupled anti-dependency edges (readers of the earlier
      writer precede the later writer);
    - pruning: an orientation whose edges close a cycle with the known
      graph is discarded; when both orientations are impossible the
      history is non-serializable; each test is a whole-graph
      reachability query, which is what makes Cobra's verification time
      grow superlinearly with the transaction count.

    Garbage collection mirrors Cobra's fence mechanism: every
    [Fence n] committed transactions the checker pays a full-graph sweep
    to identify frozen transactions (all constraints decided, old enough)
    and drops them.  [No_gc] keeps everything. *)

module Trace = Leopard_trace.Trace

type gc = No_gc | Fence of int

type report = {
  txns : int;
  violation : bool;
  decided : int;  (** constraints resolved by pruning *)
  undecided : int;  (** constraints left open (sent to the solver in real
                        Cobra) *)
  reachability_queries : int;
  peak_live : int;  (** nodes + edges + live constraints high-water mark *)
  final_live : int;
  pruned_txns : int;
}

type t

val create : gc:gc -> unit -> t

val feed : t -> Trace.t -> unit
(** Traces may arrive in any order that keeps each client's stream
    monotone; only committed transactions enter the polygraph. *)

val finalize : t -> report
