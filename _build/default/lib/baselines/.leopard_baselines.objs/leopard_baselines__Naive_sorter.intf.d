lib/baselines/naive_sorter.mli: Leopard_trace
