lib/baselines/naive_sorter.ml: Array Leopard_trace List
