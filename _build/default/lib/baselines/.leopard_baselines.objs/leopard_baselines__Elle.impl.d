lib/baselines/elle.ml: Hashtbl Leopard_trace List Printf String
