lib/baselines/elle.mli: Leopard_trace
