lib/baselines/cobra.mli: Leopard_trace
