lib/baselines/cobra.ml: Hashtbl Leopard_trace List
