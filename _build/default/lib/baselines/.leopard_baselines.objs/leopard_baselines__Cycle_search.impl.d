lib/baselines/cycle_search.ml: Hashtbl Leopard Leopard_trace List
