lib/baselines/cycle_search.mli: Leopard Leopard_trace
