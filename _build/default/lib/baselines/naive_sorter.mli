(** The naive trace-sorting baseline of Fig. 10.

    Instead of the two-level pipeline's incremental watermark merge, this
    collects {e every} trace from all clients into one global buffer and
    sorts it once before dispatching — the "collect all traces from
    multiple clients and sort them in a global buffer" strawman the paper
    compares against.  Memory is the whole run; dispatch cannot start
    until all clients finish. *)

module Trace = Leopard_trace.Trace

type t

val create : sources:(unit -> Trace.t option) array -> unit -> t

val next : t -> Trace.t option
(** The first call drains and sorts everything; subsequent calls pop. *)

val drain : t -> f:(Trace.t -> unit) -> int

val peak_memory : t -> int
(** Number of traces held at the high-water mark (the full run). *)

val dispatched : t -> int
