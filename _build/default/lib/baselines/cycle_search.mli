(** The naive cycle-searching verifier of Fig. 11.

    The strawman the paper contrasts with mechanism-mirrored
    verification: build the full dependency graph and search it for
    cycles.  To isolate the cost of the {e strategy} (global cycle search
    vs certifier mirroring), it consumes exactly the dependencies Leopard
    deduces (via {!Leopard.Checker.set_dep_hook}) but re-runs a
    whole-graph depth-first cycle search every [search_every] committed
    transactions and never prunes — the per-search cost grows with the
    graph, so total time grows superlinearly with the transaction count,
    as Fig. 11(a) reports. *)

module Trace = Leopard_trace.Trace

type t

val create : ?search_every:int -> Leopard.Il_profile.t -> t
(** [search_every] defaults to 1 (search on every commit, the paper's
    per-operation verification discipline). *)

val feed : t -> Trace.t -> unit
val finalize : t -> unit

val cycles_found : t -> int
val searches : t -> int
val nodes : t -> int
val edges : t -> int
val live_size : t -> int
(** Graph size (never pruned) — the memory metric. *)
