module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type anomaly =
  | Aborted_read of { reader : int; writer : int }
  | Intermediate_read of { reader : int; writer : int }
  | Lost_update of { key : Cell.t; t1 : int; t2 : int }
  | Cycle of int list

let anomaly_to_string = function
  | Aborted_read { reader; writer } ->
    Printf.sprintf "G1a aborted read: txn %d observed a value of aborted txn %d"
      reader writer
  | Intermediate_read { reader; writer } ->
    Printf.sprintf
      "G1b intermediate read: txn %d observed an overwritten intermediate \
       value of txn %d"
      reader writer
  | Lost_update { key; t1; t2 } ->
    Printf.sprintf
      "lost update on %s: txns %d and %d both derive from the same version"
      (Cell.to_string key) t1 t2
  | Cycle nodes ->
    Printf.sprintf "dependency cycle: %s"
      (String.concat " -> " (List.map string_of_int nodes))

type report = { txns : int; anomalies : anomaly list; ww_recovered : int }

type txn_info = {
  id : int;
  client : int;
  committed : bool;
  reads : (Cell.t * Trace.value) list;  (* in operation order *)
  writes : (Cell.t * Trace.value) list;  (* in operation order *)
  first_read_before_write : (Cell.t, Trace.value) Hashtbl.t;
      (* key -> value observed before this txn first wrote the key *)
}

let collect traces =
  let tbl : (int, txn_info) Hashtbl.t = Hashtbl.create 1024 in
  let get trace =
    match Hashtbl.find_opt tbl trace.Trace.txn with
    | Some i -> i
    | None ->
      let i =
        {
          id = trace.Trace.txn;
          client = trace.Trace.client;
          committed = false;
          reads = [];
          writes = [];
          first_read_before_write = Hashtbl.create 4;
        }
      in
      Hashtbl.replace tbl trace.Trace.txn i;
      i
  in
  List.iter
    (fun trace ->
      match trace.Trace.payload with
      | Trace.Read { items; _ } ->
        let i = get trace in
        let new_reads =
          List.map (fun (it : Trace.item) -> (it.cell, it.value)) items
        in
        List.iter
          (fun (key, value) ->
            if
              (not (List.mem_assoc key i.writes))
              && not (Hashtbl.mem i.first_read_before_write key)
            then Hashtbl.replace i.first_read_before_write key value)
          new_reads;
        Hashtbl.replace tbl trace.Trace.txn
          { i with reads = i.reads @ new_reads }
      | Trace.Write items ->
        let i = get trace in
        Hashtbl.replace tbl trace.Trace.txn
          {
            i with
            writes =
              i.writes
              @ List.map (fun (it : Trace.item) -> (it.cell, it.value)) items;
          }
      | Trace.Commit ->
        let i = get trace in
        Hashtbl.replace tbl trace.Trace.txn { i with committed = true }
      | Trace.Abort -> ())
    traces;
  tbl

let check traces =
  let tbl = collect traces in
  let anomalies = ref [] in
  let committed = Hashtbl.create 1024 in
  Hashtbl.iter (fun id i -> if i.committed then Hashtbl.replace committed id i) tbl;
  (* final (externally visible) and intermediate writes per txn *)
  let final_writer = Hashtbl.create 1024 in
  let intermediate = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id (i : txn_info) ->
      let finals = Hashtbl.create 8 in
      List.iter (fun (key, value) -> Hashtbl.replace finals key value) i.writes;
      List.iter
        (fun (key, value) ->
          match Hashtbl.find_opt finals key with
          | Some v when v = value ->
            if i.committed then Hashtbl.replace final_writer (key, value) id
          | _ -> Hashtbl.replace intermediate (key, value) id)
        i.writes;
      ignore id)
    tbl;
  (* all values ever written, by any txn (for G1a) *)
  let any_writer = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun id (i : txn_info) ->
      List.iter
        (fun (key, value) -> Hashtbl.replace any_writer (key, value) id)
        i.writes)
    tbl;
  (* ----- direct read anomalies ----- *)
  Hashtbl.iter
    (fun id (i : txn_info) ->
      List.iter
        (fun (key, value) ->
          if not (List.mem_assoc key i.writes && not (Hashtbl.mem i.first_read_before_write key))
          then
            match Hashtbl.find_opt final_writer (key, value) with
            | Some _ -> ()
            | None -> (
              match Hashtbl.find_opt any_writer (key, value) with
              | Some w when w <> id ->
                let winfo = Hashtbl.find tbl w in
                if not winfo.committed then
                  anomalies :=
                    Aborted_read { reader = id; writer = w } :: !anomalies
                else
                  anomalies :=
                    Intermediate_read { reader = id; writer = w } :: !anomalies
              | Some _ | None -> () (* value from the untraced initial state *)))
        i.reads)
    committed;
  (* ----- manifest version order: read-modify-write chains ----- *)
  (* predecessor key/value observed by a committed writer of the key *)
  let derives_from = Hashtbl.create 1024 in
  let ww = ref [] in
  Hashtbl.iter
    (fun id (i : txn_info) ->
      List.iter
        (fun (key, _value) ->
          match Hashtbl.find_opt i.first_read_before_write key with
          | Some observed -> (
            Hashtbl.add derives_from (key, observed) id;
            match Hashtbl.find_opt final_writer (key, observed) with
            | Some w when w <> id -> ww := (w, id) :: !ww
            | Some _ | None -> ())
          | None -> ())
        i.writes)
    committed;
  (* lost-update signature: two committed RMWs derive from one version *)
  let seen_pairs = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (key, observed) id ->
      let others = Hashtbl.find_all derives_from (key, observed) in
      List.iter
        (fun other ->
          if other < id then begin
            let pair = (key, other, id) in
            if not (Hashtbl.mem seen_pairs pair) then begin
              Hashtbl.replace seen_pairs pair ();
              anomalies := Lost_update { key; t1 = other; t2 = id } :: !anomalies
            end
          end)
        others)
    derives_from;
  (* ----- dependency graph: wr + session + recovered ww + derived rw ----- *)
  let adj = Hashtbl.create 1024 in
  let add_edge a b =
    if a <> b && Hashtbl.mem committed a && Hashtbl.mem committed b then begin
      let out =
        match Hashtbl.find_opt adj a with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace adj a r;
          r
      in
      if not (List.mem b !out) then out := b :: !out
    end
  in
  (* wr edges *)
  Hashtbl.iter
    (fun id (i : txn_info) ->
      List.iter
        (fun (key, value) ->
          match Hashtbl.find_opt final_writer (key, value) with
          | Some w -> add_edge w id
          | None -> ())
        i.reads)
    committed;
  (* session order *)
  let sessions = Hashtbl.create 64 in
  List.iter
    (fun trace ->
      match trace.Trace.payload with
      | Trace.Commit ->
        let prev = Hashtbl.find_opt sessions trace.Trace.client in
        (match prev with Some p -> add_edge p trace.Trace.txn | None -> ());
        Hashtbl.replace sessions trace.Trace.client trace.Trace.txn
      | Trace.Read _ | Trace.Write _ | Trace.Abort -> ())
    traces;
  (* recovered ww, and rw: a reader of version v antidepends on the RMW
     successor of v *)
  List.iter (fun (a, b) -> add_edge a b) !ww;
  Hashtbl.iter
    (fun id (i : txn_info) ->
      List.iter
        (fun (key, value) ->
          List.iter
            (fun successor -> if successor <> id then add_edge id successor)
            (Hashtbl.find_all derives_from (key, value)))
        i.reads)
    committed;
  (* cycle search *)
  let color = Hashtbl.create 1024 in
  let cycle = ref None in
  let rec dfs path node =
    match Hashtbl.find_opt color node with
    | Some `Grey ->
      if !cycle = None then begin
        let rec take acc = function
          | [] -> acc
          | x :: _ when x = node -> x :: acc
          | x :: rest -> take (x :: acc) rest
        in
        cycle := Some (take [ node ] path)
      end
    | Some `Black -> ()
    | None ->
      Hashtbl.replace color node `Grey;
      (match Hashtbl.find_opt adj node with
      | Some out -> List.iter (dfs (node :: path)) !out
      | None -> ());
      Hashtbl.replace color node `Black
  in
  Hashtbl.iter (fun node _ -> if !cycle = None then dfs [] node) adj;
  (match !cycle with
  | Some nodes -> anomalies := Cycle nodes :: !anomalies
  | None -> ());
  {
    txns = Hashtbl.length committed;
    anomalies = List.rev !anomalies;
    ww_recovered = List.length !ww;
  }
