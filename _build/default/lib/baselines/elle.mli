(** An Elle-style anomaly checker (§VI-F comparison).

    Elle (Alvaro & Kingsbury, VLDB 2020) infers isolation anomalies from
    histories whose {e workload} makes version orders manifest — uniquely
    written values, ideally read-modify-write chains — and reports the
    Adya anomalies it can phrase as dependency-graph cycles plus the
    direct read anomalies:

    - {b G1a} (aborted read): a committed read observes a value written
      by an aborted transaction;
    - {b G1b} (intermediate read): a read observes a value the writer
      overwrote before committing;
    - {b lost-update signature}: two committed read-modify-writes of the
      same key both derive from the same observed version;
    - {b G1c / G2 cycles}: cycles over wr edges, session order and the ww
      / rw edges recoverable from read-modify-write chains.

    What it deliberately cannot do — the paper's point — is use time
    intervals: a dirty write that leaves no cycle (TiDB bug 1), a lock
    violation, or a stale read under a weak level produce no manifest
    evidence, so Elle stays silent where Leopard's mechanism mirrors
    report ME/CR violations. *)

module Trace = Leopard_trace.Trace

type anomaly =
  | Aborted_read of { reader : int; writer : int }
  | Intermediate_read of { reader : int; writer : int }
  | Lost_update of { key : Leopard_trace.Cell.t; t1 : int; t2 : int }
  | Cycle of int list

val anomaly_to_string : anomaly -> string

type report = {
  txns : int;
  anomalies : anomaly list;
  ww_recovered : int;  (** ww edges recovered from RMW chains *)
}

val check : Trace.t list -> report
(** Offline, whole-history analysis (Elle's mode of operation). *)
