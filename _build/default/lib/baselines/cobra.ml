module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type gc = No_gc | Fence of int

type report = {
  txns : int;
  violation : bool;
  decided : int;
  undecided : int;
  reachability_queries : int;
  peak_live : int;
  final_live : int;
  pruned_txns : int;
}

(* A pending transaction being assembled from its traces. *)
type building = {
  mutable b_reads : (Cell.t * Trace.value) list;
  mutable b_writes : (Cell.t * Trace.value) list;
  b_client : int;
}

type constraint_state = Undecided | First_wins | Second_wins

type pair_constraint = {
  w1 : int;
  w2 : int;
  key : Cell.t;
  mutable state : constraint_state;
}

type t = {
  gc : gc;
  building : (int, building) Hashtbl.t;
  (* committed polygraph *)
  adj : (int, int list ref) Hashtbl.t;  (* known edges *)
  writers : int list ref Cell.Tbl.t;  (* committed writers per key *)
  readers : (int * Trace.value) list ref Cell.Tbl.t;
      (* committed (reader, value) per key *)
  value_writer : (Cell.t * Trace.value, int) Hashtbl.t;
  constraints : pair_constraint list ref Cell.Tbl.t;  (* per key *)
  mutable constraint_count : int;
  mutable undecided_count : int;
  last_in_session : (int, int) Hashtbl.t;  (* client -> last committed txn *)
  mutable nodes : int;
  mutable edge_count : int;
  mutable commits : int;
  mutable violation : bool;
  mutable decided : int;
  mutable queries : int;
  mutable peak : int;
  mutable pruned : int;
}

let create ~gc () =
  {
    gc;
    building = Hashtbl.create 256;
    adj = Hashtbl.create 4096;
    writers = Cell.Tbl.create 1024;
    readers = Cell.Tbl.create 1024;
    value_writer = Hashtbl.create 4096;
    constraints = Cell.Tbl.create 1024;
    constraint_count = 0;
    undecided_count = 0;
    last_in_session = Hashtbl.create 64;
    nodes = 0;
    edge_count = 0;
    commits = 0;
    violation = false;
    decided = 0;
    queries = 0;
    peak = 0;
    pruned = 0;
  }

let constraints_of t key =
  match Cell.Tbl.find_opt t.constraints key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Cell.Tbl.add t.constraints key r;
    r

let live t = t.nodes + t.edge_count + t.undecided_count

let note_mem t =
  let m = live t in
  if m > t.peak then t.peak <- m

let add_edge t a b =
  if a <> b then begin
    let out =
      match Hashtbl.find_opt t.adj a with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace t.adj a r;
        r
    in
    if not (List.mem b !out) then begin
      out := b :: !out;
      t.edge_count <- t.edge_count + 1
    end
  end

(* Whole-graph reachability: does src reach dst along known edges?  This
   is the expensive primitive of Cobra-style pruning. *)
let reaches t ~src ~dst =
  t.queries <- t.queries + 1;
  if src = dst then true
  else begin
    let visited = Hashtbl.create 64 in
    let rec dfs node =
      if node = dst then true
      else if Hashtbl.mem visited node then false
      else begin
        Hashtbl.replace visited node ();
        match Hashtbl.find_opt t.adj node with
        | None -> false
        | Some out -> List.exists dfs !out
      end
    in
    dfs src
  end

(* Edges implied by orienting [first] before [second] on [key]: the ww
   edge plus an anti-dependency from every reader of [first]'s version. *)
let orientation_edges t ~key ~first ~second =
  let rws =
    match Cell.Tbl.find_opt t.readers key with
    | None -> []
    | Some rs ->
      List.filter_map
        (fun (reader, value) ->
          match Hashtbl.find_opt t.value_writer (key, value) with
          | Some w when w = first && reader <> second -> Some (reader, second)
          | _ -> None)
        !rs
  in
  (first, second) :: rws

let orientation_possible t edges =
  not (List.exists (fun (a, b) -> reaches t ~src:b ~dst:a) edges)

let apply_orientation t edges = List.iter (fun (a, b) -> add_edge t a b) edges

let try_decide t c =
  if c.state = Undecided && not t.violation then begin
    let first_edges = orientation_edges t ~key:c.key ~first:c.w1 ~second:c.w2 in
    let second_edges = orientation_edges t ~key:c.key ~first:c.w2 ~second:c.w1 in
    let first_ok = orientation_possible t first_edges in
    let second_ok = orientation_possible t second_edges in
    match (first_ok, second_ok) with
    | false, false ->
      t.violation <- true;
      false
    | true, false ->
      c.state <- First_wins;
      t.decided <- t.decided + 1;
      t.undecided_count <- t.undecided_count - 1;
      apply_orientation t first_edges;
      true
    | false, true ->
      c.state <- Second_wins;
      t.decided <- t.decided + 1;
      t.undecided_count <- t.undecided_count - 1;
      apply_orientation t second_edges;
      true
    | true, true -> false
  end
  else false

(* One pruning pass over undecided constraints; returns [true] if any
   constraint was decided (so the caller iterates to fixpoint). *)
let prune_pass t =
  let progress = ref false in
  Cell.Tbl.iter
    (fun _key cs ->
      List.iter (fun c -> if try_decide t c then progress := true) !cs)
    t.constraints;
  !progress

let rec prune_fixpoint t = if prune_pass t then prune_fixpoint t

(* Fence GC: a full sweep freezing transactions whose constraints are all
   decided; frozen nodes and their edges are dropped (Cobra pays a whole
   graph traversal per fence to find them). *)
let fence_gc t =
  prune_fixpoint t;
  let hot = Hashtbl.create 256 in
  Cell.Tbl.iter
    (fun _key cs ->
      List.iter
        (fun c ->
          if c.state = Undecided then begin
            Hashtbl.replace hot c.w1 ();
            Hashtbl.replace hot c.w2 ()
          end)
        !cs)
    t.constraints;
  (* the reachability sweep Cobra pays: touch every node once *)
  Hashtbl.iter (fun node _ -> ignore (reaches t ~src:node ~dst:min_int)) t.adj;
  let frozen =
    Hashtbl.fold
      (fun node _ acc -> if Hashtbl.mem hot node then acc else node :: acc)
      t.adj []
  in
  List.iter
    (fun node ->
      (match Hashtbl.find_opt t.adj node with
      | Some out ->
        t.edge_count <- t.edge_count - List.length !out;
        Hashtbl.remove t.adj node
      | None -> ());
      t.nodes <- t.nodes - 1;
      t.pruned <- t.pruned + 1)
    frozen;
  (* drop decided constraints *)
  Cell.Tbl.iter
    (fun _key cs ->
      let kept = List.filter (fun c -> c.state = Undecided) !cs in
      t.constraint_count <- t.constraint_count - (List.length !cs - List.length kept);
      cs := kept)
    t.constraints

let building_of t trace =
  match Hashtbl.find_opt t.building trace.Trace.txn with
  | Some b -> b
  | None ->
    let b = { b_reads = []; b_writes = []; b_client = trace.Trace.client } in
    Hashtbl.replace t.building trace.Trace.txn b;
    b

let commit_txn t txn b =
  t.nodes <- t.nodes + 1;
  t.commits <- t.commits + 1;
  (* session order *)
  (match Hashtbl.find_opt t.last_in_session b.b_client with
  | Some prev -> add_edge t prev txn
  | None -> ());
  Hashtbl.replace t.last_in_session b.b_client txn;
  (* wr edges from uniquely-written values *)
  List.iter
    (fun (key, value) ->
      match Hashtbl.find_opt t.value_writer (key, value) with
      | Some w when w <> txn -> add_edge t w txn
      | Some _ | None -> ())
    b.b_reads;
  (* register reads; a reader of version v antidepends on every writer
     already decided to come after v's writer *)
  List.iter
    (fun (key, value) ->
      let rs =
        match Cell.Tbl.find_opt t.readers key with
        | Some r -> r
        | None ->
          let r = ref [] in
          Cell.Tbl.add t.readers key r;
          r
      in
      rs := (txn, value) :: !rs;
      match Hashtbl.find_opt t.value_writer (key, value) with
      | None -> ()
      | Some w ->
        List.iter
          (fun c ->
            match c.state with
            | First_wins when c.w1 = w -> add_edge t txn c.w2
            | Second_wins when c.w2 = w -> add_edge t txn c.w1
            | First_wins | Second_wins | Undecided -> ())
          !(constraints_of t key))
    b.b_reads;
  (* register writes: new constraints against every prior writer *)
  List.iter
    (fun (key, value) ->
      Hashtbl.replace t.value_writer (key, value) txn;
      let ws =
        match Cell.Tbl.find_opt t.writers key with
        | Some r -> r
        | None ->
          let r = ref [] in
          Cell.Tbl.add t.writers key r;
          r
      in
      List.iter
        (fun w ->
          if w <> txn then begin
            let c = { w1 = w; w2 = txn; key; state = Undecided } in
            let cs = constraints_of t key in
            cs := c :: !cs;
            t.constraint_count <- t.constraint_count + 1;
            t.undecided_count <- t.undecided_count + 1
          end)
        !ws;
      if not (List.mem txn !ws) then ws := txn :: !ws)
    b.b_writes;
  (* Incremental pruning: only the constraints on keys the new
     transaction wrote are examined per commit; whole-polygraph fixpoints
     run at fences and at the end (real Cobra defers the rest to its
     solver). *)
  List.iter
    (fun (key, _) ->
      List.iter
        (fun c ->
          if c.w1 = txn || c.w2 = txn then ignore (try_decide t c))
        !(constraints_of t key))
    b.b_writes;
  (match t.gc with
  | Fence n when t.commits mod n = 0 -> fence_gc t
  | Fence _ | No_gc -> ());
  note_mem t

let feed t trace =
  match trace.Trace.payload with
  | Trace.Read { items; _ } ->
    let b = building_of t trace in
    b.b_reads <-
      List.map (fun (i : Trace.item) -> (i.cell, i.value)) items @ b.b_reads
  | Trace.Write items ->
    let b = building_of t trace in
    b.b_writes <-
      List.map (fun (i : Trace.item) -> (i.cell, i.value)) items @ b.b_writes
  | Trace.Abort -> Hashtbl.remove t.building trace.Trace.txn
  | Trace.Commit ->
    let b = building_of t trace in
    Hashtbl.remove t.building trace.Trace.txn;
    commit_txn t trace.Trace.txn b

(* Final whole-graph acyclicity check over known edges. *)
let final_cycle_check t =
  let color = Hashtbl.create (Hashtbl.length t.adj) in
  let found = ref false in
  let rec dfs node =
    match Hashtbl.find_opt color node with
    | Some `Grey -> found := true
    | Some `Black -> ()
    | None ->
      Hashtbl.replace color node `Grey;
      (match Hashtbl.find_opt t.adj node with
      | Some out -> List.iter dfs !out
      | None -> ());
      Hashtbl.replace color node `Black
  in
  Hashtbl.iter (fun node _ -> if not !found then dfs node) t.adj;
  !found

let finalize t =
  prune_fixpoint t;
  if final_cycle_check t then t.violation <- true;
  note_mem t;
  {
    txns = t.commits;
    violation = t.violation;
    decided = t.decided;
    undecided = t.undecided_count;
    reachability_queries = t.queries;
    peak_live = t.peak;
    final_live = live t;
    pruned_txns = t.pruned;
  }
