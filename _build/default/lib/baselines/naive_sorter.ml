module Trace = Leopard_trace.Trace

type t = {
  sources : (unit -> Trace.t option) array;
  mutable sorted : Trace.t list option;  (* None until first [next] *)
  mutable peak : int;
  mutable dispatched : int;
}

let create ~sources () = { sources; sorted = None; peak = 0; dispatched = 0 }

let collect t =
  let all = ref [] in
  let count = ref 0 in
  Array.iter
    (fun source ->
      let rec pull () =
        match source () with
        | Some trace ->
          all := trace :: !all;
          incr count;
          pull ()
        | None -> ()
      in
      pull ())
    t.sources;
  t.peak <- !count;
  List.sort Trace.compare_by_bef !all

let next t =
  let sorted =
    match t.sorted with
    | Some s -> s
    | None ->
      let s = collect t in
      t.sorted <- Some s;
      s
  in
  match sorted with
  | [] -> None
  | trace :: rest ->
    t.sorted <- Some rest;
    t.dispatched <- t.dispatched + 1;
    Some trace

let drain t ~f =
  let rec go n =
    match next t with
    | Some trace ->
      f trace;
      go (n + 1)
    | None -> n
  in
  go 0

let peak_memory t = t.peak
let dispatched t = t.dispatched
