module Trace = Leopard_trace.Trace

type t = {
  checker : Leopard.Checker.t;
  adj : (int, int list ref) Hashtbl.t;
  search_every : int;
  mutable edge_count : int;
  mutable commits_seen : int;
  mutable cycles : int;
  mutable searches : int;
}

let create ?(search_every = 1) profile =
  (* The inner checker only supplies deductions; its own certifier is
     disabled so SC work is not double-counted. *)
  let profile = { profile with Leopard.Il_profile.check_sc = None } in
  let checker = Leopard.Checker.create ~gc_every:0 profile in
  let t =
    {
      checker;
      adj = Hashtbl.create 4096;
      search_every = max 1 search_every;
      edge_count = 0;
      commits_seen = 0;
      cycles = 0;
      searches = 0;
    }
  in
  Leopard.Checker.set_dep_hook checker (fun (d : Leopard.Dep.t) ->
      let out =
        match Hashtbl.find_opt t.adj d.from_txn with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace t.adj d.from_txn r;
          r
      in
      if not (List.mem d.to_txn !out) then begin
        out := d.to_txn :: !out;
        t.edge_count <- t.edge_count + 1
      end);
  t

(* Full DFS 3-colour cycle search over the whole accumulated graph. *)
let full_search t =
  t.searches <- t.searches + 1;
  let color = Hashtbl.create (Hashtbl.length t.adj) in
  let found = ref false in
  let rec dfs node =
    match Hashtbl.find_opt color node with
    | Some `Grey -> found := true
    | Some `Black -> ()
    | None ->
      Hashtbl.replace color node `Grey;
      (match Hashtbl.find_opt t.adj node with
      | Some out -> List.iter dfs !out
      | None -> ());
      Hashtbl.replace color node `Black
  in
  Hashtbl.iter (fun node _ -> if not !found then dfs node) t.adj;
  if !found then t.cycles <- t.cycles + 1

let feed t trace =
  Leopard.Checker.feed t.checker trace;
  match trace.Trace.payload with
  | Trace.Commit ->
    t.commits_seen <- t.commits_seen + 1;
    if t.commits_seen mod t.search_every = 0 then full_search t
  | Trace.Read _ | Trace.Write _ | Trace.Abort -> ()

let finalize t =
  Leopard.Checker.finalize t.checker;
  full_search t

let cycles_found t = t.cycles
let searches t = t.searches
let nodes t = Hashtbl.length t.adj
let edges t = t.edge_count
let live_size t = Hashtbl.length t.adj + t.edge_count

