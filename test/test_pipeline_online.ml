(* Pipeline online semantics: Pending sources, watermark soundness from
   last-delivered bounds, and Closed transitions. *)

module Pipeline = Leopard.Pipeline
module Trace = Leopard_trace.Trace

let x = Helpers.cell 0

let mk ~client ~bef =
  Helpers.write ~client ~txn:((client * 1000) + bef) ~bef ~aft:(bef + 1)
    [ (x, bef) ]

(* a live source backed by a queue: Pending while the queue is empty and
   the client alive, Closed afterwards *)
let queue_source () =
  let q = Queue.create () in
  let live = ref true in
  let source () =
    match Queue.take_opt q with
    | Some t -> Pipeline.Item t
    | None -> if !live then Pipeline.Pending else Pipeline.Closed
  in
  (q, live, source)

let test_pending_blocks_dispatch () =
  let q0, _, s0 = queue_source () in
  let q1, live1, s1 = queue_source () in
  let pipe = Pipeline.create ~batch:2 ~sources:[| s0; s1 |] () in
  Queue.push (mk ~client:0 ~bef:5) q0;
  (* client 1 has produced nothing: nothing may leave *)
  Alcotest.(check bool) "blocked" true (Pipeline.next pipe = None);
  Alcotest.(check bool) "not closed" false (Pipeline.closed pipe);
  (* once client 1 speaks with a smaller timestamp, it goes first.  A
     second, later trace moves its bound past 3 (the pipeline must hold a
     trace while its own client could still emit an equal ts_bef). *)
  Queue.push (mk ~client:1 ~bef:3) q1;
  Queue.push (mk ~client:1 ~bef:8) q1;
  (match Pipeline.next pipe with
  | Some t -> Alcotest.(check int) "smaller first" 3 t.Trace.ts_bef
  | None -> Alcotest.fail "expected dispatch");
  live1 := false;
  ignore live1

let test_last_bef_bound_enables_dispatch () =
  let q0, live0, s0 = queue_source () in
  let q1, live1, s1 = queue_source () in
  let pipe = Pipeline.create ~batch:2 ~sources:[| s0; s1 |] () in
  (* client 1 delivered bef 10 then went quiet: its future is >= 10, so
     client 0's strictly smaller traces may leave; 6 is held because
     client 0 itself could still emit another bef=6, and 10 because of
     client 1 *)
  Queue.push (mk ~client:1 ~bef:10) q1;
  ignore (Pipeline.next pipe);
  Queue.push (mk ~client:0 ~bef:4) q0;
  Queue.push (mk ~client:0 ~bef:6) q0;
  let seen = ref [] in
  ignore (Pipeline.drain pipe ~f:(fun t -> seen := t.Trace.ts_bef :: !seen));
  Alcotest.(check (list int)) "4 out on the bound" [ 4 ] (List.rev !seen);
  live0 := false;
  live1 := false;
  let rest = ref [] in
  ignore (Pipeline.drain pipe ~f:(fun t -> rest := t.Trace.ts_bef :: !rest));
  Alcotest.(check (list int)) "the held traces drain on close" [ 6; 10 ]
    (List.rev !rest)

let test_closed_drains_everything () =
  let q0, live0, s0 = queue_source () in
  let _, live1, s1 = queue_source () in
  let pipe = Pipeline.create ~sources:[| s0; s1 |] () in
  Queue.push (mk ~client:0 ~bef:7) q0;
  live0 := false;
  live1 := false;
  (match Pipeline.next pipe with
  | Some t -> Alcotest.(check int) "drained" 7 t.Trace.ts_bef
  | None -> Alcotest.fail "expected trace");
  Alcotest.(check bool) "exhausted" true (Pipeline.next pipe = None);
  Alcotest.(check bool) "closed" true (Pipeline.closed pipe)

let test_drain_resumable () =
  let q, live, source = queue_source () in
  let pipe = Pipeline.create ~sources:[| source |] () in
  Queue.push (mk ~client:0 ~bef:1) q;
  Queue.push (mk ~client:0 ~bef:2) q;
  let n1 = Pipeline.drain pipe ~f:(fun _ -> ()) in
  (* 2 cannot leave yet: the client might still produce another bef=2 *)
  Alcotest.(check int) "first batch" 1 n1;
  Queue.push (mk ~client:0 ~bef:5) q;
  let n2 = Pipeline.drain pipe ~f:(fun _ -> ()) in
  Alcotest.(check int) "second batch" 1 n2;
  live := false;
  let n3 = Pipeline.drain pipe ~f:(fun _ -> ()) in
  Alcotest.(check int) "final drain" 1 n3;
  Alcotest.(check int) "all dispatched" 3 (Pipeline.dispatched pipe)

(* Regression: a client that never delivers anything pins the watermark
   at -infinity forever — a single dead client used to freeze dispatch
   for the whole run.  With a stall bound, the silent source forfeits
   its watermark contribution once now() passes the bound. *)
let test_stall_bound_releases_watermark () =
  let q0, _, s0 = queue_source () in
  let _, _, s1 = queue_source () in
  (* client 1 stays Pending forever *)
  let now = ref 0 in
  let pipe =
    Pipeline.create ~max_stall_ns:100
      ~now:(fun () -> !now)
      ~sources:[| s0; s1 |] ()
  in
  Queue.push (mk ~client:0 ~bef:5) q0;
  Queue.push (mk ~client:0 ~bef:9) q0;
  (* within the bound the silent client still holds everything back *)
  now := 50;
  Alcotest.(check bool) "held within bound" true (Pipeline.next pipe = None);
  (* past the bound every silent source forfeits its bound — client 1
     (never spoke) and client 0 (quiet since its last delivery) alike —
     so the whole buffer flows *)
  now := 200;
  let seen = ref [] in
  ignore (Pipeline.drain pipe ~f:(fun t -> seen := t.Trace.ts_bef :: !seen));
  Alcotest.(check (list int)) "dispatch resumed" [ 5; 9 ] (List.rev !seen);
  Alcotest.(check int) "both sources stalled" 2 (Pipeline.stalled_sources pipe)

let test_stalled_source_late_arrival_dropped () =
  let q0, _, s0 = queue_source () in
  let q1, live1, s1 = queue_source () in
  let now = ref 0 in
  let pipe =
    Pipeline.create ~max_stall_ns:100
      ~now:(fun () -> !now)
      ~sources:[| s0; s1 |] ()
  in
  Queue.push (mk ~client:0 ~bef:5) q0;
  Queue.push (mk ~client:0 ~bef:9) q0;
  now := 200;
  let first = ref [] in
  ignore (Pipeline.drain pipe ~f:(fun t -> first := t.Trace.ts_bef :: !first));
  (* client 0 just delivered (its last_progress is fresh), so its own
     bound still holds 9; only the silent client 1 is stalled *)
  Alcotest.(check (list int)) "stall released client 1's pin" [ 5 ]
    (List.rev !first);
  (* the stalled client revives with a timestamp behind the frontier:
     feeding it downstream would break dispatch order, so it is dropped
     and accounted as late *)
  Queue.push (mk ~client:1 ~bef:2) q1;
  live1 := false;
  let rest = ref [] in
  ignore (Pipeline.drain pipe ~f:(fun t -> rest := t.Trace.ts_bef :: !rest));
  Alcotest.(check (list int)) "late revival yields nothing" [] (List.rev !rest);
  Alcotest.(check int) "late arrival dropped" 1 (Pipeline.late_dropped pipe)

(* A crashed source declares its stream over: the watermark releases
   immediately, without waiting out any stall bound. *)
let test_closed_crashed_releases_watermark () =
  let q0, live0, s0 = queue_source () in
  let crashed = ref false in
  let s1 () = if !crashed then Pipeline.Closed_crashed else Pipeline.Pending in
  let pipe = Pipeline.create ~sources:[| s0; s1 |] () in
  Queue.push (mk ~client:0 ~bef:5) q0;
  Alcotest.(check bool) "blocked while pending" true (Pipeline.next pipe = None);
  crashed := true;
  live0 := false;
  let seen = ref [] in
  ignore (Pipeline.drain pipe ~f:(fun t -> seen := t.Trace.ts_bef :: !seen));
  Alcotest.(check (list int)) "flows after crash declaration" [ 5 ]
    (List.rev !seen);
  Alcotest.(check int) "crash counted" 1 (Pipeline.crashed_sources pipe);
  Alcotest.(check bool) "pipeline closed" true (Pipeline.closed pipe)

let suite =
  [
    Alcotest.test_case "pending blocks dispatch" `Quick
      test_pending_blocks_dispatch;
    Alcotest.test_case "last-bef bound enables dispatch" `Quick
      test_last_bef_bound_enables_dispatch;
    Alcotest.test_case "closed drains everything" `Quick
      test_closed_drains_everything;
    Alcotest.test_case "drain is resumable" `Quick test_drain_resumable;
    Alcotest.test_case "stall bound releases watermark" `Quick
      test_stall_bound_releases_watermark;
    Alcotest.test_case "stalled source's late arrival dropped" `Quick
      test_stalled_source_late_arrival_dropped;
    Alcotest.test_case "crashed source releases watermark" `Quick
      test_closed_crashed_releases_watermark;
  ]
