(* leopard-lint: rule catalogue, fixtures, suppression scanner and the
   executable's exit codes.  Each rule has a pair of fixtures under
   lint_fixtures/: [<slug>_trigger.ml] must produce exactly that rule's
   finding, [<slug>_allowed.ml] is the same hazard under a suppression
   annotation and must produce none.  The whole-repo zero-findings gate
   runs as part of @runtest via the root dune rule; here we re-assert it
   through the executable when the build tree is visible. *)

module A = Leopard_analysis
module Driver = A.Driver
module Rules = A.Rules
module Zone = A.Zone

let fixtures_dir = "lint_fixtures"

(* (slug, forced zone) — the zone makes the rule applicable to a bare
   fixture file that lives under test/ (where most rules are off). *)
let cases =
  [
    ("random-global", Zone.Core);
    ("wall-clock", Zone.Core);
    ("hashtbl-order", Zone.Core);
    ("poly-compare", Zone.Core);
    ("fault-plane", Zone.Core);
    ("fault-construct", Zone.Minidb);
    ("exit-in-lib", Zone.Core);
    ("verdict-wildcard", Zone.Core);
    ("abort-wildcard", Zone.Core);
    ("tag-wildcard", Zone.Core);
    ("stale-allow", Zone.Core);
  ]

(* The P rules' "allowed" fixtures are clean by construction (Atomic
   state, Mutex-guarded helper, Rng.derive) rather than suppressed, so
   they get their own allowed-test asserting zero findings AND zero
   suppressions. *)
let p_cases =
  [
    ("spawn-capture", Zone.Core);
    ("nonatomic-global", Zone.Core);
    ("underived-seed", Zone.Campaign);
  ]

let fixture_path slug variant =
  let stem = String.map (fun c -> if c = '-' then '_' else c) slug in
  Filename.concat fixtures_dir (stem ^ "_" ^ variant ^ ".ml")

(* (fixture stem, rule slug, forced zone) — the replication fault plane
   rides the existing rules in its own zone: planting a Repl_fault
   constructor outside the harness is fault-construct, a wildcard over
   Wire.repl_msg is tag-wildcard. *)
let repl_cases =
  [
    ("repl_fault_construct", "fault-construct", Zone.Replication);
    ("repl_msg_wildcard", "tag-wildcard", Zone.Replication);
  ]

let repl_fixture_path stem variant =
  Filename.concat fixtures_dir (stem ^ "_" ^ variant ^ ".ml")

(* The sharding/2PC fault plane rides the same rules in its own zone:
   planting a Shard_fault constructor outside the harness is
   fault-construct, a wildcard over Wire.tpc_msg is tag-wildcard. *)
let shard_cases =
  [
    ("shard_fault_construct", "fault-construct", Zone.Shard);
    ("tpc_msg_wildcard", "tag-wildcard", Zone.Shard);
  ]

(* The stacked-plane composition orchestrator (lib/compose) is its own
   zone riding the same rules: it may test fault membership but never
   construct a fault value, and it forwards replication wire messages
   without wildcard arms. *)
let compose_cases =
  [
    ("compose_fault_construct", "fault-construct", Zone.Compose);
    ("compose_repl_msg_wildcard", "tag-wildcard", Zone.Compose);
  ]

(* The campaign zone rides the rules with a twist of its own: cell
   bodies must be pure functions of the cell, so even the sanctioned
   reporting clock (Util.Clock.wall) is a wall-clock finding there, and
   a wildcard over the cell outcome family (Completed/Crashed/Timeout)
   is a verdict-wildcard finding. *)
let campaign_cases =
  [
    ("campaign_wall_clock", "wall-clock", Zone.Campaign);
    ("campaign_outcome_wildcard", "verdict-wildcard", Zone.Campaign);
  ]

let lint_fixture ~zone path =
  match Driver.lint_file ~zone path with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s did not parse: %s" path e

let test_catalogue () =
  Alcotest.(check bool) "at least 14 rules" true (List.length Rules.all >= 14);
  let groups =
    List.sort_uniq compare
      (List.map (fun (r : Rules.t) -> Rules.group_to_string r.group) Rules.all)
  in
  Alcotest.(check (list string))
    "all five groups"
    [ "determinism"; "exhaustiveness"; "fault-plane"; "hygiene"; "parallelism" ]
    groups;
  let slugs = List.map (fun (r : Rules.t) -> r.slug) Rules.all in
  Alcotest.(check int)
    "slugs unique"
    (List.length slugs)
    (List.length (List.sort_uniq String.compare slugs));
  List.iter
    (fun (slug, _) ->
      Alcotest.(check bool)
        (slug ^ " is a known rule")
        true
        (Option.is_some (Rules.find_slug slug)))
    cases

let test_trigger (slug, zone) () =
  let r = lint_fixture ~zone (fixture_path slug "trigger") in
  let codes =
    List.sort_uniq String.compare
      (List.map (fun (f : A.Finding.t) -> f.rule.Rules.slug) r.findings)
  in
  Alcotest.(check (list string)) "exactly this rule fires" [ slug ] codes;
  Alcotest.(check int) "nothing suppressed" 0 r.suppressed

let test_allowed (slug, zone) () =
  let r = lint_fixture ~zone (fixture_path slug "allowed") in
  Alcotest.(check int) (slug ^ " fully suppressed") 0 (List.length r.findings);
  Alcotest.(check bool) "suppression counted" true (r.suppressed >= 1)

(* P-rule allowed fixtures are clean because the hazard is gone, not
   because it was excused. *)
let test_clean_allowed (slug, zone) () =
  let r = lint_fixture ~zone (fixture_path slug "allowed") in
  Alcotest.(check int) (slug ^ " clean") 0 (List.length r.findings);
  Alcotest.(check int) "nothing to suppress" 0 r.suppressed

let test_repl_trigger (stem, slug, zone) () =
  let r = lint_fixture ~zone (repl_fixture_path stem "trigger") in
  let codes =
    List.sort_uniq String.compare
      (List.map (fun (f : A.Finding.t) -> f.rule.Rules.slug) r.findings)
  in
  Alcotest.(check (list string)) "exactly this rule fires" [ slug ] codes

let test_repl_allowed (stem, _slug, zone) () =
  let r = lint_fixture ~zone (repl_fixture_path stem "allowed") in
  Alcotest.(check int) (stem ^ " fully suppressed") 0 (List.length r.findings);
  Alcotest.(check bool) "suppression counted" true (r.suppressed >= 1)

(* The harness owns replication fault injection, and tests construct
   faults freely — the rules stay quiet for the same hazards there. *)
let test_repl_zone_scoping () =
  List.iter
    (fun zone ->
      let r =
        lint_fixture ~zone (repl_fixture_path "repl_fault_construct" "trigger")
      in
      Alcotest.(check int)
        ("repl fault construction quiet in " ^ Zone.to_string zone)
        0 (List.length r.findings))
    [ Zone.Harness; Zone.Bin; Zone.Test ]

let test_shard_zone_scoping () =
  List.iter
    (fun zone ->
      let r =
        lint_fixture ~zone
          (repl_fixture_path "shard_fault_construct" "trigger")
      in
      Alcotest.(check int)
        ("shard fault construction quiet in " ^ Zone.to_string zone)
        0 (List.length r.findings))
    [ Zone.Harness; Zone.Bin; Zone.Test ]

(* The campaign-only wall-clock tightening must not leak: the same
   Clock.wall read is legal everywhere else (it IS the sanctioned
   reporting clock), and outcome matches in tests stay free. *)
let test_campaign_zone_scoping () =
  List.iter
    (fun zone ->
      let r =
        lint_fixture ~zone (repl_fixture_path "campaign_wall_clock" "trigger")
      in
      Alcotest.(check int)
        ("campaign clock read quiet in " ^ Zone.to_string zone)
        0 (List.length r.findings))
    [ Zone.Harness; Zone.Bin; Zone.Bench; Zone.Test ];
  let r =
    lint_fixture ~zone:Zone.Test
      (repl_fixture_path "campaign_outcome_wildcard" "trigger")
  in
  Alcotest.(check int) "outcome wildcard quiet in test" 0
    (List.length r.findings)

let test_compose_zone_scoping () =
  List.iter
    (fun zone ->
      let r =
        lint_fixture ~zone
          (repl_fixture_path "compose_fault_construct" "trigger")
      in
      Alcotest.(check int)
        ("compose fault construction quiet in " ^ Zone.to_string zone)
        0 (List.length r.findings))
    [ Zone.Harness; Zone.Bin; Zone.Test ]

(* Scoping is part of each rule's contract: fault-plane and
   exhaustiveness rules are off in the Test zone (tests construct faults
   and write fallback arms on purpose), while determinism rules follow
   their own exemptions (util hosts the rng). *)
let test_zone_scoping () =
  let quiet slug zone =
    let r = lint_fixture ~zone (fixture_path slug "trigger") in
    Alcotest.(check int)
      (slug ^ " quiet in " ^ Zone.to_string zone)
      0 (List.length r.findings)
  in
  List.iter
    (fun slug -> quiet slug Zone.Test)
    [
      "fault-plane";
      "fault-construct";
      "exit-in-lib";
      "verdict-wildcard";
      "abort-wildcard";
      "tag-wildcard";
    ];
  (* util is the sanctioned home of the rng *)
  quiet "random-global" Zone.Util;
  (* fault construction is the engine fault plane's own business *)
  quiet "fault-construct" Zone.Harness

let test_multiline_suppression () =
  let src =
    "(* lint: allow poly-compare — a justification long enough\n\
    \   to span several comment lines before it finally\n\
    \   closes *)\n\
     let f l = List.sort compare l\n"
  in
  match Driver.lint_source ~zone:Zone.Core ~path:"inline.ml" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok r ->
    Alcotest.(check int) "suppressed across comment lines" 0
      (List.length r.findings);
    Alcotest.(check int) "counted" 1 r.suppressed

let test_suppression_does_not_leak () =
  let src =
    "(* lint: allow poly-compare — only covers the next line *)\n\
     let g x = x\n\
     let f l = List.sort compare l\n"
  in
  match Driver.lint_source ~zone:Zone.Core ~path:"inline.ml" src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok r ->
    (* the compare finding survives out of the directive's range, and
       the directive — now suppressing nothing — is itself S001 *)
    let slugs =
      List.sort_uniq String.compare
        (List.map (fun (f : A.Finding.t) -> f.rule.Rules.slug) r.findings)
    in
    Alcotest.(check (list string))
      "finding survives and the directive is stale"
      [ "poly-compare"; "stale-allow" ]
      slugs

let test_parse_error () =
  match Driver.lint_source ~zone:Zone.Core ~path:"bad.ml" "let let let" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse diagnostic"

let test_json_shape () =
  let summary = Driver.lint_paths ~zone:Zone.Core [ fixture_path "poly-compare" "trigger" ] in
  let json = Driver.json_summary summary in
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    Alcotest.(check bool) ("json contains " ^ needle) true (go 0)
  in
  has "\"findings\"";
  has "\"poly-compare\"";
  has "\"active\":1"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* The cross-module escape: the race sits in spawner.ml but the write
   is in helper.ml, so only the interprocedural pipeline (lint_paths
   over both files) can see it. *)
let test_cross_module_escape () =
  let summary =
    Driver.lint_paths ~zone:Zone.Core
      [ Filename.concat fixtures_dir "xmod_trigger" ]
  in
  Alcotest.(check int) "exactly one finding" 1 summary.Driver.active;
  let f =
    match summary.Driver.results with
    | [ r ] -> List.hd r.Driver.findings
    | _ -> Alcotest.fail "expected one file with findings"
  in
  Alcotest.(check string) "P001 across modules" "spawn-capture"
    f.A.Finding.rule.Rules.slug;
  Alcotest.(check bool) "finding lands in the spawning module" true
    (contains f.A.Finding.file "spawner.ml");
  Alcotest.(check bool) "message names the helper chain" true
    (contains f.A.Finding.msg "Helper.bump");
  let clean =
    Driver.lint_paths ~zone:Zone.Core
      [ Filename.concat fixtures_dir "xmod_allowed" ]
  in
  Alcotest.(check int) "mutex-guarded helper is clean" 0 clean.Driver.active

(* SARIF: schema version, a result bound to its rule, and a 1-based
   physical location. *)
let test_sarif_shape () =
  let summary =
    Driver.lint_paths ~zone:Zone.Core [ fixture_path "spawn-capture" "trigger" ]
  in
  let sarif = A.Sarif.emit summary in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sarif contains " ^ needle) true
        (contains sarif needle))
    [
      "\"version\":\"2.1.0\"";
      "\"name\":\"leopard-lint\"";
      "\"ruleId\":\"P001\"";
      "\"physicalLocation\"";
      "\"startLine\":6";
      "\"id\":\"S001\"";
    ]

(* The summary cache: a cold run analyzes everything; an untouched
   re-run analyzes nothing; editing one module re-analyzes exactly that
   module plus its reverse dependencies, never the independent one. *)
let test_cache_invalidation () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "leopard_lint_cache_test"
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  let write name src =
    let oc = open_out (Filename.concat dir name) in
    output_string oc src;
    close_out oc
  in
  write "a.ml" "let bump tbl k = Hashtbl.replace tbl k 1\n";
  write "b.ml"
    "let run () =\n\
    \  let tbl = Hashtbl.create 16 in\n\
    \  let d = Domain.spawn (fun () -> A.bump tbl \"x\") in\n\
    \  Domain.join d\n";
  write "c.ml" "let pure x = x + 1\n";
  let cache_file = Filename.concat dir "cache.bin" in
  let mods = Alcotest.(check (list string)) in
  let s1 = Driver.lint_paths ~zone:Zone.Core ~cache_file [ dir ] in
  mods "cold run analyzes all" [ "A"; "B"; "C" ] s1.Driver.reanalyzed;
  mods "cold run caches none" [] s1.Driver.cached;
  Alcotest.(check int) "race found through the helper" 1 s1.Driver.active;
  let s2 = Driver.lint_paths ~zone:Zone.Core ~cache_file [ dir ] in
  mods "warm run analyzes none" [] s2.Driver.reanalyzed;
  mods "warm run serves all from cache" [ "A"; "B"; "C" ] s2.Driver.cached;
  Alcotest.(check int) "cached findings identical" s1.Driver.active
    s2.Driver.active;
  write "a.ml" "let bump tbl k = Hashtbl.replace tbl k 2\n";
  let s3 = Driver.lint_paths ~zone:Zone.Core ~cache_file [ dir ] in
  mods "edit re-analyzes the module and its reverse deps" [ "A"; "B" ]
    s3.Driver.reanalyzed;
  mods "the independent module stays cached" [ "C" ] s3.Driver.cached;
  Alcotest.(check int) "finding persists across the edit" 1 s3.Driver.active

(* ---------------------------------------------------------------- *)
(* Executable exit codes.  The test binary runs from test/ inside the
   build tree, so the linter sits one directory up. *)

let exe = Filename.concat ".." (Filename.concat "bin" "leopard_lint.exe")

let run args = Sys.command (Filename.quote_command exe args)

let test_exit_codes () =
  if not (Sys.file_exists exe) then
    Alcotest.skip ()
  else begin
    Alcotest.(check int) "clean file exits 0" 0
      (run [ "-q"; "--zone"; "core"; fixture_path "poly-compare" "allowed" ]);
    Alcotest.(check int) "findings exit 1" 1
      (run [ "-q"; "--zone"; "core"; fixture_path "poly-compare" "trigger" ]);
    Alcotest.(check int) "missing path exits 2" 2
      (run [ "-q"; "no-such-file.ml" ]);
    Alcotest.(check int) "--list-rules exits 0" 0 (run [ "--list-rules" ])
  end

(* Every trigger fixture individually fails the executable — the same
   property `dune build @lint` relies on to block the build. *)
let test_exit_codes_all_triggers () =
  if not (Sys.file_exists exe) then Alcotest.skip ()
  else begin
    List.iter
      (fun (slug, zone) ->
        Alcotest.(check int)
          (slug ^ " trigger fails the gate")
          1
          (run
             [ "-q"; "--zone"; Zone.to_string zone; fixture_path slug "trigger" ]))
      cases;
    List.iter
      (fun (slug, zone) ->
        Alcotest.(check int)
          (slug ^ " trigger fails the gate")
          1
          (run
             [ "-q"; "--zone"; Zone.to_string zone; fixture_path slug "trigger" ]))
      p_cases;
    Alcotest.(check int) "cross-module trigger fails the gate" 1
      (run
         [
           "-q"; "--zone"; "core"; Filename.concat fixtures_dir "xmod_trigger";
         ]);
    List.iter
      (fun (stem, _slug, zone) ->
        Alcotest.(check int)
          (stem ^ " trigger fails the gate")
          1
          (run
             [
               "-q";
               "--zone";
               Zone.to_string zone;
               repl_fixture_path stem "trigger";
             ]))
      (repl_cases @ shard_cases @ compose_cases @ campaign_cases)
  end

let test_repo_is_clean () =
  (* The build tree mirrors the source tree, so when the linted roots
     are visible from test/ we can re-run the whole-repo gate. *)
  let roots =
    List.filter
      (fun d -> Sys.file_exists (Filename.concat ".." d))
      [ "lib"; "bin"; "bench"; "examples" ]
  in
  if roots = [] || not (Sys.file_exists exe) then Alcotest.skip ()
  else
    Alcotest.(check int)
      "zero findings over the repo" 0
      (run ("-q" :: List.map (Filename.concat "..") roots))

let suite =
  let fixture_tests =
    List.concat_map
      (fun ((slug, _) as case) ->
        [
          Alcotest.test_case (slug ^ " trigger") `Quick (test_trigger case);
          Alcotest.test_case (slug ^ " allowed") `Quick (test_allowed case);
        ])
      cases
    @ List.concat_map
        (fun ((slug, _) as case) ->
          [
            Alcotest.test_case (slug ^ " trigger") `Quick (test_trigger case);
            Alcotest.test_case (slug ^ " allowed") `Quick
              (test_clean_allowed case);
          ])
        p_cases
    @ List.concat_map
        (fun ((stem, _, _) as case) ->
          [
            Alcotest.test_case (stem ^ " trigger") `Quick
              (test_repl_trigger case);
            Alcotest.test_case (stem ^ " allowed") `Quick
              (test_repl_allowed case);
          ])
        (repl_cases @ shard_cases @ compose_cases @ campaign_cases)
  in
  [
    Alcotest.test_case "rule catalogue" `Quick test_catalogue;
    Alcotest.test_case "zone scoping" `Quick test_zone_scoping;
    Alcotest.test_case "replication zone scoping" `Quick test_repl_zone_scoping;
    Alcotest.test_case "shard zone scoping" `Quick test_shard_zone_scoping;
    Alcotest.test_case "compose zone scoping" `Quick test_compose_zone_scoping;
    Alcotest.test_case "campaign zone scoping" `Quick
      test_campaign_zone_scoping;
    Alcotest.test_case "multi-line suppression" `Quick test_multiline_suppression;
    Alcotest.test_case "suppression does not leak" `Quick
      test_suppression_does_not_leak;
    Alcotest.test_case "parse error is a diagnostic" `Quick test_parse_error;
    Alcotest.test_case "json report shape" `Quick test_json_shape;
    Alcotest.test_case "cross-module escape" `Quick test_cross_module_escape;
    Alcotest.test_case "sarif report shape" `Quick test_sarif_shape;
    Alcotest.test_case "cache invalidation" `Quick test_cache_invalidation;
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "every trigger fails the gate" `Quick
      test_exit_codes_all_triggers;
    Alcotest.test_case "whole repo is clean" `Quick test_repo_is_clean;
  ]
  @ fixture_tests
