module Codec = Leopard_trace.Codec
module Trace = Leopard_trace.Trace

let x = Helpers.cell 0
let y = Helpers.cell ~table:2 ~col:3 7

let samples =
  [
    Helpers.read ~txn:1 ~client:2 ~bef:10 ~aft:20 [ (x, 5); (y, -3) ];
    Helpers.read ~locking:true ~txn:1 ~client:2 ~bef:30 ~aft:40 [ (y, 9) ];
    Helpers.write ~txn:1 ~client:2 ~bef:50 ~aft:60 [ (x, 123456) ];
    Helpers.commit ~txn:1 ~client:2 ~bef:70 ~aft:80 ();
    Helpers.abort ~txn:3 ~client:0 ~bef:90 ~aft:100 ();
  ]

let test_roundtrip_each () =
  List.iter
    (fun t ->
      match Codec.of_line (Codec.to_line t) with
      | Ok (Some t') ->
        Alcotest.(check string) "roundtrip" (Trace.to_string t)
          (Trace.to_string t')
      | Ok None -> Alcotest.fail "decoded to nothing"
      | Error e -> Alcotest.failf "decode error: %s" e)
    samples

let test_comments_and_blanks () =
  Alcotest.(check bool) "comment" true (Codec.of_line "# hello" = Ok None);
  Alcotest.(check bool) "blank" true (Codec.of_line "   " = Ok None)

let test_bad_lines () =
  let bad l = Result.is_error (Codec.of_line l) in
  Alcotest.(check bool) "garbage" true (bad "Z 1 2 3 4");
  Alcotest.(check bool) "bad int" true (bad "C x 2 3 4");
  Alcotest.(check bool) "bad item" true (bad "W 1 2 3 4 nonsense");
  Alcotest.(check bool) "inverted interval" true (bad "C 9 8 3 4");
  Alcotest.(check bool) "commit with items" true (bad "C 1 2 3 4 0.0.0=1")

let test_file_roundtrip () =
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save ~path samples;
      match Codec.load ~path with
      | Ok traces ->
        Alcotest.(check int) "count" (List.length samples)
          (List.length traces);
        List.iter2
          (fun a b ->
            Alcotest.(check string) "same" (Trace.to_string a)
              (Trace.to_string b))
          samples traces
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_error_line_number () =
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# header\nC 1 2 3 4\nBROKEN\n";
      close_out oc;
      match Codec.load ~path with
      | Error e ->
        Alcotest.(check bool) "mentions line 3" true
          (let contains hay needle =
             let nl = String.length needle and hl = String.length hay in
             let rec go i =
               i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
             in
             go 0
           in
           contains e "line 3")
      | Ok _ -> Alcotest.fail "expected error")

let test_real_run_roundtrip () =
  let outcome =
    Helpers.run_workload ~clients:6 ~txns:150
      ~spec:(Leopard_workload.Smallbank.spec ())
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation ()
  in
  let traces = Leopard_harness.Run.all_traces_sorted outcome in
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save ~path traces;
      match Codec.load ~path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok loaded ->
        (* verifying the reloaded history gives the same verdicts *)
        let a = Helpers.check Leopard.Il_profile.postgresql_si traces in
        let b = Helpers.check Leopard.Il_profile.postgresql_si loaded in
        Alcotest.(check int) "same traces" a.traces b.traces;
        Alcotest.(check int) "same bugs" a.bugs_total b.bugs_total;
        Alcotest.(check int) "same deps" a.deps_deduced b.deps_deduced)

let test_lenient_skips_bad_lines () =
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# header\nC 1 2 3 4\nBROKEN\nW 5 6 3 4 0.0.0=1\nC x 8 3 4\n";
      close_out oc;
      let traces, skipped = Codec.load_lenient ~path in
      Alcotest.(check int) "decodable traces kept" 2 (List.length traces);
      Alcotest.(check (list int)) "skipped line numbers" [ 3; 5 ]
        (List.map fst skipped);
      List.iter
        (fun (_, diag) ->
          Alcotest.(check bool) "diagnostic non-empty" true (diag <> ""))
        skipped)

let test_lenient_clean_file_equals_strict () =
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save ~path samples;
      let lenient, skipped = Codec.load_lenient ~path in
      Alcotest.(check int) "nothing skipped" 0 (List.length skipped);
      match Codec.load ~path with
      | Error e -> Alcotest.failf "strict load failed: %s" e
      | Ok strict ->
        Alcotest.(check (list string)) "same traces as strict"
          (List.map Trace.to_string strict)
          (List.map Trace.to_string lenient))

let test_lenient_truncated_tail () =
  (* a torn final line (crashed writer) must not cost the prefix *)
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Codec.header ^ "\n");
      List.iter
        (fun t -> output_string oc (Codec.to_line t ^ "\n"))
        samples;
      output_string oc "W 110 120 5 1 0.0";
      close_out oc;
      let traces, skipped = Codec.load_lenient ~path in
      Alcotest.(check int) "prefix intact" (List.length samples)
        (List.length traces);
      Alcotest.(check int) "torn line reported" 1 (List.length skipped))

let gen_trace =
  QCheck.Gen.(
    let cell =
      map3
        (fun t r c -> Leopard_trace.Cell.make ~table:t ~row:r ~col:c)
        (int_bound 9) (int_bound 10_000) (int_bound 5)
    in
    let item = map2 (fun c v -> (c, v - 500)) cell (int_bound 1_000) in
    let interval = map2 (fun b d -> (b, b + 1 + d)) (int_bound 100_000) (int_bound 1_000) in
    let ids = pair (int_bound 10_000) (int_bound 64) in
    oneof
      [
        map3
          (fun (b, a) (txn, client) items ->
            Helpers.read ~txn ~client ~bef:b ~aft:a items)
          interval ids (list_size (1 -- 5) item);
        map3
          (fun (b, a) (txn, client) items ->
            Helpers.write ~txn ~client ~bef:b ~aft:a items)
          interval ids (list_size (1 -- 5) item);
        map2
          (fun (b, a) (txn, client) ->
            Helpers.commit ~txn ~client ~bef:b ~aft:a ())
          interval ids;
        map2
          (fun (b, a) (txn, client) ->
            Helpers.abort ~txn ~client ~bef:b ~aft:a ())
          interval ids;
      ])

let prop_roundtrip =
  QCheck.Test.make ~name:"codec roundtrips arbitrary traces" ~count:500
    (QCheck.make gen_trace ~print:Trace.to_string)
    (fun t ->
      match Codec.of_line (Codec.to_line t) with
      | Ok (Some t') -> Trace.to_string t = Trace.to_string t'
      | Ok None | Error _ -> false)

(* Epoch markers: one file spans server restarts. *)

let marks =
  [
    { Codec.at = 15; epoch = 1; replayed = 3; damaged = 0 };
    { Codec.at = 65; epoch = 2; replayed = 7; damaged = 2 };
  ]

let test_epoch_line_roundtrip () =
  List.iter
    (fun m ->
      let line = Codec.epoch_to_line m in
      (match Codec.entry_of_line line with
      | Ok (Some (Codec.Epoch m')) ->
        Alcotest.(check bool) "epoch mark roundtrips" true (m = m')
      | _ -> Alcotest.failf "bad epoch decode: %s" line);
      (* plain of_line treats markers like comments: present but not a
         trace, so pre-epoch readers keep working *)
      Alcotest.(check bool)
        "of_line skips markers" true
        (Codec.of_line line = Ok None))
    marks

let test_malformed_epoch_lines_rejected () =
  let bad l = Result.is_error (Codec.entry_of_line l) in
  Alcotest.(check bool) "missing fields" true (bad "E 1 2");
  Alcotest.(check bool) "trailing junk" true (bad "E 1 2 3 4 5");
  Alcotest.(check bool) "bad int" true (bad "E one 2 3 4");
  Alcotest.(check bool) "epoch zero" true (bad "E 10 0 3 0");
  Alcotest.(check bool) "negative damage" true (bad "E 10 1 3 -1");
  Alcotest.(check bool)
    "strict of_line also rejects" true
    (Result.is_error (Codec.of_line "E 1 2"))

(* Ambiguous-commit markers: wire-mode COMMITs whose outcome the client
   never learned.  They ride in the same file, sorted chronologically,
   and readers unaware of them skip them without error. *)

let amb_marks =
  [
    { Codec.at = 25; txn = 4; client = 1 };
    { Codec.at = 75; txn = 9; client = 0 };
  ]

let test_ambiguous_line_roundtrip () =
  List.iter
    (fun m ->
      let line = Codec.ambiguous_to_line m in
      (match Codec.entry_of_line line with
      | Ok (Some (Codec.Ambiguous m')) ->
        Alcotest.(check bool) "ambiguous mark roundtrips" true (m = m')
      | _ -> Alcotest.failf "bad ambiguous decode: %s" line);
      Alcotest.(check bool)
        "of_line skips U markers" true
        (Codec.of_line line = Ok None))
    amb_marks

let test_malformed_ambiguous_lines_rejected () =
  let bad l = Result.is_error (Codec.entry_of_line l) in
  Alcotest.(check bool) "missing fields" true (bad "U 1 2");
  Alcotest.(check bool) "trailing junk" true (bad "U 1 2 3 4");
  Alcotest.(check bool) "bad int" true (bad "U one 2 3");
  Alcotest.(check bool) "negative txn" true (bad "U 10 -1 0")

(* Leader markers: failover boundaries with the lost commit suffix. *)

let leader_marks =
  [
    { Codec.at = 45; epoch = 2; primary = 0; lost = [ 7; 8 ] };
    { Codec.at = 95; epoch = 3; primary = 1; lost = [] };
  ]

let test_leader_line_roundtrip () =
  List.iter
    (fun m ->
      let line = Codec.leader_to_line m in
      (match Codec.entry_of_line line with
      | Ok (Some (Codec.Leader m')) ->
        Alcotest.(check bool) "leader mark roundtrips" true (m = m')
      | _ -> Alcotest.failf "bad leader decode: %s" line);
      Alcotest.(check bool)
        "of_line skips L markers" true
        (Codec.of_line line = Ok None))
    leader_marks

let test_malformed_leader_lines_rejected () =
  let bad l = Result.is_error (Codec.entry_of_line l) in
  Alcotest.(check bool) "missing fields" true (bad "L 1 2 3");
  Alcotest.(check bool) "trailing junk" true (bad "L 1 2 3 - x");
  Alcotest.(check bool) "bad int" true (bad "L one 2 3 -");
  Alcotest.(check bool) "epoch zero" true (bad "L 10 0 1 -");
  Alcotest.(check bool) "negative lost id" true (bad "L 10 2 1 4,-5");
  Alcotest.(check bool) "bad lost csv" true (bad "L 10 2 1 4,,5")

(* Shard topology and 2PC round markers: the sixth fault plane's
   footprint in a trace file. *)

let shard_marks = [ { Codec.at = 0; shards = 3 } ]

let prepare_marks =
  [
    { Codec.at = 30; txn = 5; shards = [ 0; 2 ]; disposition = Codec.Committed };
    { Codec.at = 60; txn = 7; shards = [ 1; 2 ]; disposition = Codec.Aborted };
    {
      Codec.at = 90;
      txn = 11;
      shards = [ 0; 1; 2 ];
      disposition = Codec.Unknown;
    };
  ]

let test_shard_line_roundtrip () =
  List.iter
    (fun m ->
      let line = Codec.shard_to_line m in
      (match Codec.entry_of_line line with
      | Ok (Some (Codec.Shard m')) ->
        Alcotest.(check bool) "shard mark roundtrips" true (m = m')
      | _ -> Alcotest.failf "bad shard decode: %s" line);
      Alcotest.(check bool)
        "of_line skips S markers" true
        (Codec.of_line line = Ok None))
    shard_marks

let test_malformed_shard_lines_rejected () =
  let bad l = Result.is_error (Codec.entry_of_line l) in
  Alcotest.(check bool) "missing fields" true (bad "S 0");
  Alcotest.(check bool) "trailing junk" true (bad "S 0 2 3");
  Alcotest.(check bool) "bad int" true (bad "S zero 2");
  Alcotest.(check bool) "negative instant" true (bad "S -1 2");
  Alcotest.(check bool) "one shard is not a group" true (bad "S 0 1")

let test_prepare_line_roundtrip () =
  List.iter
    (fun m ->
      let line = Codec.prepare_to_line m in
      (match Codec.entry_of_line line with
      | Ok (Some (Codec.Prepare m')) ->
        Alcotest.(check bool) "prepare mark roundtrips" true (m = m')
      | _ -> Alcotest.failf "bad prepare decode: %s" line);
      Alcotest.(check bool)
        "of_line skips P markers" true
        (Codec.of_line line = Ok None))
    prepare_marks

let test_malformed_prepare_lines_rejected () =
  let bad l = Result.is_error (Codec.entry_of_line l) in
  Alcotest.(check bool) "missing fields" true (bad "P 1 2 0,1");
  Alcotest.(check bool) "trailing junk" true (bad "P 1 2 0,1 c x");
  Alcotest.(check bool) "bad disposition" true (bad "P 1 2 0,1 z");
  Alcotest.(check bool) "bad int" true (bad "P one 2 0,1 c");
  Alcotest.(check bool) "empty shard csv" true (bad "P 1 2  c");
  Alcotest.(check bool) "bad shard csv" true (bad "P 1 2 0,,1 c");
  Alcotest.(check bool) "negative shard" true (bad "P 1 2 0,-1 c")

let test_sharded_file_roundtrip () =
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save_ext ~path ~ambiguous:amb_marks ~shards:shard_marks
        ~prepares:prepare_marks ~epochs:marks samples;
      (match Codec.load_all ~path with
      | Ok c ->
        Alcotest.(check int) "traces survive" (List.length samples)
          (List.length c.Codec.c_traces);
        Alcotest.(check bool) "epochs survive" true (c.Codec.c_epochs = marks);
        Alcotest.(check bool) "ambiguous marks survive" true
          (c.Codec.c_ambiguous = amb_marks);
        Alcotest.(check bool) "shard marks survive" true
          (c.Codec.c_shards = shard_marks);
        Alcotest.(check bool) "prepare marks survive in order" true
          (c.Codec.c_prepares = prepare_marks)
      | Error e -> Alcotest.failf "load_all failed: %s" e);
      (* the pre-shard readers must skip S and P lines, not choke *)
      (match Codec.load_full ~path with
      | Ok (traces, epochs, ambiguous, _leaders) ->
        Alcotest.(check int) "full reader skips S/P lines"
          (List.length samples) (List.length traces);
        Alcotest.(check bool) "full reader keeps epochs" true (epochs = marks);
        Alcotest.(check bool) "full reader keeps ambiguous" true
          (ambiguous = amb_marks)
      | Error e -> Alcotest.failf "load_full failed: %s" e);
      let c, skipped = Codec.load_lenient_all ~path in
      Alcotest.(check bool) "lenient all sees shard marks" true
        (c.Codec.c_shards = shard_marks);
      Alcotest.(check bool) "lenient all sees prepare marks" true
        (c.Codec.c_prepares = prepare_marks);
      Alcotest.(check int) "nothing skipped" 0 (List.length skipped))

let test_full_file_roundtrip () =
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save_ext ~path ~ambiguous:amb_marks ~leaders:leader_marks
        ~epochs:marks samples;
      (match Codec.load_full ~path with
      | Ok (traces, epochs, ambiguous, leaders) ->
        Alcotest.(check int) "traces survive" (List.length samples)
          (List.length traces);
        Alcotest.(check bool) "epochs survive" true (epochs = marks);
        Alcotest.(check bool) "ambiguous marks survive in order" true
          (ambiguous = amb_marks);
        Alcotest.(check bool) "leader marks survive in order" true
          (leaders = leader_marks)
      | Error e -> Alcotest.failf "load_full failed: %s" e);
      (* the _ext reader predates U and L markers: it must skip them *)
      (match Codec.load_ext ~path with
      | Ok (traces, epochs) ->
        Alcotest.(check int) "ext reader skips U/L lines"
          (List.length samples) (List.length traces);
        Alcotest.(check bool) "ext reader keeps epochs" true (epochs = marks)
      | Error e -> Alcotest.failf "load_ext failed: %s" e);
      let _, epochs, ambiguous, leaders, skipped =
        Codec.load_lenient_full ~path
      in
      Alcotest.(check bool) "lenient full sees epochs" true (epochs = marks);
      Alcotest.(check bool) "lenient full sees ambiguous" true
        (ambiguous = amb_marks);
      Alcotest.(check bool) "lenient full sees leaders" true
        (leaders = leader_marks);
      Alcotest.(check int) "nothing skipped" 0 (List.length skipped))

let test_ext_file_roundtrip () =
  let path = Filename.temp_file "leopard" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save_ext ~path ~epochs:marks samples;
      (* markers are merged chronologically: each E line precedes the
         first trace at-or-after its crash instant *)
      (match Codec.load_ext ~path with
      | Ok (traces, epochs) ->
        Alcotest.(check int) "traces survive" (List.length samples)
          (List.length traces);
        Alcotest.(check bool) "epochs survive in order" true (epochs = marks)
      | Error e -> Alcotest.failf "load_ext failed: %s" e);
      (* plain load of the same file sees the traces and no error *)
      (match Codec.load ~path with
      | Ok traces ->
        Alcotest.(check int) "plain load ignores markers"
          (List.length samples) (List.length traces)
      | Error e -> Alcotest.failf "plain load failed: %s" e);
      let _, epochs, skipped = Codec.load_lenient_ext ~path in
      Alcotest.(check bool) "lenient sees epochs too" true (epochs = marks);
      Alcotest.(check int) "nothing skipped" 0 (List.length skipped))

let suite =
  [
    Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_each;
    Alcotest.test_case "epoch marker roundtrip" `Quick
      test_epoch_line_roundtrip;
    Alcotest.test_case "malformed epoch markers rejected" `Quick
      test_malformed_epoch_lines_rejected;
    Alcotest.test_case "multi-epoch file roundtrip" `Quick
      test_ext_file_roundtrip;
    Alcotest.test_case "ambiguous marker roundtrip" `Quick
      test_ambiguous_line_roundtrip;
    Alcotest.test_case "malformed ambiguous markers rejected" `Quick
      test_malformed_ambiguous_lines_rejected;
    Alcotest.test_case "leader marker roundtrip" `Quick
      test_leader_line_roundtrip;
    Alcotest.test_case "malformed leader markers rejected" `Quick
      test_malformed_leader_lines_rejected;
    Alcotest.test_case "full file roundtrip (U/L markers)" `Quick
      test_full_file_roundtrip;
    Alcotest.test_case "shard marker roundtrip" `Quick
      test_shard_line_roundtrip;
    Alcotest.test_case "malformed shard markers rejected" `Quick
      test_malformed_shard_lines_rejected;
    Alcotest.test_case "prepare marker roundtrip" `Quick
      test_prepare_line_roundtrip;
    Alcotest.test_case "malformed prepare markers rejected" `Quick
      test_malformed_prepare_lines_rejected;
    Alcotest.test_case "sharded file roundtrip (S/P markers)" `Quick
      test_sharded_file_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "bad lines rejected" `Quick test_bad_lines;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "error carries line number" `Quick
      test_error_line_number;
    Alcotest.test_case "real run roundtrip + same verdicts" `Quick
      test_real_run_roundtrip;
    Alcotest.test_case "lenient load skips bad lines" `Quick
      test_lenient_skips_bad_lines;
    Alcotest.test_case "lenient load equals strict on clean files" `Quick
      test_lenient_clean_file_equals_strict;
    Alcotest.test_case "lenient load survives truncated tail" `Quick
      test_lenient_truncated_tail;
    Helpers.qtest prop_roundtrip;
  ]
