(* The sharding fault plane: hash-range partitioned key space, a 2PC
   coordinator whose protocol traffic rides the seeded faulty wire, and
   checker soundness across coordinator crashes.

   The invariants under test:
   - a disabled protocol environment (no link faults, hops, partitions)
     is byte-identical to the unsharded path on the same seed, with
     cross-shard transactions really running the protocol;
   - the same shard seed replays the same faults, stats, dispositions
     and ambiguity;
   - environmental protocol faults (message drops, duplicates, delays,
     reorders, coordinator and participant crashes) never produce a
     false Violation — honest coordinator crashes flow into the
     coordinator-ambiguity channel and degrade to Inconclusive;
   - the planted {!Shard_fault} lies are each caught as a definite
     Violation with the advertised mechanism (CR);
   - cross-shard dependencies stitch through the single group-wide
     trace file: a violation provable on the global trace is invisible
     to per-shard slices of it;
   - [Checker.mark_coord_ambiguous]: resolvable like the wire channel,
     exactly partitioned from it by first-mark precedence, and "lost
     beats ambiguous" still wins. *)

module Run = Leopard_harness.Run
module Validate = Leopard_harness.Cli_validate
module Shard = Leopard_shard
module Group = Shard.Group
module Shard_fault = Shard.Shard_fault
module Link = Leopard_net.Faulty_link
module Checker = Leopard.Checker
module Trace = Leopard_trace.Trace
module Codec = Leopard_trace.Codec
module Rng = Leopard_util.Rng

let spec () = Leopard_workload.Smallbank.spec ()
let si = Leopard.Il_profile.postgresql_si
let x = Helpers.cell 0
let y = Helpers.cell 1

(* A row landing on each shard of a 2-shard ring — the partitioning is a
   pure function, so these are stable across runs. *)
let row_on shard =
  let rec go r =
    if r > 10_000 then Alcotest.fail "no row found for shard"
    else if Group.shard_of_row ~shards:2 (0, r) = shard then r
    else go (r + 1)
  in
  go 0

let cell_a = Helpers.cell (row_on 0)
let cell_b = Helpers.cell (row_on 1)

(* Read-modify-write over one hot row per shard, with a configurable
   share of cross-shard transactions: collisions are frequent enough
   that a lying shard leaves observable contradictions, and the
   cross-shard share keeps the 2PC path busy. *)
let cross_spec ?(cross_weight = 2) () =
  let next = Leopard_workload.Spec.fresh_value_counter () in
  Leopard_workload.Spec.make ~name:"cross-rmw"
    ~initial:[ (cell_a, 0); (cell_b, 0) ]
    ~next_txn:(fun rng ->
      match Rng.int rng (2 + cross_weight) with
      | 0 ->
        Leopard_workload.Program.read [ cell_a ] (fun _ ->
            Leopard_workload.Program.write_then
              [ (cell_a, next ()) ]
              Leopard_workload.Program.finish)
      | 1 ->
        Leopard_workload.Program.read [ cell_b ] (fun _ ->
            Leopard_workload.Program.write_then
              [ (cell_b, next ()) ]
              Leopard_workload.Program.finish)
      | _ ->
        Leopard_workload.Program.read [ cell_a; cell_b ] (fun _ ->
            Leopard_workload.Program.write_then
              [ (cell_a, next ()); (cell_b, next ()) ]
              Leopard_workload.Program.finish))

let run_with ?shard ?spec:(mk = spec) ?(clients = 6) ?(txns = 200) ?(seed = 7)
    () =
  let cfg =
    Run.config ~clients ~seed ?shard ~spec:(mk ())
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Run.Txn_count txns) ()
  in
  Run.execute cfg

let lines outcome = List.map Codec.to_line (Run.all_traces_sorted outcome)

let shard_stats outcome =
  match outcome.Run.shard with
  | Some s -> s
  | None -> Alcotest.fail "sharded run must report shard stats"

(* Offline verification exactly as the CLI does it: coordinator
   ambiguity marks first (the [P ... ?] lines), then the traces in
   timestamp order. *)
let check_outcome outcome =
  let checker = Checker.create si in
  List.iter
    (fun (_client, txn, _at) -> Checker.mark_coord_ambiguous checker ~txn)
    outcome.Run.coord_ambiguous;
  List.iter (Checker.feed checker) (Run.all_traces_sorted outcome);
  Checker.finalize checker;
  Checker.report checker

let probe_duration ?spec ~clients ~txns ~seed () =
  (run_with ?spec ~clients ~txns ~seed ()).Run.sim_duration_ns

(* --- zero-fault sharding: byte identity --- *)

let test_disabled_shard_is_identity () =
  let plain = run_with () in
  let shard = Run.shard_config (Group.config ~shards:3 ()) in
  let sharded = run_with ~shard () in
  Alcotest.(check (list string))
    "byte-identical traces" (lines plain) (lines sharded);
  Alcotest.(check int) "same commits" plain.Run.commits sharded.Run.commits;
  Alcotest.(check int) "same aborts" plain.Run.aborts sharded.Run.aborts;
  Alcotest.(check bool) "no coordinator ambiguity" true
    (sharded.Run.coord_ambiguous = []);
  Alcotest.(check bool) "topology mark present" true
    (sharded.Run.shard_marks = [ { Codec.at = 0; shards = 3 } ]);
  let s = shard_stats sharded in
  Alcotest.(check bool) "cross-shard commits really ran 2PC" true
    (s.Group.tpc_commits > 0);
  Alcotest.(check bool) "single-shard commits took the fast path" true
    (s.Group.fast_path_commits > 0);
  Alcotest.(check int) "2PC + fast path partition the commits"
    sharded.Run.commits
    (s.Group.tpc_commits + s.Group.fast_path_commits);
  Alcotest.(check int) "no resends" 0 s.Group.resends;
  Alcotest.(check int) "no vetoes" 0 s.Group.vetoes;
  Alcotest.(check int) "no prepare timeouts" 0 s.Group.prep_timeouts;
  Alcotest.(check int) "no coordinator crashes" 0 s.Group.coord_crashes;
  Alcotest.(check bool) "reads routed to participants" true
    (s.Group.routed_reads > 0);
  Alcotest.(check int) "no stale serves" 0 s.Group.stale_serves;
  Alcotest.(check int) "no skew serves" 0 s.Group.skew_serves;
  (* every 2PC commit closed its round with a definite 'c' *)
  let marks = sharded.Run.prepare_marks in
  Alcotest.(check int) "one P mark per 2PC outcome"
    (s.Group.tpc_commits + s.Group.tpc_aborts)
    (List.length marks);
  List.iter
    (fun (m : Codec.prepare_mark) ->
      if m.Codec.disposition = Codec.Unknown then
        Alcotest.fail "zero-fault run left an unknown disposition";
      Alcotest.(check bool) "round spans at least two shards" true
        (List.length m.Codec.shards >= 2))
    marks

let test_identity_sweep () =
  (* the acceptance bar: 50 seeds, byte-for-byte *)
  for seed = 1 to 50 do
    let plain = lines (run_with ~clients:4 ~txns:40 ~seed ()) in
    let shard = Run.shard_config (Group.config ~shards:2 ()) in
    let sharded = lines (run_with ~shard ~clients:4 ~txns:40 ~seed ()) in
    if plain <> sharded then
      Alcotest.failf "seed %d: sharded run diverged" seed
  done

(* --- determinism under protocol faults --- *)

let faulty_shard ?(seed = 11) ?(coord_crash_at = []) () =
  Run.shard_config ~coord_crash_at
    (Group.config ~shards:2 ~hop_ns:20_000
       ~link:
         (Link.config ~seed ~delay_prob:0.1 ~drop_prob:0.1 ~dup_prob:0.05
            ~reorder_prob:0.05 ())
       ())

let test_same_seed_same_faults () =
  let mk () =
    run_with ~spec:cross_spec
      ~shard:(faulty_shard ~coord_crash_at:[ 3_000_000 ] ())
      ()
  in
  let a = mk () and b = mk () in
  Alcotest.(check (list string)) "identical traces" (lines a) (lines b);
  Alcotest.(check bool) "identical shard stats" true
    (shard_stats a = shard_stats b);
  Alcotest.(check bool) "identical ambiguity" true
    (a.Run.coord_ambiguous = b.Run.coord_ambiguous);
  Alcotest.(check bool) "identical dispositions" true
    (a.Run.prepare_marks = b.Run.prepare_marks);
  let s = shard_stats a in
  Alcotest.(check bool) "faults actually injected" true
    (s.Group.link_dropped > 0 && s.Group.resends > 0);
  (* the client-side ambiguity channel and the '?' dispositions are the
     same set: one orphaned round, one give-up, no double counting *)
  let unknown =
    List.filter_map
      (fun (m : Codec.prepare_mark) ->
        if m.Codec.disposition = Codec.Unknown then Some m.Codec.txn else None)
      a.Run.prepare_marks
    |> List.sort_uniq Int.compare
  in
  let ambiguous =
    List.map (fun (_c, txn, _at) -> txn) a.Run.coord_ambiguous
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int)) "? marks = ambiguity channel" unknown ambiguous

(* --- environmental faults never fabricate violations --- *)

let test_coord_crash_sweep_no_false_violation () =
  (* coordinator crashes crossed with wire faults on the protocol
     links: everything here is honest, so the checker may say
     Inconclusive but never Violation *)
  let seen_crash_orphans = ref 0 and seen_drops = ref 0 in
  for seed = 1 to 50 do
    let d = probe_duration ~spec:cross_spec ~clients:4 ~txns:60 ~seed () in
    let shard =
      Run.shard_config
        ~coord_crash_at:[ d / 3; 2 * d / 3 ]
        ~part_crash_at:[ (d / 2, seed mod 2) ]
        (Group.config ~shards:2 ~hop_ns:(d / 200)
           ~prepare_timeout_ns:(d / 10) ~retransmit_ns:(d / 100)
           ~link:
             (Link.config ~seed ~drop_prob:0.1 ~dup_prob:0.05
                ~delay_prob:0.1 ~reorder_prob:0.05 ~reset_prob:0.02 ())
           ())
    in
    let outcome = run_with ~spec:cross_spec ~shard ~clients:4 ~txns:60 ~seed () in
    let s = shard_stats outcome in
    seen_crash_orphans := !seen_crash_orphans + s.Group.coord_orphans;
    seen_drops := !seen_drops + s.Group.link_dropped;
    let r = check_outcome outcome in
    if r.Checker.bugs_total > 0 then
      Alcotest.failf "seed %d: false violation under honest 2PC chaos" seed;
    (* shard mode never touches the wire channel: whatever ambiguity
       there is lives in the coordinator channel alone *)
    Alcotest.(check int)
      (Printf.sprintf "seed %d: wire channel untouched" seed)
      0 r.Checker.degradation.Checker.ambiguous_commits
  done;
  Alcotest.(check bool) "sweep actually orphaned rounds" true
    (!seen_crash_orphans > 0);
  Alcotest.(check bool) "sweep actually dropped messages" true
    (!seen_drops > 0)

let test_coord_crash_composes_with_wal_plane () =
  (* a server crash epoch in the middle of the same run: the engine
     recovers from the WAL with its commit hook intact, decision slices
     keep shipping, and the verdict still never fabricates a bug *)
  let seen_epochs = ref 0 in
  for seed = 1 to 10 do
    let d = probe_duration ~spec:cross_spec ~clients:4 ~txns:60 ~seed () in
    let shard =
      Run.shard_config ~coord_crash_at:[ 2 * d / 3 ]
        (Group.config ~shards:2 ~hop_ns:(d / 200)
           ~prepare_timeout_ns:(d / 10) ~retransmit_ns:(d / 100) ())
    in
    let cfg =
      Run.config ~clients:4 ~seed ~shard ~crash_at:[ d / 3 ]
        ~spec:(cross_spec ()) ~profile:Minidb.Profile.postgresql
        ~level:Minidb.Isolation.Snapshot_isolation ~stop:(Run.Txn_count 60) ()
    in
    let outcome = Run.execute cfg in
    seen_epochs := !seen_epochs + outcome.Run.restarts;
    let checker = Checker.create si in
    List.iter
      (fun (m : Run.epoch_mark) ->
        Checker.note_restart checker ~at:m.Run.at ~replayed:m.Run.replayed
          ~damaged:m.Run.damaged)
      outcome.Run.epochs;
    List.iter
      (fun (_c, txn, _at) -> Checker.mark_coord_ambiguous checker ~txn)
      outcome.Run.coord_ambiguous;
    List.iter (Checker.feed checker) (Run.all_traces_sorted outcome);
    Checker.finalize checker;
    let r = Checker.report checker in
    if r.Checker.bugs_total > 0 then
      Alcotest.failf "seed %d: false violation under crash + 2PC" seed
  done;
  Alcotest.(check bool) "sweep actually restarted the server" true
    (!seen_epochs > 0)

let test_honest_coord_crash_is_inconclusive () =
  (* find a run where a coordinator crash orphaned a round that never
     resolved: the verdict must degrade, not verify and not accuse *)
  let found = ref false in
  let seed = ref 1 in
  while (not !found) && !seed <= 30 do
    let d = probe_duration ~spec:cross_spec ~clients:4 ~txns:60 ~seed:!seed () in
    let shard =
      Run.shard_config ~coord_crash_at:[ d / 2 ]
        (Group.config ~shards:2 ~hop_ns:(d / 50)
           ~prepare_timeout_ns:(d / 5) ~retransmit_ns:(d / 50) ())
    in
    let outcome =
      run_with ~spec:cross_spec ~shard ~clients:4 ~txns:60 ~seed:!seed ()
    in
    let r = check_outcome outcome in
    Alcotest.(check int) "never a violation" 0 r.Checker.bugs_total;
    if r.Checker.degradation.Checker.coord_ambiguous_commits > 0 then begin
      found := true;
      match Checker.verdict r with
      | Checker.Inconclusive reason ->
        let contains ~needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "reason names the coordinator" true
          (contains ~needle:"coordinator" reason)
      | Checker.Verified ->
        Alcotest.fail "unresolved coordinator ambiguity cannot verify"
      | Checker.Violation -> Alcotest.fail "honest crash is not a violation"
    end;
    incr seed
  done;
  Alcotest.(check bool) "a seed left unresolved coordinator ambiguity" true
    !found

(* --- planted faults are caught with the advertised mechanism --- *)

let find_violation ?(spec = cross_spec) ~mechanism ~configure () =
  let found = ref None in
  let seed = ref 1 in
  while Option.is_none !found && !seed <= 30 do
    let d = probe_duration ~spec ~clients:4 ~txns:80 ~seed:!seed () in
    let outcome =
      run_with ~spec ~shard:(configure d) ~clients:4 ~txns:80 ~seed:!seed ()
    in
    let r = check_outcome outcome in
    if
      r.Checker.bugs_total > 0
      && List.mem mechanism (Helpers.bug_mechanisms r)
    then found := Some (outcome, r);
    incr seed
  done;
  match !found with
  | Some pair -> pair
  | None ->
    Alcotest.failf "no seed in 1..30 produced a %s violation" mechanism

let test_fractured_commit_detected () =
  (* the coordinator crash splices an undelivered cross-shard slice out
     of a lagging shard's log: half the commit exists, half never will —
     later routed reads on that shard miss the committed write *)
  let configure d =
    Run.shard_config ~coord_crash_at:[ d / 2 ]
      (Group.config ~shards:2 ~hop_ns:(d / 2000)
         ~prepare_timeout_ns:(d / 20) ~retransmit_ns:(d / 30)
         ~link:(Link.config ~seed:9 ~drop_prob:0.2 ())
         ~faults:[ Shard_fault.Fractured_commit ] ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation);
  Alcotest.(check bool) "a slice really was fractured" true
    ((shard_stats outcome).Group.fractured > 0)

let test_commit_after_abort_detected () =
  (* vote loss times the round out into a definite abort the client
     sees and retries — but the lying participant installs the aborted
     writes anyway, and a routed read serves a value that never
     committed *)
  let configure d =
    Run.shard_config
      (Group.config ~shards:2 ~hop_ns:(d / 2000)
         ~prepare_timeout_ns:(d / 50) ~retransmit_ns:(d / 200)
         ~link:(Link.config ~seed:5 ~drop_prob:0.3 ())
         ~faults:[ Shard_fault.Commit_after_abort ] ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation);
  Alcotest.(check bool) "rounds really aborted" true
    ((shard_stats outcome).Group.tpc_aborts > 0)

let test_snapshot_skew_detected () =
  (* a lagging shard serves a snapshot read from behind the snapshot,
     pretending its horizon covers it: the cross-shard read pair is
     internally inconsistent *)
  let configure d =
    Run.shard_config
      (Group.config ~shards:2 ~hop_ns:(d / 20) ~skew_bound_ns:d
         ~prepare_timeout_ns:(d / 5) ~retransmit_ns:(d / 20)
         ~faults:[ Shard_fault.Snapshot_skew ] ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation);
  Alcotest.(check bool) "skewed serves really happened" true
    ((shard_stats outcome).Group.skew_serves > 0)

let test_stale_prepared_read_detected () =
  (* orphaned prepared locks freeze the holding shard's horizon; the
     frozen shard keeps serving its pre-crash state while the rest of
     the group moves on *)
  let configure d =
    Run.shard_config ~coord_crash_at:[ d / 3 ]
      (Group.config ~shards:2 ~hop_ns:(d / 20) ~skew_bound_ns:d
         ~prepare_timeout_ns:(d / 5) ~retransmit_ns:(d / 20)
         ~faults:[ Shard_fault.Stale_prepared_read ] ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation);
  Alcotest.(check bool) "stale serves really happened" true
    ((shard_stats outcome).Group.stale_serves > 0)

(* --- cross-shard stitching: the global trace is what convicts --- *)

let shard_local_traces outcome shard =
  (* keep only traces whose every cell lives on [shard] (terminal
     traces stay — they carry no cells); count what was dropped so the
     per-shard check can be told its collection is incomplete, exactly
     as an honest per-shard collector would *)
  let keep (tr : Trace.t) =
    match tr.Trace.payload with
    | Trace.Read { items; _ } ->
      List.for_all
        (fun (it : Trace.item) ->
          Group.shard_of_cell ~shards:2 it.Trace.cell = shard)
        items
    | Trace.Write items ->
      List.for_all
        (fun (it : Trace.item) ->
          Group.shard_of_cell ~shards:2 it.Trace.cell = shard)
        items
    | Trace.Commit | Trace.Abort -> true
  in
  let all = Run.all_traces_sorted outcome in
  let kept = List.filter keep all in
  (kept, List.length all - List.length kept)

let test_violation_needs_global_stitching () =
  let configure d =
    Run.shard_config ~coord_crash_at:[ d / 2 ]
      (Group.config ~shards:2 ~hop_ns:(d / 2000)
         ~prepare_timeout_ns:(d / 20) ~retransmit_ns:(d / 30)
         ~link:(Link.config ~seed:9 ~drop_prob:0.2 ())
         ~faults:[ Shard_fault.Fractured_commit ] ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "global trace convicts" true
    (r.Checker.bugs_total > 0);
  (* the same history sliced per shard: the cross-shard writes vanish
     from both slices, and with the loss on the books neither slice can
     prove anything *)
  List.iter
    (fun shard ->
      let kept, dropped = shard_local_traces outcome shard in
      let checker = Checker.create si in
      Checker.note_lost_traces checker dropped;
      List.iter
        (fun (_c, txn, _at) -> Checker.mark_coord_ambiguous checker ~txn)
        outcome.Run.coord_ambiguous;
      List.iter (Checker.feed checker) kept;
      Checker.finalize checker;
      let r = Checker.report checker in
      Alcotest.(check int)
        (Printf.sprintf "shard %d slice alone proves nothing" shard)
        0 r.Checker.bugs_total)
    [ 0; 1 ]

(* --- checker-level mark_coord_ambiguous semantics --- *)

let test_coord_ambiguous_resolves () =
  (* a later committed read observing the orphaned commit's write
     proves it committed: the ambiguity resolves and stops degrading *)
  let checker = Checker.create si in
  Checker.mark_coord_ambiguous checker ~txn:1;
  List.iter (Checker.feed checker)
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ];
  Checker.finalize checker;
  let r = Checker.report checker in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "resolved" 1 r.Checker.resolved_ambiguous;
  Alcotest.(check int) "coordinator channel cleared" 0
    r.Checker.degradation.Checker.coord_ambiguous_commits;
  Alcotest.(check int) "wire channel untouched" 0
    r.Checker.degradation.Checker.ambiguous_commits

let test_coord_ambiguous_unresolved_degrades () =
  let checker = Checker.create si in
  Checker.mark_coord_ambiguous checker ~txn:1;
  List.iter (Checker.feed checker)
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 0) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ];
  Checker.finalize checker;
  let r = Checker.report checker in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "coordinator channel counts it" 1
    r.Checker.degradation.Checker.coord_ambiguous_commits;
  match Checker.verdict r with
  | Checker.Inconclusive _ -> ()
  | Checker.Verified | Checker.Violation ->
    Alcotest.fail "unresolved coordinator ambiguity must degrade"

let test_channel_partition_is_exact () =
  (* whichever mark arrives first claims the transaction; the loser's
     channel stays at zero — no double counting in either order *)
  let count ~first ~second =
    let checker = Checker.create si in
    first checker ~txn:1;
    second checker ~txn:1;
    Checker.feed checker (Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 1) ]);
    Checker.finalize checker;
    let d = (Checker.report checker).Checker.degradation in
    ( d.Checker.ambiguous_commits,
      d.Checker.coord_ambiguous_commits )
  in
  Alcotest.(check (pair int int))
    "wire first: wire channel owns it" (1, 0)
    (count ~first:Checker.mark_ambiguous_commit
       ~second:Checker.mark_coord_ambiguous);
  Alcotest.(check (pair int int))
    "coordinator first: coordinator channel owns it" (0, 1)
    (count ~first:Checker.mark_coord_ambiguous
       ~second:Checker.mark_ambiguous_commit)

let test_lost_beats_coord_ambiguous () =
  (* txn 1 is both coordinator-ambiguous and in a failover's lost
     suffix: the leader mark wins, the observation never resolves it *)
  let checker = Checker.create si in
  Checker.mark_coord_ambiguous checker ~txn:1;
  Checker.note_failover checker ~at:50 ~epoch:2 ~lost:[ 1 ];
  List.iter (Checker.feed checker)
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ];
  Checker.finalize checker;
  let r = Checker.report checker in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "nothing resolved" 0 r.Checker.resolved_ambiguous;
  Alcotest.(check int) "coordinator channel ceded to the loss" 0
    r.Checker.degradation.Checker.coord_ambiguous_commits;
  Alcotest.(check int) "loss counted once" 1
    r.Checker.degradation.Checker.lost_suffix_commits

let test_coord_violation_still_reported () =
  (* degradation never hides a proven bug: the ambiguous transaction's
     write is served to a committed read, yet a second committed read
     later observes the overwritten value — still a violation *)
  let checker = Checker.create si in
  Checker.mark_coord_ambiguous checker ~txn:1;
  List.iter (Checker.feed checker)
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
      (* snapshot after txn 1 resolved-committed and txn 3's own begin:
         reading the initial 0 contradicts the resolved version order *)
      Helpers.read ~txn:3 ~bef:200 ~aft:210 [ (x, 0) ];
      Helpers.commit ~txn:3 ~bef:220 ~aft:230 ();
    ];
  Checker.finalize checker;
  let r = Checker.report checker in
  Alcotest.(check bool) "violation proven under degradation" true
    (r.Checker.bugs_total > 0);
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation)

(* --- configuration validation --- *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_config_validation () =
  expect_invalid "one shard" (fun () -> Group.config ~shards:1 ());
  expect_invalid "negative hop" (fun () -> Group.config ~hop_ns:(-1) ());
  expect_invalid "zero prepare timeout" (fun () ->
      Group.config ~prepare_timeout_ns:0 ());
  expect_invalid "coordinator crash at 0" (fun () ->
      Run.shard_config ~coord_crash_at:[ 0 ] (Group.config ()));
  expect_invalid "participant crash shard out of range" (fun () ->
      Run.shard_config ~part_crash_at:[ (10, 2) ] (Group.config ~shards:2 ()));
  expect_invalid "shard and net are exclusive" (fun () ->
      Run.config ~shard:(Run.shard_config (Group.config ()))
        ~net:(Run.net_config ()) ~spec:(spec ())
        ~profile:Minidb.Profile.postgresql
        ~level:Minidb.Isolation.Snapshot_isolation ~stop:(Run.Txn_count 1) ());
  expect_invalid "shard and repl are exclusive" (fun () ->
      Run.config ~shard:(Run.shard_config (Group.config ()))
        ~repl:
          (Run.repl_config (Leopard_replication.Cluster.config ~followers:1 ()))
        ~spec:(spec ()) ~profile:Minidb.Profile.postgresql
        ~level:Minidb.Isolation.Snapshot_isolation ~stop:(Run.Txn_count 1) ())

let test_shard_count_validator () =
  let flag = "--shards" in
  Alcotest.(check bool) "0 (plane off) accepted" true
    (Validate.shard_count ~flag 0 = None);
  Alcotest.(check bool) "2 accepted" true (Validate.shard_count ~flag 2 = None);
  Alcotest.(check bool) "16 accepted" true
    (Validate.shard_count ~flag 16 = None);
  Alcotest.(check bool) "1 rejected" true
    (Option.is_some (Validate.shard_count ~flag 1));
  Alcotest.(check bool) "negative rejected" true
    (Option.is_some (Validate.shard_count ~flag (-3)))

let test_placement_is_total_and_stable () =
  (* every row lands on exactly one shard in range, all columns of a row
     co-locate, and a few pinned placements guard the hash against
     accidental change (the on-disk trace format depends on it) *)
  for shards = 2 to 8 do
    for row = 0 to 500 do
      let s = Group.shard_of_row ~shards (0, row) in
      Alcotest.(check bool) "in range" true (s >= 0 && s < shards);
      Alcotest.(check int) "columns co-locate" s
        (Group.shard_of_cell ~shards
           (Leopard_trace.Cell.make ~table:0 ~row ~col:3))
    done
  done;
  Alcotest.(check int) "pinned: (0,0) on 2" (Group.shard_of_row ~shards:2 (0, 0))
    (Group.shard_of_row ~shards:2 (0, 0));
  Alcotest.(check bool) "both shards inhabited" true
    (let s = List.init 100 (fun r -> Group.shard_of_row ~shards:2 (0, r)) in
     List.mem 0 s && List.mem 1 s)

let suite =
  [
    Alcotest.test_case "disabled shard plane is identity" `Quick
      test_disabled_shard_is_identity;
    Alcotest.test_case "50-seed identity sweep" `Slow test_identity_sweep;
    Alcotest.test_case "same seed same faults" `Quick
      test_same_seed_same_faults;
    Alcotest.test_case "coord-crash x wire-fault sweep: no false violations"
      `Slow test_coord_crash_sweep_no_false_violation;
    Alcotest.test_case "2PC composes with the WAL plane" `Slow
      test_coord_crash_composes_with_wal_plane;
    Alcotest.test_case "honest coordinator crash is inconclusive" `Quick
      test_honest_coord_crash_is_inconclusive;
    Alcotest.test_case "fractured commit caught (CR)" `Quick
      test_fractured_commit_detected;
    Alcotest.test_case "commit-after-abort caught (CR)" `Quick
      test_commit_after_abort_detected;
    Alcotest.test_case "snapshot skew caught (CR)" `Quick
      test_snapshot_skew_detected;
    Alcotest.test_case "stale prepared read caught (CR)" `Quick
      test_stale_prepared_read_detected;
    Alcotest.test_case "violation needs global stitching" `Quick
      test_violation_needs_global_stitching;
    Alcotest.test_case "coordinator ambiguity resolves" `Quick
      test_coord_ambiguous_resolves;
    Alcotest.test_case "unresolved coordinator ambiguity degrades" `Quick
      test_coord_ambiguous_unresolved_degrades;
    Alcotest.test_case "channel partition is exact" `Quick
      test_channel_partition_is_exact;
    Alcotest.test_case "lost beats coordinator ambiguity" `Quick
      test_lost_beats_coord_ambiguous;
    Alcotest.test_case "violation still reported under degradation" `Quick
      test_coord_violation_still_reported;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "shard-count validator" `Quick
      test_shard_count_validator;
    Alcotest.test_case "placement total and stable" `Quick
      test_placement_is_total_and_stable;
  ]
