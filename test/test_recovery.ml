(* Crash–recovery: WAL replay identity, durability faults, and
   cross-restart verification.

   The acceptance bar (ISSUE 2): with all fault probabilities zero a
   crash–restart run recovers byte-identically and the multi-epoch
   verdict is Verified; with each injected durability fault the CR
   verifier reports a Violation at the tuned seed — and never a false
   Verified at any seed. *)

module Run = Leopard_harness.Run
module Checker = Leopard.Checker
module Wal = Minidb.Wal
module Cell = Leopard_trace.Cell

let cell row = Helpers.cell row

let record ?(client = 0) ~txn ~start_ts ~commit_ts writes =
  {
    Wal.txn;
    client;
    start_ts;
    commit_ts;
    writes =
      List.map
        (fun (c, value, cts) ->
          { Wal.cell = c; value; write_op = txn * 10; commit_ts = cts })
        writes;
  }

(* ------------------------------------------------------------------ *)
(* Wal unit behaviour *)

let test_faultfree_crash_returns_all () =
  let wal = Wal.create () in
  let recs =
    List.init 5 (fun i ->
        record ~txn:i ~start_ts:(i * 10) ~commit_ts:((i * 10) + 5)
          [ (cell i, i, (i * 10) + 5) ])
  in
  List.iter (Wal.append wal) recs;
  Alcotest.(check int) "appended" 5 (Wal.appended wal);
  let replay, damage = Wal.crash wal in
  Alcotest.(check bool) "no damage" true (Wal.no_damage damage);
  Alcotest.(check int) "damaged_records is zero" 0
    (Wal.damaged_records damage);
  Alcotest.(check int) "all records replayed" 5 (List.length replay);
  Alcotest.(check (list int))
    "replay preserves append order" [ 0; 1; 2; 3; 4 ]
    (List.map (fun (r : Wal.record) -> r.txn) replay);
  Alcotest.(check int) "durable log survives" 5 (Wal.size wal)

let all_probs_cfg seed =
  Wal.fault_cfg ~seed ~torn_tail_prob:0.5 ~lost_fsync_prob:0.5
    ~reordered_flush_prob:0.5 ~dup_replay_prob:0.5 ()

let crash_with_faults seed =
  let wal = Wal.create ~faults:(all_probs_cfg seed) () in
  for i = 0 to 19 do
    (* two writers alternating over 4 hot cells, so dup-replay always
       has a superseded candidate *)
    Wal.append wal
      (record ~txn:i ~start_ts:(i * 10)
         ~commit_ts:((i * 10) + 5)
         [ (cell (i mod 4), i, (i * 10) + 5) ])
  done;
  Wal.crash wal

let test_same_seed_same_damage () =
  let r1, d1 = crash_with_faults 7 in
  let r2, d2 = crash_with_faults 7 in
  Alcotest.(check bool) "identical damage" true (d1 = d2);
  Alcotest.(check bool) "identical replay lists" true (r1 = r2)

let test_zero_probs_are_noop () =
  (* the all-zero config must behave exactly like no fault model *)
  let wal = Wal.create ~faults:(Wal.fault_cfg ~seed:99 ()) () in
  for i = 0 to 9 do
    Wal.append wal
      (record ~txn:i ~start_ts:i ~commit_ts:(i + 1) [ (cell 0, i, i + 1) ])
  done;
  let replay, damage = Wal.crash wal in
  Alcotest.(check bool) "disabled cfg" true
    (Wal.faults_disabled (Wal.fault_cfg ~seed:99 ()));
  Alcotest.(check bool) "no damage" true (Wal.no_damage damage);
  Alcotest.(check int) "nothing dropped" 10 (List.length replay)

let test_fault_string_round_trip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Wal.fault_to_string f ^ " round-trips")
        true
        (Wal.fault_of_string (Wal.fault_to_string f) = Some f);
      Alcotest.(check string)
        (Wal.fault_to_string f ^ " is a CR fault")
        "CR" (Wal.expected_mechanism f))
    [ Wal.Torn_tail; Wal.Lost_fsync; Wal.Reordered_flush; Wal.Dup_replay ]

(* ------------------------------------------------------------------ *)
(* Recovery replay unit behaviour *)

let test_replay_rebuilds_chains () =
  let records =
    [
      record ~txn:1 ~start_ts:10 ~commit_ts:20 [ (cell 0, 11, 20) ];
      record ~txn:2 ~start_ts:30 ~commit_ts:40
        [ (cell 0, 22, 40); (cell 1, 23, 41) ];
    ]
  in
  let store, summary =
    Minidb.Recovery.replay
      ~initial:[ (cell 0, 0); (cell 1, 0) ]
      ~records
      ~fresh_ts:(fun () -> Alcotest.fail "no duplicates to restamp")
      ~damage:
        {
          Wal.torn_records = 0;
          lost_records = 0;
          reordered_records = 0;
          duplicated_records = 0;
          lost_writes = 0;
        }
  in
  Alcotest.(check int) "records replayed" 2 summary.Minidb.Recovery.replayed;
  Alcotest.(check int) "versions installed" 3
    summary.Minidb.Recovery.versions_installed;
  let chains = Minidb.Version_store.snapshot_committed store in
  Alcotest.(check int) "two cells" 2 (List.length chains);
  let newest c =
    match List.assoc c chains with
    | v :: _ -> v.Minidb.Version_store.value
    | [] -> -1
  in
  Alcotest.(check int) "cell 0 newest is txn 2's write" 22 (newest (cell 0));
  Alcotest.(check int) "cell 1 newest is txn 2's write" 23 (newest (cell 1))

let test_dup_replay_restamps_on_top () =
  let superseded =
    record ~txn:1 ~start_ts:10 ~commit_ts:20 [ (cell 0, 11, 20) ]
  in
  let newer = record ~txn:2 ~start_ts:30 ~commit_ts:40 [ (cell 0, 22, 40) ] in
  let store, summary =
    Minidb.Recovery.replay ~initial:[ (cell 0, 0) ]
      ~records:[ superseded; newer; superseded ]
      ~fresh_ts:(fun () -> 1000)
      ~damage:
        {
          Wal.torn_records = 0;
          lost_records = 0;
          reordered_records = 0;
          duplicated_records = 1;
          lost_writes = 0;
        }
  in
  Alcotest.(check int) "one duplicate" 1 summary.Minidb.Recovery.duplicated;
  match Minidb.Version_store.snapshot_committed store with
  | [ (_, newest :: _) ] ->
    Alcotest.(check int)
      "resurrected value on top" 11 newest.Minidb.Version_store.value;
    Alcotest.(check int)
      "restamped at recovery time" 1000 newest.Minidb.Version_store.commit_ts
  | _ -> Alcotest.fail "expected one cell with versions"

(* ------------------------------------------------------------------ *)
(* End-to-end crash–restart runs *)

let pg = Minidb.Profile.postgresql
let si = Minidb.Isolation.Snapshot_isolation
let il_si = Leopard.Il_profile.postgresql_si

let crash_run ?(spec = Leopard_workload.Smallbank.spec ()) ?(seed = 42)
    ?(crash_at = [ 3_000_000 ]) ?wal_faults () =
  let cfg =
    Run.config ~clients:8 ~seed ~max_retries:3 ~wal:true ~crash_at ?wal_faults
      ~spec ~profile:pg ~level:si ~stop:(Run.Txn_count 800) ()
  in
  Run.execute cfg

(* Offline verification of a (possibly multi-epoch) outcome, exactly as
   the CLI's offline path does it. *)
let verify_outcome (outcome : Run.outcome) =
  let checker = Checker.create il_si in
  List.iter
    (fun (e : Run.epoch_mark) ->
      Checker.note_restart checker ~at:e.at ~replayed:e.replayed
        ~damaged:e.damaged)
    outcome.Run.epochs;
  List.iter (Checker.feed checker) (Run.all_traces_sorted outcome);
  Checker.finalize checker;
  Checker.report checker

let test_byte_identical_recovery () =
  (* Run A: WAL on, never crashes.  Run B: same seed, crash scheduled
     past the natural end of the run, so recovery replays the complete
     log over the same history.  The recovered committed image must be
     byte-identical to A's final committed image. *)
  let run_a = crash_run ~crash_at:[] () in
  let run_b = crash_run ~crash_at:[ 1_000_000_000 ] () in
  Alcotest.(check int) "same commits" run_a.Run.commits run_b.Run.commits;
  Alcotest.(check int) "b restarted once" 1 run_b.Run.restarts;
  Alcotest.(check int) "no damage" 0 run_b.Run.wal_damaged;
  Alcotest.(check bool)
    "recovered committed state is byte-identical" true
    (run_a.Run.snapshot () = run_b.Run.snapshot ());
  match verify_outcome run_b |> Checker.verdict with
  | Checker.Verified -> ()
  | Checker.Violation -> Alcotest.fail "clean recovery reported a violation"
  | Checker.Inconclusive r -> Alcotest.fail ("unexpectedly inconclusive: " ^ r)

let test_clean_midrun_crash_verifies () =
  let outcome = crash_run () in
  Alcotest.(check int) "one restart" 1 outcome.Run.restarts;
  Alcotest.(check bool)
    "crash killed in-flight txns" true
    (outcome.Run.aborts_crash > 0);
  Alcotest.(check bool)
    "clients kept running after restart" true
    (outcome.Run.commits > 400);
  let report = verify_outcome outcome in
  Alcotest.(check int) "no violations" 0 report.Checker.bugs_total;
  (match Checker.verdict report with
  | Checker.Verified -> ()
  | Checker.Violation -> Alcotest.fail "clean crash–restart run failed"
  | Checker.Inconclusive r ->
    Alcotest.fail ("clean restart must stay conclusive: " ^ r));
  Alcotest.(check int) "restart recorded in degradation" 1
    report.Checker.degradation.Checker.restarts

let test_crash_run_is_deterministic () =
  let faults = Wal.fault_cfg ~seed:3 ~lost_fsync_prob:0.7 () in
  let a = crash_run ~wal_faults:faults () in
  let b = crash_run ~wal_faults:faults () in
  Alcotest.(check int) "same damage" a.Run.wal_damaged b.Run.wal_damaged;
  Alcotest.(check bool) "same epoch marks" true (a.Run.epochs = b.Run.epochs);
  Alcotest.(check bool)
    "same traces" true
    (Run.all_traces_sorted a = Run.all_traces_sorted b)

let test_wal_never_perturbs_workload () =
  (* enabling the WAL (and its private fault stream) must not move a
     single workload RNG draw: the traces are byte-identical *)
  let plain =
    Run.config ~clients:8 ~seed:42 ~max_retries:3
      ~spec:(Leopard_workload.Smallbank.spec ())
      ~profile:pg ~level:si ~stop:(Run.Txn_count 800) ()
  in
  let walled =
    Run.config ~clients:8 ~seed:42 ~max_retries:3 ~wal:true
      ~wal_faults:(Wal.fault_cfg ~seed:5 ~torn_tail_prob:1.0 ())
      ~spec:(Leopard_workload.Smallbank.spec ())
      ~profile:pg ~level:si ~stop:(Run.Txn_count 800) ()
  in
  let a = Run.execute plain and b = Run.execute walled in
  Alcotest.(check bool)
    "identical traces with and without wal" true
    (Run.all_traces_sorted a = Run.all_traces_sorted b);
  Alcotest.(check bool) "wal actually logged" true (b.Run.wal_appended > 0)

(* ------------------------------------------------------------------ *)
(* Each durability fault plants a violation the CR verifier finds.
   Workload/seed per fault are tuned so the post-crash read that trips
   over the damage actually occurs before the damaged cell is
   overwritten; the never-false-Verified sweep below is seed-blind. *)

let ycsb = Leopard_workload.Ycsb.spec ~theta:0.8 ()

let fault_cases =
  [
    ( "torn-tail",
      Wal.fault_cfg ~torn_tail_prob:1.0 (),
      Leopard_workload.Smallbank.spec (),
      1 );
    ( "lost-fsync",
      Wal.fault_cfg ~lost_fsync_prob:1.0 ~lost_fsync_window:8 (),
      ycsb,
      2 );
    ( "reordered-flush",
      Wal.fault_cfg ~reordered_flush_prob:1.0 (),
      Leopard_workload.Smallbank.spec (),
      7 );
    ("dup-replay", Wal.fault_cfg ~dup_replay_prob:1.0 (), ycsb, 42);
  ]

let test_fault_found (name, faults, spec, seed) () =
  let outcome = crash_run ~spec ~seed ~wal_faults:faults () in
  Alcotest.(check bool)
    (name ^ " damaged the log")
    true
    (outcome.Run.wal_damaged > 0);
  let report = verify_outcome outcome in
  Alcotest.(check bool)
    (name ^ " violation found")
    true
    (report.Checker.bugs_total > 0);
  Alcotest.(check bool)
    (name ^ " caught by the CR verifier")
    true
    (List.mem "CR" (Helpers.bug_mechanisms report));
  match Checker.verdict report with
  | Checker.Violation -> ()
  | Checker.Verified | Checker.Inconclusive _ ->
    Alcotest.fail (name ^ ": expected a Violation verdict")

let test_never_false_verified () =
  (* seed-blind sweep: whatever the damage pattern, a damaged recovery
     must never yield Verified — at worst Inconclusive *)
  List.iter
    (fun (name, faults, spec, _) ->
      List.iter
        (fun seed ->
          let outcome = crash_run ~spec ~seed ~wal_faults:faults () in
          if outcome.Run.wal_damaged > 0 then
            match verify_outcome outcome |> Checker.verdict with
            | Checker.Verified ->
              Alcotest.fail
                (Printf.sprintf "%s seed %d: damaged recovery verified" name
                   seed)
            | Checker.Violation | Checker.Inconclusive _ -> ())
        [ 1; 2; 3 ])
    fault_cases

(* ------------------------------------------------------------------ *)
(* Checker-level note_restart semantics *)

let simple_history =
  [
    Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (cell 0, 1) ];
    Helpers.commit ~client:0 ~txn:1 ~bef:30 ~aft:40 ();
  ]

let verdict_after_restart ~damaged =
  let checker = Checker.create il_si in
  Checker.note_restart checker ~at:5 ~replayed:3 ~damaged;
  List.iter (Checker.feed checker) simple_history;
  Checker.finalize checker;
  Checker.verdict (Checker.report checker)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_note_restart_semantics () =
  (match verdict_after_restart ~damaged:0 with
  | Checker.Verified -> ()
  | _ -> Alcotest.fail "clean restart must stay Verified");
  (match verdict_after_restart ~damaged:2 with
  | Checker.Inconclusive reason ->
    Alcotest.(check bool)
      "reason names the wal" true (contains_sub reason "wal")
  | Checker.Verified -> Alcotest.fail "damaged recovery verified"
  | Checker.Violation -> Alcotest.fail "no violation exists here");
  match
    let checker = Checker.create il_si in
    Checker.note_restart checker ~at:0 ~replayed:0 ~damaged:(-1)
  with
  | () -> Alcotest.fail "negative damage must be rejected"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "fault-free crash replays everything" `Quick
      test_faultfree_crash_returns_all;
    Alcotest.test_case "same seed, same damage" `Quick
      test_same_seed_same_damage;
    Alcotest.test_case "zero probabilities are a no-op" `Quick
      test_zero_probs_are_noop;
    Alcotest.test_case "fault names round-trip" `Quick
      test_fault_string_round_trip;
    Alcotest.test_case "replay rebuilds committed chains" `Quick
      test_replay_rebuilds_chains;
    Alcotest.test_case "dup replay restamps on top" `Quick
      test_dup_replay_restamps_on_top;
    Alcotest.test_case "recovery is byte-identical" `Quick
      test_byte_identical_recovery;
    Alcotest.test_case "clean mid-run crash verifies" `Quick
      test_clean_midrun_crash_verifies;
    Alcotest.test_case "crash runs are deterministic" `Quick
      test_crash_run_is_deterministic;
    Alcotest.test_case "wal never perturbs the workload" `Quick
      test_wal_never_perturbs_workload;
    Alcotest.test_case "never false-verified under damage" `Slow
      test_never_false_verified;
    Alcotest.test_case "note_restart semantics" `Quick
      test_note_restart_semantics;
  ]
  @ List.map
      (fun case ->
        let name, _, _, _ = case in
        Alcotest.test_case
          (Printf.sprintf "%s fault is found" name)
          `Quick (test_fault_found case))
      fault_cases
