(* The wire layer: seeded network fault injection between client
   sessions and the server, idempotent retries, and ambiguity-aware
   verification.

   The invariants under test:
   - a disabled link is a perfect wire: routing through it is
     byte-identical to the in-process path for the same workload seed;
   - the same fault seed replays the same faults (traces and counters);
   - a commit token is applied exactly once no matter how many times the
     COMMIT request reaches the server (retries, link duplication);
   - the client's retry budget is bounded: total loss ends in [No_reply]
     after exactly [max_tries] attempts, never a hang;
   - a full session queue load-sheds with a definite [Rejected];
   - an ambiguous commit (COMMIT delivered, acknowledgement lost) never
     becomes a false Violation: the checker either resolves it from a
     later committed read or degrades the verdict to Inconclusive. *)

module Net = Leopard_net
module Wire = Net.Wire
module Link = Net.Faulty_link
module Client = Net.Client
module Server = Net.Server
module Run = Leopard_harness.Run
module Online = Leopard_harness.Online
module Validate = Leopard_harness.Cli_validate
module Checker = Leopard.Checker
module Trace = Leopard_trace.Trace
module Codec = Leopard_trace.Codec
module Engine = Minidb.Engine
module Sim = Minidb.Sim
module Rng = Leopard_util.Rng

let spec () = Leopard_workload.Smallbank.spec ()
let x = Helpers.cell 0
let y = Helpers.cell 1

let run_with ?net ?chaos ?(clients = 6) ?(txns = 200) ?(seed = 7) () =
  let cfg =
    Run.config ~clients ~seed ?net ?chaos ~spec:(spec ())
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Run.Txn_count txns) ()
  in
  Run.execute cfg

let lines outcome = List.map Codec.to_line (Run.all_traces_sorted outcome)

let faulty_net ?(seed = 3) () =
  Run.net_config
    ~fault:
      (Link.config ~seed ~delay_prob:0.05 ~drop_prob:0.03 ~dup_prob:0.03
         ~reorder_prob:0.03 ~reset_prob:0.03 ())
    ()

(* --- zero-fault wire: byte identity --- *)

let test_disabled_wire_is_identity () =
  let plain = run_with () in
  let wired = run_with ~net:(Run.net_config ()) () in
  Alcotest.(check (list string)) "byte-identical traces" (lines plain)
    (lines wired);
  Alcotest.(check int) "same commits" plain.Run.commits wired.Run.commits;
  Alcotest.(check int) "same aborts" plain.Run.aborts wired.Run.aborts;
  match wired.Run.net with
  | None -> Alcotest.fail "wired run must report net stats"
  | Some ns ->
    Alcotest.(check int) "no resends" 0 ns.Run.resends;
    Alcotest.(check int) "no give-ups" 0 ns.Run.give_ups;
    Alcotest.(check int) "no rejections" 0 ns.Run.rejected;
    Alcotest.(check int) "no drops" 0 ns.Run.msg_dropped;
    Alcotest.(check bool) "no ambiguous commits" true (ns.Run.ambiguous = [])

(* --- determinism under faults --- *)

let test_same_seed_same_faults () =
  let a = run_with ~net:(faulty_net ()) () in
  let b = run_with ~net:(faulty_net ()) () in
  Alcotest.(check (list string)) "identical traces" (lines a) (lines b);
  match (a.Run.net, b.Run.net) with
  | Some na, Some nb ->
    Alcotest.(check int) "same drops" na.Run.msg_dropped nb.Run.msg_dropped;
    Alcotest.(check int) "same dups" na.Run.msg_duplicated
      nb.Run.msg_duplicated;
    Alcotest.(check int) "same resets" na.Run.resets nb.Run.resets;
    Alcotest.(check int) "same resends" na.Run.resends nb.Run.resends;
    Alcotest.(check bool) "same ambiguous commits" true
      (na.Run.ambiguous = nb.Run.ambiguous)
  | _ -> Alcotest.fail "both runs must report net stats"

(* --- the faulty link itself --- *)

let test_link_determinism_and_counters () =
  let cfg = Link.config ~seed:9 ~drop_prob:0.2 ~dup_prob:0.2 ~reset_prob:0.1 () in
  let draw () =
    let link = Link.create ~sessions:2 cfg in
    let fates =
      List.init 200 (fun i -> Link.route link ~session:(i mod 2))
    in
    (fates, (Link.dropped link, Link.duplicated link, Link.resets link))
  in
  let fates_a, counters_a = draw () in
  let fates_b, counters_b = draw () in
  Alcotest.(check bool) "same fates" true (fates_a = fates_b);
  Alcotest.(check bool) "same counters" true (counters_a = counters_b);
  let dropped, duplicated, resets = counters_a in
  Alcotest.(check bool) "faults actually injected" true
    (dropped > 0 && duplicated > 0 && resets > 0)

let test_disabled_link_is_noop () =
  Alcotest.(check bool) "default config disabled" true
    (Link.is_disabled (Link.config ()));
  Alcotest.(check bool) "faulty config not disabled" false
    (Link.is_disabled (Link.config ~drop_prob:0.01 ()));
  let link = Link.create ~sessions:1 Link.disabled in
  for _ = 1 to 100 do
    match Link.route link ~session:0 with
    | Link.Deliver [ 0 ] -> ()
    | _ -> Alcotest.fail "disabled link must deliver cleanly"
  done;
  Alcotest.(check int) "nothing dropped" 0 (Link.dropped link);
  Alcotest.(check int) "nothing delayed" 0 (Link.delayed link)

(* --- idempotent commit tokens --- *)

(* Submit [dups] copies of the same COMMIT request (same token) straight
   at the server: the engine must apply the commit exactly once and
   acknowledge every copy positively.  The committed image must be
   byte-identical to the single-submission run. *)
let commit_n_times ~seed ~dups =
  let sim = Sim.create () in
  let engine =
    Engine.create sim ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation ~faults:Minidb.Fault.Set.empty
  in
  let server = Server.create ~engine ~queue_capacity:16 in
  let txn = Engine.begin_txn engine ~client:0 in
  Server.register_txn server txn;
  let value = 1000 + (seed mod 97) in
  let acks = ref 0 in
  let submit seq body =
    Server.submit server
      { Wire.session = 0; seq; txn = Engine.txn_id txn; op = seq; body }
      ~reply:(fun resp ->
        match resp.Wire.body with
        | Wire.Ok_write -> ()
        | Wire.Ok_commit -> incr acks
        | _ -> Alcotest.fail "unexpected refusal")
  in
  submit 0 (Wire.Write [ (x, value) ]);
  for i = 1 to dups do
    submit i (Wire.Commit { token = Engine.txn_id txn })
  done;
  Sim.run sim;
  ( Engine.snapshot_committed engine,
    Engine.commits engine,
    Engine.duplicate_commit_acks engine,
    !acks )

let prop_commit_token_exactly_once =
  QCheck.Test.make ~count:100 ~name:"commit token applied exactly once"
    QCheck.(pair small_nat (int_range 2 6))
    (fun (seed, dups) ->
      let reference, commits1, dup_acks1, acks1 =
        commit_n_times ~seed ~dups:1
      in
      let snapshot, commits, dup_acks, acks = commit_n_times ~seed ~dups in
      commits1 = 1 && dup_acks1 = 0 && acks1 = 1 && commits = 1
      && dup_acks = dups - 1
      && acks = dups
      && snapshot = reference)

(* --- bounded retries --- *)

let test_total_loss_bounded_retries () =
  let sim = Sim.create () in
  let engine =
    Engine.create sim ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation ~faults:Minidb.Fault.Set.empty
  in
  let server = Server.create ~engine ~queue_capacity:4 in
  let link = Link.create ~sessions:1 (Link.config ~seed:5 ~drop_prob:1.0 ()) in
  let client =
    Client.create sim ~rng:(Rng.create 1) ~link ~server ~session:0
      (Client.config ~max_tries:3 ())
  in
  let txn = Engine.begin_txn engine ~client:0 in
  Server.register_txn server txn;
  let settled = ref None in
  Client.call client ~txn:(Engine.txn_id txn) ~op:0
    ~body:(Wire.Read { cells = [ x ]; locking = false; predicate = false })
    ~first_send_delay_ns:10 ~resp_base_delay_ns:(fun _ -> 10)
    ~k:(fun outcome -> settled := Some outcome);
  Sim.run sim;
  (match !settled with
  | Some Client.No_reply -> ()
  | Some (Client.Reply _) -> Alcotest.fail "total loss cannot produce a reply"
  | None -> Alcotest.fail "call must settle (no hang)");
  Alcotest.(check int) "attempts beyond the first" 2 (Client.resends client);
  Alcotest.(check int) "one give-up" 1 (Client.give_ups client)

(* --- load shedding --- *)

let test_full_queue_sheds () =
  let sim = Sim.create () in
  let engine =
    Engine.create sim ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation ~faults:Minidb.Fault.Set.empty
  in
  let server = Server.create ~engine ~queue_capacity:1 in
  (* session 0 takes a row lock, so session 1's locking read parks in
     the engine and its session queue backs up *)
  let holder = Engine.begin_txn engine ~client:0 in
  let waiter = Engine.begin_txn engine ~client:1 in
  Server.register_txn server holder;
  Server.register_txn server waiter;
  let replies = ref [] in
  let submit ~session ~txn seq body =
    Server.submit server
      { Wire.session; seq; txn = Engine.txn_id txn; op = 100 + seq; body }
      ~reply:(fun resp -> replies := resp.Wire.body :: !replies)
  in
  submit ~session:0 ~txn:holder 0
    (Wire.Read { cells = [ y ]; locking = true; predicate = false });
  (* parks on the lock: session 1 becomes busy with an empty queue *)
  submit ~session:1 ~txn:waiter 0
    (Wire.Read { cells = [ y ]; locking = true; predicate = false });
  (* fills the queue (capacity 1) *)
  submit ~session:1 ~txn:waiter 1
    (Wire.Read { cells = [ x ]; locking = false; predicate = false });
  (* sheds: definite Rejected, no hang *)
  submit ~session:1 ~txn:waiter 2
    (Wire.Read { cells = [ x ]; locking = false; predicate = false });
  Alcotest.(check int) "one request shed" 1 (Server.rejected server);
  Alcotest.(check bool) "shed reply is Rejected" true
    (List.mem Wire.Rejected !replies);
  (* release the lock: everything queued must settle *)
  submit ~session:0 ~txn:holder 1 (Wire.Commit { token = Engine.txn_id holder });
  Sim.run sim;
  Alcotest.(check int) "all five requests answered" 5 (List.length !replies)

(* --- ambiguity-aware checking (hand-crafted traces) --- *)

let si = Leopard.Il_profile.postgresql_si

let check_with_ambiguous profile ~ambiguous traces =
  let checker = Checker.create profile in
  List.iter (fun txn -> Checker.mark_ambiguous_commit checker ~txn) ambiguous;
  List.iter (Checker.feed checker)
    (List.sort Trace.compare_by_bef traces);
  Checker.finalize checker;
  Checker.report checker

let test_resolved_ambiguous_commit_verifies () =
  (* txn 1's COMMIT outcome is unknown (no terminal trace), but txn 2 —
     itself committed — observed its write: the commit definitely
     happened, so the verdict stays Verified *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ]
  in
  let r = check_with_ambiguous si ~ambiguous:[ 1 ] traces in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "resolved" 1 r.Checker.resolved_ambiguous;
  Alcotest.(check int) "no residual ambiguity" 0
    r.Checker.degradation.Checker.ambiguous_commits;
  Alcotest.(check bool) "verdict Verified" true
    (Checker.verdict r = Checker.Verified)

let test_unresolved_ambiguous_commit_inconclusive () =
  (* nobody ever observes txn 1's write: the outcome stays unknown and
     the verdict degrades instead of claiming a full pass *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (y, 0) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ]
  in
  let r = check_with_ambiguous si ~ambiguous:[ 1 ] traces in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "nothing resolved" 0 r.Checker.resolved_ambiguous;
  Alcotest.(check int) "residual ambiguity counted" 1
    r.Checker.degradation.Checker.ambiguous_commits;
  match Checker.verdict r with
  | Checker.Inconclusive reason ->
    Alcotest.(check bool) "reason names the ambiguity" true
      (String.length reason > 0)
  | Checker.Verified | Checker.Violation ->
    Alcotest.fail "unresolved ambiguity must be Inconclusive"

let test_aborted_reader_does_not_resolve () =
  (* the only observer of txn 1's write aborted: its read proves nothing
     about durably-committed state, so the ambiguity stays *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.abort ~txn:2 ~bef:120 ~aft:130 ();
    ]
  in
  let r = check_with_ambiguous si ~ambiguous:[ 1 ] traces in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "nothing resolved" 0 r.Checker.resolved_ambiguous;
  Alcotest.(check int) "ambiguity remains" 1
    r.Checker.degradation.Checker.ambiguous_commits

let test_planted_violation_under_ambiguity_flagged () =
  (* a resolved ambiguous commit on x must not mask a genuine lost
     update on y: Violation dominates Inconclusive *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
      (* both updaters of y snapshot before either commits, both commit *)
      Helpers.read ~txn:3 ~bef:200 ~aft:210 [ (y, 0) ];
      Helpers.read ~txn:4 ~bef:205 ~aft:215 [ (y, 0) ];
      Helpers.write ~txn:3 ~bef:220 ~aft:230 [ (y, 300) ];
      Helpers.commit ~txn:3 ~bef:240 ~aft:250 ();
      Helpers.write ~txn:4 ~bef:260 ~aft:270 [ (y, 400) ];
      Helpers.commit ~txn:4 ~bef:280 ~aft:290 ();
    ]
  in
  let r = check_with_ambiguous si ~ambiguous:[ 1 ] traces in
  Alcotest.(check bool) "violation flagged" true (r.Checker.bugs_total > 0);
  Alcotest.(check bool) "FUW mechanism" true
    (List.mem "FUW" (Helpers.bug_mechanisms r));
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation)

(* --- end to end: faults never fabricate violations --- *)

let check_outcome outcome =
  let checker = Checker.create si in
  (match outcome.Run.net with
  | Some ns ->
    List.iter
      (fun (_client, txn, _at) -> Checker.mark_ambiguous_commit checker ~txn)
      ns.Run.ambiguous
  | None -> ());
  List.iter (Checker.feed checker) (Run.all_traces_sorted outcome);
  Checker.finalize checker;
  Checker.report checker

let test_ambiguous_commits_never_false_violations () =
  (* reset-heavy wire: ambiguous commits must occur across the seed
     sweep, and none may be misread as an isolation violation *)
  let seen_ambiguous = ref 0 in
  for seed = 1 to 50 do
    let net =
      Run.net_config
        ~fault:
          (Link.config ~seed ~drop_prob:0.05 ~dup_prob:0.05 ~reset_prob:0.08
             ())
        ()
    in
    let outcome = run_with ~net ~clients:4 ~txns:60 ~seed () in
    (match outcome.Run.net with
    | Some ns -> seen_ambiguous := !seen_ambiguous + List.length ns.Run.ambiguous
    | None -> ());
    let r = check_outcome outcome in
    if r.Checker.bugs_total > 0 then
      Alcotest.failf "seed %d: false violation under network faults" seed
  done;
  Alcotest.(check bool) "sweep actually exercised ambiguity" true
    (!seen_ambiguous > 0)

(* --- cross-plane: wire give-ups and crash-recovery damage --- *)

let test_cross_plane_channels_separate () =
  (* a reset-heavy wire (commit give-ups → ambiguity) and a mid-run
     server crash with lossy fsync (restart → damaged WAL records) in
     the same run: each plane's evidence must land in its own
     degradation channel — every wire-ambiguous commit is either
     resolved or residual exactly once, recovery damage equals the WAL's
     own count, and neither plane fabricates a violation *)
  let run seed =
    let probe =
      Run.config ~clients:4 ~seed ~spec:(spec ())
        ~profile:Minidb.Profile.postgresql
        ~level:Minidb.Isolation.Snapshot_isolation ~stop:(Run.Txn_count 120)
        ()
    in
    let d = (Run.execute probe).Run.sim_duration_ns in
    let cfg =
      Run.config ~clients:4 ~seed ~max_retries:3 ~wal:true
        ~crash_at:[ d / 2 ]
        ~wal_faults:
          (Minidb.Wal.fault_cfg ~seed ~lost_fsync_prob:0.7
             ~torn_tail_prob:0.5 ())
        ~net:
          (Run.net_config
             ~fault:
               (Link.config ~seed ~drop_prob:0.05 ~dup_prob:0.05
                  ~reset_prob:0.08 ())
             ())
        ~spec:(spec ()) ~profile:Minidb.Profile.postgresql
        ~level:Minidb.Isolation.Snapshot_isolation ~stop:(Run.Txn_count 120)
        ()
    in
    Run.execute cfg
  in
  (* find a seed where both planes actually fired *)
  let outcome = ref None in
  let seed = ref 1 in
  while Option.is_none !outcome && !seed <= 20 do
    let o = run !seed in
    let ambiguous =
      match o.Run.net with Some ns -> ns.Run.ambiguous | None -> []
    in
    if o.Run.wal_damaged > 0 && ambiguous <> [] then outcome := Some o;
    incr seed
  done;
  match !outcome with
  | None -> Alcotest.fail "no seed fired both fault planes"
  | Some o ->
    let ambiguous =
      match o.Run.net with Some ns -> ns.Run.ambiguous | None -> []
    in
    let checker = Checker.create si in
    List.iter
      (fun (_client, txn, _at) -> Checker.mark_ambiguous_commit checker ~txn)
      ambiguous;
    List.iter
      (fun (e : Run.epoch_mark) ->
        Checker.note_restart checker ~at:e.Run.at ~replayed:e.Run.replayed
          ~damaged:e.Run.damaged)
      o.Run.epochs;
    List.iter (Checker.feed checker) (Run.all_traces_sorted o);
    Checker.finalize checker;
    let r = Checker.report checker in
    Alcotest.(check int) "no false violations" 0 r.Checker.bugs_total;
    let d = r.Checker.degradation in
    Alcotest.(check int) "restarts in their own channel" o.Run.restarts
      d.Checker.restarts;
    Alcotest.(check int) "recovery damage equals the WAL count"
      o.Run.wal_damaged d.Checker.recovery_lost_records;
    Alcotest.(check int)
      "ambiguous commits partition exactly (resolved + residual)"
      (List.length ambiguous)
      (r.Checker.resolved_ambiguous + d.Checker.ambiguous_commits);
    Alcotest.(check bool) "wire ambiguity never counted as recovery loss"
      true
      (d.Checker.recovery_lost_records <= o.Run.wal_damaged);
    match Checker.verdict r with
    | Checker.Inconclusive _ -> ()
    | Checker.Verified ->
      Alcotest.fail "damaged recovery + residual ambiguity cannot verify"
    | Checker.Violation -> Alcotest.fail "cross-plane noise is not a violation"

let test_online_net_chaos_compose () =
  (* wire faults + collection chaos together: terminates, no false
     alarms, ambiguous commits reach the checker via the online poll *)
  let cfg =
    Run.config ~clients:4 ~seed:13
      ~net:
        (Run.net_config
           ~fault:(Link.config ~seed:2 ~drop_prob:0.05 ~reset_prob:0.05 ())
           ())
      ~chaos:(Leopard_harness.Chaos.config ~seed:5 ~crash_prob:0.002 ())
      ~spec:(spec ()) ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation ~stop:(Run.Txn_count 120) ()
  in
  let res = Online.run ~max_stall_ns:2_000_000 ~il:si cfg in
  Alcotest.(check int) "no false violations" 0
    res.Online.report.Checker.bugs_total

(* --- CLI validation --- *)

let test_cli_validators () =
  let rejects = function Some _ -> true | None -> false in
  Alcotest.(check bool) "prob in range ok" false
    (rejects (Validate.prob ~flag:"--p" 0.5));
  Alcotest.(check bool) "prob 0 ok" false (rejects (Validate.prob ~flag:"--p" 0.0));
  Alcotest.(check bool) "prob 1 ok" false (rejects (Validate.prob ~flag:"--p" 1.0));
  Alcotest.(check bool) "prob > 1 rejected" true
    (rejects (Validate.prob ~flag:"--p" 1.5));
  Alcotest.(check bool) "prob < 0 rejected" true
    (rejects (Validate.prob ~flag:"--p" (-0.1)));
  Alcotest.(check bool) "nan rejected" true
    (rejects (Validate.prob ~flag:"--p" Float.nan));
  Alcotest.(check bool) "positive ok" false
    (rejects (Validate.positive ~flag:"--t" 1));
  Alcotest.(check bool) "zero timeout rejected" true
    (rejects (Validate.positive ~flag:"--t" 0));
  Alcotest.(check bool) "negative rejected" true
    (rejects (Validate.non_negative ~flag:"--d" (-1)));
  Alcotest.(check bool) "sorted schedule ok" false
    (rejects (Validate.crash_schedule ~flag:"--c" [ 10; 20; 30 ]));
  Alcotest.(check bool) "empty schedule ok" false
    (rejects (Validate.crash_schedule ~flag:"--c" []));
  Alcotest.(check bool) "duplicate instant rejected" true
    (rejects (Validate.crash_schedule ~flag:"--c" [ 10; 10 ]));
  Alcotest.(check bool) "unsorted schedule rejected" true
    (rejects (Validate.crash_schedule ~flag:"--c" [ 20; 10 ]));
  Alcotest.(check bool) "non-positive instant rejected" true
    (rejects (Validate.crash_schedule ~flag:"--c" [ 0; 10 ]));
  (match
     Validate.first_error
       [
         None;
         Validate.prob ~flag:"--a" 2.0;
         Validate.prob ~flag:"--b" 3.0;
       ]
   with
  | Some e ->
    Alcotest.(check string) "leftmost error wins" "--a" e.Validate.flag;
    Alcotest.(check bool) "message names the flag" true
      (String.length (Validate.error_to_string e) > 0)
  | None -> Alcotest.fail "first_error must surface an error")

let suite =
  [
    Alcotest.test_case "disabled wire is byte-identical" `Quick
      test_disabled_wire_is_identity;
    Alcotest.test_case "same seed, same faults" `Quick
      test_same_seed_same_faults;
    Alcotest.test_case "link determinism and counters" `Quick
      test_link_determinism_and_counters;
    Alcotest.test_case "disabled link is a no-op" `Quick
      test_disabled_link_is_noop;
    Helpers.qtest prop_commit_token_exactly_once;
    Alcotest.test_case "total loss: bounded retries, no hang" `Quick
      test_total_loss_bounded_retries;
    Alcotest.test_case "full session queue load-sheds" `Quick
      test_full_queue_sheds;
    Alcotest.test_case "resolved ambiguous commit verifies" `Quick
      test_resolved_ambiguous_commit_verifies;
    Alcotest.test_case "unresolved ambiguous commit inconclusive" `Quick
      test_unresolved_ambiguous_commit_inconclusive;
    Alcotest.test_case "aborted reader does not resolve" `Quick
      test_aborted_reader_does_not_resolve;
    Alcotest.test_case "planted violation under ambiguity flagged" `Quick
      test_planted_violation_under_ambiguity_flagged;
    Alcotest.test_case "50-seed sweep: no false violations" `Slow
      test_ambiguous_commits_never_false_violations;
    Alcotest.test_case "cross-plane degradation channels stay separate"
      `Quick test_cross_plane_channels_separate;
    Alcotest.test_case "wire + chaos compose online" `Quick
      test_online_net_chaos_compose;
    Alcotest.test_case "cli validators" `Quick test_cli_validators;
  ]
