(* Bounded-memory continuous verification and crash-tolerant checker
   checkpoints.

   The contract under test, in order of increasing machinery:

   - the pipeline's stall-bound footgun fails fast (a bound without a
     clock would silently never trip);
   - the online monitor's residual-lag accounting is exact: every
     produced trace is dispatched, dropped-late or stranded — never
     silently lost;
   - [Checker.truncate] changes memory, never verdicts: a truncating
     pass reports the same totals, the same bugs and the same verdict
     as an untruncated pass, across a 50-seed sweep;
   - truncated live state is O(window), not O(history);
   - [Checker.encode]/[decode] round-trip mid-stream: a decoded checker
     fed the remaining stream reproduces the uninterrupted report
     field-for-field, and refuses foreign profiles/flags;
   - the [Ckpt] container survives the campaign checkpoint's 18-way
     damage ladder: any corruption degrades to an older frame or a
     fresh start with a warning, never to trusting damaged bytes;
   - the CLI flag grammar rejects silently-inert combinations. *)

module H = Leopard_harness
module W = Leopard_workload
module Il = Leopard.Il_profile
module Trace = Leopard_trace.Trace
module Cell = Leopard_trace.Cell
module Ckpt = Leopard_trace.Ckpt
module Rng = Leopard_util.Rng

let il_sr = Il.postgresql_serializable

(* The cadence-independent outputs: what the verifier {e asserts} about
   a history.  Truncation legitimately changes how deps are deduced
   (fewer transactions coexist, so ME deduces fewer pairs and the
   version order deduces more) and the free-text bug detail (candidate
   and known-version counts reflect pruned state), so this digest keeps
   verdict, bug identities (mechanism, transactions, cell), the history
   counts and the degradation ledger — and leaves out deduction tallies,
   bug prose and memory/gc counters. *)
let verdict_digest (r : Leopard.Checker.report) =
  let d = r.degradation in
  let bug_id (b : Leopard.Bug.t) =
    Printf.sprintf "%s{%s}%s"
      (Leopard.Bug.mechanism_to_string b.mechanism)
      (String.concat "," (List.map string_of_int b.txns))
      (match b.cell with Some c -> Cell.to_string c | None -> "-")
  in
  Printf.sprintf
    "t=%d c=%d a=%d bugs=%d [%s] mech=[%s] reads=%d res=%d \
     deg=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d verdict=%s"
    r.traces r.committed r.aborted r.bugs_total
    (String.concat ";" (List.sort String.compare (List.map bug_id r.bugs)))
    (String.concat ";"
       (List.map
          (fun (m, n) ->
            Printf.sprintf "%s=%d" (Leopard.Bug.mechanism_to_string m) n)
          r.bugs_by_mechanism))
    r.reads_checked r.resolved_ambiguous d.crashed_clients
    d.indeterminate_txns d.dup_traces_dropped d.late_traces_dropped
    d.lost_traces d.inconclusive_reads d.unterminated_txns d.restarts
    d.recovery_lost_records d.ambiguous_commits d.failovers
    d.lost_suffix_commits d.coord_ambiguous_commits
    (match Leopard.Checker.verdict r with
    | Leopard.Checker.Verified -> "V"
    | Leopard.Checker.Violation -> "B"
    | Leopard.Checker.Inconclusive why -> "I:" ^ why)

(* The strict digest adds deduction tallies and full bug prose — it only
   holds between runs with the {e same} truncation cadence (a resumed
   checker vs. the uninterrupted one), where the pruned state is
   identical at every step. *)
let digest (r : Leopard.Checker.report) =
  let d = r.degradation in
  Printf.sprintf
    "t=%d c=%d a=%d bugs=%d [%s] mech=[%s] deps=%d [%s] reads=%d res=%d \
     deg=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d verdict=%s"
    r.traces r.committed r.aborted r.bugs_total
    (String.concat ";" (List.map Leopard.Bug.to_string r.bugs))
    (String.concat ";"
       (List.map
          (fun (m, n) ->
            Printf.sprintf "%s=%d" (Leopard.Bug.mechanism_to_string m) n)
          r.bugs_by_mechanism))
    r.deps_deduced
    (String.concat ";"
       (List.map
          (fun (s, n) ->
            Printf.sprintf "%s=%d" (Leopard.Dep.source_to_string s) n)
          r.deduced_by_source))
    r.reads_checked r.resolved_ambiguous d.crashed_clients
    d.indeterminate_txns d.dup_traces_dropped d.late_traces_dropped
    d.lost_traces d.inconclusive_reads d.unterminated_txns d.restarts
    d.recovery_lost_records d.ambiguous_commits d.failovers
    d.lost_suffix_commits d.coord_ambiguous_commits
    (match Leopard.Checker.verdict r with
    | Leopard.Checker.Verified -> "V"
    | Leopard.Checker.Violation -> "B"
    | Leopard.Checker.Inconclusive why -> "I:" ^ why)

(* A feeding pass that truncates every [window] traces at the current
   trace's ts_bef — the sorted stream's own watermark. *)
let check_truncating ?(window = 40) profile traces =
  let checker = Leopard.Checker.create profile in
  let n = ref 0 in
  List.iter
    (fun (tr : Trace.t) ->
      Leopard.Checker.feed checker tr;
      incr n;
      if !n mod window = 0 then
        Leopard.Checker.truncate checker ~watermark:tr.Trace.ts_bef)
    (List.sort Trace.compare_by_bef traces);
  Leopard.Checker.finalize checker;
  Leopard.Checker.report checker

(* --- satellite: the stall bound demands a clock -------------------- *)

let test_stall_bound_requires_clock () =
  let sources = [| (fun () -> Leopard.Pipeline.Closed) |] in
  Alcotest.check_raises "max_stall_ns without now fails fast"
    (Invalid_argument
       "Pipeline.create: max_stall_ns requires a real clock (pass ~now)")
    (fun () ->
      ignore (Leopard.Pipeline.create ~max_stall_ns:1_000 ~sources ()));
  (* with a clock the bound is accepted; without the bound no clock is
     needed (offline mode's complete-streams assumption) *)
  ignore
    (Leopard.Pipeline.create ~max_stall_ns:1_000 ~now:(fun () -> 0) ~sources
       ());
  ignore (Leopard.Pipeline.create ~sources ())

(* --- satellite: honest residual-lag accounting --------------------- *)

let online_config ?faults ?chaos ~seed ~txns () =
  H.Run.config ?faults ?chaos ~clients:12 ~seed
    ~spec:(W.Blindw.spec W.Blindw.RW) ~profile:Minidb.Profile.postgresql
    ~level:Minidb.Isolation.Serializable ~stop:(H.Run.Txn_count txns) ()

let test_online_lag_identity () =
  (* clean run: the verifier saw everything *)
  let r = H.Online.run ~il:il_sr (online_config ~seed:3 ~txns:600 ()) in
  Alcotest.(check int) "clean run: no residual lag" 0 r.final_lag;
  Alcotest.(check int) "clean run: nothing stranded" 0 r.stranded;
  (* crashy runs: produced = dispatched + late_dropped + stranded, and
     everything the verifier never saw is accounted as degradation *)
  for seed = 0 to 9 do
    let chaos =
      H.Chaos.config ~seed ~crash_prob:0.004 ~drop_prob:0.02 ~dup_prob:0.01
        ~delay_prob:0.05 ~max_delay_ns:800_000 ~clock_skew_ns:0 ()
    in
    let r =
      H.Online.run ~max_stall_ns:2_000_000 ~il:il_sr
        (online_config ~chaos ~seed ~txns:600 ())
    in
    let d = r.report.Leopard.Checker.degradation in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: final_lag = late_dropped + stranded" seed)
      (d.Leopard.Checker.late_traces_dropped + r.stranded)
      r.final_lag;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: stranded traces are counted lost" seed)
      true
      (d.Leopard.Checker.lost_traces >= r.stranded)
  done

(* --- tentpole: truncation never changes the verdict ---------------- *)

let test_truncated_equals_untruncated_sweep () =
  (* 50 seeds; every fifth one runs a faulted probe so the Violation
     path is exercised, the rest run clean chaos-free histories *)
  for seed = 0 to 49 do
    let traces, il =
      if seed mod 5 = 0 then begin
        let p = W.Probes.for_fault Minidb.Fault.Stale_read in
        let o =
          H.Run.execute
            (H.Run.config
               ~faults:(Minidb.Fault.Set.singleton p.fault)
               ~clients:p.clients ~seed ~spec:p.spec ~profile:p.db_profile
               ~level:p.level ~stop:(H.Run.Txn_count 300) ())
        in
        (H.Run.all_traces_sorted o, Option.get (Il.find p.verifier_profile))
      end
      else begin
        let o = H.Run.execute (online_config ~seed ~txns:300 ()) in
        (H.Run.all_traces_sorted o, il_sr)
      end
    in
    let plain = Helpers.check il traces in
    let truncated = check_truncating ~window:37 il traces in
    Alcotest.(check string)
      (Printf.sprintf "seed %d: truncated digest equals untruncated" seed)
      (verdict_digest plain)
      (verdict_digest truncated);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: truncations happened" seed)
      true
      (truncated.Leopard.Checker.truncations > 0)
  done

(* --- tentpole: live state is O(window), not O(history) ------------- *)

(* The bench's synthetic stream, small: txn i reads the previous value
   of cell (i mod cells), overwrites it with i+1, commits, in disjoint
   intervals — Verified at any scale, with a version chain per cell and
   a dependency log that only truncation bounds. *)
let synthetic_soak ~txns ~window =
  let cells = 16 in
  let checker = Leopard.Checker.create il_sr in
  let cell i = Cell.make ~table:0 ~row:(i mod cells) ~col:0 in
  let worst = ref 0 in
  for i = 0 to txns - 1 do
    let t = i * 8 in
    if i >= cells then
      Leopard.Checker.feed checker
        (Helpers.read ~txn:i ~bef:t ~aft:(t + 1)
           [ (cell i, i - cells + 1) ]);
    Leopard.Checker.feed checker
      (Helpers.write ~txn:i ~bef:(t + 2) ~aft:(t + 3) [ (cell i, i + 1) ]);
    Leopard.Checker.feed checker
      (Helpers.commit ~txn:i ~bef:(t + 4) ~aft:(t + 5) ());
    if window > 0 && i mod window = window - 1 then begin
      Leopard.Checker.truncate checker ~watermark:t;
      worst := max !worst (Leopard.Checker.live_size checker)
    end
  done;
  Leopard.Checker.finalize checker;
  (Leopard.Checker.report checker, !worst)

let test_live_size_bounded_by_window () =
  let r1, _ = synthetic_soak ~txns:4_000 ~window:500 in
  let r4, post4 = synthetic_soak ~txns:16_000 ~window:500 in
  let u4, _ = synthetic_soak ~txns:16_000 ~window:0 in
  Alcotest.(check int) "soak verifies clean" 0 r4.Leopard.Checker.bugs_total;
  (match Leopard.Checker.verdict r4 with
  | Leopard.Checker.Verified -> ()
  | _ -> Alcotest.fail "synthetic soak must verify");
  (* 4x the history, (almost) the same peak: O(window) *)
  Alcotest.(check bool)
    (Printf.sprintf "peak live flat across scales (%d vs %d)"
       r1.Leopard.Checker.peak_live r4.Leopard.Checker.peak_live)
    true
    (r4.Leopard.Checker.peak_live
    <= r1.Leopard.Checker.peak_live + (r1.Leopard.Checker.peak_live / 5));
  (* the untruncated checker is history-bound: gc alone cannot bound
     the deduction log, so its peak keeps growing with the history *)
  Alcotest.(check bool)
    (Printf.sprintf "untruncated peak is history-bound (%d vs %d)"
       u4.Leopard.Checker.peak_live r4.Leopard.Checker.peak_live)
    true
    (u4.Leopard.Checker.peak_live > 2 * r4.Leopard.Checker.peak_live);
  (* post-truncation live size never exceeds a window's worth of state *)
  Alcotest.(check bool)
    (Printf.sprintf "post-truncation live size bounded (%d)" post4)
    true
    (post4 < u4.Leopard.Checker.peak_live / 2);
  (* the verdict-level outputs survive the folding *)
  Alcotest.(check string) "verdict digest matches untruncated"
    (verdict_digest u4) (verdict_digest r4)

(* --- tentpole: encode/decode round-trips mid-stream ---------------- *)

let split_at n l =
  let rec go i acc = function
    | rest when i = n -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i + 1) (x :: acc) rest
  in
  go 0 [] l

let test_encode_decode_roundtrip () =
  for seed = 0 to 9 do
    let p = W.Probes.for_fault Minidb.Fault.Stale_read in
    let o =
      H.Run.execute
        (H.Run.config
           ~faults:(Minidb.Fault.Set.singleton p.fault)
           ~clients:p.clients ~seed ~spec:p.spec ~profile:p.db_profile
           ~level:p.level ~stop:(H.Run.Txn_count 300) ())
    in
    let il = Option.get (Il.find p.verifier_profile) in
    let traces = H.Run.all_traces_sorted o in
    let cut = List.length traces / 2 in
    let first, rest = split_at cut traces in
    let a = Leopard.Checker.create il in
    List.iter (Leopard.Checker.feed a) first;
    (match first with
    | [] -> ()
    | _ ->
      let last = List.nth first (cut - 1) in
      Leopard.Checker.truncate a ~watermark:last.Trace.ts_bef);
    let lines = Leopard.Checker.encode a in
    let b =
      match Leopard.Checker.decode il lines with
      | Ok b -> b
      | Error msg -> Alcotest.fail ("decode failed: " ^ msg)
    in
    (* the decoded image re-encodes to the same bytes: the snapshot is
       canonical, so frames are reproducible across kill/resume chains *)
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d: encode is a fixpoint" seed)
      lines
      (Leopard.Checker.encode b);
    List.iter (Leopard.Checker.feed a) rest;
    List.iter (Leopard.Checker.feed b) rest;
    Leopard.Checker.finalize a;
    Leopard.Checker.finalize b;
    Alcotest.(check string)
      (Printf.sprintf "seed %d: resumed report equals uninterrupted" seed)
      (digest (Leopard.Checker.report a))
      (digest (Leopard.Checker.report b))
  done

let test_decode_rejects_foreign () =
  let o = H.Run.execute (online_config ~seed:1 ~txns:200 ()) in
  let a = Leopard.Checker.create il_sr in
  List.iter (Leopard.Checker.feed a) (H.Run.all_traces_sorted o);
  let lines = Leopard.Checker.encode a in
  (match Leopard.Checker.decode Il.postgresql_si lines with
  | Ok _ -> Alcotest.fail "decode accepted a foreign profile"
  | Error _ -> ());
  (match Leopard.Checker.decode ~relaxed_reads:true il_sr lines with
  | Ok _ -> Alcotest.fail "decode accepted mismatched flags"
  | Error _ -> ());
  (* flag mismatch is about equality, not direction *)
  match Leopard.Checker.decode il_sr lines with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("decode rejected its own flags: " ^ msg)

(* --- the checkpoint container: damage degrades, never lies --------- *)

let frame_payloads =
  [
    [ "plain line"; "tab\there"; "back\\slash"; "new\nline"; "" ];
    [ "second frame"; String.make 300 'x' ];
    [ "third\tframe"; "\x00\x01binary\xff" ];
  ]

let write_ckpt ~path ~fingerprint frames =
  let w = Ckpt.writer ~path ~fingerprint in
  List.iter (Ckpt.append w) frames;
  Ckpt.close w

let test_ckpt_roundtrip () =
  let path = Filename.temp_file "leopard_ckpt" ".ck" in
  let fp = Ckpt.fingerprint [ "unit"; "roundtrip" ] in
  write_ckpt ~path ~fingerprint:fp frame_payloads;
  let frame, warning = Ckpt.load ~path ~fingerprint:fp in
  Alcotest.(check (option string)) "no warning on pristine file" None warning;
  (match frame with
  | Some payload ->
    Alcotest.(check (list string))
      "last frame round-trips exactly (tabs, newlines, binary)"
      (List.nth frame_payloads 2) payload
  | None -> Alcotest.fail "pristine checkpoint must load");
  (* missing file: silent fresh start *)
  Sys.remove path;
  let frame, warning = Ckpt.load ~path ~fingerprint:fp in
  Alcotest.(check bool) "missing file: no frame" true (frame = None);
  Alcotest.(check (option string)) "missing file: silent" None warning

let test_ckpt_foreign_fingerprint () =
  let path = Filename.temp_file "leopard_ckpt" ".ck" in
  write_ckpt ~path ~fingerprint:(Ckpt.fingerprint [ "run"; "a" ])
    frame_payloads;
  let frame, warning =
    Ckpt.load ~path ~fingerprint:(Ckpt.fingerprint [ "run"; "b" ])
  in
  Alcotest.(check bool) "foreign fingerprint: ignored" true (frame = None);
  Alcotest.(check bool) "foreign fingerprint: warned" true (warning <> None);
  Sys.remove path

let test_ckpt_damage_ladder () =
  let path = Filename.temp_file "leopard_ckpt" ".ck" in
  let fp = Ckpt.fingerprint [ "unit"; "damage" ] in
  write_ckpt ~path ~fingerprint:fp frame_payloads;
  let pristine =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let restore damaged =
    let oc = open_out_bin path in
    output_string oc damaged;
    close_out oc
  in
  let len = String.length pristine in
  let rng = Rng.create 99 in
  let damage_one i =
    match i mod 3 with
    | 0 -> String.sub pristine 0 (1 + Rng.int rng (len - 1))
    | 1 ->
      let pos = Rng.int rng len in
      let b = Bytes.of_string pristine in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
      Bytes.to_string b
    | _ -> pristine ^ "l\tdeadbeef\tnot a frame\n"
  in
  for i = 0 to 17 do
    restore (damage_one i);
    (* damage may cost frames, never truth: whatever loads is a frame
       that was actually written, and damaged loads always warn *)
    let frame, warning = Ckpt.load ~path ~fingerprint:fp in
    (match frame with
    | None -> ()
    | Some payload ->
      Alcotest.(check bool)
        (Printf.sprintf "damage %d: loaded frame was actually written" i)
        true
        (List.exists (fun f -> f = payload) frame_payloads));
    let intact =
      match (frame, warning) with
      | Some payload, None -> payload = List.nth frame_payloads 2
      | _, Some _ -> true
      | None, None -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "damage %d: degraded loads warn" i)
      true intact
  done;
  Sys.remove path

(* --- online monitor: truncation + checkpoint wiring ---------------- *)

let test_online_truncating_same_verdict () =
  let plain = H.Online.run ~il:il_sr (online_config ~seed:11 ~txns:800 ()) in
  let path = Filename.temp_file "leopard_online" ".ck" in
  let truncating =
    H.Online.run ~gc_watermark:300 ~checkpoint:path ~il:il_sr
      (online_config ~seed:11 ~txns:800 ())
  in
  Alcotest.(check string) "truncating online digest equals plain"
    (verdict_digest plain.report)
    (verdict_digest truncating.report);
  Alcotest.(check bool) "monitor truncated" true
    (truncating.report.Leopard.Checker.truncations > 0);
  (* the checkpoint file holds a loadable final frame *)
  let fp =
    Ckpt.fingerprint [ "online"; il_sr.Il.name; "512"; "300" ]
  in
  let frame, warning = Ckpt.load ~path ~fingerprint:fp in
  Alcotest.(check (option string)) "checkpoint pristine" None warning;
  (match frame with
  | Some lines -> (
    match Leopard.Checker.decode il_sr lines with
    | Ok c ->
      Alcotest.(check string) "final frame decodes to the final report"
        (digest truncating.report)
        (digest (Leopard.Checker.report c))
    | Error msg -> Alcotest.fail ("final frame rejected: " ^ msg))
  | None -> Alcotest.fail "online checkpoint must load");
  Sys.remove path

let test_online_checkpoint_requires_watermark () =
  Alcotest.check_raises "checkpoint without gc_watermark fails fast"
    (Invalid_argument "Online.run: checkpoint requires gc_watermark")
    (fun () ->
      ignore
        (H.Online.run ~checkpoint:"/tmp/never-written.ck" ~il:il_sr
           (online_config ~seed:1 ~txns:50 ())))

(* --- CLI flag grammar ---------------------------------------------- *)

let test_cli_checkpointing_rules () =
  let open H.Cli_validate in
  let base =
    {
      gc_watermark = 0;
      check_checkpoint = false;
      resume_check = false;
      kill_after = 0;
      check_mode = true;
    }
  in
  let flag_of = Option.map (fun e -> e.flag) in
  Alcotest.(check (option string)) "all off: fine" None
    (flag_of (checkpointing base));
  Alcotest.(check (option string)) "plain truncation: fine" None
    (flag_of (checkpointing { base with gc_watermark = 1000 }));
  Alcotest.(check (option string)) "negative watermark rejected"
    (Some "--gc-watermark")
    (flag_of (checkpointing { base with gc_watermark = -1 }));
  Alcotest.(check (option string)) "checkpoint needs truncation"
    (Some "--check-checkpoint")
    (flag_of (checkpointing { base with check_checkpoint = true }));
  Alcotest.(check (option string)) "resume needs a checkpoint file"
    (Some "--resume-check")
    (flag_of
       (checkpointing { base with gc_watermark = 1000; resume_check = true }));
  Alcotest.(check (option string)) "resume needs --check"
    (Some "--resume-check")
    (flag_of
       (checkpointing
          {
            gc_watermark = 1000;
            check_checkpoint = true;
            resume_check = true;
            kill_after = 0;
            check_mode = false;
          }));
  Alcotest.(check (option string)) "kill drill needs a checkpoint"
    (Some "--check-kill-after")
    (flag_of
       (checkpointing { base with gc_watermark = 1000; kill_after = 5 }));
  Alcotest.(check (option string)) "the full resume chain is fine" None
    (flag_of
       (checkpointing
          {
            gc_watermark = 1000;
            check_checkpoint = true;
            resume_check = true;
            kill_after = 5;
            check_mode = true;
          }))

let suite =
  [
    Alcotest.test_case "pipeline stall bound requires a clock" `Quick
      test_stall_bound_requires_clock;
    Alcotest.test_case "online residual lag is exact under chaos" `Quick
      test_online_lag_identity;
    Alcotest.test_case "truncated verdict equals untruncated (50 seeds)"
      `Quick test_truncated_equals_untruncated_sweep;
    Alcotest.test_case "truncated live size is O(window)" `Quick
      test_live_size_bounded_by_window;
    Alcotest.test_case "encode/decode round-trips mid-stream" `Quick
      test_encode_decode_roundtrip;
    Alcotest.test_case "decode rejects foreign profile and flags" `Quick
      test_decode_rejects_foreign;
    Alcotest.test_case "ckpt container round-trips exactly" `Quick
      test_ckpt_roundtrip;
    Alcotest.test_case "ckpt ignores foreign fingerprints" `Quick
      test_ckpt_foreign_fingerprint;
    Alcotest.test_case "ckpt survives the 18-way damage ladder" `Quick
      test_ckpt_damage_ladder;
    Alcotest.test_case "truncating online monitor: same verdict" `Quick
      test_online_truncating_same_verdict;
    Alcotest.test_case "online checkpoint requires gc_watermark" `Quick
      test_online_checkpoint_requires_watermark;
    Alcotest.test_case "cli checkpoint flag grammar" `Quick
      test_cli_checkpointing_rules;
  ]
