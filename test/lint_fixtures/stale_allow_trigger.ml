(* S001: the annotation below suppresses nothing — nothing on the next
   line iterates a Hashtbl — so the justification has rotted and the
   directive itself becomes the finding. *)

(* lint: allow hashtbl-order — sorted right below (it is not) *)
let total xs = List.fold_left ( + ) 0 xs
