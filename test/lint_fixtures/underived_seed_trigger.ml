(* P003 (campaign zone): a generator seeded from a hard-coded constant
   inside a sweep decouples the cell from its campaign seed — serial
   and parallel sweeps would still agree, but replaying the campaign
   from its seed would not reproduce this cell. *)

let cell () =
  let rng = Rng.create 42 in
  Rng.int rng 10
