let planted = Split_brain
