(* lint: allow random-global — fixture: deliberately exempted draw *)
let roll () = Random.int 6
