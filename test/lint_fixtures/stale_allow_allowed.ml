(* A stale directive can itself be justified away while a fixture (or
   a migration) still needs the line kept: suppressing S001 with its
   own slug covers the rotted annotation below. *)

(* lint: allow stale-allow — kept deliberately as a paired fixture *)
(* lint: allow hashtbl-order — nothing here iterates *)
let total xs = List.fold_left ( + ) 0 xs
