(* lint: allow exit-in-lib — fixture: unreachable guard *)
let die () = exit 2
