(* lint: allow tag-wildcard — fixture: display-only classification *)
let is_append = function Repl_append _ -> true | _ -> false
