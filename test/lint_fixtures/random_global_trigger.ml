(* D001: the global Random state is process-wide and unseeded. *)
let roll () = Random.int 6
