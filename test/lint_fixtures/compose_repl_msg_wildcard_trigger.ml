let is_append = function Repl_append _ -> true | _ -> false
