let is_write = function Write -> true | Read -> false | _ -> false
