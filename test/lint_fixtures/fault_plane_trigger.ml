let no_faults = Fault.Set.empty
