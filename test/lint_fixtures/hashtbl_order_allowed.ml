(* lint: allow-file hashtbl-order *)
let dump h = Hashtbl.iter (fun k v -> Printf.printf "%d=%d\n" k v) h

let dump2 h = Hashtbl.fold (fun _ n acc -> n + acc) h 0
