(* P001 across modules: the spawned closure captures a local Hashtbl
   and hands it to Helper.bump, which writes it — the race is one call
   away, in another file, and only the interprocedural summaries can
   see it. *)

let run () =
  let tbl = Hashtbl.create 16 in
  let d = Domain.spawn (fun () -> Helper.bump tbl "a") in
  Domain.join d;
  Hashtbl.length tbl
