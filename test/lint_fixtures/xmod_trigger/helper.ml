(* The helper writes its table parameter — harmless on its own, but
   the summary records the parameter write so a caller spawning it on
   another domain inherits the race. *)

let bump tbl k = Hashtbl.replace tbl k 1
