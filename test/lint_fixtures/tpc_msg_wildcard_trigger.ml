let is_prepare = function Tpc_prepare _ -> true | _ -> false
