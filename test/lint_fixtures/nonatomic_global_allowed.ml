(* The same shape made safe: the shared global is an Atomic.t counter,
   the sanctioned cross-domain channel, so P002 stays quiet with no
   suppression needed. *)

let counter = Atomic.make 0

let run () =
  let d = Domain.spawn (fun () -> Atomic.incr counter) in
  Domain.join d;
  Atomic.get counter
