let cell_wall () = Leopard_util.Clock.wall ()
