let worst = Dirty_read
