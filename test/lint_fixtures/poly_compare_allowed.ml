(* lint: allow poly-compare — fixture: keys are ints by construction,
   and the justification spans more than one comment line *)
let sorted l = List.sort compare l
