(* The same cell deriving its generator from the campaign seed via
   Rng.derive — the sanctioned pattern, quiet with no suppression. *)

let cell seed =
  let rng = Rng.derive seed 1 in
  Rng.int rng 10
