let planted = Fractured_commit
