let sorted l = List.sort compare l
