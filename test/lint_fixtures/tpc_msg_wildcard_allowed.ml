(* lint: allow tag-wildcard — fixture: display-only classification *)
let is_prepare = function Tpc_prepare _ -> true | _ -> false
