let dump h = Hashtbl.iter (fun k v -> Printf.printf "%d=%d\n" k v) h
