let planted = Promote_lagging

(* membership tests are absolved without any annotation *)
let claims_clean faults = has_fault faults Lose_acked_window
