(* lint: allow tag-wildcard — fixture: display-only classification *)
let is_write = function Write -> true | Read -> false | _ -> false
