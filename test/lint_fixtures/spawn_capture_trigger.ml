(* P001: a ref captured by the closure handed to Domain.spawn and
   written without any guard — the canonical cross-domain data race. *)

let run () =
  let total = ref 0 in
  let d = Domain.spawn (fun () -> total := 1) in
  Domain.join d;
  !total
