(* The same shape made safe: the shared cell is an Atomic.t, so the
   cross-domain write has a sanctioned access path and P001 stays
   quiet with no suppression needed. *)

let run () =
  let total = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.set total 1) in
  Domain.join d;
  Atomic.get total
