(* lint: allow wall-clock — fixture: campaign progress logging only *)
let cell_wall () = Leopard_util.Clock.wall ()
