(* lint: allow fault-construct — fixture: constant for a table of docs *)
let worst = Dirty_read
