let die () = exit 2
