(* lint: allow fault-plane — fixture: sanctioned cross-plane peek *)
let no_faults = Fault.Set.empty
