let is_done = function Completed _ -> true | Crashed _ -> true | _ -> false
