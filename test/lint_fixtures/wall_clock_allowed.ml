(* lint: allow wall-clock — fixture: reporting-only duration *)
let started_at () = Sys.time ()
