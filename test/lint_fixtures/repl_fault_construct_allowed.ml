(* lint: allow fault-construct — fixture: planted-fault table for docs *)
let planted = Split_brain

(* membership tests are absolved without any annotation *)
let lagging faults = has_fault faults Promote_lagging
