let to_int = function Verified -> 0 | Violation -> 1 | _ -> 2
