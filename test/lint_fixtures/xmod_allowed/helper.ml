(* The same helper with a Mutex-guarded write: the summary records the
   write as guarded, so spawning callers inherit no race. *)

let bump mu tbl k = Mutex.protect mu (fun () -> Hashtbl.replace tbl k 1)
