(* The cross-module escape made safe: every write to the shared table
   happens under the mutex inside Helper.bump, so P001 stays quiet
   with no suppression needed. *)

let run () =
  let mu = Mutex.create () in
  let tbl = Hashtbl.create 16 in
  let d = Domain.spawn (fun () -> Helper.bump mu tbl "a") in
  Domain.join d;
  Hashtbl.length tbl
