(* lint: allow fault-construct — fixture: planted-fault table for docs *)
let planted = Fractured_commit

(* membership tests are absolved without any annotation *)
let skewed faults = has_fault faults Snapshot_skew
let stale t = lying t Stale_prepared_read
