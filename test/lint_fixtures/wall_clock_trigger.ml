let started_at () = Sys.time ()
