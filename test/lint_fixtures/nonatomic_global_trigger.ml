(* P002: cross-domain communication through a non-atomic module-level
   Hashtbl — every domain shares the same table by construction. *)

let registry : (string, int) Hashtbl.t = Hashtbl.create 16

let run () =
  let d = Domain.spawn (fun () -> Hashtbl.replace registry "a" 1) in
  Domain.join d;
  Hashtbl.length registry
