(* lint: allow abort-wildcard — fixture: conservative default *)
let retryable = function Deadlock_victim -> true | Fuw_conflict -> true | _ -> false
