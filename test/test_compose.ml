(* Stacked fault planes: every shard of a 2PC group runs as a full
   minidb — its own WAL behind the store and its own primary/follower
   replica set — with composed crash/failover injection.

   The invariants under test:
   - a zero-fault stacked run (shards + per-shard replicas + per-shard
     WALs, nothing faulty) is byte-identical to the unsharded,
     unreplicated path on the same seed;
   - the same seed replays the same stacked faults, stats and traces;
   - composed honest faults — coordinator crashes, participant crashes
     with WAL damage, engine restart epochs, per-shard failovers over a
     faulty replication link — never produce a false Violation;
   - an honest per-shard failover is lossless at the group level (the
     coordinator's decision log backfills the truncated suffix), so it
     neither degrades the verdict nor fabricates one;
   - the planted lies are caught as definite CR violations on the
     global trace: [Repl_fault.Promote_lagging] inside one shard's
     replica set (the failed-over shard claims a clean rebuild over a
     hole), and [Shard_fault.Fractured_commit] on a just-failed-over
     primary (the rebuilt log splices out a committed cross-shard
     slice);
   - the cross-plane degradation precedence matrix holds: the loss
     channel beats both ambiguity channels, the two ambiguity channels
     partition by first mark, and none of it masks a provable
     violation;
   - [Stack.config], [Run.shard_config] and the CLI-level
     [Cli_validate.composition] matrix reject the nonsense shapes. *)

module Run = Leopard_harness.Run
module Validate = Leopard_harness.Cli_validate
module Group = Leopard_shard.Group
module Shard_fault = Leopard_shard.Shard_fault
module Stack = Leopard_compose.Stack
module Repl_fault = Leopard_replication.Repl_fault
module Link = Leopard_net.Faulty_link
module Wal = Minidb.Wal
module Checker = Leopard.Checker
module Codec = Leopard_trace.Codec
module Rng = Leopard_util.Rng

let si = Leopard.Il_profile.postgresql_si
let x = Helpers.cell 0

let row_on shard =
  let rec go r =
    if r > 10_000 then Alcotest.fail "no row found for shard"
    else if Group.shard_of_row ~shards:2 (0, r) = shard then r
    else go (r + 1)
  in
  go 0

let cell_a = Helpers.cell (row_on 0)
let cell_b = Helpers.cell (row_on 1)

(* Hot-row read-modify-write with a heavy cross-shard share: committed
   writes land on both shards of a 2-shard ring and later reads collide
   with them, so a shard that silently loses a committed record leaves
   observable contradictions. *)
let cross_spec () =
  let next = Leopard_workload.Spec.fresh_value_counter () in
  Leopard_workload.Spec.make ~name:"cross-rmw"
    ~initial:[ (cell_a, 0); (cell_b, 0) ]
    ~next_txn:(fun rng ->
      match Rng.int rng 4 with
      | 0 ->
        Leopard_workload.Program.read [ cell_a ] (fun _ ->
            Leopard_workload.Program.write_then
              [ (cell_a, next ()) ]
              Leopard_workload.Program.finish)
      | 1 ->
        Leopard_workload.Program.read [ cell_b ] (fun _ ->
            Leopard_workload.Program.write_then
              [ (cell_b, next ()) ]
              Leopard_workload.Program.finish)
      | _ ->
        Leopard_workload.Program.read [ cell_a; cell_b ] (fun _ ->
            Leopard_workload.Program.write_then
              [ (cell_a, next ()); (cell_b, next ()) ]
              Leopard_workload.Program.finish))

let run_with ?shard ?(crash_at = []) ?(clients = 4) ?(txns = 80) ?(seed = 7)
    () =
  let cfg =
    Run.config ~clients ~seed ?shard ~crash_at ~spec:(cross_spec ())
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation ~stop:(Run.Txn_count txns) ()
  in
  Run.execute cfg

let lines outcome = List.map Codec.to_line (Run.all_traces_sorted outcome)

let repl_stats outcome =
  match outcome.Run.shard_repl with
  | Some s -> s
  | None -> Alcotest.fail "stacked run must report shard-repl stats"

(* Offline verification exactly as the CLI does it: restart epochs,
   then ambiguity marks, then failover marks (lost beats ambiguous),
   then the traces in timestamp order. *)
let check_outcome outcome =
  let checker = Checker.create si in
  List.iter
    (fun (m : Run.epoch_mark) ->
      Checker.note_restart checker ~at:m.Run.at ~replayed:m.Run.replayed
        ~damaged:m.Run.damaged)
    outcome.Run.epochs;
  List.iter
    (fun (_client, txn, _at) -> Checker.mark_coord_ambiguous checker ~txn)
    outcome.Run.coord_ambiguous;
  List.iter
    (fun (m : Codec.leader_mark) ->
      Checker.note_failover checker ~at:m.Codec.at ~epoch:m.Codec.epoch
        ~lost:m.Codec.lost)
    outcome.Run.leaders;
  List.iter (Checker.feed checker) (Run.all_traces_sorted outcome);
  Checker.finalize checker;
  Checker.report checker

let probe_duration ~clients ~txns ~seed () =
  (run_with ~clients ~txns ~seed ()).Run.sim_duration_ns

(* --- zero-fault stacking: byte identity --- *)

let zero_stack ?(followers = 2) () =
  (* replicas per shard over a disabled link with no hop: the clusters
     take their synchronous fast path — no events, no RNG draws *)
  Stack.config ~followers ()

let test_disabled_stack_is_identity () =
  let plain = run_with () in
  let shard =
    Run.shard_config ~stack:(zero_stack ())
      (Group.config ~shards:3 ~wal_faults:(Wal.fault_cfg ()) ())
  in
  let stacked = run_with ~shard () in
  Alcotest.(check (list string))
    "byte-identical traces" (lines plain) (lines stacked);
  Alcotest.(check int) "same commits" plain.Run.commits stacked.Run.commits;
  Alcotest.(check int) "same aborts" plain.Run.aborts stacked.Run.aborts;
  let sr = repl_stats stacked in
  Alcotest.(check int) "three shards replicated" 3 sr.Stack.shards;
  Alcotest.(check int) "two replicas per shard" 2 sr.Stack.followers_per_shard;
  Alcotest.(check bool) "decision feed really forwarded" true
    (sr.Stack.forwarded > 0);
  Alcotest.(check int) "synchronous fast path: no appends" 0
    sr.Stack.appends_sent;
  Alcotest.(check int) "no failovers" 0 sr.Stack.failovers;
  Alcotest.(check int) "no claimed-clean rebuilds" 0 sr.Stack.claimed_clean;
  Alcotest.(check int) "no leader marks" 0 (List.length stacked.Run.leaders);
  Alcotest.(check int) "replica logs mirror the decision feed"
    sr.Stack.forwarded sr.Stack.log_entries

let test_identity_sweep () =
  (* the acceptance bar: 50 seeds, byte-for-byte, with every layer of
     the stack (participant WALs and per-shard replicas) enabled *)
  for seed = 1 to 50 do
    let plain = lines (run_with ~txns:40 ~seed ()) in
    let shard =
      Run.shard_config ~stack:(zero_stack ~followers:1 ())
        (Group.config ~shards:2 ~wal_faults:(Wal.fault_cfg ()) ())
    in
    let stacked = lines (run_with ~shard ~txns:40 ~seed ()) in
    if plain <> stacked then
      Alcotest.failf "seed %d: stacked run diverged" seed
  done

(* --- determinism under stacked faults --- *)

let faulty_stack ~d ~seed () =
  Stack.config ~followers:2 ~hop_ns:(d / 200)
    ~link:(Link.config ~seed ~drop_prob:0.2 ~dup_prob:0.05 ~delay_prob:0.1 ())
    ~retransmit_ns:(d / 100) ~seed ()

let test_same_seed_same_faults () =
  let d = probe_duration ~clients:4 ~txns:80 ~seed:11 () in
  let mk () =
    let shard =
      Run.shard_config
        ~stack:(faulty_stack ~d ~seed:11 ())
        ~shard_failover_at:[ (d / 2, 0); (2 * d / 3, 1) ]
        ~part_crash_at:[ (d / 3, 1) ]
        (Group.config ~shards:2 ~hop_ns:(d / 500)
           ~prepare_timeout_ns:(d / 10) ~retransmit_ns:(d / 100)
           ~wal_faults:(Wal.fault_cfg ~seed:11 ~torn_tail_prob:0.4 ())
           ())
    in
    run_with ~shard ~txns:80 ~seed:11 ()
  in
  let a = mk () and b = mk () in
  Alcotest.(check (list string)) "identical traces" (lines a) (lines b);
  Alcotest.(check bool) "identical stack stats" true
    (repl_stats a = repl_stats b);
  Alcotest.(check bool) "identical leader marks" true
    (a.Run.leaders = b.Run.leaders);
  Alcotest.(check bool) "failovers really fired" true
    ((repl_stats a).Stack.failovers > 0)

(* --- composed honest faults never fabricate violations --- *)

let test_stacked_sweep_no_false_violation () =
  (* every honest channel at once: engine crash epoch (WAL replay),
     coordinator crash, participant crash with a damaged participant
     WAL, per-shard failovers over a faulty replication link *)
  let seen_failovers = ref 0 and seen_truncated = ref 0 in
  for seed = 1 to 50 do
    let d = probe_duration ~clients:4 ~txns:60 ~seed () in
    let shard =
      Run.shard_config
        ~stack:
          (Stack.config ~followers:2 ~hop_ns:(d / 100)
             ~link:(Link.config ~seed ~drop_prob:0.3 ~dup_prob:0.05 ())
             ~retransmit_ns:(d / 50) ~seed ())
        ~shard_failover_at:[ (d / 2, 0); (3 * d / 4, 1) ]
        ~coord_crash_at:[ d / 3 ]
        ~part_crash_at:[ (2 * d / 3, seed mod 2) ]
        (Group.config ~shards:2 ~hop_ns:(d / 500)
           ~prepare_timeout_ns:(d / 10) ~retransmit_ns:(d / 100)
           ~wal_faults:
             (Wal.fault_cfg ~seed ~torn_tail_prob:0.3 ~lost_fsync_prob:0.3
                ~reordered_flush_prob:0.2 ~dup_replay_prob:0.2 ())
           ())
    in
    let outcome = run_with ~shard ~crash_at:[ d / 4 ] ~txns:60 ~seed () in
    let sr = repl_stats outcome in
    seen_failovers := !seen_failovers + sr.Stack.failovers;
    (match outcome.Run.shard with
    | Some s -> seen_truncated := !seen_truncated + s.Group.wal_truncated_records
    | None -> ());
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no claimed-clean rebuilds when honest" seed)
      0 sr.Stack.claimed_clean;
    let r = check_outcome outcome in
    if r.Checker.bugs_total > 0 then
      Alcotest.failf "seed %d: false violation under honest stacked chaos"
        seed
  done;
  Alcotest.(check bool) "sweep actually failed shards over" true
    (!seen_failovers > 0)

let test_honest_stack_failover_not_violation () =
  (* the hardest honest case: the replica sets never receive a single
     append (total drop), so a failover rebuilds the shard from an
     empty survivor prefix — the coordinator's decision log must
     backfill everything, losslessly *)
  let d = probe_duration ~clients:4 ~txns:80 ~seed:3 () in
  let shard =
    Run.shard_config
      ~stack:
        (Stack.config ~followers:2 ~hop_ns:(d / 100)
           ~link:(Link.config ~seed:3 ~drop_prob:1.0 ())
           ~retransmit_ns:(d / 50) ~seed:3 ())
      ~shard_failover_at:[ (d / 2, 0) ]
      (Group.config ~shards:2 ())
  in
  let outcome = run_with ~shard ~txns:80 ~seed:3 () in
  let sr = repl_stats outcome in
  Alcotest.(check int) "one failover" 1 sr.Stack.failovers;
  Alcotest.(check int) "nothing claimed clean" 0 sr.Stack.claimed_clean;
  (* the group-level leader mark is truthfully lossless: whatever the
     cluster lost, the coordinator re-ships *)
  List.iter
    (fun (m : Codec.leader_mark) ->
      Alcotest.(check (list int)) "leader mark lossless" [] m.Codec.lost)
    outcome.Run.leaders;
  Alcotest.(check int) "one leader mark" 1 (List.length outcome.Run.leaders);
  let r = check_outcome outcome in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "loss channel untouched" 0
    r.Checker.degradation.Checker.lost_suffix_commits

(* --- planted lies are caught on the global trace --- *)

let find_violation ~mechanism ~configure () =
  let found = ref None in
  let seed = ref 1 in
  while Option.is_none !found && !seed <= 30 do
    let d = probe_duration ~clients:4 ~txns:80 ~seed:!seed () in
    let outcome = run_with ~shard:(configure ~d ~seed:!seed) ~txns:80 ~seed:!seed () in
    let r = check_outcome outcome in
    if
      r.Checker.bugs_total > 0
      && List.mem mechanism (Helpers.bug_mechanisms r)
    then found := Some (outcome, r);
    incr seed
  done;
  match !found with
  | Some pair -> pair
  | None ->
    Alcotest.failf "no seed in 1..30 produced a %s violation" mechanism

let test_promote_lagging_in_shard_detected () =
  (* one shard's replica set elects a straggler that never applied a
     thing, yet the rebuilt shard claims it is clean through the
     pre-failover cursor: the coordinator never re-ships the hole and
     committed writes silently vanish from that shard's routed reads *)
  let configure ~d ~seed =
    Run.shard_config
      ~stack:
        (Stack.config ~followers:2 ~hop_ns:(d / 100)
           ~link:(Link.config ~seed ~drop_prob:1.0 ())
           ~retransmit_ns:(d / 50)
           ~faults:[ Repl_fault.Promote_lagging ]
           ~seed ())
      ~shard_failover_at:[ (d / 2, 0) ]
      (Group.config ~shards:2 ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation);
  Alcotest.(check bool) "a rebuild really claimed clean" true
    ((repl_stats outcome).Stack.claimed_clean > 0);
  (* the lie is silent on the trace: the leader mark still says nothing
     was lost — conviction comes from the reads alone *)
  List.iter
    (fun (m : Codec.leader_mark) ->
      Alcotest.(check (list int)) "lying mark admits nothing" [] m.Codec.lost)
    outcome.Run.leaders

let test_fractured_on_failover_detected () =
  (* the failed-over primary rebuilds from a genuine survivor prefix,
     but its fractured decision log splices out the newest committed
     cross-shard record while still claiming the full prefix *)
  let configure ~d ~seed =
    Run.shard_config
      ~stack:
        (Stack.config ~followers:2 ~hop_ns:(d / 100)
           ~link:(Link.config ~seed ~drop_prob:0.3 ())
           ~retransmit_ns:(d / 50) ~seed ())
      ~shard_failover_at:[ (d / 2, 0); (2 * d / 3, 1) ]
      (Group.config ~shards:2 ~faults:[ Shard_fault.Fractured_commit ] ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation);
  Alcotest.(check bool) "a slice really was fractured" true
    (match outcome.Run.shard with
    | Some s -> s.Group.fractured > 0
    | None -> false)

let test_participant_wal_damage_stays_honest () =
  (* a participant crash tears its own WAL tail: recovery truncates to
     the clean prefix and the coordinator re-ships the gap — damage is
     catch-up lag, never a wrong serve and never a false Violation *)
  let seen_truncated = ref 0 in
  for seed = 1 to 15 do
    let d = probe_duration ~clients:4 ~txns:60 ~seed () in
    let shard =
      Run.shard_config
        ~part_crash_at:[ (d / 3, 0); (d / 2, 1); (2 * d / 3, 0) ]
        (Group.config ~shards:2
           ~wal_faults:
             (Wal.fault_cfg ~seed ~torn_tail_prob:0.5 ~lost_fsync_prob:0.5
                ~reordered_flush_prob:0.3 ~dup_replay_prob:0.3 ())
           ())
    in
    let outcome = run_with ~shard ~txns:60 ~seed () in
    (match outcome.Run.shard with
    | Some s ->
      seen_truncated := !seen_truncated + s.Group.wal_truncated_records;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: restarts really rebuilt" seed)
        true (s.Group.participant_rebuilds >= 3)
    | None -> Alcotest.fail "sharded run must report shard stats");
    let r = check_outcome outcome in
    if r.Checker.bugs_total > 0 then
      Alcotest.failf "seed %d: false violation from honest WAL damage" seed
  done;
  Alcotest.(check bool) "sweep actually truncated damaged tails" true
    (!seen_truncated > 0)

(* --- cross-plane degradation precedence matrix --- *)

(* Feed order is the CLI's: ambiguity marks first, failover marks
   second, traces last.  For every pair of channels claiming the same
   commit the documented winner owns it, the loser's counter stays at
   zero, and a resolving observation never resurrects a lost commit. *)
let degradation_of ~marks =
  let checker = Checker.create si in
  List.iter (fun mark -> mark checker) marks;
  List.iter (Checker.feed checker)
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ];
  Checker.finalize checker;
  let r = Checker.report checker in
  Alcotest.(check int) "precedence never fabricates a bug" 0
    r.Checker.bugs_total;
  r.Checker.degradation

let wire c = Checker.mark_ambiguous_commit c ~txn:1
let coord c = Checker.mark_coord_ambiguous c ~txn:1
let lost c = Checker.note_failover c ~at:50 ~epoch:2 ~lost:[ 1 ]

let test_precedence_matrix () =
  let check_counts name ~marks ~wire:w ~coord:co ~lost:l =
    let d = degradation_of ~marks in
    Alcotest.(check int) (name ^ ": wire channel") w
      d.Checker.ambiguous_commits;
    Alcotest.(check int) (name ^ ": coordinator channel") co
      d.Checker.coord_ambiguous_commits;
    Alcotest.(check int) (name ^ ": loss channel") l
      d.Checker.lost_suffix_commits
  in
  (* ambiguity channels partition by first mark — and both resolve on
     the committed observation, so the surviving counters are zero *)
  check_counts "wire then coord" ~marks:[ wire; coord ] ~wire:0 ~coord:0
    ~lost:0;
  check_counts "coord then wire" ~marks:[ coord; wire ] ~wire:0 ~coord:0
    ~lost:0;
  (* the loss channel beats either ambiguity channel: the commit is
     permanently unresolvable, so the observation resolves nothing *)
  check_counts "wire then lost" ~marks:[ wire; lost ] ~wire:0 ~coord:0
    ~lost:1;
  check_counts "coord then lost" ~marks:[ coord; lost ] ~wire:0 ~coord:0
    ~lost:1;
  check_counts "all three" ~marks:[ wire; coord; lost ] ~wire:0 ~coord:0
    ~lost:1

let test_precedence_never_masks_violation () =
  (* the same provable contradiction — a committed read observing the
     marked commit, a later committed read observing its overwritten
     past — convicts under each ambiguity channel *)
  List.iter
    (fun (name, mark) ->
      let checker = Checker.create si in
      mark checker;
      List.iter (Checker.feed checker)
        [
          Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
          Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
          Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
          Helpers.read ~txn:3 ~bef:200 ~aft:210 [ (x, 0) ];
          Helpers.commit ~txn:3 ~bef:220 ~aft:230 ();
        ];
      Checker.finalize checker;
      let r = Checker.report checker in
      Alcotest.(check bool) (name ^ ": violation still proven") true
        (r.Checker.bugs_total > 0);
      Alcotest.(check bool) (name ^ ": verdict Violation") true
        (Checker.verdict r = Checker.Violation))
    [ ("wire", wire); ("coordinator", coord) ]

(* --- configuration validation --- *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_stack_config_validation () =
  expect_invalid "zero followers" (fun () -> Stack.config ~followers:0 ());
  expect_invalid "negative hop" (fun () -> Stack.config ~hop_ns:(-1) ());
  expect_invalid "zero retransmit" (fun () ->
      Stack.config ~retransmit_ns:0 ());
  expect_invalid "negative retransmit cap" (fun () ->
      Stack.config ~max_retransmits:(-1) ());
  expect_invalid "failover without a stack" (fun () ->
      Run.shard_config ~shard_failover_at:[ (10, 0) ] (Group.config ()));
  expect_invalid "failover at instant 0" (fun () ->
      Run.shard_config ~stack:(Stack.config ())
        ~shard_failover_at:[ (0, 0) ]
        (Group.config ()));
  expect_invalid "failover shard out of range" (fun () ->
      Run.shard_config ~stack:(Stack.config ())
        ~shard_failover_at:[ (10, 2) ]
        (Group.config ~shards:2 ()))

let test_composition_validator () =
  let ok ?(net = false) ?(repl = false) ?(shards = false)
      ?(repl_per_shard = 0) ?(shard_failovers = false)
      ?(shard_repl_drop = false) () =
    Validate.composition
      {
        Validate.net;
        repl;
        shards;
        repl_per_shard;
        shard_failovers;
        shard_repl_drop;
      }
    = None
  in
  (* accepted compositions *)
  Alcotest.(check bool) "nothing" true (ok ());
  Alcotest.(check bool) "net alone" true (ok ~net:true ());
  Alcotest.(check bool) "repl alone" true (ok ~repl:true ());
  Alcotest.(check bool) "shards alone" true (ok ~shards:true ());
  Alcotest.(check bool) "shards + replicas" true
    (ok ~shards:true ~repl_per_shard:2 ());
  Alcotest.(check bool) "full stack" true
    (ok ~shards:true ~repl_per_shard:2 ~shard_failovers:true ());
  Alcotest.(check bool) "full stack + decoupled repl link" true
    (ok ~shards:true ~repl_per_shard:2 ~shard_failovers:true
       ~shard_repl_drop:true ());
  (* rejected shapes, each blamed on the right flag *)
  let flag_of p =
    match Validate.composition p with
    | Some e -> e.Validate.flag
    | None -> Alcotest.fail "expected a composition error"
  in
  let p ?(net = false) ?(repl = false) ?(shards = false)
      ?(repl_per_shard = 0) ?(shard_failovers = false)
      ?(shard_repl_drop = false) () =
    {
      Validate.net;
      repl;
      shards;
      repl_per_shard;
      shard_failovers;
      shard_repl_drop;
    }
  in
  Alcotest.(check string) "net x repl" "--net/--repl"
    (flag_of (p ~net:true ~repl:true ()));
  Alcotest.(check string) "net x shards" "--net/--shards"
    (flag_of (p ~net:true ~shards:true ()));
  Alcotest.(check string) "repl x shards" "--repl/--shards"
    (flag_of (p ~repl:true ~shards:true ()));
  Alcotest.(check string) "negative replicas" "--repl-per-shard"
    (flag_of (p ~shards:true ~repl_per_shard:(-1) ()));
  Alcotest.(check string) "replicas without shards" "--repl-per-shard"
    (flag_of (p ~repl_per_shard:2 ()));
  Alcotest.(check string) "failover without replicas" "--shard-failover-at"
    (flag_of (p ~shards:true ~shard_failovers:true ()));
  Alcotest.(check string) "repl-drop without replicas" "--shard-repl-drop"
    (flag_of (p ~shards:true ~shard_repl_drop:true ()))

let suite =
  [
    Alcotest.test_case "disabled stack is identity" `Quick
      test_disabled_stack_is_identity;
    Alcotest.test_case "50-seed stacked identity sweep" `Slow
      test_identity_sweep;
    Alcotest.test_case "same seed same stacked faults" `Quick
      test_same_seed_same_faults;
    Alcotest.test_case "stacked-fault sweep: no false violations" `Slow
      test_stacked_sweep_no_false_violation;
    Alcotest.test_case "honest stack failover is lossless" `Quick
      test_honest_stack_failover_not_violation;
    Alcotest.test_case "promote-lagging inside a shard caught (CR)" `Quick
      test_promote_lagging_in_shard_detected;
    Alcotest.test_case "fractured log on failed-over primary caught (CR)"
      `Quick test_fractured_on_failover_detected;
    Alcotest.test_case "participant WAL damage stays honest" `Quick
      test_participant_wal_damage_stays_honest;
    Alcotest.test_case "cross-plane precedence matrix" `Quick
      test_precedence_matrix;
    Alcotest.test_case "precedence never masks a violation" `Quick
      test_precedence_never_masks_violation;
    Alcotest.test_case "stack configuration validation" `Quick
      test_stack_config_validation;
    Alcotest.test_case "plane-composition validator" `Quick
      test_composition_validator;
  ]
