(* Robustness fuzzing: arbitrary well-formed trace soups must never crash
   the checker, whatever profile runs, and its counters must stay
   consistent.  (Soundness on *plausible* histories is covered by the
   integration suite; this is about total functions on hostile input.) *)

module Trace = Leopard_trace.Trace

let gen_soup =
  QCheck.Gen.(
    let cell =
      map2
        (fun r c -> Leopard_trace.Cell.make ~table:0 ~row:r ~col:c)
        (int_bound 5) (int_bound 1)
    in
    let item = map2 (fun c v -> (c, v)) cell (int_bound 6) in
    (* a pool of transactions, each with a monotone local time cursor *)
    list_size (0 -- 120)
      (pair (int_bound 7) (pair (int_bound 3) (list_size (1 -- 3) item))))

let build_traces ops =
  (* assign monotone interval starts globally; ops of one txn stay in
     order AND sequential (a real client only issues the next call after
     the previous reply); terminal state tracked so a txn never acts
     after ending *)
  let time = ref 0 in
  let ended = Hashtbl.create 8 in
  let last_aft = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun (txn, (kind, items)) ->
      if not (Hashtbl.mem ended txn) then begin
        time := !time + 1 + (txn mod 3);
        let bef =
          max !time (1 + Option.value ~default:0 (Hashtbl.find_opt last_aft txn))
        in
        let aft = bef + 1 + ((txn * 7) mod 5) in
        Hashtbl.replace last_aft txn aft;
        time := max !time bef;
        let payload =
          match kind with
          | 0 ->
            Trace.Read
              {
                items =
                  List.map (fun (cell, value) -> { Trace.cell; value }) items;
                locking = txn mod 2 = 0;
              }
          | 1 ->
            Trace.Write
              (List.map (fun (cell, value) -> { Trace.cell; value }) items)
          | 2 ->
            Hashtbl.replace ended txn ();
            Trace.Commit
          | _ ->
            Hashtbl.replace ended txn ();
            Trace.Abort
        in
        acc := { Trace.ts_bef = bef; ts_aft = aft; txn; client = txn; payload } :: !acc
      end)
    ops;
  List.rev !acc

let profiles =
  [
    Leopard.Il_profile.postgresql_serializable;
    Leopard.Il_profile.postgresql_rc;
    Leopard.Il_profile.innodb_serializable;
    Leopard.Il_profile.tidb_rr;
    Leopard.Il_profile.cockroachdb_serializable;
    Leopard.Il_profile.sqlite_serializable;
    Leopard.Il_profile.foundationdb_serializable;
  ]

let prop_no_crash =
  QCheck.Test.make ~name:"checker total on arbitrary histories" ~count:300
    (QCheck.make gen_soup)
    (fun ops ->
      let traces = build_traces ops in
      List.for_all
        (fun profile ->
          let checker = Leopard.Checker.create ~gc_every:7 profile in
          List.iter (Leopard.Checker.feed checker) traces;
          Leopard.Checker.finalize checker;
          let r = Leopard.Checker.report checker in
          r.traces = List.length traces
          && r.bugs_total >= List.length r.bugs
          && r.committed + r.aborted
             <= List.length (List.filter Trace.is_terminal traces)
          && r.final_live >= 0
          && r.peak_live >= r.final_live)
        profiles)

let prop_gc_invariant_verdicts =
  QCheck.Test.make ~name:"gc cadence never changes verdicts" ~count:150
    (QCheck.make gen_soup)
    (fun ops ->
      let traces = build_traces ops in
      let bugs gc_every =
        let checker =
          Leopard.Checker.create ~gc_every
            Leopard.Il_profile.postgresql_serializable
        in
        List.iter (Leopard.Checker.feed checker) traces;
        Leopard.Checker.finalize checker;
        (Leopard.Checker.report checker).bugs_total
      in
      bugs 0 = bugs 1 && bugs 0 = bugs 13)

let prop_codec_roundtrip_soup =
  QCheck.Test.make ~name:"codec roundtrips fuzzed histories" ~count:200
    (QCheck.make gen_soup)
    (fun ops ->
      let traces = build_traces ops in
      let lines = List.map Leopard_trace.Codec.to_line traces in
      let decoded =
        List.map
          (fun l ->
            match Leopard_trace.Codec.of_line l with
            | Ok (Some t) -> t
            | Ok None | Error _ -> raise Exit)
          lines
      in
      List.map Trace.to_string decoded = List.map Trace.to_string traces)

(* Lenient loading under line-level corruption: whatever bytes a mutated
   trace file holds — traces interleaved with E (restart), U (ambiguous
   commit), L (failover), S (shard topology) and P (2PC round) marker
   lines, all five kinds mid-stream as a stacked-plane run emits them —
   [load_lenient_all] must return (never raise), decode exactly the
   lines [entry_of_line] accepts, and report every rejected line — by
   number — as skipped.  An unmutated file skips nothing and decodes
   every marker kind with exact per-kind counts. *)
let gen_mutated_file =
  QCheck.Gen.(
    let mutation =
      (* (line pick, kind, position pick, replacement byte) *)
      quad (int_bound 200) (int_bound 3) (int_bound 80)
        (map Char.chr (32 -- 126))
    in
    pair gen_soup (list_size (0 -- 8) mutation))

let mutate_line kind pos byte line =
  let n = String.length line in
  match kind with
  | 0 when n > 0 ->
    (* flip one byte *)
    let b = Bytes.of_string line in
    Bytes.set b (pos mod n) byte;
    Bytes.to_string b
  | 1 when n > 0 -> String.sub line 0 (pos mod n) (* truncate *)
  | 2 -> String.make (1 + (pos mod 7)) byte (* replace with junk *)
  | _ -> Printf.sprintf "%c %s" byte line (* bogus directive prefix *)

let write_lines path lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let lenient_load_oracle lines =
  let path = Filename.temp_file "leopard-fuzz" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_lines path lines;
      let contents, skipped = Leopard_trace.Codec.load_lenient_all ~path in
      let expect_bad =
        List.filter_map Fun.id
          (List.mapi
             (fun i line ->
               match Leopard_trace.Codec.entry_of_line line with
               | Error _ -> Some (i + 1)
               | Ok _ -> None)
             lines)
      in
      List.map fst skipped = expect_bad
      && List.length contents.Leopard_trace.Codec.c_traces
         + List.length contents.Leopard_trace.Codec.c_epochs
         + List.length contents.Leopard_trace.Codec.c_ambiguous
         + List.length contents.Leopard_trace.Codec.c_leaders
         + List.length contents.Leopard_trace.Codec.c_shards
         + List.length contents.Leopard_trace.Codec.c_prepares
         + List.length skipped
         <= List.length lines)

let interleave_markers traces =
  (* one E and one S header, then every marker kind mid-stream — the
     line order a stacked run (shards + per-shard replicas + WAL
     epochs) actually produces; returns the per-kind marker counts so
     the clean-stream check can assert count exactness *)
  let e = ref 1 and u = ref 0 and l = ref 0 and s = ref 1 and p = ref 0 in
  let body =
    List.concat
      (List.mapi
         (fun i t ->
           let line = Leopard_trace.Codec.to_line t in
           match i mod 5 with
           | 0 ->
             incr e;
             [
               line;
               Leopard_trace.Codec.epoch_to_line
                 {
                   Leopard_trace.Codec.at = t.Trace.ts_aft;
                   epoch = !e;
                   replayed = i mod 4;
                   damaged = i mod 2;
                 };
             ]
           | 1 ->
             incr p;
             [
               line;
               Leopard_trace.Codec.prepare_to_line
                 {
                   Leopard_trace.Codec.at = t.Trace.ts_aft;
                   txn = t.Trace.txn;
                   shards = [ 0; 1 ];
                   disposition =
                     (match i mod 3 with
                     | 0 -> Leopard_trace.Codec.Committed
                     | 1 -> Leopard_trace.Codec.Aborted
                     | _ -> Leopard_trace.Codec.Unknown);
                 };
             ]
           | 2 ->
             incr u;
             [
               line;
               Leopard_trace.Codec.ambiguous_to_line
                 {
                   Leopard_trace.Codec.at = t.Trace.ts_aft;
                   txn = t.Trace.txn;
                   client = t.Trace.client;
                 };
             ]
           | 3 ->
             incr s;
             [
               line;
               Leopard_trace.Codec.shard_to_line
                 {
                   Leopard_trace.Codec.at = t.Trace.ts_aft;
                   shards = 2 + (i mod 3);
                 };
             ]
           | _ ->
             incr l;
             [
               line;
               Leopard_trace.Codec.leader_to_line
                 {
                   Leopard_trace.Codec.at = t.Trace.ts_aft;
                   epoch = 1 + (i / 5);
                   primary = i mod 3;
                   lost = (if i mod 2 = 0 then [] else [ t.Trace.txn ]);
                 };
             ])
         traces)
  in
  let lines =
    Leopard_trace.Codec.epoch_to_line
      { Leopard_trace.Codec.at = 1; epoch = 1; replayed = 0; damaged = 0 }
    :: Leopard_trace.Codec.shard_to_line
         { Leopard_trace.Codec.at = 0; shards = 2 }
    :: body
  in
  (lines, (!e, !u, !l, !s, !p))

(* The unmutated stream decodes with exact per-kind counts: no marker
   kind is silently dropped, none double-counted. *)
let clean_counts_exact lines (e, u, l, s, p) ~traces =
  let path = Filename.temp_file "leopard-fuzz" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_lines path lines;
      let contents, skipped = Leopard_trace.Codec.load_lenient_all ~path in
      skipped = []
      && List.length contents.Leopard_trace.Codec.c_traces = traces
      && List.length contents.Leopard_trace.Codec.c_epochs = e
      && List.length contents.Leopard_trace.Codec.c_ambiguous = u
      && List.length contents.Leopard_trace.Codec.c_leaders = l
      && List.length contents.Leopard_trace.Codec.c_shards = s
      && List.length contents.Leopard_trace.Codec.c_prepares = p)

let prop_lenient_total_on_mutations =
  QCheck.Test.make ~name:"lenient load total on mutated files" ~count:200
    (QCheck.make gen_mutated_file)
    (fun (ops, mutations) ->
      let traces = build_traces ops in
      let clean_lines, counts = interleave_markers traces in
      let mutated =
        List.fold_left
          (fun lines (idx, kind, pos, byte) ->
            let n = List.length lines in
            if n = 0 then lines
            else
              List.mapi
                (fun i l -> if i = idx mod n then mutate_line kind pos byte l else l)
                lines)
          clean_lines mutations
      in
      (* unmutated file: nothing skipped, per-kind counts exact *)
      (mutations <> []
      || clean_counts_exact clean_lines counts ~traces:(List.length traces))
      && lenient_load_oracle mutated)

let suite =
  [
    Helpers.qtest prop_no_crash;
    Helpers.qtest prop_gc_invariant_verdicts;
    Helpers.qtest prop_codec_roundtrip_soup;
    Helpers.qtest prop_lenient_total_on_mutations;
  ]
