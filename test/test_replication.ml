(* The replication fault plane: a primary/follower cluster whose log
   ships over the same faulty wire as client traffic, a seeded failover
   orchestrator, and checker soundness across leader changes.

   The invariants under test:
   - a disabled replication environment (no link faults, hops,
     partitions, or follower reads) is byte-identical to the
     single-node path on the same seed, in both ack modes;
   - the same replication seed replays the same faults, stats and
     traces;
   - environmental replication faults (partitions, failovers with an
     honestly-reported lost suffix, gate timeouts) never produce a
     false Violation — the verdict degrades to Inconclusive instead;
   - the planted faults make the cluster *lie*, and each lie is caught
     as a definite Violation with the advertised mechanism:
     Promote_lagging / Lose_acked_window hide lost acked commits (CR),
     Split_brain leaves two unfenced timelines committing (FUW);
   - honest follower reads are byte-identical to primary reads;
     Stale_follower_read serves behind the snapshot and is caught;
   - [Checker.note_failover]: lost commits are never resolvable, a
     lossless failover does not degrade the verdict, and "lost beats
     ambiguous". *)

module Run = Leopard_harness.Run
module Validate = Leopard_harness.Cli_validate
module Repl = Leopard_replication
module Cluster = Repl.Cluster
module Repl_fault = Repl.Repl_fault
module Link = Leopard_net.Faulty_link
module Checker = Leopard.Checker
module Trace = Leopard_trace.Trace
module Codec = Leopard_trace.Codec

let spec () = Leopard_workload.Smallbank.spec ()
let si = Leopard.Il_profile.postgresql_si
let x = Helpers.cell 0
let y = Helpers.cell 1

(* Read-modify-write over four hot cells: any two transactions that
   commit concurrent writes to the same cell are an FUW violation the
   engine itself would normally prevent — exactly what a second unfenced
   timeline or a stale replica snapshot lets slip through.  (Smallbank's
   1000 uniform accounts make such collisions too rare to observe.) *)
let hot_spec () =
  let next = Leopard_workload.Spec.fresh_value_counter () in
  let cells = Array.init 4 Helpers.cell in
  Leopard_workload.Spec.make ~name:"hot-rmw"
    ~initial:(Array.to_list (Array.map (fun c -> (c, 0)) cells))
    ~next_txn:(fun rng ->
      let c = cells.(Leopard_util.Rng.int rng 4) in
      Leopard_workload.Program.read [ c ] (fun _ ->
          Leopard_workload.Program.write_then
            [ (c, next ()) ]
            Leopard_workload.Program.finish))

let run_with ?repl ?spec:(mk = spec) ?(clients = 6) ?(txns = 200) ?(seed = 7)
    () =
  let cfg =
    Run.config ~clients ~seed ?repl ~spec:(mk ())
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Run.Txn_count txns) ()
  in
  Run.execute cfg

let lines outcome = List.map Codec.to_line (Run.all_traces_sorted outcome)

let repl_stats outcome =
  match outcome.Run.repl with
  | Some s -> s
  | None -> Alcotest.fail "replicated run must report repl stats"

(* Offline verification exactly as the CLI does it: ambiguity marks
   first, then the leader marks (note_failover strips lost commits from
   the resolvable set permanently — lost beats ambiguous), then the
   traces in timestamp order. *)
let check_outcome outcome =
  let checker = Checker.create si in
  List.iter
    (fun (_client, txn, _at) -> Checker.mark_ambiguous_commit checker ~txn)
    outcome.Run.repl_ambiguous;
  List.iter
    (fun (m : Codec.leader_mark) ->
      Checker.note_failover checker ~at:m.Codec.at ~epoch:m.Codec.epoch
        ~lost:m.Codec.lost)
    outcome.Run.leaders;
  List.iter (Checker.feed checker) (Run.all_traces_sorted outcome);
  Checker.finalize checker;
  Checker.report checker

(* The orchestrator takes absolute simulation instants; derive them
   from an unreplicated probe run of the same shape so the windows land
   mid-run regardless of workload-latency defaults. *)
let probe_duration ?spec ~clients ~txns ~seed () =
  (run_with ?spec ~clients ~txns ~seed ()).Run.sim_duration_ns

(* --- zero-fault replication: byte identity --- *)

let identity_case ack () =
  let plain = run_with () in
  let repl =
    Run.repl_config (Cluster.config ~followers:2 ~ack_mode:ack ())
  in
  let replicated = run_with ~repl () in
  Alcotest.(check (list string))
    "byte-identical traces" (lines plain) (lines replicated);
  Alcotest.(check int) "same commits" plain.Run.commits
    replicated.Run.commits;
  Alcotest.(check int) "same aborts" plain.Run.aborts replicated.Run.aborts;
  Alcotest.(check bool) "no leader marks" true (replicated.Run.leaders = []);
  Alcotest.(check bool) "no ambiguous commits" true
    (replicated.Run.repl_ambiguous = []);
  let s = repl_stats replicated in
  Alcotest.(check int) "no resends" 0 s.Cluster.resends;
  Alcotest.(check int) "no partition drops" 0 s.Cluster.partition_drops;
  Alcotest.(check int) "no gate timeouts" 0 s.Cluster.gate_timeouts;
  Alcotest.(check int) "no failovers" 0 s.Cluster.failovers;
  Alcotest.(check int) "no follower reads" 0 s.Cluster.follower_reads;
  Alcotest.(check int) "every entry fully acked" s.Cluster.log_length
    s.Cluster.min_acked;
  Alcotest.(check int) "log holds every commit" replicated.Run.commits
    s.Cluster.log_length

let test_disabled_sync_is_identity = identity_case Cluster.Sync
let test_disabled_async_is_identity = identity_case Cluster.Async

let test_identity_sweep () =
  (* the acceptance bar: 50 seeds, both ack modes, byte-for-byte *)
  for seed = 1 to 50 do
    let plain = lines (run_with ~clients:4 ~txns:40 ~seed ()) in
    List.iter
      (fun ack ->
        let repl =
          Run.repl_config (Cluster.config ~followers:1 ~ack_mode:ack ())
        in
        let replicated =
          lines (run_with ~repl ~clients:4 ~txns:40 ~seed ())
        in
        if plain <> replicated then
          Alcotest.failf "seed %d (%s): replicated run diverged" seed
            (Cluster.ack_mode_to_string ack))
      [ Cluster.Sync; Cluster.Async ]
  done

(* --- determinism under replication faults --- *)

let faulty_repl ?(seed = 11) () =
  Run.repl_config
    (Cluster.config ~followers:2 ~ack_mode:Cluster.Sync ~hop_ns:20_000
       ~link:
         (Link.config ~seed ~delay_prob:0.1 ~drop_prob:0.1 ~dup_prob:0.05
            ~reorder_prob:0.05 ())
       ())

let test_same_seed_same_faults () =
  let a = run_with ~repl:(faulty_repl ()) () in
  let b = run_with ~repl:(faulty_repl ()) () in
  Alcotest.(check (list string)) "identical traces" (lines a) (lines b);
  Alcotest.(check bool) "identical repl stats" true
    (repl_stats a = repl_stats b);
  Alcotest.(check bool) "identical ambiguity" true
    (a.Run.repl_ambiguous = b.Run.repl_ambiguous);
  Alcotest.(check bool) "identical leader marks" true
    (a.Run.leaders = b.Run.leaders);
  let s = repl_stats a in
  Alcotest.(check bool) "faults actually injected" true
    (s.Cluster.link_dropped > 0 && s.Cluster.resends > 0)

(* --- environmental faults never fabricate violations --- *)

let test_failover_sweep_no_false_violation () =
  (* partitions isolating the primary, partition-triggered promotion,
     sync gates timing out: everything here is environmental, so the
     checker may say Inconclusive but never Violation *)
  let seen_failovers = ref 0 and seen_lost = ref 0 in
  let seen_ambiguous = ref 0 in
  for seed = 1 to 50 do
    let d = probe_duration ~clients:4 ~txns:60 ~seed () in
    let cluster =
      Cluster.config ~followers:2 ~ack_mode:Cluster.Sync ~hop_ns:(d / 100)
        ~gate_timeout_ns:(d / 10)
        ~partitions:
          [ { Cluster.follower = -1; from_ns = d / 3; until_ns = 2 * d / 3 } ]
        ()
    in
    let repl =
      Run.repl_config ~promote_on_partition:true
        ~election_timeout_ns:(d / 20) cluster
    in
    let outcome = run_with ~repl ~clients:4 ~txns:60 ~seed () in
    seen_failovers := !seen_failovers + (repl_stats outcome).Cluster.failovers;
    List.iter
      (fun (m : Codec.leader_mark) ->
        seen_lost := !seen_lost + List.length m.Codec.lost)
      outcome.Run.leaders;
    seen_ambiguous :=
      !seen_ambiguous + List.length outcome.Run.repl_ambiguous;
    let r = check_outcome outcome in
    if r.Checker.bugs_total > 0 then
      Alcotest.failf "seed %d: false violation under honest failover" seed
  done;
  Alcotest.(check bool) "sweep actually promoted followers" true
    (!seen_failovers > 0);
  Alcotest.(check bool) "sweep exercised loss or ambiguity" true
    (!seen_lost > 0 || !seen_ambiguous > 0)

let test_honest_lost_suffix_is_inconclusive () =
  (* async mode with a slow hop: a mid-run promotion truncates in-flight
     acked commits, but the cluster reports them — Inconclusive with the
     loss on the books, not a Violation *)
  let found = ref false in
  let seed = ref 1 in
  while (not !found) && !seed <= 20 do
    let d = probe_duration ~clients:4 ~txns:60 ~seed:!seed () in
    let cluster =
      Cluster.config ~followers:1 ~ack_mode:Cluster.Async ~hop_ns:(d / 4) ()
    in
    let repl = Run.repl_config ~failover_at:[ d / 2 ] cluster in
    let outcome = run_with ~repl ~clients:4 ~txns:60 ~seed:!seed () in
    let lost =
      List.concat_map (fun (m : Codec.leader_mark) -> m.Codec.lost)
        outcome.Run.leaders
    in
    if lost <> [] then begin
      found := true;
      let r = check_outcome outcome in
      Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
      Alcotest.(check bool) "failover counted" true
        (r.Checker.degradation.Checker.failovers >= 1);
      Alcotest.(check int) "loss counted" (List.length lost)
        r.Checker.degradation.Checker.lost_suffix_commits;
      match Checker.verdict r with
      | Checker.Inconclusive _ -> ()
      | Checker.Verified -> Alcotest.fail "lost commits cannot verify"
      | Checker.Violation -> Alcotest.fail "honest loss is not a violation"
    end;
    incr seed
  done;
  Alcotest.(check bool) "a seed lost acked commits" true !found

(* --- planted faults are caught with the advertised mechanism --- *)

(* Search a bounded seed range for a run where the planted lie left an
   observable contradiction, and assert the checker proves it with the
   fault's expected mechanism.  The lie itself must also be checked: the
   claim-clean faults report an empty lost list even when the promotion
   truncated commits. *)
let find_violation ?spec ~mechanism ~configure () =
  let found = ref None in
  let seed = ref 1 in
  while Option.is_none !found && !seed <= 30 do
    let d = probe_duration ?spec ~clients:4 ~txns:80 ~seed:!seed () in
    let outcome =
      run_with ?spec ~repl:(configure d) ~clients:4 ~txns:80 ~seed:!seed ()
    in
    let r = check_outcome outcome in
    if
      r.Checker.bugs_total > 0
      && List.mem mechanism (Helpers.bug_mechanisms r)
    then found := Some (outcome, r);
    incr seed
  done;
  match !found with
  | Some pair -> pair
  | None ->
    Alcotest.failf "no seed in 1..30 produced a %s violation" mechanism

let test_promote_lagging_detected () =
  let configure d =
    Run.repl_config ~failover_at:[ d / 2 ]
      (Cluster.config ~followers:2 ~ack_mode:Cluster.Async ~hop_ns:(d / 100)
         ~partitions:[ { Cluster.follower = 1; from_ns = 1; until_ns = d } ]
         ~faults:[ Repl_fault.Promote_lagging ] ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation);
  (* the lie: the promotion dropped acked commits but claimed clean *)
  Alcotest.(check bool) "failover happened" true
    (outcome.Run.leaders <> []);
  List.iter
    (fun (m : Codec.leader_mark) ->
      Alcotest.(check bool) "lost suffix hidden" true (m.Codec.lost = []))
    outcome.Run.leaders

let test_lose_acked_window_detected () =
  let configure d =
    Run.repl_config ~failover_at:[ d / 2 ]
      (Cluster.config ~followers:1 ~ack_mode:Cluster.Async ~hop_ns:(d / 4)
         ~faults:[ Repl_fault.Lose_acked_window ] ())
  in
  let outcome, r = find_violation ~mechanism:"CR" ~configure () in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation);
  List.iter
    (fun (m : Codec.leader_mark) ->
      Alcotest.(check bool) "lost suffix hidden" true (m.Codec.lost = []))
    outcome.Run.leaders

let test_split_brain_detected () =
  (* the deposed brain keeps committing in-flight transactions unfenced:
     a cross-timeline pair writing the same hot cell both commit — the
     two engines are each locally correct, only the traces can tell *)
  let configure d =
    Run.repl_config ~failover_at:[ d / 2 ] ~split_brain_ns:(d / 3)
      (Cluster.config ~followers:2 ~ack_mode:Cluster.Async
         ~faults:[ Repl_fault.Split_brain ] ())
  in
  let _outcome, r =
    find_violation ~spec:hot_spec ~mechanism:"FUW" ~configure ()
  in
  Alcotest.(check bool) "verdict Violation" true
    (Checker.verdict r = Checker.Violation)

(* --- follower reads --- *)

let test_honest_follower_reads_sound () =
  (* with followers applying synchronously, a routed read serves the
     exact committed snapshot: values identical, never a violation *)
  let seen_reads = ref 0 in
  for seed = 1 to 10 do
    let repl =
      Run.repl_config
        (Cluster.config ~followers:2 ~follower_read_prob:0.5 ())
    in
    let outcome = run_with ~repl ~clients:4 ~txns:60 ~seed () in
    let s = repl_stats outcome in
    seen_reads := !seen_reads + s.Cluster.follower_reads;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no stale serves" seed)
      0 s.Cluster.stale_serves;
    let r = check_outcome outcome in
    if r.Checker.bugs_total > 0 then
      Alcotest.failf "seed %d: honest follower read violated" seed
  done;
  Alcotest.(check bool) "reads actually routed to followers" true
    (!seen_reads > 0)

let test_stale_follower_read_detected () =
  (* each transaction opens with a routable read; a stale serve hands it
     a hot-cell value already overwritten before the transaction began *)
  let seen_stale = ref 0 in
  let configure d =
    Run.repl_config
      (Cluster.config ~followers:2 ~ack_mode:Cluster.Async ~hop_ns:(d / 10)
         ~follower_read_prob:0.8 ~staleness_bound_ns:d
         ~faults:[ Repl_fault.Stale_follower_read ] ())
  in
  let found = ref false in
  let seed = ref 1 in
  while (not !found) && !seed <= 30 do
    let d = probe_duration ~spec:hot_spec ~clients:4 ~txns:80 ~seed:!seed () in
    let outcome =
      run_with ~spec:hot_spec ~repl:(configure d) ~clients:4 ~txns:80
        ~seed:!seed ()
    in
    seen_stale := !seen_stale + (repl_stats outcome).Cluster.stale_serves;
    let r = check_outcome outcome in
    if r.Checker.bugs_total > 0 then found := true;
    incr seed
  done;
  Alcotest.(check bool) "stale serves actually happened" true
    (!seen_stale > 0);
  Alcotest.(check bool) "a stale read was caught as a violation" true !found

(* --- checker-level note_failover semantics (hand-crafted traces) --- *)

let check_with_failover ?(ambiguous = []) ~lost traces =
  let checker = Checker.create si in
  List.iter (fun txn -> Checker.mark_ambiguous_commit checker ~txn) ambiguous;
  Checker.note_failover checker ~at:50 ~epoch:2 ~lost;
  List.iter (Checker.feed checker) (List.sort Trace.compare_by_bef traces);
  Checker.finalize checker;
  Checker.report checker

let test_lost_commit_never_resolves () =
  (* a later committed read observes the lost write: without the leader
     mark this resolves (proves) the commit; with it, the surviving
     timeline provably lacks txn 1, so the observation stays
     inconclusive and never becomes evidence either way *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ]
  in
  let r = check_with_failover ~lost:[ 1 ] traces in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "loss counted" 1
    r.Checker.degradation.Checker.lost_suffix_commits;
  Alcotest.(check int) "failover counted" 1
    r.Checker.degradation.Checker.failovers;
  match Checker.verdict r with
  | Checker.Inconclusive _ -> ()
  | Checker.Verified | Checker.Violation ->
    Alcotest.fail "a lost commit must degrade the verdict"

let test_read_missing_lost_commit_not_violation () =
  (* the other side of the same coin: a read NOT observing the lost
     write is equally consistent with the truncated timeline *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 0) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ]
  in
  let r = check_with_failover ~lost:[ 1 ] traces in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total

let test_lossless_failover_verifies () =
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.commit ~txn:1 ~bef:30 ~aft:40 ();
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100); (y, 0) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ]
  in
  let r = check_with_failover ~lost:[] traces in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "failover on the books" 1
    r.Checker.degradation.Checker.failovers;
  Alcotest.(check bool) "clean multi-leader trace verifies" true
    (Checker.verdict r = Checker.Verified)

let test_lost_beats_ambiguous () =
  (* txn 1 is both ambiguous (gate timeout) and in the lost suffix: the
     leader mark wins, so the observing read must NOT promote it to
     definitely-committed *)
  let traces =
    [
      Helpers.write ~txn:1 ~bef:10 ~aft:20 [ (x, 100) ];
      Helpers.read ~txn:2 ~bef:100 ~aft:110 [ (x, 100) ];
      Helpers.commit ~txn:2 ~bef:120 ~aft:130 ();
    ]
  in
  let r = check_with_failover ~ambiguous:[ 1 ] ~lost:[ 1 ] traces in
  Alcotest.(check int) "no bugs" 0 r.Checker.bugs_total;
  Alcotest.(check int) "nothing resolved" 0 r.Checker.resolved_ambiguous;
  match Checker.verdict r with
  | Checker.Inconclusive _ -> ()
  | Checker.Verified | Checker.Violation ->
    Alcotest.fail "a lost commit must stay unresolvable"

let test_note_failover_validation () =
  let checker = Checker.create si in
  (match Checker.note_failover checker ~at:(-1) ~epoch:2 ~lost:[] with
  | () -> Alcotest.fail "negative instant must be rejected"
  | exception Invalid_argument _ -> ());
  match Checker.note_failover checker ~at:10 ~epoch:0 ~lost:[] with
  | () -> Alcotest.fail "epoch 0 must be rejected"
  | exception Invalid_argument _ -> ()

(* --- CLI window validator --- *)

let test_window_validator () =
  let flag = "--repl-partition" in
  Alcotest.(check bool) "valid window accepted" true
    (Validate.window ~flag (0, 10) = None);
  Alcotest.(check bool) "negative start rejected" true
    (Option.is_some (Validate.window ~flag (-1, 10)));
  Alcotest.(check bool) "empty window rejected" true
    (Option.is_some (Validate.window ~flag (10, 10)));
  Alcotest.(check bool) "backwards window rejected" true
    (Option.is_some (Validate.window ~flag (10, 5)))

let suite =
  [
    Alcotest.test_case "disabled repl is identity (sync)" `Quick
      test_disabled_sync_is_identity;
    Alcotest.test_case "disabled repl is identity (async)" `Quick
      test_disabled_async_is_identity;
    Alcotest.test_case "50-seed identity sweep" `Slow test_identity_sweep;
    Alcotest.test_case "same seed same faults" `Quick
      test_same_seed_same_faults;
    Alcotest.test_case "failover sweep: no false violations" `Slow
      test_failover_sweep_no_false_violation;
    Alcotest.test_case "honest lost suffix is inconclusive" `Quick
      test_honest_lost_suffix_is_inconclusive;
    Alcotest.test_case "promote-lagging caught (CR)" `Quick
      test_promote_lagging_detected;
    Alcotest.test_case "lose-acked-window caught (CR)" `Quick
      test_lose_acked_window_detected;
    Alcotest.test_case "split-brain caught (FUW)" `Quick
      test_split_brain_detected;
    Alcotest.test_case "honest follower reads sound" `Quick
      test_honest_follower_reads_sound;
    Alcotest.test_case "stale follower read caught" `Quick
      test_stale_follower_read_detected;
    Alcotest.test_case "lost commit never resolves" `Quick
      test_lost_commit_never_resolves;
    Alcotest.test_case "missing lost commit is not a violation" `Quick
      test_read_missing_lost_commit_not_violation;
    Alcotest.test_case "lossless failover verifies" `Quick
      test_lossless_failover_verifies;
    Alcotest.test_case "lost beats ambiguous" `Quick test_lost_beats_ambiguous;
    Alcotest.test_case "note_failover validation" `Quick
      test_note_failover_validation;
    Alcotest.test_case "window validator" `Quick test_window_validator;
  ]
