(* Chaos-tolerant collection: seeded fault injection on the tracer path,
   graceful degradation on the verification side.

   The invariants under test:
   - chaos is deterministic: the same seed replays the same faults;
   - an all-zero chaos config is a true no-op (byte-identical traces);
   - a crashed client neither wedges the online pipeline nor produces a
     false alarm — the verdict degrades to Inconclusive;
   - indeterminate transactions are excluded from obligations, their
     observed values counted as inconclusive reads, not violations;
   - duplicate deliveries are deduplicated, not double-counted. *)

module Chaos = Leopard_harness.Chaos
module Run = Leopard_harness.Run
module Online = Leopard_harness.Online
module Checker = Leopard.Checker
module Trace = Leopard_trace.Trace
module Codec = Leopard_trace.Codec

let spec () = Leopard_workload.Smallbank.spec ()

let run_with ?chaos ?(max_retries = 0) ?(clients = 6) ?(txns = 200)
    ?(seed = 7) () =
  let cfg =
    Run.config ~clients ~seed ?chaos ~max_retries ~spec:(spec ())
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Run.Txn_count txns) ()
  in
  Run.execute cfg

let lines outcome =
  List.map Codec.to_line (Run.all_traces_sorted outcome)

let chaotic_config =
  Chaos.config ~seed:3 ~crash_prob:0.004 ~drop_prob:0.02 ~dup_prob:0.02
    ~delay_prob:0.05 ~max_delay_ns:300_000 ~clock_skew_ns:2_000 ()

let test_zero_config_is_identity () =
  let plain = run_with () in
  let nulled = run_with ~chaos:(Chaos.config ()) () in
  Alcotest.(check bool) "config is disabled" true
    (Chaos.is_disabled (Chaos.config ()));
  Alcotest.(check (list string)) "byte-identical traces" (lines plain)
    (lines nulled);
  Alcotest.(check int) "same commits" plain.Run.commits nulled.Run.commits;
  Alcotest.(check int) "same aborts" plain.Run.aborts nulled.Run.aborts;
  Alcotest.(check (list int)) "nobody crashed" [] nulled.Run.crashed_clients;
  Alcotest.(check int) "nothing dropped" 0 nulled.Run.chaos_dropped

let test_same_seed_same_faults () =
  let a = run_with ~chaos:chaotic_config () in
  let b = run_with ~chaos:chaotic_config () in
  Alcotest.(check (list string)) "identical collected traces" (lines a)
    (lines b);
  Alcotest.(check (list int)) "same crashed clients" a.Run.crashed_clients
    b.Run.crashed_clients;
  Alcotest.(check (list int)) "same indeterminate txns"
    a.Run.indeterminate_txns b.Run.indeterminate_txns;
  Alcotest.(check int) "same drops" a.Run.chaos_dropped b.Run.chaos_dropped;
  Alcotest.(check int) "same dups" a.Run.chaos_duplicated
    b.Run.chaos_duplicated;
  Alcotest.(check int) "same delays" a.Run.chaos_delayed b.Run.chaos_delayed

(* Crash-heavy online run: every client eventually dies.  The pipeline
   must still terminate (Closed_crashed releases the watermark), the
   checker must not hallucinate violations on a correct engine, and the
   verdict must degrade to Inconclusive. *)
let test_crashed_clients_online_inconclusive () =
  let cfg =
    Run.config ~clients:6 ~seed:11
      ~chaos:(Chaos.config ~seed:5 ~crash_prob:0.01 ())
      ~spec:(spec ()) ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Run.Txn_count 300) ()
  in
  let res = Online.run ~max_stall_ns:2_000_000 ~il:Leopard.Il_profile.postgresql_si cfg in
  let report = res.Online.report in
  Alcotest.(check bool) "some client crashed" true
    (res.Online.outcome.Run.crashed_clients <> []);
  Alcotest.(check int) "no false violations" 0 report.Checker.bugs_total;
  Alcotest.(check int) "crashes recorded in degradation"
    (List.length res.Online.outcome.Run.crashed_clients)
    report.Checker.degradation.Checker.crashed_clients;
  match Checker.verdict report with
  | Checker.Inconclusive _ -> ()
  | Checker.Verified -> Alcotest.fail "degraded run claimed Verified"
  | Checker.Violation -> Alcotest.fail "degraded run claimed Violation"

(* Full chaos online: lossy, duplicated, delayed, skewed AND crashing —
   still terminates, still no false alarms, still Inconclusive. *)
let test_full_chaos_online_no_false_alarms () =
  let cfg =
    Run.config ~clients:8 ~seed:13 ~chaos:chaotic_config ~spec:(spec ())
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Run.Txn_count 400) ()
  in
  let res = Online.run ~max_stall_ns:2_000_000 ~il:Leopard.Il_profile.postgresql_si cfg in
  let report = res.Online.report in
  Alcotest.(check int) "no false violations" 0 report.Checker.bugs_total;
  Alcotest.(check bool) "degradation recorded" false
    (Checker.degradation_free report.Checker.degradation);
  (match Checker.verdict report with
  | Checker.Inconclusive reason ->
    Alcotest.(check bool) "reason is human-readable" true
      (String.length reason > 0)
  | Checker.Verified | Checker.Violation ->
    Alcotest.fail "expected Inconclusive");
  (* the monitor's loss accounting reaches the report *)
  Alcotest.(check bool) "losses counted" true
    (report.Checker.degradation.Checker.lost_traces
     >= res.Online.outcome.Run.chaos_dropped)

(* Chaos must not mask real bugs: a faulty engine under a lossless
   crash-free chaos config (skew only) still gets caught. *)
let test_chaos_does_not_mask_violations () =
  let faults =
    Minidb.Fault.Set.add Minidb.Fault.No_fuw Minidb.Fault.Set.empty
  in
  let cfg =
    Run.config ~clients:8 ~seed:42 ~faults
      ~chaos:(Chaos.config ~seed:2 ~clock_skew_ns:500 ())
      ~spec:(Leopard_workload.Blindw.spec Leopard_workload.Blindw.RW)
      ~profile:Minidb.Profile.postgresql
      ~level:Minidb.Isolation.Snapshot_isolation
      ~stop:(Run.Txn_count 600) ()
  in
  let res = Online.run ~il:Leopard.Il_profile.postgresql_si cfg in
  Alcotest.(check bool) "violations still found" true
    (res.Online.report.Checker.bugs_total > 0);
  match Checker.verdict res.Online.report with
  | Checker.Violation -> ()
  | Checker.Verified | Checker.Inconclusive _ ->
    Alcotest.fail "expected Violation to dominate the verdict"

let test_retries_rerun_aborted_txns () =
  (* write-heavy + SI first-updater-wins produces engine aborts *)
  let run ~max_retries =
    let cfg =
      Run.config ~clients:8 ~seed:21 ~max_retries
        ~spec:(Leopard_workload.Blindw.spec Leopard_workload.Blindw.W)
        ~profile:Minidb.Profile.postgresql
        ~level:Minidb.Isolation.Snapshot_isolation
        ~stop:(Run.Txn_count 400) ()
    in
    Run.execute cfg
  in
  let without = run ~max_retries:0 in
  let with_r = run ~max_retries:3 in
  Alcotest.(check int) "no retries by default" 0 without.Run.retries;
  Alcotest.(check bool) "aborts exist to retry" true (with_r.Run.aborts > 0);
  Alcotest.(check bool) "retries happened" true (with_r.Run.retries > 0);
  (* retried histories stay verifiable *)
  let report =
    Helpers.check Leopard.Il_profile.postgresql_si
      (Run.all_traces_sorted with_r)
  in
  Alcotest.(check int) "retried run verifies clean" 0
    report.Checker.bugs_total

(* Every engine abort reason is retried under ~max_retries, not only
   first-updater-wins: deadlock victims (locking profiles) and certifier
   conflicts (SSI) re-run the same transaction program too. *)
let retry_scenario ~spec ~profile ~level ~max_retries =
  let cfg =
    Run.config ~clients:8 ~seed:21 ~max_retries ~spec ~profile ~level
      ~stop:(Run.Txn_count 400) ()
  in
  Run.execute cfg

let test_retries_cover_all_abort_reasons () =
  let cases =
    [
      ( "fuw victim",
        Leopard_workload.Blindw.spec Leopard_workload.Blindw.W,
        Minidb.Profile.postgresql,
        Minidb.Isolation.Snapshot_isolation,
        fun o -> o.Run.aborts_fuw );
      ( "certifier victim",
        Leopard_workload.Blindw.spec Leopard_workload.Blindw.RW,
        Minidb.Profile.cockroachdb,
        Minidb.Isolation.Serializable,
        fun o -> o.Run.aborts_certifier );
      ( "deadlock victim",
        (* few rows + multi-row blind writes in random order: classic
           lock-order cycles under 2PL *)
        Leopard_workload.Blindw.spec ~rows:50 Leopard_workload.Blindw.W,
        Minidb.Profile.innodb,
        Minidb.Isolation.Repeatable_read,
        fun o -> o.Run.aborts_deadlock );
    ]
  in
  List.iter
    (fun (name, spec, profile, level, count) ->
      let plain = retry_scenario ~spec ~profile ~level ~max_retries:0 in
      Alcotest.(check bool)
        (name ^ " aborts occur")
        true (count plain > 0);
      Alcotest.(check int) (name ^ " no retries at cap 0") 0 plain.Run.retries;
      let retried = retry_scenario ~spec ~profile ~level ~max_retries:3 in
      Alcotest.(check bool)
        (name ^ " is re-run")
        true
        (count retried > 0 && retried.Run.retries > 0))
    cases

let test_backoff_is_bounded () =
  let base = 50_000.0 in
  (* doubles per attempt ... *)
  Alcotest.(check (float 0.0)) "first retry" base
    (Run.backoff_mean_ns ~retry_backoff_ns:base ~tries:0);
  Alcotest.(check (float 0.0)) "second retry" (base *. 2.0)
    (Run.backoff_mean_ns ~retry_backoff_ns:base ~tries:1);
  let prev = ref 0.0 in
  for tries = 0 to 20 do
    let b = Run.backoff_mean_ns ~retry_backoff_ns:base ~tries in
    Alcotest.(check bool) "monotone non-decreasing" true (b >= !prev);
    prev := b
  done;
  (* ... and caps at 32x, however many attempts pile up *)
  Alcotest.(check (float 0.0)) "capped at 32x" (base *. 32.0)
    (Run.backoff_mean_ns ~retry_backoff_ns:base ~tries:1000)

(* Checker-level semantics of indeterminate transactions: a read that
   observed a crashed transaction's write is inconclusive, not a bug —
   whether the crash is declared before or after the traces arrive. *)
let cellx = Helpers.cell 0

let indeterminate_history =
  [
    Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (cellx, 1) ];
    (* client 0 crashed here: no Commit/Abort for txn 1 ever arrives *)
    Helpers.read ~client:1 ~txn:2 ~bef:30 ~aft:40 [ (cellx, 1) ];
    Helpers.commit ~client:1 ~txn:2 ~bef:50 ~aft:60 ();
  ]

let check_indeterminate ~mark_first =
  let checker = Checker.create Leopard.Il_profile.postgresql_si in
  if mark_first then Checker.mark_indeterminate checker ~txn:1;
  List.iter (Checker.feed checker) indeterminate_history;
  if not mark_first then Checker.mark_indeterminate checker ~txn:1;
  Checker.note_crashed_clients checker 1;
  Checker.finalize checker;
  Checker.report checker

let test_indeterminate_read_is_inconclusive () =
  List.iter
    (fun mark_first ->
      let report = check_indeterminate ~mark_first in
      Alcotest.(check int) "not a violation" 0 report.Checker.bugs_total;
      (* the online monitor always marks before the dependent traces are
         dispatched (mark_first); only then is the observed value still
         pending and classified as inconclusive.  A late mark must at
         least never turn the read into a false alarm. *)
      if mark_first then
        Alcotest.(check int) "counted as inconclusive" 1
          report.Checker.degradation.Checker.inconclusive_reads;
      Alcotest.(check int) "txn recorded as indeterminate" 1
        report.Checker.degradation.Checker.indeterminate_txns;
      match Checker.verdict report with
      | Checker.Inconclusive _ -> ()
      | Checker.Verified | Checker.Violation ->
        Alcotest.fail "expected Inconclusive")
    [ true; false ]

let test_duplicate_traces_deduplicated () =
  let w = Helpers.write ~client:0 ~txn:1 ~bef:10 ~aft:20 [ (cellx, 1) ] in
  let c = Helpers.commit ~client:0 ~txn:1 ~bef:30 ~aft:40 () in
  let checker = Checker.create Leopard.Il_profile.postgresql_si in
  List.iter (Checker.feed checker) [ w; w; c; c ];
  Checker.finalize checker;
  let report = Checker.report checker in
  Alcotest.(check int) "duplicates dropped" 2
    report.Checker.degradation.Checker.dup_traces_dropped;
  Alcotest.(check int) "one commit" 1 report.Checker.committed;
  Alcotest.(check int) "no violations" 0 report.Checker.bugs_total

let suite =
  [
    Alcotest.test_case "zero config is identity" `Quick
      test_zero_config_is_identity;
    Alcotest.test_case "same seed, same faults" `Quick
      test_same_seed_same_faults;
    Alcotest.test_case "crashed clients: online run inconclusive" `Quick
      test_crashed_clients_online_inconclusive;
    Alcotest.test_case "full chaos: no false alarms" `Quick
      test_full_chaos_online_no_false_alarms;
    Alcotest.test_case "chaos does not mask violations" `Quick
      test_chaos_does_not_mask_violations;
    Alcotest.test_case "retries re-run aborted txns" `Quick
      test_retries_rerun_aborted_txns;
    Alcotest.test_case "retries cover all abort reasons" `Quick
      test_retries_cover_all_abort_reasons;
    Alcotest.test_case "retry backoff is bounded" `Quick
      test_backoff_is_bounded;
    Alcotest.test_case "indeterminate read is inconclusive" `Quick
      test_indeterminate_read_is_inconclusive;
    Alcotest.test_case "duplicate traces deduplicated" `Quick
      test_duplicate_traces_deduplicated;
  ]
