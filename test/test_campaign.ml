(* Campaign robustness: the properties ISSUE 8 promises.

   - A >=1000-cell grid spanning all six fault planes sweeps to
     byte-identical results DBs under --jobs 1 and --jobs N.
   - Crash and hang cells are recorded (Crashed / Timeout) without
     aborting the sweep.
   - An interrupted campaign resumed against its checkpoint re-runs
     only the incomplete cells and still produces the same bytes.
   - A truncated or corrupted checkpoint degrades to a (partial) fresh
     start with a warning — never a crash, never a silently skipped
     cell.
   - Shrunk reproducers replay byte-for-byte, across 50 seeds of
     forced-unexpected cells.

   Cell sizes here are tiny (tens of transactions) and the workloads
   small-footprint (smallbank, blindw-rw): the properties are
   structural, not statistical, so nothing is lost by shrinking the
   cells to keep the suite fast. *)

module G = Leopard_campaign.Grid
module Runner = Leopard_campaign.Runner
module O = Leopard_campaign.Orchestrator
module Shrink = Leopard_campaign.Shrink
module Checkpoint = Leopard_campaign.Checkpoint
module Rng = Leopard_util.Rng

let si = Minidb.Isolation.Snapshot_isolation

let clazz ?(txns = 25) ?(clients = 2) ?(max_retries = 0) ?(expect = G.Any)
    cname workload plane =
  { G.cname; workload; level = si; txns; clients; max_retries; plane; expect }

(* One tiny class per fault plane — the six-plane matrix of the
   identity test. *)
let six_planes =
  [
    clazz "chaos" "blindw-rw"
      (G.Chaos { crash = 0.003; drop = 0.02; dup = 0.02; delay = 0.05 });
    clazz "recovery" "smallbank" ~max_retries:2
      (G.Recovery
         { crash_at = [ 200_000 ]; torn = 0.1; lost_fsync = 0.3;
           dup_replay = 0.2 });
    clazz "net" "blindw-rw"
      (G.Net { drop = 0.05; dup = 0.05; reset = 0.05; delay = 0.05 });
    clazz "repl" "smallbank"
      (G.Repl
         { followers = 1; sync = true; drop = 0.02; dup = 0.02;
           hop_ns = 2_000; failover_at = [] });
    clazz "shard" "blindw-rw"
      (G.Shard { shards = 2; drop = 0.0; hop_ns = 1_000; coord_crash_at = [] });
    clazz "stacked" "smallbank"
      (G.Stacked { shards = 2; per_shard = 1; hop_ns = 1_000; failover_at = [] });
  ]

let sweep ?(shrink = false) ?checkpoint ?limit ~jobs grid =
  O.run ~opts:{ O.default_opts with jobs; shrink; checkpoint; limit } grid

let json_of outcome =
  match outcome.O.json with
  | Some j -> j
  | None -> Alcotest.fail "sweep did not complete"

(* --- seed derivation ---------------------------------------------- *)

let test_derived_seeds () =
  (* positional: each index gets its own stream root, stable across
     calls and distinct across indices *)
  Alcotest.(check int)
    "derive is deterministic"
    (Rng.derive ~seed:42 ~index:7)
    (Rng.derive ~seed:42 ~index:7);
  let seeds = List.init 64 (fun i -> Rng.derive ~seed:42 ~index:i) in
  Alcotest.(check int)
    "derived seeds distinct" 64
    (List.length (List.sort_uniq Int.compare seeds));
  (* the grid's cells carry exactly these seeds, so (campaign seed,
     index) printed in a report header is a complete citation *)
  let grid = G.make ~campaign_seed:42 ~seeds_per_class:4 six_planes in
  Array.iter
    (fun (c : G.cell) ->
      Alcotest.(check int)
        (Printf.sprintf "cell %d seed" c.G.index)
        (Rng.derive ~seed:42 ~index:c.G.index)
        c.G.seed)
    (G.cells grid);
  (* and the standalone CLI line cites the derived seed verbatim *)
  let c = (G.cells grid).(5) in
  let needle = Printf.sprintf "--seed %d" c.G.seed in
  let hay = G.cli_line c in
  let n = String.length needle and h = String.length hay in
  let rec has i = i + n <= h && (String.sub hay i n = needle || has (i + 1)) in
  Alcotest.(check bool) "cli line cites derived seed" true (has 0)

(* --- serial/parallel byte identity at scale ------------------------ *)

let test_thousand_cell_identity () =
  let grid = G.make ~campaign_seed:9 ~seeds_per_class:167 six_planes in
  Alcotest.(check bool)
    ">=1000 cells" true
    (G.cell_count grid >= 1000);
  let serial = sweep ~jobs:1 grid in
  let parallel = sweep ~jobs:4 grid in
  Alcotest.(check bool) "serial complete" true serial.O.complete;
  Alcotest.(check bool) "parallel complete" true parallel.O.complete;
  Alcotest.(check string)
    "results DB byte-identical" (json_of serial) (json_of parallel)

(* --- crash isolation and step budgets ------------------------------ *)

let test_crash_and_timeout_recorded () =
  let grid =
    G.make ~campaign_seed:3 ~seeds_per_class:3
      [
        clazz "boom" "blindw-rw" ~txns:50 ~expect:G.Crash (G.Selftest_crash 5);
        clazz "wedge" "blindw-rw" ~txns:50 ~expect:G.Stall G.Selftest_hang;
        clazz "honest" "blindw-rw" ~txns:40 ~expect:G.Pass G.Baseline;
      ]
  in
  let o = sweep ~jobs:2 grid in
  Alcotest.(check bool) "sweep survives crash cells" true o.O.complete;
  Array.iter
    (fun (r : Runner.result) ->
      let kind = Runner.kind_to_string (Runner.kind_of r.Runner.outcome) in
      let expected =
        match r.Runner.cell.G.clazz.G.expect with
        | G.Crash -> "crashed"
        | G.Stall -> "timeout"
        | G.Pass | G.Fail | G.Any -> "verified"
      in
      Alcotest.(check string)
        (Printf.sprintf "cell %d kind" r.Runner.cell.G.index)
        expected kind;
      Alcotest.(check bool)
        (Printf.sprintf "cell %d expected" r.Runner.cell.G.index)
        true (Runner.is_expected r))
    o.O.results;
  (* the crash record keeps the exception text for the repro report *)
  let crashed =
    Array.to_list o.O.results
    |> List.filter_map (fun (r : Runner.result) ->
           match r.Runner.outcome with
           | Runner.Crashed { exn_text; _ } -> Some exn_text
           | Runner.Completed _ | Runner.Timeout _ -> None)
  in
  Alcotest.(check int) "three crash records" 3 (List.length crashed);
  List.iter
    (fun text ->
      Alcotest.(check bool) "exception text non-empty" true (text <> ""))
    crashed

(* --- checkpoint: resume runs only incomplete cells ----------------- *)

let test_checkpoint_resume () =
  let grid = G.make ~campaign_seed:11 ~seeds_per_class:3 six_planes in
  let n = G.cell_count grid in
  let reference = json_of (sweep ~jobs:1 grid) in
  let path = Filename.temp_file "leopard_campaign" ".ckpt" in
  (* interrupted sweep: stop after 7 cells *)
  let part = sweep ~jobs:2 ~checkpoint:path ~limit:7 grid in
  Alcotest.(check bool) "partial sweep incomplete" true (not part.O.complete);
  Alcotest.(check int) "partial ran exactly the limit" 7 part.O.fresh;
  Alcotest.(check int) "nothing resumed the first time" 0 part.O.resumed;
  (* resume: only the remaining cells run *)
  let rest = sweep ~jobs:2 ~checkpoint:path grid in
  Alcotest.(check bool) "resumed sweep complete" true rest.O.complete;
  Alcotest.(check int) "resumed the checkpointed cells" 7 rest.O.resumed;
  Alcotest.(check int) "ran only the incomplete cells" (n - 7) rest.O.fresh;
  Alcotest.(check string)
    "resumed results DB byte-identical to uninterrupted run" reference
    (json_of rest);
  Sys.remove path

(* --- checkpoint: damage degrades, never crashes -------------------- *)

let test_checkpoint_damage () =
  let grid = G.make ~campaign_seed:13 ~seeds_per_class:2 six_planes in
  let reference = json_of (sweep ~jobs:1 grid) in
  let path = Filename.temp_file "leopard_campaign" ".ckpt" in
  ignore (sweep ~jobs:1 ~checkpoint:path grid);
  let pristine =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let restore damaged =
    let oc = open_out_bin path in
    output_string oc damaged;
    close_out oc
  in
  let len = String.length pristine in
  let rng = Rng.create 99 in
  let damage_one i =
    match i mod 3 with
    | 0 ->
      (* truncate mid-file *)
      String.sub pristine 0 (1 + Rng.int rng (len - 1))
    | 1 ->
      (* flip one byte *)
      let pos = Rng.int rng len in
      let b = Bytes.of_string pristine in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
      Bytes.to_string b
    | _ ->
      (* garbage tail *)
      pristine ^ "c\t999\tdeadbeef\tnot a record\n"
  in
  for i = 0 to 17 do
    restore (damage_one i);
    let o = sweep ~jobs:1 ~checkpoint:path grid in
    (* the damaged file may cost re-runs, but never correctness: the
       sweep completes, no cell is silently skipped, and the results DB
       is the same bytes as an undamaged run's *)
    Alcotest.(check bool)
      (Printf.sprintf "damage %d: sweep completes" i)
      true o.O.complete;
    Alcotest.(check int)
      (Printf.sprintf "damage %d: every cell accounted for" i)
      (G.cell_count grid)
      (o.O.resumed + o.O.fresh);
    Alcotest.(check string)
      (Printf.sprintf "damage %d: results DB intact" i)
      reference (json_of o)
  done;
  (* a header-level mismatch (foreign fingerprint) is ignored wholesale,
     with a warning *)
  restore
    ("leopard-campaign-checkpoint v1 0000000000000000 "
    ^ string_of_int (G.cell_count grid)
    ^ "\n");
  let o = sweep ~jobs:1 ~checkpoint:path grid in
  Alcotest.(check bool)
    "foreign checkpoint: warning issued" true
    (Option.is_some o.O.checkpoint_warning);
  Alcotest.(check int) "foreign checkpoint: fresh start" 0 o.O.resumed;
  Alcotest.(check string)
    "foreign checkpoint: results DB intact" reference (json_of o);
  Sys.remove path

(* --- shrinker: reproducers replay byte-for-byte, 50 seeds ---------- *)

let test_shrinker_replays () =
  (* a forced-unexpected class: an honest baseline labeled Fail, so
     every seed verifies where a conviction was demanded *)
  let forced = clazz "mislabeled" "blindw-rw" ~txns:40 ~expect:G.Fail G.Baseline in
  for campaign_seed = 0 to 49 do
    let grid = G.make ~campaign_seed ~seeds_per_class:1 [ forced ] in
    let cell = (G.cells grid).(0) in
    let r = Runner.run cell in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d is unexpected" campaign_seed)
      false (Runner.is_expected r);
    let run c = (Runner.run c).Runner.outcome in
    let bundle = Shrink.shrink ~max_attempts:12 ~run r in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d shrank" campaign_seed)
      true
      (bundle.Shrink.shrunk.G.clazz.G.txns <= cell.G.clazz.G.txns
      && bundle.Shrink.shrunk.G.clazz.G.clients <= cell.G.clazz.G.clients);
    (* byte-for-byte: two independent replays of the shrunk cell match
       the bundle's recorded verdict and degradation line exactly *)
    Alcotest.(check bool)
      (Printf.sprintf "seed %d replay 1" campaign_seed)
      true
      (Shrink.replay ~run bundle);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d replay 2" campaign_seed)
      true
      (Shrink.same_signature bundle.Shrink.outcome (run bundle.Shrink.shrunk))
  done

(* --- orchestrator shrinks every unexpected cell automatically ------ *)

let test_orchestrator_shrinks_unexpected () =
  let grid =
    G.make ~campaign_seed:17 ~seeds_per_class:2
      [
        clazz "honest" "blindw-rw" ~txns:40 ~expect:G.Pass G.Baseline;
        clazz "mislabeled" "blindw-rw" ~txns:40 ~expect:G.Fail G.Baseline;
      ]
  in
  let o =
    O.run
      ~opts:{ O.default_opts with jobs = 2; shrink = true;
              max_shrink_attempts = 12 }
      grid
  in
  Alcotest.(check int) "both unexpected cells shrunk" 2 (List.length o.O.repros);
  List.iter
    (fun (rp : O.repro) ->
      Alcotest.(check string)
        "repro comes from the mislabeled class" "mislabeled"
        rp.O.result.Runner.cell.G.clazz.G.cname;
      let run c = (Runner.run c).Runner.outcome in
      Alcotest.(check bool) "repro replays" true (Shrink.replay ~run rp.O.bundle);
      (* the rendered report cites the derived seed and the CLI line *)
      let report = Shrink.render rp.O.bundle in
      let cites needle =
        let n = String.length needle and h = String.length report in
        let rec go i =
          i + n <= h && (String.sub report i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "report cites derived seed" true
        (cites
           (Printf.sprintf "derived seed %d" rp.O.bundle.Shrink.shrunk.G.seed));
      Alcotest.(check bool) "report cites a reproduce line" true
        (cites "reproduce : leopard "))
    o.O.repros

let suite =
  [
    Alcotest.test_case "derived seeds are positional citations" `Quick
      test_derived_seeds;
    Alcotest.test_case "crash and timeout cells recorded, sweep survives"
      `Quick test_crash_and_timeout_recorded;
    Alcotest.test_case "checkpoint resume runs only incomplete cells" `Quick
      test_checkpoint_resume;
    Alcotest.test_case "damaged checkpoint degrades, never crashes" `Quick
      test_checkpoint_damage;
    Alcotest.test_case "orchestrator shrinks unexpected cells" `Quick
      test_orchestrator_shrinks_unexpected;
    Alcotest.test_case "shrunk reproducers replay byte-for-byte (50 seeds)"
      `Slow test_shrinker_replays;
    Alcotest.test_case "1000-cell six-plane grid: serial = parallel bytes"
      `Slow test_thousand_cell_identity;
  ]
