(* leopard-lint — the repo's own static analyzer (docs/ANALYSIS.md).

   Exit codes follow the tool convention, NOT the verifier's verdict
   codes: 0 clean, 1 at least one unsuppressed finding, 2 usage / IO /
   parse error.  Argument parsing is deliberately hand-rolled: the
   linter must stay dependency-light so `dune build @lint` can gate
   every build without pulling the full CLI stack. *)

module A = Leopard_analysis

let usage =
  "usage: leopard_lint [options] PATH...\n\
   Lint OCaml sources for determinism (D), fault-plane (F),\n\
   exhaustiveness (E), parallelism/race (P) and suppression-hygiene\n\
   (S) hazards.  PATH arguments are .ml files or directories\n\
   (searched recursively; _build, .git and lint_fixtures are\n\
   skipped).\n\n\
   options:\n\
  \  --json           print the report as JSON instead of text\n\
  \  -o FILE          also write the JSON report to FILE\n\
  \  --sarif FILE     also write a SARIF 2.1.0 report to FILE\n\
  \  --cache-dir DIR  keep per-module summaries in DIR so re-lints\n\
  \                   only re-analyze changed modules and their\n\
  \                   reverse dependencies\n\
  \  --zone ZONE      force the zone for all PATHs (fixture testing);\n\
  \                   one of core|trace|minidb|harness|net|util|workload|\n\
  \                   baselines|analysis|bin|bench|examples|test\n\
  \  --list-rules     print the rule catalogue and exit\n\
  \  -q, --quiet      no output, exit code only\n\
  \  --help           this message\n\n\
   exit codes: 0 clean, 1 findings, 2 usage/parse error\n"

let die msg =
  prerr_string msg;
  exit 2

let list_rules () =
  List.iter
    (fun (r : A.Rules.t) ->
      Printf.printf "%s %-18s [%s] %s\n" r.code r.slug
        (A.Rules.group_to_string r.group)
        r.summary)
    A.Rules.all

let () =
  let json = ref false in
  let out_file = ref None in
  let sarif_file = ref None in
  let cache_dir = ref None in
  let zone = ref None in
  let quiet = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "-o" :: file :: rest ->
      out_file := Some file;
      parse rest
    | "-o" :: [] -> die "leopard_lint: -o needs a file argument\n"
    | "--sarif" :: file :: rest ->
      sarif_file := Some file;
      parse rest
    | "--sarif" :: [] -> die "leopard_lint: --sarif needs a file argument\n"
    | "--cache-dir" :: dir :: rest ->
      cache_dir := Some dir;
      parse rest
    | "--cache-dir" :: [] ->
      die "leopard_lint: --cache-dir needs a directory argument\n"
    | "--zone" :: z :: rest -> (
      match A.Zone.of_string z with
      | Some zn ->
        zone := Some zn;
        parse rest
      | None -> die (Printf.sprintf "leopard_lint: unknown zone %S\n" z))
    | "--zone" :: [] -> die "leopard_lint: --zone needs an argument\n"
    | "--list-rules" :: _ ->
      list_rules ();
      exit 0
    | ("-q" | "--quiet") :: rest ->
      quiet := true;
      parse rest
    | ("--help" | "-help" | "-h") :: _ ->
      print_string usage;
      exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      die (Printf.sprintf "leopard_lint: unknown option %s\n%s" arg usage)
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  if paths = [] then die usage;
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then
        die (Printf.sprintf "leopard_lint: no such path: %s\n" p))
    paths;
  let cache_file =
    match !cache_dir with
    | None -> None
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Some (Filename.concat dir "summaries.cache")
  in
  let summary =
    A.Driver.lint_paths ?zone:!zone ?cache_file
      ~clock:Leopard_util.Clock.wall paths
  in
  let write_to file text =
    let oc = open_out file in
    output_string oc text;
    output_char oc '\n';
    close_out oc
  in
  (match !out_file with
  | Some file -> write_to file (A.Driver.json_summary summary)
  | None -> ());
  (match !sarif_file with
  | Some file -> write_to file (A.Sarif.emit summary)
  | None -> ());
  if not !quiet then
    if !json then print_endline (A.Driver.json_summary summary)
    else Fmt.pr "%a" A.Driver.pp_summary summary;
  if summary.errors <> [] then exit 2
  else if summary.active > 0 then exit 1
  else exit 0
