(* Command-line driver: run a workload on a simulated DBMS profile and
   verify the claimed isolation level from the traces.

     dune exec bin/leopard_cli.exe -- --help
     dune exec bin/leopard_cli.exe -- -w smallbank -d postgresql -i SI -n 5000
     dune exec bin/leopard_cli.exe -- -w tpcc -d postgresql -i SR \
       --fault no-ssi --clients 24 *)

let workload_of_string = Leopard_workload.Catalog.find

let verifier_profile ~dbms ~level =
  Leopard.Il_profile.find
    (Printf.sprintf "%s/%s" dbms (Minidb.Isolation.level_to_string level))

let print_inference ~dbms traces =
  let verdicts = Leopard.Level_inference.infer ~dbms traces in
  if verdicts = [] then
    Printf.printf "inference: no profiles known for dbms %s\n" dbms
  else begin
    Printf.printf "level inference for %s:\n" dbms;
    Format.printf "%a" Leopard.Level_inference.pp_verdicts verdicts;
    match Leopard.Level_inference.strongest_passed verdicts with
    | Some p ->
      Printf.printf "strongest supported claim: %s\n" p.Leopard.Il_profile.name
    | None -> Printf.printf "no claim supported\n"
  end

(* Shared epilogue: exit 0 verified, 1 violation, 3 inconclusive (2 is
   reserved for usage errors).  Byte-identical to the historical output
   on clean, degradation-free runs. *)
let finish ~show_bugs (report : Leopard.Checker.report) =
  if report.bugs_total = 0 then begin
    match Leopard.Checker.verdict report with
    | Leopard.Checker.Inconclusive reason ->
      Printf.printf "verdict  : INCONCLUSIVE — no violations proven, but %s\n"
        reason;
      exit 3
    | Leopard.Checker.Verified | Leopard.Checker.Violation ->
      Printf.printf "verdict  : PASS — no isolation violations\n";
      exit 0
  end
  else begin
    Printf.printf "verdict  : FAIL — %d violations\n" report.bugs_total;
    List.iteri
      (fun i b ->
        if i < show_bugs then Printf.printf "  %s\n" (Leopard.Bug.to_string b))
      report.bugs;
    exit 1
  end

(* Verify a previously recorded trace file (see Leopard_trace.Codec).

   With [gc_watermark > 0] the pass runs in bounded memory: every N fed
   traces the checker is truncated at the stream watermark (the sorted
   file's own order is the watermark proof), and — when [checkpoint]
   names a file — a full snapshot frame plus the trace cursor is
   persisted.  [resume] restores the newest valid frame and continues
   from its cursor; any damage to the checkpoint degrades to a fresh
   full pass with a warning, never to a different verdict.
   [kill_after] is the crash drill: SIGKILL (no cleanup) right after
   trace N, so CI can prove kill + resume reproduces the uninterrupted
   verdict byte-for-byte. *)
let check_file ~dbms ~level ~show_bugs ~infer ~lenient ~gc_watermark
    ~checkpoint ~resume ~kill_after path =
  let level =
    match Minidb.Isolation.level_of_string level with
    | Some l -> l
    | None ->
      prerr_endline ("unknown isolation level: " ^ level);
      exit 2
  in
  let contents, skipped =
    if lenient then (
      match Leopard_trace.Codec.load_lenient_all ~path with
      | contents, skipped -> (contents, skipped)
      | exception Sys_error e ->
        prerr_endline ("cannot load " ^ path ^ ": " ^ e);
        exit 2)
    else
      match Leopard_trace.Codec.load_all ~path with
      | Ok contents -> (contents, [])
      | Error e ->
        prerr_endline ("cannot load " ^ path ^ ": " ^ e);
        exit 2
      | exception Sys_error e ->
        prerr_endline ("cannot load " ^ path ^ ": " ^ e);
        exit 2
  in
  let {
    Leopard_trace.Codec.c_traces = traces;
    c_epochs = epochs;
    c_ambiguous = ambiguous;
    c_leaders = leaders;
    c_shards = shard_marks;
    c_prepares = prepare_marks;
  } =
    contents
  in
  let il =
    match verifier_profile ~dbms ~level with
    | Some il -> il
    | None ->
      prerr_endline "no verification profile for this (dbms, level)";
      exit 2
  in
  let sorted = List.sort Leopard_trace.Trace.compare_by_bef traces in
  let total = List.length sorted in
  if infer then print_inference ~dbms sorted;
  (* The fingerprint binds a checkpoint to this exact verification: the
     profile, the checker-relevant flags, and the input file's identity
     (size + head bytes).  Resuming anything else ignores the file. *)
  let fingerprint =
    let head =
      match open_in_bin path with
      | exception Sys_error _ -> ""
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            really_input_string ic (min (in_channel_length ic) 4096))
    in
    Leopard_trace.Ckpt.fingerprint
      [
        "check"; il.Leopard.Il_profile.name;
        (if lenient then "lenient" else "strict");
        string_of_int gc_watermark; string_of_int total; head;
      ]
  in
  let resumed =
    match (resume, checkpoint) with
    | false, _ | _, None -> None
    | true, Some cpath -> (
      let frame, warning = Leopard_trace.Ckpt.load ~path:cpath ~fingerprint in
      Option.iter prerr_endline warning;
      let reject why =
        Printf.eprintf
          "checkpoint %s: %s; starting verification from scratch\n" cpath why;
        None
      in
      match frame with
      | None -> None
      | Some [] -> reject "empty snapshot frame"
      | Some (cursor_line :: snapshot) -> (
        match String.split_on_char '\t' cursor_line with
        | [ "cursor"; n ] -> (
          match int_of_string_opt n with
          | Some cursor when cursor >= 0 && cursor <= total -> (
            match Leopard.Checker.decode il snapshot with
            | Ok checker -> Some (checker, cursor)
            | Error msg -> reject (Printf.sprintf "snapshot rejected (%s)" msg))
          | Some cursor ->
            reject
              (Printf.sprintf "cursor %d outside the %d-trace file" cursor
                 total)
          | None -> reject "unparseable cursor")
        | _ -> reject "malformed cursor line"))
  in
  let checker, start_cursor =
    match resumed with
    | Some (checker, cursor) ->
      Printf.printf "resumed  : trace %d/%d from checkpoint\n" cursor total;
      (checker, cursor)
    | None -> (Leopard.Checker.create il, 0)
  in
  (* Open the writer only after any resume load: [Ckpt.writer] truncates
     the file, and each run rewrites it from its own first frame. *)
  let ckpt_writer =
    match checkpoint with
    | Some cpath -> Some (Leopard_trace.Ckpt.writer ~path:cpath ~fingerprint)
    | None -> None
  in
  let wall0 = Leopard_util.Clock.wall () in
  if start_cursor = 0 then begin
    (* The pre-trace marks mutate checker state that a snapshot already
       carries (loss tallies, ambiguity sets, failover strips), so they
       are fed exactly once — by the fresh pass, never by a resume. *)
    (* losses must be known before reads are checked, so a value whose
       write may have been on a skipped line is not misreported as a bug *)
    Leopard.Checker.note_lost_traces checker (List.length skipped);
    (* epoch markers: restarts are free, recovery damage degrades *)
    List.iter
      (fun (m : Leopard_trace.Codec.epoch_mark) ->
        Leopard.Checker.note_restart checker ~at:m.at ~replayed:m.replayed
          ~damaged:m.damaged)
      epochs;
    (* ambiguous-commit marks must land before the traces they govern, or
       the checker would treat the commit-less transaction as merely
       unterminated instead of resolvable from later reads *)
    List.iter
      (fun (m : Leopard_trace.Codec.ambiguous_mark) ->
        Leopard.Checker.mark_ambiguous_commit checker ~txn:m.txn)
      ambiguous;
    (* prepare markers with an unknown disposition are coordinator
       ambiguity — a separate degradation channel from wire ambiguity,
       fed before the traces for the same reason *)
    List.iter
      (fun (m : Leopard_trace.Codec.prepare_mark) ->
        if m.disposition = Leopard_trace.Codec.Unknown then
          Leopard.Checker.mark_coord_ambiguous checker ~txn:m.txn)
      prepare_marks;
    (* leader marks last among the marks: a commit that was both ambiguous
       on the wire and lost at failover is lost — note_failover strips it
       from the ambiguous (resolvable) set permanently *)
    List.iter
      (fun (m : Leopard_trace.Codec.leader_mark) ->
        Leopard.Checker.note_failover checker ~at:m.at ~epoch:m.epoch
          ~lost:m.lost)
      leaders
  end;
  let consumed = ref 0 in
  List.iter
    (fun (trace : Leopard_trace.Trace.t) ->
      incr consumed;
      if !consumed > start_cursor then begin
        Leopard.Checker.feed checker trace;
        (* The file is globally sorted, so after feeding trace i every
           remaining trace has ts_bef >= this one: its ts_bef IS the
           watermark, the same Theorem 1 bound the online pipeline
           computes across live sources. *)
        if gc_watermark > 0 && !consumed mod gc_watermark = 0 then begin
          Leopard.Checker.truncate checker ~watermark:trace.ts_bef;
          Option.iter
            (fun w ->
              Leopard_trace.Ckpt.append w
                (Printf.sprintf "cursor\t%d" !consumed
                :: Leopard.Checker.encode checker))
            ckpt_writer
        end;
        if kill_after > 0 && !consumed = kill_after then
          (* the drill: die as a crashed machine would — no cleanup, no
             flush, nothing but whatever the checkpoint already holds *)
          Unix.kill (Unix.getpid ()) Sys.sigkill
      end)
    sorted;
  Leopard.Checker.finalize checker;
  Option.iter Leopard_trace.Ckpt.close ckpt_writer;
  let wall = Leopard_util.Clock.wall () -. wall0 in
  let report = Leopard.Checker.report checker in
  Printf.printf "checked  : %s — %d traces, %d committed txns, %.1f ms wall\n"
    path report.traces report.committed (wall *. 1e3);
  if gc_watermark > 0 then
    Printf.printf
      "truncate : %d cut(s), %d settled dep(s) folded into totals, peak %d \
       live entries\n"
      report.truncations report.truncated_deps report.peak_live;
  if epochs <> [] then
    Printf.printf "recovery : trace spans %d server restart(s), %d wal \
                   record(s) damaged\n"
      (List.length epochs)
      (List.fold_left
         (fun acc (m : Leopard_trace.Codec.epoch_mark) -> acc + m.damaged)
         0 epochs);
  if ambiguous <> [] then
    Printf.printf
      "ambiguous: %d commit(s) with unknown outcome, %d resolved by later \
       committed reads\n"
      (List.length ambiguous) report.resolved_ambiguous;
  if leaders <> [] then
    Printf.printf "failover : trace spans %d promotion(s), %d commit(s) lost \
                   with deposed timelines\n"
      (List.length leaders)
      (List.fold_left
         (fun acc (m : Leopard_trace.Codec.leader_mark) ->
           acc + List.length m.lost)
         0 leaders);
  (match shard_marks with
  | { Leopard_trace.Codec.shards; _ } :: _ ->
    let undecided =
      List.length
        (List.filter
           (fun (m : Leopard_trace.Codec.prepare_mark) ->
             m.disposition = Leopard_trace.Codec.Unknown)
           prepare_marks)
    in
    Printf.printf
      "sharded  : %d shards, %d cross-shard round(s), %d with the \
       coordinator's decision unknown\n"
      shards
      (List.length prepare_marks)
      undecided
  | [] -> ());
  if skipped <> [] then begin
    Printf.printf "skipped  : %d undecodable line(s)\n" (List.length skipped);
    List.iteri
      (fun i (lineno, diag) ->
        if i < show_bugs then Printf.printf "  line %d: %s\n" lineno diag)
      skipped
  end;
  finish ~show_bugs report

let run_workload_mode workload dbms level faults clients txns seed show_bugs
    record infer chaos net max_retries max_stall_ns ~gc_watermark ~checkpoint
    (wal, crash_at, wal_faults) repl shard =
  match
    ( workload_of_string workload,
      Minidb.Profile.find dbms,
      Minidb.Isolation.level_of_string level )
  with
  | None, _, _ ->
    prerr_endline ("unknown workload: " ^ workload);
    exit 2
  | _, None, _ ->
    prerr_endline ("unknown dbms profile: " ^ dbms);
    exit 2
  | _, _, None ->
    prerr_endline ("unknown isolation level: " ^ level);
    exit 2
  | Some spec, Some profile, Some level ->
    if not (Minidb.Profile.supports profile level) then begin
      Printf.eprintf "%s does not offer %s; available rows:\n%s" dbms
        (Minidb.Isolation.level_to_string level)
        (Minidb.Profile.fig1_matrix ());
      exit 2
    end;
    let faults =
      List.fold_left
        (fun acc name ->
          match Minidb.Fault.of_string name with
          | Some f -> Minidb.Fault.Set.add f acc
          | None ->
            prerr_endline ("unknown fault: " ^ name);
            exit 2)
        Minidb.Fault.Set.empty faults
    in
    let il =
      match verifier_profile ~dbms ~level with
      | Some il -> il
      | None ->
        prerr_endline "no verification profile for this (dbms, level)";
        exit 2
    in
    let config =
      Leopard_harness.Run.config ~clients ~seed ~faults ?chaos ?net
        ~max_retries ~wal ~crash_at ?wal_faults ?repl ?shard ~spec ~profile
        ~level
        ~stop:(Leopard_harness.Run.Txn_count txns) ()
    in
    let codec_epochs (outcome : Leopard_harness.Run.outcome) =
      List.mapi
        (fun i (e : Leopard_harness.Run.epoch_mark) ->
          {
            Leopard_trace.Codec.at = e.at;
            epoch = i + 1;
            replayed = e.replayed;
            damaged = e.damaged;
          })
        outcome.Leopard_harness.Run.epochs
    in
    let codec_ambiguous (outcome : Leopard_harness.Run.outcome) =
      let wire =
        match outcome.Leopard_harness.Run.net with
        | Some ns -> ns.Leopard_harness.Run.ambiguous
        | None -> []
      in
      List.map
        (fun (client, txn, at) -> { Leopard_trace.Codec.at; txn; client })
        (wire @ outcome.Leopard_harness.Run.repl_ambiguous)
    in
    let header outcome =
      Printf.printf "run      : %s on %s/%s, %d clients, seed %d\n"
        spec.Leopard_workload.Spec.name dbms
        (Minidb.Isolation.level_to_string level)
        clients seed;
      if not (Minidb.Fault.Set.is_empty faults) then
        Printf.printf "faults   : %s\n"
          (String.concat ", "
             (List.map Minidb.Fault.to_string
                (Minidb.Fault.Set.elements faults)));
      Printf.printf "engine   : %d committed, %d aborted, %.1f ms simulated\n"
        outcome.Leopard_harness.Run.commits outcome.Leopard_harness.Run.aborts
        (float_of_int outcome.Leopard_harness.Run.sim_duration_ns /. 1e6);
      if max_retries > 0 then
        Printf.printf "retries  : %d aborted attempts re-run (cap %d)\n"
          outcome.Leopard_harness.Run.retries max_retries;
      if outcome.Leopard_harness.Run.restarts > 0 then
        Printf.printf
          "recovery : %d server restart(s), %d txn(s) aborted by crash, %d \
           wal record(s) appended, %d damaged\n"
          outcome.Leopard_harness.Run.restarts
          outcome.Leopard_harness.Run.aborts_crash
          outcome.Leopard_harness.Run.wal_appended
          outcome.Leopard_harness.Run.wal_damaged;
      (match outcome.Leopard_harness.Run.repl with
      | Some rs ->
        Printf.printf
          "repl     : %d append(s) (%d resent), %d delivered, %d ack(s) | %d \
           partition drop(s), %d stale drop(s), %d gate timeout(s)\n"
          rs.Leopard_replication.Cluster.appends_sent
          rs.Leopard_replication.Cluster.resends
          rs.Leopard_replication.Cluster.appends_delivered
          rs.Leopard_replication.Cluster.acks_delivered
          rs.Leopard_replication.Cluster.partition_drops
          rs.Leopard_replication.Cluster.stale_drops
          rs.Leopard_replication.Cluster.gate_timeouts;
        if
          rs.Leopard_replication.Cluster.failovers > 0
          || rs.Leopard_replication.Cluster.follower_reads > 0
        then
          Printf.printf
            "repl     : %d failover(s), %d commit(s) lost, %d follower \
             read(s) (%d stale), %d ambiguous commit(s)\n"
            rs.Leopard_replication.Cluster.failovers
            (List.fold_left
               (fun acc (m : Leopard_trace.Codec.leader_mark) ->
                 acc + List.length m.lost)
               0 outcome.Leopard_harness.Run.leaders)
            rs.Leopard_replication.Cluster.follower_reads
            rs.Leopard_replication.Cluster.stale_serves
            (List.length outcome.Leopard_harness.Run.repl_ambiguous)
      | None -> ());
      (match outcome.Leopard_harness.Run.shard with
      | Some ss ->
        Printf.printf
          "shard    : %d shards | %d fast-path, %d 2PC commit(s), %d 2PC \
           abort(s) | %d prepare(s), %d veto(es), %d timeout(s), %d \
           resend(s)\n"
          ss.Leopard_shard.Group.shards
          ss.Leopard_shard.Group.fast_path_commits
          ss.Leopard_shard.Group.tpc_commits
          ss.Leopard_shard.Group.tpc_aborts
          ss.Leopard_shard.Group.prepares_sent
          ss.Leopard_shard.Group.vetoes
          ss.Leopard_shard.Group.prep_timeouts
          ss.Leopard_shard.Group.resends;
        if
          ss.Leopard_shard.Group.coord_crashes > 0
          || ss.Leopard_shard.Group.routed_reads > 0
        then
          Printf.printf
            "shard    : %d coordinator crash(es), %d orphaned round(s), %d \
             ambiguous commit(s) | %d routed read(s) (%d skewed, %d stale)\n"
            ss.Leopard_shard.Group.coord_crashes
            ss.Leopard_shard.Group.coord_orphans
            (List.length outcome.Leopard_harness.Run.coord_ambiguous)
            ss.Leopard_shard.Group.routed_reads
            ss.Leopard_shard.Group.skew_serves
            ss.Leopard_shard.Group.stale_serves
      | None -> ());
      (match outcome.Leopard_harness.Run.shard_repl with
      | Some sr ->
        Printf.printf
          "shard    : %d replica(s)/shard | %d decision(s) forwarded, %d \
           append(s), %d ack(s) | %d failover(s) (%d claimed clean, %d \
           record(s) lost)\n"
          sr.Leopard_compose.Stack.followers_per_shard
          sr.Leopard_compose.Stack.forwarded
          sr.Leopard_compose.Stack.appends_sent
          sr.Leopard_compose.Stack.acks_delivered
          sr.Leopard_compose.Stack.failovers
          sr.Leopard_compose.Stack.claimed_clean
          sr.Leopard_compose.Stack.lost_records
      | None -> ());
      match outcome.Leopard_harness.Run.net with
      | Some ns ->
        Printf.printf
          "network  : %d reset(s), %d dropped, %d duplicated, %d delayed, %d \
           reordered | %d rejected, %d resend(s), %d give-up(s)\n"
          ns.Leopard_harness.Run.resets ns.Leopard_harness.Run.msg_dropped
          ns.Leopard_harness.Run.msg_duplicated
          ns.Leopard_harness.Run.msg_delayed
          ns.Leopard_harness.Run.msg_reordered
          ns.Leopard_harness.Run.rejected ns.Leopard_harness.Run.resends
          ns.Leopard_harness.Run.give_ups;
        if
          ns.Leopard_harness.Run.ambiguous <> []
          || ns.Leopard_harness.Run.dup_commit_acks > 0
        then
          Printf.printf
            "network  : %d ambiguous commit(s), %d duplicate commit ack(s) \
             absorbed idempotently\n"
            (List.length ns.Leopard_harness.Run.ambiguous)
            ns.Leopard_harness.Run.dup_commit_acks
      | None -> ()
    in
    let footer outcome (report : Leopard.Checker.report) =
      (match record with
      | Some path ->
        Leopard_trace.Codec.save_ext ~path
          ~ambiguous:(codec_ambiguous outcome)
          ~leaders:outcome.Leopard_harness.Run.leaders
          ~shards:outcome.Leopard_harness.Run.shard_marks
          ~prepares:outcome.Leopard_harness.Run.prepare_marks
          ~epochs:(codec_epochs outcome)
          (Leopard_harness.Run.all_traces_sorted outcome);
        Printf.printf "recorded : %s (%d traces)\n" path report.traces
      | None -> ());
      if infer then
        print_inference ~dbms (Leopard_harness.Run.all_traces_sorted outcome);
      finish ~show_bugs report
    in
    (match chaos with
    | None ->
      (* offline: collect the whole run, then verify through the shared
         harness entry point (one canonical mark-feeding order for the
         CLI, the bench and the campaign runner) *)
      let outcome = Leopard_harness.Run.execute config in
      let wall0 = Leopard_util.Clock.wall () in
      let verified = Leopard_harness.Verify.offline ~il outcome in
      let wall = Leopard_util.Clock.wall () -. wall0 in
      let report = verified.Leopard_harness.Verify.report in
      header outcome;
      Printf.printf
        "verifier : %d traces, %d reads checked, %d deps deduced, %.1f ms \
         wall\n"
        report.traces report.reads_checked report.deps_deduced (wall *. 1e3);
      Printf.printf "memory   : peak %d mirrored entries (pipeline peak %d)\n"
        report.peak_live verified.Leopard_harness.Verify.pipeline_peak;
      print_string (Leopard.Report_pp.degradation_line report.degradation);
      footer outcome report
    | Some _ ->
      (* chaotic collection: verify online so crashed clients release the
         watermark and in-flight transactions are marked indeterminate *)
      let res =
        Leopard_harness.Online.run ~max_stall_ns
          ?gc_watermark:(if gc_watermark > 0 then Some gc_watermark else None)
          ?checkpoint ~il config
      in
      let outcome = res.Leopard_harness.Online.outcome in
      let report = res.Leopard_harness.Online.report in
      header outcome;
      Printf.printf
        "chaos    : %d crashed client(s), %d indeterminate txn(s), %d \
         dropped, %d duplicated, %d delayed\n"
        (List.length outcome.Leopard_harness.Run.crashed_clients)
        (List.length outcome.Leopard_harness.Run.indeterminate_txns)
        outcome.Leopard_harness.Run.chaos_dropped
        outcome.Leopard_harness.Run.chaos_duplicated
        outcome.Leopard_harness.Run.chaos_delayed;
      Printf.printf
        "verifier : %d traces, %d reads checked, %d deps deduced, %.1f ms \
         wall (%d rounds)\n"
        report.traces report.reads_checked report.deps_deduced
        (res.Leopard_harness.Online.verify_wall_s *. 1e3)
        res.Leopard_harness.Online.rounds;
      print_string (Leopard.Report_pp.degradation_line report.degradation);
      footer outcome report)

(* Flag values arrive raw (validated BEFORE any is-disabled
   short-circuit, so "--chaos-drop 1.5" is a usage error even though the
   chaos plane would have been off); configs are only built after every
   value passed. *)
let run workload dbms level faults clients txns seed show_bugs record check
    infer chaos_raw net_raw max_retries max_stall_ns lenient ckpt_raw
    recovery_raw repl_raw shard_raw =
  let gc_watermark_v, check_checkpoint_v, resume_check_v, kill_after_v =
    ckpt_raw
  in
  let ( chaos_crash, chaos_drop, chaos_dup, chaos_delay, chaos_delay_ns,
        chaos_skew_ns, chaos_seed ) =
    chaos_raw
  in
  let ( (repl_followers, repl_ack, repl_hop_ns, repl_drop, repl_dup,
         repl_delay, repl_delay_ns, repl_reorder, repl_reorder_ns, repl_seed),
        ( repl_partitions, repl_lags, repl_failover_at, repl_promote,
          repl_election_ns, repl_split_brain_ns, repl_gate_ns,
          repl_retransmit_ns, repl_max_retransmits, repl_read_prob,
          repl_staleness_ns, repl_faults ) ) =
    repl_raw
  in
  let ( (shard_count_v, shard_hop_ns, shard_drop, shard_dup, shard_delay,
         shard_delay_ns, shard_reorder, shard_reorder_ns, shard_reset,
         shard_seed),
        ( shard_partitions, shard_crashes, shard_coord_crash_at,
          shard_prepare_ns, shard_retransmit_ns, shard_max_retransmits,
          shard_skew_ns, shard_faults, repl_per_shard, shard_failovers,
          shard_repl_faults, shard_repl_drop ) ) =
    shard_raw
  in
  let wal, crash_at, wal_torn, wal_lost, wal_reorder, wal_dup, wal_window,
      wal_seed =
    recovery_raw
  in
  let ( net_enabled, net_delay, net_delay_ns, net_drop, net_dup, net_reorder,
        net_reorder_ns, net_reset, net_seed, net_timeout_ns, net_max_tries,
        net_queue_cap, net_session_timeout_ns ) =
    net_raw
  in
  (let open Leopard_harness.Cli_validate in
   match
     first_error
       ([
         positive ~flag:"--clients" clients;
         positive ~flag:"--txns" txns;
         non_negative ~flag:"--show-bugs" show_bugs;
         non_negative ~flag:"--max-retries" max_retries;
         positive ~flag:"--max-stall-ns" max_stall_ns;
         checkpointing
           {
             gc_watermark = gc_watermark_v;
             check_checkpoint = check_checkpoint_v <> None;
             resume_check = resume_check_v;
             kill_after = kill_after_v;
             check_mode = check <> None;
           };
         prob ~flag:"--chaos-crash" chaos_crash;
         prob ~flag:"--chaos-drop" chaos_drop;
         prob ~flag:"--chaos-dup" chaos_dup;
         prob ~flag:"--chaos-delay" chaos_delay;
         non_negative ~flag:"--chaos-delay-ns" chaos_delay_ns;
         non_negative ~flag:"--chaos-skew-ns" chaos_skew_ns;
         crash_schedule ~flag:"--crash-at" crash_at;
         prob ~flag:"--wal-fault-torn" wal_torn;
         prob ~flag:"--wal-fault-lost-fsync" wal_lost;
         prob ~flag:"--wal-fault-reorder" wal_reorder;
         prob ~flag:"--wal-fault-dup" wal_dup;
         positive ~flag:"--wal-fault-window" wal_window;
         prob ~flag:"--net-fault-delay" net_delay;
         non_negative ~flag:"--net-fault-delay-ns" net_delay_ns;
         prob ~flag:"--net-fault-drop" net_drop;
         prob ~flag:"--net-fault-dup" net_dup;
         prob ~flag:"--net-fault-reorder" net_reorder;
         non_negative ~flag:"--net-fault-reorder-ns" net_reorder_ns;
         prob ~flag:"--net-fault-reset" net_reset;
         positive ~flag:"--net-timeout-ns" net_timeout_ns;
         positive ~flag:"--net-max-tries" net_max_tries;
         positive ~flag:"--net-queue-cap" net_queue_cap;
         positive ~flag:"--net-session-timeout-ns" net_session_timeout_ns;
         non_negative ~flag:"--repl" repl_followers;
         non_negative ~flag:"--repl-hop-ns" repl_hop_ns;
         prob ~flag:"--repl-drop" repl_drop;
         prob ~flag:"--repl-dup" repl_dup;
         prob ~flag:"--repl-delay" repl_delay;
         non_negative ~flag:"--repl-delay-ns" repl_delay_ns;
         prob ~flag:"--repl-reorder" repl_reorder;
         non_negative ~flag:"--repl-reorder-ns" repl_reorder_ns;
         crash_schedule ~flag:"--repl-failover-at" repl_failover_at;
         positive ~flag:"--repl-election-ns" repl_election_ns;
         positive ~flag:"--repl-split-brain-ns" repl_split_brain_ns;
         positive ~flag:"--repl-gate-timeout-ns" repl_gate_ns;
         positive ~flag:"--repl-retransmit-ns" repl_retransmit_ns;
         positive ~flag:"--repl-max-retransmits" repl_max_retransmits;
         prob ~flag:"--repl-read-prob" repl_read_prob;
         positive ~flag:"--repl-staleness-ns" repl_staleness_ns;
         shard_count ~flag:"--shards" shard_count_v;
         non_negative ~flag:"--shard-hop-ns" shard_hop_ns;
         prob ~flag:"--shard-drop" shard_drop;
         prob ~flag:"--shard-dup" shard_dup;
         prob ~flag:"--shard-delay" shard_delay;
         non_negative ~flag:"--shard-delay-ns" shard_delay_ns;
         prob ~flag:"--shard-reorder" shard_reorder;
         non_negative ~flag:"--shard-reorder-ns" shard_reorder_ns;
         prob ~flag:"--shard-reset" shard_reset;
         crash_schedule ~flag:"--shard-coord-crash-at" shard_coord_crash_at;
         positive ~flag:"--shard-prepare-timeout-ns" shard_prepare_ns;
         positive ~flag:"--shard-retransmit-ns" shard_retransmit_ns;
         non_negative ~flag:"--shard-max-retransmits" shard_max_retransmits;
         non_negative ~flag:"--shard-skew-bound-ns" shard_skew_ns;
         non_negative ~flag:"--repl-per-shard" repl_per_shard;
         prob ~flag:"--shard-repl-drop"
           (Option.value ~default:0.0 shard_repl_drop);
       ]
       @ List.map (window ~flag:"--repl-partition") repl_partitions
       @ List.map
           (fun (_f, from_ns, until_ns) ->
             window ~flag:"--repl-lag" (from_ns, until_ns))
           repl_lags
       @ List.map
           (fun (_s, from_ns, until_ns) ->
             window ~flag:"--shard-partition" (from_ns, until_ns))
           shard_partitions
       @ List.map
           (fun (_s, at) -> positive ~flag:"--shard-crash" at)
           shard_crashes
       @ List.map
           (fun (_s, at) -> positive ~flag:"--shard-failover-at" at)
           shard_failovers)
   with
   | Some e ->
     prerr_endline (error_to_string e);
     exit 2
   | None -> ());
  match check with
  | Some path ->
    check_file ~dbms ~level ~show_bugs ~infer ~lenient
      ~gc_watermark:gc_watermark_v ~checkpoint:check_checkpoint_v
      ~resume:resume_check_v ~kill_after:kill_after_v path
  | None ->
    let chaos =
      let cfg =
        Leopard_harness.Chaos.config ~seed:chaos_seed ~crash_prob:chaos_crash
          ~drop_prob:chaos_drop ~dup_prob:chaos_dup ~delay_prob:chaos_delay
          ~max_delay_ns:chaos_delay_ns ~clock_skew_ns:chaos_skew_ns ()
      in
      if Leopard_harness.Chaos.is_disabled cfg then None else Some cfg
    in
    let net =
      let fault =
        Leopard_net.Faulty_link.config ~seed:net_seed ~delay_prob:net_delay
          ~max_delay_ns:net_delay_ns ~drop_prob:net_drop ~dup_prob:net_dup
          ~reorder_prob:net_reorder ~reorder_window_ns:net_reorder_ns
          ~reset_prob:net_reset ()
      in
      (* any nonzero fault rate implies the wire, like the chaos plane;
         --net alone gives the zero-fault (byte-identical) wire *)
      if net_enabled || not (Leopard_net.Faulty_link.is_disabled fault) then
        Some
          (Leopard_harness.Run.net_config ~fault
             ~client:
               (Leopard_net.Client.config ~request_timeout_ns:net_timeout_ns
                  ~max_tries:net_max_tries ())
             ~queue_capacity:net_queue_cap
             ~session_timeout_ns:net_session_timeout_ns ())
      else None
    in
    let wal_faults =
      let cfg =
        Minidb.Wal.fault_cfg ~seed:wal_seed ~torn_tail_prob:wal_torn
          ~lost_fsync_prob:wal_lost ~lost_fsync_window:wal_window
          ~reordered_flush_prob:wal_reorder ~dup_replay_prob:wal_dup ()
      in
      if Minidb.Wal.faults_disabled cfg then None else Some cfg
    in
    let repl =
      if repl_followers = 0 then None
      else begin
        let ack_mode =
          match Leopard_replication.Cluster.ack_mode_of_string repl_ack with
          | Some m -> m
          | None ->
            prerr_endline
              ("invalid --repl-ack: " ^ repl_ack ^ " (want sync or async)");
            exit 2
        in
        let repl_faults =
          List.map
            (fun name ->
              match Leopard_replication.Repl_fault.of_string name with
              | Some f -> f
              | None ->
                prerr_endline ("unknown replication fault: " ^ name);
                exit 2)
            repl_faults
        in
        let partitions =
          List.map
            (fun (from_ns, until_ns) ->
              { Leopard_replication.Cluster.follower = -1; from_ns; until_ns })
            repl_partitions
          @ List.map
              (fun (follower, from_ns, until_ns) ->
                if follower < 0 || follower >= repl_followers then begin
                  Printf.eprintf
                    "invalid --repl-lag: follower %d out of range [0, %d)\n"
                    follower repl_followers;
                  exit 2
                end;
                { Leopard_replication.Cluster.follower; from_ns; until_ns })
              repl_lags
        in
        let cluster =
          Leopard_replication.Cluster.config ~followers:repl_followers
            ~ack_mode ~hop_ns:repl_hop_ns
            ~link:
              (Leopard_net.Faulty_link.config ~seed:repl_seed
                 ~delay_prob:repl_delay ~max_delay_ns:repl_delay_ns
                 ~drop_prob:repl_drop ~dup_prob:repl_dup
                 ~reorder_prob:repl_reorder ~reorder_window_ns:repl_reorder_ns
                 ())
            ~partitions ~gate_timeout_ns:repl_gate_ns
            ~retransmit_ns:repl_retransmit_ns
            ~max_retransmits:repl_max_retransmits
            ~follower_read_prob:repl_read_prob
            ~staleness_bound_ns:repl_staleness_ns ~faults:repl_faults
            ~seed:repl_seed ()
        in
        Some
          (Leopard_harness.Run.repl_config ~failover_at:repl_failover_at
             ~promote_on_partition:repl_promote
             ~election_timeout_ns:repl_election_ns
             ~split_brain_ns:repl_split_brain_ns cluster)
      end
    in
    (* plane-composition matrix: which fault planes may run together
       (and which flag the conflict blames) lives in [Cli_validate].
       Checked before the shard config is built — the constructors
       assert the same invariants, and a violated composition must be a
       one-line usage error, not an assertion failure. *)
    (match
       Leopard_harness.Cli_validate.composition
         {
           Leopard_harness.Cli_validate.net = net <> None;
           repl = repl <> None;
           shards = shard_count_v <> 0;
           repl_per_shard;
           shard_failovers = shard_failovers <> [];
           shard_repl_drop = shard_repl_drop <> None;
         }
     with
    | Some e ->
      prerr_endline (Leopard_harness.Cli_validate.error_to_string e);
      exit 2
    | None -> ());
    let shard =
      if shard_count_v = 0 then None
      else begin
        let faults =
          List.map
            (fun name ->
              match Leopard_shard.Shard_fault.of_string name with
              | Some f -> f
              | None ->
                prerr_endline ("unknown shard fault: " ^ name);
                exit 2)
            shard_faults
        in
        let partitions =
          List.map
            (fun (s, from_ns, until_ns) ->
              if s < -1 || s >= shard_count_v then begin
                Printf.eprintf
                  "invalid --shard-partition: shard %d out of range [0, %d) \
                   (-1 for all)\n"
                  s shard_count_v;
                exit 2
              end;
              { Leopard_shard.Group.shard = s; from_ns; until_ns })
            shard_partitions
        in
        let part_crash_at =
          List.map
            (fun (s, at) ->
              if s < 0 || s >= shard_count_v then begin
                Printf.eprintf
                  "invalid --shard-crash: shard %d out of range [0, %d)\n" s
                  shard_count_v;
                exit 2
              end;
              (at, s))
            shard_crashes
        in
        let shard_failover_at =
          List.map
            (fun (s, at) ->
              if s < 0 || s >= shard_count_v then begin
                Printf.eprintf
                  "invalid --shard-failover-at: shard %d out of range \
                   [0, %d)\n"
                  s shard_count_v;
                exit 2
              end;
              (at, s))
            shard_failovers
        in
        let link =
          Leopard_net.Faulty_link.config ~seed:shard_seed
            ~delay_prob:shard_delay ~max_delay_ns:shard_delay_ns
            ~drop_prob:shard_drop ~dup_prob:shard_dup
            ~reorder_prob:shard_reorder ~reorder_window_ns:shard_reorder_ns
            ~reset_prob:shard_reset ()
        in
        let group =
          Leopard_shard.Group.config ~shards:shard_count_v
            ~hop_ns:shard_hop_ns ~link ~partitions
            ~prepare_timeout_ns:shard_prepare_ns
            ~retransmit_ns:shard_retransmit_ns
            ~max_retransmits:shard_max_retransmits
            ~skew_bound_ns:shard_skew_ns ~faults ?wal_faults ()
        in
        let stack =
          if repl_per_shard = 0 then None
          else begin
            let stack_faults =
              List.map
                (fun name ->
                  match Leopard_replication.Repl_fault.of_string name with
                  | Some f -> f
                  | None ->
                    prerr_endline ("unknown replication fault: " ^ name);
                    exit 2)
                shard_repl_faults
            in
            (* the per-shard replica sets reuse the shard wire's fault
               rates and hop unless --shard-repl-drop decouples them;
               Stack derives a distinct link seed per shard so no
               cluster shares a stream with the protocol *)
            let stack_link =
              match shard_repl_drop with
              | None -> link
              | Some drop_prob ->
                Leopard_net.Faulty_link.config ~seed:shard_seed
                  ~delay_prob:shard_delay ~max_delay_ns:shard_delay_ns
                  ~drop_prob ~dup_prob:shard_dup ~reorder_prob:shard_reorder
                  ~reorder_window_ns:shard_reorder_ns
                  ~reset_prob:shard_reset ()
            in
            Some
              (Leopard_compose.Stack.config ~followers:repl_per_shard
                 ~hop_ns:shard_hop_ns ~link:stack_link
                 ~retransmit_ns:shard_retransmit_ns
                 ~max_retransmits:shard_max_retransmits ~faults:stack_faults
                 ~seed:shard_seed ())
          end
        in
        Some
          (Leopard_harness.Run.shard_config
             ~coord_crash_at:shard_coord_crash_at ~part_crash_at ?stack
             ~shard_failover_at group)
      end
    in
    run_workload_mode workload dbms level faults clients txns seed show_bugs
      record infer chaos net max_retries max_stall_ns
      ~gc_watermark:gc_watermark_v ~checkpoint:check_checkpoint_v
      (wal, crash_at, wal_faults)
      repl shard

open Cmdliner

let workload =
  Arg.(
    value & opt string "blindw-rw"
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:
          "Workload: ycsb, ycsb+t, tatp, blindw-w, blindw-rw, blindw-rw+, \
           smallbank, tpcc.")

let dbms =
  Arg.(
    value & opt string "postgresql"
    & info [ "d"; "dbms" ] ~docv:"PROFILE"
        ~doc:
          "DBMS profile under test: postgresql, innodb, tidb, cockroachdb, \
           sqlite, foundationdb, oracle.")

let level =
  Arg.(
    value & opt string "SR"
    & info [ "i"; "isolation" ] ~docv:"LEVEL"
        ~doc:"Claimed isolation level: RC, RR, SI or SR.")

let faults =
  Arg.(
    value & opt_all string []
    & info [ "fault" ] ~docv:"FAULT"
        ~doc:"Inject a named engine fault (repeatable); see DESIGN.md (4).")

let clients =
  Arg.(value & opt int 16 & info [ "clients" ] ~doc:"Concurrent clients.")

let txns =
  Arg.(value & opt int 2000 & info [ "n"; "txns" ] ~doc:"Transactions to run.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let show_bugs =
  Arg.(
    value & opt int 5 & info [ "show-bugs" ] ~doc:"Violations to print on FAIL.")

let record =
  Arg.(
    value
    & opt (some string) None
    & info [ "record" ] ~docv:"FILE"
        ~doc:"Save the run's traces to $(docv) (leopard-trace v1 format).")

let check =
  Arg.(
    value
    & opt (some string) None
    & info [ "check" ] ~docv:"FILE"
        ~doc:
          "Skip running a workload: verify a previously recorded trace file \
           against the claimed --dbms/--isolation profile.")

let infer =
  Arg.(
    value & flag
    & info [ "infer" ]
        ~doc:
          "Additionally report, for every isolation level the --dbms \
           offers, whether the history supports that claim (level \
           inference).")

let gc_watermark =
  Arg.(
    value & opt int 0
    & info [ "gc-watermark" ] ~docv:"N"
        ~doc:
          "Bounded-memory verification: truncate the checker's mirrored \
           state every N verified traces at the stream watermark, so \
           memory stays proportional to the active window instead of the \
           whole history.  Verdicts are unchanged.  0 disables (the \
           default, full-history mode).")

let check_checkpoint =
  Arg.(
    value & opt (some string) None
    & info [ "check-checkpoint" ] ~docv:"FILE"
        ~doc:
          "Write a crash-safe checker snapshot to $(docv) after every \
           truncation (requires --gc-watermark).  A verification killed \
           mid-stream resumes from the last complete snapshot with \
           --resume-check instead of restarting from trace zero.")

let resume_check =
  Arg.(
    value & flag
    & info [ "resume-check" ]
        ~doc:
          "With --check and --check-checkpoint: restore the checker from \
           the newest valid snapshot frame and continue from its trace \
           cursor.  A missing, foreign or damaged checkpoint degrades to \
           a fresh full pass with a warning — the verdict is the same \
           either way.")

let check_kill_after =
  Arg.(
    value & opt int 0
    & info [ "check-kill-after" ] ~docv:"N"
        ~doc:
          "Crash drill for the resume path: SIGKILL this process (no \
           cleanup, no flush) immediately after verifying trace N, as a \
           crashed machine would.  Pair with --resume-check on the next \
           invocation to prove the verdict survives.  0 disables.")

let chaos_crash =
  Arg.(
    value & opt float 0.0
    & info [ "chaos-crash" ] ~docv:"PROB"
        ~doc:"Per-operation probability that a client crashes.")

let chaos_drop =
  Arg.(
    value & opt float 0.0
    & info [ "chaos-drop" ] ~docv:"PROB"
        ~doc:"Per-trace probability of delivery loss on the collection path.")

let chaos_dup =
  Arg.(
    value & opt float 0.0
    & info [ "chaos-dup" ] ~docv:"PROB"
        ~doc:"Per-trace probability of duplicate delivery.")

let chaos_delay =
  Arg.(
    value & opt float 0.0
    & info [ "chaos-delay" ] ~docv:"PROB"
        ~doc:"Per-trace probability of delayed delivery.")

let chaos_delay_ns =
  Arg.(
    value & opt int 500_000
    & info [ "chaos-delay-ns" ] ~docv:"NS"
        ~doc:"Upper bound on injected delivery delay (simulated ns).")

let chaos_skew_ns =
  Arg.(
    value & opt int 0
    & info [ "chaos-skew-ns" ] ~docv:"NS"
        ~doc:"Per-client clock skew magnitude bound (simulated ns).")

let chaos_seed =
  Arg.(
    value & opt int 1
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:"Seed of the chaos decision streams (independent of --seed).")

(* raw values only — validation and construction happen in [run], after
   every flag can be checked in one pass *)
let chaos_term =
  let make crash drop dup delay delay_ns skew_ns cseed =
    (crash, drop, dup, delay, delay_ns, skew_ns, cseed)
  in
  Cmdliner.Term.(
    const make $ chaos_crash $ chaos_drop $ chaos_dup $ chaos_delay
    $ chaos_delay_ns $ chaos_skew_ns $ chaos_seed)

let net_flag =
  Arg.(
    value & flag
    & info [ "net" ]
        ~doc:
          "Run the workload through the wire layer: requests travel as \
           serialized messages through a seeded faulty link to per-session \
           server queues, with timeouts, bounded retries and idempotent \
           commit tokens.  Implied by any nonzero --net-fault-* rate; with \
           all rates zero the traces are byte-identical to the in-process \
           path for the same --seed.")

let net_fault_delay =
  Arg.(
    value & opt float 0.0
    & info [ "net-fault-delay" ] ~docv:"PROB"
        ~doc:"Per-message probability of extra wire latency.")

let net_fault_delay_ns =
  Arg.(
    value & opt int 400_000
    & info [ "net-fault-delay-ns" ] ~docv:"NS"
        ~doc:"Upper bound on injected extra wire latency (simulated ns).")

let net_fault_drop =
  Arg.(
    value & opt float 0.0
    & info [ "net-fault-drop" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of silent loss (the sender only learns \
           via timeout).")

let net_fault_dup =
  Arg.(
    value & opt float 0.0
    & info [ "net-fault-dup" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of duplicate delivery (retried COMMITs \
           are absorbed by idempotent commit tokens).")

let net_fault_reorder =
  Arg.(
    value & opt float 0.0
    & info [ "net-fault-reorder" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of delivery at a random point inside the \
           reordering window.")

let net_fault_reorder_ns =
  Arg.(
    value & opt int 200_000
    & info [ "net-fault-reorder-ns" ] ~docv:"NS"
        ~doc:"Size of the reordering window (simulated ns).")

let net_fault_reset =
  Arg.(
    value & opt float 0.0
    & info [ "net-fault-reset" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of a connection reset: the message is \
           lost and the sender finds out (a reset COMMIT acknowledgement is \
           an ambiguous commit).")

let net_fault_seed =
  Arg.(
    value & opt int 1
    & info [ "net-fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the wire fault streams (independent of --seed, \
           --chaos-seed and --wal-fault-seed).")

let net_timeout_ns =
  Arg.(
    value & opt int 2_000_000
    & info [ "net-timeout-ns" ] ~docv:"NS"
        ~doc:"Per-attempt request timeout before a retransmission.")

let net_max_tries =
  Arg.(
    value & opt int 3
    & info [ "net-max-tries" ] ~docv:"N"
        ~doc:
          "Send attempts per request before the client gives up (a given-up \
           COMMIT is recorded as an ambiguous outcome).")

let net_queue_cap =
  Arg.(
    value & opt int 64
    & info [ "net-queue-cap" ] ~docv:"N"
        ~doc:
          "Per-session server queue bound; requests beyond it are load-shed \
           with a definite rejection.")

let net_session_timeout_ns =
  Arg.(
    value & opt int 1_000_000
    & info [ "net-session-timeout-ns" ] ~docv:"NS"
        ~doc:
          "How long the server keeps an orphaned transaction (client gave \
           up) before reaping it with an abort.")

let net_term =
  let make enabled delay delay_ns drop dup reorder reorder_ns reset nseed
      timeout_ns max_tries queue_cap session_timeout_ns =
    ( enabled, delay, delay_ns, drop, dup, reorder, reorder_ns, reset, nseed,
      timeout_ns, max_tries, queue_cap, session_timeout_ns )
  in
  Cmdliner.Term.(
    const make $ net_flag $ net_fault_delay $ net_fault_delay_ns
    $ net_fault_drop $ net_fault_dup $ net_fault_reorder
    $ net_fault_reorder_ns $ net_fault_reset $ net_fault_seed $ net_timeout_ns
    $ net_max_tries $ net_queue_cap $ net_session_timeout_ns)

let max_retries =
  Arg.(
    value & opt int 0
    & info [ "max-retries" ] ~docv:"N"
        ~doc:
          "Re-run a transaction program up to $(docv) times when the engine \
           aborts it (deadlock victim, first-updater-wins, certifier), with \
           bounded exponential backoff.")

let max_stall_ns =
  Arg.(
    value & opt int 2_000_000
    & info [ "max-stall-ns" ] ~docv:"NS"
        ~doc:
          "Chaos mode: how long (simulated ns) an empty-but-live client \
           stream may pin the dispatch watermark before being treated as \
           stalled.")

let wal_flag =
  Arg.(
    value & flag
    & info [ "wal" ]
        ~doc:
          "Run the engine with the write-ahead log enabled (implied by \
           --crash-at and by any --wal-fault-* probability).")

let crash_at =
  Arg.(
    value & opt_all int []
    & info [ "crash-at" ] ~docv:"NS"
        ~doc:
          "Crash the server at simulated instant $(docv) and recover from \
           the write-ahead log (repeatable: each instant is one \
           crash-recovery epoch).  In-flight transactions are aborted with \
           server-crash; clients retry under --max-retries.")

let wal_fault_torn =
  Arg.(
    value & opt float 0.0
    & info [ "wal-fault-torn" ] ~docv:"PROB"
        ~doc:
          "Per-crash probability that the tail WAL record is torn: a \
           committed transaction recovers with only part of its write set.")

let wal_fault_lost =
  Arg.(
    value & opt float 0.0
    & info [ "wal-fault-lost-fsync" ] ~docv:"PROB"
        ~doc:
          "Per-crash probability that an fsync window of the newest commit \
           records is lost: those transactions vanish on recovery.")

let wal_fault_reorder =
  Arg.(
    value & opt float 0.0
    & info [ "wal-fault-reorder" ] ~docv:"PROB"
        ~doc:
          "Per-crash probability that a reordered flush persisted newer \
           records but lost an older one: a mid-log commit vanishes while \
           later commits survive.")

let wal_fault_dup =
  Arg.(
    value & opt float 0.0
    & info [ "wal-fault-dup" ] ~docv:"PROB"
        ~doc:
          "Per-crash probability that recovery replays a superseded commit \
           record twice, resurrecting an overwritten version as newest \
           (a recovered lost update).")

let wal_fault_window =
  Arg.(
    value & opt int 3
    & info [ "wal-fault-window" ] ~docv:"N"
        ~doc:"Size bound of the lost-fsync / reordered-flush window.")

let wal_fault_seed =
  Arg.(
    value & opt int 0
    & info [ "wal-fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the durability-fault stream (independent of --seed and \
           --chaos-seed).")

let recovery_term =
  let make wal crash_at torn lost reorder dup window fseed =
    (wal, crash_at, torn, lost, reorder, dup, window, fseed)
  in
  Cmdliner.Term.(
    const make $ wal_flag $ crash_at $ wal_fault_torn $ wal_fault_lost
    $ wal_fault_reorder $ wal_fault_dup $ wal_fault_window $ wal_fault_seed)

(* FROM:UNTIL simulated-ns window, e.g. --repl-partition 2000000:4000000 *)
let window_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
      try Ok (int_of_string a, int_of_string b)
      with Failure _ -> Error (`Msg ("bad window " ^ s)))
    | _ -> Error (`Msg ("expected FROM:UNTIL, got " ^ s))
  in
  let print ppf (a, b) = Format.fprintf ppf "%d:%d" a b in
  Arg.conv (parse, print)

(* FOLLOWER:FROM:UNTIL, e.g. --repl-lag 0:1000000:3000000 *)
let lag_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ f; a; b ] -> (
      try Ok (int_of_string f, int_of_string a, int_of_string b)
      with Failure _ -> Error (`Msg ("bad lag window " ^ s)))
    | _ -> Error (`Msg ("expected FOLLOWER:FROM:UNTIL, got " ^ s))
  in
  let print ppf (f, a, b) = Format.fprintf ppf "%d:%d:%d" f a b in
  Arg.conv (parse, print)

let repl_followers =
  Arg.(
    value & opt int 0
    & info [ "repl" ] ~docv:"N"
        ~doc:
          "Replicate the engine to $(docv) followers over the replication \
           wire (0 disables replication).  With no --repl-* faults, hops, \
           partitions or follower reads, the run is byte-identical to the \
           single-node path for the same --seed.")

let repl_ack =
  Arg.(
    value & opt string "sync"
    & info [ "repl-ack" ] ~docv:"MODE"
        ~doc:
          "Replication acknowledgement mode: $(b,sync) reports a commit \
           only once every live follower has it; $(b,async) reports \
           immediately and lets replication catch up (acked commits can be \
           lost at failover).")

let repl_hop_ns =
  Arg.(
    value & opt int 0
    & info [ "repl-hop-ns" ] ~docv:"NS"
        ~doc:"One-way replication hop latency (simulated ns).")

let repl_drop =
  Arg.(
    value & opt float 0.0
    & info [ "repl-drop" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of silent loss on the replication wire \
           (recovered by capped retransmission).")

let repl_dup =
  Arg.(
    value & opt float 0.0
    & info [ "repl-dup" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of duplicate delivery (absorbed by \
           in-order apply and cumulative acks).")

let repl_delay =
  Arg.(
    value & opt float 0.0
    & info [ "repl-delay" ] ~docv:"PROB"
        ~doc:"Per-message probability of extra replication latency.")

let repl_delay_ns =
  Arg.(
    value & opt int 400_000
    & info [ "repl-delay-ns" ] ~docv:"NS"
        ~doc:"Upper bound on injected replication delay (simulated ns).")

let repl_reorder =
  Arg.(
    value & opt float 0.0
    & info [ "repl-reorder" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of delivery at a random point inside the \
           reordering window (followers reject gaps and re-ack).")

let repl_reorder_ns =
  Arg.(
    value & opt int 200_000
    & info [ "repl-reorder-ns" ] ~docv:"NS"
        ~doc:"Size of the replication reordering window (simulated ns).")

let repl_seed =
  Arg.(
    value & opt int 1
    & info [ "repl-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the replication link fault and follower-read-routing \
           streams (independent of --seed).")

let repl_partition =
  Arg.(
    value & opt_all window_conv []
    & info [ "repl-partition" ] ~docv:"FROM:UNTIL"
        ~doc:
          "Cut the primary off from every follower during the half-open \
           simulated-ns window (repeatable).  Sync commits inside the \
           window time out as ambiguous; with \
           --repl-promote-on-partition the window also triggers an \
           election.")

let repl_lag =
  Arg.(
    value & opt_all lag_conv []
    & info [ "repl-lag" ] ~docv:"FOLLOWER:FROM:UNTIL"
        ~doc:
          "Cut a single follower off during the window (repeatable) — it \
           falls behind and re-converges via retransmission, or loses the \
           election at failover.")

let repl_failover_at =
  Arg.(
    value & opt_all int []
    & info [ "repl-failover-at" ] ~docv:"NS"
        ~doc:
          "Promote the most caught-up live follower at simulated instant \
           $(docv) (repeatable).  Commits beyond the survivor prefix are \
           lost with the old timeline and reported as such — unless a \
           planted --repl-fault hides them.")

let repl_promote_on_partition =
  Arg.(
    value & flag
    & info [ "repl-promote-on-partition" ]
        ~doc:
          "Additionally derive one promotion per full --repl-partition \
           window, fired --repl-election-ns after the window opens.")

let repl_election_ns =
  Arg.(
    value & opt int 300_000
    & info [ "repl-election-ns" ] ~docv:"NS"
        ~doc:
          "Election timeout: how long after a partition opens the derived \
           promotion fires (with --repl-promote-on-partition).")

let repl_split_brain_ns =
  Arg.(
    value & opt int 300_000
    & info [ "repl-split-brain-ns" ] ~docv:"NS"
        ~doc:
          "With --repl-fault split-brain: how long the deposed primary \
           keeps serving unfenced after a promotion.")

let repl_gate_timeout_ns =
  Arg.(
    value & opt int 2_000_000
    & info [ "repl-gate-timeout-ns" ] ~docv:"NS"
        ~doc:
          "Sync mode: how long a commit waits for the replication quorum \
           before being reported as ambiguous.")

let repl_retransmit_ns =
  Arg.(
    value & opt int 500_000
    & info [ "repl-retransmit-ns" ] ~docv:"NS"
        ~doc:"Primary retransmission interval for unacked appends.")

let repl_max_retransmits =
  Arg.(
    value & opt int 8
    & info [ "repl-max-retransmits" ] ~docv:"N"
        ~doc:"Retransmission cap per append (keeps the run finite).")

let repl_read_prob =
  Arg.(
    value & opt float 0.0
    & info [ "repl-read-prob" ] ~docv:"PROB"
        ~doc:
          "Probability that a routable snapshot read is served by a \
           replica whose applied horizon covers the snapshot (values \
           byte-identical to a primary read).")

let repl_staleness_ns =
  Arg.(
    value & opt int 1_000_000
    & info [ "repl-staleness-ns" ] ~docv:"NS"
        ~doc:
          "With --repl-fault stale-follower-read: how far behind the \
           snapshot a replica may serve from.")

let repl_fault =
  Arg.(
    value & opt_all string []
    & info [ "repl-fault" ] ~docv:"FAULT"
        ~doc:
          "Plant a named replication fault (repeatable): promote-lagging, \
           lose-acked-window, stale-follower-read, split-brain.  These \
           make the cluster lie (definite violations), unlike the \
           environmental --repl-drop/--repl-partition faults which only \
           degrade the verdict honestly.")

let repl_term =
  let make_link followers ack hop_ns drop dup delay delay_ns reorder
      reorder_ns rseed =
    ( followers, ack, hop_ns, drop, dup, delay, delay_ns, reorder, reorder_ns,
      rseed )
  in
  let make_ctl partitions lags failover_at promote election_ns split_brain_ns
      gate_ns retransmit_ns max_retransmits read_prob staleness_ns rfaults =
    ( partitions, lags, failover_at, promote, election_ns, split_brain_ns,
      gate_ns, retransmit_ns, max_retransmits, read_prob, staleness_ns,
      rfaults )
  in
  let pair a b = (a, b) in
  Cmdliner.Term.(
    const pair
    $ (const make_link $ repl_followers $ repl_ack $ repl_hop_ns $ repl_drop
       $ repl_dup $ repl_delay $ repl_delay_ns $ repl_reorder $ repl_reorder_ns
       $ repl_seed)
    $ (const make_ctl $ repl_partition $ repl_lag $ repl_failover_at
       $ repl_promote_on_partition $ repl_election_ns $ repl_split_brain_ns
       $ repl_gate_timeout_ns $ repl_retransmit_ns $ repl_max_retransmits
       $ repl_read_prob $ repl_staleness_ns $ repl_fault))

(* SHARD:AT, e.g. --shard-crash 1:2000000 *)
let shard_crash_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
      try Ok (int_of_string a, int_of_string b)
      with Failure _ -> Error (`Msg ("bad shard crash " ^ s)))
    | _ -> Error (`Msg ("expected SHARD:AT, got " ^ s))
  in
  let print ppf (a, b) = Format.fprintf ppf "%d:%d" a b in
  Arg.conv (parse, print)

let shards_count =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Hash-range partition the key space across $(docv) shard groups \
           (0 disables sharding; 1 is rejected).  Cross-shard writes \
           commit through a 2PC coordinator whose protocol messages ride \
           the shard wire; single-shard transactions take a fast path.  \
           With no --shard-* faults, hops or partitions the run is \
           byte-identical to the unsharded path for the same --seed.")

let shard_hop_ns =
  Arg.(
    value & opt int 0
    & info [ "shard-hop-ns" ] ~docv:"NS"
        ~doc:"One-way coordinator-participant hop latency (simulated ns).")

let shard_drop =
  Arg.(
    value & opt float 0.0
    & info [ "shard-drop" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of silent loss on the commit-protocol \
           wire (PREPAREs time the round out into a definite abort; \
           decisions are retransmitted).")

let shard_dup =
  Arg.(
    value & opt float 0.0
    & info [ "shard-dup" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of duplicate delivery (absorbed by \
           in-order apply and cumulative acks).")

let shard_delay =
  Arg.(
    value & opt float 0.0
    & info [ "shard-delay" ] ~docv:"PROB"
        ~doc:"Per-message probability of extra commit-protocol latency.")

let shard_delay_ns =
  Arg.(
    value & opt int 400_000
    & info [ "shard-delay-ns" ] ~docv:"NS"
        ~doc:"Upper bound on injected commit-protocol delay (simulated ns).")

let shard_reorder =
  Arg.(
    value & opt float 0.0
    & info [ "shard-reorder" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of delivery at a random point inside \
           the reordering window (participants reject decision-log gaps \
           and re-ack).")

let shard_reorder_ns =
  Arg.(
    value & opt int 200_000
    & info [ "shard-reorder-ns" ] ~docv:"NS"
        ~doc:"Size of the commit-protocol reordering window (simulated ns).")

let shard_reset =
  Arg.(
    value & opt float 0.0
    & info [ "shard-reset" ] ~docv:"PROB"
        ~doc:
          "Per-message probability of a connection reset on the \
           commit-protocol wire (the sender finds out and retransmits).")

let shard_seed =
  Arg.(
    value & opt int 1
    & info [ "shard-seed" ] ~docv:"SEED"
        ~doc:
          "Seed of the commit-protocol link fault streams (independent of \
           --seed).")

let shard_partition =
  Arg.(
    value & opt_all lag_conv []
    & info [ "shard-partition" ] ~docv:"SHARD:FROM:UNTIL"
        ~doc:
          "Cut one shard (or every shard, with SHARD = -1) off from the \
           coordinator during the half-open simulated-ns window \
           (repeatable).  Prepares inside the window time the round out \
           into a definite abort; decided commits resume shipping when \
           the window closes.")

let shard_crash =
  Arg.(
    value & opt_all shard_crash_conv []
    & info [ "shard-crash" ] ~docv:"SHARD:AT"
        ~doc:
          "Crash and restart participant SHARD at simulated instant AT \
           (repeatable): its volatile prepared state dies and its store \
           rebuilds from the durable per-shard decision log.")

let shard_coord_crash_at =
  Arg.(
    value & opt_all int []
    & info [ "shard-coord-crash-at" ] ~docv:"NS"
        ~doc:
          "Crash the 2PC coordinator at simulated instant $(docv) \
           (repeatable).  Undecided rounds are orphaned — presumed abort, \
           reported as coordinator-ambiguous commits (the verdict \
           degrades to INCONCLUSIVE, never a false violation); decided \
           rounds resume from the durable decision logs.")

let shard_prepare_timeout_ns =
  Arg.(
    value & opt int 2_000_000
    & info [ "shard-prepare-timeout-ns" ] ~docv:"NS"
        ~doc:
          "How long the coordinator waits for every participant's vote \
           before deciding abort.")

let shard_retransmit_ns =
  Arg.(
    value & opt int 500_000
    & info [ "shard-retransmit-ns" ] ~docv:"NS"
        ~doc:"Coordinator retransmission interval for unacked decisions.")

let shard_max_retransmits =
  Arg.(
    value & opt int 8
    & info [ "shard-max-retransmits" ] ~docv:"N"
        ~doc:"Retransmission cap per decision (keeps the run finite).")

let shard_skew_bound_ns =
  Arg.(
    value & opt int 1_000_000
    & info [ "shard-skew-bound-ns" ] ~docv:"NS"
        ~doc:
          "With --shard-fault snapshot-skew or stale-prepared-read: how \
           far behind the snapshot a lying shard may serve from.")

let shard_fault =
  Arg.(
    value & opt_all string []
    & info [ "shard-fault" ] ~docv:"FAULT"
        ~doc:
          "Plant a named sharding fault (repeatable): fractured-commit, \
           commit-after-abort, snapshot-skew, stale-prepared-read.  These \
           make the commit protocol lie (definite violations), unlike the \
           environmental --shard-drop/--shard-partition faults and \
           --shard-coord-crash-at crashes, which only degrade the verdict \
           honestly.")

let repl_per_shard =
  Arg.(
    value & opt int 0
    & info [ "repl-per-shard" ] ~docv:"M"
        ~doc:
          "Run every shard group as a primary/follower replica set with \
           $(docv) replicas (0 disables; requires --shards).  Each \
           shard's committed decision feed ships to its own cluster over \
           a derived faulty link.  Honest failovers are lossless at the \
           group level — the coordinator's decision log backfills the \
           truncated suffix — so only the planted --shard-repl-fault \
           lies can change the verdict.")

let shard_failover_at =
  Arg.(
    value & opt_all shard_crash_conv []
    & info [ "shard-failover-at" ] ~docv:"SHARD:AT"
        ~doc:
          "Fail shard SHARD's primary over to a replica at simulated \
           instant AT (repeatable; requires --repl-per-shard).  The \
           shard's store rebuilds from the survivor prefix its replica \
           set kept and the coordinator re-ships the rest.")

let shard_repl_fault =
  Arg.(
    value & opt_all string []
    & info [ "shard-repl-fault" ] ~docv:"FAULT"
        ~doc:
          "Plant a named replication fault inside every shard's replica \
           set (repeatable): promote-lagging or lose-acked-window make a \
           failed-over shard claim a clean rebuild over a shorter one, \
           silently losing committed cross-shard work — a definite CR \
           violation on the global trace.")

let shard_repl_drop =
  Arg.(
    value & opt (some float) None
    & info [ "shard-repl-drop" ] ~docv:"P"
        ~doc:
          "Override the drop probability of the per-shard replication \
           links (requires --repl-per-shard).  By default the replica \
           sets reuse the shard wire's fault rates; this decouples them, \
           so a healthy 2PC wire can feed clusters whose followers lag \
           arbitrarily — the shape that makes the claim-clean \
           --shard-repl-fault lies bite.")

let shard_term =
  let make_link shards hop_ns drop dup delay delay_ns reorder reorder_ns
      reset sseed =
    ( shards, hop_ns, drop, dup, delay, delay_ns, reorder, reorder_ns, reset,
      sseed )
  in
  let make_ctl partitions crashes coord_crash_at prepare_ns retransmit_ns
      max_retransmits skew_ns sfaults per_shard failovers rfaults rdrop =
    ( partitions, crashes, coord_crash_at, prepare_ns, retransmit_ns,
      max_retransmits, skew_ns, sfaults, per_shard, failovers, rfaults, rdrop
    )
  in
  let pair a b = (a, b) in
  Cmdliner.Term.(
    const pair
    $ (const make_link $ shards_count $ shard_hop_ns $ shard_drop $ shard_dup
       $ shard_delay $ shard_delay_ns $ shard_reorder $ shard_reorder_ns
       $ shard_reset $ shard_seed)
    $ (const make_ctl $ shard_partition $ shard_crash $ shard_coord_crash_at
       $ shard_prepare_timeout_ns $ shard_retransmit_ns
       $ shard_max_retransmits $ shard_skew_bound_ns $ shard_fault
       $ repl_per_shard $ shard_failover_at $ shard_repl_fault
       $ shard_repl_drop))

let lenient =
  Arg.(
    value & flag
    & info [ "lenient" ]
        ~doc:
          "With --check: skip undecodable trace lines instead of rejecting \
           the file, counting them as lost (the verdict degrades to \
           INCONCLUSIVE rather than claiming a full pass).")

(* {2 The campaign subcommand}

   A declarative grid (cell classes x seeds) swept across a domain pool
   with crash isolation, per-cell step budgets, checkpoint/resume and
   auto-shrinking of unexpected cells.  Every failure is citable: the
   per-cell derived seed and the exact standalone reproduction line are
   printed with the repro report and stored in the results DB. *)

module Campaign = Leopard_campaign

let campaign_cells =
  Arg.(
    value & opt_all string []
    & info [ "cell" ] ~docv:"NAME"
        ~doc:
          "Cell class to include (repeatable; default: every preset).  \
           See --list-cells.")

let campaign_list =
  Arg.(
    value & flag
    & info [ "list-cells" ] ~doc:"List the known cell classes and exit.")

let campaign_seeds =
  Arg.(
    value & opt int 3
    & info [ "seeds" ] ~docv:"N" ~doc:"Seeds (cells) per class.")

let campaign_seed_flag =
  Arg.(
    value & opt int 42
    & info [ "campaign-seed" ] ~docv:"SEED"
        ~doc:
          "Campaign master seed; every cell's seed is derived from it \
           positionally (SplitMix64), so (campaign seed, cell index) \
           reproduces any cell standalone.")

let campaign_txns =
  Arg.(
    value & opt int 0
    & info [ "cell-txns" ] ~docv:"N"
        ~doc:"Override every class's transaction count (0 = per-class).")

let campaign_clients =
  Arg.(
    value & opt int 0
    & info [ "cell-clients" ] ~docv:"N"
        ~doc:"Override every class's client count (0 = per-class).")

let campaign_jobs =
  Arg.(
    value & opt int 0
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains (0 = recommended domain count).  Results are \
           byte-identical for every value.")

let campaign_budget =
  Arg.(
    value & opt int 0
    & info [ "step-budget" ] ~docv:"N"
        ~doc:
          "Per-cell step budget in transaction-program generations; a \
           cell exceeding it is recorded TIMEOUT (0 = auto from txns).")

let campaign_out =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON results DB here.")

let campaign_checkpoint =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Checkpoint completed cells here; an interrupted sweep resumed \
           against the same file re-runs only incomplete cells.")

let campaign_max_cells =
  Arg.(
    value & opt int 0
    & info [ "max-cells" ] ~docv:"N"
        ~doc:
          "Stop after running N incomplete cells (0 = no limit) — pairs \
           with --checkpoint to split a sweep across invocations.")

let campaign_no_shrink =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:"Do not delta-debug unexpected cells into reproducers.")

let campaign_shrink_dir =
  Arg.(
    value & opt (some string) None
    & info [ "shrink-dir" ] ~docv:"DIR"
        ~doc:"Also write each repro report to DIR/cell-<index>.repro.")

let campaign_quiet =
  Arg.(
    value & flag
    & info [ "quiet" ] ~doc:"Suppress per-event progress on stderr.")

let campaign_run cells_sel list_cells seeds campaign_seed cell_txns
    cell_clients jobs_v step_budget out checkpoint max_cells no_shrink
    shrink_dir quiet =
  if list_cells then begin
    List.iter
      (fun (_, c) -> print_endline (Campaign.Grid.describe c))
      Campaign.Grid.presets;
    exit 0
  end;
  (let open Leopard_harness.Cli_validate in
   match
     first_error
       ([
          positive ~flag:"--seeds" seeds;
          jobs ~flag:"--jobs" jobs_v;
          non_negative ~flag:"--step-budget" step_budget;
          non_negative ~flag:"--max-cells" max_cells;
          non_negative ~flag:"--cell-txns" cell_txns;
          non_negative ~flag:"--cell-clients" cell_clients;
        ]
       @ List.map
           (choice ~flag:"--cell" ~known:Campaign.Grid.preset_names)
           cells_sel)
   with
   | Some e ->
     prerr_endline (error_to_string e);
     exit 2
   | None -> ());
  let names =
    match cells_sel with [] -> Campaign.Grid.preset_names | l -> l
  in
  let classes =
    List.map
      (fun n ->
        match Campaign.Grid.find_preset n with
        | Some c -> c
        | None -> assert false (* validated above *))
      names
  in
  let classes =
    if cell_txns = 0 && cell_clients = 0 then classes
    else
      List.map
        (fun (c : Campaign.Grid.clazz) ->
          Campaign.Grid.scale
            ~txns:(if cell_txns > 0 then cell_txns else c.Campaign.Grid.txns)
            ~clients:
              (if cell_clients > 0 then cell_clients
               else c.Campaign.Grid.clients)
            c)
        classes
  in
  let grid = Campaign.Grid.make ~campaign_seed ~seeds_per_class:seeds classes in
  let opts =
    {
      Campaign.Orchestrator.default_opts with
      jobs = jobs_v;
      step_budget = (if step_budget > 0 then Some step_budget else None);
      checkpoint;
      limit = (if max_cells > 0 then Some max_cells else None);
      shrink = not no_shrink;
      log = (if quiet then ignore else prerr_endline);
    }
  in
  let o = Campaign.Orchestrator.run ~opts grid in
  (* Report header: the campaign seed and fingerprint are the citation
     root — any cell below reproduces from (campaign seed, index). *)
  Printf.printf "campaign : seed %d, fingerprint %s, %d cell(s) (%d class(es) x %d seed(s))\n"
    campaign_seed
    (Campaign.Grid.fingerprint grid)
    (Campaign.Grid.cell_count grid)
    (List.length classes) seeds;
  Printf.printf "sweep    : %d run, %d resumed from checkpoint, jobs %s\n"
    o.Campaign.Orchestrator.fresh o.Campaign.Orchestrator.resumed
    (if jobs_v = 0 then "auto" else string_of_int jobs_v);
  let by_class (clazz : Campaign.Grid.clazz) =
    Array.to_list o.Campaign.Orchestrator.results
    |> List.filter (fun (r : Campaign.Runner.result) ->
           String.equal r.Campaign.Runner.cell.Campaign.Grid.clazz.Campaign.Grid.cname
             clazz.Campaign.Grid.cname)
  in
  List.iter
    (fun (clazz : Campaign.Grid.clazz) ->
      let rs = by_class clazz in
      let count k =
        List.length
          (List.filter
             (fun (r : Campaign.Runner.result) ->
               String.equal
                 (Campaign.Runner.kind_to_string
                    (Campaign.Runner.kind_of r.Campaign.Runner.outcome))
                 k)
             rs)
      in
      let ok =
        List.length (List.filter Campaign.Runner.is_expected rs)
      in
      Printf.printf
        "cell     : %-24s %d/%d expected | V %d B %d I %d X %d T %d\n"
        clazz.Campaign.Grid.cname ok (List.length rs) (count "verified")
        (count "violation") (count "inconclusive") (count "crashed")
        (count "timeout"))
    classes;
  (match o.Campaign.Orchestrator.json with
  | Some json -> (
    match out with
    | Some path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "results  : %s\n" path
    | None -> ())
  | None ->
    Printf.printf "partial  : %d/%d cell(s) complete%s\n"
      (Array.length o.Campaign.Orchestrator.results)
      (Campaign.Grid.cell_count grid)
      (match checkpoint with
      | Some p -> Printf.sprintf " (resume against --checkpoint %s)" p
      | None -> ""));
  (match shrink_dir with
  | Some dir when o.Campaign.Orchestrator.repros <> [] ->
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    List.iter
      (fun (r : Campaign.Orchestrator.repro) ->
        let path =
          Filename.concat dir
            (Printf.sprintf "cell-%d.repro"
               r.Campaign.Orchestrator.bundle.Campaign.Shrink.shrunk
                 .Campaign.Grid.index)
        in
        let oc = open_out path in
        output_string oc (Campaign.Shrink.render r.Campaign.Orchestrator.bundle);
        close_out oc)
      o.Campaign.Orchestrator.repros
  | _ -> ());
  List.iter
    (fun (r : Campaign.Orchestrator.repro) ->
      print_newline ();
      print_string (Campaign.Shrink.render r.Campaign.Orchestrator.bundle))
    o.Campaign.Orchestrator.repros;
  let unexpected =
    Array.exists
      (fun (r : Campaign.Runner.result) ->
        not (Campaign.Runner.is_expected r))
      o.Campaign.Orchestrator.results
  in
  if unexpected then begin
    Printf.printf "\nCAMPAIGN FAIL: unexpected cell outcome(s) above\n";
    exit 1
  end
  else begin
    Printf.printf "CAMPAIGN PASS\n";
    exit 0
  end

let campaign_cmd =
  let doc =
    "sweep a seeded fault-campaign grid across a domain pool, with \
     checkpoint/resume and auto-shrinking reproducers"
  in
  Cmd.v
    (Cmd.info "campaign" ~doc)
    Term.(
      const campaign_run $ campaign_cells $ campaign_list $ campaign_seeds
      $ campaign_seed_flag $ campaign_txns $ campaign_clients $ campaign_jobs
      $ campaign_budget $ campaign_out $ campaign_checkpoint
      $ campaign_max_cells $ campaign_no_shrink $ campaign_shrink_dir
      $ campaign_quiet)

let ckpt_term =
  let make a b c d = (a, b, c, d) in
  Term.(
    const make $ gc_watermark $ check_checkpoint $ resume_check
    $ check_kill_after)

let run_term =
  Term.(
    const run $ workload $ dbms $ level $ faults $ clients $ txns $ seed
    $ show_bugs $ record $ check $ infer $ chaos_term $ net_term
    $ max_retries $ max_stall_ns $ lenient $ ckpt_term $ recovery_term
    $ repl_term $ shard_term)

let cmd =
  let doc = "verify isolation levels from client-side traces (Leopard)" in
  (* a group with a default term keeps the historical flag-only
     invocation (leopard -w smallbank ...) working unchanged *)
  Cmd.group ~default:run_term (Cmd.info "leopard" ~doc) [ campaign_cmd ]

let () = exit (Cmd.eval cmd)
