(* Benchmark harness: regenerates every figure of the paper's evaluation
   (§VI) against the simulated substrate.

     dune exec bench/main.exe              # all experiments
     dune exec bench/main.exe -- fig4      # one experiment
     dune exec bench/main.exe -- fig11 fig14

   Experiments: fig4 fig10 fig11 fig12 fig13 fig14 bugs profiles micro.
   Absolute numbers differ from the paper (simulator vs the authors'
   testbed); the shapes — who wins, by what factor, which direction each
   knob bends a curve — are the reproduction target (see EXPERIMENTS.md). *)

module W = Leopard_workload
module H = Leopard_harness
module B = Leopard_baselines
module Table = Leopard_util.Table

let wall () = Leopard_util.Clock.wall ()

let section title = Printf.printf "\n=== %s ===\n\n%!" title

let fmt_ms s = Table.fmt_float ~decimals:1 (s *. 1e3)

(* ------------------------------------------------------------------ *)
(* Shared plumbing *)

let run_workload ?(seed = 42) ?(faults = Minidb.Fault.Set.empty) ?latency_of
    ~spec ~profile ~level ~clients ~stop () =
  let cfg =
    H.Run.config ~clients ~seed ~faults ?latency_of ~spec ~profile ~level
      ~stop ()
  in
  H.Run.execute cfg

let pipeline_of ?optimized ?batch (outcome : H.Run.outcome) =
  Leopard.Pipeline.of_lists ?optimized ?batch outcome.client_traces

(* Verify through pipeline + checker; returns (report, wall seconds). *)
let verify ?(gc_every = 512) il outcome =
  let checker = Leopard.Checker.create ~gc_every il in
  let pipe = pipeline_of outcome in
  let t0 = wall () in
  ignore (Leopard.Pipeline.drain pipe ~f:(Leopard.Checker.feed checker));
  Leopard.Checker.finalize checker;
  let dt = wall () -. t0 in
  (Leopard.Checker.report checker, dt)

let pg = Minidb.Profile.postgresql
let sr = Minidb.Isolation.Serializable
let il_sr = Leopard.Il_profile.postgresql_serializable

(* ------------------------------------------------------------------ *)
(* Fig. 4: overlap ratio beta in YCSB-A *)

let fig4 () =
  section
    "Fig. 4 — overlapping ratio beta in YCSB-A (uncertain dependencies)";
  let beta ?(theta = 0.8) ?(clients = 24) ?(read_ratio = 0.5) () =
    let o =
      run_workload ~seed:11
        ~spec:(W.Ycsb.spec ~rows:100_000 ~theta ~read_ratio ())
        ~profile:pg ~level:sr ~clients ~stop:(H.Run.Txn_count 4_000) ()
    in
    let b = H.Overlap.compute o in
    (H.Overlap.ratio b, b.H.Overlap.total)
  in
  print_endline "(a) varying skew theta (24 threads, 50% reads):";
  Table.print
    ~header:[ "theta"; "beta"; "deps" ]
    (List.map
       (fun theta ->
         let r, total = beta ~theta () in
         [ Printf.sprintf "%.2f" theta; Printf.sprintf "%.4f" r;
           Table.fmt_int total ])
       [ 0.0; 0.4; 0.8; 0.99 ]);
  print_endline "\n(b) varying thread scale (theta 0.8):";
  Table.print
    ~header:[ "threads"; "beta"; "deps" ]
    (List.map
       (fun clients ->
         let r, total = beta ~clients () in
         [ string_of_int clients; Printf.sprintf "%.4f" r;
           Table.fmt_int total ])
       [ 4; 8; 16; 32; 64 ]);
  print_endline "\n(c) varying read ratio (theta 0.8, 24 threads):";
  Table.print
    ~header:[ "read ratio"; "beta"; "deps" ]
    (List.map
       (fun read_ratio ->
         let r, total = beta ~read_ratio () in
         [ Printf.sprintf "%.2f" read_ratio; Printf.sprintf "%.4f" r;
           Table.fmt_int total ])
       [ 0.25; 0.5; 0.75 ]);
  print_endline
    "\npaper: beta stays small (<6%) and grows with skew and thread scale."

(* ------------------------------------------------------------------ *)
(* Fig. 10: two-level pipeline vs naive sort (memory & dispatch time) *)

let fig10 () =
  section "Fig. 10 — two-level pipeline performance (trace dispatching)";
  (* The straggler variant reproduces the paper's uneven-timestamp
     scenario: a few clients run 20x slower, which is exactly what makes
     the unoptimized global buffer accumulate other clients' traces. *)
  let straggler_latency client =
    if client < 3 then
      {
        H.Run.default_latency with
        H.Run.net_mean_ns = 1_000_000.0;
        think_mean_ns = 2_000_000.0;
      }
    else H.Run.default_latency
  in
  let workloads =
    [
      ("tpcc", None, fun () -> W.Tpcc.spec ());
      ("smallbank", None, fun () -> W.Smallbank.spec ());
      ("blindw-rw+", None, fun () -> W.Blindw.spec W.Blindw.RW_plus);
      ( "blindw-rw+ stragglers",
        Some straggler_latency,
        fun () -> W.Blindw.spec W.Blindw.RW_plus );
    ]
  in
  let scales = [ 2_000; 5_000; 10_000; 20_000 ] in
  let rows = ref [] in
  List.iter
    (fun (name, latency_of, mk_spec) ->
      List.iter
        (fun txns ->
          let outcome =
            run_workload ~seed:3 ?latency_of ~spec:(mk_spec ()) ~profile:pg
              ~level:sr ~clients:24 ~stop:(H.Run.Txn_count txns) ()
          in
          let time_pipeline ~optimized =
            let pipe = pipeline_of ~optimized outcome in
            let t0 = wall () in
            let first = Leopard.Pipeline.next pipe in
            let t_first = wall () -. t0 in
            ignore first;
            let n = 1 + Leopard.Pipeline.drain pipe ~f:(fun _ -> ()) in
            (n, wall () -. t0, t_first, Leopard.Pipeline.peak_memory pipe)
          in
          let n_opt, t_opt, f_opt, m_opt = time_pipeline ~optimized:true in
          let _, t_wo, _, m_wo = time_pipeline ~optimized:false in
          let naive =
            B.Naive_sorter.create
              ~sources:
                (Array.map
                   (fun traces ->
                     let rest = ref traces in
                     fun () ->
                       match !rest with
                       | [] -> None
                       | t :: tl ->
                         rest := tl;
                         Some t)
                   outcome.H.Run.client_traces)
              ()
          in
          let t0 = wall () in
          let _first = B.Naive_sorter.next naive in
          let f_naive = wall () -. t0 in
          ignore (B.Naive_sorter.drain naive ~f:(fun _ -> ()));
          let t_naive = wall () -. t0 in
          let m_naive = B.Naive_sorter.peak_memory naive in
          rows :=
            [
              name;
              Table.fmt_int txns;
              Table.fmt_int n_opt;
              fmt_ms t_opt;
              fmt_ms t_wo;
              fmt_ms t_naive;
              Printf.sprintf "%.3f" (f_opt *. 1e3);
              Printf.sprintf "%.3f" (f_naive *. 1e3);
              Table.fmt_int m_opt;
              Table.fmt_int m_wo;
              Table.fmt_int m_naive;
            ]
            :: !rows)
        scales)
    workloads;
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [ "workload"; "txns"; "traces"; "t(ms) 2level"; "t(ms) w/o-opt";
        "t(ms) naive"; "first(ms) 2lvl"; "first(ms) naive"; "mem 2level";
        "mem w/o-opt"; "mem naive" ]
    (List.rev !rows);
  print_endline
    "\npaper: the two-level pipeline dispatches with a small stable buffer\n\
     and starts dispatching immediately; the naive approach must ingest and\n\
     sort the whole run before the first trace leaves (its first-dispatch\n\
     latency IS its sort time), with the whole run resident in memory."

(* ------------------------------------------------------------------ *)
(* Fig. 11: mechanism-mirrored verification time *)

let fig11 () =
  section "Fig. 11 — verification time (BlindW-RW+, postgresql/SR)";
  let naive_cap = 4_000 in
  let measure ~txns ~clients ~txn_len =
    let spec = W.Blindw.spec ~txn_len W.Blindw.RW_plus in
    let t0 = wall () in
    let outcome =
      run_workload ~seed:13 ~spec ~profile:pg ~level:sr ~clients
        ~stop:(H.Run.Txn_count txns) ()
    in
    let dbms_wall = wall () -. t0 in
    let _, t_leopard = verify il_sr outcome in
    let t_naive =
      if txns > naive_cap then None
      else begin
        let cs = B.Cycle_search.create ~search_every:1 il_sr in
        let t0 = wall () in
        List.iter (B.Cycle_search.feed cs) (H.Run.all_traces_sorted outcome);
        B.Cycle_search.finalize cs;
        Some (wall () -. t0)
      end
    in
    (outcome, dbms_wall, t_leopard, t_naive)
  in
  print_endline "(a) varying transaction scale (24 threads, length 8):";
  Table.print
    ~header:
      [ "txns"; "leopard(ms)"; "cycle-search(ms)"; "dbms-run(ms)";
        "naive/leopard" ]
    (List.map
       (fun txns ->
         let _, dbms, tl, tn = measure ~txns ~clients:24 ~txn_len:8 in
         [
           Table.fmt_int txns;
           fmt_ms tl;
           (match tn with Some t -> fmt_ms t | None -> "-");
           fmt_ms dbms;
           (match tn with
           | Some t when tl > 0.0 -> Printf.sprintf "%.0fx" (t /. tl)
           | _ -> "-");
         ])
       [ 1_000; 2_000; 4_000; 6_000; 10_000; 16_000; 20_000 ]);
  print_endline "\n(b) varying thread scale (20k txns, length 8):";
  Table.print
    ~header:[ "threads"; "leopard(ms)"; "aborted"; "commit rate" ]
    (List.map
       (fun clients ->
         let o, _, tl, _ = measure ~txns:20_000 ~clients ~txn_len:8 in
         [
           string_of_int clients;
           fmt_ms tl;
           Table.fmt_int o.H.Run.aborts;
           Printf.sprintf "%.2f"
             (float_of_int o.H.Run.commits
             /. float_of_int (o.H.Run.commits + o.H.Run.aborts));
         ])
       [ 8; 16; 24; 32; 48; 64 ]);
  print_endline "\n(c) varying transaction length (24 threads, 10k txns):";
  Table.print
    ~header:[ "txn length"; "leopard(ms)"; "traces" ]
    (List.map
       (fun txn_len ->
         let o, _, tl, _ = measure ~txns:10_000 ~clients:24 ~txn_len in
         let traces =
           Array.fold_left
             (fun acc l -> acc + List.length l)
             0 o.H.Run.client_traces
         in
         [ string_of_int txn_len; fmt_ms tl; Table.fmt_int traces ])
       [ 2; 4; 8; 12; 16 ]);
  print_endline
    "\npaper: Leopard's time is linear in transaction scale and length,\n\
     decreases as aborts rise with thread scale, and is orders of magnitude\n\
     below naive cycle searching."

(* ------------------------------------------------------------------ *)
(* Fig. 12: DBMS throughput vs Leopard throughput *)

let fig12 () =
  section "Fig. 12 — workload throughput vs verification throughput";
  let run_one name spec =
    let t0 = wall () in
    let outcome =
      run_workload ~seed:17 ~spec ~profile:pg ~level:sr ~clients:24
        ~stop:(H.Run.Sim_time_ns 300_000_000) ()
    in
    let sim_wall = wall () -. t0 in
    let report, t_leopard = verify il_sr outcome in
    let finished = outcome.commits + outcome.aborts in
    let dbms_tps =
      float_of_int finished /. (float_of_int outcome.sim_duration_ns /. 1e9)
    in
    let leopard_tps = float_of_int finished /. t_leopard in
    [
      name;
      Table.fmt_int finished;
      Table.fmt_float ~decimals:0 dbms_tps;
      Table.fmt_float ~decimals:0 leopard_tps;
      Printf.sprintf "%.1fx" (leopard_tps /. dbms_tps);
      fmt_ms sim_wall;
      Table.fmt_int report.Leopard.Checker.peak_live;
    ]
  in
  let rows =
    List.concat
      [
        List.map
          (fun sf ->
            run_one
              (Printf.sprintf "smallbank sf=%d" sf)
              (W.Smallbank.spec ~scale_factor:sf ()))
          [ 1; 2; 4 ];
        List.map
          (fun sf ->
            run_one
              (Printf.sprintf "tpcc sf=%d" sf)
              (W.Tpcc.spec ~scale_factor:sf ()))
          [ 1; 2; 4 ];
      ]
  in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [ "workload"; "txns"; "dbms tps (sim)"; "leopard tps (wall)"; "ratio";
        "sim wall(ms)"; "peak mem" ]
    rows;
  print_endline
    "\npaper: Leopard's verification throughput keeps up with (and on\n\
     complex workloads exceeds) the DBMS's transaction throughput."

(* ------------------------------------------------------------------ *)
(* Fig. 13: effectiveness of deducing dependencies *)

let fig13 () =
  section "Fig. 13 — deducing uncertain dependencies (postgresql/SR)";
  let dep_kind_map = function
    | Minidb.Ground_truth.Ww -> Leopard.Dep.Ww
    | Minidb.Ground_truth.Wr -> Leopard.Dep.Wr
    | Minidb.Ground_truth.Rw -> Leopard.Dep.Rw
  in
  let rows =
    List.map
      (fun (name, spec) ->
        let outcome =
          run_workload ~seed:23 ~spec ~profile:pg ~level:sr ~clients:32
            ~stop:(H.Run.Txn_count 16_000) ()
        in
        (* deduction effectiveness is measured with GC off, so no edge is
           lost to pruning *)
        let checker = Leopard.Checker.create ~gc_every:0 il_sr in
        List.iter
          (Leopard.Checker.feed checker)
          (H.Run.all_traces_sorted outcome);
        Leopard.Checker.finalize checker;
        let classified =
          H.Overlap.classify outcome ~deduced:(fun kind from_txn to_txn ->
              Leopard.Checker.deduced checker (dep_kind_map kind) from_txn
                to_txn)
        in
        let beta = classified.H.Overlap.beta in
        [
          name;
          Table.fmt_int beta.H.Overlap.total;
          Table.fmt_int beta.H.Overlap.overlapping;
          Printf.sprintf "%.5f" (H.Overlap.ratio beta);
          Table.fmt_int classified.H.Overlap.deduced;
          Table.fmt_int classified.H.Overlap.uncertain;
          (if beta.H.Overlap.overlapping = 0 then "-"
           else
             Printf.sprintf "%.0f%%"
               (100.0
               *. float_of_int classified.H.Overlap.deduced
               /. float_of_int beta.H.Overlap.overlapping));
        ])
      [
        ("smallbank", W.Smallbank.spec ~hotspot:0.8 ());
        ("tpcc", W.Tpcc.spec ());
        ("blindw-w", W.Blindw.spec W.Blindw.W);
        ("blindw-rw", W.Blindw.spec W.Blindw.RW);
      ]
  in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [ "workload"; "deps"; "overlapping"; "beta"; "deduced"; "uncertain";
        "recovered" ]
    rows;
  print_endline
    "\npaper: BlindW's uniquely-written values let every overlapped\n\
     dependency be deduced; SmallBank (duplicate amalgamate values) and\n\
     TPC-C (partial-attribute access) leave a residue of uncertain ones."

(* ------------------------------------------------------------------ *)
(* Fig. 14: comparison with Cobra *)

let fig14 () =
  section "Fig. 14 — comparison with Cobra (BlindW-RW, serializability)";
  (* Cobra's cost explodes superlinearly; past this scale we only run
     Leopard (the paper similarly stops plotting the losing curves). *)
  let cobra_cap = 2_000 in
  let measure ~txns ~clients =
    let outcome =
      run_workload ~seed:29 ~spec:(W.Blindw.spec W.Blindw.RW) ~profile:pg
        ~level:sr ~clients ~stop:(H.Run.Txn_count txns) ()
    in
    let traces = H.Run.all_traces_sorted outcome in
    let report, t_leopard = verify il_sr outcome in
    let cobra gc =
      if txns > cobra_cap then None
      else begin
        let c = B.Cobra.create ~gc () in
        let t0 = wall () in
        List.iter (B.Cobra.feed c) traces;
        let r = B.Cobra.finalize c in
        Some (r, wall () -. t0)
      end
    in
    ( t_leopard,
      report.Leopard.Checker.peak_live,
      cobra (B.Cobra.Fence 20),
      cobra B.Cobra.No_gc )
  in
  let opt_ms = function Some (_, t) -> fmt_ms t | None -> "-" in
  let opt_mem = function
    | Some (r, _) -> Table.fmt_int r.B.Cobra.peak_live
    | None -> "-"
  in
  let speedup tl = function
    | Some (_, t) when tl > 0.0 -> Printf.sprintf "%.0fx" (t /. tl)
    | _ -> "-"
  in
  print_endline "(a,b) varying transaction scale (24 threads):";
  Table.print
    ~header:
      [ "txns"; "leopard(ms)"; "cobra(ms)"; "cobra-noGC(ms)"; "cobra/leopard";
        "mem L"; "mem C"; "mem C-noGC" ]
    (List.map
       (fun txns ->
         let tl, ml, fence, nogc = measure ~txns ~clients:24 in
         [
           Table.fmt_int txns;
           fmt_ms tl;
           opt_ms fence;
           opt_ms nogc;
           speedup tl fence;
           Table.fmt_int ml;
           opt_mem fence;
           opt_mem nogc;
         ])
       [ 500; 1_000; 2_000; 5_000; 10_000; 20_000 ]);
  print_endline "\n(c,d) varying thread scale (1.5k txns):";
  Table.print
    ~header:
      [ "threads"; "leopard(ms)"; "cobra(ms)"; "cobra/leopard"; "mem L";
        "mem C" ]
    (List.map
       (fun clients ->
         let tl, ml, fence, _ = measure ~txns:1_500 ~clients in
         [
           string_of_int clients;
           fmt_ms tl;
           opt_ms fence;
           speedup tl fence;
           Table.fmt_int ml;
           opt_mem fence;
         ])
       [ 8; 16; 24; 32 ]);
  print_endline
    "\npaper: Leopard scales linearly where Cobra's constraint pruning and\n\
     fence traversals grow superlinearly (114x at 20k txns, 271x at 32\n\
     threads); Cobra with fence GC is the worst, spending its time\n\
     identifying garbage on the polygraph.  Past the cap only Leopard is\n\
     run — Cobra's curve has already left the chart."

(* ------------------------------------------------------------------ *)
(* Bug study (§VI-F) *)

let bugs () =
  section "Bug study (par. VI-F) — 17 injected faults, Leopard vs Elle-style";
  let rows =
    List.map
      (fun (p : W.Probes.probe) ->
        let run inject =
          run_workload ~seed:5
            ~faults:
              (if inject then Minidb.Fault.Set.singleton p.fault
               else Minidb.Fault.Set.empty)
            ~spec:p.spec ~profile:p.db_profile ~level:p.level
            ~clients:p.clients ~stop:(H.Run.Txn_count p.txns) ()
        in
        let clean = run false and faulted = run true in
        let il = Option.get (Leopard.Il_profile.find p.verifier_profile) in
        let r_clean, _ = verify il clean in
        let r_fault, _ = verify il faulted in
        let elle = B.Elle.check (H.Run.all_traces_sorted faulted) in
        let mechanisms =
          String.concat "+"
            (List.sort_uniq compare
               (List.map
                  (fun (b : Leopard.Bug.t) ->
                    Leopard.Bug.mechanism_to_string b.mechanism)
                  r_fault.Leopard.Checker.bugs))
        in
        let anomaly =
          let tally = Hashtbl.create 8 in
          List.iter
            (fun (b : Leopard.Bug.t) ->
              match b.anomaly with
              | Some a ->
                Hashtbl.replace tally a
                  (1 + Option.value ~default:0 (Hashtbl.find_opt tally a))
              | None -> ())
            r_fault.Leopard.Checker.bugs;
          Hashtbl.fold
            (fun a n best ->
              match best with
              | Some (_, m) when m >= n -> best
              | _ -> Some (a, n))
            tally None
          |> function
          | Some (a, _) -> Leopard.Anomaly.to_string a
          | None -> "-"
        in
        [
          Minidb.Fault.to_string p.fault;
          p.verifier_profile;
          string_of_int r_clean.Leopard.Checker.bugs_total;
          string_of_int r_fault.Leopard.Checker.bugs_total;
          mechanisms;
          anomaly;
          (if elle.B.Elle.anomalies = [] then "silent"
           else string_of_int (List.length elle.B.Elle.anomalies));
        ])
      (W.Probes.all ())
  in
  Table.print
    ~aligns:Table.[ Left; Left ]
    ~header:
      [ "fault"; "profile"; "clean"; "faulted"; "leopard"; "anomaly"; "elle" ]
    rows;
  print_endline
    "\npaper: Leopard found 17 bugs other checkers missed; cycle-only\n\
     checkers are structurally blind to non-cyclic anomalies (Bugs 1-4)."

(* ------------------------------------------------------------------ *)
(* Fig. 1 profile matrix *)

let profiles () =
  section "Fig. 1 — isolation level implementations (mechanism matrix)";
  print_string (Minidb.Profile.fig1_matrix ());
  print_endline "\nVerifier-side profiles (what Leopard checks per claim):";
  Table.print
    ~aligns:Table.[ Left; Left; Left; Left; Left ]
    ~header:[ "profile"; "ME"; "CR"; "FUW"; "SC" ]
    (List.map
       (fun (p : Leopard.Il_profile.t) ->
         [
           p.name;
           (if p.check_me then "yes" else "");
           (match p.check_cr with
           | Some Leopard.Il_profile.Txn_snapshot -> "txn"
           | Some Leopard.Il_profile.Stmt_snapshot -> "stmt"
           | None -> "");
           (if p.check_fuw then "yes" else "");
           (match p.check_sc with
           | Some c -> Leopard.Il_profile.certifier_to_string c
           | None -> "");
         ])
       Leopard.Il_profile.all)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let micro () =
  section "Micro-benchmarks (Bechamel): core verifier operations";
  let open Bechamel in
  (* Pre-build inputs outside the timed staged functions. *)
  let outcome =
    run_workload ~seed:31 ~spec:(W.Blindw.spec W.Blindw.RW_plus) ~profile:pg
      ~level:sr ~clients:24 ~stop:(H.Run.Txn_count 1_000) ()
  in
  let traces = Array.of_list (H.Run.all_traces_sorted outcome) in
  let n_traces = Array.length traces in
  let test_checker =
    Test.make
      ~name:(Printf.sprintf "checker feed+finalize (%d traces)" n_traces)
      (Staged.stage (fun () ->
           let checker = Leopard.Checker.create il_sr in
           Array.iter (Leopard.Checker.feed checker) traces;
           Leopard.Checker.finalize checker))
  in
  let heap = Leopard_util.Min_heap.create ~compare in
  let test_heap =
    Test.make ~name:"min-heap push+pop x1000"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             Leopard_util.Min_heap.push heap ((i * 7919) mod 1000)
           done;
           for _ = 0 to 999 do
             ignore (Leopard_util.Min_heap.pop heap)
           done))
  in
  let iv = Leopard_util.Interval.make in
  let e0 =
    {
      Leopard.Me_verifier.etxn = 0;
      mode = Leopard.Me_verifier.X;
      acquire_iv = iv ~bef:0 ~aft:10;
      release_iv = Some (iv ~bef:20 ~aft:35);
    }
  in
  let e1 =
    {
      Leopard.Me_verifier.etxn = 1;
      mode = Leopard.Me_verifier.X;
      acquire_iv = iv ~bef:30 ~aft:40;
      release_iv = Some (iv ~bef:50 ~aft:60);
    }
  in
  let test_me_judge =
    Test.make ~name:"ME order enumeration (judge)"
      (Staged.stage (fun () ->
           ignore (Leopard.Me_verifier.judge ~mine:e0 ~other:e1)))
  in
  let chain =
    List.init 16 (fun i ->
        {
          Leopard.Version_order.value = i;
          vtxn = i;
          write_iv = iv ~bef:((i * 100) + 1) ~aft:((i * 100) + 10);
          commit_iv = iv ~bef:((i * 100) + 20) ~aft:((i * 100) + 30);
          readers = [];
        })
  in
  let snapshot = iv ~bef:820 ~aft:840 in
  let test_candidates =
    Test.make ~name:"CR candidate set (16 versions)"
      (Staged.stage (fun () ->
           ignore (Leopard.Candidate.candidates ~snapshot chain)))
  in
  let tests = [ test_heap; test_me_judge; test_candidates; test_checker ] in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let results = Benchmark.all cfg instances test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock results
    in
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, est) :: acc
        | _ -> acc)
      ols []
  in
  List.iter
    (fun test ->
      List.iter
        (fun (name, ns) -> Printf.printf "  %-44s %14.1f ns/run\n" name ns)
        (benchmark test))
    tests;
  Printf.printf
    "\n(the checker entry covers %d traces per run: divide for per-trace \
     cost)\n"
    n_traces

(* ------------------------------------------------------------------ *)
(* Online mode: live verification attached to the running workload *)

let emit_json = ref false

(* Bounded-memory streamed soak: a synthetic, provably serializable
   workload generated on the fly (nothing materialized), pushed through
   the two-level pipeline into a truncating checker.  Transaction i
   reads the previous value of cell (i mod cells), overwrites it with
   the unique value i+1 and commits, all in disjoint intervals — every
   dependency is Direct and the verdict must be Verified at any scale.
   The point of the experiment is the memory column: peak live state is
   a function of the truncation window, not of history length. *)
let online_soak ~clients ~cells ~window ~txns =
  let checker = Leopard.Checker.create il_sr in
  let next = Array.make clients 0 in
  let queues = Array.init clients (fun _ -> Queue.create ()) in
  let cell i = Leopard_trace.Cell.make ~table:0 ~row:(i mod cells) ~col:0 in
  let gen c =
    let i = (next.(c) * clients) + c in
    if i >= txns then false
    else begin
      next.(c) <- next.(c) + 1;
      let t = i * 8 in
      let mk ts_bef ts_aft payload =
        { Leopard_trace.Trace.ts_bef; ts_aft; txn = i; client = c; payload }
      in
      if i >= cells then
        Queue.push
          (mk t (t + 1)
             (Leopard_trace.Trace.Read
                {
                  items =
                    [
                      {
                        Leopard_trace.Trace.cell = cell i;
                        value = i - cells + 1;
                      };
                    ];
                  locking = false;
                }))
          queues.(c);
      Queue.push
        (mk (t + 2) (t + 3)
           (Leopard_trace.Trace.Write
              [ { Leopard_trace.Trace.cell = cell i; value = i + 1 } ]))
        queues.(c);
      Queue.push (mk (t + 4) (t + 5) Leopard_trace.Trace.Commit) queues.(c);
      true
    end
  in
  let sources =
    Array.init clients (fun c () ->
        match Queue.take_opt queues.(c) with
        | Some tr -> Leopard.Pipeline.Item tr
        | None ->
          if gen c then (
            match Queue.take_opt queues.(c) with
            | Some tr -> Leopard.Pipeline.Item tr
            | None -> Leopard.Pipeline.Closed)
          else Leopard.Pipeline.Closed)
  in
  let pipe = Leopard.Pipeline.create ~sources () in
  let t0 = wall () in
  let since = ref 0 in
  let feed tr =
    Leopard.Checker.feed checker tr;
    incr since;
    if !since >= window then begin
      since := 0;
      let w = Leopard.Pipeline.watermark pipe in
      if w < max_int then Leopard.Checker.truncate checker ~watermark:w
    end
  in
  ignore (Leopard.Pipeline.drain pipe ~f:feed);
  Leopard.Checker.finalize checker;
  let dt = wall () -. t0 in
  (Leopard.Checker.report checker, Leopard.Pipeline.peak_memory pipe, dt)

let online () =
  section
    "Online verification — Leopard attached live (SVI-C deployment mode)";
  let live =
    List.map
      (fun (name, spec) ->
        let cfg =
          H.Run.config ~clients:24 ~seed:41 ~spec ~profile:pg ~level:sr
            ~stop:(H.Run.Sim_time_ns 200_000_000) ()
        in
        let r = H.Online.run ~il:il_sr cfg in
        (name, r))
      [
        ("smallbank", W.Smallbank.spec ());
        ("tpcc", W.Tpcc.spec ());
        ("blindw-rw+", W.Blindw.spec W.Blindw.RW_plus);
      ]
  in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [ "workload"; "traces"; "batches"; "max lag"; "final lag"; "stranded";
        "verify wall(ms)"; "bugs" ]
    (List.map
       (fun (name, r) ->
         [
           name;
           Table.fmt_int r.H.Online.report.Leopard.Checker.traces;
           Table.fmt_int r.H.Online.rounds;
           Table.fmt_int r.H.Online.max_lag;
           Table.fmt_int r.H.Online.final_lag;
           Table.fmt_int r.H.Online.stranded;
           fmt_ms r.H.Online.verify_wall_s;
           string_of_int r.H.Online.report.Leopard.Checker.bugs_total;
         ])
       live);
  print_endline
    "\npaper: the Verifier keeps pace with the running DBMS — the backlog\n\
     of produced-but-unverified traces stays bounded by one batch window.";
  let clients = 8 and cells = 64 and window = 20_000 in
  let scales = [ 100_000; 300_000; 1_000_000 ] in
  Printf.printf
    "\nbounded-memory streamed soak (%d clients, truncate every %d traces):\n"
    clients window;
  let soak =
    List.map
      (fun txns ->
        let report, pipeline_peak, dt =
          online_soak ~clients ~cells ~window ~txns
        in
        (txns, report, pipeline_peak, dt))
      scales
  in
  Table.print
    ~header:
      [ "txns"; "traces"; "peak live"; "pipe peak"; "cuts"; "deps folded";
        "wall(s)"; "traces/s"; "bugs" ]
    (List.map
       (fun (txns, (r : Leopard.Checker.report), pipeline_peak, dt) ->
         [
           Table.fmt_int txns;
           Table.fmt_int r.Leopard.Checker.traces;
           Table.fmt_int r.Leopard.Checker.peak_live;
           Table.fmt_int pipeline_peak;
           Table.fmt_int r.Leopard.Checker.truncations;
           Table.fmt_int r.Leopard.Checker.truncated_deps;
           Table.fmt_float ~decimals:2 dt;
           Table.fmt_int
             (int_of_float (float_of_int r.Leopard.Checker.traces /. dt));
           string_of_int r.Leopard.Checker.bugs_total;
         ])
       soak);
  print_endline
    "\nthe memory claim: 10x the history, same peak live state — the\n\
     truncating checker holds a window, not a history.";
  if !emit_json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"live\": [\n";
    List.iteri
      (fun i (name, (r : H.Online.result)) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"workload\": \"%s\", \"traces\": %d, \"rounds\": %d, \
              \"max_lag\": %d, \"final_lag\": %d, \"stranded\": %d, \
              \"verify_wall_s\": %.4f, \"bugs\": %d}%s\n"
             name r.H.Online.report.Leopard.Checker.traces r.H.Online.rounds
             r.H.Online.max_lag r.H.Online.final_lag r.H.Online.stranded
             r.H.Online.verify_wall_s
             r.H.Online.report.Leopard.Checker.bugs_total
             (if i = List.length live - 1 then "" else ",")))
      live;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"soak\": {\n    \"clients\": %d, \"cells\": %d, \"window\": \
          %d,\n    \"scales\": [\n"
         clients cells window);
    List.iteri
      (fun i (txns, (r : Leopard.Checker.report), pipeline_peak, dt) ->
        let verdict =
          match Leopard.Checker.verdict r with
          | Leopard.Checker.Verified -> "verified"
          | Leopard.Checker.Violation -> "violation"
          | Leopard.Checker.Inconclusive _ -> "inconclusive"
        in
        Buffer.add_string buf
          (Printf.sprintf
             "      {\"txns\": %d, \"traces\": %d, \"peak_live\": %d, \
              \"pipeline_peak\": %d, \"truncations\": %d, \
              \"truncated_deps\": %d, \"wall_s\": %.3f, \"traces_per_s\": \
              %.0f, \"verdict\": \"%s\", \"bugs\": %d}%s\n"
             txns r.Leopard.Checker.traces r.Leopard.Checker.peak_live
             pipeline_peak r.Leopard.Checker.truncations
             r.Leopard.Checker.truncated_deps dt
             (float_of_int r.Leopard.Checker.traces /. dt)
             verdict r.Leopard.Checker.bugs_total
             (if i = List.length soak - 1 then "" else ",")))
      soak;
    Buffer.add_string buf "    ]\n  }\n}\n";
    let oc = open_out "BENCH_online.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "\nwrote BENCH_online.json"
  end

(* ------------------------------------------------------------------ *)
(* Ablations of DESIGN.md's design choices *)

let ablation () =
  section "Ablations — GC cadence, candidate narrowing, pipeline batch";
  (* (a) verifier GC cadence: memory vs time, identical verdicts *)
  let outcome =
    run_workload ~seed:37 ~spec:(W.Blindw.spec W.Blindw.RW_plus) ~profile:pg
      ~level:sr ~clients:24 ~stop:(H.Run.Txn_count 8_000) ()
  in
  let traces = H.Run.all_traces_sorted outcome in
  print_endline "(a) garbage-collection cadence (BlindW-RW+, 8k txns):";
  Table.print
    ~header:
      [ "gc every"; "time(ms)"; "peak live"; "final live"; "pruned"; "bugs" ]
    (List.map
       (fun gc_every ->
         let checker = Leopard.Checker.create ~gc_every il_sr in
         let t0 = wall () in
         List.iter (Leopard.Checker.feed checker) traces;
         Leopard.Checker.finalize checker;
         let dt = wall () -. t0 in
         let r = Leopard.Checker.report checker in
         [
           (if gc_every = 0 then "off" else Table.fmt_int gc_every);
           fmt_ms dt;
           Table.fmt_int r.Leopard.Checker.peak_live;
           Table.fmt_int r.Leopard.Checker.final_live;
           Table.fmt_int
             (r.Leopard.Checker.pruned_versions
             + r.Leopard.Checker.pruned_locks + r.Leopard.Checker.pruned_fuw
             + r.Leopard.Checker.pruned_graph);
           string_of_int r.Leopard.Checker.bugs_total;
         ])
       [ 0; 64; 512; 4096 ]);
  (* (b) candidate narrowing: detection strength on a stale-read engine *)
  print_endline
    "\n(b) SV-A cooperation (ww-narrowed candidate sets) on a stale-read \
     engine:";
  let p = W.Probes.for_fault Minidb.Fault.Stale_read in
  let faulted =
    run_workload ~seed:5 ~faults:(Minidb.Fault.Set.singleton p.fault)
      ~spec:p.spec ~profile:p.db_profile ~level:p.level ~clients:p.clients
      ~stop:(H.Run.Txn_count p.txns) ()
  in
  let il = Option.get (Leopard.Il_profile.find p.verifier_profile) in
  let ftraces = H.Run.all_traces_sorted faulted in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:[ "candidate narrowing"; "violations found" ]
    (List.map
       (fun narrow_candidates ->
         let checker = Leopard.Checker.create ~narrow_candidates il in
         List.iter (Leopard.Checker.feed checker) ftraces;
         Leopard.Checker.finalize checker;
         [
           (if narrow_candidates then "on (deduced ww order)" else "off");
           string_of_int (Leopard.Checker.report checker).bugs_total;
         ])
       [ true; false ]);
  (* (c) pipeline local-buffer batch size *)
  print_endline "\n(c) pipeline batch size (BlindW-RW+ traces):";
  Table.print
    ~header:[ "batch"; "time(ms)"; "peak buffered" ]
    (List.map
       (fun batch ->
         let pipe = pipeline_of ~batch outcome in
         let t0 = wall () in
         ignore (Leopard.Pipeline.drain pipe ~f:(fun _ -> ()));
         [
           Table.fmt_int batch;
           fmt_ms (wall () -. t0);
           Table.fmt_int (Leopard.Pipeline.peak_memory pipe);
         ])
       [ 8; 64; 256; 1024 ])

(* ------------------------------------------------------------------ *)
(* Recovery: WAL overhead and replay speed *)

let recovery () =
  section "Recovery — WAL write overhead and replay speed";
  let clients = 24 and txns = 8_000 in
  let spec = W.Smallbank.spec () in
  let timed_run ~wal =
    let cfg =
      H.Run.config ~clients ~seed:43 ~wal ~spec ~profile:pg ~level:sr
        ~stop:(H.Run.Txn_count txns) ()
    in
    let t0 = wall () in
    let o = H.Run.execute cfg in
    (o, wall () -. t0)
  in
  let ops_per_s (o : H.Run.outcome) t =
    if t <= 0.0 then 0.0
    else float_of_int (o.H.Run.commits + o.H.Run.aborts) /. t
  in
  ignore (timed_run ~wal:false) (* warm-up: exclude cold-start noise *);
  let o_off, t_off = timed_run ~wal:false in
  let o_on, t_on = timed_run ~wal:true in
  let tput_off = ops_per_s o_off t_off and tput_on = ops_per_s o_on t_on in
  let overhead_pct =
    if tput_off <= 0.0 then 0.0
    else 100.0 *. (1.0 -. (tput_on /. tput_off))
  in
  print_endline "(a) engine throughput, WAL off vs on (smallbank, 8k txns):";
  Table.print
    ~aligns:Table.[ Left ]
    ~header:[ "wal"; "txns"; "wall(ms)"; "ops/s"; "records" ]
    [
      [
        "off";
        Table.fmt_int (o_off.H.Run.commits + o_off.H.Run.aborts);
        fmt_ms t_off;
        Table.fmt_float ~decimals:0 tput_off;
        "-";
      ];
      [
        "on";
        Table.fmt_int (o_on.H.Run.commits + o_on.H.Run.aborts);
        fmt_ms t_on;
        Table.fmt_float ~decimals:0 tput_on;
        Table.fmt_int o_on.H.Run.wal_appended;
      ];
    ];
  Printf.printf "\nwal overhead: %.1f%% of wal-off throughput\n" overhead_pct;
  (* (b) replay speed: append n commit records to a fault-free WAL, crash,
     and time the Version_store rebuild *)
  let replay_point n =
    let wal = Minidb.Wal.create () in
    for i = 0 to n - 1 do
      Minidb.Wal.append wal
        {
          Minidb.Wal.txn = i;
          client = i mod clients;
          start_ts = (i * 100) + 1;
          commit_ts = (i * 100) + 50;
          writes =
            List.init 4 (fun j ->
                {
                  Minidb.Wal.cell =
                    Leopard_trace.Cell.make ~table:0
                      ~row:(((i * 7) + j) mod 1024)
                      ~col:0;
                  value = (i * 4) + j;
                  write_op = j;
                  commit_ts = (i * 100) + 50 + j;
                });
        }
    done;
    let records, damage = Minidb.Wal.crash wal in
    let t0 = wall () in
    let _store, summary =
      Minidb.Recovery.replay ~initial:[] ~records
        ~fresh_ts:(fun () -> (n * 100) + 1)
        ~damage
    in
    let dt = wall () -. t0 in
    (summary, dt)
  in
  let replay_sizes = [ 2_000; 10_000; 50_000 ] in
  let replay_rows =
    List.map
      (fun n ->
        let summary, dt = replay_point n in
        let per_s =
          if dt <= 0.0 then 0.0 else float_of_int summary.replayed /. dt
        in
        (n, summary, dt, per_s))
      replay_sizes
  in
  print_endline "\n(b) recovery replay (fault-free crash, 4 writes/record):";
  Table.print
    ~header:[ "records"; "versions"; "replay(ms)"; "records/s" ]
    (List.map
       (fun (n, (s : Minidb.Recovery.summary), dt, per_s) ->
         [
           Table.fmt_int n;
           Table.fmt_int s.versions_installed;
           fmt_ms dt;
           Table.fmt_float ~decimals:0 per_s;
         ])
       replay_rows);
  if !emit_json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"workload\": \"smallbank\",\n  \"txns\": %d,\n  \"clients\": \
          %d,\n"
         txns clients);
    Buffer.add_string buf
      (Printf.sprintf "  \"wal_off_ops_per_s\": %.1f,\n" tput_off);
    Buffer.add_string buf
      (Printf.sprintf "  \"wal_on_ops_per_s\": %.1f,\n" tput_on);
    Buffer.add_string buf
      (Printf.sprintf "  \"wal_overhead_pct\": %.2f,\n" overhead_pct);
    Buffer.add_string buf
      (Printf.sprintf "  \"wal_records\": %d,\n" o_on.H.Run.wal_appended);
    Buffer.add_string buf "  \"replay\": [\n";
    List.iteri
      (fun i (n, (s : Minidb.Recovery.summary), dt, per_s) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"records\": %d, \"versions\": %d, \"wall_ms\": %.3f, \
              \"records_per_s\": %.1f}%s\n"
             n s.versions_installed (dt *. 1e3) per_s
             (if i = List.length replay_rows - 1 then "" else ",")))
      replay_rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_recovery.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "\nwrote BENCH_recovery.json"
  end

(* ------------------------------------------------------------------ *)
(* Net: wire-layer overhead and per-fault-class latency *)

let net_bench () =
  section "Net — wire overhead vs in-process, per fault class";
  let clients = 16 and txns = 3_000 in
  let spec = W.Smallbank.spec () in
  let si = Minidb.Isolation.Snapshot_isolation in
  let run ?net () =
    let cfg =
      H.Run.config ~clients ~seed:43 ?net ~spec ~profile:pg ~level:si
        ~stop:(H.Run.Txn_count txns) ()
    in
    let t0 = wall () in
    let o = H.Run.execute cfg in
    (o, wall () -. t0)
  in
  (* op latency = the client-observed interval of every trace *)
  let latencies (o : H.Run.outcome) =
    List.map
      (fun t ->
        float_of_int
          (t.Leopard_trace.Trace.ts_aft - t.Leopard_trace.Trace.ts_bef))
      (H.Run.all_traces_sorted o)
  in
  let pct = Leopard_util.Stats.percentile in
  let fault_link f = H.Run.net_config ~fault:f () in
  let classes =
    [
      ("in-process", None);
      ("wire/clean", Some (H.Run.net_config ()));
      ( "wire/delay",
        Some (fault_link (Leopard_net.Faulty_link.config ~delay_prob:0.10 ()))
      );
      ( "wire/drop",
        Some (fault_link (Leopard_net.Faulty_link.config ~drop_prob:0.05 ()))
      );
      ( "wire/dup",
        Some (fault_link (Leopard_net.Faulty_link.config ~dup_prob:0.05 ())) );
      ( "wire/reorder",
        Some
          (fault_link (Leopard_net.Faulty_link.config ~reorder_prob:0.05 ()))
      );
      ( "wire/reset",
        Some (fault_link (Leopard_net.Faulty_link.config ~reset_prob:0.05 ()))
      );
    ]
  in
  ignore (run ()) (* warm-up: exclude cold-start noise *);
  let rows =
    List.map
      (fun (name, net) ->
        let o, t = run ?net () in
        let ls = latencies o in
        let tput =
          if t <= 0.0 then 0.0
          else float_of_int (o.H.Run.commits + o.H.Run.aborts) /. t
        in
        let resends, give_ups, ambiguous =
          match o.H.Run.net with
          | Some ns ->
            (ns.H.Run.resends, ns.H.Run.give_ups, List.length ns.H.Run.ambiguous)
          | None -> (0, 0, 0)
        in
        (name, o, t, tput, pct ls 50.0, pct ls 99.0, resends, give_ups,
         ambiguous))
      classes
  in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [
        "path"; "txns/s"; "wall(ms)"; "p50(us)"; "p99(us)"; "resends";
        "give-ups"; "ambiguous";
      ]
    (List.map
       (fun (name, _o, t, tput, p50, p99, resends, give_ups, ambiguous) ->
         [
           name;
           Table.fmt_float ~decimals:0 tput;
           fmt_ms t;
           Table.fmt_float ~decimals:1 (p50 /. 1e3);
           Table.fmt_float ~decimals:1 (p99 /. 1e3);
           Table.fmt_int resends;
           Table.fmt_int give_ups;
           Table.fmt_int ambiguous;
         ])
       rows);
  print_endline
    "\nwire/clean is byte-identical to in-process on the simulated clock \
     (same traces, same p50/p99); its cost is host wall time only.";
  if !emit_json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"workload\": \"smallbank\",\n  \"txns\": %d,\n  \"clients\": \
          %d,\n"
         txns clients);
    Buffer.add_string buf "  \"paths\": [\n";
    let n = List.length rows in
    List.iteri
      (fun i (name, o, t, tput, p50, p99, resends, give_ups, ambiguous) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"path\": %S, \"commits\": %d, \"aborts\": %d, \
              \"wall_ms\": %.3f, \"txns_per_s\": %.1f, \"p50_ns\": %.0f, \
              \"p99_ns\": %.0f, \"resends\": %d, \"give_ups\": %d, \
              \"ambiguous_commits\": %d}%s\n"
             name o.H.Run.commits o.H.Run.aborts (t *. 1e3) tput p50 p99
             resends give_ups ambiguous
             (if i = n - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_net.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "\nwrote BENCH_net.json"
  end

(* ------------------------------------------------------------------ *)
(* Replication: ack mode x fault class — txn latency and verdict mix *)

let replication_bench () =
  let module Cluster = Leopard_replication.Cluster in
  let module Repl_fault = Leopard_replication.Repl_fault in
  let module Link = Leopard_net.Faulty_link in
  let module Codec = Leopard_trace.Codec in
  section "Replication — ack mode x fault class: latency and verdict mix";
  let clients = 16 and txns = 800 and nseeds = 5 and seed0 = 211 in
  let si = Minidb.Isolation.Snapshot_isolation in
  (* Four-cell read-modify-write: dense enough conflicts that a stale
     replica snapshot or a second unfenced timeline leaves an observable
     contradiction.  Smallbank's 1000 uniform accounts rarely collide,
     so the stale-read and split-brain cells would report Inconclusive
     not because the checker is weak but because nobody looked at the
     damaged cells. *)
  let hot_rmw () =
    let next = W.Spec.fresh_value_counter () in
    let cells =
      Array.init 4 (fun row -> Leopard_trace.Cell.make ~table:0 ~row ~col:0)
    in
    W.Spec.make ~name:"hot-rmw"
      ~initial:(Array.to_list (Array.map (fun c -> (c, 0)) cells))
      ~next_txn:(fun rng ->
        let c = cells.(Leopard_util.Rng.int rng 4) in
        W.Program.read [ c ] (fun _ ->
            W.Program.write_then [ (c, next ()) ] W.Program.finish))
  in
  let spec_of = function `Bank -> W.Smallbank.spec () | `Hot -> hot_rmw () in
  let run ?repl ~kind ~seed () =
    let cfg =
      H.Run.config ~clients ~seed ?repl ~spec:(spec_of kind) ~profile:pg
        ~level:si ~stop:(H.Run.Txn_count txns) ()
    in
    let t0 = wall () in
    let o = H.Run.execute cfg in
    (o, wall () -. t0)
  in
  (* Fault instants scale with an unreplicated probe of the same shape,
     so partition windows and failovers land mid-run regardless of the
     workload's absolute latency. *)
  let probe kind =
    let o, _ = run ~kind ~seed:seed0 () in
    o.H.Run.sim_duration_ns
  in
  let d_bank = probe `Bank and d_hot = probe `Hot in
  (* Offline verification exactly as the CLI does it: ambiguity marks
     first, then leader marks (lost beats ambiguous), then the traces in
     timestamp order. *)
  let repl_verify (o : H.Run.outcome) =
    let checker = Leopard.Checker.create Leopard.Il_profile.postgresql_si in
    List.iter
      (fun (_client, txn, _at) ->
        Leopard.Checker.mark_ambiguous_commit checker ~txn)
      o.H.Run.repl_ambiguous;
    List.iter
      (fun (m : Codec.leader_mark) ->
        Leopard.Checker.note_failover checker ~at:m.Codec.at
          ~epoch:m.Codec.epoch ~lost:m.Codec.lost)
      o.H.Run.leaders;
    List.iter (Leopard.Checker.feed checker) (H.Run.all_traces_sorted o);
    Leopard.Checker.finalize checker;
    Leopard.Checker.report checker
  in
  let classes =
    [
      ( "clean", `Bank,
        fun ~ack ~d:_ -> H.Run.repl_config (Cluster.config ~ack_mode:ack ())
      );
      ( "hop", `Bank,
        fun ~ack ~d:_ ->
          H.Run.repl_config (Cluster.config ~ack_mode:ack ~hop_ns:20_000 ())
      );
      ( "lossy-link", `Bank,
        fun ~ack ~d:_ ->
          H.Run.repl_config
            (Cluster.config ~ack_mode:ack ~hop_ns:20_000
               ~link:(Link.config ~drop_prob:0.05 ~dup_prob:0.05 ())
               ()) );
      ( "failover", `Bank,
        fun ~ack ~d ->
          H.Run.repl_config ~promote_on_partition:true
            ~election_timeout_ns:(max 1 (d / 20))
            (Cluster.config ~ack_mode:ack ~hop_ns:(max 1 (d / 100))
               ~gate_timeout_ns:(max 1 (d / 10))
               ~partitions:
                 [
                   {
                     Cluster.follower = -1;
                     from_ns = d / 3;
                     until_ns = 2 * d / 3;
                   };
                 ]
               ()) );
      ( "promote-lagging", `Bank,
        fun ~ack ~d ->
          H.Run.repl_config
            ~failover_at:[ max 1 (d / 2) ]
            (Cluster.config ~ack_mode:ack ~followers:2
               ~hop_ns:(max 1 (d / 100))
               ~partitions:
                 [ { Cluster.follower = 1; from_ns = 1; until_ns = d } ]
               ~faults:[ Repl_fault.Promote_lagging ] ()) );
      ( "lose-acked", `Bank,
        fun ~ack ~d ->
          H.Run.repl_config
            ~failover_at:[ max 1 (d / 2) ]
            (Cluster.config ~ack_mode:ack ~hop_ns:(max 1 (d / 4))
               ~faults:[ Repl_fault.Lose_acked_window ] ()) );
      ( "stale-read", `Hot,
        fun ~ack ~d ->
          H.Run.repl_config
            (Cluster.config ~ack_mode:ack ~hop_ns:(max 1 (d / 10))
               ~follower_read_prob:0.8 ~staleness_bound_ns:(max 1 d)
               ~faults:[ Repl_fault.Stale_follower_read ] ()) );
      ( "split-brain", `Hot,
        fun ~ack ~d ->
          H.Run.repl_config
            ~failover_at:[ max 1 (d / 2) ]
            ~split_brain_ns:(max 1 (d / 3))
            (Cluster.config ~ack_mode:ack ~followers:2
               ~faults:[ Repl_fault.Split_brain ] ()) );
    ]
  in
  let latencies (o : H.Run.outcome) =
    List.map
      (fun t ->
        float_of_int
          (t.Leopard_trace.Trace.ts_aft - t.Leopard_trace.Trace.ts_bef))
      (H.Run.all_traces_sorted o)
  in
  let pct = Leopard_util.Stats.percentile in
  let cell ~label ~kind ~repl_of =
    let acc_ls = ref [] in
    let commits = ref 0 and aborts = ref 0 and t_total = ref 0.0 in
    let failovers = ref 0 and gate_timeouts = ref 0 and stale = ref 0 in
    let resends = ref 0 and ambiguous = ref 0 and bugs = ref 0 in
    let verified = ref 0 and violation = ref 0 and inconclusive = ref 0 in
    for i = 0 to nseeds - 1 do
      let o, t = run ?repl:(repl_of ()) ~kind ~seed:(seed0 + i) () in
      acc_ls := latencies o :: !acc_ls;
      commits := !commits + o.H.Run.commits;
      aborts := !aborts + o.H.Run.aborts;
      t_total := !t_total +. t;
      ambiguous := !ambiguous + List.length o.H.Run.repl_ambiguous;
      (match o.H.Run.repl with
      | Some s ->
        failovers := !failovers + s.Cluster.failovers;
        gate_timeouts := !gate_timeouts + s.Cluster.gate_timeouts;
        stale := !stale + s.Cluster.stale_serves;
        resends := !resends + s.Cluster.resends
      | None -> ());
      let report = repl_verify o in
      bugs := !bugs + report.Leopard.Checker.bugs_total;
      match Leopard.Checker.verdict report with
      | Leopard.Checker.Verified -> incr verified
      | Leopard.Checker.Violation -> incr violation
      | Leopard.Checker.Inconclusive _ -> incr inconclusive
    done;
    let ls = List.concat !acc_ls in
    let tput =
      if !t_total <= 0.0 then 0.0
      else float_of_int (!commits + !aborts) /. !t_total
    in
    ( label, !commits, !aborts, !t_total, tput, pct ls 50.0, pct ls 99.0,
      !failovers, !gate_timeouts, !ambiguous, !stale, !resends, !verified,
      !violation, !inconclusive, !bugs )
  in
  ignore (run ~kind:`Bank ~seed:seed0 ()) (* warm-up *);
  let baseline =
    cell ~label:"single-node" ~kind:`Bank ~repl_of:(fun () -> None)
  in
  let rows =
    baseline
    :: List.concat_map
         (fun (ack, ack_name) ->
           List.map
             (fun (cls, kind, build) ->
               let d = match kind with `Bank -> d_bank | `Hot -> d_hot in
               cell
                 ~label:(Printf.sprintf "%s/%s" ack_name cls)
                 ~kind
                 ~repl_of:(fun () -> Some (build ~ack ~d)))
             classes)
         [ (Cluster.Sync, "sync"); (Cluster.Async, "async") ]
  in
  let verdict_mix v x i =
    String.concat " "
      (List.filter
         (fun s -> s <> "")
         [
           (if v > 0 then Printf.sprintf "%dV" v else "");
           (if x > 0 then Printf.sprintf "%dX" x else "");
           (if i > 0 then Printf.sprintf "%dI" i else "");
         ])
  in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [
        "cell"; "txns/s"; "wall(ms)"; "p50(us)"; "p99(us)"; "failovers";
        "gate-to"; "ambig"; "stale"; "resends"; "verdicts"; "bugs";
      ]
    (List.map
       (fun ( label, _c, _a, t, tput, p50, p99, fo, gt, amb, st, rs, v, x, i,
              bugs ) ->
         [
           label;
           Table.fmt_float ~decimals:0 tput;
           fmt_ms t;
           Table.fmt_float ~decimals:1 (p50 /. 1e3);
           Table.fmt_float ~decimals:1 (p99 /. 1e3);
           Table.fmt_int fo;
           Table.fmt_int gt;
           Table.fmt_int amb;
           Table.fmt_int st;
           Table.fmt_int rs;
           verdict_mix v x i;
           Table.fmt_int bugs;
         ])
       rows);
  print_endline
    "\nverdicts over 5 seeds: V = Verified, X = Violation, I = \
     Inconclusive.  Honest faults (partitions, failovers, gate \
     timeouts) only ever degrade to I; the planted faults \
     (promote-lagging, lose-acked, stale-read, split-brain) surface as \
     X wherever the workload leaves an observable contradiction.  Sync \
     ack under long hops trades planted-fault detection for ambiguity: \
     gates time out before the lie becomes provable.";
  if !emit_json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"txns\": %d,\n  \"clients\": %d,\n  \"seeds\": %d,\n" txns
         clients nseeds);
    Buffer.add_string buf "  \"cells\": [\n";
    let n = List.length rows in
    List.iteri
      (fun idx
           ( label, commits, aborts, t, tput, p50, p99, fo, gt, amb, st, rs,
             v, x, i, bugs ) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"cell\": %S, \"commits\": %d, \"aborts\": %d, \
              \"wall_ms\": %.3f, \"txns_per_s\": %.1f, \"p50_ns\": %.0f, \
              \"p99_ns\": %.0f, \"failovers\": %d, \"gate_timeouts\": %d, \
              \"ambiguous_commits\": %d, \"stale_serves\": %d, \"resends\": \
              %d, \"verified\": %d, \"violation\": %d, \"inconclusive\": \
              %d, \"bugs\": %d}%s\n"
             label commits aborts (t *. 1e3) tput p50 p99 fo gt amb st rs v x
             i bugs
             (if idx = n - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_replication.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "\nwrote BENCH_replication.json"
  end

(* ------------------------------------------------------------------ *)

let shard_bench () =
  let module Group = Leopard_shard.Group in
  let module Shard_fault = Leopard_shard.Shard_fault in
  let module Link = Leopard_net.Faulty_link in
  let module Codec = Leopard_trace.Codec in
  section "Sharding — fault class: fast path vs 2PC, latency and verdict mix";
  let clients = 16 and txns = 800 and nseeds = 5 and seed0 = 307 in
  let si = Minidb.Isolation.Snapshot_isolation in
  (* One hot row per shard of a 2-shard ring plus a cross-shard
     read-modify-write share: collisions are dense enough that a lying
     shard leaves an observable contradiction, and the cross-shard share
     keeps the 2PC path busy.  Smallbank's uniform accounts exercise the
     environmental cells but would leave the planted-lie cells
     Inconclusive for lack of witnesses, not strength of checker. *)
  let row_on shard =
    let rec go r =
      if r > 10_000 then failwith "no row found for shard"
      else if Group.shard_of_row ~shards:2 (0, r) = shard then r
      else go (r + 1)
    in
    go 0
  in
  let cross_rmw () =
    let next = W.Spec.fresh_value_counter () in
    let a = Leopard_trace.Cell.make ~table:0 ~row:(row_on 0) ~col:0 in
    let b = Leopard_trace.Cell.make ~table:0 ~row:(row_on 1) ~col:0 in
    W.Spec.make ~name:"cross-rmw"
      ~initial:[ (a, 0); (b, 0) ]
      ~next_txn:(fun rng ->
        match Leopard_util.Rng.int rng 4 with
        | 0 ->
          W.Program.read [ a ] (fun _ ->
              W.Program.write_then [ (a, next ()) ] W.Program.finish)
        | 1 ->
          W.Program.read [ b ] (fun _ ->
              W.Program.write_then [ (b, next ()) ] W.Program.finish)
        | _ ->
          W.Program.read [ a; b ] (fun _ ->
              W.Program.write_then
                [ (a, next ()); (b, next ()) ]
                W.Program.finish))
  in
  let spec_of = function `Bank -> W.Smallbank.spec () | `Cross -> cross_rmw () in
  let run ?shard ~kind ~seed () =
    let cfg =
      H.Run.config ~clients ~seed ?shard ~spec:(spec_of kind) ~profile:pg
        ~level:si ~stop:(H.Run.Txn_count txns) ()
    in
    let t0 = wall () in
    let o = H.Run.execute cfg in
    (o, wall () -. t0)
  in
  (* Fault instants and protocol timeouts scale with an unsharded probe
     of the same shape, so crashes and partition windows land mid-run
     regardless of the workload's absolute latency. *)
  let probe kind =
    let o, _ = run ~kind ~seed:seed0 () in
    o.H.Run.sim_duration_ns
  in
  let d_bank = probe `Bank and d_cross = probe `Cross in
  (* Offline verification exactly as the CLI does it: coordinator
     ambiguity marks first (the [P ... ?] lines), then the traces in
     timestamp order. *)
  let shard_verify (o : H.Run.outcome) =
    let checker = Leopard.Checker.create Leopard.Il_profile.postgresql_si in
    List.iter
      (fun (_client, txn, _at) ->
        Leopard.Checker.mark_coord_ambiguous checker ~txn)
      o.H.Run.coord_ambiguous;
    List.iter (Leopard.Checker.feed checker) (H.Run.all_traces_sorted o);
    Leopard.Checker.finalize checker;
    Leopard.Checker.report checker
  in
  let classes =
    [
      ( "clean", `Bank,
        fun ~d:_ -> H.Run.shard_config (Group.config ~shards:3 ()) );
      ( "hop", `Bank,
        fun ~d:_ ->
          H.Run.shard_config (Group.config ~shards:3 ~hop_ns:20_000 ()) );
      ( "lossy-link", `Bank,
        fun ~d:_ ->
          H.Run.shard_config
            (Group.config ~shards:3 ~hop_ns:20_000
               ~link:(Link.config ~drop_prob:0.05 ~dup_prob:0.05 ())
               ()) );
      ( "partition", `Bank,
        fun ~d ->
          H.Run.shard_config
            (Group.config ~shards:3
               ~hop_ns:(max 1 (d / 100))
               ~prepare_timeout_ns:(max 1 (d / 10))
               ~retransmit_ns:(max 1 (d / 50))
               ~partitions:
                 [
                   { Group.shard = 1; from_ns = d / 3; until_ns = 2 * d / 3 };
                 ]
               ()) );
      ( "coord-crash", `Bank,
        fun ~d ->
          H.Run.shard_config
            ~coord_crash_at:[ max 1 (d / 2) ]
            (Group.config ~shards:2
               ~hop_ns:(max 1 (d / 100))
               ~prepare_timeout_ns:(max 1 (d / 20))
               ~retransmit_ns:(max 1 (d / 50))
               ~link:(Link.config ~drop_prob:0.1 ())
               ()) );
      ( "fractured-commit", `Cross,
        fun ~d ->
          H.Run.shard_config
            ~coord_crash_at:[ max 1 (d / 4); max 1 (d / 2); max 1 (3 * d / 4) ]
            (Group.config ~shards:2
               ~hop_ns:(max 1 (d / 100))
               ~prepare_timeout_ns:(max 1 (d / 10))
               ~retransmit_ns:(max 1 (d / 50))
               ~link:(Link.config ~seed:9 ~drop_prob:0.05 ())
               ~faults:[ Shard_fault.Fractured_commit ] ()) );
      ( "commit-after-abort", `Cross,
        fun ~d ->
          H.Run.shard_config
            (Group.config ~shards:2
               ~hop_ns:(max 1 (d / 2000))
               ~prepare_timeout_ns:(max 1 (d / 50))
               ~retransmit_ns:(max 1 (d / 200))
               ~link:(Link.config ~seed:5 ~drop_prob:0.3 ())
               ~faults:[ Shard_fault.Commit_after_abort ] ()) );
      ( "snapshot-skew", `Cross,
        fun ~d ->
          H.Run.shard_config
            (Group.config ~shards:2
               ~hop_ns:(max 1 (d / 20))
               ~skew_bound_ns:(max 1 d)
               ~prepare_timeout_ns:(max 1 (d / 5))
               ~retransmit_ns:(max 1 (d / 20))
               ~faults:[ Shard_fault.Snapshot_skew ] ()) );
      ( "stale-prepared-read", `Cross,
        fun ~d ->
          H.Run.shard_config
            ~coord_crash_at:[ max 1 (d / 3) ]
            (Group.config ~shards:2
               ~hop_ns:(max 1 (d / 20))
               ~skew_bound_ns:(max 1 d)
               ~prepare_timeout_ns:(max 1 (d / 5))
               ~retransmit_ns:(max 1 (d / 20))
               ~faults:[ Shard_fault.Stale_prepared_read ] ()) );
    ]
  in
  let latencies (o : H.Run.outcome) =
    List.map
      (fun t ->
        float_of_int
          (t.Leopard_trace.Trace.ts_aft - t.Leopard_trace.Trace.ts_bef))
      (H.Run.all_traces_sorted o)
  in
  let pct = Leopard_util.Stats.percentile in
  let cell ~label ~kind ~shard_of =
    let acc_ls = ref [] in
    let commits = ref 0 and aborts = ref 0 and t_total = ref 0.0 in
    let fast = ref 0 and tpc_c = ref 0 and tpc_a = ref 0 in
    let orphans = ref 0 and resends = ref 0 and routed = ref 0 in
    let bugs = ref 0 in
    let verified = ref 0 and violation = ref 0 and inconclusive = ref 0 in
    for i = 0 to nseeds - 1 do
      let o, t = run ?shard:(shard_of ()) ~kind ~seed:(seed0 + i) () in
      acc_ls := latencies o :: !acc_ls;
      commits := !commits + o.H.Run.commits;
      aborts := !aborts + o.H.Run.aborts;
      t_total := !t_total +. t;
      orphans := !orphans + List.length o.H.Run.coord_ambiguous;
      (match o.H.Run.shard with
      | Some s ->
        fast := !fast + s.Group.fast_path_commits;
        tpc_c := !tpc_c + s.Group.tpc_commits;
        tpc_a := !tpc_a + s.Group.tpc_aborts;
        resends := !resends + s.Group.resends;
        routed := !routed + s.Group.routed_reads
      | None -> ());
      let report = shard_verify o in
      bugs := !bugs + report.Leopard.Checker.bugs_total;
      match Leopard.Checker.verdict report with
      | Leopard.Checker.Verified -> incr verified
      | Leopard.Checker.Violation -> incr violation
      | Leopard.Checker.Inconclusive _ -> incr inconclusive
    done;
    let ls = List.concat !acc_ls in
    let tput =
      if !t_total <= 0.0 then 0.0
      else float_of_int (!commits + !aborts) /. !t_total
    in
    ( label, !commits, !aborts, !t_total, tput, pct ls 50.0, pct ls 99.0,
      !fast, !tpc_c, !tpc_a, !orphans, !resends, !routed, !verified,
      !violation, !inconclusive, !bugs )
  in
  ignore (run ~kind:`Bank ~seed:seed0 ()) (* warm-up *);
  (* The zero-fault sharded run is byte-identical to the unsharded one:
     same traces, line for line. *)
  let identity =
    let plain, _ = run ~kind:`Bank ~seed:seed0 () in
    let sharded, _ =
      run ~shard:(H.Run.shard_config (Group.config ~shards:3 ())) ~kind:`Bank
        ~seed:seed0 ()
    in
    List.map Codec.to_line (H.Run.all_traces_sorted plain)
    = List.map Codec.to_line (H.Run.all_traces_sorted sharded)
  in
  Printf.printf "byte-identity, clean 3-shard vs unsharded (seed %d): %b\n\n"
    seed0 identity;
  let baseline =
    cell ~label:"unsharded" ~kind:`Bank ~shard_of:(fun () -> None)
  in
  let rows =
    baseline
    :: List.map
         (fun (cls, kind, build) ->
           let d = match kind with `Bank -> d_bank | `Cross -> d_cross in
           cell ~label:cls ~kind ~shard_of:(fun () -> Some (build ~d)))
         classes
  in
  let verdict_mix v x i =
    String.concat " "
      (List.filter
         (fun s -> s <> "")
         [
           (if v > 0 then Printf.sprintf "%dV" v else "");
           (if x > 0 then Printf.sprintf "%dX" x else "");
           (if i > 0 then Printf.sprintf "%dI" i else "");
         ])
  in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [
        "cell"; "txns/s"; "wall(ms)"; "p50(us)"; "p99(us)"; "fast"; "2pc-c";
        "2pc-a"; "orphans"; "resends"; "routed"; "verdicts"; "bugs";
      ]
    (List.map
       (fun ( label, _c, _a, t, tput, p50, p99, fast, tc, ta, orph, rs, rt, v,
              x, i, bugs ) ->
         [
           label;
           Table.fmt_float ~decimals:0 tput;
           fmt_ms t;
           Table.fmt_float ~decimals:1 (p50 /. 1e3);
           Table.fmt_float ~decimals:1 (p99 /. 1e3);
           Table.fmt_int fast;
           Table.fmt_int tc;
           Table.fmt_int ta;
           Table.fmt_int orph;
           Table.fmt_int rs;
           Table.fmt_int rt;
           verdict_mix v x i;
           Table.fmt_int bugs;
         ])
       rows);
  print_endline
    "\nverdicts over 5 seeds: V = Verified, X = Violation, I = \
     Inconclusive.  Environmental cells (hop, lossy-link, partition, \
     coord-crash) only ever degrade to I — an honest coordinator crash \
     orphans its undecided rounds into the coordinator-ambiguity \
     channel.  The planted lies (fractured-commit, commit-after-abort, \
     snapshot-skew, stale-prepared-read) surface as X wherever the \
     workload leaves an observable contradiction.";
  if !emit_json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"txns\": %d,\n  \"clients\": %d,\n  \"seeds\": %d,\n  \
          \"byte_identical_clean\": %b,\n" txns clients nseeds identity);
    Buffer.add_string buf "  \"cells\": [\n";
    let n = List.length rows in
    List.iteri
      (fun idx
           ( label, commits, aborts, t, tput, p50, p99, fast, tc, ta, orph,
             rs, rt, v, x, i, bugs ) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"cell\": %S, \"commits\": %d, \"aborts\": %d, \
              \"wall_ms\": %.3f, \"txns_per_s\": %.1f, \"p50_ns\": %.0f, \
              \"p99_ns\": %.0f, \"fast_path_commits\": %d, \"tpc_commits\": \
              %d, \"tpc_aborts\": %d, \"coord_ambiguous\": %d, \"resends\": \
              %d, \"routed_reads\": %d, \"verified\": %d, \"violation\": \
              %d, \"inconclusive\": %d, \"bugs\": %d}%s\n"
             label commits aborts (t *. 1e3) tput p50 p99 fast tc ta orph rs
             rt v x i bugs
             (if idx = n - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_shard.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "\nwrote BENCH_shard.json"
  end

let shard_repl_bench () =
  let module Group = Leopard_shard.Group in
  let module Shard_fault = Leopard_shard.Shard_fault in
  let module Repl_fault = Leopard_replication.Repl_fault in
  let module Stack = Leopard_compose.Stack in
  let module Link = Leopard_net.Faulty_link in
  let module Wal = Minidb.Wal in
  let module Codec = Leopard_trace.Codec in
  section
    "Stacked planes — every shard a full minidb (WAL + replica set), \
     composed crash/failover";
  let clients = 16 and txns = 600 and nseeds = 5 and seed0 = 413 in
  let si = Minidb.Isolation.Snapshot_isolation in
  let row_on shard =
    let rec go r =
      if r > 10_000 then failwith "no row found for shard"
      else if Group.shard_of_row ~shards:2 (0, r) = shard then r
      else go (r + 1)
    in
    go 0
  in
  (* The shard bench's dense cross-shard read-modify-write: a shard
     that silently loses a committed record under a stacked fault
     leaves witnesses on the global trace. *)
  let cross_rmw () =
    let next = W.Spec.fresh_value_counter () in
    let a = Leopard_trace.Cell.make ~table:0 ~row:(row_on 0) ~col:0 in
    let b = Leopard_trace.Cell.make ~table:0 ~row:(row_on 1) ~col:0 in
    W.Spec.make ~name:"cross-rmw"
      ~initial:[ (a, 0); (b, 0) ]
      ~next_txn:(fun rng ->
        match Leopard_util.Rng.int rng 4 with
        | 0 ->
          W.Program.read [ a ] (fun _ ->
              W.Program.write_then [ (a, next ()) ] W.Program.finish)
        | 1 ->
          W.Program.read [ b ] (fun _ ->
              W.Program.write_then [ (b, next ()) ] W.Program.finish)
        | _ ->
          W.Program.read [ a; b ] (fun _ ->
              W.Program.write_then
                [ (a, next ()); (b, next ()) ]
                W.Program.finish))
  in
  let run ?shard ?(shape = `Dense) ~seed () =
    let cl, tx = match shape with `Dense -> (clients, txns) | `Sparse -> (4, 80) in
    let cfg =
      H.Run.config ~clients:cl ~seed ?shard ~spec:(cross_rmw ()) ~profile:pg
        ~level:si ~stop:(H.Run.Txn_count tx) ()
    in
    let t0 = wall () in
    let o = H.Run.execute cfg in
    (o, wall () -. t0)
  in
  let d = (fst (run ~seed:seed0 ())).H.Run.sim_duration_ns in
  let d_sparse =
    (fst (run ~shape:`Sparse ~seed:seed0 ())).H.Run.sim_duration_ns
  in
  (* Offline verification exactly as the CLI does it for a stacked run:
     restart epochs, coordinator-ambiguity marks, failover marks (lost
     beats ambiguous), then the traces in timestamp order. *)
  let stack_verify (o : H.Run.outcome) =
    let checker = Leopard.Checker.create Leopard.Il_profile.postgresql_si in
    List.iter
      (fun (m : H.Run.epoch_mark) ->
        Leopard.Checker.note_restart checker ~at:m.H.Run.at
          ~replayed:m.H.Run.replayed ~damaged:m.H.Run.damaged)
      o.H.Run.epochs;
    List.iter
      (fun (_client, txn, _at) ->
        Leopard.Checker.mark_coord_ambiguous checker ~txn)
      o.H.Run.coord_ambiguous;
    List.iter
      (fun (m : Codec.leader_mark) ->
        Leopard.Checker.note_failover checker ~at:m.Codec.at
          ~epoch:m.Codec.epoch ~lost:m.Codec.lost)
      o.H.Run.leaders;
    List.iter (Leopard.Checker.feed checker) (H.Run.all_traces_sorted o);
    Leopard.Checker.finalize checker;
    Leopard.Checker.report checker
  in
  let wal_chaos =
    Wal.fault_cfg ~seed:11 ~torn_tail_prob:0.4 ~lost_fsync_prob:0.3
      ~lost_fsync_window:3 ~dup_replay_prob:0.2 ()
  in
  (* Honest cells only ever degrade (at worst to Inconclusive); the two
     planted lies — a lagging promotion claiming a clean rebuild inside
     one shard's replica set, and a fractured decision log on a
     just-failed-over primary — must surface as Violation. *)
  let classes =
    [
      ( "clean-stack", `Dense,
        fun ~d:_ ~seed:_ ->
          H.Run.shard_config
            ~stack:(Stack.config ~followers:2 ())
            (Group.config ~shards:3 ~wal_faults:(Wal.fault_cfg ()) ()) );
      ( "repl-hop", `Dense,
        fun ~d:_ ~seed:_ ->
          H.Run.shard_config
            ~stack:(Stack.config ~followers:2 ~hop_ns:20_000 ())
            (Group.config ~shards:3 ()) );
      ( "lagging-replicas", `Dense,
        fun ~d:_ ~seed:_ ->
          H.Run.shard_config
            ~stack:
              (Stack.config ~followers:2 ~hop_ns:20_000
                 ~link:(Link.config ~seed:3 ~drop_prob:0.5 ())
                 ())
            (Group.config ~shards:2 ()) );
      ( "honest-failover", `Dense,
        fun ~d ~seed:_ ->
          H.Run.shard_config
            ~stack:
              (Stack.config ~followers:2
                 ~hop_ns:(max 1 (d / 200))
                 ~link:(Link.config ~seed:5 ~drop_prob:0.3 ())
                 ())
            ~shard_failover_at:[ (max 1 (d / 2), 0); (max 1 (3 * d / 4), 1) ]
            (Group.config ~shards:2 ()) );
      ( "stacked-chaos", `Dense,
        fun ~d ~seed:_ ->
          H.Run.shard_config
            ~coord_crash_at:[ max 1 (d / 3) ]
            ~part_crash_at:[ (max 1 (d / 4), 1) ]
            ~stack:
              (Stack.config ~followers:2
                 ~hop_ns:(max 1 (d / 200))
                 ~link:(Link.config ~seed:7 ~drop_prob:0.3 ())
                 ())
            ~shard_failover_at:[ (max 1 (d / 2), 0); (max 1 (3 * d / 4), 1) ]
            (Group.config ~shards:2
               ~hop_ns:(max 1 (d / 100))
               ~prepare_timeout_ns:(max 1 (d / 10))
               ~retransmit_ns:(max 1 (d / 50))
               ~wal_faults:wal_chaos ()) );
      ( "promote-lagging", `Dense,
        fun ~d ~seed:_ ->
          H.Run.shard_config
            ~stack:
              (Stack.config ~followers:2
                 ~link:(Link.config ~seed:9 ~drop_prob:1.0 ())
                 ~faults:[ Repl_fault.Promote_lagging ] ())
            ~shard_failover_at:[ (max 1 (d / 2), 0) ]
            (Group.config ~shards:2 ()) );
      ( "fractured-on-failover", `Sparse,
        fun ~d ~seed ->
          H.Run.shard_config
            ~stack:
              (Stack.config ~followers:2
                 ~hop_ns:(max 1 (d / 100))
                 ~link:(Link.config ~seed:13 ~drop_prob:0.3 ())
                 ~retransmit_ns:(max 1 (d / 50))
                 ~seed ())
            ~shard_failover_at:[ (max 1 (d / 2), 0); (max 1 (2 * d / 3), 1) ]
            (Group.config ~shards:2 ~faults:[ Shard_fault.Fractured_commit ]
               ()) );
    ]
  in
  let latencies (o : H.Run.outcome) =
    List.map
      (fun t ->
        float_of_int
          (t.Leopard_trace.Trace.ts_aft - t.Leopard_trace.Trace.ts_bef))
      (H.Run.all_traces_sorted o)
  in
  let pct = Leopard_util.Stats.percentile in
  let cell ~label ~shape ~shard_of =
    let acc_ls = ref [] in
    let commits = ref 0 and aborts = ref 0 and t_total = ref 0.0 in
    let fwd = ref 0 and appends = ref 0 in
    let fo = ref 0 and claimed = ref 0 and lost = ref 0 in
    let orphans = ref 0 and bugs = ref 0 in
    let verified = ref 0 and violation = ref 0 and inconclusive = ref 0 in
    for i = 0 to nseeds - 1 do
      let o, t = run ?shard:(shard_of (seed0 + i)) ~shape ~seed:(seed0 + i) () in
      acc_ls := latencies o :: !acc_ls;
      commits := !commits + o.H.Run.commits;
      aborts := !aborts + o.H.Run.aborts;
      t_total := !t_total +. t;
      orphans := !orphans + List.length o.H.Run.coord_ambiguous;
      (match o.H.Run.shard_repl with
      | Some s ->
        fwd := !fwd + s.Stack.forwarded;
        appends := !appends + s.Stack.appends_sent;
        fo := !fo + s.Stack.failovers;
        claimed := !claimed + s.Stack.claimed_clean;
        lost := !lost + s.Stack.lost_records
      | None -> ());
      let report = stack_verify o in
      bugs := !bugs + report.Leopard.Checker.bugs_total;
      match Leopard.Checker.verdict report with
      | Leopard.Checker.Verified -> incr verified
      | Leopard.Checker.Violation -> incr violation
      | Leopard.Checker.Inconclusive _ -> incr inconclusive
    done;
    let ls = List.concat !acc_ls in
    let tput =
      if !t_total <= 0.0 then 0.0
      else float_of_int (!commits + !aborts) /. !t_total
    in
    ( label, !commits, !aborts, !t_total, tput, pct ls 50.0, pct ls 99.0,
      !fwd, !appends, !fo, !claimed, !lost, !orphans, !verified, !violation,
      !inconclusive, !bugs )
  in
  ignore (run ~seed:seed0 ()) (* warm-up *);
  (* The zero-fault stacked run — 3 shards, 2 replicas each, per-shard
     WALs, nothing faulty — is byte-identical to the unsharded,
     unreplicated one: same traces, line for line. *)
  let identity =
    let plain, _ = run ~seed:seed0 () in
    let stacked, _ =
      run
        ~shard:
          (H.Run.shard_config
             ~stack:(Stack.config ~followers:2 ())
             (Group.config ~shards:3 ~wal_faults:(Wal.fault_cfg ()) ()))
        ~seed:seed0 ()
    in
    List.map Codec.to_line (H.Run.all_traces_sorted plain)
    = List.map Codec.to_line (H.Run.all_traces_sorted stacked)
  in
  Printf.printf
    "byte-identity, clean stacked 3-shard x 2-replica vs plain (seed %d): \
     %b\n\n"
    seed0 identity;
  let baseline =
    cell ~label:"unstacked" ~shape:`Dense ~shard_of:(fun _seed -> None)
  in
  let rows =
    baseline
    :: List.map
         (fun (cls, shape, build) ->
           let d = match shape with `Dense -> d | `Sparse -> d_sparse in
           cell ~label:cls ~shape ~shard_of:(fun seed -> Some (build ~d ~seed)))
         classes
  in
  let verdict_mix v x i =
    String.concat " "
      (List.filter
         (fun s -> s <> "")
         [
           (if v > 0 then Printf.sprintf "%dV" v else "");
           (if x > 0 then Printf.sprintf "%dX" x else "");
           (if i > 0 then Printf.sprintf "%dI" i else "");
         ])
  in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [
        "cell"; "txns/s"; "wall(ms)"; "p50(us)"; "p99(us)"; "fwd"; "appends";
        "fo"; "claimed"; "lost"; "orphans"; "verdicts"; "bugs";
      ]
    (List.map
       (fun ( label, _c, _a, t, tput, p50, p99, fwd, ap, fo, cl, lo, orph, v,
              x, i, bugs ) ->
         [
           label;
           Table.fmt_float ~decimals:0 tput;
           fmt_ms t;
           Table.fmt_float ~decimals:1 (p50 /. 1e3);
           Table.fmt_float ~decimals:1 (p99 /. 1e3);
           Table.fmt_int fwd;
           Table.fmt_int ap;
           Table.fmt_int fo;
           Table.fmt_int cl;
           Table.fmt_int lo;
           Table.fmt_int orph;
           verdict_mix v x i;
           Table.fmt_int bugs;
         ])
       rows);
  print_endline
    "\nverdicts over 5 seeds: V = Verified, X = Violation, I = \
     Inconclusive.  Honest stacked cells (replication hops, lagging \
     replicas, lossless failovers, coordinator + participant crashes \
     with WAL damage) at worst degrade to I — an honest failover \
     re-acks the survivor prefix and the coordinator backfills the \
     rest.  The planted lies (promote-lagging inside one shard's \
     replica set, fractured-commit on a just-failed-over primary) \
     surface as X wherever the workload leaves a witness; the \
     fractured cell runs the sparse shape (4 clients, 80 txns) \
     because at full density the spliced slice is overwritten before \
     any read can observe the hole.";
  if !emit_json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"txns\": %d,\n  \"clients\": %d,\n  \"seeds\": %d,\n  \
          \"byte_identical_clean\": %b,\n" txns clients nseeds identity);
    Buffer.add_string buf "  \"cells\": [\n";
    let n = List.length rows in
    List.iteri
      (fun idx
           ( label, commits, aborts, t, tput, p50, p99, fwd, ap, fo, cl, lo,
             orph, v, x, i, bugs ) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"cell\": %S, \"commits\": %d, \"aborts\": %d, \
              \"wall_ms\": %.3f, \"txns_per_s\": %.1f, \"p50_ns\": %.0f, \
              \"p99_ns\": %.0f, \"forwarded\": %d, \"appends_sent\": %d, \
              \"failovers\": %d, \"claimed_clean\": %d, \"lost_records\": \
              %d, \"coord_ambiguous\": %d, \"verified\": %d, \"violation\": \
              %d, \"inconclusive\": %d, \"bugs\": %d}%s\n"
             label commits aborts (t *. 1e3) tput p50 p99 fwd ap fo cl lo
             orph v x i bugs
             (if idx = n - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_shard_repl.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "\nwrote BENCH_shard_repl.json"
  end

(* ------------------------------------------------------------------ *)
(* Campaign: grid sweep throughput, serial vs domain pool *)

let campaign_bench () =
  let module G = Leopard_campaign.Grid in
  let module O = Leopard_campaign.Orchestrator in
  section "Campaign — grid sweep cells/s, serial vs domain pool";
  (* A miniature of the full preset grid: one class per fault plane,
     scaled down so the bench leg stays fast.  Byte-identity of the
     serial and parallel results DB is asserted, not just reported. *)
  let classes =
    List.filter_map
      (fun name ->
        Option.map
          (fun c -> G.scale ~txns:200 ~clients:4 c)
          (G.find_preset name))
      [
        "honest-baseline"; "honest-chaos"; "honest-recovery"; "honest-net";
        "honest-repl"; "honest-shard"; "honest-stacked";
      ]
  in
  let grid = G.make ~campaign_seed:42 ~seeds_per_class:4 classes in
  let cells = G.cell_count grid in
  let sweep jobs =
    let t0 = wall () in
    let o = O.run ~opts:{ O.default_opts with jobs; shrink = false } grid in
    (o, wall () -. t0)
  in
  ignore (sweep 1) (* warm-up: exclude cold-start noise *);
  let o_serial, t_serial = sweep 1 in
  let jobs_n = Domain.recommended_domain_count () in
  let o_par, t_par = sweep jobs_n in
  let identical =
    match (o_serial.O.json, o_par.O.json) with
    | Some a, Some b -> String.equal a b
    | (Some _ | None), _ -> false
  in
  assert identical;
  let rate t = if t <= 0.0 then 0.0 else float_of_int cells /. t in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:[ "sweep"; "jobs"; "cells"; "wall(ms)"; "cells/s" ]
    [
      [
        "serial"; "1"; Table.fmt_int cells; fmt_ms t_serial;
        Table.fmt_float ~decimals:1 (rate t_serial);
      ];
      [
        "parallel"; string_of_int jobs_n; Table.fmt_int cells; fmt_ms t_par;
        Table.fmt_float ~decimals:1 (rate t_par);
      ];
    ];
  Printf.printf
    "\nspeedup %.2fx over %d job(s); serial and parallel results DB are \
     byte-identical\n"
    (if t_par <= 0.0 then 0.0 else t_serial /. t_par)
    jobs_n;
  if !emit_json then begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"cells\": %d,\n  \"classes\": %d,\n" cells
         (List.length classes));
    Buffer.add_string buf
      (Printf.sprintf
         "  \"serial_wall_ms\": %.3f,\n  \"serial_cells_per_s\": %.2f,\n"
         (t_serial *. 1e3) (rate t_serial));
    Buffer.add_string buf
      (Printf.sprintf
         "  \"parallel_jobs\": %d,\n  \"parallel_wall_ms\": %.3f,\n  \
          \"parallel_cells_per_s\": %.2f,\n"
         jobs_n (t_par *. 1e3) (rate t_par));
    Buffer.add_string buf
      (Printf.sprintf "  \"byte_identical\": %b\n" identical);
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_campaign.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "\nwrote BENCH_campaign.json"
  end

(* ------------------------------------------------------------------ *)

let lint_bench () =
  let module D = Leopard_analysis.Driver in
  section "Lint — interprocedural analysis wall, cold vs warm summary cache";
  let roots =
    List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples" ]
  in
  let cache_file = Filename.temp_file "leopard_lint_bench" ".cache" in
  Sys.remove cache_file (* the cold run must start without a cache *);
  let run () =
    let t0 = wall () in
    let s = D.lint_paths ~cache_file ~clock:wall roots in
    (s, wall () -. t0)
  in
  let s_cold, t_cold = run () in
  let s_warm, t_warm = run () in
  if Sys.file_exists cache_file then Sys.remove cache_file;
  let row name (s : D.summary) t =
    let tm = s.D.timings in
    [
      name; fmt_ms t; fmt_ms tm.D.t_parse; fmt_ms tm.D.t_syntactic;
      fmt_ms tm.D.t_extract; fmt_ms tm.D.t_graph; fmt_ms tm.D.t_race;
      fmt_ms tm.D.t_taint; fmt_ms tm.D.t_stale;
      Table.fmt_int (List.length s.D.reanalyzed);
      Table.fmt_int (List.length s.D.cached);
    ]
  in
  Table.print
    ~aligns:Table.[ Left ]
    ~header:
      [
        "run"; "wall(ms)"; "parse"; "syn(D/F/E)"; "extract"; "graph";
        "race(P1/2)"; "taint(P3)"; "stale(S1)"; "reanalyzed"; "cached";
      ]
    [ row "cold" s_cold t_cold; row "warm" s_warm t_warm ];
  let ratio = if t_cold <= 0.0 then 0.0 else t_warm /. t_cold in
  Printf.printf "\n%d files, %d active, %d suppressed; warm/cold = %.2f (%s)\n"
    s_cold.D.files s_cold.D.active s_cold.D.suppressed_total ratio
    (if ratio < 0.5 then "warm < 50% of cold: PASS"
     else "warm >= 50% of cold");
  if !emit_json then begin
    let stage (s : D.summary) t =
      let tm = s.D.timings in
      Printf.sprintf
        "{ \"wall_ms\": %.3f, \"parse_ms\": %.3f, \"syntactic_ms\": %.3f, \
         \"extract_ms\": %.3f, \"graph_ms\": %.3f, \"race_ms\": %.3f, \
         \"taint_ms\": %.3f, \"stale_ms\": %.3f, \"reanalyzed\": %d, \
         \"cached\": %d }"
        (t *. 1e3) (tm.D.t_parse *. 1e3) (tm.D.t_syntactic *. 1e3)
        (tm.D.t_extract *. 1e3) (tm.D.t_graph *. 1e3) (tm.D.t_race *. 1e3)
        (tm.D.t_taint *. 1e3) (tm.D.t_stale *. 1e3)
        (List.length s.D.reanalyzed)
        (List.length s.D.cached)
    in
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"files\": %d,\n  \"active\": %d,\n  \"suppressed\": %d,\n"
         s_cold.D.files s_cold.D.active s_cold.D.suppressed_total);
    Buffer.add_string buf
      (Printf.sprintf "  \"cold\": %s,\n" (stage s_cold t_cold));
    Buffer.add_string buf
      (Printf.sprintf "  \"warm\": %s,\n" (stage s_warm t_warm));
    Buffer.add_string buf
      (Printf.sprintf "  \"warm_over_cold\": %.4f\n" ratio);
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_lint.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_endline "\nwrote BENCH_lint.json"
  end

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig4", fig4);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("bugs", bugs);
    ("profiles", profiles);
    ("online", online);
    ("ablation", ablation);
    ("recovery", recovery);
    ("net", net_bench);
    ("replication", replication_bench);
    ("shard", shard_bench);
    ("shard-repl", shard_repl_bench);
    ("campaign", campaign_bench);
    ("lint", lint_bench);
    ("micro", micro);
  ]

let () =
  let argv =
    List.filter
      (fun a ->
        if a = "--json" then begin
          emit_json := true;
          false
        end
        else true)
      (Array.to_list Sys.argv)
  in
  let requested =
    match argv with
    | _ :: ([ arg ] as args) ->
      if List.mem arg [ "-h"; "--help" ] then begin
        Printf.printf "usage: main.exe [%s]\n"
          (String.concat "|" (List.map fst experiments));
        exit 0
      end
      else args
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst experiments
  in
  let t0 = wall () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %s (have: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 2)
    requested;
  Printf.printf "\nall experiments done in %.1f s (cpu)\n" (wall () -. t0)
