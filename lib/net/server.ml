module Engine = Minidb.Engine

type session = {
  queue : (Wire.request * (Wire.response -> unit)) Queue.t;
  mutable busy : bool;  (* a request is executing right now *)
}

type t = {
  engine : Engine.t;
  queue_capacity : int;
  sessions : (int, session) Hashtbl.t;
  txns : (int, Engine.txn) Hashtbl.t;
  mutable n_rejected : int;
}

let create ~engine ~queue_capacity =
  if queue_capacity < 1 then
    invalid_arg "Server.create: queue_capacity must be >= 1";
  {
    engine;
    queue_capacity;
    sessions = Hashtbl.create 64;
    txns = Hashtbl.create 4096;
    n_rejected = 0;
  }

let register_txn t txn = Hashtbl.replace t.txns (Engine.txn_id txn) txn

let session_of t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s -> s
  | None ->
    let s = { queue = Queue.create (); busy = false } in
    Hashtbl.replace t.sessions id s;
    s

let result_to_resp = function
  | Engine.Ok_read items -> Wire.Ok_read items
  | Engine.Ok_write -> Wire.Ok_write
  | Engine.Ok_commit -> Wire.Ok_commit
  | Engine.Err reason -> Wire.Refused reason

let dispatch t (req : Wire.request) ~k =
  match req.Wire.body with
  | Wire.Begin ->
    let txn = Engine.begin_txn t.engine ~client:req.Wire.session in
    register_txn t txn;
    k (Wire.Began (Engine.txn_id txn))
  | (Wire.Read _ | Wire.Write _ | Wire.Commit _ | Wire.Abort) as body -> (
    match Hashtbl.find_opt t.txns req.Wire.txn with
    | None ->
      (* unknown transaction (e.g. a straggler for a pruned id): a
         definite refusal, never a hang *)
      k (Wire.Refused Engine.User_abort)
    | Some txn ->
      let request =
        match body with
        | Wire.Read { cells; locking; predicate } ->
          Engine.Read { cells; locking; predicate }
        | Wire.Write items -> Engine.Write items
        | Wire.Commit _ -> Engine.Commit
        | Wire.Abort -> Engine.Abort
        | Wire.Begin -> assert false
      in
      Engine.exec t.engine txn ~op_id:req.Wire.op request ~k:(fun r ->
          k (result_to_resp r)))

let rec pump t s =
  match Queue.take_opt s.queue with
  | None -> s.busy <- false
  | Some (req, reply) ->
    dispatch t req ~k:(fun body ->
        reply { Wire.session = req.Wire.session; seq = req.Wire.seq; body };
        pump t s)

let submit t (req : Wire.request) ~reply =
  let s = session_of t req.Wire.session in
  if s.busy && Queue.length s.queue >= t.queue_capacity then begin
    t.n_rejected <- t.n_rejected + 1;
    reply
      {
        Wire.session = req.Wire.session;
        seq = req.Wire.seq;
        body = Wire.Rejected;
      }
  end
  else begin
    Queue.push (req, reply) s.queue;
    if not s.busy then begin
      s.busy <- true;
      pump t s
    end
  end

let rejected t = t.n_rejected
