module Rng = Leopard_util.Rng

type config = {
  seed : int;
  delay_prob : float;
  max_delay_ns : int;
  drop_prob : float;
  dup_prob : float;
  reorder_prob : float;
  reorder_window_ns : int;
  reset_prob : float;
}

let disabled =
  {
    seed = 1;
    delay_prob = 0.0;
    max_delay_ns = 400_000;
    drop_prob = 0.0;
    dup_prob = 0.0;
    reorder_prob = 0.0;
    reorder_window_ns = 200_000;
    reset_prob = 0.0;
  }

let config ?(seed = 1) ?(delay_prob = 0.0) ?(max_delay_ns = 400_000)
    ?(drop_prob = 0.0) ?(dup_prob = 0.0) ?(reorder_prob = 0.0)
    ?(reorder_window_ns = 200_000) ?(reset_prob = 0.0) () =
  {
    seed;
    delay_prob;
    max_delay_ns;
    drop_prob;
    dup_prob;
    reorder_prob;
    reorder_window_ns;
    reset_prob;
  }

let is_disabled c =
  c.delay_prob <= 0.0 && c.drop_prob <= 0.0 && c.dup_prob <= 0.0
  && c.reorder_prob <= 0.0 && c.reset_prob <= 0.0

type fate = Deliver of int list | Drop | Reset

type t = {
  cfg : config;
  per_session : Rng.t array;
  mutable n_resets : int;
  mutable n_dropped : int;
  mutable n_duplicated : int;
  mutable n_delayed : int;
  mutable n_reordered : int;
}

let create ~sessions cfg =
  let root = Rng.create cfg.seed in
  {
    cfg;
    per_session = Array.init sessions (fun _ -> Rng.split root);
    n_resets = 0;
    n_dropped = 0;
    n_duplicated = 0;
    n_delayed = 0;
    n_reordered = 0;
  }

let cfg t = t.cfg

(* One copy's extra latency: a long delay, a reordering-window slot, or
   nothing.  Reordering is just a bounded random delay — a later message
   drawn a smaller slot (or none) overtakes this one. *)
let extra_of_copy t rng =
  if Rng.chance rng t.cfg.delay_prob then begin
    t.n_delayed <- t.n_delayed + 1;
    1 + Rng.int rng (max 1 t.cfg.max_delay_ns)
  end
  else if Rng.chance rng t.cfg.reorder_prob then begin
    t.n_reordered <- t.n_reordered + 1;
    1 + Rng.int rng (max 1 t.cfg.reorder_window_ns)
  end
  else 0

let route t ~session =
  if is_disabled t.cfg then Deliver [ 0 ]
  else begin
    let rng = t.per_session.(session) in
    if Rng.chance rng t.cfg.reset_prob then begin
      t.n_resets <- t.n_resets + 1;
      Reset
    end
    else if Rng.chance rng t.cfg.drop_prob then begin
      t.n_dropped <- t.n_dropped + 1;
      Drop
    end
    else begin
      let first = extra_of_copy t rng in
      if Rng.chance rng t.cfg.dup_prob then begin
        t.n_duplicated <- t.n_duplicated + 1;
        Deliver [ first; extra_of_copy t rng ]
      end
      else Deliver [ first ]
    end
  end

let resets t = t.n_resets
let dropped t = t.n_dropped
let duplicated t = t.n_duplicated
let delayed t = t.n_delayed
let reordered t = t.n_reordered
