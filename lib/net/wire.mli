(** The wire protocol between client sessions and the server.

    Every message is tagged with the issuing session and a per-session,
    strictly monotone sequence number.  The sequence number is what makes
    retries safe: a response is matched to the {e call} it answers, so a
    duplicated or straggling response for an already-settled call is
    recognised and dropped instead of being misattributed to a later
    request.

    [Commit] additionally carries an idempotency token (the transaction
    id): the server applies a commit with a given token {e exactly once},
    so a retried or link-duplicated COMMIT that reaches the server after
    the original took effect is acknowledged again rather than
    re-executed or refused — see {!Minidb.Engine.exec}. *)

module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type req_body =
  | Begin
  | Read of { cells : Cell.t list; locking : bool; predicate : bool }
  | Write of (Cell.t * Trace.value) list
  | Commit of { token : int }
      (** [token] identifies the commit intent; applying the same token
          twice is a no-op acknowledged positively *)
  | Abort

type request = {
  session : int;  (** issuing client session *)
  seq : int;  (** per-session sequence number, monotone *)
  txn : int;  (** transaction the operation belongs to *)
  op : int;  (** harness-level operation id (ground-truth bookkeeping) *)
  body : req_body;
}

type resp_body =
  | Began of int  (** transaction id allocated by the server *)
  | Ok_read of Trace.item list
  | Ok_write
  | Ok_commit
  | Refused of Minidb.Engine.abort_reason
      (** definite engine-side refusal: the transaction is dead *)
  | Rejected
      (** load shed: the session queue was full and the request was
          {e never executed} — a definite negative, unlike a timeout *)

type response = { session : int; seq : int; body : resp_body }

val body_kind : req_body -> string
(** Short tag for logs/debugging ("begin", "read", ...). *)

(** {2 Replication messages}

    Log shipping between the primary and its followers travels as
    [repl_msg] values through the same {!Faulty_link} machinery as
    client traffic (each follower is one link session), so partitions,
    delays, duplication and reordering apply to replication for free.
    The vocabulary is deliberately separate from the client
    request/response protocol: a replica session never speaks SQL. *)

type repl_msg =
  | Repl_append of { follower : int; index : int; record : Minidb.Wal.record }
      (** ship log entry [index] (1-based, append order) to [follower] *)
  | Repl_ack of { follower : int; through : int }
      (** cumulative: [follower] has applied every entry [<= through],
          so lost or reordered acks are subsumed by any later one *)

val repl_kind : repl_msg -> string
(** Short tag for logs/debugging ("repl-append" / "repl-ack"). *)

(** {2 Two-phase-commit messages}

    Cross-shard commit protocol traffic between the 2PC coordinator and
    its shard participants travels as [tpc_msg] values through the same
    {!Faulty_link} machinery (each shard is one link session), so every
    seeded wire fault — drop, duplication, delay, reordering, reset,
    partition — applies to PREPARE/COMMIT/ABORT/ACK exactly as it does
    to client and replication traffic.  Like {!repl_msg}, the
    vocabulary is deliberately separate: a shard session never speaks
    the client protocol. *)

type tpc_msg =
  | Tpc_prepare of {
      shard : int;
      txn : int;
      start_ts : int;  (** the transaction's begin stamp *)
      writes : (Cell.t * Trace.value) list;
          (** the shard's slice of the pending write set *)
    }
  | Tpc_vote of { shard : int; txn : int; commit : bool }
      (** [commit = false] is a veto (prepared-lock conflict): the
          coordinator must decide ABORT *)
  | Tpc_decision of { shard : int; seq : int; record : Minidb.Wal.record }
      (** commit decision: apply [record]'s slice as per-shard log entry
          [seq] (1-based, strictly sequential like replication) *)
  | Tpc_abort of { shard : int; txn : int }
      (** abort decision (and presumed-abort after a coordinator crash):
          release [txn]'s prepared locks without applying *)
  | Tpc_ack of { shard : int; through : int }
      (** cumulative: the shard has applied every decision [<= through] *)

val tpc_kind : tpc_msg -> string
(** Short tag for logs/debugging ("tpc-prepare", "tpc-vote", ...). *)
