module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type req_body =
  | Begin
  | Read of { cells : Cell.t list; locking : bool; predicate : bool }
  | Write of (Cell.t * Trace.value) list
  | Commit of { token : int }
  | Abort

type request = {
  session : int;
  seq : int;
  txn : int;
  op : int;
  body : req_body;
}

type resp_body =
  | Began of int
  | Ok_read of Trace.item list
  | Ok_write
  | Ok_commit
  | Refused of Minidb.Engine.abort_reason
  | Rejected

type response = { session : int; seq : int; body : resp_body }

let body_kind = function
  | Begin -> "begin"
  | Read _ -> "read"
  | Write _ -> "write"
  | Commit _ -> "commit"
  | Abort -> "abort"

(* Replication traffic rides the same faulty links as client traffic but
   is a separate vocabulary: a replica session never speaks the
   request/response protocol and a client session never sees a
   REPL_APPEND.  Acks are cumulative, so a dropped or reordered ack is
   subsumed by any later one. *)
type repl_msg =
  | Repl_append of { follower : int; index : int; record : Minidb.Wal.record }
  | Repl_ack of { follower : int; through : int }

let repl_kind = function
  | Repl_append _ -> "repl-append"
  | Repl_ack _ -> "repl-ack"

(* Two-phase-commit traffic between the coordinator and shard
   participants rides the same faulty links (one session per shard), as
   a third vocabulary: PREPARE carries the shard's slice of a pending
   write set, votes answer it, commit decisions ship the durable record
   in per-shard sequence order, aborts are out-of-band, and acks are
   cumulative like replication acks. *)
type tpc_msg =
  | Tpc_prepare of {
      shard : int;
      txn : int;
      start_ts : int;
      writes : (Cell.t * Trace.value) list;
    }
  | Tpc_vote of { shard : int; txn : int; commit : bool }
  | Tpc_decision of { shard : int; seq : int; record : Minidb.Wal.record }
  | Tpc_abort of { shard : int; txn : int }
  | Tpc_ack of { shard : int; through : int }

let tpc_kind = function
  | Tpc_prepare _ -> "tpc-prepare"
  | Tpc_vote _ -> "tpc-vote"
  | Tpc_decision _ -> "tpc-decision"
  | Tpc_abort _ -> "tpc-abort"
  | Tpc_ack _ -> "tpc-ack"
