(** A deterministic, seeded fault channel for wire messages.

    The fourth fault plane of the repo: {!Minidb.Fault} corrupts the
    engine's concurrency control, {!Minidb.Wal} faults corrupt what
    survives a server crash, [Harness.Chaos] corrupts trace delivery to
    the verifier — and this module corrupts the {e request/response
    wire} between a client session and the server.  Network faults never
    change what the database did and never lose a logged trace; they
    change which requests arrive, how often, and whether the client
    learns the outcome.

    The interesting composite is the {b ambiguous commit}: a COMMIT
    request delivered to the server whose acknowledgement is then lost
    (dropped or reset).  The transaction {e did} commit, but the client
    cannot know — the run records it as an indeterminate outcome and the
    checker is left to resolve it from later reads.

    Every decision is drawn from per-session SplitMix64 streams split
    off one seed (independent of the workload's and every other fault
    plane's stream): the same seed replays the same faults, and an
    all-zero configuration draws nothing observable — routing through a
    disabled link is byte-identical to the in-process path. *)

type config = {
  seed : int;
  delay_prob : float;  (** per-message probability of extra latency *)
  max_delay_ns : int;  (** bound on the injected extra latency *)
  drop_prob : float;  (** per-message probability of silent loss *)
  dup_prob : float;  (** per-message probability of double delivery *)
  reorder_prob : float;
      (** per-message probability of delivery at a random point inside
          the reordering window — later messages can overtake it *)
  reorder_window_ns : int;  (** size of the reordering window *)
  reset_prob : float;
      (** per-message probability of a connection reset: the message is
          lost {e and} the sender finds out (unlike a silent drop) *)
}

val disabled : config
(** All probabilities zero: routing through this config is a no-op. *)

val config :
  ?seed:int ->
  ?delay_prob:float ->
  ?max_delay_ns:int ->
  ?drop_prob:float ->
  ?dup_prob:float ->
  ?reorder_prob:float ->
  ?reorder_window_ns:int ->
  ?reset_prob:float ->
  unit ->
  config
(** Defaults: seed 1, probabilities zero, [max_delay_ns] 400_000,
    [reorder_window_ns] 200_000. *)

val is_disabled : config -> bool

type fate =
  | Deliver of int list
      (** one extra-delay (ns) per delivered copy; [[0]] is the clean
          single delivery, two entries mean the message was duplicated *)
  | Drop  (** silently lost; the sender only learns via timeout *)
  | Reset
      (** lost with a connection reset the sender observes after a
          one-way delay *)

type t
(** Mutable per-run link state: one decision stream per session plus
    injection counters. *)

val create : sessions:int -> config -> t
val cfg : t -> config

val route : t -> session:int -> fate
(** Draw the fate of one message (either direction) on [session]'s
    connection.  Zero-probability configs always return [Deliver [0]]
    (and still consume no observable randomness from anyone else's
    stream). *)

(** {2 Injection counters (read after the run)} *)

val resets : t -> int
val dropped : t -> int
val duplicated : t -> int
val delayed : t -> int
val reordered : t -> int
