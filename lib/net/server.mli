(** The server side of the wire: per-session queues over the engine.

    Requests of one session are executed strictly in arrival order, one
    at a time — the next request is dispatched only after the engine's
    continuation for the previous one fired (which may be much later,
    when the request sat in a lock queue).  Sessions are independent.

    Backpressure is explicit: each session queue holds at most
    [queue_capacity] waiting requests.  A request arriving beyond that
    is {e load-shed} with an immediate {!Wire.Rejected} response — a
    definite "never executed", never a silent hang.  This is what keeps
    a flooding retry storm from wedging the run.

    Duplicate deliveries are harmless by construction: a duplicated
    read/write re-executes idempotently inside the same transaction
    (same op, same items, locks already held); a duplicated COMMIT hits
    the engine's idempotent commit-token path and is acknowledged
    without re-applying ({!Minidb.Engine.exec}); any straggler arriving
    after the transaction died gets a definite [Refused]. *)

type t

val create : engine:Minidb.Engine.t -> queue_capacity:int -> t
(** [queue_capacity] must be >= 1 (raises [Invalid_argument]
    otherwise): capacity bounds the {e waiting} requests per session,
    excluding the one executing. *)

val register_txn : t -> Minidb.Engine.txn -> unit
(** Make a transaction started outside the wire (the harness begins
    transactions client-side, costing no simulated time) addressable by
    requests carrying its id.  Idempotent. *)

val submit : t -> Wire.request -> reply:(Wire.response -> unit) -> unit
(** Hand one delivered request to the session's queue.  [reply] fires
    exactly once per submitted request — immediately with [Rejected]
    when shed, otherwise when the engine answered.  [reply] receives
    the request's own [seq] so the caller can match it to the call. *)

val rejected : t -> int
(** Requests load-shed across all sessions. *)
