module Rng = Leopard_util.Rng
module Sim = Minidb.Sim

type config = {
  request_timeout_ns : int;
  max_tries : int;
  retry_backoff_ns : float;
  resend_mean_ns : float;
}

let config ?(request_timeout_ns = 2_000_000) ?(max_tries = 3)
    ?(retry_backoff_ns = 100_000.0) ?(resend_mean_ns = 50_000.0) () =
  if request_timeout_ns <= 0 then
    invalid_arg "Client.config: request_timeout_ns must be positive";
  if max_tries < 1 then invalid_arg "Client.config: max_tries must be >= 1";
  { request_timeout_ns; max_tries; retry_backoff_ns; resend_mean_ns }

type outcome = Reply of Wire.resp_body | No_reply

type t = {
  sim : Sim.t;
  rng : Rng.t;  (* network decision stream, never the workload's *)
  link : Faulty_link.t;
  server : Server.t;
  session : int;
  cfg : config;
  mutable next_seq : int;
  mutable n_resends : int;
  mutable n_give_ups : int;
}

let create sim ~rng ~link ~server ~session cfg =
  {
    sim;
    rng;
    link;
    server;
    session;
    cfg;
    next_seq = 0;
    n_resends = 0;
    n_give_ups = 0;
  }

(* Per-call settlement state.  [attempt] identifies the live attempt so a
   stale failure signal (a reset racing the timeout of the same attempt,
   or arriving after a newer attempt already started) cannot double-fire
   the retry path. *)
type pending = { mutable settled : bool; mutable attempt : int }

let jittered rng mean = 1 + int_of_float (Rng.exponential rng mean)

let call t ~txn ~op ~body ~first_send_delay_ns ~resp_base_delay_ns ~k =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let req = { Wire.session = t.session; seq; txn; op; body } in
  let p = { settled = false; attempt = 1 } in
  let settle outcome =
    if not p.settled then begin
      p.settled <- true;
      k outcome
    end
  in
  let rec send ~delay ~attempt =
    (* request direction *)
    (match Faulty_link.route t.link ~session:t.session with
    | Faulty_link.Deliver extras ->
      List.iter
        (fun extra ->
          Sim.schedule_after t.sim ~delay:(delay + extra) (fun () ->
              Server.submit t.server req ~reply:(fun resp ->
                  (* response direction; the return-hop base latency is
                     drawn by the caller at the instant the reply leaves *)
                  let base = resp_base_delay_ns resp.Wire.body in
                  match Faulty_link.route t.link ~session:t.session with
                  | Faulty_link.Deliver extras ->
                    List.iter
                      (fun extra ->
                        Sim.schedule_after t.sim ~delay:(base + extra)
                          (fun () -> settle (Reply resp.Wire.body)))
                      extras
                  | Faulty_link.Drop -> ()
                  | Faulty_link.Reset ->
                    (* the ack is lost but the reset is visible: fail the
                       attempt as soon as the reset propagates *)
                    Sim.schedule_after t.sim ~delay:base (fun () ->
                        fail_attempt ~attempt))))
        extras
    | Faulty_link.Drop -> ()
    | Faulty_link.Reset ->
      Sim.schedule_after t.sim ~delay (fun () -> fail_attempt ~attempt));
    (* Per-attempt timeout, armed regardless of the request's fate.  A
       disabled link is a perfect wire: no timeout is armed, so a request
       parked in a server-side lock queue past the deadline never spawns
       a spurious retry and the zero-fault run stays byte-identical to
       the in-process path. *)
    if not (Faulty_link.is_disabled (Faulty_link.cfg t.link)) then
      Sim.schedule_after t.sim
        ~delay:(delay + t.cfg.request_timeout_ns)
        (fun () -> fail_attempt ~attempt)
  and fail_attempt ~attempt =
    if (not p.settled) && attempt = p.attempt then begin
      if attempt >= t.cfg.max_tries then begin
        t.n_give_ups <- t.n_give_ups + 1;
        settle No_reply
      end
      else begin
        p.attempt <- attempt + 1;
        t.n_resends <- t.n_resends + 1;
        let mean =
          t.cfg.retry_backoff_ns *. float_of_int (1 lsl min (attempt - 1) 5)
        in
        Sim.schedule_after t.sim ~delay:(jittered t.rng mean) (fun () ->
            if not p.settled then
              send
                ~delay:(jittered t.rng t.cfg.resend_mean_ns)
                ~attempt:(attempt + 1))
      end
    end
  in
  send ~delay:first_send_delay_ns ~attempt:1

let resends t = t.n_resends
let give_ups t = t.n_give_ups
