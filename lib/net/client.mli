(** The client side of the wire: timeouts, bounded retries, exactly-once
    settlement.

    [call] sends one request through the {!Faulty_link} and settles its
    continuation {e exactly once}, whatever the link does:

    - a response delivered (possibly a duplicate — stragglers for an
      already-settled call are dropped by sequence number) settles with
      [Reply];
    - a connection reset observed on either direction fails the current
      attempt immediately;
    - otherwise a per-attempt timeout fails it after
      [request_timeout_ns];
    - a failed attempt is resent with bounded exponential backoff (mean
      doubles per attempt, capped at 32x) up to [max_tries] total
      attempts, after which the call settles with [No_reply].

    [No_reply] is genuinely ambiguous: any attempt may have reached the
    server and executed — for a COMMIT this is the ambiguous-commit
    case the checker must resolve.  Retries are safe because commits
    carry idempotency tokens and reads/writes re-execute idempotently
    within their transaction ({!Server}).

    All retry/backoff randomness comes from the client's {e network}
    stream (never the workload's), so a fault-free call draws nothing
    from it and the zero-fault wire stays byte-identical to the
    in-process path. *)

type config = {
  request_timeout_ns : int;  (** per-attempt reply deadline *)
  max_tries : int;  (** total attempts (first send included), >= 1 *)
  retry_backoff_ns : float;  (** mean backoff before attempt 2 *)
  resend_mean_ns : float;  (** mean client-side latency of a resend *)
}

val config :
  ?request_timeout_ns:int ->
  ?max_tries:int ->
  ?retry_backoff_ns:float ->
  ?resend_mean_ns:float ->
  unit ->
  config
(** Defaults: timeout 2_000_000 ns, 3 tries, backoff mean 100_000 ns,
    resend mean 50_000 ns. *)

type outcome =
  | Reply of Wire.resp_body
  | No_reply  (** every attempt timed out or was reset: outcome unknown *)

type t

val create :
  Minidb.Sim.t ->
  rng:Leopard_util.Rng.t ->
  link:Faulty_link.t ->
  server:Server.t ->
  session:int ->
  config ->
  t

val call :
  t ->
  txn:int ->
  op:int ->
  body:Wire.req_body ->
  first_send_delay_ns:int ->
  resp_base_delay_ns:(Wire.resp_body -> int) ->
  k:(outcome -> unit) ->
  unit
(** Issue one request.  [first_send_delay_ns] is the one-way latency of
    the first send (drawn by the caller, so the zero-fault wire replays
    the in-process delay draws exactly); [resp_base_delay_ns] is called
    once per server reply to draw the return-hop latency.  [k] fires
    exactly once. *)

val resends : t -> int
(** Attempts beyond the first, across all calls. *)

val give_ups : t -> int
(** Calls settled [No_reply]. *)
