(** Crash-safe checker checkpoints — the framed container.

    A checkpoint file binds one verification run (header fingerprint) to
    a sequence of {e frames}, each a complete checker snapshot
    ([Checker.encode] output) written atomically-enough: begin marker,
    per-line checksums, end marker, one [flush].  A process killed
    mid-frame leaves a torn tail; the loader falls back to the previous
    complete frame, so resume loses at most one truncation window of
    progress and never trusts a damaged byte.

    The same discipline as campaign checkpoints ([Campaign.Checkpoint]):
    the file is an optimization, never an authority.

    - missing file: fresh start, silent (first run, not damage);
    - empty file, unrecognized header, foreign fingerprint: ignore the
      whole file, warn once;
    - torn or corrupt frame (bad marker, checksum mismatch, wrong line
      count, failed unescape): trust the last frame that validated
      end-to-end, warn once; if no frame survives, fresh start.

    Payload lines are individually [String.escaped] and checksummed
    (FNV-1a), so arbitrary snapshot bytes round-trip and single-byte
    damage is detected per line. *)

val fingerprint : string list -> string
(** FNV-1a digest of the given identity components (profile name,
    checker flags, input identity…), printed as 16 hex digits.  Binds a
    checkpoint file to the exact run that wrote it: resuming under any
    other configuration ignores the file rather than corrupting the
    verdict. *)

type writer

val writer : path:string -> fingerprint:string -> writer
(** Create or truncate [path] and write the header.  A checkpoint is
    rewritten from scratch by each run — frames within one run append. *)

val append : writer -> string list -> unit
(** Write one complete frame (a full snapshot) and flush.  Later frames
    supersede earlier ones; the loader returns the last valid frame. *)

val close : writer -> unit

val load :
  path:string -> fingerprint:string -> string list option * string option
(** [(frame, warning)]: the payload lines of the newest frame that
    validates end-to-end (unescaped, in written order), or [None] for a
    fresh start.  [warning] is set whenever the file existed but could
    not be fully trusted — the caller should surface it and continue. *)
