(** A plain-text trace format, for recording histories and re-checking
    them offline.

    Real deployments decouple collection from verification: clients
    append traces to a log while running, and the checker replays the log
    later (or on another machine).  One line per trace:

    {v
    R <ts_bef> <ts_aft> <txn> <client> [!] <t.r.c>=<value>,...
    W <ts_bef> <ts_aft> <txn> <client> <t.r.c>=<value>,...
    C <ts_bef> <ts_aft> <txn> <client>
    A <ts_bef> <ts_aft> <txn> <client>
    v}

    [R] is a read (with [!] marking a locking read), [W] a write, [C] a
    commit, [A] an abort; cells are [table.row.column].  Lines beginning
    with [#] and blank lines are ignored.  The format is stable,
    diff-friendly and greppable.

    A single file can span server restarts: an {e epoch marker} line

    {v
    E <at> <epoch> <replayed> <damaged>
    v}

    records a crash at instant [at] after which the server recovered
    into [epoch] (1-based), replaying [replayed] WAL records of which
    [damaged] were torn, lost, reordered or duplicated.

    An {e ambiguous-commit marker} line

    {v
    U <at> <txn> <client>
    v}

    records that [client] gave up at instant [at] on transaction
    [txn]'s COMMIT without learning the outcome (the request or its
    acknowledgement was lost on the wire): the transaction has no
    terminal trace and its commit status is unknowable from the stream
    alone.  Checkers feed these to [Checker.mark_ambiguous_commit]
    before the traces.

    A {e leader marker} line

    {v
    L <at> <epoch> <primary> <lost-csv|->
    v}

    records a failover at instant [at]: a follower was promoted into
    [epoch] (1-based) as the new [primary], truncating the replication
    log to the survivor prefix; the comma-separated transaction ids
    beyond that prefix were lost with the old timeline ([-] when the
    failover was lossless).  Checkers feed these to
    [Checker.note_failover] before the traces.

    A {e shard marker} line

    {v
    S <at> <shards>
    v}

    declares (at instant [at], normally 0) that the file spans a shard
    group of [shards] hash-range partitions: one trace file covers the
    whole group, and cross-shard dependencies stitch through it.

    A {e prepare marker} line

    {v
    P <at> <txn> <shard-csv> <c|a|?>
    v}

    records the disposition of [txn]'s two-phase-commit round across
    the comma-separated shards at instant [at]: [c] the coordinator
    decided commit, [a] it decided abort (veto or vote timeout — a
    definite outcome), [?] it crashed before deciding — the outcome is
    unknowable to the client, and checkers feed these to
    [Checker.mark_coord_ambiguous] before the traces.

    All marker kinds sort chronologically with the traces; readers
    unaware of them (the plain [load]/[load_lenient], and the [_ext]
    and [_full] readers for the kinds they predate) skip them without
    error. *)

val header : string
(** The recommended first line, ["# leopard-trace v1"]. *)

type epoch_mark = {
  at : int;  (** simulated instant of the crash *)
  epoch : int;  (** 1-based epoch entered by the recovery *)
  replayed : int;  (** WAL records replayed *)
  damaged : int;  (** records damaged by durability faults *)
}

val epoch_to_line : epoch_mark -> string
(** Encode one epoch marker (no trailing newline). *)

type ambiguous_mark = {
  at : int;  (** simulated instant the client gave up *)
  txn : int;  (** transaction whose commit outcome is unknown *)
  client : int;  (** session that issued the commit *)
}

val ambiguous_to_line : ambiguous_mark -> string
(** Encode one ambiguous-commit marker (no trailing newline). *)

type leader_mark = {
  at : int;  (** simulated instant of the promotion *)
  epoch : int;  (** 1-based epoch entered by the new primary *)
  primary : int;  (** follower id promoted to primary *)
  lost : int list;  (** committed txns on the truncated log suffix *)
}

val leader_to_line : leader_mark -> string
(** Encode one leader marker (no trailing newline). *)

type shard_mark = {
  at : int;  (** instant the topology took effect (normally 0) *)
  shards : int;  (** number of hash-range partitions; >= 2 *)
}

val shard_to_line : shard_mark -> string
(** Encode one shard marker (no trailing newline). *)

type disposition =
  | Committed  (** the coordinator decided commit *)
  | Aborted  (** the coordinator decided abort — a definite outcome *)
  | Unknown  (** the coordinator crashed before deciding *)

type prepare_mark = {
  at : int;  (** simulated instant the round was decided (or orphaned) *)
  txn : int;
  shards : int list;  (** participating shards, ascending *)
  disposition : disposition;
}

val prepare_to_line : prepare_mark -> string
(** Encode one prepare marker (no trailing newline). *)

type entry =
  | Trace of Trace.t
  | Epoch of epoch_mark
  | Ambiguous of ambiguous_mark
  | Leader of leader_mark
  | Shard of shard_mark
  | Prepare of prepare_mark

val entry_of_line : string -> (entry option, string) result
(** Decode one line; [Ok None] for comments and blank lines.  Malformed
    markers are errors, like malformed traces. *)

val to_line : Trace.t -> string
(** Encode one trace (no trailing newline). *)

val of_line : string -> (Trace.t option, string) result
(** Decode one line; [Ok None] for comments, blank lines {e and} epoch
    markers (use {!entry_of_line} to observe those). *)

val write_channel : out_channel -> Trace.t list -> unit
(** Header plus one line per trace. *)

val read_channel : in_channel -> (Trace.t list, string) result
(** Reads until EOF; errors carry the 1-based line number. *)

val save : path:string -> Trace.t list -> unit
val load : path:string -> (Trace.t list, string) result

(** {2 Multi-epoch (crash–recovery) variants} *)

val write_channel_ext :
  out_channel ->
  ?ambiguous:ambiguous_mark list ->
  ?leaders:leader_mark list ->
  ?shards:shard_mark list ->
  ?prepares:prepare_mark list ->
  epochs:epoch_mark list ->
  Trace.t list ->
  unit
(** Header, traces, and markers merged at their instants ([traces] must
    be sorted by [ts_bef], as {!write_channel} assumes). *)

type contents = {
  c_traces : Trace.t list;
  c_epochs : epoch_mark list;
  c_ambiguous : ambiguous_mark list;
  c_leaders : leader_mark list;
  c_shards : shard_mark list;
  c_prepares : prepare_mark list;
}
(** Everything a trace file can carry, each kind in file order. *)

val read_channel_all : in_channel -> (contents, string) result
(** The full reader: every entry kind observed.  The tuple-returning
    [_full] readers below predate the shard/prepare markers and skip
    them. *)

val load_all : path:string -> (contents, string) result

val read_channel_lenient_all : in_channel -> contents * (int * string) list
(** Lenient variant of {!read_channel_all}: malformed lines are skipped
    and reported as [(1-based line, diagnostic)]. *)

val load_lenient_all : path:string -> contents * (int * string) list

val read_channel_ext :
  in_channel -> (Trace.t list * epoch_mark list, string) result
(** Ambiguous-commit and leader markers are skipped (back-compat
    reader); use {!read_channel_full} to observe them. *)

val read_channel_full :
  in_channel ->
  ( Trace.t list * epoch_mark list * ambiguous_mark list * leader_mark list,
    string )
  result

val save_ext :
  path:string ->
  ?ambiguous:ambiguous_mark list ->
  ?leaders:leader_mark list ->
  ?shards:shard_mark list ->
  ?prepares:prepare_mark list ->
  epochs:epoch_mark list ->
  Trace.t list ->
  unit

val load_ext : path:string -> (Trace.t list * epoch_mark list, string) result

val load_full :
  path:string ->
  ( Trace.t list * epoch_mark list * ambiguous_mark list * leader_mark list,
    string )
  result

val read_channel_lenient_ext :
  in_channel -> Trace.t list * epoch_mark list * (int * string) list

val read_channel_lenient_full :
  in_channel ->
  Trace.t list
  * epoch_mark list
  * ambiguous_mark list
  * leader_mark list
  * (int * string) list

val load_lenient_ext :
  path:string -> Trace.t list * epoch_mark list * (int * string) list

val load_lenient_full :
  path:string ->
  Trace.t list
  * epoch_mark list
  * ambiguous_mark list
  * leader_mark list
  * (int * string) list

val read_channel_lenient : in_channel -> Trace.t list * (int * string) list
(** Like {!read_channel}, but a malformed line is skipped and reported
    as [(1-based line number, diagnostic)] instead of discarding the
    whole stream — truncated or partially corrupted trace files (crashed
    clients, torn writes) still yield every decodable trace.  Feed the
    skipped count to [Checker.note_lost_traces] so the verdict degrades
    to [Inconclusive] rather than silently "verifying" a partial
    history. *)

val load_lenient : path:string -> Trace.t list * (int * string) list
(** {!read_channel_lenient} over a file.  Raises [Sys_error] if the file
    cannot be opened (same as {!load}). *)
