type t = { table : int; row : int; col : int }

let make ~table ~row ~col = { table; row; col }
let row_key t = (t.table, t.row)

let compare_row_key (ta, ra) (tb, rb) =
  let c = Int.compare ta tb in
  if c <> 0 then c else Int.compare ra rb

let compare_fields a b =
  let c = Int.compare a.table b.table in
  if c <> 0 then c
  else
    let c = Int.compare a.row b.row in
    if c <> 0 then c else Int.compare a.col b.col

let compare = compare_fields

let equal a b = a.table = b.table && a.row = b.row && a.col = b.col

(* lint: allow poly-compare — hashing a fixed triple of ints; total and
   deterministic, and the bucket layout is pinned by the existing tests *)
let hash t = Hashtbl.hash (t.table, t.row, t.col)

let pp ppf t = Format.fprintf ppf "t%d.r%d.c%d" t.table t.row t.col
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare_fields
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hashed)
