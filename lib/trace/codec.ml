let header = "# leopard-trace v1"

let item_to_string (i : Trace.item) =
  Printf.sprintf "%d.%d.%d=%d" i.cell.Cell.table i.cell.Cell.row
    i.cell.Cell.col i.value

let items_to_string items = String.concat "," (List.map item_to_string items)

let to_line (t : Trace.t) =
  let head kind =
    Printf.sprintf "%s %d %d %d %d" kind t.ts_bef t.ts_aft t.txn t.client
  in
  match t.payload with
  | Trace.Read { items; locking } ->
    Printf.sprintf "%s %s%s" (head "R")
      (if locking then "! " else "")
      (items_to_string items)
  | Trace.Write items -> Printf.sprintf "%s %s" (head "W") (items_to_string items)
  | Trace.Commit -> head "C"
  | Trace.Abort -> head "A"

let parse_item s =
  match String.split_on_char '=' s with
  | [ addr; value ] -> (
    match String.split_on_char '.' addr with
    | [ table; row; col ] -> (
      try
        Ok
          {
            Trace.cell =
              Cell.make ~table:(int_of_string table) ~row:(int_of_string row)
                ~col:(int_of_string col);
            value = int_of_string value;
          }
      with Failure _ -> Error (Printf.sprintf "bad item %S" s))
    | _ -> Error (Printf.sprintf "bad cell address in %S" s))
  | _ -> Error (Printf.sprintf "bad item %S" s)

let parse_items s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match parse_item p with
      | Ok item -> go (item :: acc) rest
      | Error e -> Error e)
  in
  go [] parts

type epoch_mark = { at : int; epoch : int; replayed : int; damaged : int }

let epoch_to_line m =
  Printf.sprintf "E %d %d %d %d" m.at m.epoch m.replayed m.damaged

type ambiguous_mark = { at : int; txn : int; client : int }

let ambiguous_to_line (m : ambiguous_mark) =
  Printf.sprintf "U %d %d %d" m.at m.txn m.client

type leader_mark = { at : int; epoch : int; primary : int; lost : int list }

let leader_to_line (m : leader_mark) =
  Printf.sprintf "L %d %d %d %s" m.at m.epoch m.primary
    (match m.lost with
    | [] -> "-"
    | ids -> String.concat "," (List.map string_of_int ids))

type shard_mark = { at : int; shards : int }

let shard_to_line (m : shard_mark) = Printf.sprintf "S %d %d" m.at m.shards

type disposition = Committed | Aborted | Unknown

let disposition_char = function
  | Committed -> 'c'
  | Aborted -> 'a'
  | Unknown -> '?'

let disposition_of_string = function
  | "c" -> Some Committed
  | "a" -> Some Aborted
  | "?" -> Some Unknown
  | _ -> None

type prepare_mark = {
  at : int;
  txn : int;
  shards : int list;
  disposition : disposition;
}

let prepare_to_line (m : prepare_mark) =
  Printf.sprintf "P %d %d %s %c" m.at m.txn
    (String.concat "," (List.map string_of_int m.shards))
    (disposition_char m.disposition)

type entry =
  | Trace of Trace.t
  | Epoch of epoch_mark
  | Ambiguous of ambiguous_mark
  | Leader of leader_mark
  | Shard of shard_mark
  | Prepare of prepare_mark

let entry_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let fields =
      List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
    in
    let make ~kind ~bef ~aft ~txn ~client rest =
      try
        let ts_bef = int_of_string bef
        and ts_aft = int_of_string aft
        and txn = int_of_string txn
        and client = int_of_string client in
        let payload =
          match (kind, rest) with
          | "C", [] -> Ok Trace.Commit
          | "A", [] -> Ok Trace.Abort
          | "W", [ items ] -> (
            match parse_items items with
            | Ok items -> Ok (Trace.Write items)
            | Error e -> Error e)
          | "R", [ items ] -> (
            match parse_items items with
            | Ok items -> Ok (Trace.Read { items; locking = false })
            | Error e -> Error e)
          | "R", [ "!"; items ] -> (
            match parse_items items with
            | Ok items -> Ok (Trace.Read { items; locking = true })
            | Error e -> Error e)
          | _ -> Error (Printf.sprintf "malformed %s line" kind)
        in
        match payload with
        | Ok payload ->
          let trace = { Trace.ts_bef; ts_aft; txn; client; payload } in
          (match Trace.well_formed trace with
          | Ok () -> Ok (Some (Trace trace))
          | Error e -> Error e)
        | Error e -> Error e
      with Failure _ -> Error "bad integer field"
    in
    match fields with
    | kind :: bef :: aft :: txn :: client :: rest
      when List.mem kind [ "R"; "W"; "C"; "A" ] ->
      make ~kind ~bef ~aft ~txn ~client rest
    | [ "E"; at; epoch; replayed; damaged ] -> (
      try
        let m =
          {
            at = int_of_string at;
            epoch = int_of_string epoch;
            replayed = int_of_string replayed;
            damaged = int_of_string damaged;
          }
        in
        if m.at < 0 || m.epoch < 1 || m.replayed < 0 || m.damaged < 0 then
          Error (Printf.sprintf "malformed epoch marker %S" line)
        else Ok (Some (Epoch m))
      with Failure _ -> Error "bad integer field")
    | [ "U"; at; txn; client ] -> (
      try
        let m =
          {
            at = int_of_string at;
            txn = int_of_string txn;
            client = int_of_string client;
          }
        in
        if m.at < 0 || m.txn < 0 || m.client < 0 then
          Error (Printf.sprintf "malformed ambiguous-commit marker %S" line)
        else Ok (Some (Ambiguous m))
      with Failure _ -> Error "bad integer field")
    | [ "L"; at; epoch; primary; lost ] -> (
      try
        let lost =
          if lost = "-" then []
          else List.map int_of_string (String.split_on_char ',' lost)
        in
        let m =
          {
            at = int_of_string at;
            epoch = int_of_string epoch;
            primary = int_of_string primary;
            lost;
          }
        in
        if
          m.at < 0 || m.epoch < 1 || m.primary < 0
          || List.exists (fun id -> id < 0) m.lost
        then Error (Printf.sprintf "malformed leader marker %S" line)
        else Ok (Some (Leader m))
      with Failure _ -> Error "bad integer field")
    | [ "S"; at; shards ] -> (
      try
        let m : shard_mark =
          { at = int_of_string at; shards = int_of_string shards }
        in
        if m.at < 0 || m.shards < 2 then
          Error (Printf.sprintf "malformed shard marker %S" line)
        else Ok (Some (Shard m))
      with Failure _ -> Error "bad integer field")
    | [ "P"; at; txn; shards; d ] -> (
      try
        match disposition_of_string d with
        | None -> Error (Printf.sprintf "malformed prepare marker %S" line)
        | Some disposition ->
          let m =
            {
              at = int_of_string at;
              txn = int_of_string txn;
              shards =
                List.map int_of_string (String.split_on_char ',' shards);
              disposition;
            }
          in
          if
            m.at < 0 || m.txn < 0 || m.shards = []
            || List.exists (fun s -> s < 0) m.shards
          then Error (Printf.sprintf "malformed prepare marker %S" line)
          else Ok (Some (Prepare m))
      with Failure _ -> Error "bad integer field")
    | _ -> Error (Printf.sprintf "unrecognised line %S" line)
  end

let of_line line =
  match entry_of_line line with
  | Ok (Some (Trace t)) -> Ok (Some t)
  | Ok (Some (Epoch _ | Ambiguous _ | Leader _ | Shard _ | Prepare _))
  | Ok None ->
    Ok None
  | Error e -> Error e

(* Epoch, ambiguous-commit, leader, shard and prepare markers are
   interleaved at their instants, so the file reads chronologically:
   every trace after an [E] line belongs to the post-restart epoch (by
   the engine's monotone clock, all its timestamps exceed [at]), a [U]
   line sits where the client gave up on the commit, an [L] line sits
   at the promotion — traces after it ran against the new primary's
   timeline — an [S] line (at instant 0) declares the shard topology
   the whole file spans, and a [P] line sits where its 2PC round was
   decided (or its coordinator died undecided). *)
let write_channel_ext oc ?(ambiguous = []) ?(leaders = []) ?(shards = [])
    ?(prepares = []) ~epochs traces =
  output_string oc header;
  output_char oc '\n';
  let emit line =
    output_string oc line;
    output_char oc '\n'
  in
  let marks =
    List.stable_sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.map (fun (m : shard_mark) -> (m.at, shard_to_line m)) shards
      @ List.map (fun (e : epoch_mark) -> (e.at, epoch_to_line e)) epochs
      @ List.map
          (fun (m : ambiguous_mark) -> (m.at, ambiguous_to_line m))
          ambiguous
      @ List.map (fun (m : leader_mark) -> (m.at, leader_to_line m)) leaders
      @ List.map (fun (m : prepare_mark) -> (m.at, prepare_to_line m)) prepares
      )
  in
  let rec go marks traces =
    match (marks, traces) with
    | (at, line) :: ms, t :: _ when at <= t.Trace.ts_bef ->
      emit line;
      go ms traces
    | ms, t :: ts ->
      emit (to_line t);
      go ms ts
    | (_, line) :: ms, [] ->
      emit line;
      go ms []
    | [], [] -> ()
  in
  go marks traces

let write_channel oc traces = write_channel_ext oc ~epochs:[] traces

type contents = {
  c_traces : Trace.t list;
  c_epochs : epoch_mark list;
  c_ambiguous : ambiguous_mark list;
  c_leaders : leader_mark list;
  c_shards : shard_mark list;
  c_prepares : prepare_mark list;
}

let empty_contents =
  {
    c_traces = [];
    c_epochs = [];
    c_ambiguous = [];
    c_leaders = [];
    c_shards = [];
    c_prepares = [];
  }

let add_entry acc = function
  | Trace t -> { acc with c_traces = t :: acc.c_traces }
  | Epoch m -> { acc with c_epochs = m :: acc.c_epochs }
  | Ambiguous m -> { acc with c_ambiguous = m :: acc.c_ambiguous }
  | Leader m -> { acc with c_leaders = m :: acc.c_leaders }
  | Shard m -> { acc with c_shards = m :: acc.c_shards }
  | Prepare m -> { acc with c_prepares = m :: acc.c_prepares }

let rev_contents acc =
  {
    c_traces = List.rev acc.c_traces;
    c_epochs = List.rev acc.c_epochs;
    c_ambiguous = List.rev acc.c_ambiguous;
    c_leaders = List.rev acc.c_leaders;
    c_shards = List.rev acc.c_shards;
    c_prepares = List.rev acc.c_prepares;
  }

let read_channel_all ic =
  let rec go acc lineno =
    match input_line ic with
    | exception End_of_file -> Ok (rev_contents acc)
    | line -> (
      match entry_of_line line with
      | Ok (Some entry) -> go (add_entry acc entry) (lineno + 1)
      | Ok None -> go acc (lineno + 1)
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go empty_contents 1

let read_channel_full ic =
  Result.map
    (fun c -> (c.c_traces, c.c_epochs, c.c_ambiguous, c.c_leaders))
    (read_channel_all ic)

let read_channel_ext ic =
  Result.map (fun (traces, epochs, _amb, _leaders) -> (traces, epochs))
    (read_channel_full ic)

let read_channel ic = Result.map fst (read_channel_ext ic)

let save_ext ~path ?(ambiguous = []) ?(leaders = []) ?(shards = [])
    ?(prepares = []) ~epochs traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      write_channel_ext oc ~ambiguous ~leaders ~shards ~prepares ~epochs traces)

let save ~path traces = save_ext ~path ~epochs:[] traces

let load_all ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_channel_all ic)

let load_full ~path =
  Result.map
    (fun c -> (c.c_traces, c.c_epochs, c.c_ambiguous, c.c_leaders))
    (load_all ~path)

let load_ext ~path =
  Result.map (fun (traces, epochs, _amb, _leaders) -> (traces, epochs))
    (load_full ~path)

let load ~path = Result.map fst (load_ext ~path)

let read_channel_lenient_all ic =
  let rec go acc skipped lineno =
    match input_line ic with
    | exception End_of_file -> (rev_contents acc, List.rev skipped)
    | line -> (
      match entry_of_line line with
      | Ok (Some entry) -> go (add_entry acc entry) skipped (lineno + 1)
      | Ok None -> go acc skipped (lineno + 1)
      | Error e -> go acc ((lineno, e) :: skipped) (lineno + 1))
  in
  go empty_contents [] 1

let read_channel_lenient_full ic =
  let c, skipped = read_channel_lenient_all ic in
  (c.c_traces, c.c_epochs, c.c_ambiguous, c.c_leaders, skipped)

let read_channel_lenient_ext ic =
  let traces, epochs, _amb, _leaders, skipped = read_channel_lenient_full ic in
  (traces, epochs, skipped)

let read_channel_lenient ic =
  let traces, _epochs, skipped = read_channel_lenient_ext ic in
  (traces, skipped)

let load_lenient_all ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_channel_lenient_all ic)

let load_lenient_full ~path =
  let c, skipped = load_lenient_all ~path in
  (c.c_traces, c.c_epochs, c.c_ambiguous, c.c_leaders, skipped)

let load_lenient_ext ~path =
  let traces, epochs, _amb, _leaders, skipped = load_lenient_full ~path in
  (traces, epochs, skipped)

let load_lenient ~path =
  let traces, _epochs, skipped = load_lenient_ext ~path in
  (traces, skipped)
