let header = "# leopard-trace v1"

let item_to_string (i : Trace.item) =
  Printf.sprintf "%d.%d.%d=%d" i.cell.Cell.table i.cell.Cell.row
    i.cell.Cell.col i.value

let items_to_string items = String.concat "," (List.map item_to_string items)

let to_line (t : Trace.t) =
  let head kind =
    Printf.sprintf "%s %d %d %d %d" kind t.ts_bef t.ts_aft t.txn t.client
  in
  match t.payload with
  | Trace.Read { items; locking } ->
    Printf.sprintf "%s %s%s" (head "R")
      (if locking then "! " else "")
      (items_to_string items)
  | Trace.Write items -> Printf.sprintf "%s %s" (head "W") (items_to_string items)
  | Trace.Commit -> head "C"
  | Trace.Abort -> head "A"

let parse_item s =
  match String.split_on_char '=' s with
  | [ addr; value ] -> (
    match String.split_on_char '.' addr with
    | [ table; row; col ] -> (
      try
        Ok
          {
            Trace.cell =
              Cell.make ~table:(int_of_string table) ~row:(int_of_string row)
                ~col:(int_of_string col);
            value = int_of_string value;
          }
      with Failure _ -> Error (Printf.sprintf "bad item %S" s))
    | _ -> Error (Printf.sprintf "bad cell address in %S" s))
  | _ -> Error (Printf.sprintf "bad item %S" s)

let parse_items s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match parse_item p with
      | Ok item -> go (item :: acc) rest
      | Error e -> Error e)
  in
  go [] parts

let of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let fields =
      List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
    in
    let make ~kind ~bef ~aft ~txn ~client rest =
      try
        let ts_bef = int_of_string bef
        and ts_aft = int_of_string aft
        and txn = int_of_string txn
        and client = int_of_string client in
        let payload =
          match (kind, rest) with
          | "C", [] -> Ok Trace.Commit
          | "A", [] -> Ok Trace.Abort
          | "W", [ items ] -> (
            match parse_items items with
            | Ok items -> Ok (Trace.Write items)
            | Error e -> Error e)
          | "R", [ items ] -> (
            match parse_items items with
            | Ok items -> Ok (Trace.Read { items; locking = false })
            | Error e -> Error e)
          | "R", [ "!"; items ] -> (
            match parse_items items with
            | Ok items -> Ok (Trace.Read { items; locking = true })
            | Error e -> Error e)
          | _ -> Error (Printf.sprintf "malformed %s line" kind)
        in
        match payload with
        | Ok payload ->
          let trace = { Trace.ts_bef; ts_aft; txn; client; payload } in
          (match Trace.well_formed trace with
          | Ok () -> Ok (Some trace)
          | Error e -> Error e)
        | Error e -> Error e
      with Failure _ -> Error "bad integer field"
    in
    match fields with
    | kind :: bef :: aft :: txn :: client :: rest
      when List.mem kind [ "R"; "W"; "C"; "A" ] ->
      make ~kind ~bef ~aft ~txn ~client rest
    | _ -> Error (Printf.sprintf "unrecognised line %S" line)
  end

let write_channel oc traces =
  output_string oc header;
  output_char oc '\n';
  List.iter
    (fun t ->
      output_string oc (to_line t);
      output_char oc '\n')
    traces

let read_channel ic =
  let rec go acc lineno =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | line -> (
      match of_line line with
      | Ok (Some trace) -> go (trace :: acc) (lineno + 1)
      | Ok None -> go acc (lineno + 1)
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1

let save ~path traces =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_channel oc traces)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_channel ic)

let read_channel_lenient ic =
  let rec go acc skipped lineno =
    match input_line ic with
    | exception End_of_file -> (List.rev acc, List.rev skipped)
    | line -> (
      match of_line line with
      | Ok (Some trace) -> go (trace :: acc) skipped (lineno + 1)
      | Ok None -> go acc skipped (lineno + 1)
      | Error e -> go acc ((lineno, e) :: skipped) (lineno + 1))
  in
  go [] [] 1

let load_lenient ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_channel_lenient ic)
