type txn_id = int
type client_id = int
type value = int

type item = { cell : Cell.t; value : value }

type payload =
  | Read of { items : item list; locking : bool }
  | Write of item list
  | Commit
  | Abort

type t = {
  ts_bef : int;
  ts_aft : int;
  txn : txn_id;
  client : client_id;
  payload : payload;
}

let interval t = Leopard_util.Interval.make ~bef:t.ts_bef ~aft:t.ts_aft

let compare_by_bef a b =
  let c = Int.compare a.ts_bef b.ts_bef in
  if c <> 0 then c
  else
    let c = Int.compare a.ts_aft b.ts_aft in
    if c <> 0 then c
    else
      let c = Int.compare a.client b.client in
      if c <> 0 then c else Int.compare a.txn b.txn

let is_terminal t = match t.payload with Commit | Abort -> true | Read _ | Write _ -> false

let read_items t =
  match t.payload with Read { items; _ } -> items | Write _ | Commit | Abort -> []

let write_items t =
  match t.payload with Write items -> items | Read _ | Commit | Abort -> []

let well_formed t =
  if t.ts_bef >= t.ts_aft then
    Error
      (Printf.sprintf "trace of txn %d: ts_bef %d >= ts_aft %d" t.txn t.ts_bef
         t.ts_aft)
  else if t.txn < 0 then Error "negative txn id"
  else if t.client < 0 then Error "negative client id"
  else
    match t.payload with
    | Read { items = []; _ } -> Error "empty read set"
    | Write [] -> Error "empty write set"
    | Read _ | Write _ | Commit | Abort -> Ok ()

let pp_item ppf (i : item) =
  Format.fprintf ppf "%a=%d" Cell.pp i.cell i.value

let pp_items ppf items =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_item ppf items

let pp ppf t =
  let kind =
    match t.payload with
    | Read { locking = true; _ } -> "read!"
    | Read _ -> "read"
    | Write _ -> "write"
    | Commit -> "commit"
    | Abort -> "abort"
  in
  Format.fprintf ppf "@[<h>[%d,%d] c%d t%d %s" t.ts_bef t.ts_aft t.client t.txn
    kind;
  (match t.payload with
  | Read { items; _ } -> Format.fprintf ppf " {%a}" pp_items items
  | Write items -> Format.fprintf ppf " {%a}" pp_items items
  | Commit | Abort -> ());
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
