(* Framed, fingerprinted checker checkpoints.

   File layout:

     leopard-check-checkpoint v1 <fingerprint>
     b <seq> <count>
     l <checksum> <escaped payload line>   x count
     e <seq>
     ... more frames ...

   (fields tab-separated).  Each frame is one complete snapshot; a
   killed writer leaves at most one torn frame at the tail, which the
   loader discards in favor of the previous complete frame.  Every
   suspicious byte degrades toward "fresh start", never toward trusting
   damaged state — the failure mode "corrupt checkpoint produced a wrong
   verdict" must not exist. *)

let magic = "leopard-check-checkpoint"
let version = "v1"

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let checksum payload = Printf.sprintf "%016Lx" (fnv64 payload)

let fingerprint components =
  (* Length-prefix each component so ["ab";"c"] and ["a";"bc"] differ. *)
  checksum
    (String.concat "\x00"
       (List.map
          (fun c -> Printf.sprintf "%d:%s" (String.length c) c)
          components))

(* {2 Writing} *)

type writer = { oc : out_channel; mutable seq : int }

let writer ~path ~fingerprint =
  let oc = open_out path in
  Printf.fprintf oc "%s %s %s\n" magic version fingerprint;
  flush oc;
  { oc; seq = 0 }

let append w lines =
  Printf.fprintf w.oc "b\t%d\t%d\n" w.seq (List.length lines);
  List.iter
    (fun line ->
      let escaped = String.escaped line in
      Printf.fprintf w.oc "l\t%s\t%s\n" (checksum escaped) escaped)
    lines;
  Printf.fprintf w.oc "e\t%d\n" w.seq;
  flush w.oc;
  w.seq <- w.seq + 1

let close w = close_out_noerr w.oc

(* {2 Loading} *)

(* Parse one frame starting at the current position: begin marker,
   [count] checksummed lines, end marker with a matching sequence
   number.  Any deviation is damage — the caller stops scanning and
   falls back to the best frame seen so far. *)
let parse_frame ic first_line =
  match String.split_on_char '\t' first_line with
  | [ "b"; seq; count ] -> (
    match (int_of_string_opt seq, int_of_string_opt count) with
    | Some seq, Some count when count >= 0 -> (
      let rec lines n acc =
        if n = 0 then Ok (List.rev acc)
        else
          match input_line ic with
          | exception End_of_file -> Error "torn frame (truncated mid-frame)"
          | line -> (
            match String.split_on_char '\t' line with
            | "l" :: sum :: rest when rest <> [] -> (
              let escaped = String.concat "\t" rest in
              if not (String.equal sum (checksum escaped)) then
                Error "payload checksum mismatch"
              else
                match Scanf.unescaped escaped with
                | payload -> lines (n - 1) (payload :: acc)
                | exception Scanf.Scan_failure _ ->
                  Error "unescapable payload line")
            | _ -> Error "malformed payload line")
      in
      match lines count [] with
      | Error _ as e -> e
      | Ok payload -> (
        match input_line ic with
        | exception End_of_file -> Error "torn frame (missing end marker)"
        | line ->
          if String.equal line (Printf.sprintf "e\t%d" seq) then Ok payload
          else Error "bad frame end marker"))
    | _ -> Error "malformed frame header")
  | _ -> Error "malformed frame header"

let load ~path ~fingerprint =
  match open_in path with
  | exception Sys_error _ -> (None, None)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file ->
          ( None,
            Some
              (Printf.sprintf
                 "checkpoint %s: empty file; starting verification from \
                  scratch"
                 path) )
        | header -> (
          match String.split_on_char ' ' header with
          | [ m; v; fp ]
            when String.equal m magic && String.equal v version
                 && String.equal fp fingerprint ->
            let best = ref None in
            let frames = ref 0 in
            let damage = ref None in
            (try
               let rec loop () =
                 let line = input_line ic in
                 match parse_frame ic line with
                 | Ok payload ->
                   best := Some payload;
                   incr frames;
                   loop ()
                 | Error why -> damage := Some why
               in
               loop ()
             with End_of_file -> ());
            let warning =
              match !damage with
              | None -> None
              | Some why ->
                Some
                  (if !frames = 0 then
                     Printf.sprintf
                       "checkpoint %s: %s with no earlier complete frame; \
                        starting verification from scratch"
                       path why
                   else
                     Printf.sprintf
                       "checkpoint %s: %s; resuming from frame %d (the last \
                        that validates)"
                       path why (!frames - 1))
            in
            (!best, warning)
          | [ m; v; fp ]
            when String.equal m magic && String.equal v version
                 && not (String.equal fp fingerprint) ->
            ( None,
              Some
                (Printf.sprintf
                   "checkpoint %s: fingerprint mismatch (file %s, run %s) — \
                    written by a different run or configuration; starting \
                    verification from scratch"
                   path fp fingerprint) )
          | _ ->
            ( None,
              Some
                (Printf.sprintf
                   "checkpoint %s: unrecognized header; starting verification \
                    from scratch"
                   path) )))
