(** Cell addresses — the unit of data Leopard reasons about.

    A cell is one column of one row of one table.  Reads and writes carry
    sets of [(cell, value)] items; version chains (both in the engine under
    test and in the verifier's mirror) are kept per cell.

    Column granularity is deliberate: the paper observes (§VI-D, Fig. 13)
    that TPC-C transactions touching {e different attributes of the same
    record} produce dependencies Leopard cannot deduce, because the traces
    carry no common cell.  The engine still locks at row granularity, so
    such dependencies are real — exactly the mismatch the paper reports. *)

type t = { table : int; row : int; col : int }

val make : table:int -> row:int -> col:int -> t

val row_key : t -> int * int
(** [(table, row)] — the lock granule of the engine's lock manager. *)

val compare_row_key : int * int -> int * int -> int
(** Typed order on [row_key] pairs: table, then row. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
