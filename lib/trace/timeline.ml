let glyph (t : Trace.t) =
  match t.payload with
  | Trace.Read { locking = true; _ } -> 'L'
  | Trace.Read _ -> 'R'
  | Trace.Write _ -> 'W'
  | Trace.Commit -> 'C'
  | Trace.Abort -> 'A'

let render ?(max_width = 100) ?(max_clients = 16) traces =
  match traces with
  | [] -> "(empty history)\n"
  | _ ->
    let lo =
      List.fold_left (fun acc (t : Trace.t) -> min acc t.ts_bef) max_int traces
    in
    let hi =
      List.fold_left (fun acc (t : Trace.t) -> max acc t.ts_aft) min_int traces
    in
    let span = max 1 (hi - lo) in
    let width = max 10 max_width in
    let col ts = (ts - lo) * (width - 1) / span in
    let clients =
      List.sort_uniq Int.compare
        (List.map (fun (t : Trace.t) -> t.client) traces)
    in
    let shown = List.filteri (fun i _ -> i < max_clients) clients in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "time %d .. %d (1 column = %d time units)\n" lo hi
         (max 1 (span / width)));
    List.iter
      (fun client ->
        let lane = Bytes.make width ' ' in
        List.iter
          (fun (t : Trace.t) ->
            if t.client = client then begin
              let a = col t.ts_bef and b = max (col t.ts_bef) (col t.ts_aft) in
              for i = a to min b (width - 1) do
                Bytes.set lane i (glyph t)
              done
            end)
          traces;
        Buffer.add_string buf
          (Printf.sprintf "client %3d |%s|\n" client (Bytes.to_string lane)))
      shown;
    if List.length clients > max_clients then
      Buffer.add_string buf
        (Printf.sprintf "... and %d more clients\n"
           (List.length clients - max_clients));
    Buffer.contents buf

let render_for_cell ?max_width cell traces =
  let touches (t : Trace.t) =
    List.exists
      (fun (i : Trace.item) -> Cell.equal i.cell cell)
      (Trace.read_items t @ Trace.write_items t)
  in
  let txns =
    List.filter_map
      (fun (t : Trace.t) -> if touches t then Some t.txn else None)
      traces
  in
  let keep (t : Trace.t) =
    touches t || (Trace.is_terminal t && List.mem t.txn txns)
  in
  render ?max_width (List.filter keep traces)
