(** A shard participant: a per-shard version store fed by the
    coordinator's decision log, plus the participant side of 2PC.

    The coordinator appends commit records in commit-stamp order and the
    participant applies its shard's slices strictly in sequence, so
    [applied_ts] is an exact visibility horizon for the cells this shard
    owns — the store holds every owned version with
    [commit_ts <= applied_ts] and none beyond it.  A read of owned
    cells at a snapshot [<= applied_ts] therefore observes exactly what
    the engine would serve at the same snapshot.

    On top of the applier sits the prepared-transaction table (the 2PC
    prepared locks) and an optional frozen serving horizon — the
    {!Shard_fault.Stale_prepared_read} lie. *)

type prepared = {
  p_start_ts : int;
  p_writes : (Leopard_trace.Cell.t * Leopard_trace.Trace.value) list;
  p_vetoed : bool;  (** this shard voted abort for the transaction *)
}

type t = {
  id : int;  (** link-session id of this shard *)
  mutable store : Minidb.Version_store.t;
  mutable applied_through : int;
      (** highest contiguously applied decision seq (1-based; 0 = none) *)
  mutable applied_ts : int;
      (** commit stamp of the last applied decision; 0 if none *)
  prepared : (int, prepared) Hashtbl.t;
  mutable frozen_ts : int option;
      (** serving horizon frozen at an orphaned prepare; only ever set
          under {!Shard_fault.Stale_prepared_read} *)
}

val create :
  id:int -> initial:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list -> t

val prepare :
  t ->
  txn:int ->
  start_ts:int ->
  writes:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list ->
  check_conflicts:bool ->
  bool
(** Vote on a PREPARE: [true] = commit, [false] = veto.  A duplicated
    prepare re-votes identically.  With [check_conflicts], a write set
    overlapping the rows of another prepared transaction is vetoed (the
    prepared-lock conflict, turned into an abort instead of blocking);
    the synchronous zero-fault path passes [false] — prepare and
    decision are atomic there, so prepared locks are never observably
    held. *)

val apply : t -> seq:int -> Minidb.Wal.record -> bool
(** Apply decision [seq] if it is exactly the next expected one
    ([applied_through + 1]); returns whether it was applied.  Clears the
    transaction's prepared entry.  Stale retransmits and out-of-order
    deliveries are rejected — the cumulative ack tells the coordinator
    what to resend. *)

val release : t -> txn:int -> apply_anyway:bool -> unit
(** ABORT decision: drop [txn]'s prepared entry.  [apply_anyway] is the
    {!Shard_fault.Commit_after_abort} lie — install the prepared writes
    at the current horizon despite the abort. *)

val freeze : t -> unit
(** Freeze the serving horizon at the current [applied_ts] (idempotent);
    the {!Shard_fault.Stale_prepared_read} orphaned-lock lie. *)

val prepared_count : t -> int

val read :
  t ->
  cells:Leopard_trace.Cell.t list ->
  ts:int ->
  Leopard_trace.Trace.item list
(** Snapshot read at [ts] against the shard's store (missing cells read
    as 0, matching the engine's convention).  Only meaningful for cells
    this shard owns. *)

val crash_rebuild :
  t ->
  initial:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list ->
  records:Minidb.Wal.record list ->
  unit
(** Crash/restart: prepared entries and any frozen horizon are volatile
    and lost; the store rebuilds from the durable decision log (oldest
    first), with [applied_through]/[applied_ts] set to the log's end. *)
