module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Version_store = Minidb.Version_store
module Wal = Minidb.Wal
module Recovery = Minidb.Recovery

(* A shard participant is a version store fed exclusively by the
   coordinator's per-shard decision log, in log order.  The coordinator
   appends commit records in commit-stamp order and decisions apply
   strictly in sequence, so [applied_ts] is an exact visibility horizon
   *for this shard's slice of the key space*: the store holds every
   version of an owned cell with commit_ts <= applied_ts and none
   beyond it.  On top of the applier sits the 2PC-side state: prepared
   write sets awaiting a decision (the prepared locks), and an optional
   frozen serving horizon — the [Shard_fault.Stale_prepared_read] lie,
   where an orphaned prepared lock pins what the shard will serve. *)

type prepared = {
  p_start_ts : int;
  p_writes : (Cell.t * Trace.value) list;
  p_vetoed : bool;  (* this shard voted abort for the transaction *)
}

type t = {
  id : int;
  mutable store : Version_store.t;
  mutable applied_through : int;  (* highest contiguously applied seq *)
  mutable applied_ts : int;  (* commit stamp of that entry; 0 if none *)
  prepared : (int, prepared) Hashtbl.t;  (* txn -> prepared entry *)
  mutable frozen_ts : int option;
      (* serving horizon frozen at an orphaned prepare (fault only) *)
}

let install_record store (r : Wal.record) =
  List.iter
    (fun (w : Wal.write) ->
      Version_store.install store w.Wal.cell
        {
          Version_store.value = w.Wal.value;
          writer = r.Wal.txn;
          writer_ts = r.Wal.start_ts;
          write_op = w.Wal.write_op;
          commit_ts = w.Wal.commit_ts;
        })
    r.Wal.writes

let create ~id ~initial =
  let store = Version_store.create () in
  List.iter (fun (cell, value) -> Version_store.load store cell value) initial;
  {
    id;
    store;
    applied_through = 0;
    applied_ts = 0;
    prepared = Hashtbl.create 8;
    frozen_ts = None;
  }

let rows_conflict writes (pe : prepared) =
  List.exists
    (fun (cell, _) ->
      let rk = Cell.row_key cell in
      List.exists
        (fun (c2, _) -> Cell.compare_row_key rk (Cell.row_key c2) = 0)
        pe.p_writes)
    writes

(* Vote on a PREPARE: true = commit, false = veto.  A duplicated
   prepare re-votes identically.  With [check_conflicts], a write set
   overlapping the rows of another (non-vetoed) prepared transaction is
   vetoed — the prepared-lock conflict of a real 2PC participant,
   turned into an abort instead of blocking. *)
let prepare t ~txn ~start_ts ~writes ~check_conflicts =
  match Hashtbl.find_opt t.prepared txn with
  | Some pe -> not pe.p_vetoed
  | None ->
    let conflict =
      check_conflicts
      (* lint: allow hashtbl-order — existence fold; commutative *)
      && Hashtbl.fold
           (fun otxn pe acc ->
             acc
             || (otxn <> txn && (not pe.p_vetoed) && rows_conflict writes pe))
           t.prepared false
    in
    Hashtbl.replace t.prepared txn
      { p_start_ts = start_ts; p_writes = writes; p_vetoed = conflict };
    not conflict

let apply t ~seq record =
  if seq <> t.applied_through + 1 then false
    (* stale retransmit or a gap from reordering: the cumulative ack for
       [applied_through] tells the coordinator what to resend *)
  else begin
    install_record t.store record;
    Hashtbl.remove t.prepared record.Wal.txn;
    t.applied_through <- seq;
    t.applied_ts <- record.Wal.commit_ts;
    true
  end

(* ABORT decision: drop the prepared entry.  [apply_anyway] is the
   [Shard_fault.Commit_after_abort] lie — the participant installs the
   vetoed/aborted writes at its current horizon, so later snapshots on
   this shard observe values the engine never committed. *)
let release t ~txn ~apply_anyway =
  match Hashtbl.find_opt t.prepared txn with
  | None -> ()
  | Some pe ->
    Hashtbl.remove t.prepared txn;
    if apply_anyway then
      List.iter
        (fun (cell, value) ->
          Version_store.install t.store cell
            {
              Version_store.value;
              writer = txn;
              writer_ts = pe.p_start_ts;
              write_op = 0;
              commit_ts = t.applied_ts + 1;
            })
        pe.p_writes

let freeze t =
  match t.frozen_ts with
  | Some _ -> ()
  | None -> t.frozen_ts <- Some t.applied_ts

let prepared_count t = Hashtbl.length t.prepared

let read t ~cells ~ts =
  List.map
    (fun cell ->
      let value =
        match Version_store.visible t.store cell ~ts with
        | Some v -> v.Version_store.value
        | None -> 0
      in
      { Trace.cell; value })
    cells

(* Crash/restart: prepared state and any frozen horizon are volatile;
   the store rebuilds from the durable decision log (complete — the
   coordinator logs before shipping), so the participant recovers to
   the full prefix, possibly ahead of what it had applied. *)
let crash_rebuild t ~initial ~records =
  let store, _summary =
    Recovery.replay ~initial ~records
      ~fresh_ts:(fun () -> 0)
      ~damage:Wal.zero_damage
  in
  t.store <- store;
  t.applied_through <- List.length records;
  t.applied_ts <-
    (match List.rev records with
    | last :: _ -> last.Wal.commit_ts
    | [] -> 0);
  Hashtbl.reset t.prepared;
  t.frozen_ts <- None
