module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Sim = Minidb.Sim
module Wal = Minidb.Wal
module Wire = Leopard_net.Wire
module Faulty_link = Leopard_net.Faulty_link

(* A shard group: the key space hash-range-partitioned across N
   participants, with a 2PC coordinator co-located with the engine.
   Cross-shard write transactions run PREPARE/vote/decision over the
   same faulty links as client traffic (one session per shard), so
   drop/dup/delay/reorder/reset/partition all apply to commit-protocol
   messages; single-shard transactions take a fast path that never
   touches the protocol.  Decisions are logged per shard before
   shipping, giving each participant a strictly sequential,
   commit-stamp-ordered feed — mirroring the replication plane — so a
   participant's [applied_ts] is an exact serving horizon for its
   slice of the key space.

   The zero-fault path (no link faults, no hop latency, no partitions)
   is fully synchronous: prepares, decisions and applies happen inside
   the commit call with no scheduled events and no RNG draws, keeping a
   sharded run byte-identical to the single-shard run. *)

type partition = { shard : int; from_ns : int; until_ns : int }

type config = {
  shards : int;
  hop_ns : int;
  link : Faulty_link.config;
  partitions : partition list;
  prepare_timeout_ns : int;
  retransmit_ns : int;
  max_retransmits : int;
  skew_bound_ns : int;
  faults : Shard_fault.t list;
  wal_faults : Wal.fault_cfg option;
}

let config ?(shards = 2) ?(hop_ns = 0) ?(link = Faulty_link.disabled)
    ?(partitions = []) ?(prepare_timeout_ns = 2_000_000)
    ?(retransmit_ns = 500_000) ?(max_retransmits = 8)
    ?(skew_bound_ns = 1_000_000) ?(faults = []) ?wal_faults () =
  if shards < 2 then invalid_arg "Group.config: shards must be >= 2";
  if hop_ns < 0 then invalid_arg "Group.config: hop_ns must be >= 0";
  if prepare_timeout_ns <= 0 then
    invalid_arg "Group.config: prepare_timeout_ns must be > 0";
  if retransmit_ns <= 0 then
    invalid_arg "Group.config: retransmit_ns must be > 0";
  if max_retransmits < 0 then
    invalid_arg "Group.config: max_retransmits must be >= 0";
  if skew_bound_ns < 0 then
    invalid_arg "Group.config: skew_bound_ns must be >= 0";
  List.iter
    (fun p ->
      if p.from_ns < 0 || p.until_ns <= p.from_ns then
        invalid_arg "Group.config: partition window must satisfy 0 <= from < until";
      if p.shard < -1 || p.shard >= shards then
        invalid_arg "Group.config: partition shard out of range")
    partitions;
  {
    shards;
    hop_ns;
    link;
    partitions;
    prepare_timeout_ns;
    retransmit_ns;
    max_retransmits;
    skew_bound_ns;
    faults;
    wal_faults;
  }

(* SplitMix64 finalizer — a deterministic, well-mixed hash that is part
   of the partitioning contract (unlike [Hashtbl.hash], which is
   runtime-dependent and lint-banned).  The top 16 bits place the row
   on a 65536-point ring split into [shards] contiguous ranges. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let shard_of_row ~shards (table, row) =
  let packed =
    Int64.logxor (Int64.shift_left (Int64.of_int table) 32) (Int64.of_int row)
  in
  let point = Int64.to_int (Int64.shift_right_logical (mix64 packed) 48) in
  point * shards / 65536

(* Row-key granularity: a row's columns co-locate, so the engine's
   row-level lock granule never spans shards. *)
let shard_of_cell ~shards cell = shard_of_row ~shards (Cell.row_key cell)

type prep_outcome =
  | Prepared
  | Abort_decided
  | Coord_crashed

(* One shard's channel: participant, per-shard decision log (1-based,
   growable), cumulative ack cursor, a depth-1 send pipeline, and the
   participant's own write-ahead log — every applied decision is made
   durable locally, so a participant crash recovers from its *own* WAL
   (through the durability fault model) rather than from the
   coordinator's always-complete log. *)
type pchan = {
  p : Participant.t;
  mutable log : Wal.record array;
  mutable count : int;
  mutable acked_through : int;
  mutable inflight : bool;
  wal : Wal.t;
}

type round = {
  r_txn : int;
  r_start_ts : int;
  r_shards : int list;  (* ascending, >= 2 entries *)
  r_votes : (int, bool) Hashtbl.t;  (* shard -> vote received *)
  mutable r_settled : bool;  (* continuation called *)
  r_k : prep_outcome -> unit;
}

type t = {
  cfg : config;
  sim : Sim.t;
  initial : (Cell.t * Trace.value) list;
  link : Faulty_link.t;
  chans : pchan array;
  rounds : (int, round) Hashtbl.t;  (* open + prepared-awaiting-decision *)
  evented : bool;
  mutable gen : int;  (* coordinator incarnation *)
  mutable dispositions : (int * int * int list * char) list;
      (* (at, txn, shards, 'c'|'a'|'?'), newest first *)
  mutable n_prepares_sent : int;
  mutable n_votes_delivered : int;
  mutable n_vetoes : int;
  mutable n_prep_timeouts : int;
  mutable n_decisions_sent : int;
  mutable n_acks_delivered : int;
  mutable n_resends : int;
  mutable n_fast_commits : int;
  mutable n_tpc_commits : int;
  mutable n_tpc_aborts : int;
  mutable n_coord_crashes : int;
  mutable n_orphans : int;
  mutable n_presumed_aborts : int;
  mutable n_fractured : int;
  mutable n_part_restarts : int;
  mutable n_rebuilds : int;
  mutable n_wal_truncated : int;
  mutable n_wal_damage : int;
  mutable apply_hook : (shard:int -> seq:int -> Wal.record -> unit) option;
  mutable n_routed_reads : int;
  mutable n_skew_serves : int;
  mutable n_stale_serves : int;
  mutable n_partition_drops : int;
  mutable n_stale_drops : int;
}

let owner t cell = shard_of_cell ~shards:t.cfg.shards cell
let lying t f = Shard_fault.has_fault t.cfg.faults f

let initial_for t shard =
  List.filter (fun (cell, _) -> owner t cell = shard) t.initial

let create ~sim ~initial (cfg : config) =
  let evented =
    (not (Faulty_link.is_disabled cfg.link))
    || cfg.hop_ns > 0 || cfg.partitions <> []
  in
  {
    cfg;
    sim;
    initial;
    link = Faulty_link.create ~sessions:cfg.shards cfg.link;
    chans =
      Array.init cfg.shards (fun id ->
          let initial =
            List.filter
              (fun (cell, _) -> shard_of_cell ~shards:cfg.shards cell = id)
              initial
          in
          (* each participant draws its durability damage from its own
             derived stream, so shard 0's crash never perturbs shard 1 *)
          let wal_faults =
            Option.map
              (fun (f : Wal.fault_cfg) ->
                { f with Wal.seed = f.Wal.seed + ((id + 1) * 1_000_003) })
              cfg.wal_faults
          in
          {
            p = Participant.create ~id ~initial;
            log = [||];
            count = 0;
            acked_through = 0;
            inflight = false;
            wal = Wal.create ?faults:wal_faults ();
          });
    rounds = Hashtbl.create 16;
    evented;
    gen = 0;
    dispositions = [];
    n_prepares_sent = 0;
    n_votes_delivered = 0;
    n_vetoes = 0;
    n_prep_timeouts = 0;
    n_decisions_sent = 0;
    n_acks_delivered = 0;
    n_resends = 0;
    n_fast_commits = 0;
    n_tpc_commits = 0;
    n_tpc_aborts = 0;
    n_coord_crashes = 0;
    n_orphans = 0;
    n_presumed_aborts = 0;
    n_fractured = 0;
    n_part_restarts = 0;
    n_rebuilds = 0;
    n_wal_truncated = 0;
    n_wal_damage = 0;
    apply_hook = None;
    n_routed_reads = 0;
    n_skew_serves = 0;
    n_stale_serves = 0;
    n_partition_drops = 0;
    n_stale_drops = 0;
  }

let evented t = t.evented
let prepare_timeout_ns t = t.cfg.prepare_timeout_ns
let participant t ~shard = t.chans.(shard).p
let shard_count t = t.cfg.shards
let has_fault t f = Shard_fault.has_fault t.cfg.faults f
let set_apply_hook t hook = t.apply_hook <- hook

(* {2 Per-shard decision log} *)

let push c r =
  if c.count = Array.length c.log then begin
    let cap = max 16 (2 * Array.length c.log) in
    let log = Array.make cap r in
    Array.blit c.log 0 log 0 c.count;
    c.log <- log
  end;
  c.log.(c.count) <- r;
  c.count <- c.count + 1

let entry_at c seq = c.log.(seq - 1)

(* Group a write set by owning shard, ascending shard order (array
   buckets — no hash-order dependence). *)
let partition_writes t writes =
  let buckets = Array.make t.cfg.shards [] in
  List.iter
    (fun ((cell, _) as w) ->
      let s = owner t cell in
      buckets.(s) <- w :: buckets.(s))
    writes;
  let acc = ref [] in
  for s = t.cfg.shards - 1 downto 0 do
    match buckets.(s) with
    | [] -> ()
    | ws -> acc := (s, List.rev ws) :: !acc
  done;
  !acc

let shards_touched t ~cells =
  let seen = Array.make t.cfg.shards false in
  List.iter (fun cell -> seen.(owner t cell) <- true) cells;
  let acc = ref [] in
  for s = t.cfg.shards - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  !acc

(* {2 Messaging} *)

let partitioned t ~shard =
  let now = Sim.now t.sim in
  List.exists
    (fun p ->
      (p.shard = -1 || p.shard = shard) && now >= p.from_ns && now < p.until_ns)
    t.cfg.partitions

(* Route one protocol message (either direction) over a shard's link:
   partition windows drop it outright; otherwise the faulty link decides
   drop/duplicate/delay/reset and every surviving copy travels one
   [hop_ns] plus its extra latency.  Resets behave as drops here — the
   protocol's only recovery is retransmission either way. *)
let transmit t c msg ~deliver =
  if partitioned t ~shard:c.p.Participant.id then
    t.n_partition_drops <- t.n_partition_drops + 1
  else
    match Faulty_link.route t.link ~session:c.p.Participant.id with
    | Faulty_link.Drop | Faulty_link.Reset -> ()
    | Faulty_link.Deliver extras ->
      List.iter
        (fun extra ->
          Sim.schedule_after t.sim ~delay:(t.cfg.hop_ns + extra) (fun () ->
              deliver msg))
        extras

(* Apply one decision at a participant.  A successful apply is made
   durable in the participant's own WAL (append draws no RNG — the
   zero-fault path stays event- and draw-free) and forwarded to the
   apply hook, which is how a per-shard replica set observes its
   shard's committed feed.  Rejected applies (stale retransmits, gaps)
   touch neither. *)
let apply_decision t c ~seq record =
  let applied = Participant.apply c.p ~seq record in
  if applied then begin
    Wal.append c.wal record;
    match t.apply_hook with
    | Some hook -> hook ~shard:c.p.Participant.id ~seq record
    | None -> ()
  end;
  applied

(* Synchronous apply of everything outstanding on a channel — the
   zero-fault fast path. *)
let apply_now t c =
  while c.acked_through < c.count do
    let seq = c.acked_through + 1 in
    ignore (apply_decision t c ~seq (entry_at c seq));
    c.acked_through <- seq
  done

let rec send_decision t c ~seq ~attempt =
  if attempt = 1 then t.n_decisions_sent <- t.n_decisions_sent + 1
  else t.n_resends <- t.n_resends + 1;
  let gen = t.gen in
  let msg =
    Wire.Tpc_decision
      { shard = c.p.Participant.id; seq; record = entry_at c seq }
  in
  transmit t c msg ~deliver:(fun m -> deliver t c ~gen m);
  (* Capped retransmit: the agenda must drain, so after the cap the
     channel goes quiet until the next commit or recovery re-pumps it. *)
  Sim.schedule_after t.sim ~delay:t.cfg.retransmit_ns (fun () ->
      if gen = t.gen && c.acked_through < seq && seq <= c.count then
        if attempt >= t.cfg.max_retransmits then c.inflight <- false
        else send_decision t c ~seq ~attempt:(attempt + 1))

and pump t c =
  if (not c.inflight) && c.acked_through < c.count then begin
    c.inflight <- true;
    send_decision t c ~seq:(c.acked_through + 1) ~attempt:1
  end

and send_prepare t round ~shard ~writes ~attempt =
  if attempt = 1 then t.n_prepares_sent <- t.n_prepares_sent + 1
  else t.n_resends <- t.n_resends + 1;
  let gen = t.gen in
  let c = t.chans.(shard) in
  let msg =
    Wire.Tpc_prepare
      { shard; txn = round.r_txn; start_ts = round.r_start_ts; writes }
  in
  transmit t c msg ~deliver:(fun m -> deliver t c ~gen m);
  Sim.schedule_after t.sim ~delay:t.cfg.retransmit_ns (fun () ->
      if
        gen = t.gen
        && (not round.r_settled)
        && (not (Hashtbl.mem round.r_votes shard))
        && attempt < t.cfg.max_retransmits
      then send_prepare t round ~shard ~writes ~attempt:(attempt + 1))

(* ABORT decision fan-out.  On the synchronous path the release happens
   in place; otherwise it rides the link like any other message.  The
   [Commit_after_abort] lie lives at the participant: the prepared
   writes are installed instead of dropped. *)
and send_aborts t ~txn shards =
  List.iter
    (fun shard ->
      let c = t.chans.(shard) in
      if not t.evented then
        Participant.release c.p ~txn
          ~apply_anyway:(lying t Shard_fault.Commit_after_abort)
      else begin
        let gen = t.gen in
        transmit t c (Wire.Tpc_abort { shard; txn }) ~deliver:(fun m ->
            deliver t c ~gen m)
      end)
    shards

and settle_abort t round =
  round.r_settled <- true;
  Hashtbl.remove t.rounds round.r_txn;
  t.n_tpc_aborts <- t.n_tpc_aborts + 1;
  t.dispositions <-
    (Sim.now t.sim, round.r_txn, round.r_shards, 'a') :: t.dispositions;
  send_aborts t ~txn:round.r_txn round.r_shards;
  round.r_k Abort_decided

and handle_vote t ~shard ~txn ~commit =
  t.n_votes_delivered <- t.n_votes_delivered + 1;
  match Hashtbl.find_opt t.rounds txn with
  | None -> ()  (* round already decided or aborted; late vote *)
  | Some round when round.r_settled -> ()
  | Some round ->
    if not (Hashtbl.mem round.r_votes shard) then begin
      Hashtbl.replace round.r_votes shard commit;
      if not commit then begin
        t.n_vetoes <- t.n_vetoes + 1;
        settle_abort t round
      end
      else if
        List.for_all
          (fun s ->
            match Hashtbl.find_opt round.r_votes s with
            | Some true -> true
            | _ -> false)
          round.r_shards
      then begin
        round.r_settled <- true;
        (* the round stays open until the engine's decision arrives via
           [on_commit] or [decide_abort] *)
        round.r_k Prepared
      end
    end

(* One delivery, either direction.  A generation mismatch means the
   message was in flight across a coordinator crash or participant
   restart: the new incarnation ignores it and relies on retransmission
   from durable state. *)
and deliver t c ~gen msg =
  if gen <> t.gen then t.n_stale_drops <- t.n_stale_drops + 1
  else
    match msg with
    | Wire.Tpc_prepare { txn; start_ts; writes; _ } ->
      let vote =
        Participant.prepare c.p ~txn ~start_ts ~writes ~check_conflicts:true
      in
      transmit t c
        (Wire.Tpc_vote { shard = c.p.Participant.id; txn; commit = vote })
        ~deliver:(fun m -> deliver t c ~gen m)
    | Wire.Tpc_vote { shard; txn; commit } -> handle_vote t ~shard ~txn ~commit
    | Wire.Tpc_decision { seq; record; _ } ->
      ignore (apply_decision t c ~seq record);
      (* always re-ack cumulatively: a duplicated or stale decision
         still tells the coordinator where this shard really is *)
      transmit t c
        (Wire.Tpc_ack
           {
             shard = c.p.Participant.id;
             through = c.p.Participant.applied_through;
           })
        ~deliver:(fun m -> deliver t c ~gen m)
    | Wire.Tpc_abort { txn; _ } ->
      Participant.release c.p ~txn
        ~apply_anyway:(lying t Shard_fault.Commit_after_abort)
    | Wire.Tpc_ack { through; _ } ->
      t.n_acks_delivered <- t.n_acks_delivered + 1;
      if through > c.acked_through then begin
        c.acked_through <- through;
        c.inflight <- false;
        pump t c
      end

(* {2 Coordinator API} *)

(* Start a 2PC round for a cross-shard write set.  [k] fires exactly
   once: [Prepared] (go ahead and commit at the engine), [Abort_decided]
   (a shard vetoed or the votes never arrived — the coordinator decided
   abort, a definite outcome the client learns), or [Coord_crashed] (the
   coordinator died before deciding — the client can never learn).

   On the synchronous path the round is instantaneous: prepare and
   decision are atomic at the engine, prepared locks are never
   observably held, so no conflict votes are possible and the round
   always prepares — byte-identical to not sharding at all. *)
let prepare t ~txn ~start_ts ~writes ~k =
  let by_shard = partition_writes t writes in
  (match by_shard with
  | [] | [ _ ] -> invalid_arg "Group.prepare: cross-shard write set expected"
  | _ -> ());
  let shards = List.map fst by_shard in
  let round =
    {
      r_txn = txn;
      r_start_ts = start_ts;
      r_shards = shards;
      r_votes = Hashtbl.create 4;
      r_settled = false;
      r_k = k;
    }
  in
  Hashtbl.replace t.rounds txn round;
  if not t.evented then begin
    List.iter
      (fun (shard, ws) ->
        t.n_prepares_sent <- t.n_prepares_sent + 1;
        t.n_votes_delivered <- t.n_votes_delivered + 1;
        ignore
          (Participant.prepare t.chans.(shard).p ~txn ~start_ts ~writes:ws
             ~check_conflicts:false))
      by_shard;
    round.r_settled <- true;
    k Prepared
  end
  else begin
    List.iter
      (fun (shard, ws) -> send_prepare t round ~shard ~writes:ws ~attempt:1)
      by_shard;
    (* Votes lost beyond the retransmit cap must not hang the client:
       the coordinator gives up and decides abort — a definite outcome
       (the engine never committed). *)
    Sim.schedule_after t.sim ~delay:t.cfg.prepare_timeout_ns (fun () ->
        if not round.r_settled then begin
          t.n_prep_timeouts <- t.n_prep_timeouts + 1;
          settle_abort t round
        end)
  end

(* Engine abort of a transaction that had prepared (certification or
   reaper): fan the ABORT decision out and close the round. *)
let decide_abort t ~txn =
  match Hashtbl.find_opt t.rounds txn with
  | None -> ()
  | Some round ->
    Hashtbl.remove t.rounds txn;
    t.n_tpc_aborts <- t.n_tpc_aborts + 1;
    t.dispositions <-
      (Sim.now t.sim, txn, round.r_shards, 'a') :: t.dispositions;
    send_aborts t ~txn round.r_shards

(* Engine commit hook: slice the record by owning shard, append each
   slice to that shard's decision log, ship.  Single-shard (and
   non-2PC) commits take the same fast path with no protocol traffic;
   a 2PC round is closed with a COMMIT disposition. *)
let on_commit t (r : Wal.record) =
  (match Hashtbl.find_opt t.rounds r.Wal.txn with
  | Some round ->
    Hashtbl.remove t.rounds r.Wal.txn;
    t.n_tpc_commits <- t.n_tpc_commits + 1;
    t.dispositions <-
      (Sim.now t.sim, r.Wal.txn, round.r_shards, 'c') :: t.dispositions
  | None ->
    (* single-shard and read-only commits alike bypass the protocol *)
    t.n_fast_commits <- t.n_fast_commits + 1);
  let touched =
    shards_touched t ~cells:(List.map (fun w -> w.Wal.cell) r.Wal.writes)
  in
  List.iter
    (fun shard ->
      let c = t.chans.(shard) in
      push c
        {
          r with
          Wal.writes =
            List.filter (fun w -> owner t w.Wal.cell = shard) r.Wal.writes;
        };
      if not t.evented then apply_now t c else pump t c)
    touched

(* {2 Crash planes} *)

let log_contains c txn =
  let rec scan i = i < c.count && (c.log.(i).Wal.txn = txn || scan (i + 1)) in
  scan 0

(* The [Fractured_commit] lie: on a coordinator crash, the newest
   undelivered cross-shard decision slice on the highest shard is
   spliced out of that shard's log and the sequence renumbered — the
   recovering coordinator's per-shard cursor lost it.  That shard goes
   on to apply every later commit as if this one never happened while
   its sibling shards applied it. *)
let fracture t =
  let victim = ref None in
  Array.iter
    (fun c ->
      for seq = c.acked_through + 1 to c.count do
        let r = entry_at c seq in
        let cross =
          Array.exists
            (fun c2 ->
              c2.p.Participant.id <> c.p.Participant.id
              && log_contains c2 r.Wal.txn)
            t.chans
        in
        if cross then victim := Some (c, seq)
      done)
    t.chans;
  match !victim with
  | None -> ()
  | Some (c, seq) ->
    for i = seq to c.count - 1 do
      c.log.(i - 1) <- c.log.(i)
    done;
    c.count <- c.count - 1;
    t.n_fractured <- t.n_fractured + 1

(* The failover-time variant of the same lie: drop the newest record in
   a rebuilt feed whose transaction also committed on a sibling shard.
   [None] when the feed holds no cross-shard decision to lose. *)
let splice_newest_cross t c records =
  let cross r =
    Array.exists
      (fun c2 ->
        c2.p.Participant.id <> c.p.Participant.id && log_contains c2 r.Wal.txn)
      t.chans
  in
  let victim = ref (-1) in
  List.iteri (fun i r -> if cross r then victim := i) records;
  if !victim < 0 then None
  else Some (List.filteri (fun i _ -> i <> !victim) records)

(* Coordinator crash at a seeded instant.  Prepare-phase state is
   volatile: undecided rounds are orphaned and, honestly, resolved by
   presumed abort (the participant times out, inquires, and the
   recovered coordinator has no record).  Decided rounds live in the
   durable per-shard logs and simply resume shipping under the new
   incarnation.  The [Stale_prepared_read] lie leaves orphaned prepared
   locks unresolved and freezes the serving horizon of every shard
   holding one. *)
let coord_crash t =
  t.n_coord_crashes <- t.n_coord_crashes + 1;
  t.gen <- t.gen + 1;
  let orphaned =
    Hashtbl.fold
      (fun _ r acc -> if r.r_settled then acc else r :: acc)
      t.rounds []
    |> List.sort (fun a b -> Int.compare a.r_txn b.r_txn)
  in
  List.iter
    (fun round ->
      round.r_settled <- true;
      Hashtbl.remove t.rounds round.r_txn;
      t.n_orphans <- t.n_orphans + 1;
      t.dispositions <-
        (Sim.now t.sim, round.r_txn, round.r_shards, '?') :: t.dispositions;
      if lying t Shard_fault.Stale_prepared_read then
        List.iter
          (fun s ->
            let p = t.chans.(s).p in
            if Hashtbl.mem p.Participant.prepared round.r_txn then
              Participant.freeze p)
          round.r_shards
      else begin
        t.n_presumed_aborts <- t.n_presumed_aborts + 1;
        let gen = t.gen in
        List.iter
          (fun s ->
            let c = t.chans.(s) in
            Sim.schedule_after t.sim ~delay:t.cfg.retransmit_ns (fun () ->
                if gen = t.gen then
                  Participant.release c.p ~txn:round.r_txn
                    ~apply_anyway:(lying t Shard_fault.Commit_after_abort)))
          round.r_shards
      end;
      round.r_k Coord_crashed)
    orphaned;
  if lying t Shard_fault.Fractured_commit then fracture t;
  Array.iter
    (fun c ->
      c.inflight <- false;
      pump t c)
    t.chans

(* Recovery trusts only the longest prefix of a record feed that
   matches the coordinator's decision log positionally — modelling the
   per-record checksum + sequence validation a real participant runs at
   replay.  Comparing txn, commit stamp and write-set size catches every
   durability fault: a torn tail shortens the write set, a lost-fsync
   hole or reordered flush shifts later records out of position, and a
   duplicate replay repeats an out-of-place record.  Everything past the
   first mismatch is discarded — damaged records must never reach the
   store (a poisoned slice served at [caught_up] would turn honest
   damage into a false Violation); truncation only lags the shard, and
   the coordinator re-ships the gap. *)
let record_matches (a : Wal.record) (b : Wal.record) =
  a.Wal.txn = b.Wal.txn
  && a.Wal.commit_ts = b.Wal.commit_ts
  && List.length a.Wal.writes = List.length b.Wal.writes

let clean_prefix c records =
  let rec go acc i = function
    | r :: rest when i < c.count && record_matches (entry_at c (i + 1)) r ->
      go (r :: acc) (i + 1) rest
    | _ -> List.rev acc
  in
  go [] 0 records

(* Rebuild one participant from a durable record feed, re-acking only
   the trusted prefix; the coordinator's log backfills the rest.
   [claim_through] is the lying-cluster channel: a replica set that
   elected a lagging or suffix-losing primary claims the rebuild is
   clean through the pre-crash cursor, so the coordinator never
   re-ships the hole — a silent loss the checker must catch as CR.
   [Fractured_commit] is the same overclaim arising inside the shard:
   the just-failed-over primary's log lost one cross-shard decision
   slice yet the shard reports the full prefix. *)
let rebuild_chan t c ~records ~claim_through =
  t.n_rebuilds <- t.n_rebuilds + 1;
  let honest = clean_prefix c records in
  t.n_wal_truncated <-
    t.n_wal_truncated
    + max 0 (c.p.Participant.applied_through - List.length honest);
  let store_records, claimed =
    match claim_through with
    | Some k -> (honest, Some k)
    | None ->
      if lying t Shard_fault.Fractured_commit then (
        match splice_newest_cross t c honest with
        | Some spliced ->
          t.n_fractured <- t.n_fractured + 1;
          (spliced, Some (List.length honest))
        | None -> (honest, None))
      else (honest, None)
  in
  Participant.crash_rebuild c.p
    ~initial:(initial_for t (c.p.Participant.id))
    ~records:store_records;
  Wal.preload c.wal store_records;
  (match claimed with
  | Some k when k > c.p.Participant.applied_through && k <= c.count ->
    c.p.Participant.applied_through <- k;
    c.p.Participant.applied_ts <- (entry_at c k).Wal.commit_ts
  | _ -> ());
  c.acked_through <- c.p.Participant.applied_through;
  c.inflight <- false;
  t.gen <- t.gen + 1;
  Array.iter
    (fun c ->
      c.inflight <- false;
      pump t c)
    t.chans;
  c.acked_through

(* Participant crash/restart: volatile prepared state is lost; the
   store rebuilds from the participant's own WAL through the durability
   fault model (torn tail, lost fsync, reordered flush, duplicate
   replay), truncated to the trusted prefix.  The shard re-acks that
   prefix and the coordinator re-ships anything it lost — honest
   damage costs catch-up lag, never a wrong serve. *)
let restart_participant t ~shard =
  if shard < 0 || shard >= t.cfg.shards then
    invalid_arg "Group.restart_participant: shard out of range";
  t.n_part_restarts <- t.n_part_restarts + 1;
  let c = t.chans.(shard) in
  let survivors, damage = Wal.crash c.wal in
  if not (Wal.no_damage damage) then
    t.n_wal_damage <- t.n_wal_damage + Wal.damaged_records damage;
  ignore (rebuild_chan t c ~records:survivors ~claim_through:None)

(* Rebuild one participant from an externally supplied record feed —
   the survivor prefix its replica set kept across a failover.  Returns
   the re-acked cursor. *)
let rebuild_participant t ~shard ~records ~claim_through =
  if shard < 0 || shard >= t.cfg.shards then
    invalid_arg "Group.rebuild_participant: shard out of range";
  rebuild_chan t t.chans.(shard) ~records ~claim_through

(* {2 Routed reads} *)

(* Serve a write-free snapshot read from the owning participants when
   every touched shard can serve it.  Honest serving requires the
   shard's horizon to have reached the snapshot (then the answer is
   exactly the engine's, by the horizon-exactness of sequential
   application).  [Snapshot_skew] serves lagging shards at their own
   horizon inside the skew bound — one read, several timelines — and a
   horizon frozen by [Stale_prepared_read] keeps answering from the
   freeze instant.  Routing draws no randomness and schedules nothing:
   a [None] falls back to the engine path. *)
let route_read t ~cells ~snapshot =
  let snap = snapshot () in
  let serve_ts shard =
    let c = t.chans.(shard) in
    let p = c.p in
    (* A drained channel ([acked_through >= count]) means every decision
       logged for this shard has been applied: the participant's slice
       is complete through now, so any snapshot is honestly serveable.
       A lying log (spliced or poisoned) drains just the same — the lie
       becomes the answer. *)
    let caught_up = c.acked_through >= c.count in
    match p.Participant.frozen_ts with
    | Some f ->
      if snap <= f then Some snap
      else if snap - f <= t.cfg.skew_bound_ns then begin
        t.n_stale_serves <- t.n_stale_serves + 1;
        Some f
      end
      else None
    | None ->
      if p.Participant.applied_ts >= snap || caught_up then Some snap
      else if
        lying t Shard_fault.Snapshot_skew
        && snap - p.Participant.applied_ts <= t.cfg.skew_bound_ns
      then begin
        t.n_skew_serves <- t.n_skew_serves + 1;
        Some p.Participant.applied_ts
      end
      else None
  in
  let shards = shards_touched t ~cells in
  let plan =
    List.fold_left
      (fun acc shard ->
        match (acc, serve_ts shard) with
        | Some acc, Some ts -> Some ((shard, ts) :: acc)
        | _, _ -> None)
      (Some []) shards
  in
  match plan with
  | None -> None
  | Some plan ->
    t.n_routed_reads <- t.n_routed_reads + 1;
    Some
      (List.map
         (fun cell ->
           let shard = owner t cell in
           let ts = List.assoc shard plan in
           match Participant.read t.chans.(shard).p ~cells:[ cell ] ~ts with
           | [ item ] -> item
           | _ -> { Trace.cell; value = 0 })
         cells)

(* {2 Reporting} *)

let rounds_log t = List.rev t.dispositions

type stats = {
  shards : int;
  prepares_sent : int;
  votes_delivered : int;
  vetoes : int;
  prep_timeouts : int;
  decisions_sent : int;
  acks_delivered : int;
  resends : int;
  fast_path_commits : int;
  tpc_commits : int;
  tpc_aborts : int;
  coord_crashes : int;
  coord_orphans : int;
  presumed_aborts : int;
  fractured : int;
  participant_restarts : int;
  participant_rebuilds : int;
  wal_truncated_records : int;
  wal_damaged_records : int;
  routed_reads : int;
  skew_serves : int;
  stale_serves : int;
  partition_drops : int;
  stale_drops : int;
  log_entries : int;
  min_applied : int;
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  link_reordered : int;
  link_resets : int;
}

let stats t =
  {
    shards = t.cfg.shards;
    prepares_sent = t.n_prepares_sent;
    votes_delivered = t.n_votes_delivered;
    vetoes = t.n_vetoes;
    prep_timeouts = t.n_prep_timeouts;
    decisions_sent = t.n_decisions_sent;
    acks_delivered = t.n_acks_delivered;
    resends = t.n_resends;
    fast_path_commits = t.n_fast_commits;
    tpc_commits = t.n_tpc_commits;
    tpc_aborts = t.n_tpc_aborts;
    coord_crashes = t.n_coord_crashes;
    coord_orphans = t.n_orphans;
    presumed_aborts = t.n_presumed_aborts;
    fractured = t.n_fractured;
    participant_restarts = t.n_part_restarts;
    participant_rebuilds = t.n_rebuilds;
    wal_truncated_records = t.n_wal_truncated;
    wal_damaged_records = t.n_wal_damage;
    routed_reads = t.n_routed_reads;
    skew_serves = t.n_skew_serves;
    stale_serves = t.n_stale_serves;
    partition_drops = t.n_partition_drops;
    stale_drops = t.n_stale_drops;
    log_entries = Array.fold_left (fun acc c -> acc + c.count) 0 t.chans;
    min_applied =
      Array.fold_left
        (fun acc c -> min acc c.p.Participant.applied_through)
        max_int t.chans;
    link_dropped = Faulty_link.dropped t.link;
    link_duplicated = Faulty_link.duplicated t.link;
    link_delayed = Faulty_link.delayed t.link;
    link_reordered = Faulty_link.reordered t.link;
    link_resets = Faulty_link.resets t.link;
  }
