(* The sharding/2PC fault vocabulary — the sixth fault plane.

   Like the engine's [Minidb.Fault], the WAL's durability faults and the
   cluster's [Repl_fault], these are *planted bugs*, not environmental
   noise: wire faults and coordinator crashes (the environment) can
   strand prepares and delay decisions without any of these, and an
   honest coordinator then presumes abort, re-delivers logged decisions,
   and reports what it cannot know — the checker degrades to
   Inconclusive.  A fault in this list makes the commit protocol *lie*:
   fracture a decided commit across shards, apply a vetoed transaction,
   mix per-shard snapshots inside one read, or keep serving from a
   horizon frozen under an orphaned prepared lock — each planting a
   real, provable isolation violation for Leopard to find. *)

type t =
  | Fractured_commit
      (* a coordinator crash mid-decision-fanout drops the undelivered
         slice of a decided commit at one shard and compensates the
         sequence, so that shard applies every later commit as if the
         fractured one never happened: one shard applied, one not *)
  | Commit_after_abort
      (* a participant holding prepared writes applies them when the
         ABORT decision arrives, making an aborted transaction's values
         readable on its shard *)
  | Snapshot_skew
      (* a cross-shard read is served per shard at [min(snapshot,
         shard horizon)] instead of one global snapshot: cells from a
         lagging shard come from an older timeline than the rest *)
  | Stale_prepared_read
      (* prepared locks orphaned by a coordinator crash are never
         presumed-aborted; the shard freezes its serving horizon at the
         orphaning instant and keeps serving later snapshots from it *)

let all =
  [ Fractured_commit; Commit_after_abort; Snapshot_skew; Stale_prepared_read ]

let to_string = function
  | Fractured_commit -> "fractured-commit"
  | Commit_after_abort -> "commit-after-abort"
  | Snapshot_skew -> "snapshot-skew"
  | Stale_prepared_read -> "stale-prepared-read"

let of_string = function
  | "fractured-commit" -> Some Fractured_commit
  | "commit-after-abort" -> Some Commit_after_abort
  | "snapshot-skew" -> Some Snapshot_skew
  | "stale-prepared-read" -> Some Stale_prepared_read
  | _ -> None

let description = function
  | Fractured_commit ->
    "a coordinator crash drops one shard's slice of a decided commit and \
     compensates the sequence: one shard applied the transaction, one \
     did not"
  | Commit_after_abort ->
    "a participant applies its prepared writes when the ABORT decision \
     arrives, exposing an aborted transaction's values on its shard"
  | Snapshot_skew ->
    "a cross-shard read mixes per-shard horizons instead of one global \
     snapshot: lagging shards serve from an older timeline"
  | Stale_prepared_read ->
    "prepared locks orphaned by a coordinator crash freeze the shard's \
     serving horizon, which keeps answering later snapshots stale"

(* The verifier family expected to catch each planted anomaly.  All four
   surface as reads served values impossible under the global version
   chain — a missing committed write (fractured commit), an aborted
   write (G1a), or a superseded version (skew, stale horizon) — which is
   exactly what the candidate-set read check proves. *)
let expected_mechanism = function
  | Fractured_commit | Commit_after_abort | Snapshot_skew
  | Stale_prepared_read ->
    "CR"

let has_fault faults f = List.mem f faults
