(** Seeded sharding/2PC faults — the sixth fault plane.

    - {!Minidb.Fault} corrupts live concurrency control;
    - {!Minidb.Wal} faults corrupt what survives a crash;
    - [Harness.Chaos] corrupts trace collection;
    - {!Leopard_net.Faulty_link} corrupts the client wire;
    - [Leopard_replication.Repl_fault] corrupts failover;
    - {e this module} corrupts the cross-shard commit protocol.

    These are planted bugs, not environmental noise: wire faults and
    coordinator crashes merely strand prepares or delay decisions, and
    an honest coordinator then presumes abort, re-delivers logged
    decisions on recovery, and the run {e reports} genuinely unknowable
    outcomes (the checker degrades to Inconclusive).  A fault here makes
    the commit protocol lie, planting a definite,
    mechanism-attributable isolation violation. *)

type t =
  | Fractured_commit
      (** a coordinator crash mid-decision-fanout drops one shard's
          slice of a decided commit and compensates the sequence — one
          shard applied, one not (expected mechanism: CR) *)
  | Commit_after_abort
      (** a participant applies its prepared writes when the ABORT
          decision arrives: an aborted transaction's values become
          readable on its shard (CR, G1a) *)
  | Snapshot_skew
      (** a cross-shard read is served per shard at [min(snapshot,
          shard horizon)] instead of one global snapshot (CR) *)
  | Stale_prepared_read
      (** prepared locks orphaned by a coordinator crash freeze the
          shard's serving horizon, which keeps answering later
          snapshots from it (CR) *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val description : t -> string

val expected_mechanism : t -> string
(** The verifier family expected to catch the planted anomaly
    (["CR"] for all four). *)

val has_fault : t list -> t -> bool
(** Set membership ([has_fault faults f]). *)
