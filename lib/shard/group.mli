(** A shard group: hash-range partitioning plus a 2PC coordinator whose
    PREPARE/vote/decision/ACK traffic rides the same
    {!Leopard_net.Faulty_link} machinery as client traffic (one link
    session per shard), so every seeded wire fault — drop, duplicate,
    delay, reorder, reset, partition — applies to commit-protocol
    messages.  Single-shard transactions take a fast path that never
    touches the protocol.

    Decisions are logged per shard before shipping and applied strictly
    in sequence with cumulative acks and capped retransmission, so a
    participant's applied horizon is exact for its slice of the key
    space.  The zero-fault path is fully synchronous — no scheduled
    events, no RNG draws — keeping a sharded run byte-identical to the
    single-shard run on the same seed and workload.

    Honest failures (coordinator crash before a decision, lost votes)
    resolve by presumed abort or surface as [Coord_crashed] — the
    client-cannot-know channel.  The {!Shard_fault} lies instead make
    the protocol plant definite isolation violations. *)

type partition = { shard : int; from_ns : int; until_ns : int }
(** Drop every protocol message to/from [shard] (or all shards when
    [shard = -1]) inside [\[from_ns, until_ns)]. *)

type config = private {
  shards : int;  (** number of shard groups; >= 2 *)
  hop_ns : int;  (** one-way latency per protocol message *)
  link : Leopard_net.Faulty_link.config;
  partitions : partition list;
  prepare_timeout_ns : int;
      (** coordinator gives up on a voting round and decides abort *)
  retransmit_ns : int;
  max_retransmits : int;
  skew_bound_ns : int;
      (** how far behind a snapshot a lagging or frozen horizon may be
          and still serve under the skew/stale lies *)
  faults : Shard_fault.t list;
  wal_faults : Minidb.Wal.fault_cfg option;
      (** durability fault model for each participant's own WAL; every
          participant derives a distinct seed from it *)
}

val config :
  ?shards:int ->
  ?hop_ns:int ->
  ?link:Leopard_net.Faulty_link.config ->
  ?partitions:partition list ->
  ?prepare_timeout_ns:int ->
  ?retransmit_ns:int ->
  ?max_retransmits:int ->
  ?skew_bound_ns:int ->
  ?faults:Shard_fault.t list ->
  ?wal_faults:Minidb.Wal.fault_cfg ->
  unit ->
  config
(** Validating constructor; defaults: 2 shards, no latency, disabled
    link, prepare timeout 2 ms, retransmit every 0.5 ms capped at 8,
    skew bound 1 ms, no faults.  Raises [Invalid_argument] on nonsense
    (fewer than 2 shards, non-positive timeouts, bad partition
    windows). *)

val shard_of_row : shards:int -> int * int -> int
(** Deterministic hash-range placement of a row key: a SplitMix64
    finalizer puts the row on a 65536-point ring split into [shards]
    contiguous ranges.  Part of the partitioning contract — stable
    across runs and processes. *)

val shard_of_cell : shards:int -> Leopard_trace.Cell.t -> int
(** Row-key granularity: all columns of a row co-locate, so the
    engine's row-level lock granule never spans shards. *)

type prep_outcome =
  | Prepared  (** every shard voted yes; proceed to commit at the engine *)
  | Abort_decided
      (** a shard vetoed, or votes never arrived within the timeout: the
          coordinator decided abort — a definite, client-visible outcome *)
  | Coord_crashed
      (** the coordinator crashed before deciding: the client can never
          learn the outcome — the coordinator-ambiguity channel *)

type t

val create :
  sim:Minidb.Sim.t ->
  initial:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list ->
  config ->
  t

val evented : t -> bool
(** Whether protocol traffic is event-driven (any link fault, hop
    latency or partition window); [false] means the synchronous
    byte-identical path. *)

val prepare_timeout_ns : t -> int
(** The configured voting-round timeout — doubling as the session
    timeout after which an engine transaction orphaned by a coordinator
    crash is reaped. *)

val owner : t -> Leopard_trace.Cell.t -> int
val participant : t -> shard:int -> Participant.t

val shard_count : t -> int
(** The configured number of shard groups. *)

val has_fault : t -> Shard_fault.t -> bool
(** Whether a lying-protocol fault is planted in this group. *)

val set_apply_hook :
  t -> (shard:int -> seq:int -> Minidb.Wal.record -> unit) option -> unit
(** Observe every decision successfully applied at a participant —
    exactly once per (shard, seq), in sequence order per shard.  This is
    how a per-shard replica set receives its shard's committed feed.
    The hook fires synchronously inside the apply and must not call
    back into the group. *)

val shards_touched : t -> cells:Leopard_trace.Cell.t list -> int list
(** Distinct owning shards, ascending. *)

val prepare :
  t ->
  txn:int ->
  start_ts:int ->
  writes:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list ->
  k:(prep_outcome -> unit) ->
  unit
(** Run the voting phase for a cross-shard write set ([writes] must
    span at least two shards).  [k] fires exactly once.  On the
    synchronous path the round is instantaneous and always prepares —
    prepared locks are never observably held. *)

val decide_abort : t -> txn:int -> unit
(** The engine aborted a transaction that had prepared (certification
    failure or reaper): fan the ABORT decision out and close the
    round.  No-op for transactions without an open round. *)

val on_commit : t -> Minidb.Wal.record -> unit
(** Engine commit hook: slice the record by owning shard, append each
    slice to that shard's durable decision log and ship.  Closes the
    transaction's 2PC round (if any) with a COMMIT disposition;
    single-shard commits count toward the fast path. *)

val coord_crash : t -> unit
(** Coordinator crash at the current instant.  Undecided rounds are
    orphaned: honestly they resolve by presumed abort and the client
    continuation fires [Coord_crashed]; under
    {!Shard_fault.Stale_prepared_read} the orphaned locks freeze the
    holding shards' serving horizons instead.  Decided rounds resume
    from the durable logs under a new incarnation (in-flight messages
    of the old one are ignored).  {!Shard_fault.Fractured_commit}
    additionally splices one undelivered cross-shard slice out of a
    lagging shard's log. *)

val restart_participant : t -> shard:int -> unit
(** Crash/restart one participant: volatile prepared state is lost and
    the store rebuilds from the participant's {e own} WAL through the
    durability fault model ([config.wal_faults]), truncated to the
    longest prefix that validates against the coordinator's decision
    log.  The shard re-acks that prefix and the coordinator re-ships
    the rest — honest damage costs catch-up lag, never a wrong serve.
    Under {!Shard_fault.Fractured_commit} the rebuilt log loses its
    newest cross-shard slice while the shard still claims the full
    prefix. *)

val rebuild_participant :
  t ->
  shard:int ->
  records:Minidb.Wal.record list ->
  claim_through:int option ->
  int
(** Rebuild one participant from an externally supplied durable feed —
    the survivor prefix its replica set kept across a failover — and
    return the re-acked cursor.  [claim_through = Some k] is the
    lying-cluster channel: the shard reports a clean rebuild through
    [k] even though the feed stops short, so the coordinator never
    re-ships the hole. *)

val route_read :
  t ->
  cells:Leopard_trace.Cell.t list ->
  snapshot:(unit -> int) ->
  Leopard_trace.Trace.item list option
(** Serve a write-free snapshot read from the owning participants, or
    [None] to fall back to the engine (some touched shard cannot serve
    honestly and no lie allows it).  Draws no randomness and schedules
    nothing, so the fallback — and the zero-fault path, where served
    values equal the engine's exactly — preserves byte-identity. *)

val rounds_log : t -> (int * int * int list * char) list
(** 2PC round dispositions in order: [(at, txn, shards, d)] with [d]
    one of ['c'] (committed), ['a'] (aborted), ['?'] (coordinator
    crashed undecided) — the source of the trace file's [P] marks. *)

type stats = {
  shards : int;
  prepares_sent : int;
  votes_delivered : int;
  vetoes : int;
  prep_timeouts : int;
  decisions_sent : int;
  acks_delivered : int;
  resends : int;
  fast_path_commits : int;
  tpc_commits : int;
  tpc_aborts : int;
  coord_crashes : int;
  coord_orphans : int;
  presumed_aborts : int;
  fractured : int;
  participant_restarts : int;
  participant_rebuilds : int;
  wal_truncated_records : int;
  wal_damaged_records : int;
  routed_reads : int;
  skew_serves : int;
  stale_serves : int;
  partition_drops : int;
  stale_drops : int;
  log_entries : int;
  min_applied : int;
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  link_reordered : int;
  link_resets : int;
}

val stats : t -> stats
