(* Pure validation of numeric command-line options.

   Every fault plane takes probabilities, schedules and timeouts from the
   CLI; a typo there ("--chaos-drop 1.5", an unsorted --crash-at list)
   must die with a one-line usage error (exit 2), never silently clamp or
   surface later as a confusing Invalid_argument from deep inside a
   config constructor.  The checks live here, separate from cmdliner, so
   they are unit-testable and run on the raw flag values BEFORE any
   is-disabled short-circuit — a nonsense probability is rejected even
   when the plane it configures would have been off. *)

type error = { flag : string; msg : string }

let error_to_string e = Printf.sprintf "invalid %s: %s" e.flag e.msg

let prob ~flag v =
  if Float.is_nan v || v < 0.0 || v > 1.0 then
    Some { flag; msg = Printf.sprintf "probability %g is not in [0, 1]" v }
  else None

let positive ~flag v =
  if v <= 0 then Some { flag; msg = Printf.sprintf "%d is not positive" v }
  else None

let non_negative ~flag v =
  if v < 0 then Some { flag; msg = Printf.sprintf "%d is negative" v }
  else None

(* A crash schedule must be strictly ascending positive instants: a
   duplicate would crash the server twice at the same simulated instant,
   and an out-of-order list almost always means the operator dropped a
   digit.  Rejecting beats silently sorting. *)
let crash_schedule ~flag instants =
  let rec check prev = function
    | [] -> None
    | at :: _ when at <= 0 ->
      Some { flag; msg = Printf.sprintf "instant %d is not positive" at }
    | at :: _ when at = prev ->
      Some { flag; msg = Printf.sprintf "duplicate instant %d" at }
    | at :: _ when at < prev ->
      Some
        {
          flag;
          msg =
            Printf.sprintf "instants must be ascending (%d after %d)" at prev;
        }
    | at :: rest -> check at rest
  in
  check 0 instants

(* A partition window is a half-open interval of simulated time: a
   negative start or an empty/backwards window is a typo, not a no-op. *)
let window ~flag (from_ns, until_ns) =
  if from_ns < 0 then
    Some { flag; msg = Printf.sprintf "window start %d is negative" from_ns }
  else if until_ns <= from_ns then
    Some
      {
        flag;
        msg = Printf.sprintf "window [%d, %d) is empty or backwards" from_ns
            until_ns;
      }
  else None

(* A shard count is either 0 (plane off) or at least 2: a "group" of one
   shard would silently skip every cross-shard code path the flag exists
   to exercise. *)
let shard_count ~flag v =
  if v = 0 || v >= 2 then None
  else
    Some
      {
        flag;
        msg = Printf.sprintf "%d is not 0 (off) or a shard count >= 2" v;
      }

let first_error checks = List.find_map Fun.id checks
