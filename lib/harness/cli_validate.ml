(* Pure validation of numeric command-line options.

   Every fault plane takes probabilities, schedules and timeouts from the
   CLI; a typo there ("--chaos-drop 1.5", an unsorted --crash-at list)
   must die with a one-line usage error (exit 2), never silently clamp or
   surface later as a confusing Invalid_argument from deep inside a
   config constructor.  The checks live here, separate from cmdliner, so
   they are unit-testable and run on the raw flag values BEFORE any
   is-disabled short-circuit — a nonsense probability is rejected even
   when the plane it configures would have been off. *)

type error = { flag : string; msg : string }

let error_to_string e = Printf.sprintf "invalid %s: %s" e.flag e.msg

let prob ~flag v =
  if Float.is_nan v || v < 0.0 || v > 1.0 then
    Some { flag; msg = Printf.sprintf "probability %g is not in [0, 1]" v }
  else None

let positive ~flag v =
  if v <= 0 then Some { flag; msg = Printf.sprintf "%d is not positive" v }
  else None

let non_negative ~flag v =
  if v < 0 then Some { flag; msg = Printf.sprintf "%d is negative" v }
  else None

(* A crash schedule must be strictly ascending positive instants: a
   duplicate would crash the server twice at the same simulated instant,
   and an out-of-order list almost always means the operator dropped a
   digit.  Rejecting beats silently sorting. *)
let crash_schedule ~flag instants =
  let rec check prev = function
    | [] -> None
    | at :: _ when at <= 0 ->
      Some { flag; msg = Printf.sprintf "instant %d is not positive" at }
    | at :: _ when at = prev ->
      Some { flag; msg = Printf.sprintf "duplicate instant %d" at }
    | at :: _ when at < prev ->
      Some
        {
          flag;
          msg =
            Printf.sprintf "instants must be ascending (%d after %d)" at prev;
        }
    | at :: rest -> check at rest
  in
  check 0 instants

(* A partition window is a half-open interval of simulated time: a
   negative start or an empty/backwards window is a typo, not a no-op. *)
let window ~flag (from_ns, until_ns) =
  if from_ns < 0 then
    Some { flag; msg = Printf.sprintf "window start %d is negative" from_ns }
  else if until_ns <= from_ns then
    Some
      {
        flag;
        msg = Printf.sprintf "window [%d, %d) is empty or backwards" from_ns
            until_ns;
      }
  else None

(* A shard count is either 0 (plane off) or at least 2: a "group" of one
   shard would silently skip every cross-shard code path the flag exists
   to exercise. *)
let shard_count ~flag v =
  if v = 0 || v >= 2 then None
  else
    Some
      {
        flag;
        msg = Printf.sprintf "%d is not 0 (off) or a shard count >= 2" v;
      }

(* {2 Plane composition}

   Which fault planes may run together moved from three ad-hoc
   "mutually exclusive" checks in the CLI driver into one table here,
   where it is unit-testable.  The client wire ([--net]) still owns the
   request/response seam exclusively; the engine-level replication
   plane ([--repl]) and the shard plane ([--shards]) still exclude each
   other — but sharding now composes with durability ([--wal],
   participant WALs) and with replication *per shard*
   ([--repl-per-shard]), and seeded shard failovers require those
   replica sets to exist. *)

type planes = {
  net : bool;
  repl : bool;
  shards : bool;
  repl_per_shard : int;
  shard_failovers : bool;
  shard_repl_drop : bool;
}

let composition p =
  if p.net && p.repl then
    Some
      {
        flag = "--net/--repl";
        msg = "one wire plane per run: the client wire and the replication \
               wire cannot both claim the transport seam";
      }
  else if p.net && p.shards then
    Some
      {
        flag = "--net/--shards";
        msg = "the 2PC protocol already rides the shard wire; run the \
               client wire separately";
      }
  else if p.repl && p.shards then
    Some
      {
        flag = "--repl/--shards";
        msg = "one engine-level topology per run; replicate each shard \
               with --repl-per-shard instead";
      }
  else if p.repl_per_shard < 0 then
    Some
      {
        flag = "--repl-per-shard";
        msg =
          Printf.sprintf "%d is negative (0 disables per-shard replicas)"
            p.repl_per_shard;
      }
  else if p.repl_per_shard > 0 && not p.shards then
    Some
      {
        flag = "--repl-per-shard";
        msg = "per-shard replica sets need a shard group (--shards N)";
      }
  else if p.shard_failovers && p.repl_per_shard = 0 then
    Some
      {
        flag = "--shard-failover-at";
        msg = "shard failovers need per-shard replicas (--repl-per-shard M)";
      }
  else if p.shard_repl_drop && p.repl_per_shard = 0 then
    Some
      {
        flag = "--shard-repl-drop";
        msg =
          "the per-shard replication link needs replica sets to carry \
           (--repl-per-shard M)";
      }
  else None

(* {2 Campaign grid grammar}

   The campaign subcommand expands NAME x SEED x WORKLOAD axes into
   cells; every axis value is validated here, on the raw strings, before
   any grid is built — an unknown cell-class name must be a one-line
   usage error naming the known classes, not a silent empty grid. *)

let choice ~flag ~known v =
  if List.exists (String.equal v) known then None
  else
    Some
      {
        flag;
        msg =
          Printf.sprintf "unknown name %S (known: %s)" v
            (String.concat ", " known);
      }

(* {2 Checker checkpointing grammar}

   The bounded-memory / resume flags form a little dependency chain:
   checkpoints only make sense on a truncating checker (a frame is
   written per truncation), resume only makes sense with a checkpoint
   file to read, and the kill-after drill only makes sense when the
   progress it destroys was being checkpointed.  Encoding the chain here
   keeps "flag given but silently inert" impossible. *)

type checkpointing = {
  gc_watermark : int;
  check_checkpoint : bool;
  resume_check : bool;
  kill_after : int;
  check_mode : bool;
}

let checkpointing c =
  if c.gc_watermark < 0 then
    Some
      {
        flag = "--gc-watermark";
        msg =
          Printf.sprintf "%d is negative (0 disables truncation)"
            c.gc_watermark;
      }
  else if c.check_checkpoint && c.gc_watermark = 0 then
    Some
      {
        flag = "--check-checkpoint";
        msg =
          "checkpoint frames are written per truncation; enable truncation \
           with --gc-watermark N";
      }
  else if c.resume_check && not c.check_checkpoint then
    Some
      {
        flag = "--resume-check";
        msg = "nothing to resume from; name the file with --check-checkpoint";
      }
  else if c.resume_check && not c.check_mode then
    Some
      {
        flag = "--resume-check";
        msg =
          "resume re-reads a recorded trace file from the checkpointed \
           cursor; it needs --check FILE";
      }
  else if c.kill_after < 0 then
    Some
      {
        flag = "--check-kill-after";
        msg = Printf.sprintf "%d is negative (0 disables the drill)" c.kill_after;
      }
  else if c.kill_after > 0 && not c.check_checkpoint then
    Some
      {
        flag = "--check-kill-after";
        msg =
          "the kill drill destroys progress on purpose; checkpoint it first \
           (--check-checkpoint FILE)";
      }
  else if c.kill_after > 0 && not c.check_mode then
    Some
      {
        flag = "--check-kill-after";
        msg = "the kill drill is part of the --check resume path";
      }
  else None

let jobs ~flag v =
  (* 0 means "let the orchestrator pick the recommended domain count";
     anything negative is a typo. *)
  if v < 0 then
    Some { flag; msg = Printf.sprintf "%d is negative (0 = auto)" v }
  else None

let first_error checks = List.find_map Fun.id checks
