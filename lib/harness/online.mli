(** Live (online) verification — Leopard attached while the workload runs.

    The paper's deployment mode: the Tracer continuously collects traces
    from running clients and batches them into the two-level pipeline
    (§VI-C batches every 0.5 s); the Verifier consumes whatever the
    watermark proves dispatchable and keeps pace with the DBMS.

    [run] wires a {!Leopard.Checker} to a workload execution through the
    streaming pipeline: every trace enters a per-client queue the moment
    the client logs it, and on every simulated batch window the pipeline
    dispatches what is safe into the checker.  Because clients are still
    running, a queue can be momentarily empty; the pipeline's watermark
    then relies on each client's last-seen timestamp, so dispatch order
    (Theorem 1) still holds — the same verification verdicts as an
    offline pass over the full sorted history, which the tests assert. *)

type result = {
  outcome : Run.outcome;
  report : Leopard.Checker.report;
  verify_wall_s : float;  (** wall time spent inside verification calls *)
  rounds : int;  (** batch windows processed *)
  max_lag : int;  (** peak produced-but-not-yet-verified traces *)
  final_lag : int;
      (** traces produced but never verified, measured {e after} the
          final drain: exactly [late_dropped + stranded].  0 means the
          verifier saw every produced trace; non-zero is degradation the
          report already accounts for, never silent loss.  (Earlier
          versions sampled this before the final drain, so a healthy run
          showed a spurious backlog and a crashed source's stranded
          traces were invisible.) *)
  stranded : int;
      (** traces still queued behind a source the pipeline closed as
          crashed — produced, never dispatched, counted into the
          checker as lost ([Checker.note_lost_traces]). *)
}

val run :
  ?batch_window_ns:int ->
  ?gc_every:int ->
  ?max_stall_ns:int ->
  ?gc_watermark:int ->
  ?checkpoint:string ->
  il:Leopard.Il_profile.t ->
  Run.config ->
  result
(** [batch_window_ns] defaults to 500_000 ns of simulated time (the
    paper's 0.5 s scaled to simulator latencies).  The config's
    [observer] and [tick] hooks are taken over by the monitor.

    When the config carries a {!Chaos.t}, the monitor degrades
    gracefully instead of wedging: a crashed client's source reports
    {!Leopard.Pipeline.Closed_crashed} (its stream has definitively
    ended), its in-flight transaction is marked
    {!Leopard.Checker.mark_indeterminate} before the next dispatch, and
    collection losses are recorded on the checker so the report's
    verdict comes out [Inconclusive] rather than a false [Verified] or
    a spurious violation.  [max_stall_ns] (simulated time, measured in
    whole batch windows) additionally bounds how long an empty-but-live
    source may pin the watermark — the liveness backstop when no crash
    signal is available.

    {b Bounded memory.}  [gc_watermark] (default: off) turns the
    monitor into a truncating one: every time that many traces have
    been dispatched since the last cut, the checker is truncated at the
    pipeline watermark ({!Leopard.Checker.truncate}), so
    [report.peak_live] stays O(window) instead of O(history) no matter
    how long the workload runs.  Verdicts are unchanged — truncation
    only forgets state the watermark proves settled.

    [checkpoint] (requires [gc_watermark], else [Invalid_argument])
    names a file that receives a full checker snapshot frame
    ({!Leopard.Checker.encode} via {!Leopard_trace.Ckpt}) after each
    truncation and once more after finalize.  The file makes the
    monitor's progress durable for post-mortem inspection and
    crash-tolerance drills; live in-process resume is not supported —
    the restartable path is the CLI's offline [--resume-check], which
    re-reads the trace file from a checkpointed cursor. *)
