(** Live (online) verification — Leopard attached while the workload runs.

    The paper's deployment mode: the Tracer continuously collects traces
    from running clients and batches them into the two-level pipeline
    (§VI-C batches every 0.5 s); the Verifier consumes whatever the
    watermark proves dispatchable and keeps pace with the DBMS.

    [run] wires a {!Leopard.Checker} to a workload execution through the
    streaming pipeline: every trace enters a per-client queue the moment
    the client logs it, and on every simulated batch window the pipeline
    dispatches what is safe into the checker.  Because clients are still
    running, a queue can be momentarily empty; the pipeline's watermark
    then relies on each client's last-seen timestamp, so dispatch order
    (Theorem 1) still holds — the same verification verdicts as an
    offline pass over the full sorted history, which the tests assert. *)

type result = {
  outcome : Run.outcome;
  report : Leopard.Checker.report;
  verify_wall_s : float;  (** wall time spent inside verification calls *)
  rounds : int;  (** batch windows processed *)
  max_lag : int;  (** peak produced-but-not-yet-verified traces *)
  final_lag : int;  (** traces left unverified when the workload stopped
                        (drained before finalize; 0 after a full run) *)
}

val run :
  ?batch_window_ns:int ->
  ?gc_every:int ->
  ?max_stall_ns:int ->
  il:Leopard.Il_profile.t ->
  Run.config ->
  result
(** [batch_window_ns] defaults to 500_000 ns of simulated time (the
    paper's 0.5 s scaled to simulator latencies).  The config's
    [observer] and [tick] hooks are taken over by the monitor.

    When the config carries a {!Chaos.t}, the monitor degrades
    gracefully instead of wedging: a crashed client's source reports
    {!Leopard.Pipeline.Closed_crashed} (its stream has definitively
    ended), its in-flight transaction is marked
    {!Leopard.Checker.mark_indeterminate} before the next dispatch, and
    collection losses are recorded on the checker so the report's
    verdict comes out [Inconclusive] rather than a false [Verified] or
    a spurious violation.  [max_stall_ns] (simulated time, measured in
    whole batch windows) additionally bounds how long an empty-but-live
    source may pin the watermark — the liveness backstop when no crash
    signal is available. *)
