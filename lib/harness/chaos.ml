module Trace = Leopard_trace.Trace
module Rng = Leopard_util.Rng

type config = {
  seed : int;
  crash_prob : float;
  drop_prob : float;
  dup_prob : float;
  delay_prob : float;
  max_delay_ns : int;
  clock_skew_ns : int;
  session_timeout_ns : int;
}

let disabled =
  {
    seed = 1;
    crash_prob = 0.0;
    drop_prob = 0.0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    max_delay_ns = 500_000;
    clock_skew_ns = 0;
    session_timeout_ns = 1_000_000;
  }

let config ?(seed = 1) ?(crash_prob = 0.0) ?(drop_prob = 0.0) ?(dup_prob = 0.0)
    ?(delay_prob = 0.0) ?(max_delay_ns = 500_000) ?(clock_skew_ns = 0)
    ?(session_timeout_ns = 1_000_000) () =
  {
    seed;
    crash_prob;
    drop_prob;
    dup_prob;
    delay_prob;
    max_delay_ns;
    clock_skew_ns;
    session_timeout_ns;
  }

let is_disabled c =
  c.crash_prob <= 0.0 && c.drop_prob <= 0.0 && c.dup_prob <= 0.0
  && c.delay_prob <= 0.0 && c.clock_skew_ns <= 0

type client_state = {
  rng : Rng.t;  (* this client's private decision stream *)
  cskew : int;
  mutable crashed : bool;
}

type t = {
  cfg : config;
  per_client : client_state array;
  mutable crash_records : (int * int) list;  (* (client, in-flight txn) *)
  mutable n_dropped : int;
  mutable n_duplicated : int;
  mutable n_delayed : int;
}

let create ~clients cfg =
  let root = Rng.create cfg.seed in
  {
    cfg;
    per_client =
      Array.init clients (fun _ ->
          let rng = Rng.split root in
          let cskew =
            if cfg.clock_skew_ns > 0 then
              Rng.int_in rng (-cfg.clock_skew_ns) cfg.clock_skew_ns
            else 0
          in
          { rng; cskew; crashed = false });
    crash_records = [];
    n_dropped = 0;
    n_duplicated = 0;
    n_delayed = 0;
  }

let cfg t = t.cfg

let roll_crash t ~client =
  let c = t.per_client.(client) in
  (not c.crashed) && Rng.chance c.rng t.cfg.crash_prob

let note_crash t ~client ~txn =
  let c = t.per_client.(client) in
  if not c.crashed then begin
    c.crashed <- true;
    t.crash_records <- (client, txn) :: t.crash_records
  end

let is_crashed t ~client = t.per_client.(client).crashed
let skew t ~client = t.per_client.(client).cskew

let deliver t ~client trace =
  let c = t.per_client.(client) in
  if Rng.chance c.rng t.cfg.drop_prob then begin
    t.n_dropped <- t.n_dropped + 1;
    []
  end
  else begin
    let one () =
      if Rng.chance c.rng t.cfg.delay_prob then begin
        t.n_delayed <- t.n_delayed + 1;
        (1 + Rng.int c.rng (max 1 t.cfg.max_delay_ns), trace)
      end
      else (0, trace)
    in
    let first = one () in
    if Rng.chance c.rng t.cfg.dup_prob then begin
      t.n_duplicated <- t.n_duplicated + 1;
      [ first; one () ]
    end
    else [ first ]
  end

let crashed_clients t =
  List.sort_uniq Int.compare (List.map fst t.crash_records)

let indeterminate_txns t =
  List.sort_uniq Int.compare (List.map snd t.crash_records)

let dropped t = t.n_dropped
let duplicated t = t.n_duplicated
let delayed t = t.n_delayed
