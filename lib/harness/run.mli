(** Closed-loop workload execution — the client side of the paper's setup.

    [execute] simulates [clients] concurrent clients (the paper's "thread
    scale") running transaction programs from a {!Leopard_workload.Spec.t}
    against a {!Minidb.Engine.t}.  Each operation is issued with a network
    hop, executed at the server (possibly after lock waits), and answered
    with another hop; the client logs the interval trace
    [(ts_bef, ts_aft, payload)] exactly as the paper's Tracer does.

    When the engine aborts a transaction (deadlock, FUW, certifier), the
    client logs an abort trace whose interval spans the failed call, and
    moves on to the next transaction.

    The result carries both the black-box view (per-client trace streams,
    monotone in [ts_bef] as Algorithm 1 requires) and the white-box view
    (ground-truth dependencies, commit/abort counts, simulated duration)
    used to score the verification. *)

module Trace = Leopard_trace.Trace

type latency = {
  net_mean_ns : float;  (** mean one-way network hop (exponential) *)
  think_mean_ns : float;  (** mean gap between transactions *)
  op_gap_ns : float;  (** mean client-side gap between operations *)
  commit_extra_ns : float;  (** extra server latency on commit (fsync) *)
}

val default_latency : latency

type stop = Txn_count of int | Sim_time_ns of int
(** Stop after N {e committed-or-aborted} transactions in total, or at a
    simulated instant. *)

type net_config = {
  net_fault : Leopard_net.Faulty_link.config;
      (** seeded per-message fault model of the wire *)
  net_client : Leopard_net.Client.config;
      (** request timeouts and bounded retries *)
  queue_capacity : int;
      (** per-session server queue bound; requests beyond it are
          load-shed with a definite [Rejected] *)
  session_timeout_ns : int;
      (** how long the server keeps an orphaned transaction (client gave
          up) before reaping it with an abort *)
}

val net_config :
  ?fault:Leopard_net.Faulty_link.config ->
  ?client:Leopard_net.Client.config ->
  ?queue_capacity:int ->
  ?session_timeout_ns:int ->
  unit ->
  net_config
(** Defaults: disabled link, default client config, capacity 64, session
    timeout 1_000_000 ns.  Raises [Invalid_argument] on a non-positive
    capacity or timeout. *)

type net_rt
(** Per-run wire state (link, per-client retry streams, ambiguous-commit
    log), created by {!config} like the chaos plane's. *)

val net_ambiguous : net_rt -> (int * int * int) list
(** [(client, txn, gave_up_at)] of every commit whose outcome the client
    never learned, oldest first — pollable mid-run by an online monitor
    (feed the txn ids to [Checker.mark_ambiguous_commit]). *)

type repl_config = {
  cluster : Leopard_replication.Cluster.config;
      (** follower count, ack mode, replication link faults, partition
          windows, planted replication faults *)
  failover_at : int list;
      (** explicit promotion instants (simulated ns, positive) *)
  promote_on_partition : bool;
      (** additionally derive one promotion per primary-isolating
          partition window ([follower = -1]), fired
          [election_timeout_ns] after the window opens *)
  election_timeout_ns : int;
  split_brain_ns : int;
      (** with {!Leopard_replication.Repl_fault.Split_brain} planted,
          how long the deposed primary keeps serving unfenced *)
}

val repl_config :
  ?failover_at:int list ->
  ?promote_on_partition:bool ->
  ?election_timeout_ns:int ->
  ?split_brain_ns:int ->
  Leopard_replication.Cluster.config ->
  repl_config
(** Defaults: no explicit failovers, no partition-derived promotions,
    election timeout 300_000 ns, split-brain window 300_000 ns.  Raises
    [Invalid_argument] on non-positive instants or windows. *)

type shard_config = {
  group : Leopard_shard.Group.config;
      (** shard count, protocol link faults, partitions, timeouts,
          planted shard faults *)
  coord_crash_at : int list;
      (** simulated instants of coordinator crashes (positive);
          undecided 2PC rounds at each instant are orphaned into the
          coordinator-ambiguity channel *)
  part_crash_at : (int * int) list;
      (** [(instant, shard)] participant crash/restarts: the shard's
          volatile prepared state dies and its store rebuilds from its
          own WAL through the durability fault model, truncated to the
          prefix that validates against the coordinator's decision
          log *)
  stack : Leopard_compose.Stack.config option;
      (** run every shard as a primary/follower replica set — the
          stacked fault planes *)
  shard_failover_at : (int * int) list;
      (** [(instant, shard)] failovers inside the per-shard replica
          sets; requires [stack] *)
}

val shard_config :
  ?coord_crash_at:int list ->
  ?part_crash_at:(int * int) list ->
  ?stack:Leopard_compose.Stack.config ->
  ?shard_failover_at:(int * int) list ->
  Leopard_shard.Group.config ->
  shard_config
(** Defaults: no coordinator or participant crashes, no replica sets,
    no shard failovers.  Raises [Invalid_argument] on non-positive
    instants, a shard index outside [0 .. shards-1], or shard failovers
    without a [stack]. *)

type config = {
  spec : Leopard_workload.Spec.t;
  profile : Minidb.Profile.t;
  level : Minidb.Isolation.level;
  faults : Minidb.Fault.Set.t;
  clients : int;
  stop : stop;
  seed : int;
  latency : latency;
  latency_of : (int -> latency) option;
      (** per-client latency override (heterogeneous clients /
          stragglers); defaults to [latency] for every client *)
  observer : (Trace.t -> unit) option;
      (** called synchronously for every trace as the client logs it —
          the hook live (online) verification attaches to *)
  tick : (int * (unit -> unit)) option;
      (** [(interval_ns, f)]: run [f] every [interval_ns] of simulated
          time while clients are active (the paper batches traces into
          the pipeline every 0.5 s) *)
  chaos : Chaos.t option;
      (** collection-path fault injection (client crashes, lossy
          delivery, clock skew); [None] leaves the run byte-identical to
          the chaos-free harness *)
  net : net_rt option;
      (** wire mode: requests travel as serialized messages through a
          seeded faulty link to per-session server queues, with
          timeouts, bounded retries and idempotent commit tokens.  With
          a disabled (zero-rate) link the traces are byte-identical to
          the in-process path for the same workload seed; [None] skips
          the wire entirely *)
  max_retries : int;
      (** how many times a client re-runs a transaction program the
          engine aborted (deadlock victim, FUW, certifier); 0 preserves
          the abort-and-move-on behaviour *)
  retry_backoff_ns : float;
      (** mean of the first retry delay; doubles per attempt (bounded
          exponential backoff, capped at 32x) *)
  wal : bool;
      (** log every commit's installed write set to a {!Minidb.Wal};
          forced on whenever [crash_at] or [wal_faults] is set *)
  crash_at : int list;
      (** simulated instants at which the server crashes and recovers
          from the WAL; in-flight transactions die with a definite
          [Server_crash] abort and clients retry under [max_retries] *)
  wal_faults : Minidb.Wal.fault_cfg option;
      (** durability fault model applied at crash/replay time, drawn
          from its own seeded stream (never the workload's) *)
  repl : repl_config option;
      (** replication mode: the engine is the primary of a follower
          cluster; commits ship over the replication wire and a seeded
          orchestrator can promote a follower mid-run.  Mutually
          exclusive with [net].  With a disabled replication environment
          (no link faults, hops, partitions, or follower reads) the run
          is byte-identical to the single-node path on the same seed *)
  shard : shard_config option;
      (** shard mode: the key space is hash-range partitioned across a
          {!Leopard_shard.Group} and cross-shard commits run two-phase
          commit over the group's seeded faulty links; single-shard
          transactions take a fast path that never touches the
          protocol.  Mutually exclusive with [net] and [repl].  With a
          disabled protocol environment (no link faults, hops, or
          partitions) the run is byte-identical to the unsharded path
          on the same seed *)
}

val config :
  ?faults:Minidb.Fault.Set.t ->
  ?clients:int ->
  ?seed:int ->
  ?latency:latency ->
  ?latency_of:(int -> latency) ->
  ?observer:(Trace.t -> unit) ->
  ?tick:int * (unit -> unit) ->
  ?chaos:Chaos.config ->
  ?net:net_config ->
  ?max_retries:int ->
  ?retry_backoff_ns:float ->
  ?wal:bool ->
  ?crash_at:int list ->
  ?wal_faults:Minidb.Wal.fault_cfg ->
  ?repl:repl_config ->
  ?shard:shard_config ->
  spec:Leopard_workload.Spec.t ->
  profile:Minidb.Profile.t ->
  level:Minidb.Isolation.level ->
  stop:stop ->
  unit ->
  config

type epoch_mark = {
  at : int;  (** simulated instant of the crash *)
  replayed : int;  (** WAL records applied during recovery *)
  damaged : int;  (** records torn/lost/reordered/duplicated *)
}

type outcome = {
  client_traces : Trace.t list array;
      (** per client, in issue order (monotone ts_bef) *)
  op_trace : (int, Trace.t) Hashtbl.t;  (** op id -> its trace *)
  truth_deps : Minidb.Ground_truth.dep list;
      (** exact dependencies between committed transactions *)
  committed : int -> bool;
  peek : Leopard_trace.Cell.t -> Trace.value option;
      (** final committed value of a cell (white-box test oracle) *)
  snapshot :
    unit -> (Leopard_trace.Cell.t * Minidb.Version_store.version list) list;
      (** committed-state image of the live store — equality across a
          fault-free crash proves byte-identical recovery *)
  commits : int;
  aborts : int;
  aborts_fuw : int;
  aborts_certifier : int;
  aborts_deadlock : int;
  aborts_crash : int;  (** transactions killed by server crashes *)
  deadlocks : int;
  restarts : int;  (** crash–recovery epochs the run spanned *)
  epochs : epoch_mark list;  (** crash boundaries, oldest first *)
  wal_appended : int;  (** commit records logged *)
  wal_damaged : int;  (** records damaged across all recoveries *)
  sim_duration_ns : int;
  ops : int;
  retries : int;  (** engine-aborted attempts re-run under [max_retries] *)
  crashed_clients : int list;  (** chaos-killed clients, ascending *)
  indeterminate_txns : int list;
      (** transactions in flight at a client crash — their outcome is
          unknowable from the traces (ascending ids) *)
  chaos_dropped : int;  (** traces lost on the collection path *)
  chaos_duplicated : int;  (** traces delivered twice *)
  chaos_delayed : int;  (** traces delivered late *)
  net : net_stats option;  (** wire-mode statistics; [None] off the wire *)
  leaders : Leopard_trace.Codec.leader_mark list;
      (** failover boundaries, oldest first.  [lost] is what the cluster
          {e reported} lost — empty under the claim-clean replication
          faults, whose whole point is hiding the truncated suffix.
          Feed to [Checker.note_failover] before the traces *)
  repl : Leopard_replication.Cluster.stats option;
      (** replication statistics; [None] when not replicated *)
  repl_ambiguous : (int * int * int) list;
      (** [(client, txn, gave_up_at)] of commits whose replication gate
          timed out (applied at the primary, durability across failover
          unknown), oldest first — feed to
          [Checker.mark_ambiguous_commit] *)
  shard : Leopard_shard.Group.stats option;
      (** shard-group statistics; [None] off the shard plane *)
  shard_repl : Leopard_compose.Stack.stats option;
      (** per-shard replica-set statistics when the planes are stacked;
          honest shard failovers surface here (and as lossless leader
          marks), never as a degradation channel *)
  coord_ambiguous : (int * int * int) list;
      (** [(client, txn, orphaned_at)] of commits whose 2PC coordinator
          crashed before deciding, oldest first — feed to
          [Checker.mark_coord_ambiguous] *)
  shard_marks : Leopard_trace.Codec.shard_mark list;
      (** the group-topology declaration ([S] line) when sharded *)
  prepare_marks : Leopard_trace.Codec.prepare_mark list;
      (** 2PC round dispositions ([P] lines), oldest first; feed the
          [Unknown] ones to [Checker.mark_coord_ambiguous] before the
          traces *)
}

and net_stats = {
  resets : int;  (** connection resets injected *)
  msg_dropped : int;  (** messages silently lost *)
  msg_duplicated : int;  (** messages delivered twice *)
  msg_delayed : int;  (** messages given extra latency *)
  msg_reordered : int;  (** messages routed through the reorder window *)
  rejected : int;  (** requests load-shed by a full session queue *)
  resends : int;  (** client retransmissions (attempts beyond the first) *)
  give_ups : int;  (** calls settled without any reply *)
  ambiguous : (int * int * int) list;
      (** [(client, txn, gave_up_at)] of commits with unknown outcome,
          oldest first — feed to [Checker.mark_ambiguous_commit] *)
  dup_commit_acks : int;
      (** COMMITs the engine acknowledged idempotently (retried or
          link-duplicated commit tokens that had already been applied) *)
}

val execute : config -> outcome

val backoff_mean_ns : retry_backoff_ns:float -> tries:int -> float
(** Mean of the retry delay before attempt [tries + 1]:
    [retry_backoff_ns * 2^min(tries, 5)] — exposed pure so tests can
    assert the backoff is bounded. *)

val all_traces_sorted : outcome -> Trace.t list
(** Every trace of the run, globally sorted by [ts_bef] (convenience for
    feeding verifiers without a pipeline). *)
