(** Collection-path chaos — adversarial conditions on the {e Tracer} side.

    {!Minidb.Fault} plants bugs inside the engine so Leopard has
    violations to find; this module instead degrades the path between a
    correct client and the verifier, the failure modes a production
    tracer actually sees (paper §IV deployments):

    - {b client crash}: at a random operation the client process dies.
      The request already left for the server, but no trace is logged and
      the stream stops; the in-flight transaction's outcome becomes
      {e indeterminate} (a crashed commit may or may not have taken
      effect server-side);
    - {b clock skew}: a constant per-client offset on every logged
      timestamp;
    - {b trace drop}: a logged trace is lost before reaching the
      collector;
    - {b trace duplication}: a trace is delivered twice (e.g. a retrying
      shipper);
    - {b delayed delivery}: a trace reaches the collector late, possibly
      behind its successors.

    Every decision is drawn from per-client streams split off one seed,
    so a chaotic run is exactly reproducible, and an all-zero
    configuration draws nothing at all — it is byte-identical to running
    without chaos.

    The verification side is expected to answer with graceful
    degradation, not false alarms: {!Leopard.Pipeline} drops late
    traces against its dispatch frontier, {!Leopard.Checker} dedupes
    deliveries and excludes indeterminate transactions from ME/FUW/SC
    obligations, and the final verdict becomes
    [Inconclusive] rather than a spurious [Violation]. *)

module Trace = Leopard_trace.Trace

type config = {
  seed : int;
  crash_prob : float;  (** per-operation probability the client dies *)
  drop_prob : float;  (** per-trace probability of delivery loss *)
  dup_prob : float;  (** per-trace probability of double delivery *)
  delay_prob : float;  (** per-trace probability of delayed delivery *)
  max_delay_ns : int;  (** delay bound for delayed deliveries *)
  clock_skew_ns : int;  (** per-client skew magnitude bound *)
  session_timeout_ns : int;
      (** how long the server waits before reaping a crashed client's
          orphaned transaction (releases its locks) *)
}

val disabled : config
(** All probabilities zero, no skew: injecting this config changes
    nothing (the no-op identity the tests assert). *)

val config :
  ?seed:int ->
  ?crash_prob:float ->
  ?drop_prob:float ->
  ?dup_prob:float ->
  ?delay_prob:float ->
  ?max_delay_ns:int ->
  ?clock_skew_ns:int ->
  ?session_timeout_ns:int ->
  unit ->
  config
(** Defaults: seed 1, everything else as {!disabled}, [max_delay_ns]
    500_000, [session_timeout_ns] 1_000_000. *)

val is_disabled : config -> bool

type t
(** Mutable per-run chaos state: one decision stream per client, plus
    the record of what was injected. *)

val create : clients:int -> config -> t
val cfg : t -> config

(** {2 Client-side hooks (used by {!Run})} *)

val roll_crash : t -> client:int -> bool
(** Draw the crash decision for the next operation; always [false] for
    an already-crashed client or when [crash_prob] is zero. *)

val note_crash : t -> client:int -> txn:int -> unit
(** Record that [client] died with [txn] in flight; [txn]'s outcome is
    indeterminate from the collector's point of view. *)

val is_crashed : t -> client:int -> bool

val skew : t -> client:int -> int
(** The client's constant clock offset (zero unless [clock_skew_ns] is
    positive; sampled once per client in [[-bound, +bound]]). *)

val deliver : t -> client:int -> Trace.t -> (int * Trace.t) list
(** Push one logged trace through the lossy delivery path: a list of
    [(delay_ns, trace)] deliveries — empty when dropped, two entries
    when duplicated, positive delays for late arrivals. *)

(** {2 Results (read after the run)} *)

val crashed_clients : t -> int list
(** Ascending client ids. *)

val indeterminate_txns : t -> int list
(** Transactions whose outcome the collector cannot know (in flight at a
    client crash), ascending. *)

val dropped : t -> int
val duplicated : t -> int
val delayed : t -> int
