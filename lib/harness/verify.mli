(** Offline verification of a completed run — the canonical mark-feeding
    order in one reusable entry point.

    Every consumer of {!Run.execute} that verifies afterwards (the CLI's
    offline path, the bench harness, campaign cells on worker domains)
    must feed the checker the same things in the same order: restart
    epochs, wire- and replication-ambiguous commits, coordinator-orphaned
    rounds, failover marks (lost beats ambiguous — failovers must see
    the ambiguous set), and only then the traces through the two-level
    pipeline.  Centralizing the order here keeps a future channel from
    being wired into one caller and silently skipped in another.

    The function is self-contained per call — it allocates its own
    checker and pipeline and touches no global state — so it is safe to
    call concurrently from multiple domains, which is what the campaign
    orchestrator does. *)

type result = {
  report : Leopard.Checker.report;
  pipeline_peak : int;  (** {!Leopard.Pipeline.peak_memory} of the drain *)
}

val offline : ?gc_every:int -> il:Leopard.Il_profile.t -> Run.outcome -> result
