module Trace = Leopard_trace.Trace

type result = {
  outcome : Run.outcome;
  report : Leopard.Checker.report;
  verify_wall_s : float;
  rounds : int;
  max_lag : int;
  final_lag : int;
  stranded : int;
}

let run ?(batch_window_ns = 500_000) ?(gc_every = 512) ?max_stall_ns
    ?gc_watermark ?checkpoint ~il (cfg : Run.config) =
  (match (checkpoint, gc_watermark) with
  | Some _, None ->
    (* A checkpoint frame is written after each truncation; without a
       truncation cadence the file would stay empty forever. *)
    invalid_arg "Online.run: checkpoint requires gc_watermark"
  | _ -> ());
  let queues = Array.init cfg.Run.clients (fun _ -> Queue.create ()) in
  let workload_done = ref false in
  let produced = ref 0 in
  let rounds = ref 0 in
  let chaos = cfg.Run.chaos in
  let sources =
    Array.mapi
      (fun client queue () ->
        match Queue.take_opt queue with
        | Some trace -> Leopard.Pipeline.Item trace
        | None ->
          if !workload_done then Leopard.Pipeline.Closed
          else begin
            match chaos with
            | Some ch when Chaos.is_crashed ch ~client ->
              (* the client is dead: its stream has definitively ended,
                 so release the watermark instead of pinning it *)
              Leopard.Pipeline.Closed_crashed
            | Some _ | None -> Leopard.Pipeline.Pending
          end)
      queues
  in
  (* Deterministic monitor clock for the stall bound: batch window k of
     the tick runs at simulated instant k * batch_window_ns. *)
  let now () = !rounds * batch_window_ns in
  let pipeline = Leopard.Pipeline.create ?max_stall_ns ~now ~sources () in
  let checker = Leopard.Checker.create ~gc_every il in
  let verify_wall = ref 0.0 in
  let max_lag = ref 0 in
  let final_lag = ref 0 in
  (* Indeterminate marks must land before the traces they govern are fed:
     a crash at tick k is marked at tick k+1, ahead of any dispatch of
     post-crash timestamps.  Ambiguous commits from the wire (client gave
     up on a COMMIT without learning the outcome) are polled the same
     way — both calls are idempotent, so re-marking every round is
     harmless. *)
  let mark_indeterminates () =
    (match chaos with
    | Some ch ->
      List.iter
        (fun txn -> Leopard.Checker.mark_indeterminate checker ~txn)
        (Chaos.indeterminate_txns ch)
    | None -> ());
    match cfg.Run.net with
    | Some rt ->
      List.iter
        (fun (_client, txn, _at) ->
          Leopard.Checker.mark_ambiguous_commit checker ~txn)
        (Run.net_ambiguous rt)
    | None -> ()
  in
  (* Loss accounting is incremental, not end-of-run: a read checked in
     round k must already know the collection lost traces in rounds < k,
     or the checker would flag a violation it cannot actually prove. *)
  let noted_lost = ref 0 in
  let noted_late = ref 0 in
  let sync_losses () =
    (match chaos with
    | Some ch ->
      let lost = Chaos.dropped ch in
      if lost > !noted_lost then begin
        Leopard.Checker.note_lost_traces checker (lost - !noted_lost);
        noted_lost := lost
      end
    | None -> ());
    let late = Leopard.Pipeline.late_dropped pipeline in
    if late > !noted_late then begin
      Leopard.Checker.note_late_dropped checker (late - !noted_late);
      noted_late := late
    end
  in
  (* Bounded-memory mode: once the watermark proves a prefix settled,
     truncate the checker down to its live window and persist a snapshot
     frame.  The cadence is by dispatched traces, not rounds, so idle
     batch windows do not churn checkpoints. *)
  let ckpt_writer =
    Option.map
      (fun path ->
        let fingerprint =
          Leopard_trace.Ckpt.fingerprint
            [
              "online"; il.Leopard.Il_profile.name; string_of_int gc_every;
              string_of_int (Option.value ~default:0 gc_watermark);
            ]
        in
        Leopard_trace.Ckpt.writer ~path ~fingerprint)
      checkpoint
  in
  let last_trunc = ref 0 in
  let maybe_truncate () =
    match gc_watermark with
    | None -> ()
    | Some every ->
      let d = Leopard.Pipeline.dispatched pipeline in
      if d - !last_trunc >= max 1 every then begin
        last_trunc := d;
        let w = Leopard.Pipeline.watermark pipeline in
        (* max_int = every source exhausted; the final drain below
           truncates at the horizon anyway, so skip the degenerate cut *)
        if w < max_int then begin
          Leopard.Checker.truncate checker ~watermark:w;
          Option.iter
            (fun wr ->
              Leopard_trace.Ckpt.append wr (Leopard.Checker.encode checker))
            ckpt_writer
        end
      end
  in
  let drain () =
    incr rounds;
    let lag = !produced - Leopard.Pipeline.dispatched pipeline in
    if lag > !max_lag then max_lag := lag;
    let t0 = Leopard_util.Clock.wall () in
    mark_indeterminates ();
    sync_losses ();
    ignore (Leopard.Pipeline.drain pipeline ~f:(Leopard.Checker.feed checker));
    sync_losses ();
    maybe_truncate ();
    verify_wall := !verify_wall +. (Leopard_util.Clock.wall () -. t0)
  in
  let observer trace =
    incr produced;
    Queue.push trace queues.(trace.Trace.client)
  in
  let cfg =
    { cfg with Run.observer = Some observer; tick = Some (batch_window_ns, drain) }
  in
  let outcome = Run.execute cfg in
  (* the workload stopped: everything left is dispatchable *)
  workload_done := true;
  let t0 = Leopard_util.Clock.wall () in
  mark_indeterminates ();
  sync_losses ();
  ignore (Leopard.Pipeline.drain pipeline ~f:(Leopard.Checker.feed checker));
  sync_losses ();
  (* Anything still queued belongs to a source the pipeline closed as
     crashed before the trace straggled in — lost to the verifier. *)
  let stranded = Array.fold_left (fun n q -> n + Queue.length q) 0 queues in
  if stranded > 0 then Leopard.Checker.note_lost_traces checker stranded;
  (* Honest residual-lag accounting (after the final drain): every
     produced trace is dispatched, dropped-late, or stranded behind a
     crashed source — nothing vanishes.  [final_lag] is what the
     verifier never saw; 0 exactly when collection was complete. *)
  final_lag := !produced - Leopard.Pipeline.dispatched pipeline;
  (* Crash–recovery epochs the run spanned: clean restarts keep the
     verdict intact, recovery damage degrades it. *)
  List.iter
    (fun (e : Run.epoch_mark) ->
      Leopard.Checker.note_restart checker ~at:e.Run.at
        ~replayed:e.Run.replayed ~damaged:e.Run.damaged)
    outcome.Run.epochs;
  (match chaos with
  | Some ch ->
    Leopard.Checker.note_crashed_clients checker
      (List.length (Chaos.crashed_clients ch))
  | None -> ());
  Leopard.Checker.finalize checker;
  (* Final frame after finalize so a post-run inspection sees the
     settled verdict, then the file is complete. *)
  Option.iter
    (fun wr ->
      Leopard_trace.Ckpt.append wr (Leopard.Checker.encode checker);
      Leopard_trace.Ckpt.close wr)
    ckpt_writer;
  verify_wall := !verify_wall +. (Leopard_util.Clock.wall () -. t0);
  {
    outcome;
    report = Leopard.Checker.report checker;
    verify_wall_s = !verify_wall;
    rounds = !rounds;
    max_lag = !max_lag;
    final_lag = !final_lag;
    stranded;
  }
