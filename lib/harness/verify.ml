type result = {
  report : Leopard.Checker.report;
  pipeline_peak : int;
}

let offline ?gc_every ~il (outcome : Run.outcome) =
  let checker = Leopard.Checker.create ?gc_every il in
  let pipeline = Leopard.Pipeline.of_lists outcome.Run.client_traces in
  (* Mark order is load-bearing (see bin/leopard_cli.ml's --check path):
     epochs first, then the two wire-ambiguity channels, then the
     coordinator channel, and failover marks last — "lost beats
     ambiguous" requires note_failover to see the ambiguous set. *)
  List.iter
    (fun (e : Run.epoch_mark) ->
      Leopard.Checker.note_restart checker ~at:e.at ~replayed:e.replayed
        ~damaged:e.damaged)
    outcome.Run.epochs;
  (match outcome.Run.net with
  | Some ns ->
    List.iter
      (fun (_client, txn, _at) ->
        Leopard.Checker.mark_ambiguous_commit checker ~txn)
      ns.Run.ambiguous
  | None -> ());
  List.iter
    (fun (_client, txn, _at) ->
      Leopard.Checker.mark_ambiguous_commit checker ~txn)
    outcome.Run.repl_ambiguous;
  List.iter
    (fun (_client, txn, _at) -> Leopard.Checker.mark_coord_ambiguous checker ~txn)
    outcome.Run.coord_ambiguous;
  List.iter
    (fun (m : Leopard_trace.Codec.leader_mark) ->
      Leopard.Checker.note_failover checker ~at:m.at ~epoch:m.epoch
        ~lost:m.lost)
    outcome.Run.leaders;
  ignore (Leopard.Pipeline.drain pipeline ~f:(Leopard.Checker.feed checker));
  Leopard.Checker.finalize checker;
  {
    report = Leopard.Checker.report checker;
    pipeline_peak = Leopard.Pipeline.peak_memory pipeline;
  }
