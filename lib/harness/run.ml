module Trace = Leopard_trace.Trace
module Codec = Leopard_trace.Codec
module Rng = Leopard_util.Rng
module Engine = Minidb.Engine
module Sim = Minidb.Sim
module Net = Leopard_net
module Repl = Leopard_replication
module Shard = Leopard_shard
module Compose = Leopard_compose

type latency = {
  net_mean_ns : float;
  think_mean_ns : float;
  op_gap_ns : float;
  commit_extra_ns : float;
}

let default_latency =
  {
    net_mean_ns = 50_000.0;
    think_mean_ns = 100_000.0;
    op_gap_ns = 10_000.0;
    commit_extra_ns = 30_000.0;
  }

type stop = Txn_count of int | Sim_time_ns of int

(* Wire mode: requests travel as serialized messages through a seeded
   faulty link to a per-session server queue, instead of being invoked
   in-process.  The fault/client knobs are [Net]'s; [queue_capacity]
   bounds each session's server queue (load shedding beyond it);
   [session_timeout_ns] is how long the server keeps an orphaned
   transaction alive after its client gave up before reaping it. *)
type net_config = {
  net_fault : Net.Faulty_link.config;
  net_client : Net.Client.config;
  queue_capacity : int;
  session_timeout_ns : int;
}

let net_config ?(fault = Net.Faulty_link.disabled)
    ?(client = Net.Client.config ()) ?(queue_capacity = 64)
    ?(session_timeout_ns = 1_000_000) () =
  if queue_capacity < 1 then
    invalid_arg "Run.net_config: queue_capacity must be >= 1";
  if session_timeout_ns <= 0 then
    invalid_arg "Run.net_config: session_timeout_ns must be positive";
  { net_fault = fault; net_client = client; queue_capacity; session_timeout_ns }

(* Per-run wire state, created at config time (like [Chaos.create]) so an
   online monitor can poll [ambiguous] while the run progresses. *)
type net_rt = {
  ncfg : net_config;
  link : Net.Faulty_link.t;
  net_rngs : Rng.t array;  (* per-client retry/backoff jitter streams *)
  mutable ambiguous : (int * int * int) list;
      (* (client, txn, gave_up_at) of commits with unknown outcome;
         newest first *)
}

let net_ambiguous rt = List.rev rt.ambiguous

(* Replication mode: the engine is the primary of a [Repl.Cluster];
   every durable commit ships to followers over the replication wire,
   and a seeded orchestrator can promote a follower mid-run.
   [failover_at] lists explicit promotion instants;
   [promote_on_partition] additionally derives one promotion
   [election_timeout_ns] after the start of every primary-isolating
   partition window (a [follower = -1] window in the cluster config).
   When [Repl_fault.Split_brain] is planted, the deposed primary keeps
   serving its in-flight transactions for [split_brain_ns] after each
   promotion instead of being fenced immediately. *)
type repl_config = {
  cluster : Repl.Cluster.config;
  failover_at : int list;
  promote_on_partition : bool;
  election_timeout_ns : int;
  split_brain_ns : int;
}

let repl_config ?(failover_at = []) ?(promote_on_partition = false)
    ?(election_timeout_ns = 300_000) ?(split_brain_ns = 300_000) cluster =
  if election_timeout_ns <= 0 then
    invalid_arg "Run.repl_config: election_timeout_ns must be positive";
  if split_brain_ns <= 0 then
    invalid_arg "Run.repl_config: split_brain_ns must be positive";
  if List.exists (fun at -> at <= 0) failover_at then
    invalid_arg "Run.repl_config: failover instants must be positive";
  { cluster; failover_at; promote_on_partition; election_timeout_ns;
    split_brain_ns }

(* Shard mode: the key space is hash-range partitioned across a
   [Shard.Group] and cross-shard commits run two-phase commit over the
   group's faulty links.  [coord_crash_at] lists instants at which the
   coordinator crashes (orphaning undecided rounds into the
   coordinator-ambiguity channel); [part_crash_at] lists
   [(instant, shard)] participant crash/restarts (the shard rebuilds
   from its own WAL through the durability fault model).  [stack]
   additionally runs every shard as a primary/follower replica set
   ([Compose.Stack]) and [shard_failover_at] lists [(instant, shard)]
   failovers inside those replica sets — the stacked fault planes. *)
type shard_config = {
  group : Shard.Group.config;
  coord_crash_at : int list;
  part_crash_at : (int * int) list;
  stack : Compose.Stack.config option;
  shard_failover_at : (int * int) list;
}

let shard_config ?(coord_crash_at = []) ?(part_crash_at = []) ?stack
    ?(shard_failover_at = []) (group : Shard.Group.config) =
  if List.exists (fun at -> at <= 0) coord_crash_at then
    invalid_arg "Run.shard_config: coordinator crash instants must be positive";
  if List.exists (fun (at, _) -> at <= 0) part_crash_at then
    invalid_arg "Run.shard_config: participant crash instants must be positive";
  if
    List.exists
      (fun (_, s) -> s < 0 || s >= group.Shard.Group.shards)
      part_crash_at
  then invalid_arg "Run.shard_config: participant crash shard out of range";
  if shard_failover_at <> [] && stack = None then
    invalid_arg
      "Run.shard_config: shard failovers need a per-shard replica set (stack)";
  if List.exists (fun (at, _) -> at <= 0) shard_failover_at then
    invalid_arg "Run.shard_config: shard failover instants must be positive";
  if
    List.exists
      (fun (_, s) -> s < 0 || s >= group.Shard.Group.shards)
      shard_failover_at
  then invalid_arg "Run.shard_config: shard failover shard out of range";
  { group; coord_crash_at; part_crash_at; stack; shard_failover_at }

type config = {
  spec : Leopard_workload.Spec.t;
  profile : Minidb.Profile.t;
  level : Minidb.Isolation.level;
  faults : Minidb.Fault.Set.t;
  clients : int;
  stop : stop;
  seed : int;
  latency : latency;
  latency_of : (int -> latency) option;
  observer : (Trace.t -> unit) option;
  tick : (int * (unit -> unit)) option;
  chaos : Chaos.t option;
  net : net_rt option;
  max_retries : int;
  retry_backoff_ns : float;
  wal : bool;
  crash_at : int list;  (* simulated instants of server crashes *)
  wal_faults : Minidb.Wal.fault_cfg option;
  repl : repl_config option;
  shard : shard_config option;
}

let config ?(faults = Minidb.Fault.Set.empty) ?(clients = 8) ?(seed = 42)
    ?(latency = default_latency) ?latency_of ?observer ?tick ?chaos ?net
    ?(max_retries = 0) ?(retry_backoff_ns = 100_000.0) ?(wal = false)
    ?(crash_at = []) ?wal_faults ?repl ?shard ~spec ~profile ~level ~stop () =
  (* the wire transport serves one engine; routing it at a promoted
     replica would need session re-establishment the server does not
     model, so the two planes are run separately *)
  (match (net, repl) with
  | Some _, Some _ ->
    invalid_arg "Run.config: net and repl modes are mutually exclusive"
  | _ -> ());
  (* the shard group owns the engine's commit hook and its protocol
     traffic models the intra-cluster wire; the client wire and the
     replication plane each claim the same seams *)
  (match (shard, net) with
  | Some _, Some _ ->
    invalid_arg "Run.config: shard and net modes are mutually exclusive"
  | _ -> ());
  (match (shard, repl) with
  | Some _, Some _ ->
    invalid_arg
      "Run.config: shard and repl modes are mutually exclusive (replicate \
       each shard via shard_config's stack instead)"
  | _ -> ());
  {
    spec;
    profile;
    level;
    faults;
    clients;
    stop;
    seed;
    latency;
    latency_of;
    observer;
    tick;
    chaos = Option.map (fun c -> Chaos.create ~clients c) chaos;
    net =
      Option.map
        (fun n ->
          let root = Rng.create n.net_fault.Net.Faulty_link.seed in
          (* the link splits the first [clients] streams off this same
             seed; skip past them so a client's retry jitter never shares
             a state with its fault stream *)
          for _ = 1 to clients do
            ignore (Rng.split root)
          done;
          {
            ncfg = n;
            link = Net.Faulty_link.create ~sessions:clients n.net_fault;
            net_rngs = Array.init clients (fun _ -> Rng.split root);
            ambiguous = [];
          })
        net;
    max_retries;
    retry_backoff_ns;
    (* crashing or injecting durability faults implies logging *)
    wal = wal || crash_at <> [] || wal_faults <> None;
    crash_at;
    wal_faults;
    repl;
    shard;
  }

let latency_for cfg client =
  match cfg.latency_of with Some f -> f client | None -> cfg.latency

type epoch_mark = {
  at : int;  (** simulated instant of the crash *)
  replayed : int;  (** WAL records applied during recovery *)
  damaged : int;  (** records torn/lost/reordered/duplicated *)
}

type outcome = {
  client_traces : Trace.t list array;
  op_trace : (int, Trace.t) Hashtbl.t;
  truth_deps : Minidb.Ground_truth.dep list;
  committed : int -> bool;
  peek : Leopard_trace.Cell.t -> Trace.value option;
  snapshot :
    unit -> (Leopard_trace.Cell.t * Minidb.Version_store.version list) list;
      (* committed-state image of the live store; see
         [Version_store.snapshot_committed] *)
  commits : int;
  aborts : int;
  aborts_fuw : int;
  aborts_certifier : int;
  aborts_deadlock : int;
  aborts_crash : int;
  deadlocks : int;
  restarts : int;
  epochs : epoch_mark list;  (* crash/restart boundaries, oldest first *)
  wal_appended : int;
  wal_damaged : int;
  sim_duration_ns : int;
  ops : int;
  retries : int;
  crashed_clients : int list;
  indeterminate_txns : int list;
  chaos_dropped : int;
  chaos_duplicated : int;
  chaos_delayed : int;
  net : net_stats option;
  leaders : Codec.leader_mark list;
      (* failover boundaries, oldest first; [lost] is what the cluster
         *reported* lost — empty under claim-clean replication faults *)
  repl : Repl.Cluster.stats option;
  repl_ambiguous : (int * int * int) list;
      (* (client, txn, gave_up_at) of commits whose replication gate
         timed out, oldest first *)
  shard : Shard.Group.stats option;
  shard_repl : Compose.Stack.stats option;
      (* per-shard replica sets, when the planes are stacked *)
  coord_ambiguous : (int * int * int) list;
      (* (client, txn, orphaned_at) of commits whose 2PC coordinator
         crashed before deciding, oldest first *)
  shard_marks : Codec.shard_mark list;
      (* the group topology declaration ([S] line); empty off the plane *)
  prepare_marks : Codec.prepare_mark list;
      (* 2PC round dispositions ([P] lines), oldest first *)
}

and net_stats = {
  resets : int;
  msg_dropped : int;
  msg_duplicated : int;
  msg_delayed : int;
  msg_reordered : int;
  rejected : int;  (* requests load-shed by the server *)
  resends : int;
  give_ups : int;
  ambiguous : (int * int * int) list;
      (* (client, txn, gave_up_at) of ambiguous commits, oldest first *)
  dup_commit_acks : int;  (* commits acknowledged idempotently *)
}

type state = {
  cfg : config;
  sim : Sim.t;
  engine : Engine.t ref;  (* current primary; swapped at failover *)
  deposed : Engine.t list ref;  (* replaced primaries, newest first *)
  repl_cl : Repl.Cluster.t option;
  shard_gr : Shard.Group.t option;
  mutable leaders : Codec.leader_mark list;  (* newest first *)
  mutable repl_ambiguous : (int * int * int) list;  (* newest first *)
  mutable coord_ambiguous : (int * int * int) list;  (* newest first *)
  net_exec : (Net.Server.t * Net.Client.t array) option;
  buffers : Trace.t list ref array;  (* newest first; reversed at the end *)
  op_trace : (int, Trace.t) Hashtbl.t;
  mutable next_op : int;
  mutable finished_txns : int;
  mutable retries : int;
  mutable live_clients : int;
      (* clients that will still schedule work; when it reaches 0 the
         tick loop must stop too, or a run whose clients all crashed
         before the stop condition would spin forever *)
  mutable stop_now : bool;
}

let fresh_op st =
  let id = st.next_op in
  st.next_op <- id + 1;
  id

let should_stop st =
  st.stop_now
  ||
  match st.cfg.stop with
  | Txn_count n -> st.finished_txns >= n
  | Sim_time_ns t -> Sim.now st.sim >= t

let delay rng mean = 1 + int_of_float (Rng.exponential rng mean)

(* Issue one request: network hop to the server, engine execution
   (possibly delayed by lock queues), network hop back.  [engine] is the
   primary the transaction began on — after a failover it keeps talking
   to that (possibly deposed) engine, whose epoch guard then refuses it
   exactly as a crashed server would.  A non-locking, non-predicate read
   of a so-far write-free transaction may be routed to a live replica
   instead of the engine; the replica serves it only when sound (or when
   a stale-read fault is planted), drawing the same [d_out] the engine
   path would. *)
let issue st rng ~engine ~client ~txn ~request ~receive =
  let latency = latency_for st.cfg client in
  let ts_bef = Sim.now st.sim in
  let d_in = delay rng latency.net_mean_ns in
  let op_id = fresh_op st in
  Sim.schedule_after st.sim ~delay:d_in (fun () ->
      let serve_engine () =
        Engine.exec engine txn ~op_id request ~k:(fun result ->
            let extra =
              match request with
              | Engine.Commit -> delay rng latency.commit_extra_ns
              | Engine.Read _ | Engine.Write _ | Engine.Abort -> 0
            in
            let d_out = extra + delay rng latency.net_mean_ns in
            Sim.schedule_after st.sim ~delay:d_out (fun () ->
                receive ~op_id ~ts_bef result))
      in
      match (st.repl_cl, st.shard_gr) with
      | None, None -> serve_engine ()
      | Some cl, _ -> (
        match request with
        | Engine.Read { cells; locking = false; predicate = false }
          when (not (Engine.txn_has_writes txn)) && engine == !(st.engine) -> (
          match
            Repl.Cluster.maybe_follower_read cl ~cells
              ~snapshot:(fun () -> Engine.op_snapshot engine txn)
          with
          | Some items ->
            let d_out = delay rng latency.net_mean_ns in
            Sim.schedule_after st.sim ~delay:d_out (fun () ->
                receive ~op_id ~ts_bef (Engine.Ok_read items))
          | None -> serve_engine ())
        | Engine.Read _ | Engine.Write _ | Engine.Commit | Engine.Abort ->
          serve_engine ())
      | None, Some gr -> (
        (* same shape as the follower-read branch: the owning
           participants serve the snapshot read when every touched shard
           can do so honestly (or a planted lie lets a lagging/frozen
           horizon pretend); otherwise the engine path, with values and
           draws identical to an unsharded run *)
        match request with
        | Engine.Read { cells; locking = false; predicate = false }
          when not (Engine.txn_has_writes txn) -> (
          match
            Shard.Group.route_read gr ~cells
              ~snapshot:(fun () -> Engine.op_snapshot engine txn)
          with
          | Some items ->
            let d_out = delay rng latency.net_mean_ns in
            Sim.schedule_after st.sim ~delay:d_out (fun () ->
                receive ~op_id ~ts_bef (Engine.Ok_read items))
          | None -> serve_engine ())
        | Engine.Read _ | Engine.Write _ | Engine.Commit | Engine.Abort ->
          serve_engine ()))

(* Issue one request through the wire.  The workload rng supplies exactly
   the draws the in-process [issue] makes — [d_in] at the issue instant,
   commit-extra + [d_out] at each reply instant — so a zero-fault link
   replays the in-process run byte-for-byte; every retry/backoff/fault
   decision comes from the net streams instead.  [on_undelivered] fires
   when the call settles without a server outcome (load-shed or
   every attempt timed out/reset): for a COMMIT that is the ambiguous
   case, for anything else a definite client-side abort. *)
let issue_net st ~server ~nclient rng ~client ~txn ~request ~receive
    ~on_undelivered =
  let latency = latency_for st.cfg client in
  let ts_bef = Sim.now st.sim in
  let d_in = delay rng latency.net_mean_ns in
  let op_id = fresh_op st in
  Net.Server.register_txn server txn;
  let body =
    match request with
    | Engine.Read { cells; locking; predicate } ->
      Net.Wire.Read { cells; locking; predicate }
    | Engine.Write items -> Net.Wire.Write items
    | Engine.Commit -> Net.Wire.Commit { token = Engine.txn_id txn }
    | Engine.Abort -> Net.Wire.Abort
  in
  Net.Client.call nclient ~txn:(Engine.txn_id txn) ~op:op_id ~body
    ~first_send_delay_ns:d_in
    ~resp_base_delay_ns:(fun _resp ->
      let extra =
        match request with
        | Engine.Commit -> delay rng latency.commit_extra_ns
        | Engine.Read _ | Engine.Write _ | Engine.Abort -> 0
      in
      extra + delay rng latency.net_mean_ns)
    ~k:(fun outcome ->
      match outcome with
      | Net.Client.Reply (Net.Wire.Ok_read items) ->
        receive ~op_id ~ts_bef (Engine.Ok_read items)
      | Net.Client.Reply Net.Wire.Ok_write ->
        receive ~op_id ~ts_bef Engine.Ok_write
      | Net.Client.Reply Net.Wire.Ok_commit ->
        receive ~op_id ~ts_bef Engine.Ok_commit
      | Net.Client.Reply (Net.Wire.Refused reason) ->
        receive ~op_id ~ts_bef (Engine.Err reason)
      | Net.Client.Reply (Net.Wire.Began _) ->
        assert false (* the harness begins transactions client-side *)
      | Net.Client.Reply Net.Wire.Rejected | Net.Client.No_reply ->
        on_undelivered ~op_id ~ts_bef)

(* Route a request through the configured transport. *)
let transport st rng ~engine ~client ~txn ~request ~receive ~on_undelivered =
  match st.net_exec with
  | None -> issue st rng ~engine ~client ~txn ~request ~receive
  | Some (server, nclients) ->
    issue_net st ~server ~nclient:nclients.(client) rng ~client ~txn ~request
      ~receive ~on_undelivered

let deliver_now st ~client trace =
  st.buffers.(client) := trace :: !(st.buffers.(client));
  match st.cfg.observer with Some f -> f trace | None -> ()

let emit st ~client ~txn_id ~op_id ~ts_bef payload =
  let trace =
    { Trace.ts_bef; ts_aft = Sim.now st.sim; txn = txn_id; client; payload }
  in
  match st.cfg.chaos with
  | None ->
    Hashtbl.replace st.op_trace op_id trace;
    deliver_now st ~client trace;
    trace
  | Some ch ->
    (* what the client logs carries its (possibly skewed) clock; what the
       collector receives additionally went through the lossy path *)
    let s = Chaos.skew ch ~client in
    let trace =
      if s = 0 then trace
      else
        {
          trace with
          Trace.ts_bef = trace.Trace.ts_bef + s;
          ts_aft = trace.Trace.ts_aft + s;
        }
    in
    Hashtbl.replace st.op_trace op_id trace;
    List.iter
      (fun (delay_ns, tr) ->
        if delay_ns = 0 then deliver_now st ~client tr
        else
          Sim.schedule_after st.sim ~delay:delay_ns (fun () ->
              deliver_now st ~client tr))
      (Chaos.deliver ch ~client trace);
    trace

(* Bounded exponential backoff: mean doubles per retry, capped at 32x. *)
let backoff_mean_ns ~retry_backoff_ns ~tries =
  retry_backoff_ns *. float_of_int (1 lsl min tries 5)

let backoff_mean st tries =
  backoff_mean_ns ~retry_backoff_ns:st.cfg.retry_backoff_ns ~tries

let client_done st = st.live_clients <- st.live_clients - 1

let rec run_client st rng ~client =
  if should_stop st then client_done st
  else
    attempt st rng ~client
      ~prog:(st.cfg.spec.Leopard_workload.Spec.next_txn rng)
      ~tries:0

(* One transaction attempt.  [prog] is re-run verbatim (as a fresh
   transaction) when the engine aborts it and retries remain. *)
and attempt st rng ~client ~prog ~tries =
  begin
    (* the engine is captured per attempt: a transaction keeps talking to
       the primary it began on even across a failover (split-brain is
       exactly this, unfenced) *)
    let engine = !(st.engine) in
    let txn = Engine.begin_txn engine ~client in
    let txn_id = Engine.txn_id txn in
    (* the attempt's acknowledged write set, in issue order — the 2PC
       prepare slices are cut from this (unused off the shard plane) *)
    let acc_writes = ref [] in
    let next_txn () =
      if should_stop st then client_done st
      else
        Sim.schedule_after st.sim
          ~delay:(delay rng (latency_for st.cfg client).think_mean_ns)
          (fun () -> run_client st rng ~client)
    in
    let finish_txn () =
      st.finished_txns <- st.finished_txns + 1;
      next_txn ()
    in
    let abort_and_finish ?(retryable = false) ~op_id ~ts_bef () =
      ignore (emit st ~client ~txn_id ~op_id ~ts_bef Trace.Abort);
      st.finished_txns <- st.finished_txns + 1;
      if should_stop st then client_done st
      else if retryable && tries < st.cfg.max_retries then begin
        st.retries <- st.retries + 1;
        Sim.schedule_after st.sim
          ~delay:(delay rng (backoff_mean st tries))
          (fun () ->
            if should_stop st then client_done st
            else attempt st rng ~client ~prog ~tries:(tries + 1))
      end
      else next_txn ()
    in
    (* Server-side reaper: abort an orphaned transaction (its client
       crashed or gave up) once the session timeout elapses, releasing
       its locks.  A commit that sneaks in before the reaper fires wins —
       [txn_alive] is checked at reap time. *)
    let reap_after ~timeout_ns =
      Sim.schedule_after st.sim ~delay:timeout_ns (fun () ->
          if Engine.txn_alive txn then
            Engine.exec engine txn ~op_id:(fresh_op st) Engine.Abort
              ~k:(fun _ -> ()))
    in
    (* A wire call that settled without a server outcome.  A COMMIT is the
       ambiguous case: any attempt may have been applied, so the client
       logs no terminal trace, records the give-up for the checker, and
       moves on.  Anything else is a definite client-side abort — the
       client never sent (and never will send) COMMIT, and the reaper
       guarantees the server-side abort — so the abort trace is truthful. *)
    let on_undelivered ~request ~op_id ~ts_bef =
      let timeout_ns =
        match st.cfg.net with
        | Some rt -> rt.ncfg.session_timeout_ns
        | None -> assert false (* only the wire transport settles this way *)
      in
      reap_after ~timeout_ns;
      match request with
      | Engine.Commit ->
        (match st.cfg.net with
        | Some rt ->
          rt.ambiguous <- (client, txn_id, Sim.now st.sim) :: rt.ambiguous
        | None -> ());
        finish_txn ()
      | Engine.Abort -> abort_and_finish ~op_id ~ts_bef ()
      | Engine.Read _ | Engine.Write _ ->
        abort_and_finish ~retryable:true ~op_id ~ts_bef ()
    in
    (* Chaos crash: the request leaves for the server, but the client dies
       before the reply — nothing is logged and nothing further is issued.
       A crashed commit may have taken effect server-side (indeterminate);
       an orphaned read/write transaction is reaped by the server after
       the session timeout, releasing its locks. *)
    let issue_op ~request ~receive =
      match st.cfg.chaos with
      | Some ch when Chaos.roll_crash ch ~client ->
        Chaos.note_crash ch ~client ~txn:txn_id;
        st.finished_txns <- st.finished_txns + 1;
        client_done st;
        let dead_receive ~op_id:_ ~ts_bef:_ _result =
          match request with
          | Engine.Commit | Engine.Abort -> ()
          | Engine.Read _ | Engine.Write _ ->
            reap_after ~timeout_ns:(Chaos.cfg ch).Chaos.session_timeout_ns
        in
        transport st rng ~engine ~client ~txn ~request ~receive:dead_receive
          ~on_undelivered:(fun ~op_id ~ts_bef ->
            dead_receive ~op_id ~ts_bef (Engine.Err Engine.User_abort))
      | Some _ | None ->
        transport st rng ~engine ~client ~txn ~request ~receive
          ~on_undelivered:(on_undelivered ~request)
    in
    let rec step (prog : Leopard_workload.Program.t) =
      let continue next =
        Sim.schedule_after st.sim
          ~delay:(delay rng (latency_for st.cfg client).op_gap_ns)
          (fun () -> step next)
      in
      match prog with
      | Leopard_workload.Program.Finish ->
        let do_commit () =
          issue_op ~request:Engine.Commit
            ~receive:(fun ~op_id ~ts_bef result ->
              match result with
              | Engine.Ok_commit -> (
                match st.repl_cl with
                | None ->
                  ignore (emit st ~client ~txn_id ~op_id ~ts_bef Trace.Commit);
                  finish_txn ()
                | Some cl ->
                  (* the engine committed; whether (and when) the client may
                     log the commit is the replication gate's call *)
                  Repl.Cluster.gate_commit cl ~txn:txn_id ~k:(fun g ->
                      match g with
                      | Repl.Cluster.Acked ->
                        ignore
                          (emit st ~client ~txn_id ~op_id ~ts_bef Trace.Commit);
                        finish_txn ()
                      | Repl.Cluster.Ack_timeout ->
                        (* COMMIT applied but its durability across failover
                           is unknown: no terminal trace, recorded for the
                           checker as an ambiguous commit *)
                        st.repl_ambiguous <-
                          (client, txn_id, Sim.now st.sim) :: st.repl_ambiguous;
                        finish_txn ()
                      | Repl.Cluster.Lost_at_failover ->
                        (* gone with the old timeline; the leader mark's
                           lost list (when honest) tells the checker *)
                        finish_txn ()))
              | Engine.Err
                  ( Engine.Deadlock_victim | Engine.Fuw_conflict
                  | Engine.Certifier_conflict _ | Engine.User_abort
                  | Engine.Server_crash ) ->
                (* a prepared 2PC round dies with the engine abort — fan
                   the ABORT decision out so participants release their
                   prepared locks (no-op off the shard plane) *)
                (match st.shard_gr with
                | Some gr -> Shard.Group.decide_abort gr ~txn:txn_id
                | None -> ());
                abort_and_finish ~retryable:true ~op_id ~ts_bef ()
              | Engine.Ok_read _ | Engine.Ok_write ->
                assert false)
        in
        (match st.shard_gr with
        | None -> do_commit ()
        | Some gr -> (
          let ws = !acc_writes in
          match
            Shard.Group.shards_touched gr ~cells:(List.map fst ws)
          with
          | [] | [ _ ] ->
            (* fast path: read-only or single-shard — never touches 2PC *)
            do_commit ()
          | _ :: _ :: _ when not (Shard.Group.evented gr) ->
            (* synchronous round: instantaneous, always prepares; no RNG
               draws, no scheduled events — byte-identical to unsharded *)
            Shard.Group.prepare gr ~txn:txn_id
              ~start_ts:(Engine.op_snapshot engine txn)
              ~writes:ws
              ~k:(fun o ->
                match o with
                | Shard.Group.Prepared -> do_commit ()
                | Shard.Group.Abort_decided | Shard.Group.Coord_crashed ->
                  assert false)
          | _ :: _ :: _ ->
            (* evented round: one hop to the coordinator, then the voting
               phase; the commit is only issued to the engine once every
               shard has voted yes *)
            let ts_bef = Sim.now st.sim in
            let d_in =
              delay rng (latency_for st.cfg client).net_mean_ns
            in
            Sim.schedule_after st.sim ~delay:d_in (fun () ->
                Shard.Group.prepare gr ~txn:txn_id
                  ~start_ts:(Engine.op_snapshot engine txn)
                  ~writes:ws
                  ~k:(fun o ->
                    match o with
                    | Shard.Group.Prepared -> do_commit ()
                    | Shard.Group.Abort_decided ->
                      (* a shard vetoed or the vote timed out: a definite,
                         client-visible abort — release the engine txn and
                         retry like any engine abort *)
                      Engine.exec engine txn ~op_id:(fresh_op st) Engine.Abort
                        ~k:(fun _ -> ());
                      abort_and_finish ~retryable:true ~op_id:(fresh_op st)
                        ~ts_bef ()
                    | Shard.Group.Coord_crashed ->
                      (* the coordinator died undecided: the client can
                         never learn the outcome — no terminal trace,
                         recorded for the checker's coordinator channel;
                         the orphaned engine txn is reaped *)
                      reap_after
                        ~timeout_ns:
                          (Shard.Group.prepare_timeout_ns gr);
                      st.coord_ambiguous <-
                        (client, txn_id, Sim.now st.sim)
                        :: st.coord_ambiguous;
                      finish_txn ()))))
      | Leopard_workload.Program.Rollback ->
        issue_op ~request:Engine.Abort
          ~receive:(fun ~op_id ~ts_bef _result ->
            (* a user-requested rollback is intentional, not retried *)
            abort_and_finish ~op_id ~ts_bef ())
      | Leopard_workload.Program.Read { cells; locking; predicate; k } ->
        issue_op
          ~request:(Engine.Read { cells; locking; predicate })
          ~receive:(fun ~op_id ~ts_bef result ->
            match result with
            | Engine.Ok_read items ->
              ignore
                (emit st ~client ~txn_id ~op_id ~ts_bef
                   (Trace.Read { items; locking }));
              continue (k items)
            | Engine.Err
                ( Engine.Deadlock_victim | Engine.Fuw_conflict
                | Engine.Certifier_conflict _ | Engine.User_abort
                | Engine.Server_crash ) ->
              abort_and_finish ~retryable:true ~op_id ~ts_bef ()
            | Engine.Ok_write | Engine.Ok_commit -> assert false)
      | Leopard_workload.Program.Write { items; k } ->
        issue_op ~request:(Engine.Write items)
          ~receive:(fun ~op_id ~ts_bef result ->
            match result with
            | Engine.Ok_write ->
              acc_writes := !acc_writes @ items;
              let titems =
                List.map
                  (fun (cell, value) -> { Trace.cell; value })
                  items
              in
              ignore
                (emit st ~client ~txn_id ~op_id ~ts_bef (Trace.Write titems));
              continue (k ())
            | Engine.Err
                ( Engine.Deadlock_victim | Engine.Fuw_conflict
                | Engine.Certifier_conflict _ | Engine.User_abort
                | Engine.Server_crash ) ->
              abort_and_finish ~retryable:true ~op_id ~ts_bef ()
            | Engine.Ok_read _ | Engine.Ok_commit -> assert false)
    in
    step prog
  end

let execute cfg =
  let sim = Sim.create () in
  let wal =
    if cfg.wal then Some (Minidb.Wal.create ?faults:cfg.wal_faults ())
    else None
  in
  let engine =
    Engine.create ?wal sim ~profile:cfg.profile ~level:cfg.level
      ~faults:cfg.faults
  in
  Engine.load engine cfg.spec.Leopard_workload.Spec.initial;
  let engine_ref = ref engine in
  let deposed = ref [] in
  (* Crash/restart epochs: each instant kills the server between events
     and recovers it from the WAL before the next event runs.  Scheduled
     up front from the config, never drawn from the workload's RNG.  The
     closure crashes whichever engine is primary at that instant. *)
  let epochs = ref [] in
  List.iter
    (fun at ->
      Sim.schedule sim ~at:(max 1 at) (fun () ->
          let s = Engine.crash_recover !engine_ref in
          epochs :=
            {
              at = Sim.now sim;
              replayed = s.Minidb.Recovery.replayed;
              damaged = Minidb.Wal.damaged_records s.Minidb.Recovery.damage;
            }
            :: !epochs))
    (List.sort_uniq Int.compare cfg.crash_at);
  let repl_cl =
    Option.map
      (fun (r : repl_config) ->
        Repl.Cluster.create sim r.cluster
          ~initial:cfg.spec.Leopard_workload.Spec.initial)
      cfg.repl
  in
  (match repl_cl with
  | Some cl -> Engine.set_commit_hook engine (Some (Repl.Cluster.on_commit cl))
  | None -> ());
  let shard_gr =
    Option.map
      (fun (s : shard_config) ->
        Shard.Group.create ~sim
          ~initial:cfg.spec.Leopard_workload.Spec.initial s.group)
      cfg.shard
  in
  (* the engine survives [crash_at] epochs with its hook intact
     ([crash_recover] keeps [on_commit]), so decision slices keep
     shipping across server restarts *)
  (match shard_gr with
  | Some gr -> Engine.set_commit_hook engine (Some (Shard.Group.on_commit gr))
  | None -> ());
  (* Stacked planes: one replica set per shard, fed by the group's
     apply hook. *)
  let shard_stack =
    match (cfg.shard, shard_gr) with
    | Some { stack = Some stk; _ }, Some gr ->
      Some
        (Compose.Stack.create ~sim ~group:gr
           ~initial:cfg.spec.Leopard_workload.Spec.initial stk)
    | _ -> None
  in
  (* Shard-plane chaos: coordinator crashes and participant
     crash/restarts, scheduled up front from the config — never drawn
     from the workload's RNG. *)
  (match (cfg.shard, shard_gr) with
  | Some scfg, Some gr ->
    List.iter
      (fun at ->
        Sim.schedule sim ~at:(max 1 at) (fun () -> Shard.Group.coord_crash gr))
      (List.sort_uniq Int.compare scfg.coord_crash_at);
    List.iter
      (fun (at, shard) ->
        Sim.schedule sim ~at:(max 1 at) (fun () ->
            Shard.Group.restart_participant gr ~shard))
      (List.sort_uniq
         (fun (a, sa) (b, sb) ->
           if a <> b then Int.compare a b else Int.compare sa sb)
         scfg.part_crash_at)
  | _ -> ());
  let net_exec =
    Option.map
      (fun rt ->
        let server =
          Net.Server.create ~engine ~queue_capacity:rt.ncfg.queue_capacity
        in
        let nclients =
          Array.init cfg.clients (fun i ->
              Net.Client.create sim ~rng:rt.net_rngs.(i) ~link:rt.link ~server
                ~session:i rt.ncfg.net_client)
        in
        (server, nclients))
      cfg.net
  in
  let st =
    {
      cfg;
      sim;
      engine = engine_ref;
      deposed;
      repl_cl;
      shard_gr;
      leaders = [];
      repl_ambiguous = [];
      coord_ambiguous = [];
      net_exec;
      buffers = Array.init cfg.clients (fun _ -> ref []);
      op_trace = Hashtbl.create 4096;
      next_op = 0;
      finished_txns = 0;
      retries = 0;
      live_clients = cfg.clients;
      stop_now = false;
    }
  in
  (* Failover orchestrator: explicit instants plus one derived promotion
     per primary-isolating partition window ([follower = -1]), fired
     [election_timeout_ns] after the window opens — the cluster noticing
     its primary has gone dark.  Scheduled up front, never drawn from
     the workload's RNG. *)
  (match (cfg.repl, repl_cl) with
  | Some rcfg, Some cl ->
    let derived =
      if rcfg.promote_on_partition then
        List.filter_map
          (fun (p : Repl.Cluster.partition) ->
            if p.Repl.Cluster.follower = -1 then
              Some (p.Repl.Cluster.from_ns + rcfg.election_timeout_ns)
            else None)
          rcfg.cluster.Repl.Cluster.partitions
      else []
    in
    List.iter
      (fun at ->
        Sim.schedule sim ~at:(max 1 at) (fun () ->
            match Repl.Cluster.failover cl with
            | None -> ()  (* no live follower left to promote *)
            | Some promo ->
              let old = !(st.engine) in
              Engine.set_commit_hook old None;
              let wal' =
                (* the promoted replica gets its own WAL, preloaded with
                   the survivor prefix — never the deposed primary's,
                   whose tail may hold exactly the records the failover
                   lost *)
                if cfg.wal then Some (Minidb.Wal.create ?faults:cfg.wal_faults ())
                else None
              in
              let fresh, _summary =
                Engine.promote_from old ?wal:wal'
                  ~records:promo.Repl.Cluster.survived ()
              in
              Engine.set_commit_hook fresh (Some (Repl.Cluster.on_commit cl));
              st.engine := fresh;
              st.deposed := old :: !(st.deposed);
              let faults = rcfg.cluster.Repl.Cluster.faults in
              let claim_clean =
                (* these faults *are* the lie: the cluster hides the
                   truncated suffix from its own failover report, leaving
                   the checker to prove the disappearance as a violation *)
                Repl.Repl_fault.(has_fault faults Promote_lagging)
                || Repl.Repl_fault.(has_fault faults Lose_acked_window)
              in
              let lost_reported =
                if claim_clean then []
                else
                  List.map
                    (fun (r : Minidb.Wal.record) -> r.Minidb.Wal.txn)
                    promo.Repl.Cluster.lost
              in
              st.leaders <-
                {
                  Codec.at = Sim.now sim;
                  epoch = Engine.epoch fresh;
                  primary = promo.Repl.Cluster.target;
                  lost = lost_reported;
                }
                :: st.leaders;
              if Repl.Repl_fault.(has_fault faults Split_brain) then
                (* the old brain keeps serving (and committing) unfenced
                   for a window: concurrent commits on both timelines *)
                Sim.schedule_after sim ~delay:rcfg.split_brain_ns (fun () ->
                    Engine.depose old ~epoch:(Engine.epoch fresh))
              else Engine.depose old ~epoch:(Engine.epoch fresh)))
      (List.sort_uniq Int.compare (rcfg.failover_at @ derived))
  | _ -> ());
  (* Per-shard failover orchestrator (stacked planes): each instant
     fails one shard's primary over to a replica.  Scheduled up front,
     never drawn from the workload's RNG.  The leader mark always
     reports [lost = []]: honestly the coordinator's decision log
     backfills the truncated suffix (lossless at the group level), and
     under the claim-clean replication lies the loss is exactly what
     the cluster hides — the checker must prove it from the traces, not
     learn it from a mark. *)
  (match (cfg.shard, shard_stack) with
  | Some scfg, Some stk ->
    List.iter
      (fun (at, shard) ->
        Sim.schedule sim ~at:(max 1 at) (fun () ->
            match Compose.Stack.failover stk ~shard with
            | None -> ()  (* no live follower left in that shard *)
            | Some fo ->
              st.leaders <-
                {
                  Codec.at = Sim.now sim;
                  epoch = 2 + List.length st.leaders;
                  primary = (fo.Compose.Stack.shard * 100)
                            + fo.Compose.Stack.primary;
                  lost = [];
                }
                :: st.leaders))
      (List.sort_uniq
         (fun (a, sa) (b, sb) ->
           if a <> b then Int.compare a b else Int.compare sa sb)
         scfg.shard_failover_at)
  | _ -> ());
  let root = Rng.create cfg.seed in
  for client = 0 to cfg.clients - 1 do
    let rng = Rng.split root in
    (* Stagger client start-ups slightly, as real clients would. *)
    Sim.schedule_after sim ~delay:(Rng.int rng 10_000) (fun () ->
        run_client st rng ~client)
  done;
  (match cfg.tick with
  | Some (interval_ns, f) ->
    let interval_ns = max 1 interval_ns in
    let rec tick () =
      f ();
      if (not (should_stop st)) && st.live_clients > 0 then
        Sim.schedule_after sim ~delay:interval_ns tick
    in
    Sim.schedule_after sim ~delay:interval_ns tick
  | None -> ());
  Sim.run sim;
  (* Counters are summed across every engine of the run: [promote_from]
     zeroes the promoted engine's counters, so current + deposed is an
     exact partition of the run's events.  The txn-state and ground-truth
     tables are shared across promotions, so [committed] and [truth_deps]
     read them from any engine. *)
  let cur = !(st.engine) in
  let engines = cur :: !(st.deposed) in
  let esum f = List.fold_left (fun acc e -> acc + f e) 0 engines in
  let committed id = Engine.committed cur id in
  {
    client_traces = Array.map (fun r -> List.rev !r) st.buffers;
    op_trace = st.op_trace;
    truth_deps = Minidb.Ground_truth.deps (Engine.ground_truth cur) ~committed;
    committed;
    peek = (fun cell -> Engine.peek cur cell);
    snapshot = (fun () -> Engine.snapshot_committed cur);
    commits = esum Engine.commits;
    aborts = esum Engine.aborts;
    aborts_fuw = esum (fun e -> Engine.aborts_by e Engine.Fuw_conflict);
    aborts_certifier =
      esum (fun e -> Engine.aborts_by e (Engine.Certifier_conflict ""));
    aborts_deadlock = esum (fun e -> Engine.aborts_by e Engine.Deadlock_victim);
    aborts_crash = esum (fun e -> Engine.aborts_by e Engine.Server_crash);
    deadlocks = esum Engine.deadlocks;
    restarts = esum Engine.restarts;
    epochs = List.rev !epochs;
    wal_appended = esum Engine.wal_appended;
    wal_damaged =
      List.fold_left (fun acc e -> acc + e.damaged) 0 !epochs;
    sim_duration_ns = Sim.now sim;
    ops = esum Engine.ops_executed;
    retries = st.retries;
    crashed_clients =
      (match cfg.chaos with
      | Some ch -> Chaos.crashed_clients ch
      | None -> []);
    indeterminate_txns =
      (match cfg.chaos with
      | Some ch -> Chaos.indeterminate_txns ch
      | None -> []);
    chaos_dropped =
      (match cfg.chaos with Some ch -> Chaos.dropped ch | None -> 0);
    chaos_duplicated =
      (match cfg.chaos with Some ch -> Chaos.duplicated ch | None -> 0);
    chaos_delayed =
      (match cfg.chaos with Some ch -> Chaos.delayed ch | None -> 0);
    net =
      (match (cfg.net, st.net_exec) with
      | Some rt, Some (server, nclients) ->
        let sum f = Array.fold_left (fun acc c -> acc + f c) 0 nclients in
        Some
          {
            resets = Net.Faulty_link.resets rt.link;
            msg_dropped = Net.Faulty_link.dropped rt.link;
            msg_duplicated = Net.Faulty_link.duplicated rt.link;
            msg_delayed = Net.Faulty_link.delayed rt.link;
            msg_reordered = Net.Faulty_link.reordered rt.link;
            rejected = Net.Server.rejected server;
            resends = sum Net.Client.resends;
            give_ups = sum Net.Client.give_ups;
            ambiguous = List.rev rt.ambiguous;
            dup_commit_acks = Engine.duplicate_commit_acks engine;
          }
      | _ -> None);
    leaders = List.rev st.leaders;
    repl = Option.map Repl.Cluster.stats repl_cl;
    repl_ambiguous = List.rev st.repl_ambiguous;
    shard = Option.map Shard.Group.stats shard_gr;
    shard_repl = Option.map Compose.Stack.stats shard_stack;
    coord_ambiguous = List.rev st.coord_ambiguous;
    shard_marks =
      (match cfg.shard with
      | None -> []
      | Some s -> [ { Codec.at = 0; shards = s.group.Shard.Group.shards } ]);
    prepare_marks =
      (match shard_gr with
      | None -> []
      | Some gr ->
        List.map
          (fun (at, txn, shards, d) ->
            {
              Codec.at;
              txn;
              shards;
              disposition =
                (match d with
                | 'c' -> Codec.Committed
                | 'a' -> Codec.Aborted
                | _ -> Codec.Unknown);
            })
          (Shard.Group.rounds_log gr));
  }

let all_traces_sorted outcome =
  let all =
    Array.fold_left (fun acc l -> List.rev_append l acc) [] outcome.client_traces
  in
  List.sort Trace.compare_by_bef all
